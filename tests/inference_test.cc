#include "src/core/inference.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/knowledge_base.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"

namespace rwl {
namespace {

TEST(KnowledgeBaseTest, AddRegistersSymbols) {
  KnowledgeBase kb;
  kb.Add(logic::P("Bird", logic::C("Tweety")));
  EXPECT_TRUE(kb.vocabulary().FindPredicate("Bird").has_value());
  EXPECT_TRUE(kb.vocabulary().FindFunction("Tweety").has_value());
  EXPECT_EQ(kb.conjuncts().size(), 1u);
}

TEST(KnowledgeBaseTest, AddFlattensConjunctions) {
  KnowledgeBase kb;
  kb.Add(logic::Formula::And(logic::P("A", logic::C("K")),
                             logic::P("B", logic::C("K"))));
  EXPECT_EQ(kb.conjuncts().size(), 2u);
}

TEST(KnowledgeBaseTest, ParseErrorsReported) {
  KnowledgeBase kb;
  std::string error;
  EXPECT_FALSE(kb.AddParsed("Bird(", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(kb.conjuncts().empty());
}

TEST(KnowledgeBaseTest, ToStringRoundTrips) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("Bird(Tweety)\n#(Fly(x) ; Bird(x))[x] ~= 0.9\n"));
  KnowledgeBase copy;
  ASSERT_TRUE(copy.AddParsed(kb.ToString()));
  EXPECT_EQ(kb.conjuncts().size(), copy.conjuncts().size());
  for (size_t i = 0; i < kb.conjuncts().size(); ++i) {
    EXPECT_TRUE(logic::Formula::StructuralEqual(kb.conjuncts()[i],
                                                copy.conjuncts()[i]));
  }
}

TEST(InferenceTest, RoutesToSymbolicForPointAnswers) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"));
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)");
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  EXPECT_NE(answer.method.find("5.6"), std::string::npos);
}

TEST(InferenceTest, NumericFallbackWhenSymbolicInapplicable) {
  // Query with no statistics: prior symmetry gives 1/2 by the profile
  // engine.
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("Bird(Tweety)\n"));
  kb.mutable_vocabulary().AddPredicate("Happy", 1);
  Answer answer = DegreeOfBelief(kb, "Happy(Tweety)");
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.5, 0.01);
  EXPECT_NE(answer.method.find("profile"), std::string::npos);
}

TEST(InferenceTest, SeriesRecordedForSweeps) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("Bird(Tweety)\n"));
  InferenceOptions options;
  options.use_symbolic = false;
  Answer answer = DegreeOfBelief(kb, "Bird(Tweety)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  EXPECT_FALSE(answer.series.empty());
  EXPECT_TRUE(answer.converged);
}

TEST(InferenceTest, UndefinedForUnsatisfiableKb) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "(exists x. A(x)) & (forall x. !A(x))\n"));
  InferenceOptions options;
  options.use_maxent = false;
  Answer answer = DegreeOfBelief(kb, "A(K)", options);
  EXPECT_EQ(answer.status, Answer::Status::kUndefined);
}

TEST(InferenceTest, NonUnaryFallsBackToExactEnumeration) {
  // A binary-predicate KB outside every fast engine but tiny enough to
  // enumerate: Pr(R(A,B)) with no information = 1/2.
  KnowledgeBase kb;
  kb.mutable_vocabulary().AddPredicate("R", 2);
  kb.mutable_vocabulary().AddConstant("A");
  kb.mutable_vocabulary().AddConstant("B");
  Answer answer = DegreeOfBelief(kb, "R(A, B)");
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.5, 1e-9);
  EXPECT_NE(answer.method.find("exact"), std::string::npos);
}

TEST(InferenceTest, ConditioningOnEvidence) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"));
  kb.mutable_vocabulary().AddConstant("Eric");
  // Without evidence Eric is a stranger; after learning Jaun(Eric) the
  // direct-inference value appears.
  Answer before = DegreeOfBelief(kb, "Hep(Eric)");
  Answer after = ConditionalDegreeOfBelief(
      kb, logic::P("Hep", logic::C("Eric")),
      logic::P("Jaun", logic::C("Eric")));
  ASSERT_EQ(after.status, Answer::Status::kPoint) << after.explanation;
  EXPECT_NEAR(after.value, 0.8, 0.02);
  // Before the evidence, Eric is a stranger: his prior reflects the
  // maximum-entropy pull of the statistics (an E5.29-style value below the
  // conditional), not the conditional itself.
  ASSERT_EQ(before.status, Answer::Status::kPoint);
  EXPECT_GT(before.value, 0.2);
  EXPECT_LT(before.value, after.value - 0.1);
}

TEST(InferenceTest, Proposition5_2_ConditioningOnConclusions) {
  // KB |∼ Fly(Tweety); adding that conclusion leaves other degrees of
  // belief unchanged (Proposition 5.2, via the public API).
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
      "#(Sings(x) ; Bird(x))[x] ~=_2 0.3\n"
      "Bird(Tweety)\n"));
  InferenceOptions options;
  options.limit.domain_sizes = {24, 48};
  options.limit.tolerance_scales = {1.0};
  Answer base = DegreeOfBelief(kb, "Sings(Tweety)", options);
  Answer conditioned = ConditionalDegreeOfBelief(
      kb, logic::P("Sings", logic::C("Tweety")),
      logic::P("Fly", logic::C("Tweety")), options);
  ASSERT_EQ(base.status, Answer::Status::kPoint) << base.explanation;
  ASSERT_EQ(conditioned.status, Answer::Status::kPoint)
      << conditioned.explanation;
  EXPECT_NEAR(base.value, conditioned.value, 0.02);
  EXPECT_NEAR(base.value, 0.3, 0.05);
}

TEST(InferenceTest, FixedDomainSizeComputesAtThatN) {
  // Footnote 9: a known lottery of N people, no limits taken.
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "exists! w. Winner(w)\n"
      "Ticket(Eric)\n"
      "forall x. (Winner(x) => Ticket(x))\n"
      "forall x. Ticket(x)\n"));  // everyone holds a ticket
  InferenceOptions options;
  options.fixed_domain_size = 10;
  Answer answer = DegreeOfBelief(kb, "Winner(Eric)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.1, 1e-9);
  EXPECT_NE(answer.method.find("fixed N"), std::string::npos);
}

TEST(InferenceTest, FixedDomainSizeDetectsUnsatisfiability) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("(exists x. A(x)) & (forall x. !A(x))\n"));
  InferenceOptions options;
  options.fixed_domain_size = 5;
  Answer answer = DegreeOfBelief(kb, "A(K)", options);
  EXPECT_EQ(answer.status, Answer::Status::kUndefined);
}

TEST(InferenceTest, FixedDomainSizeExactForNonUnary) {
  KnowledgeBase kb;
  kb.mutable_vocabulary().AddPredicate("R", 2);
  kb.mutable_vocabulary().AddConstant("A");
  InferenceOptions options;
  options.fixed_domain_size = 3;
  Answer answer = DegreeOfBelief(kb, "R(A, A)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.5, 1e-9);
  EXPECT_NE(answer.method.find("exact"), std::string::npos);
}

TEST(InferenceTest, StatusToStringCoversAll) {
  EXPECT_EQ(StatusToString(Answer::Status::kPoint), "point");
  EXPECT_EQ(StatusToString(Answer::Status::kInterval), "interval");
  EXPECT_EQ(StatusToString(Answer::Status::kNonexistent), "nonexistent");
  EXPECT_EQ(StatusToString(Answer::Status::kUndefined), "undefined");
  EXPECT_EQ(StatusToString(Answer::Status::kUnknown), "unknown");
}

}  // namespace
}  // namespace rwl
