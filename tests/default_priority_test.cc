// Section 5.3: with conflicting hard defaults, the limiting degree of
// belief depends on how ⃗τ → 0 — the tolerance magnitudes are default
// priorities.  This test computes the Nixon diamond numerically with the
// profile engine under three tolerance orderings and checks the paper's
// three regimes: τ1 ≪ τ2 → 1, τ1 ≫ τ2 → 0, τ1 = τ2 → 1/2.
#include <gtest/gtest.h>

#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"

namespace rwl {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

class NixonPriorityTest : public ::testing::Test {
 protected:
  NixonPriorityTest() {
    vocab_.AddPredicate("Pacifist", 1);
    vocab_.AddPredicate("Quaker", 1);
    vocab_.AddPredicate("Republican", 1);
    vocab_.AddConstant("Nixon");
    kb_ = Formula::AndAll({
        // Quakers are typically pacifists (tolerance index 1).
        logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                                 {"x"}),
                        1.0, 1),
        // Republicans are typically not (tolerance index 2).
        logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                                 P("Republican", V("x")), {"x"}),
                        0.0, 2),
        P("Quaker", C("Nixon")),
        P("Republican", C("Nixon")),
        logic::ExistsUnique("x", Formula::And(P("Quaker", V("x")),
                                              P("Republican", V("x")))),
    });
  }

  double PrPacifist(double tau1, double tau2, int n) {
    semantics::ToleranceVector tol(0.05);
    tol.Set(1, tau1);
    tol.Set(2, tau2);
    engines::ProfileEngine engine;
    auto r = engine.DegreeAt(vocab_, kb_, P("Pacifist", C("Nixon")), n, tol);
    EXPECT_TRUE(r.well_defined);
    return r.probability;
  }

  logic::Vocabulary vocab_;
  FormulaPtr kb_;
};

TEST_F(NixonPriorityTest, StrongerQuakerDefaultWins) {
  // τ1 ≪ τ2: "almost all Quakers are pacifists" is much closer to "all".
  double p = PrPacifist(0.01, 0.25, 16);
  EXPECT_GT(p, 0.8);
}

TEST_F(NixonPriorityTest, StrongerRepublicanDefaultWins) {
  double p = PrPacifist(0.25, 0.01, 16);
  EXPECT_LT(p, 0.2);
}

TEST_F(NixonPriorityTest, EqualStrengthIsAHalf) {
  double p = PrPacifist(0.08, 0.08, 16);
  EXPECT_NEAR(p, 0.5, 0.1);
}

TEST_F(NixonPriorityTest, NonRobustnessVisibleAcrossOrderings) {
  // The same KB at the same N gives wildly different values under the two
  // orderings — the numeric face of the nonexistent limit (Theorem 5.26's
  // conflicting-defaults case).
  double quaker_first = PrPacifist(0.01, 0.25, 14);
  double republican_first = PrPacifist(0.25, 0.01, 14);
  EXPECT_GT(quaker_first - republican_first, 0.5);
}

}  // namespace
}  // namespace rwl
