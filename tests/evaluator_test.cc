#include "src/semantics/evaluator.h"

#include <gtest/gtest.h>

#include "src/logic/builder.h"

namespace rwl::semantics {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

// A five-element world: Bird = {0,1,2,3}, Fly = {0,1,2}, Penguin = {3},
// Tweety ↦ 3.
class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    vocab_.AddPredicate("Bird", 1);
    vocab_.AddPredicate("Fly", 1);
    vocab_.AddPredicate("Penguin", 1);
    vocab_.AddConstant("Tweety");
    world_ = std::make_unique<World>(&vocab_, 5);
    for (int d : {0, 1, 2, 3}) world_->SetHolds(0, {d}, true);
    for (int d : {0, 1, 2}) world_->SetHolds(1, {d}, true);
    world_->SetHolds(2, {3}, true);
    world_->SetApply(0, {}, 3);
  }

  bool Eval(const FormulaPtr& f, double tau = 0.01) {
    return Evaluate(f, *world_, ToleranceVector::Uniform(tau));
  }

  logic::Vocabulary vocab_;
  std::unique_ptr<World> world_;
};

TEST_F(EvaluatorTest, AtomsAndConstants) {
  EXPECT_TRUE(Eval(P("Bird", C("Tweety"))));
  EXPECT_TRUE(Eval(P("Penguin", C("Tweety"))));
  EXPECT_FALSE(Eval(P("Fly", C("Tweety"))));
}

TEST_F(EvaluatorTest, Connectives) {
  EXPECT_TRUE(Eval(Formula::And(P("Bird", C("Tweety")),
                                Formula::Not(P("Fly", C("Tweety"))))));
  EXPECT_TRUE(Eval(Formula::Implies(P("Fly", C("Tweety")),
                                    Formula::False())));
  EXPECT_TRUE(Eval(Formula::Iff(P("Fly", C("Tweety")), Formula::False())));
}

TEST_F(EvaluatorTest, Quantifiers) {
  EXPECT_TRUE(Eval(Formula::ForAll(
      "x", Formula::Implies(P("Penguin", V("x")), P("Bird", V("x"))))));
  EXPECT_TRUE(Eval(Formula::Exists(
      "x", Formula::And(P("Bird", V("x")), Formula::Not(P("Fly", V("x")))))));
  EXPECT_FALSE(Eval(Formula::ForAll("x", P("Bird", V("x")))));
}

TEST_F(EvaluatorTest, EqualityOfTerms) {
  EXPECT_TRUE(Eval(logic::Eq(C("Tweety"), C("Tweety"))));
  EXPECT_TRUE(Eval(Formula::Exists(
      "x", Formula::And(logic::Eq(V("x"), C("Tweety")),
                        P("Penguin", V("x"))))));
}

TEST_F(EvaluatorTest, UnconditionalProportion) {
  // ||Bird(x)||_x = 4/5.
  EXPECT_TRUE(Eval(logic::ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.8, 1)));
  EXPECT_FALSE(Eval(logic::ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.6, 1)));
}

TEST_F(EvaluatorTest, ConditionalProportion) {
  // ||Fly | Bird||_x = 3/4.
  EXPECT_TRUE(Eval(logic::ApproxEq(
      CondProp(P("Fly", V("x")), P("Bird", V("x")), {"x"}), 0.75, 1)));
}

TEST_F(EvaluatorTest, ToleranceControlsApproximation) {
  FormulaPtr f = logic::ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.7, 1);
  EXPECT_FALSE(Eval(f, 0.05));
  EXPECT_TRUE(Eval(f, 0.2));
}

TEST_F(EvaluatorTest, ApproxLeqAndGeq) {
  EXPECT_TRUE(Eval(logic::ApproxLeq(Prop(P("Bird", V("x")), {"x"}), 0.85)));
  EXPECT_TRUE(Eval(logic::ApproxGeq(Prop(P("Bird", V("x")), {"x"}), 0.75)));
  EXPECT_FALSE(Eval(logic::ApproxGeq(Prop(P("Bird", V("x")), {"x"}), 0.95)));
}

TEST_F(EvaluatorTest, ExactComparisons) {
  EXPECT_TRUE(Eval(Formula::Compare(Prop(P("Bird", V("x")), {"x"}),
                                    logic::CompareOp::kEq, logic::Num(0.8))));
  EXPECT_FALSE(Eval(Formula::Compare(Prop(P("Bird", V("x")), {"x"}),
                                     logic::CompareOp::kEq,
                                     logic::Num(0.81))));
}

TEST_F(EvaluatorTest, ZeroDenominatorConventionIsTrue) {
  // No element satisfies Fly ∧ Penguin, so conditioning on it: any
  // comparison is true (the 0/0 convention of Section 4.1).
  FormulaPtr impossible = Formula::And(P("Fly", V("x")), P("Penguin", V("x")));
  EXPECT_TRUE(Eval(logic::ApproxEq(
      CondProp(P("Bird", V("x")), impossible, {"x"}), 0.123, 1)));
  EXPECT_FALSE(Eval(Formula::Not(logic::ApproxEq(
      CondProp(P("Bird", V("x")), impossible, {"x"}), 0.123, 1))));
}

TEST_F(EvaluatorTest, Example4_2_ConditionalIsPrimitive) {
  // Example 4.2: with ||Penguin||_x small but nonzero, the conditional
  // ||Fly|Penguin||_x must reflect the actual ratio among penguins (here
  // 0/1 = 0), not the multiplied-out approximation.
  EXPECT_TRUE(Eval(logic::ApproxEq(
      CondProp(P("Fly", V("x")), P("Penguin", V("x")), {"x"}), 0.0, 1)));
  EXPECT_FALSE(Eval(logic::ApproxEq(
      CondProp(P("Fly", V("x")), P("Penguin", V("x")), {"x"}), 1.0, 1)));
}

TEST_F(EvaluatorTest, ArithmeticExpressions) {
  // ||Bird|| - ||Fly|| = 0.8 - 0.6 = 0.2
  FormulaPtr f = Formula::Compare(
      logic::Expr::Sub(Prop(P("Bird", V("x")), {"x"}),
                       Prop(P("Fly", V("x")), {"x"})),
      logic::CompareOp::kApproxEq, logic::Num(0.2), 1);
  EXPECT_TRUE(Eval(f));
  FormulaPtr g = Formula::Compare(
      logic::Expr::Mul(Prop(P("Bird", V("x")), {"x"}), logic::Num(0.5)),
      logic::CompareOp::kApproxEq, logic::Num(0.4), 1);
  EXPECT_TRUE(Eval(g));
}

TEST_F(EvaluatorTest, MultiVariableProportion) {
  // ||Bird(x) ∧ Fly(y)||_{x,y} = (4*3)/25.
  FormulaPtr f = logic::ApproxEq(
      Prop(Formula::And(P("Bird", V("x")), P("Fly", V("y"))), {"x", "y"}),
      12.0 / 25.0, 1);
  EXPECT_TRUE(Eval(f));
}

TEST_F(EvaluatorTest, NestedProportionInsideQuantifier) {
  // ∃x (Penguin(x) ∧ ||Fly(y)||_y ≈ 0.6): the proportion is independent of
  // x but exercises nesting.
  FormulaPtr f = Formula::Exists(
      "x", Formula::And(P("Penguin", V("x")),
                        logic::ApproxEq(Prop(P("Fly", V("y")), {"y"}), 0.6,
                                        1)));
  EXPECT_TRUE(Eval(f));
}

TEST(EvaluatorFunctions, UnaryFunctionInterpretation) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("Tall", 1);
  vocab.AddFunction("Mother", 1);
  vocab.AddConstant("Alice");
  World world(&vocab, 3);
  world.SetHolds(0, {2}, true);   // Tall(2)
  world.SetApply(0, {0}, 2);      // Mother(0) = 2
  world.SetApply(0, {1}, 1);
  world.SetApply(0, {2}, 1);
  world.SetApply(1, {}, 0);       // Alice = 0
  ToleranceVector tol = ToleranceVector::Uniform(0.01);
  // Tall(Mother(Alice)).
  FormulaPtr f = logic::Formula::Atom(
      "Tall", {logic::Term::Apply("Mother", {logic::C("Alice")})});
  EXPECT_TRUE(Evaluate(f, world, tol));
}

}  // namespace
}  // namespace rwl::semantics
