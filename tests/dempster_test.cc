#include "src/evidence/dempster.h"

#include <gtest/gtest.h>

namespace rwl::evidence {
namespace {

TEST(Dempster, NeutralEvidenceIsIdentity) {
  EXPECT_DOUBLE_EQ(DempsterCombine({0.8, 0.5}), 0.8);
  EXPECT_DOUBLE_EQ(DempsterCombine({0.5, 0.5, 0.5}), 0.5);
}

TEST(Dempster, AgreeingEvidenceReinforces) {
  double combined = DempsterCombine({0.8, 0.8});
  EXPECT_NEAR(combined, 0.64 / 0.68, 1e-12);
  EXPECT_GT(combined, 0.8);
}

TEST(Dempster, ConflictingEvidenceLandsBetween) {
  double combined = DempsterCombine({0.9, 0.2});
  EXPECT_GT(combined, 0.2);
  EXPECT_LT(combined, 0.9);
  EXPECT_NEAR(combined, 0.18 / (0.18 + 0.08), 1e-12);
}

TEST(Dempster, ExtremeDominates) {
  EXPECT_DOUBLE_EQ(DempsterCombine({1.0, 0.3}), 1.0);
  EXPECT_DOUBLE_EQ(DempsterCombine({0.0, 0.3}), 0.0);
}

TEST(Dempster, SingleEvidencePassesThrough) {
  EXPECT_DOUBLE_EQ(DempsterCombine({0.37}), 0.37);
}

TEST(Dempster, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(DempsterCombine({0.7, 0.4}), DempsterCombine({0.4, 0.7}));
}

TEST(Dempster, MonotoneInEachArgument) {
  double low = DempsterCombine({0.6, 0.3});
  double high = DempsterCombine({0.7, 0.3});
  EXPECT_LT(low, high);
}

}  // namespace
}  // namespace rwl::evidence
