// The cost-based query planner (core/planner.h): capability gating, plan
// traces, plan-cache bit-identity, deadlines, work budgets, forced
// strategies, and differential equivalence of planner answers against
// every forced applicable engine on generated workloads.
#include <chrono>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine_registry.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/planner.h"
#include "src/engines/profile_engine.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"
#include "src/testing/differential.h"
#include "src/testing/scenario.h"
#include "src/workload/generators.h"

namespace rwl {
namespace {

KnowledgeBase HepatitisKb() {
  KnowledgeBase kb;
  std::string error;
  EXPECT_TRUE(kb.AddParsed("Jaun(Eric)\n"
                           "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
                           &error))
      << error;
  return kb;
}

InferenceOptions FastOptions() {
  InferenceOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {8, 12, 16};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

const PlanStep* FindStep(const Answer& answer, const std::string& strategy) {
  if (answer.plan == nullptr) return nullptr;
  for (const PlanStep& step : answer.plan->steps) {
    if (step.strategy == strategy) return &step;
  }
  return nullptr;
}

int CountRan(const Answer& answer) {
  int ran = 0;
  for (const PlanStep& step : answer.plan->steps) {
    if (step.action == PlanStep::Action::kRan) ++ran;
  }
  return ran;
}

bool BitIdentical(const Answer& a, const Answer& b) {
  return a.status == b.status && a.value == b.value && a.lo == b.lo &&
         a.hi == b.hi && a.method == b.method &&
         a.converged == b.converged && a.series.size() == b.series.size();
}

TEST(PlannerTest, TraceRecordsAssessmentAndExecution) {
  KnowledgeBase kb = HepatitisKb();
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", FastOptions());
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  EXPECT_NEAR(answer.value, 0.8, 0.01);

  ASSERT_NE(answer.plan, nullptr);
  EXPECT_EQ(answer.plan->mode, "fidelity");
  EXPECT_FALSE(answer.plan->from_cache);
  // Every registered strategy was assessed.
  EXPECT_EQ(answer.plan->steps.size(),
            EngineRegistry::Default().Ordered().size());
  // The symbolic theorems answered; later candidates were not reached.
  const PlanStep* symbolic = FindStep(answer, "symbolic");
  ASSERT_NE(symbolic, nullptr);
  EXPECT_EQ(symbolic->action, PlanStep::Action::kRan);
  EXPECT_EQ(symbolic->outcome, "final");
  EXPECT_GT(symbolic->predicted.work, 0.0);
  const PlanStep* profile = FindStep(answer, "profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->action, PlanStep::Action::kNotReached);
  EXPECT_TRUE(profile->capability.applicable);
  const PlanStep* montecarlo = FindStep(answer, "montecarlo");
  ASSERT_NE(montecarlo, nullptr);
  EXPECT_EQ(montecarlo->action, PlanStep::Action::kSkippedInapplicable);
}

TEST(PlannerTest, PlanCacheHitIsBitIdenticalToColdPlan) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  logic::FormulaPtr query = logic::ParseFormula("Hep(Eric)").formula;
  QueryContext ctx = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), options);

  Answer cold = DegreeOfBelief(ctx, query, options);
  Answer warm = DegreeOfBelief(ctx, query, options);
  ASSERT_NE(cold.plan, nullptr);
  ASSERT_NE(warm.plan, nullptr);
  EXPECT_FALSE(cold.plan->from_cache);
  EXPECT_TRUE(warm.plan->from_cache);
  EXPECT_EQ(warm.plan->planning_ms, 0.0);
  EXPECT_TRUE(BitIdentical(cold, warm));
}

TEST(PlannerTest, SameShapeQueriesShareACachedPlan) {
  KnowledgeBase kb;
  std::string error;
  ASSERT_TRUE(kb.AddParsed("Jaun(Eric)\nJaun(Tom)\n"
                           "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
                           &error))
      << error;
  InferenceOptions options = FastOptions();
  logic::FormulaPtr eric = logic::ParseFormula("Hep(Eric)").formula;
  logic::FormulaPtr tom = logic::ParseFormula("Hep(Tom)").formula;
  ASSERT_NE(eric, tom);
  EXPECT_EQ(PlanShapeFingerprint(eric), PlanShapeFingerprint(tom));

  std::vector<logic::FormulaPtr> queries = {eric, tom};
  QueryContext ctx = MakeQueryContext(kb, queries, options);
  Answer first = DegreeOfBelief(ctx, eric, options);
  Answer second = DegreeOfBelief(ctx, tom, options);
  EXPECT_FALSE(first.plan->from_cache);
  EXPECT_TRUE(second.plan->from_cache)
      << "a different constant with the same query shape must reuse the "
         "cached plan";
}

TEST(PlannerTest, ShapeFingerprintDistinguishesStructure) {
  logic::FormulaPtr hep = logic::ParseFormula("Hep(Eric)").formula;
  logic::FormulaPtr jaun = logic::ParseFormula("Jaun(Eric)").formula;
  logic::FormulaPtr both =
      logic::ParseFormula("Hep(Eric) & Jaun(Eric)").formula;
  EXPECT_NE(PlanShapeFingerprint(hep), PlanShapeFingerprint(jaun));
  EXPECT_NE(PlanShapeFingerprint(hep), PlanShapeFingerprint(both));
}

TEST(PlannerTest, ForcedEngineBypassesPlanner) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();

  options.force_engine = "profile";
  Answer profile = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(profile.status, Answer::Status::kPoint);
  EXPECT_NEAR(profile.value, 0.8, 0.02);
  EXPECT_NE(profile.method.find("profile"), std::string::npos);
  ASSERT_NE(profile.plan, nullptr);
  EXPECT_EQ(profile.plan->mode, "forced:profile");
  EXPECT_EQ(profile.plan->steps.size(), 1u);

  options.force_engine = "maxent";
  Answer maxent = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(maxent.status, Answer::Status::kPoint);
  EXPECT_NEAR(maxent.value, 0.8, 0.02);

  // Forcing implies enabling: montecarlo answers though use_montecarlo
  // stays false, with the requested sampling budget.
  options.force_engine = "montecarlo";
  options.montecarlo_samples = 20000;
  Answer mc = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(mc.status, Answer::Status::kPoint);
  EXPECT_NEAR(mc.value, 0.8, 0.05);

  options.force_engine = "no-such-engine";
  Answer bogus = DegreeOfBelief(kb, "Hep(Eric)", options);
  EXPECT_EQ(bogus.status, Answer::Status::kUnknown);
  EXPECT_NE(bogus.explanation.find("registered"), std::string::npos);
}

TEST(PlannerTest, ForcedAnswersMatchPlannerAnswer) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  Answer planned = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(planned.status, Answer::Status::kPoint);
  for (const char* name : {"profile", "maxent", "exact"}) {
    InferenceOptions forced_options = options;
    forced_options.force_engine = name;
    Answer forced = DegreeOfBelief(kb, "Hep(Eric)", forced_options);
    ASSERT_EQ(forced.status, Answer::Status::kPoint) << name;
    EXPECT_NEAR(forced.value, planned.value, 0.06) << name;
  }
}

TEST(PlannerTest, WorkBudgetSkipsExpensiveCandidates) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.use_symbolic = false;

  // A budget below every numeric candidate: nothing may run.
  options.work_budget = 1e3;
  Answer starved = DegreeOfBelief(kb, "Hep(Eric)", options);
  EXPECT_EQ(starved.status, Answer::Status::kUnknown);
  for (const char* name : {"profile", "maxent", "exact"}) {
    const PlanStep* step = FindStep(starved, name);
    ASSERT_NE(step, nullptr) << name;
    EXPECT_EQ(step->action, PlanStep::Action::kSkippedBudget) << name;
  }

  // A budget the profile sweep fits but the entropy solve and the exact
  // odometer exceed: the planner answers with the affordable candidate.
  options.work_budget = 1.5e5;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  EXPECT_NE(answer.method.find("profile"), std::string::npos);
  EXPECT_NEAR(answer.value, 0.8, 0.02);
}

TEST(PlannerTest, WorkBudgetAppliesToForcedStrategies) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.force_engine = "profile";
  options.work_budget = 1.0;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  EXPECT_EQ(answer.status, Answer::Status::kUnknown);
  ASSERT_EQ(answer.plan->steps.size(), 1u);
  EXPECT_EQ(answer.plan->steps[0].action, PlanStep::Action::kSkippedBudget);
}

TEST(PlannerTest, ExpiredDeadlineRunsOnlyTheCheapestCandidate) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.use_symbolic = false;
  // Effectively already expired when execution starts; the planner still
  // runs exactly one candidate — the cheapest (the profile sweep on this
  // small KB) — so a late query gets its bounded-overshoot answer.
  options.deadline_ms = 1e-6;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_NE(answer.plan, nullptr);
  EXPECT_TRUE(answer.plan->deadline_hit);
  EXPECT_EQ(CountRan(answer), 1);
  const PlanStep* profile = FindStep(answer, "profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->action, PlanStep::Action::kRan);
  // Candidates after the finalizing one read "not reached"; candidates
  // the deadline skipped never ran.
  const PlanStep* maxent = FindStep(answer, "maxent");
  ASSERT_NE(maxent, nullptr);
  EXPECT_NE(maxent->action, PlanStep::Action::kRan);
}

TEST(PlannerTest, ExpiredDeadlineCutsSweepBetweenProbes) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  logic::FormulaPtr query = logic::ParseFormula("Hep(Eric)").formula;
  QueryContext ctx = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), options);
  engines::ProfileEngine profile;
  engines::LimitOptions sweep;
  sweep.domain_sizes = {8, 12, 16};
  sweep.deadline = std::chrono::steady_clock::now() -
                   std::chrono::seconds(1);
  engines::LimitResult result = engines::EstimateLimit(
      profile, ctx, query, options.tolerances, sweep);
  EXPECT_TRUE(result.deadline_hit);
  EXPECT_FALSE(result.value.has_value());
  EXPECT_TRUE(result.series.empty());
}

TEST(PlannerTest, FixedNRunsDespiteExpiredDeadline) {
  // Regression: fixed-N defines the question (Pr_N, footnote 9) — an
  // expired deadline must not substitute a cheaper engine's Pr_∞ answer.
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.fixed_domain_size = 8;
  options.deadline_ms = 1e-6;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  EXPECT_NE(answer.method.find("fixed N"), std::string::npos)
      << answer.method;
  const PlanStep* fixed_n = FindStep(answer, "fixed-n");
  ASSERT_NE(fixed_n, nullptr);
  EXPECT_EQ(fixed_n->action, PlanStep::Action::kRan);
  EXPECT_TRUE(fixed_n->preemptive);
}

TEST(PlannerTest, DeadlineCutSweepDoesNotClaimUndefined) {
  // Regression: a sweep whose deadline fired before any point was
  // evaluated has zero information — it must not finalize kUndefined
  // ("the KB has no worlds") on a satisfiable KB.
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.force_engine = "profile";
  options.deadline_ms = 1e-6;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  EXPECT_NE(answer.status, Answer::Status::kUndefined);
  EXPECT_EQ(answer.status, Answer::Status::kUnknown);
  // And a deadline-truncated sweep must never claim convergence.
  EXPECT_FALSE(answer.converged);
}

TEST(PlannerTest, CostModePicksCheapestApplicable) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.use_symbolic = false;
  options.plan_mode = PlanMode::kMinCost;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  // On this small KB the profile sweep is the cheapest candidate (the
  // entropy solve's per-atom cost only wins on wide vocabularies).
  EXPECT_NE(answer.method.find("profile"), std::string::npos);
  EXPECT_EQ(answer.plan->mode, "cost");
  ASSERT_GE(answer.plan->steps.size(), 2u);
  EXPECT_EQ(answer.plan->steps[0].strategy, "profile");
  EXPECT_NEAR(answer.value, 0.8, 0.02);
}

TEST(PlannerTest, RegistryFindLooksUpByName) {
  EngineRegistry& registry = EngineRegistry::Default();
  EXPECT_NE(registry.Find("symbolic"), nullptr);
  EXPECT_NE(registry.Find("montecarlo"), nullptr);
  EXPECT_EQ(registry.Find("montecarlo")->result_class(),
            engines::ResultClass::kStatistical);
  EXPECT_EQ(registry.Find("no-such-engine"), nullptr);
}

TEST(PlannerTest, ExplainRenderingMentionsEveryStrategy) {
  KnowledgeBase kb = HepatitisKb();
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", FastOptions());
  std::string rendered = FormatPlanTrace(*answer.plan);
  EXPECT_NE(rendered.find("mode=fidelity"), std::string::npos);
  EXPECT_NE(rendered.find("symbolic"), std::string::npos);
  EXPECT_NE(rendered.find("predicted work="), std::string::npos);
  EXPECT_NE(rendered.find("montecarlo"), std::string::npos);
}

// ---- defaults / evidence / calibrated strategies (PR 10) ----

KnowledgeBase PenguinKb() {
  KnowledgeBase kb;
  std::string error;
  EXPECT_TRUE(kb.AddParsed("#(Bird(x) ; Penguin(x))[x] ~= 1\n"
                           "#(Fly(x) ; Bird(x))[x] ~= 1\n"
                           "#(Fly(x) ; Penguin(x))[x] ~= 0\n"
                           "Penguin(Opus)\n",
                           &error))
      << error;
  return kb;
}

KnowledgeBase DempsterKb() {
  KnowledgeBase kb;
  std::string error;
  EXPECT_TRUE(kb.AddParsed("#(Hep(x) ; Jaun(x))[x] ~=_1 0.8\n"
                           "#(Hep(x) ; Pos(x))[x] ~=_2 0.75\n"
                           "Jaun(Eric)\n"
                           "Pos(Eric)\n"
                           "exists! x. (Jaun(x) & Pos(x))\n",
                           &error))
      << error;
  return kb;
}

TEST(PlannerTest, DefaultsFamilyInapplicableOutsideFragment) {
  // The hepatitis KB's 0.8 statistic is soft — not a hard default — so
  // every defaults-family capability must decline, and forcing any of
  // them answers kUnknown with the skip recorded in the trace.  The
  // evidence strategy needs two reference classes plus the ∃! overlap
  // conjuncts, so it declines too.
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  logic::FormulaPtr query = logic::ParseFormula("Hep(Eric)").formula;
  QueryContext ctx = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), options);
  for (const char* name :
       {"epsilon_semantics", "klm", "gmp90", "evidence"}) {
    auto strategy = EngineRegistry::Default().Find(name);
    ASSERT_NE(strategy, nullptr) << name;
    engines::Capability cap = strategy->Assess(ctx, query, options);
    EXPECT_FALSE(cap.applicable) << name << ": " << cap.reason;

    InferenceOptions forced = options;
    forced.force_engine = name;
    Answer answer = DegreeOfBelief(kb, "Hep(Eric)", forced);
    EXPECT_EQ(answer.status, Answer::Status::kUnknown) << name;
    ASSERT_NE(answer.plan, nullptr) << name;
    ASSERT_EQ(answer.plan->steps.size(), 1u) << name;
    EXPECT_EQ(answer.plan->steps[0].action,
              PlanStep::Action::kSkippedInapplicable)
        << name;
  }
}

TEST(PlannerTest, DefaultsFamilyAppliesToPenguinKb) {
  // The penguin triad is inside the propositional-defaults fragment:
  // every defaults capability accepts with a tiny predicted cost, and the
  // three strategies agree on the classic answers — specificity beats the
  // bird default (Fly(Opus) = 0) and the chain fires (Bird(Opus) = 1).
  KnowledgeBase kb = PenguinKb();
  InferenceOptions options = FastOptions();
  logic::FormulaPtr query = logic::ParseFormula("Fly(Opus)").formula;
  QueryContext ctx = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), options);
  for (const char* name : {"epsilon_semantics", "klm", "gmp90"}) {
    auto strategy = EngineRegistry::Default().Find(name);
    ASSERT_NE(strategy, nullptr) << name;
    engines::Capability cap = strategy->Assess(ctx, query, options);
    EXPECT_TRUE(cap.applicable) << name << ": " << cap.reason;
    engines::CostEstimate cost = strategy->EstimateCost(ctx, query, options);
    EXPECT_GT(cost.work, 0.0) << name;
    // Exponentially cheaper than any numeric sweep of this KB.
    EXPECT_LT(cost.work, 1e5) << name;

    InferenceOptions forced = options;
    forced.force_engine = name;
    Answer fly = DegreeOfBelief(kb, "Fly(Opus)", forced);
    ASSERT_EQ(fly.status, Answer::Status::kPoint) << name;
    EXPECT_EQ(fly.value, 0.0) << name;
    EXPECT_TRUE(fly.converged) << name;
    Answer bird = DegreeOfBelief(kb, "Bird(Opus)", forced);
    ASSERT_EQ(bird.status, Answer::Status::kPoint) << name;
    EXPECT_EQ(bird.value, 1.0) << name;
  }
  // use_defaults = false withdraws the whole family.
  InferenceOptions disabled = options;
  disabled.use_defaults = false;
  QueryContext ctx2 = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), disabled);
  for (const char* name : {"epsilon_semantics", "klm", "gmp90"}) {
    auto strategy = EngineRegistry::Default().Find(name);
    EXPECT_FALSE(strategy->Assess(ctx2, query, disabled).applicable) << name;
  }
}

TEST(PlannerTest, EvidenceStrategyCombinesByDempstersRule) {
  KnowledgeBase kb = DempsterKb();
  InferenceOptions options = FastOptions();
  options.force_engine = "evidence";
  Answer forced = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(forced.status, Answer::Status::kPoint);
  // 0.8·0.75 / (0.8·0.75 + 0.2·0.25) = 12/13.
  EXPECT_NEAR(forced.value, 12.0 / 13.0, 1e-9);
  EXPECT_NE(forced.method.find("dempster"), std::string::npos);
  EXPECT_TRUE(forced.converged);

  // The planner (symbolic first in fidelity order) lands on the same
  // closed form.
  options.force_engine.clear();
  Answer planned = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(planned.status, Answer::Status::kPoint);
  EXPECT_NEAR(planned.value, 12.0 / 13.0, 1e-9);
}

TEST(PlannerTest, CostModeCacheReplaysDefaultsPlanBitIdentically) {
  // A cost-ordered plan over the penguin KB ranks the closed-form
  // defaults strategies ahead of every numeric sweep; a plan-cache hit
  // must replay the exact same strategy order and answer bit-identically.
  KnowledgeBase kb = PenguinKb();
  InferenceOptions options = FastOptions();
  options.plan_mode = PlanMode::kMinCost;
  options.use_symbolic = false;
  logic::FormulaPtr query = logic::ParseFormula("Fly(Opus)").formula;
  QueryContext ctx = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), options);

  Answer cold = DegreeOfBelief(ctx, query, options);
  Answer warm = DegreeOfBelief(ctx, query, options);
  ASSERT_EQ(cold.status, Answer::Status::kPoint);
  EXPECT_EQ(cold.value, 0.0);
  EXPECT_NE(cold.method.find("p-entailment"), std::string::npos)
      << cold.method;
  ASSERT_NE(cold.plan, nullptr);
  ASSERT_NE(warm.plan, nullptr);
  EXPECT_FALSE(cold.plan->from_cache);
  EXPECT_TRUE(warm.plan->from_cache);
  EXPECT_TRUE(BitIdentical(cold, warm));
  ASSERT_EQ(cold.plan->steps.size(), warm.plan->steps.size());
  for (size_t i = 0; i < cold.plan->steps.size(); ++i) {
    EXPECT_EQ(cold.plan->steps[i].strategy, warm.plan->steps[i].strategy)
        << "strategy order diverged at step " << i;
  }
}

TEST(PlannerTest, CalibratedIntervalAnswersWithCoveringInterval) {
  KnowledgeBase kb = HepatitisKb();
  InferenceOptions options = FastOptions();
  options.interval_confidence = 0.9;
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(answer.status, Answer::Status::kInterval);
  EXPECT_NE(answer.method.find("calibrated"), std::string::npos)
      << answer.method;
  EXPECT_LE(answer.lo, answer.hi);
  EXPECT_GE(answer.lo, 0.0);
  EXPECT_LE(answer.hi, 1.0);
  // The true limit sits inside the calibrated interval here.
  EXPECT_LE(answer.lo, 0.8 + 1e-9);
  EXPECT_GE(answer.hi, 0.8 - 1e-9);
  ASSERT_FALSE(answer.series.empty());
  // Self-coverage of the sweep the interval was calibrated on.
  EXPECT_GE(testing::EmpiricalCoverage(answer.series, answer.lo, answer.hi),
            0.9 - 1e-9);
  // The preemptive calibrated strategy owns the answer; the plan shows it.
  const PlanStep* calibrated = FindStep(answer, "calibrated");
  ASSERT_NE(calibrated, nullptr);
  EXPECT_EQ(calibrated->action, PlanStep::Action::kRan);

  // Without the request the strategy stays out of the way.
  InferenceOptions plain = FastOptions();
  Answer point = DegreeOfBelief(kb, "Hep(Eric)", plain);
  EXPECT_EQ(point.status, Answer::Status::kPoint);
}

// Differential equivalence on generated workloads: the planner's answer
// agrees with every forced applicable engine, the cost-ordered mode, and
// plan-cache hits are bit-identical (testing/differential.cc check).
TEST(PlannerTest, MiniFuzzPlannerDifferential) {
  std::mt19937 rng(20260730);
  for (int i = 0; i < 20; ++i) {
    workload::UnaryKbParams params;
    params.num_predicates = 2 + static_cast<int>(rng() % 2);
    params.num_constants = 1 + static_cast<int>(rng() % 2);
    params.num_statements = 1 + static_cast<int>(rng() % 2);
    params.num_facts = 1;
    params.max_depth = 2;

    testing::Scenario scenario;
    for (const auto& name :
         workload::GeneratorPredicates(params.num_predicates)) {
      scenario.vocabulary.AddPredicate(name, 1);
    }
    for (const auto& name :
         workload::GeneratorConstants(params.num_constants)) {
      scenario.vocabulary.AddFunction(name, 0);
    }
    scenario.kb = workload::RandomUnaryKb(params, &rng);
    scenario.queries = workload::RandomQueryBatch(params, 2, &rng);
    logic::RegisterSymbols(scenario.kb, &scenario.vocabulary);
    for (const auto& query : scenario.queries) {
      logic::RegisterSymbols(query, &scenario.vocabulary);
    }
    scenario.provenance = "planner_test case " + std::to_string(i);

    testing::DifferentialOptions options;
    options.tolerances = semantics::ToleranceVector::Uniform(0.2);
    options.domain_sizes.clear();  // finite oracle covered elsewhere
    options.check_vm = false;
    options.check_pipeline = false;
    options.check_maxent = false;
    options.check_batch = false;
    options.check_planner = true;
    options.pipeline_domain_sizes = {6, 9, 12};
    options.pipeline_tolerance_scales = {1.0, 0.5};
    options.planner_montecarlo_samples = 4000;

    testing::DifferentialReport report =
        testing::RunDifferential(scenario, options);
    EXPECT_TRUE(report.ok()) << report.Summary(scenario);
    EXPECT_GT(report.comparisons, 0);
  }
}

}  // namespace
}  // namespace rwl
