#include "src/combinatorics/logmath.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rwl {
namespace {

TEST(LogFactorial, SmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogFactorial, NegativeIsZeroCount) {
  EXPECT_EQ(LogFactorial(-1), kNegInf);
}

TEST(LogFactorial, LargeValuesMatchLgamma) {
  EXPECT_NEAR(LogFactorial(100000), std::lgamma(100001.0), 1e-6);
}

TEST(LogBinomial, KnownValues) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-8);
  EXPECT_DOUBLE_EQ(LogBinomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(5, 5), 0.0);
}

TEST(LogBinomial, OutOfRangeIsNegInf) {
  EXPECT_EQ(LogBinomial(5, 6), kNegInf);
  EXPECT_EQ(LogBinomial(5, -1), kNegInf);
}

TEST(LogMultinomial, MatchesBinomialForTwoParts) {
  for (int n = 0; n <= 20; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogMultinomial(n, {k, n - k}), LogBinomial(n, k), 1e-10)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogMultinomial, ThreeParts) {
  // 6! / (1! 2! 3!) = 60.
  EXPECT_NEAR(LogMultinomial(6, {1, 2, 3}), std::log(60.0), 1e-12);
}

TEST(LogMultinomial, NegativePartIsNegInf) {
  EXPECT_EQ(LogMultinomial(3, {4, -1}), kNegInf);
}

TEST(LogFallingFactorial, KnownValues) {
  EXPECT_DOUBLE_EQ(LogFallingFactorial(7, 0), 0.0);
  EXPECT_NEAR(LogFallingFactorial(7, 2), std::log(42.0), 1e-12);
  EXPECT_NEAR(LogFallingFactorial(5, 5), LogFactorial(5), 1e-12);
  EXPECT_EQ(LogFallingFactorial(3, 4), kNegInf);
}

TEST(LogSumExpTest, EmptyIsZeroSum) {
  LogSumExp acc;
  EXPECT_TRUE(acc.IsZero());
  EXPECT_EQ(acc.Value(), kNegInf);
}

TEST(LogSumExpTest, SingleTerm) {
  LogSumExp acc;
  acc.Add(std::log(3.0));
  EXPECT_NEAR(acc.Value(), std::log(3.0), 1e-12);
}

TEST(LogSumExpTest, ManyTerms) {
  LogSumExp acc;
  double expected = 0.0;
  for (int i = 1; i <= 10; ++i) {
    acc.Add(std::log(static_cast<double>(i)));
    expected += i;
  }
  EXPECT_NEAR(acc.Value(), std::log(expected), 1e-12);
}

TEST(LogSumExpTest, HugeMagnitudesDoNotOverflow) {
  LogSumExp acc;
  acc.Add(1e6);
  acc.Add(1e6 + std::log(2.0));
  EXPECT_NEAR(acc.Value(), 1e6 + std::log(3.0), 1e-9);
}

TEST(LogSumExpTest, ZeroTermsIgnored) {
  LogSumExp acc;
  acc.Add(kNegInf);
  acc.Add(std::log(5.0));
  acc.Add(kNegInf);
  EXPECT_NEAR(acc.Value(), std::log(5.0), 1e-12);
}

TEST(LogAddTest, Commutes) {
  EXPECT_NEAR(LogAdd(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAdd(std::log(3.0), std::log(2.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogAdd(kNegInf, std::log(2.0)), std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace rwl
