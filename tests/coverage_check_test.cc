// The calibrated-interval coverage check (testing/differential.h): the
// EmpiricalCoverage scoring primitive, the flagging rule for deliberately
// under-covering intervals, trimming arithmetic of the calibrated
// strategy's own answers, and the end-to-end differential check against
// ground-truth enumeration.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/engines/engine.h"
#include "src/testing/differential.h"
#include "src/testing/scenario.h"

namespace rwl {
namespace {

engines::SeriesPoint Point(int n, double scale, double pr,
                           bool defined = true) {
  engines::SeriesPoint point;
  point.domain_size = n;
  point.tolerance_scale = scale;
  point.probability = pr;
  point.well_defined = defined;
  return point;
}

TEST(CoverageCheckTest, EmpiricalCoverageCountsDefinedPointsOnly) {
  std::vector<engines::SeriesPoint> series = {
      Point(8, 1.0, 0.70),  Point(12, 1.0, 0.75),
      Point(16, 1.0, 0.80), Point(8, 0.5, 0.85),
      Point(12, 0.5, 0.20, /*defined=*/false),  // ignored
  };
  // [0.72, 0.82] covers 0.75 and 0.80 of the four defined points.
  EXPECT_DOUBLE_EQ(testing::EmpiricalCoverage(series, 0.72, 0.82), 0.5);
  // Inclusive at the endpoints (with the 1e-9 slack).
  EXPECT_DOUBLE_EQ(testing::EmpiricalCoverage(series, 0.70, 0.85), 1.0);
  EXPECT_DOUBLE_EQ(testing::EmpiricalCoverage(series, 0.9, 1.0), 0.0);
}

TEST(CoverageCheckTest, EmptyOrUndefinedSeriesCoversVacuously) {
  EXPECT_DOUBLE_EQ(testing::EmpiricalCoverage({}, 0.4, 0.6), 1.0);
  std::vector<engines::SeriesPoint> undefined = {
      Point(8, 1.0, 0.1, /*defined=*/false),
      Point(12, 1.0, 0.9, /*defined=*/false),
  };
  EXPECT_DOUBLE_EQ(testing::EmpiricalCoverage(undefined, 0.4, 0.6), 1.0);
}

TEST(CoverageCheckTest, UnderCoveringIntervalIsFlagged) {
  // Ten ground-truth points; a deliberately narrow interval catches six.
  // 0.6 < 0.9 - 0.05, so the differential check's rule must flag it,
  // while the honest 10%-trimmed interval passes.
  std::vector<engines::SeriesPoint> truth;
  for (int i = 0; i < 10; ++i) {
    truth.push_back(Point(8 + i, 1.0, 0.50 + 0.02 * i));
  }
  const double confidence = 0.9;
  const double tolerance = 0.05;
  const double required = confidence - tolerance;

  const double narrow_coverage =
      testing::EmpiricalCoverage(truth, 0.54, 0.64);
  EXPECT_DOUBLE_EQ(narrow_coverage, 0.6);
  EXPECT_LT(narrow_coverage, required) << "must be flagged";

  // Trimming one point of ten (floor(10 · 0.1)) still clears the bar.
  const double trimmed_coverage =
      testing::EmpiricalCoverage(truth, 0.52, 0.68);
  EXPECT_DOUBLE_EQ(trimmed_coverage, 0.9);
  EXPECT_GE(trimmed_coverage, required);
}

TEST(CoverageCheckTest, CalibratedAnswerCoversItsOwnSweep) {
  // The calibrated strategy trims at most floor(n·δ) well-defined points,
  // so its self-coverage is ≥ 1 - δ by construction — a property the
  // coverage check relies on when ground truth equals the sweep engine.
  KnowledgeBase kb;
  std::string error;
  ASSERT_TRUE(kb.AddParsed("Jaun(Eric)\n"
                           "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
                           &error))
      << error;
  InferenceOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.1);
  options.limit.domain_sizes = {8, 12, 16};
  options.limit.tolerance_scales = {1.0, 0.5};
  for (double confidence : {0.8, 0.9, 0.99}) {
    options.interval_confidence = confidence;
    Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
    ASSERT_EQ(answer.status, Answer::Status::kInterval) << confidence;
    ASSERT_FALSE(answer.series.empty());
    EXPECT_GE(
        testing::EmpiricalCoverage(answer.series, answer.lo, answer.hi),
        confidence - 1e-9)
        << "confidence " << confidence;
  }
}

TEST(CoverageCheckTest, DifferentialCoverageCheckPassesAgainstGroundTruth) {
  testing::Scenario scenario;
  std::string error;
  ASSERT_TRUE(testing::ScenarioFromTexts(
      "Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
      {"Hep(Eric)", "Hep(Eric) | Jaun(Eric)"}, &scenario, &error))
      << error;
  scenario.provenance = "coverage_check_test";

  testing::DifferentialOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.2);
  options.domain_sizes.clear();
  options.check_vm = false;
  options.check_pipeline = false;
  options.check_maxent = false;
  options.check_batch = false;
  options.check_service = false;
  options.check_replica = false;
  options.check_planner = false;
  options.check_defaults = false;
  options.check_evidence = false;
  options.check_coverage = true;
  options.coverage_confidence = 0.9;
  options.coverage_tolerance = 0.05;
  options.pipeline_domain_sizes = {4, 6, 8};
  options.pipeline_tolerance_scales = {1.0, 0.5};

  testing::DifferentialReport report =
      testing::RunDifferential(scenario, options);
  EXPECT_TRUE(report.ok()) << report.Summary(scenario);
  EXPECT_GT(report.comparisons, 0)
      << "the coverage check must actually compare something here";
}

}  // namespace
}  // namespace rwl
