// Regression tests for the QueryContext finite-result memo.
//
// 1. FiniteResults with exhausted = true must never enter the memo:
//    exhaustion reflects an execution resource (a work budget, a
//    deadline) rather than the semantics of the memo key, so a
//    budget-limited failure at a small budget must not poison a later
//    call made with a larger budget.
//
// 2. Memo keys must include the KB VERSION (the version_salt over the KB
//    formula id and vocabulary fingerprint): when the service catalog
//    adopts a predecessor context's caches across an ASSERT/RETRACT, a
//    stale post-mutation hit — replaying the old KB's Pr_N^τ against the
//    new KB — must be impossible, while a mutation sequence that reverts
//    to an identical KB must make the adopted entries valid hits again.
#include <string>

#include <gtest/gtest.h>

#include "src/core/knowledge_base.h"
#include "src/core/query_context.h"
#include "src/engines/engine.h"
#include "src/logic/parser.h"
#include "src/logic/vocabulary.h"
#include "src/semantics/compile.h"
#include "src/semantics/tolerance.h"

namespace rwl {
namespace {

// A stub engine whose work budget is an execution resource — like the
// planner's deadlines, it is deliberately NOT part of the cache salt, so
// two calls at different budgets share a memo key.
class BudgetedStubEngine : public engines::FiniteEngine {
 public:
  std::string name() const override { return "budgeted-stub"; }

  using engines::FiniteEngine::DegreeAt;
  using engines::FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary&, const logic::FormulaPtr&,
                const logic::FormulaPtr&, int) const override {
    return true;
  }

  engines::FiniteResult DegreeAt(
      const logic::Vocabulary&, const logic::FormulaPtr&,
      const logic::FormulaPtr&, int,
      const semantics::ToleranceVector&) const override {
    ++calls;
    engines::FiniteResult result;
    if (budget < 10) {
      result.exhausted = true;
      return result;
    }
    result.well_defined = true;
    result.probability = 0.25;
    result.log_numerator = -1.0;
    result.log_denominator = 0.0;
    return result;
  }

  mutable int calls = 0;
  int budget = 1;
};

struct Fixture {
  logic::Vocabulary vocabulary;
  logic::FormulaPtr query;

  Fixture() {
    vocabulary.AddPredicate("P", 1);
    vocabulary.AddFunction("c", 0);
    query = logic::ParseFormula("P(c)").formula;
  }
};

TEST(FiniteMemoTest, ExhaustedResultIsNotMemoized) {
  Fixture f;
  QueryContext ctx(f.vocabulary, logic::Formula::True(),
                   /*caching_enabled=*/true);
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);

  BudgetedStubEngine engine;
  engines::FiniteResult starved = engine.DegreeAt(ctx, f.query, 4, tolerances);
  EXPECT_TRUE(starved.exhausted);
  EXPECT_EQ(engine.calls, 1);

  // With a larger budget the same key must recompute, not replay the
  // starved failure.
  engine.budget = 100;
  engines::FiniteResult retried = engine.DegreeAt(ctx, f.query, 4, tolerances);
  EXPECT_FALSE(retried.exhausted);
  EXPECT_TRUE(retried.well_defined);
  EXPECT_DOUBLE_EQ(retried.probability, 0.25);
  EXPECT_EQ(engine.calls, 2);
}

TEST(FiniteMemoTest, SuccessfulResultStillMemoizes) {
  Fixture f;
  QueryContext ctx(f.vocabulary, logic::Formula::True(),
                   /*caching_enabled=*/true);
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);

  BudgetedStubEngine engine;
  engine.budget = 100;
  engines::FiniteResult first = engine.DegreeAt(ctx, f.query, 4, tolerances);
  engines::FiniteResult second = engine.DegreeAt(ctx, f.query, 4, tolerances);
  EXPECT_EQ(engine.calls, 1) << "well-defined results must still be cached";
  EXPECT_DOUBLE_EQ(first.probability, second.probability);

  QueryContext::CacheStats stats = ctx.cache_stats();
  EXPECT_EQ(stats.finite_hits, 1u);
}

TEST(FiniteMemoTest, ExhaustedStaysUncachedAcrossRepeats) {
  Fixture f;
  QueryContext ctx(f.vocabulary, logic::Formula::True(),
                   /*caching_enabled=*/true);
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);

  BudgetedStubEngine engine;
  engine.DegreeAt(ctx, f.query, 4, tolerances);
  engine.DegreeAt(ctx, f.query, 4, tolerances);
  // Both starved calls recomputed: the memo holds nothing for this key.
  EXPECT_EQ(engine.calls, 2);
  EXPECT_EQ(ctx.cache_stats().finite_hits, 0u);
}

// A stub whose Pr_N^τ depends on the KB formula, so replaying a memo
// entry against the wrong KB version is detectable in the probability.
class KbDependentStubEngine : public engines::FiniteEngine {
 public:
  std::string name() const override { return "kb-stub"; }

  using engines::FiniteEngine::DegreeAt;
  using engines::FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary&, const logic::FormulaPtr&,
                const logic::FormulaPtr&, int) const override {
    return true;
  }

  engines::FiniteResult DegreeAt(
      const logic::Vocabulary&, const logic::FormulaPtr& kb,
      const logic::FormulaPtr&, int,
      const semantics::ToleranceVector&) const override {
    ++calls;
    engines::FiniteResult result;
    result.well_defined = true;
    result.probability =
        kb != nullptr && kb->kind() == logic::Formula::Kind::kAtom ? 0.25
                                                                   : 0.75;
    return result;
  }

  mutable int calls = 0;
};

TEST(FiniteMemoTest, StaleHitImpossibleAfterMutationWithAdoptedCaches) {
  Fixture f;
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);
  logic::FormulaPtr kb_v1 = logic::ParseFormula("P(c)").formula;   // atom
  logic::FormulaPtr kb_v2 = logic::ParseFormula("!P(c)").formula;  // not

  KbDependentStubEngine engine;
  QueryContext v1(f.vocabulary, kb_v1, /*caching_enabled=*/true);
  engines::FiniteResult r1 = engine.DegreeAt(v1, f.query, 4, tolerances);
  EXPECT_DOUBLE_EQ(r1.probability, 0.25);
  EXPECT_EQ(engine.calls, 1);

  // The service catalog's copy-on-write path: the successor version's
  // context adopts EVERY cache entry of its predecessor.  The memo key's
  // KB-version salt is the only thing standing between the new KB and a
  // stale replay of the old result.
  QueryContext v2(f.vocabulary, kb_v2, /*caching_enabled=*/true);
  v2.AdoptCachesFrom(v1);
  ASSERT_NE(v1.version_salt(), v2.version_salt());
  engines::FiniteResult r2 = engine.DegreeAt(v2, f.query, 4, tolerances);
  EXPECT_DOUBLE_EQ(r2.probability, 0.75)
      << "post-mutation lookup replayed the pre-mutation result";
  EXPECT_EQ(engine.calls, 2) << "the new KB version must recompute";

  // A further mutation reverting to the original KB produces the original
  // (formula id, vocabulary) pair — hash-consing guarantees the same
  // formula id — so the entries adopted through the whole chain become
  // valid hits again: incremental maintenance reuses, never leaks.
  QueryContext v3(f.vocabulary, kb_v1, /*caching_enabled=*/true);
  v3.AdoptCachesFrom(v2);
  ASSERT_EQ(v3.version_salt(), v1.version_salt());
  engines::FiniteResult r3 = engine.DegreeAt(v3, f.query, 4, tolerances);
  EXPECT_DOUBLE_EQ(r3.probability, 0.25);
  EXPECT_EQ(engine.calls, 2) << "identical KB version must hit the memo";
  EXPECT_EQ(v3.cache_stats().finite_hits, 1u);
}

TEST(FiniteMemoTest, VocabularyExtendingMutationRebuildsInsteadOfPatching) {
  // The incremental-maintenance fast path (ApplyDelta) may only re-salt
  // recorded state when the mutation preserves the signature.  A mutation
  // that introduces a new symbol must diff as unpatchable, take the
  // rebuild path, and leave the predecessor's memo entries unreachable —
  // while a signature-preserving append diffs as patchable.
  std::string error;
  KnowledgeBase base;
  ASSERT_TRUE(base.AddParsed("P(C)\n", &error)) << error;

  KnowledgeBase widened = base;  // persistent copy
  ASSERT_TRUE(widened.AddParsed("Q(C)\n", &error)) << error;  // new predicate
  KbDelta widening = ComputeKbDelta(base, widened);
  EXPECT_FALSE(widening.signature_preserving);
  EXPECT_FALSE(widening.patchable());

  KnowledgeBase appended = base;
  ASSERT_TRUE(appended.AddParsed("!P(C)\n", &error)) << error;  // no new symbol
  KbDelta append = ComputeKbDelta(base, appended);
  EXPECT_TRUE(append.signature_preserving);
  EXPECT_TRUE(append.patchable());

  // Seed the predecessor's memo, then mutate across the signature change.
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);
  logic::FormulaPtr query = logic::ParseFormula("P(C)").formula;
  KbDependentStubEngine engine;
  QueryContext v1(base.vocabulary(), base.AsFormula(),
                  /*caching_enabled=*/true);
  engine.DegreeAt(v1, query, 4, tolerances);
  EXPECT_EQ(engine.calls, 1);

  QueryContext v2(widened.vocabulary(), widened.AsFormula(),
                  /*caching_enabled=*/true);
  v2.AdoptCachesFrom(v1);
  EXPECT_FALSE(v2.ApplyDelta(v1, widening)) << "unpatchable delta was patched";
  QueryContext::CacheStats stats = v2.cache_stats();
  EXPECT_EQ(stats.deltas_rebuilt, 1u);
  EXPECT_EQ(stats.deltas_patched, 0u);
  EXPECT_EQ(stats.world_lists_patched, 0u);

  // The adopted entry is salted for the old (KB, vocabulary) pair: the
  // widened context recomputes instead of replaying it.
  engine.DegreeAt(v2, query, 4, tolerances);
  EXPECT_EQ(engine.calls, 2) << "stale memo hit across a signature change";
  EXPECT_EQ(v2.cache_stats().finite_hits, 0u);
}

TEST(FiniteMemoTest, VocabularyChangeAlsoChangesTheVersionSalt) {
  Fixture f;
  logic::FormulaPtr kb = logic::ParseFormula("P(c)").formula;
  QueryContext original(f.vocabulary, kb, /*caching_enabled=*/true);

  // Same KB formula, extended vocabulary: world spaces differ, so the
  // salt must differ even though the formula id is unchanged — and
  // compiled programs (slot layouts depend on the signature) must not be
  // adopted across the change.
  std::shared_ptr<const semantics::CompiledFormula> compiled =
      original.Compiled(f.query);
  ASSERT_NE(compiled, nullptr);
  ASSERT_NE(original.CompiledIfCached(f.query), nullptr);

  logic::Vocabulary extended = f.vocabulary;
  extended.AddPredicate("Extra", 1);
  QueryContext widened(extended, kb, /*caching_enabled=*/true);
  widened.AdoptCachesFrom(original);
  EXPECT_NE(widened.version_salt(), original.version_salt());
  EXPECT_EQ(widened.CompiledIfCached(f.query), nullptr)
      << "programs compiled for a different signature were adopted";

  // Same vocabulary: programs ARE adopted.
  QueryContext same(f.vocabulary, kb, /*caching_enabled=*/true);
  same.AdoptCachesFrom(original);
  EXPECT_EQ(same.version_salt(), original.version_salt());
  EXPECT_NE(same.CompiledIfCached(f.query), nullptr);
}

}  // namespace
}  // namespace rwl
