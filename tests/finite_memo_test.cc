// Regression test: FiniteResults with exhausted = true must never enter
// the QueryContext finite-result memo.  Exhaustion reflects an execution
// resource (a work budget, a deadline) rather than the semantics of the
// memo key, so a budget-limited failure at a small budget must not poison
// a later call made with a larger budget.
#include <string>

#include <gtest/gtest.h>

#include "src/core/query_context.h"
#include "src/engines/engine.h"
#include "src/logic/parser.h"
#include "src/logic/vocabulary.h"
#include "src/semantics/tolerance.h"

namespace rwl {
namespace {

// A stub engine whose work budget is an execution resource — like the
// planner's deadlines, it is deliberately NOT part of the cache salt, so
// two calls at different budgets share a memo key.
class BudgetedStubEngine : public engines::FiniteEngine {
 public:
  std::string name() const override { return "budgeted-stub"; }

  using engines::FiniteEngine::DegreeAt;
  using engines::FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary&, const logic::FormulaPtr&,
                const logic::FormulaPtr&, int) const override {
    return true;
  }

  engines::FiniteResult DegreeAt(
      const logic::Vocabulary&, const logic::FormulaPtr&,
      const logic::FormulaPtr&, int,
      const semantics::ToleranceVector&) const override {
    ++calls;
    engines::FiniteResult result;
    if (budget < 10) {
      result.exhausted = true;
      return result;
    }
    result.well_defined = true;
    result.probability = 0.25;
    result.log_numerator = -1.0;
    result.log_denominator = 0.0;
    return result;
  }

  mutable int calls = 0;
  int budget = 1;
};

struct Fixture {
  logic::Vocabulary vocabulary;
  logic::FormulaPtr query;

  Fixture() {
    vocabulary.AddPredicate("P", 1);
    vocabulary.AddFunction("c", 0);
    query = logic::ParseFormula("P(c)").formula;
  }
};

TEST(FiniteMemoTest, ExhaustedResultIsNotMemoized) {
  Fixture f;
  QueryContext ctx(f.vocabulary, logic::Formula::True(),
                   /*caching_enabled=*/true);
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);

  BudgetedStubEngine engine;
  engines::FiniteResult starved = engine.DegreeAt(ctx, f.query, 4, tolerances);
  EXPECT_TRUE(starved.exhausted);
  EXPECT_EQ(engine.calls, 1);

  // With a larger budget the same key must recompute, not replay the
  // starved failure.
  engine.budget = 100;
  engines::FiniteResult retried = engine.DegreeAt(ctx, f.query, 4, tolerances);
  EXPECT_FALSE(retried.exhausted);
  EXPECT_TRUE(retried.well_defined);
  EXPECT_DOUBLE_EQ(retried.probability, 0.25);
  EXPECT_EQ(engine.calls, 2);
}

TEST(FiniteMemoTest, SuccessfulResultStillMemoizes) {
  Fixture f;
  QueryContext ctx(f.vocabulary, logic::Formula::True(),
                   /*caching_enabled=*/true);
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);

  BudgetedStubEngine engine;
  engine.budget = 100;
  engines::FiniteResult first = engine.DegreeAt(ctx, f.query, 4, tolerances);
  engines::FiniteResult second = engine.DegreeAt(ctx, f.query, 4, tolerances);
  EXPECT_EQ(engine.calls, 1) << "well-defined results must still be cached";
  EXPECT_DOUBLE_EQ(first.probability, second.probability);

  QueryContext::CacheStats stats = ctx.cache_stats();
  EXPECT_EQ(stats.finite_hits, 1u);
}

TEST(FiniteMemoTest, ExhaustedStaysUncachedAcrossRepeats) {
  Fixture f;
  QueryContext ctx(f.vocabulary, logic::Formula::True(),
                   /*caching_enabled=*/true);
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.1);

  BudgetedStubEngine engine;
  engine.DegreeAt(ctx, f.query, 4, tolerances);
  engine.DegreeAt(ctx, f.query, 4, tolerances);
  // Both starved calls recomputed: the memo holds nothing for this key.
  EXPECT_EQ(engine.calls, 2);
  EXPECT_EQ(ctx.cache_stats().finite_hits, 0u);
}

}  // namespace
}  // namespace rwl
