// Replays every golden corpus case (tests/corpus/*.rwl) through the
// cross-engine differential oracle.  Each file is a minimized fuzzer
// reproducer or hand-written conformance case; this test regression-gates
// every PR on everything the fuzzer has ever caught.
#include <string>

#include <gtest/gtest.h>

#include "src/testing/corpus.h"
#include "src/testing/differential.h"

#ifndef RWL_CORPUS_DIR
#error "RWL_CORPUS_DIR must point at tests/corpus (set by CMakeLists.txt)"
#endif

namespace rwl::testing {
namespace {

TEST(CorpusReplay, CorpusIsNonEmpty) {
  EXPECT_FALSE(ListCorpusFiles(RWL_CORPUS_DIR).empty())
      << "no .rwl files under " << RWL_CORPUS_DIR;
}

TEST(CorpusReplay, EveryCaseAgreesAcrossEngines) {
  for (const std::string& path : ListCorpusFiles(RWL_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    CorpusCase corpus_case;
    Scenario scenario;
    std::string error;
    ASSERT_TRUE(LoadCaseFile(path, &corpus_case, &error)) << error;
    ASSERT_TRUE(CaseToScenario(corpus_case, &scenario, &error)) << error;

    EngineSet engines = DefaultEngineSet(corpus_case.montecarlo_samples);
    DifferentialReport report = RunDifferential(
        scenario, engines.pointers(), ReplayOptions(corpus_case));
    EXPECT_TRUE(report.ok()) << report.Summary(scenario);
    EXPECT_GT(report.comparisons, 0)
        << "corpus case exercised no engine pair";
  }
}

TEST(CorpusReplay, EveryCaseSurvivesAFormatRoundTrip) {
  for (const std::string& path : ListCorpusFiles(RWL_CORPUS_DIR)) {
    SCOPED_TRACE(path);
    CorpusCase original;
    std::string error;
    ASSERT_TRUE(LoadCaseFile(path, &original, &error)) << error;

    CorpusCase reparsed;
    ASSERT_TRUE(ParseCase(FormatCase(original), &reparsed, &error)) << error;
    EXPECT_EQ(original.notes, reparsed.notes);
    EXPECT_EQ(original.tolerance, reparsed.tolerance);
    EXPECT_EQ(original.domain_sizes, reparsed.domain_sizes);
    EXPECT_EQ(original.montecarlo_samples, reparsed.montecarlo_samples);
    EXPECT_EQ(original.check_pipeline, reparsed.check_pipeline);
    EXPECT_EQ(original.check_maxent, reparsed.check_maxent);
    EXPECT_EQ(original.check_batch, reparsed.check_batch);
    EXPECT_EQ(original.pipeline_domain_sizes,
              reparsed.pipeline_domain_sizes);
    EXPECT_EQ(original.predicates, reparsed.predicates);
    EXPECT_EQ(original.functions, reparsed.functions);
    EXPECT_EQ(original.queries, reparsed.queries);
    EXPECT_EQ(original.kb_text, reparsed.kb_text);
  }
}

}  // namespace
}  // namespace rwl::testing
