// Edge cases of the packed structure-of-arrays world representation
// (semantics/world.h): tail-word masking at word-boundary domain sizes,
// odometer equivalence across the packed columns, frame rebinding across
// worlds of different domain sizes, block evaluation, and the exact
// engine's counting-loop collapse vs a forced enumeration.
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/engines/exact_engine.h"
#include "src/logic/builder.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"
#include "src/semantics/compile.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/tolerance.h"
#include "src/semantics/vm.h"
#include "src/semantics/world.h"

namespace rwl::semantics {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

ToleranceVector Tol(double v) { return ToleranceVector::Uniform(v); }

logic::Vocabulary UnaryVocab(int num_predicates) {
  logic::Vocabulary vocab;
  for (int p = 0; p < num_predicates; ++p) {
    vocab.AddPredicate("P" + std::to_string(p), 1);
  }
  return vocab;
}

int PopcountColumn(const World& world, int pred) {
  int count = 0;
  for (int d = 0; d < world.domain_size(); ++d) {
    count += world.GetUnaryBit(pred, d) ? 1 : 0;
  }
  return count;
}

TEST(PackedWorld, TailMaskInvariantAtWordBoundaries) {
  for (int n : {1, 63, 64, 65, 127, 128}) {
    logic::Vocabulary vocab = UnaryVocab(2);
    World world(&vocab, n);
    EXPECT_EQ(world.unary_words(), (n + 63) / 64) << "n=" << n;
    const uint64_t tail = world.unary_tail_mask();
    if (n % 64 == 0) {
      EXPECT_EQ(tail, ~uint64_t{0}) << "n=" << n;
    } else {
      EXPECT_EQ(tail, (uint64_t{1} << (n % 64)) - 1) << "n=" << n;
    }
    // All-true column: every word full, tail word exactly the mask — no
    // bits above the domain size (the popcount kernels rely on this).
    for (int d = 0; d < n; ++d) world.SetUnaryBit(0, d, true);
    const uint64_t* col = world.unary_column(0);
    for (int w = 0; w < world.unary_words() - 1; ++w) {
      EXPECT_EQ(col[w], ~uint64_t{0}) << "n=" << n << " word=" << w;
    }
    EXPECT_EQ(col[world.unary_words() - 1], tail) << "n=" << n;
    EXPECT_EQ(PopcountColumn(world, 0), n);
    // All-false second column stays untouched.
    for (int w = 0; w < world.unary_words(); ++w) {
      EXPECT_EQ(world.unary_column(1)[w], uint64_t{0});
    }
    // Clearing restores all-zero including the tail.
    for (int d = 0; d < n; ++d) world.SetUnaryBit(0, d, false);
    for (int w = 0; w < world.unary_words(); ++w) {
      EXPECT_EQ(col[w], uint64_t{0});
    }
  }
}

TEST(PackedWorld, ByteViewRoundTrip) {
  logic::Vocabulary vocab = UnaryVocab(1);
  World world(&vocab, 65);
  std::mt19937_64 rng(11);
  for (int d = 0; d < 65; ++d) world.SetUnaryBit(0, d, (rng() & 1) != 0);
  std::vector<uint8_t> bytes(65);
  world.CopyUnaryColumnToBytes(0, bytes.data());
  World copy(&vocab, 65);
  copy.LoadUnaryColumnFromBytes(0, bytes.data());
  for (int d = 0; d < 65; ++d) {
    EXPECT_EQ(copy.GetUnaryBit(0, d), world.GetUnaryBit(0, d)) << d;
  }
  EXPECT_EQ(copy.unary_column(0)[0], world.unary_column(0)[0]);
  EXPECT_EQ(copy.unary_column(0)[1], world.unary_column(0)[1]);
}

TEST(PackedWorld, OdometerMatchesSeekOnMixedVocabulary) {
  // One unary predicate (packed), one binary predicate (byte table), one
  // constant (function cell): 2^(3 + 9) * 3 worlds at N = 3.  Advancing
  // must visit exactly the SeekToIndex worlds, in order.
  logic::Vocabulary vocab;
  vocab.AddPredicate("P0", 1);
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("K");
  const int n = 3;
  World advancing(&vocab, n);
  const int64_t total = int64_t{3} << 12;
  for (int64_t index = 0; index < total; ++index) {
    World sought(&vocab, n);
    sought.SeekToIndex(index);
    for (int d = 0; d < n; ++d) {
      ASSERT_EQ(advancing.GetUnaryBit(0, d), sought.GetUnaryBit(0, d))
          << "index=" << index << " d=" << d;
    }
    ASSERT_EQ(advancing.predicate_table(1), sought.predicate_table(1))
        << "index=" << index;
    ASSERT_EQ(advancing.function_table(0), sought.function_table(0))
        << "index=" << index;
    const bool wrapped = !advancing.AdvanceOdometer();
    ASSERT_EQ(wrapped, index == total - 1) << "index=" << index;
  }
}

TEST(PackedWorld, MultiWordOdometerCarry) {
  // N = 65: columns span two words; the packed increment must carry across
  // the word boundary and wrap off the tail bit.
  logic::Vocabulary vocab = UnaryVocab(1);
  World world(&vocab, 65);
  const int64_t max = std::numeric_limits<int64_t>::max();
  world.SeekToIndex(max);  // bits 0..62 set
  EXPECT_EQ(world.unary_column(0)[0], uint64_t{max});
  EXPECT_EQ(world.unary_column(0)[1], uint64_t{0});
  ASSERT_TRUE(world.AdvanceOdometer());  // -> bit 63 only
  EXPECT_EQ(world.unary_column(0)[0], uint64_t{1} << 63);
  EXPECT_EQ(world.unary_column(0)[1], uint64_t{0});
  // Fill word 0 and advance: the carry reaches the second word.
  for (int d = 0; d < 64; ++d) world.SetUnaryBit(0, d, true);
  world.SetUnaryBit(0, 64, false);
  ASSERT_TRUE(world.AdvanceOdometer());
  EXPECT_EQ(world.unary_column(0)[0], uint64_t{0});
  EXPECT_EQ(world.unary_column(0)[1], uint64_t{1});
  // All 65 bits set: the odometer wraps to the all-zero world.
  for (int d = 0; d < 65; ++d) world.SetUnaryBit(0, d, true);
  ASSERT_FALSE(world.AdvanceOdometer());
  EXPECT_EQ(world.unary_column(0)[0], uint64_t{0});
  EXPECT_EQ(world.unary_column(0)[1], uint64_t{0});
}

TEST(PackedVm, AllTrueAndAllFalseColumns) {
  logic::Vocabulary vocab = UnaryVocab(2);
  FormulaPtr all = logic::ApproxGeq(logic::Prop(P("P0", V("x")), {"x"}),
                                    1.0, 1);
  FormulaPtr none = logic::ApproxLeq(logic::Prop(P("P0", V("x")), {"x"}),
                                     0.0, 1);
  auto tol = Tol(1e-12);
  for (int n : {63, 64, 65}) {
    World world(&vocab, n);
    CompiledFormula call = CompileFormula(all, vocab);
    CompiledFormula cnone = CompileFormula(none, vocab);
    ASSERT_TRUE(call.ok() && cnone.ok());
    EvalFrame frame_all;
    EvalFrame frame_none;
    frame_all.Prepare(*call.program, tol);
    frame_none.Prepare(*cnone.program, tol);
    EXPECT_FALSE(RunProgram(*call.program, world, &frame_all)) << n;
    EXPECT_TRUE(RunProgram(*cnone.program, world, &frame_none)) << n;
    for (int d = 0; d < n; ++d) world.SetUnaryBit(0, d, true);
    EXPECT_TRUE(RunProgram(*call.program, world, &frame_all)) << n;
    EXPECT_FALSE(RunProgram(*cnone.program, world, &frame_none)) << n;
  }
}

TEST(PackedVm, FrameRebindsAcrossDomainSizes) {
  // One frame, one program, worlds of different word counts: the VM must
  // rebind its cached column pointers (and word count) per world, agreeing
  // with the tree-walker on each.
  logic::Vocabulary vocab = UnaryVocab(2);
  FormulaPtr f = logic::ApproxLeq(
      logic::CondProp(P("P0", V("x")), P("P1", V("x")), {"x"}), 0.5, 1);
  CompiledFormula compiled = CompileFormula(f, vocab);
  ASSERT_TRUE(compiled.ok());
  auto tol = Tol(0.1);
  EvalFrame frame;
  frame.Prepare(*compiled.program, tol);
  std::mt19937_64 rng(23);
  World small(&vocab, 63);
  World large(&vocab, 65);
  for (int round = 0; round < 20; ++round) {
    World* world = (round % 2 == 0) ? &small : &large;
    for (int p = 0; p < 2; ++p) {
      for (int d = 0; d < world->domain_size(); ++d) {
        world->SetUnaryBit(p, d, (rng() & 1) != 0);
      }
    }
    EXPECT_EQ(RunProgram(*compiled.program, *world, &frame),
              Evaluate(f, *world, tol))
        << "round " << round;
  }
}

TEST(PackedVm, BlockCountsMatchPerWorldLoop) {
  // RunProgramBlock over a span of odometer worlds must count exactly what
  // the per-world RunProgram / AdvanceOdometer loop counts.
  logic::Vocabulary vocab = UnaryVocab(2);
  FormulaPtr kb =
      logic::ApproxLeq(logic::Prop(P("P0", V("x")), {"x"}), 0.7, 1);
  FormulaPtr query = logic::ApproxLeq(
      logic::CondProp(P("P1", V("x")), P("P0", V("x")), {"x"}), 0.5, 1);
  CompiledFormula ckb = CompileFormula(kb, vocab);
  CompiledFormula cq = CompileFormula(query, vocab);
  ASSERT_TRUE(ckb.ok() && cq.ok());
  auto tol = Tol(0.1);
  const int n = 6;  // 2^12 worlds
  const int64_t total = int64_t{1} << 12;

  BlockCounts manual;
  {
    World world(&vocab, n);
    EvalFrame kb_frame;
    EvalFrame q_frame;
    kb_frame.Prepare(*ckb.program, tol);
    q_frame.Prepare(*cq.program, tol);
    for (int64_t w = 0; w < total; ++w) {
      if (RunProgram(*ckb.program, world, &kb_frame)) {
        ++manual.first;
        if (RunProgram(*cq.program, world, &q_frame)) ++manual.both;
      }
      world.AdvanceOdometer();
    }
  }

  // Whole range in one block, and split at an arbitrary boundary: the world
  // is left positioned after each block, so blocks compose.
  for (int64_t split : {total, int64_t{1}, int64_t{1000}, total - 1}) {
    World world(&vocab, n);
    EvalFrame kb_frame;
    EvalFrame q_frame;
    kb_frame.Prepare(*ckb.program, tol);
    q_frame.Prepare(*cq.program, tol);
    BlockCounts a = RunProgramBlock(*ckb.program, cq.program.get(), &world,
                                    &kb_frame, &q_frame, split);
    BlockCounts b = RunProgramBlock(*ckb.program, cq.program.get(), &world,
                                    &kb_frame, &q_frame, total - split);
    EXPECT_EQ(a.first + b.first, manual.first) << "split=" << split;
    EXPECT_EQ(a.both + b.both, manual.both) << "split=" << split;
  }
}

TEST(PackedVm, CountingLoopBitIdenticalToEnumeration) {
  // The exact engine's counting-loop collapse must reproduce the full
  // enumeration bit for bit.  Conjoining a quantified tautology to the KB
  // changes no world yet makes the program non-aggregate, forcing the
  // engine back onto the world odometer — so both paths are observable
  // through the public API.
  logic::Vocabulary vocab = UnaryVocab(2);
  FormulaPtr kb =
      logic::ApproxLeq(logic::Prop(P("P0", V("x")), {"x"}), 0.6, 1);
  FormulaPtr taut = Formula::ForAll(
      "x", Formula::Or(P("P0", V("x")), Formula::Not(P("P0", V("x")))));
  FormulaPtr kb_enum = Formula::And(kb, taut);
  const std::vector<FormulaPtr> queries = {
      logic::ApproxLeq(logic::Prop(P("P1", V("x")), {"x"}), 0.4, 1),
      logic::ApproxLeq(
          logic::CondProp(P("P1", V("x")), P("P0", V("x")), {"x"}), 0.5, 1),
      Formula::True(),
  };
  engines::ExactEngine engine;
  for (const FormulaPtr& query : queries) {
    for (int n : {5, 10}) {
      engines::FiniteResult counted =
          engine.DegreeAt(vocab, kb, query, n, Tol(0.1));
      engines::FiniteResult enumerated =
          engine.DegreeAt(vocab, kb_enum, query, n, Tol(0.1));
      ASSERT_EQ(counted.well_defined, enumerated.well_defined);
      EXPECT_EQ(counted.probability, enumerated.probability) << "n=" << n;
      EXPECT_EQ(counted.log_numerator, enumerated.log_numerator) << "n=" << n;
      EXPECT_EQ(counted.log_denominator, enumerated.log_denominator)
          << "n=" << n;
      EXPECT_EQ(counted.exhausted, enumerated.exhausted);
    }
  }
}

TEST(PackedVm, CountsViewMatchesWorldEvaluation) {
  // RunProgramOnCounts on the cardinalities of a concrete world must equal
  // RunProgram in that world, for an aggregate-only program.
  logic::Vocabulary vocab = UnaryVocab(2);
  FormulaPtr f = logic::ApproxLeq(
      logic::CondProp(P("P1", V("x")), P("P0", V("x")), {"x"}), 0.5, 1);
  CompiledFormula compiled = CompileFormula(f, vocab);
  ASSERT_TRUE(compiled.ok());
  AggregateAnalysis analysis = AnalyzeAggregate(*compiled.program);
  ASSERT_TRUE(analysis.aggregate_only);
  EXPECT_EQ(analysis.predicates, (std::vector<int>{0, 1}));

  auto tol = Tol(0.1);
  const int n = 65;
  std::mt19937_64 rng(31);
  World world(&vocab, n);
  EvalFrame world_frame;
  EvalFrame counts_frame;
  world_frame.Prepare(*compiled.program, tol);
  counts_frame.Prepare(*compiled.program, tol);
  for (int round = 0; round < 50; ++round) {
    std::vector<int64_t> single(2, 0);
    std::vector<int64_t> pair(4, 0);
    for (int p = 0; p < 2; ++p) {
      for (int d = 0; d < n; ++d) {
        world.SetUnaryBit(p, d, (rng() & 1) != 0);
      }
    }
    for (int d = 0; d < n; ++d) {
      for (int a = 0; a < 2; ++a) {
        if (!world.GetUnaryBit(a, d)) continue;
        ++single[a];
        for (int b = 0; b < 2; ++b) {
          if (world.GetUnaryBit(b, d)) ++pair[a * 2 + b];
        }
      }
    }
    UnaryCountsView view{n, 2, single.data(), pair.data()};
    EXPECT_EQ(RunProgramOnCounts(*compiled.program, view, &counts_frame),
              RunProgram(*compiled.program, world, &world_frame))
        << "round " << round;
  }
}

}  // namespace
}  // namespace rwl::semantics
