#include "src/logic/classalg.h"

#include <gtest/gtest.h>

#include "src/logic/builder.h"

namespace rwl::logic {
namespace {

class ClassAlgTest : public ::testing::Test {
 protected:
  ClassAlgTest() : universe_({"Bird", "Penguin", "Yellow"}) {}

  AtomSet Compile(const FormulaPtr& f) {
    auto result = CompileClass(universe_, f, V("x"));
    EXPECT_TRUE(result.has_value());
    return result.has_value() ? *result : AtomSet::None(universe_);
  }

  ClassUniverse universe_;
};

TEST_F(ClassAlgTest, UniverseBasics) {
  EXPECT_EQ(universe_.num_predicates(), 3);
  EXPECT_EQ(universe_.num_atoms(), 8);
  EXPECT_EQ(universe_.PredicateIndex("Penguin"), 1);
  EXPECT_EQ(universe_.PredicateIndex("Fish"), -1);
}

TEST_F(ClassAlgTest, PredicateExtension) {
  AtomSet birds = Compile(P("Bird", V("x")));
  EXPECT_EQ(birds.Count(), 4);  // half the atoms
  for (int atom : birds.Atoms()) {
    EXPECT_TRUE(ClassUniverse::AtomHas(atom, 0));
  }
}

TEST_F(ClassAlgTest, BooleanStructure) {
  AtomSet yellow_penguins =
      Compile(Formula::And(P("Penguin", V("x")), P("Yellow", V("x"))));
  EXPECT_EQ(yellow_penguins.Count(), 2);
  AtomSet not_bird = Compile(Formula::Not(P("Bird", V("x"))));
  EXPECT_EQ(not_bird.Count(), 4);
  AtomSet all = yellow_penguins.Union(yellow_penguins.Complement());
  EXPECT_EQ(all.Count(), 8);
}

TEST_F(ClassAlgTest, ImpliesAndIff) {
  AtomSet implies =
      Compile(Formula::Implies(P("Penguin", V("x")), P("Bird", V("x"))));
  // ¬Penguin ∪ Bird: 8 - |Penguin ∧ ¬Bird| = 8 - 2 = 6.
  EXPECT_EQ(implies.Count(), 6);
  AtomSet iff = Compile(Formula::Iff(P("Bird", V("x")), P("Bird", V("x"))));
  EXPECT_EQ(iff.Count(), 8);
}

TEST_F(ClassAlgTest, WrongSubjectFails) {
  auto result = CompileClass(universe_, P("Bird", V("y")), V("x"));
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClassAlgTest, UnknownPredicateFails) {
  auto result = CompileClass(universe_, P("Fish", V("x")), V("x"));
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClassAlgTest, QuantifiersOutsideFragment) {
  auto result = CompileClass(
      universe_, Formula::Exists("y", P("Bird", V("y"))), V("x"));
  EXPECT_FALSE(result.has_value());
}

TEST_F(ClassAlgTest, ConstantSubjectCompilesFacts) {
  auto result = CompileClass(
      universe_, Formula::And(P("Penguin", C("Tweety")),
                              P("Yellow", C("Tweety"))),
      C("Tweety"));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->Count(), 2);
}

TEST_F(ClassAlgTest, TaxonomySubset) {
  Taxonomy taxonomy(universe_);
  // ∀x (Penguin(x) ⇒ Bird(x)).
  EXPECT_TRUE(taxonomy.Absorb(Formula::ForAll(
      "x", Formula::Implies(P("Penguin", V("x")), P("Bird", V("x"))))));
  AtomSet penguins = Compile(P("Penguin", V("x")));
  AtomSet birds = Compile(P("Bird", V("x")));
  EXPECT_TRUE(taxonomy.Entails_Subset(penguins, birds));
  EXPECT_FALSE(taxonomy.Entails_Subset(birds, penguins));
}

TEST_F(ClassAlgTest, TaxonomyDisjointness) {
  Taxonomy taxonomy(universe_);
  EXPECT_TRUE(taxonomy.Absorb(Formula::ForAll(
      "x", Formula::Not(Formula::And(P("Penguin", V("x")),
                                     P("Yellow", V("x")))))));
  AtomSet penguins = Compile(P("Penguin", V("x")));
  AtomSet yellow = Compile(P("Yellow", V("x")));
  EXPECT_TRUE(taxonomy.Entails_Disjoint(penguins, yellow));
}

TEST_F(ClassAlgTest, AbsorbRejectsNonUniversals) {
  Taxonomy taxonomy(universe_);
  EXPECT_FALSE(taxonomy.Absorb(P("Bird", C("Tweety"))));
  EXPECT_FALSE(taxonomy.Absorb(
      ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.5, 1)));
}

TEST_F(ClassAlgTest, EmptyClassDetection) {
  Taxonomy taxonomy(universe_);
  taxonomy.Absorb(Formula::ForAll("x", Formula::Not(P("Penguin", V("x")))));
  AtomSet penguins = Compile(P("Penguin", V("x")));
  EXPECT_TRUE(taxonomy.Entails_Empty(penguins));
}

TEST(AtomSetTest, LargeUniverseWordBoundaries) {
  std::vector<std::string> names;
  for (int i = 0; i < 7; ++i) names.push_back("Q" + std::to_string(i));
  ClassUniverse u(names);  // 128 atoms: two words
  AtomSet all = AtomSet::All(u);
  EXPECT_EQ(all.Count(), 128);
  AtomSet q6 = AtomSet::OfPredicate(u, 6);
  EXPECT_EQ(q6.Count(), 64);
  EXPECT_EQ(q6.Complement().Count(), 64);
  EXPECT_TRUE(AtomSet::Equal(q6.Complement().Complement(), q6));
}

}  // namespace
}  // namespace rwl::logic
