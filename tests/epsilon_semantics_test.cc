#include "src/defaults/epsilon_semantics.h"

#include <random>

#include <gtest/gtest.h>

#include "src/workload/generators.h"

namespace rwl::defaults {
namespace {

// Variables: 0 = Bird, 1 = Fly, 2 = Penguin.
constexpr int kBird = 0;
constexpr int kFly = 1;
constexpr int kPenguin = 2;

Rule MakeRule(PropPtr a, PropPtr c) { return Rule{std::move(a), std::move(c)}; }

std::vector<Rule> TweetyRules() {
  // Bird → Fly, Penguin → ¬Fly, Penguin → Bird.
  return {
      MakeRule(Prop::Var(kBird), Prop::Var(kFly)),
      MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly))),
      MakeRule(Prop::Var(kPenguin), Prop::Var(kBird)),
  };
}

TEST(EvalPropTest, Basics) {
  EXPECT_TRUE(EvalProp(Prop::True(), 0));
  EXPECT_FALSE(EvalProp(Prop::False(), 7));
  EXPECT_TRUE(EvalProp(Prop::Var(1), 0b010));
  EXPECT_FALSE(EvalProp(Prop::Var(1), 0b101));
  EXPECT_TRUE(EvalProp(Prop::And(Prop::Var(0), Prop::Not(Prop::Var(1))),
                       0b001));
  EXPECT_TRUE(EvalProp(Prop::Or(Prop::Var(0), Prop::Var(1)), 0b010));
}

TEST(ToleratedTest, SimpleCases) {
  std::vector<Rule> rules = TweetyRules();
  // Bird → Fly is tolerated (a flying non-penguin bird world exists).
  EXPECT_TRUE(Tolerated(rules[0], rules, 3));
  // Penguin → ¬Fly is NOT tolerated by the full set (any Penguin ∧ ¬Fly
  // world violates the materials Penguin ⇒ Bird, Bird ⇒ Fly); it becomes
  // tolerated at the second Z-level, after Bird → Fly is peeled off.
  EXPECT_FALSE(Tolerated(rules[1], rules, 3));
  std::vector<Rule> second_level = {rules[1], rules[2]};
  EXPECT_TRUE(Tolerated(rules[1], second_level, 3));
}

TEST(EpsilonConsistencyTest, TweetyIsConsistent) {
  EXPECT_TRUE(EpsilonConsistent(TweetyRules(), 3));
}

TEST(EpsilonConsistencyTest, FlatContradictionIsInconsistent) {
  std::vector<Rule> rules = {
      MakeRule(Prop::Var(0), Prop::Var(1)),
      MakeRule(Prop::Var(0), Prop::Not(Prop::Var(1))),
  };
  EXPECT_FALSE(EpsilonConsistent(rules, 2));
}

TEST(PEntailsTest, SpecificityHolds) {
  // Penguins don't fly, even though penguins are birds and birds fly.
  std::vector<Rule> rules = TweetyRules();
  EXPECT_TRUE(PEntails(rules, MakeRule(Prop::Var(kPenguin),
                                       Prop::Not(Prop::Var(kFly))),
                       3));
  EXPECT_FALSE(
      PEntails(rules, MakeRule(Prop::Var(kPenguin), Prop::Var(kFly)), 3));
}

TEST(PEntailsTest, DirectRuleEntailed) {
  std::vector<Rule> rules = TweetyRules();
  EXPECT_TRUE(PEntails(rules, MakeRule(Prop::Var(kBird), Prop::Var(kFly)),
                       3));
}

TEST(PEntailsTest, NoIrrelevanceInEpsilonSemantics) {
  // ε-semantics is famously too weak for inheritance: red birds are not
  // concluded to fly (no irrelevance handling) — the paper's Section 6
  // motivation for the stronger maximum-entropy system.
  constexpr int kRed = 2;
  std::vector<Rule> rules = {MakeRule(Prop::Var(kBird), Prop::Var(kFly))};
  Rule red_bird_flies = MakeRule(
      Prop::And(Prop::Var(kBird), Prop::Var(kRed)), Prop::Var(kFly));
  EXPECT_FALSE(PEntails(rules, red_bird_flies, 3));
}

TEST(PEntailsTest, AndRuleHolds) {
  // p-entailment is closed under conjunction of consequents.
  std::vector<Rule> rules = {
      MakeRule(Prop::Var(0), Prop::Var(1)),
      MakeRule(Prop::Var(0), Prop::Var(2)),
  };
  EXPECT_TRUE(PEntails(rules,
                       MakeRule(Prop::Var(0),
                                Prop::And(Prop::Var(1), Prop::Var(2))),
                       3));
}

TEST(PEntailsTest, PropertySoundnessOnRandomRuleSets) {
  // Every rule in a consistent set is p-entailed by the set (reflexivity of
  // the consequence relation on its generators).
  std::mt19937 rng(7781);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Rule> rules = workload::RandomRuleSet(4, 3, &rng);
    if (!EpsilonConsistent(rules, 4)) continue;
    for (const auto& rule : rules) {
      EXPECT_TRUE(PEntails(rules, rule, 4));
      ++checked;
    }
  }
  EXPECT_GT(checked, 30);
}

TEST(PEntailsTest, CutPropertyOnRandomRuleSets) {
  // Cut for p-entailment: if R entails A → θ and R ∪ {A∧θ → φ-ish} ...
  // We verify the weaker, classical monotonicity-free property: entailment
  // is preserved under logically equivalent antecedents.
  std::mt19937 rng(1234);
  int checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Rule> rules = workload::RandomRuleSet(3, 2, &rng);
    if (!EpsilonConsistent(rules, 3)) continue;
    const Rule& r = rules[0];
    // A ∧ A → C iff A → C (Left Logical Equivalence).
    Rule doubled = MakeRule(Prop::And(r.antecedent, r.antecedent),
                            r.consequent);
    EXPECT_EQ(PEntails(rules, r, 3), PEntails(rules, doubled, 3));
    ++checked;
  }
  EXPECT_GT(checked, 15);
}

TEST(PropToStringTest, Renders) {
  std::vector<std::string> names = {"Bird", "Fly"};
  EXPECT_EQ(PropToString(Prop::And(Prop::Var(0), Prop::Not(Prop::Var(1))),
                         names),
            "(Bird & !Fly)");
}

}  // namespace
}  // namespace rwl::defaults
