#include "src/engines/montecarlo_engine.h"

#include <gtest/gtest.h>

#include "src/engines/exact_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

semantics::ToleranceVector Tol(double v) {
  return semantics::ToleranceVector::Uniform(v);
}

MonteCarloEngine::Options FastOptions() {
  MonteCarloEngine::Options options;
  options.num_samples = 40'000;
  return options;
}

TEST(MonteCarloEngine, MatchesExactOnBinaryPredicateKb) {
  // A genuinely non-unary KB: a binary relation with a reflexivity fact.
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  vocab.AddConstant("B");
  FormulaPtr kb = Formula::ForAll("x", P("R", V("x"), V("x")));
  FormulaPtr query = P("R", C("A"), C("B"));

  ExactEngine exact;
  MonteCarloEngine mc(FastOptions());
  const int n = 3;
  FiniteResult truth = exact.DegreeAt(vocab, kb, query, n, Tol(0.1));
  FiniteResult sampled = mc.DegreeAt(vocab, kb, query, n, Tol(0.1));
  ASSERT_TRUE(truth.well_defined);
  ASSERT_TRUE(sampled.well_defined);
  EXPECT_NEAR(sampled.probability, truth.probability, 0.03);
}

TEST(MonteCarloEngine, SymmetryGivesHalf) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("Likes", 2);
  vocab.AddConstant("A");
  vocab.AddConstant("B");
  MonteCarloEngine mc(FastOptions());
  FiniteResult r = mc.DegreeAt(vocab, Formula::True(),
                               P("Likes", C("A"), C("B")), 6, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 0.5, 0.02);
}

TEST(MonteCarloEngine, TransitivityRaisesConditional) {
  // Pr(R(a,c) | R(a,b) ∧ R(b,c) ∧ "R transitive") = 1.
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  vocab.AddConstant("B");
  vocab.AddConstant("Cc");
  FormulaPtr transitive = Formula::ForAll(
      "x",
      Formula::ForAll(
          "y", Formula::ForAll(
                   "z", Formula::Implies(
                            Formula::And(P("R", V("x"), V("y")),
                                         P("R", V("y"), V("z"))),
                            P("R", V("x"), V("z"))))));
  FormulaPtr kb = Formula::AndAll(
      {transitive, P("R", C("A"), C("B")), P("R", C("B"), C("Cc"))});
  MonteCarloEngine::Options options;
  options.num_samples = 300'000;
  options.min_accepted = 20;
  MonteCarloEngine mc(options);
  FiniteResult r = mc.DegreeAt(vocab, kb, P("R", C("A"), C("Cc")), 3,
                               Tol(0.1));
  ASSERT_TRUE(r.well_defined) << "accepted " << mc.last_stats().accepted;
  EXPECT_NEAR(r.probability, 1.0, 1e-12);
}

TEST(MonteCarloEngine, ReportsUndefinedForImprobableKb) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  FormulaPtr kb = Formula::And(
      Formula::Exists("x", P("A", V("x"))),
      Formula::ForAll("x", Formula::Not(P("A", V("x")))));
  MonteCarloEngine mc(FastOptions());
  FiniteResult r = mc.DegreeAt(vocab, kb, Formula::True(), 6, Tol(0.1));
  EXPECT_FALSE(r.well_defined);
  EXPECT_EQ(mc.last_stats().accepted, 0u);
}

TEST(MonteCarloEngine, DeterministicUnderSeed) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  MonteCarloEngine mc(FastOptions());
  FiniteResult a = mc.DegreeAt(vocab, Formula::True(),
                               P("R", C("A"), C("A")), 4, Tol(0.1));
  FiniteResult b = mc.DegreeAt(vocab, Formula::True(),
                               P("R", C("A"), C("A")), 4, Tol(0.1));
  EXPECT_EQ(a.probability, b.probability);
}

TEST(MonteCarloEngine, BitIdenticalAcrossRunsAndThreadCounts) {
  // Same Options::seed → bit-identical estimates from independently
  // constructed engines, and from the limit sweep at any worker-pool
  // width (each (N, τ) point reseeds from the options, so evaluation
  // order cannot leak into the results).
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddPredicate("A", 1);
  vocab.AddConstant("K0");
  vocab.AddConstant("K1");
  FormulaPtr kb = Formula::And(Formula::ForAll("x", P("R", V("x"), V("x"))),
                               P("A", C("K0")));
  FormulaPtr query = P("R", C("K0"), C("K1"));

  MonteCarloEngine first(FastOptions());
  MonteCarloEngine second(FastOptions());
  for (int n : {3, 4, 6}) {
    FiniteResult a = first.DegreeAt(vocab, kb, query, n, Tol(0.1));
    FiniteResult b = second.DegreeAt(vocab, kb, query, n, Tol(0.1));
    EXPECT_EQ(a.well_defined, b.well_defined) << "N=" << n;
    EXPECT_EQ(a.probability, b.probability) << "N=" << n;
    EXPECT_EQ(a.log_numerator, b.log_numerator) << "N=" << n;
    EXPECT_EQ(a.log_denominator, b.log_denominator) << "N=" << n;
  }

  LimitOptions serial;
  serial.domain_sizes = {3, 4, 6};
  serial.num_threads = 1;
  LimitOptions pooled = serial;
  pooled.num_threads = 4;
  LimitResult a = EstimateLimit(first, vocab, kb, query, Tol(0.1), serial);
  LimitResult b = EstimateLimit(second, vocab, kb, query, Tol(0.1), pooled);
  EXPECT_EQ(a.value.has_value(), b.value.has_value());
  if (a.value.has_value()) EXPECT_EQ(*a.value, *b.value);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].domain_size, b.series[i].domain_size);
    EXPECT_EQ(a.series[i].probability, b.series[i].probability);
    EXPECT_EQ(a.series[i].well_defined, b.series[i].well_defined);
  }
}

TEST(MonteCarloEngine, SupportsRefusesHugeWorlds) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 3);
  MonteCarloEngine::Options options;
  options.max_cells = 1000;
  MonteCarloEngine mc(options);
  EXPECT_TRUE(mc.Supports(vocab, Formula::True(), Formula::True(), 10));
  EXPECT_FALSE(mc.Supports(vocab, Formula::True(), Formula::True(), 11));
}

}  // namespace
}  // namespace rwl::engines
