#include "src/engines/montecarlo_engine.h"

#include <gtest/gtest.h>

#include "src/engines/exact_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

semantics::ToleranceVector Tol(double v) {
  return semantics::ToleranceVector::Uniform(v);
}

MonteCarloEngine::Options FastOptions() {
  MonteCarloEngine::Options options;
  options.num_samples = 40'000;
  return options;
}

TEST(MonteCarloEngine, MatchesExactOnBinaryPredicateKb) {
  // A genuinely non-unary KB: a binary relation with a reflexivity fact.
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  vocab.AddConstant("B");
  FormulaPtr kb = Formula::ForAll("x", P("R", V("x"), V("x")));
  FormulaPtr query = P("R", C("A"), C("B"));

  ExactEngine exact;
  MonteCarloEngine mc(FastOptions());
  const int n = 3;
  FiniteResult truth = exact.DegreeAt(vocab, kb, query, n, Tol(0.1));
  FiniteResult sampled = mc.DegreeAt(vocab, kb, query, n, Tol(0.1));
  ASSERT_TRUE(truth.well_defined);
  ASSERT_TRUE(sampled.well_defined);
  EXPECT_NEAR(sampled.probability, truth.probability, 0.03);
}

TEST(MonteCarloEngine, SymmetryGivesHalf) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("Likes", 2);
  vocab.AddConstant("A");
  vocab.AddConstant("B");
  MonteCarloEngine mc(FastOptions());
  FiniteResult r = mc.DegreeAt(vocab, Formula::True(),
                               P("Likes", C("A"), C("B")), 6, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 0.5, 0.02);
}

TEST(MonteCarloEngine, TransitivityRaisesConditional) {
  // Pr(R(a,c) | R(a,b) ∧ R(b,c) ∧ "R transitive") = 1.
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  vocab.AddConstant("B");
  vocab.AddConstant("Cc");
  FormulaPtr transitive = Formula::ForAll(
      "x",
      Formula::ForAll(
          "y", Formula::ForAll(
                   "z", Formula::Implies(
                            Formula::And(P("R", V("x"), V("y")),
                                         P("R", V("y"), V("z"))),
                            P("R", V("x"), V("z"))))));
  FormulaPtr kb = Formula::AndAll(
      {transitive, P("R", C("A"), C("B")), P("R", C("B"), C("Cc"))});
  MonteCarloEngine::Options options;
  options.num_samples = 300'000;
  options.min_accepted = 20;
  MonteCarloEngine mc(options);
  FiniteResult r = mc.DegreeAt(vocab, kb, P("R", C("A"), C("Cc")), 3,
                               Tol(0.1));
  ASSERT_TRUE(r.well_defined) << "accepted " << mc.last_stats().accepted;
  EXPECT_NEAR(r.probability, 1.0, 1e-12);
}

TEST(MonteCarloEngine, ReportsUndefinedForImprobableKb) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  FormulaPtr kb = Formula::And(
      Formula::Exists("x", P("A", V("x"))),
      Formula::ForAll("x", Formula::Not(P("A", V("x")))));
  MonteCarloEngine mc(FastOptions());
  FiniteResult r = mc.DegreeAt(vocab, kb, Formula::True(), 6, Tol(0.1));
  EXPECT_FALSE(r.well_defined);
  EXPECT_EQ(mc.last_stats().accepted, 0u);
}

TEST(MonteCarloEngine, DeterministicUnderSeed) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  MonteCarloEngine mc(FastOptions());
  FiniteResult a = mc.DegreeAt(vocab, Formula::True(),
                               P("R", C("A"), C("A")), 4, Tol(0.1));
  FiniteResult b = mc.DegreeAt(vocab, Formula::True(),
                               P("R", C("A"), C("A")), 4, Tol(0.1));
  EXPECT_EQ(a.probability, b.probability);
}

TEST(MonteCarloEngine, SupportsRefusesHugeWorlds) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 3);
  MonteCarloEngine::Options options;
  options.max_cells = 1000;
  MonteCarloEngine mc(options);
  EXPECT_TRUE(mc.Supports(vocab, Formula::True(), Formula::True(), 10));
  EXPECT_FALSE(mc.Supports(vocab, Formula::True(), Formula::True(), 11));
}

}  // namespace
}  // namespace rwl::engines
