// Concurrency stress test for the rwld service layer: snapshot isolation
// under concurrent mutation.
//
// 8 writer threads interleave ASSERT/RETRACT against one tenant while 32
// reader threads query it.  Every reader answer must be BIT-IDENTICAL to
// a fresh single-threaded query against the snapshot version the service
// pinned for it — a cross-version cache leak (an adopted memo entry
// replayed against the wrong KB version) would break the identity.
//
// Also covered here: the scheduler's admission control and round-robin
// fairness (deterministically, with latch-blocked jobs), the catalog's
// version chain, and the old-pin guarantee (a snapshot held across later
// mutations still answers as its own version).
//
// Iteration counts scale down under sanitizers via RWL_STRESS_OPS.
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/logic/parser.h"
#include "src/service/catalog.h"
#include "src/service/scheduler.h"
#include "src/service/service.h"

namespace rwl {
namespace {

using service::KbService;
using service::KbSnapshot;
using service::QueryScheduler;
using service::SchedulerOptions;
using service::ServiceOptions;

int StressOps(int fallback) {
  const char* env = std::getenv("RWL_STRESS_OPS");
  if (env == nullptr) return fallback;
  int value = std::atoi(env);
  return value > 0 ? value : fallback;
}

// The service configuration shared by the stress tests: a small unary KB
// and a shallow sweep, so thousands of queries stay in CI budget.
ServiceOptions StressServiceOptions() {
  ServiceOptions options;
  options.scheduler.num_threads = 8;
  options.inference.tolerances = semantics::ToleranceVector::Uniform(0.1);
  options.inference.limit.domain_sizes = {4, 8, 12};
  return options;
}

const char kBaseKb[] =
    "#(P(x))[x] ~= 0.3\n"
    "#(Q(x) ; P(x))[x] ~= 0.8\n"
    "P(C0)\n"
    "Q(C1)\n";

// The mutation pool writers toggle and the queries readers ask.  Every
// fact stays inside the loaded vocabulary (C0..C3 appear in the base KB
// or the declare list), so the shared snapshot context covers them;
// "P(Fresh0)" exercises the private-context path for query-only symbols.
const char* kFacts[] = {"P(C1)", "Q(C0)", "!P(C2)", "Q(C3)", "!Q(C2)",
                        "P(C3)"};
const char* kQueries[] = {"P(C0)",
                          "Q(C0)",
                          "Q(C1)",
                          "(P(C2) | Q(C2))",
                          "(#(P(x))[x] <~ 0.5)",
                          "P(Fresh0)"};

// Bit-level equality of two answers (the differential batch check's
// SameAnswer, restated for gtest diagnostics).
void ExpectIdenticalAnswers(const Answer& service_answer,
                            const Answer& fresh_answer,
                            const std::string& query, uint64_t version,
                            std::atomic<int>* mismatches) {
  const bool same =
      service_answer.status == fresh_answer.status &&
      service_answer.value == fresh_answer.value &&
      service_answer.lo == fresh_answer.lo &&
      service_answer.hi == fresh_answer.hi &&
      service_answer.method == fresh_answer.method &&
      service_answer.converged == fresh_answer.converged;
  if (!same) {
    mismatches->fetch_add(1, std::memory_order_relaxed);
    ADD_FAILURE() << "answer for '" << query << "' at version " << version
                  << " diverged from the fresh single-threaded answer: "
                  << "service(status=" << StatusToString(service_answer.status)
                  << " value=" << service_answer.value
                  << " method=" << service_answer.method << ") vs fresh(status="
                  << StatusToString(fresh_answer.status)
                  << " value=" << fresh_answer.value
                  << " method=" << fresh_answer.method << ")";
  }
}

TEST(ServiceStressTest, SnapshotIsolationUnderConcurrentMutation) {
  ServiceOptions options = StressServiceOptions();
  KbService kb_service(options);
  KbService::MutationResult loaded =
      kb_service.Load("tenant", kBaseKb, {"C2", "C3"});
  ASSERT_TRUE(loaded.ok) << loaded.error;

  const int writer_ops = StressOps(24);
  const int reader_ops = StressOps(24) * 3 / 2;
  const InferenceOptions fresh_options = kb_service.EffectiveOptions({});

  std::atomic<int> mismatches{0};
  std::atomic<int> hard_errors{0};

  // ---- 8 writers ----
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&, w] {
      std::mt19937 rng(1000 + w);
      const int num_facts = static_cast<int>(std::size(kFacts));
      for (int i = 0; i < writer_ops; ++i) {
        const char* fact = kFacts[rng() % num_facts];
        if (rng() % 2 == 0) {
          KbService::MutationResult result =
              kb_service.Assert("tenant", fact);
          if (!result.ok) hard_errors.fetch_add(1);
        } else {
          // Retraction races are expected (another writer may have
          // removed the fact first); only unexpected failures count.
          KbService::MutationResult result =
              kb_service.Retract("tenant", fact);
          if (!result.ok &&
              result.error.find("no conjunct matches") == std::string::npos) {
            hard_errors.fetch_add(1);
          }
        }
      }
    });
  }

  // ---- 32 readers ----
  std::vector<std::thread> readers;
  std::mutex pins_mutex;
  std::vector<std::pair<std::shared_ptr<const KbSnapshot>, std::string>>
      pinned;  // old snapshots revisited after the storm
  for (int r = 0; r < 32; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(2000 + r);
      const int num_queries = static_cast<int>(std::size(kQueries));
      for (int i = 0; i < reader_ops; ++i) {
        const std::string query = kQueries[rng() % num_queries];
        KbService::QueryResult result = kb_service.Query("tenant", query);
        if (!result.ok) {
          hard_errors.fetch_add(1);
          continue;
        }
        ASSERT_NE(result.snapshot, nullptr);

        // The oracle: a fresh single-threaded query against the pinned
        // version's KB — new context, no shared caches.
        logic::ParseResult parsed = logic::ParseFormula(query);
        ASSERT_TRUE(parsed.ok());
        Answer fresh =
            DegreeOfBelief(result.snapshot->kb, parsed.formula, fresh_options);
        ExpectIdenticalAnswers(result.answer, fresh, query,
                               result.snapshot->version, &mismatches);

        if (i == 0) {
          std::lock_guard<std::mutex> lock(pins_mutex);
          pinned.emplace_back(result.snapshot, query);
        }
      }
    });
  }

  for (auto& thread : writers) thread.join();
  for (auto& thread : readers) thread.join();

  EXPECT_EQ(hard_errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // ---- old pins: snapshots held across the whole storm still answer as
  // their own version, through their own (possibly cache-adopted)
  // context ----
  for (const auto& [snapshot, query] : pinned) {
    logic::ParseResult parsed = logic::ParseFormula(query);
    ASSERT_TRUE(parsed.ok());
    Answer via_context =
        service::AnswerOnSnapshot(*snapshot, parsed.formula, fresh_options);
    Answer fresh = DegreeOfBelief(snapshot->kb, parsed.formula, fresh_options);
    ExpectIdenticalAnswers(via_context, fresh, query, snapshot->version,
                           &mismatches);
  }
  EXPECT_EQ(mismatches.load(), 0);

  // The storm actually exercised mutation: once background minting
  // drains, the head has moved past version 1.
  kb_service.DrainMaintenance();
  std::shared_ptr<const KbSnapshot> head = kb_service.Snapshot("tenant");
  ASSERT_NE(head, nullptr);
  EXPECT_GT(head->version, loaded.version);
}

TEST(ServiceStressTest, AsyncMintingWindowKeepsReadersConsistent) {
  // Holds the publication window open deterministically: an acked
  // mutation must leave concurrent readers on the old published head
  // (bit-identical to a fresh query against that version), become
  // readable through RequestOptions::min_version the moment it publishes,
  // and the patched successor must answer bit-identically to a fresh
  // single-threaded query against the new KB.
  KbService kb_service(StressServiceOptions());
  KbService::MutationResult loaded =
      kb_service.Load("tenant", kBaseKb, {"C2", "C3"});
  ASSERT_TRUE(loaded.ok) << loaded.error;
  const InferenceOptions fresh_options = kb_service.EffectiveOptions({});
  std::atomic<int> mismatches{0};

  kb_service.PauseMaintenance();
  KbService::MutationResult acked = kb_service.Assert("tenant", "P(C1)");
  ASSERT_TRUE(acked.ok) << acked.error;
  EXPECT_GT(acked.version, loaded.version);

  // Window open: the published head is still the load version...
  KbService::QueryResult during = kb_service.Query("tenant", "P(C0)");
  ASSERT_TRUE(during.ok) << during.error;
  EXPECT_EQ(during.snapshot->version, loaded.version);
  {
    logic::ParseResult parsed = logic::ParseFormula("P(C0)");
    ASSERT_TRUE(parsed.ok());
    Answer fresh =
        DegreeOfBelief(during.snapshot->kb, parsed.formula, fresh_options);
    ExpectIdenticalAnswers(during.answer, fresh, "P(C0)",
                           during.snapshot->version, &mismatches);
  }
  // ...but a second mutation builds on the acked one (WAL order), even
  // though neither has published yet.  The queued build COALESCES: one
  // task carrying the newest staged tail, not one task per ack — acks
  // must never wait on queue capacity.
  KbService::MutationResult acked2 = kb_service.Assert("tenant", "Q(C0)");
  ASSERT_TRUE(acked2.ok) << acked2.error;
  EXPECT_GT(acked2.version, acked.version);
  EXPECT_EQ(kb_service.maintenance_stats().queue_depth, 1u);

  kb_service.ResumeMaintenance();
  // Read-your-writes: min_version pins at (or after) the acked version.
  service::RequestOptions read_own;
  read_own.min_version = acked2.version;
  KbService::QueryResult after = kb_service.Query("tenant", "P(C1)", read_own);
  ASSERT_TRUE(after.ok) << after.error;
  EXPECT_GE(after.snapshot->version, acked2.version);
  EXPECT_EQ(after.snapshot->kb.conjuncts().size(),
            during.snapshot->kb.conjuncts().size() + 2);
  {
    logic::ParseResult parsed = logic::ParseFormula("P(C1)");
    ASSERT_TRUE(parsed.ok());
    Answer fresh =
        DegreeOfBelief(after.snapshot->kb, parsed.formula, fresh_options);
    ExpectIdenticalAnswers(after.answer, fresh, "P(C1)",
                           after.snapshot->version, &mismatches);
  }
  EXPECT_EQ(mismatches.load(), 0);

  kb_service.DrainMaintenance();
  const auto stats = kb_service.maintenance_stats();
  EXPECT_EQ(stats.queue_depth, 0u);
  // The two acks coalesced into ONE mint publishing both versions at
  // once (WaitForVersion on the first is satisfied by the higher head).
  EXPECT_EQ(stats.minted, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  // Both asserts were signature-preserving appends: patched, not rebuilt.
  EXPECT_EQ(stats.patched, 1u);
  EXPECT_EQ(stats.rebuilt, 0u);
}

TEST(ServiceStressTest, BatchPinsOneVersionForAllQueries) {
  KbService kb_service(StressServiceOptions());
  ASSERT_TRUE(kb_service.Load("t", kBaseKb, {"C2", "C3"}).ok);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    bool present = false;
    while (!stop.load(std::memory_order_relaxed)) {
      if (present) {
        kb_service.Retract("t", "Q(C0)");
      } else {
        kb_service.Assert("t", "Q(C0)");
      }
      present = !present;
    }
  });

  for (int i = 0; i < StressOps(24) / 2; ++i) {
    std::vector<KbService::QueryResult> results = kb_service.Batch(
        "t", {"P(C0)", "Q(C0)", "P(C0)", "(#(P(x))[x] <~ 0.5)"});
    uint64_t version = 0;
    for (const auto& result : results) {
      ASSERT_TRUE(result.ok) << result.error;
      ASSERT_NE(result.snapshot, nullptr);
      if (version == 0) version = result.snapshot->version;
      // One snapshot for the whole batch, whatever the writer does.
      EXPECT_EQ(result.snapshot->version, version);
    }
    // Duplicate queries against one pinned snapshot answer identically.
    EXPECT_EQ(results[0].answer.value, results[2].answer.value);
    EXPECT_EQ(results[0].answer.method, results[2].answer.method);
  }
  stop.store(true);
  writer.join();
}

TEST(ServiceStressTest, AdmissionControlRejectsBeyondQueueDepth) {
  SchedulerOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  QueryScheduler scheduler(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> ran{0};
  auto blocking_job = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    ran.fetch_add(1);
  };

  // First job occupies the worker; the queue holds two more; the fourth
  // submit must be rejected, and a different tenant must still be
  // admitted (per-tenant caps).
  ASSERT_TRUE(scheduler.Submit("a", blocking_job));
  // Wait until the worker has dequeued the first job (queue drains to 0).
  while (scheduler.stats().queued > 0 && scheduler.stats().running == 0) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(scheduler.Submit("a", blocking_job));
  ASSERT_TRUE(scheduler.Submit("a", blocking_job));
  EXPECT_FALSE(scheduler.Submit("a", blocking_job))
      << "fourth submit must trip the per-tenant admission cap";
  EXPECT_TRUE(scheduler.Submit("b", [&] { ran.fetch_add(1); }))
      << "a full tenant queue must not block other tenants";

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  while (ran.load() < 4) std::this_thread::yield();

  QueryScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 4u);
}

TEST(ServiceStressTest, RoundRobinServesTenantsFairly) {
  SchedulerOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 64;
  QueryScheduler scheduler(options);

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::vector<std::string> order;
  std::mutex order_mutex;

  auto tenant_job = [&](const std::string& tenant) {
    return [&, tenant] {
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return release; });
      }
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tenant);
    };
  };

  // Hold the single worker with a gate job, then let tenant "a" flood the
  // queue before "b" and "c" each submit one job.
  ASSERT_TRUE(scheduler.Submit("gate", tenant_job("gate")));
  while (scheduler.stats().running == 0) std::this_thread::yield();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.Submit("a", tenant_job("a")));
  }
  ASSERT_TRUE(scheduler.Submit("b", tenant_job("b")));
  ASSERT_TRUE(scheduler.Submit("c", tenant_job("c")));

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  while (true) {
    std::lock_guard<std::mutex> lock(order_mutex);
    if (order.size() == 9) break;
  }

  // Round-robin: b's and c's single jobs are served within the first few
  // turns instead of queuing behind a's flood of six.
  size_t b_position = 0;
  size_t c_position = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "b") b_position = i;
    if (order[i] == "c") c_position = i;
  }
  EXPECT_LT(b_position, 4u)
      << "tenant b's single job was starved by tenant a's flood";
  EXPECT_LT(c_position, 4u)
      << "tenant c's single job was starved by tenant a's flood";
}

TEST(ServiceStressTest, OpenFormulasRejectedAtAdmission) {
  // The engines abort the process on an unbound variable (programming
  // error inside the library); at the service boundary the formula comes
  // off the wire, so open formulas must be rejected cleanly instead of
  // killing the daemon.
  KbService kb_service(StressServiceOptions());
  ASSERT_TRUE(kb_service.Load("kb", "#(P(x))[x] ~= 0.3\n").ok);

  KbService::QueryResult open = kb_service.Query("kb", "P(y)");
  EXPECT_FALSE(open.ok);
  EXPECT_NE(open.error.find("free variables"), std::string::npos)
      << open.error;
  EXPECT_FALSE(kb_service.Assert("kb", "P(y)").ok);
  EXPECT_FALSE(kb_service.Load("kb2", "P(y)\n").ok);

  // The service survives and still answers closed queries.
  EXPECT_TRUE(kb_service.Query("kb", "(#(P(x))[x] <~ 0.5)").ok);
}

TEST(ServiceStressTest, VersionChainAndRetractSemantics) {
  KbService kb_service(StressServiceOptions());
  KbService::MutationResult v1 = kb_service.Load("kb", "#(P(x))[x] ~= 0.3\n");
  ASSERT_TRUE(v1.ok);

  KbService::MutationResult v2 = kb_service.Assert("kb", "P(C0)");
  ASSERT_TRUE(v2.ok);
  EXPECT_GT(v2.version, v1.version);
  // The ack fixes the version; the successor publishes asynchronously.
  ASSERT_TRUE(kb_service.WaitForVersion("kb", v2.version));

  // Unknown conjunct: no version is minted.
  KbService::MutationResult bad = kb_service.Retract("kb", "P(C1)");
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(kb_service.Snapshot("kb")->version, v2.version);

  // Retract keeps the vocabulary: C0 stays a constant, so the world
  // space — and the degree of belief — matches version 1's vocabulary
  // extended with C0, not version 1 itself.
  KbService::MutationResult v3 = kb_service.Retract("kb", "P(C0)");
  ASSERT_TRUE(v3.ok);
  ASSERT_TRUE(kb_service.WaitForVersion("kb", v3.version));
  std::shared_ptr<const KbSnapshot> head = kb_service.Snapshot("kb");
  EXPECT_EQ(head->version, v3.version);
  EXPECT_EQ(head->kb.conjuncts().size(), 1u);
  EXPECT_TRUE(head->kb.vocabulary().FindFunction("C0").has_value());

  // Queries on the pinned old snapshot still see P(C0).
  KbService::QueryResult now = kb_service.Query("kb", "P(C0)");
  ASSERT_TRUE(now.ok);
  EXPECT_EQ(now.snapshot->version, v3.version);
}

}  // namespace
}  // namespace rwl
