// End-to-end reproduction of the paper's worked examples through the public
// Inference facade (exactly what EXPERIMENTS.md records).  Each test names
// the example it reproduces and asserts the paper's reported value.
#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/logic/builder.h"

namespace rwl {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

InferenceOptions FastOptions() {
  InferenceOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32, 48};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

TEST(PaperExamples, E5_8_DirectInference) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "Jaun(Eric)\n"
      "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"
      "#(Hep(x))[x] <~_2 0.05\n"
      "#(Hep(x) ; Jaun(x) & Fever(x))[x] ~=_3 1\n"));
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", FastOptions());
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.8, 0.03);
}

TEST(PaperExamples, E5_8_OtherIndividualsIgnored) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "Jaun(Eric)\n"
      "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"
      "Hep(Tom)\n"));
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", FastOptions());
  ASSERT_EQ(answer.status, Answer::Status::kPoint);
  EXPECT_NEAR(answer.value, 0.8, 0.03);
}

TEST(PaperExamples, E5_11_DisjunctiveReferenceClassHarmless) {
  // The spurious class Jaun ∧ (¬Hep ∨ x = Eric) cannot shift the answer:
  // computed numerically by the profile engine (the class mentions Eric, so
  // no symbolic shortcut applies).
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "Jaun(Eric)\n"
      "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"));
  InferenceOptions options = FastOptions();
  options.use_symbolic = false;
  options.limit.domain_sizes = {24, 48};
  Answer answer = DegreeOfBelief(kb, "Hep(Eric)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.8, 0.05);
}

TEST(PaperExamples, E5_10_TweetyDoesNotFly) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
      "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
      "forall x. (Penguin(x) => Bird(x))\n"
      "Penguin(Tweety)\n"));
  Answer answer = DegreeOfBelief(kb, "Fly(Tweety)", FastOptions());
  ASSERT_TRUE(answer.status == Answer::Status::kPoint);
  EXPECT_NEAR(answer.value, 0.0, 0.03);
}

TEST(PaperExamples, E5_15_OpusThePenguinSwims) {
  // The taxonomy example: the minimal class (penguins) supplies 0.9.
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Swims(x) ; Penguin(x))[x] ~=_1 0.9\n"
      "#(Swims(x) ; Sparrow(x))[x] ~=_2 0.01\n"
      "#(Swims(x) ; Bird(x))[x] ~=_3 0.05\n"
      "#(Swims(x) ; Animal(x))[x] ~=_4 0.3\n"
      "#(Swims(x) ; Fish(x))[x] ~=_5 1\n"
      "forall x. (Penguin(x) => Bird(x))\n"
      "forall x. (Sparrow(x) => Bird(x))\n"
      "forall x. (Bird(x) => Animal(x))\n"
      "forall x. (Fish(x) => Animal(x))\n"
      "forall x. (Penguin(x) => !Sparrow(x))\n"
      "forall x. (Bird(x) => !Fish(x))\n"
      "Penguin(Opus)\n"
      "Black(Opus)\n"
      "LargeNose(Opus)\n"));
  Answer answer = DegreeOfBelief(kb, "Swims(Opus)", FastOptions());
  ASSERT_TRUE(answer.status == Answer::Status::kPoint ||
              answer.status == Answer::Status::kInterval)
      << answer.explanation;
  EXPECT_NEAR(answer.lo, 0.9, 0.03);
  EXPECT_NEAR(answer.hi, 0.9, 0.03);
}

TEST(PaperExamples, E5_22_TaySachsDisjunctiveClass) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(TS(x) ; EEJ(x) | FC(x))[x] ~= 0.02\n"
      "EEJ(Eric)\n"));
  Answer answer = DegreeOfBelief(kb, "TS(Eric)", FastOptions());
  ASSERT_TRUE(answer.status == Answer::Status::kPoint ||
              answer.status == Answer::Status::kInterval)
      << answer.explanation;
  EXPECT_NEAR(answer.lo, 0.02, 0.02);
  EXPECT_NEAR(answer.hi, 0.02, 0.02);
}

TEST(PaperExamples, E5_24_ChirpsStrengthInterval) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "(0.7 <~_1 #(Chirps(x) ; Bird(x))[x]) & "
      "(#(Chirps(x) ; Bird(x))[x] <~_2 0.8)\n"
      "(0 <~_3 #(Chirps(x) ; Magpie(x))[x]) & "
      "(#(Chirps(x) ; Magpie(x))[x] <~_4 0.99)\n"
      "forall x. (Magpie(x) => Bird(x))\n"
      "Magpie(Tweety)\n"));
  // The theorem guarantees Pr_∞ ∈ [0.7, 0.8]; the numeric sweep may sharpen
  // the interval to a point inside it.
  InferenceOptions options = FastOptions();
  options.use_profile = false;  // symbolic answer is the paper's claim
  options.use_maxent = false;
  options.use_exact_fallback = false;
  Answer answer = DegreeOfBelief(kb, "Chirps(Tweety)", options);
  ASSERT_EQ(answer.status, Answer::Status::kInterval) << answer.explanation;
  EXPECT_NEAR(answer.lo, 0.7, 1e-9);
  EXPECT_NEAR(answer.hi, 0.8, 1e-9);

  // And the numeric estimate falls inside the interval.
  InferenceOptions numeric = FastOptions();
  numeric.use_symbolic = false;
  numeric.limit.domain_sizes = {16, 24};
  numeric.limit.tolerance_scales = {1.0};
  Answer point = DegreeOfBelief(kb, "Chirps(Tweety)", numeric);
  ASSERT_EQ(point.status, Answer::Status::kPoint) << point.explanation;
  EXPECT_GE(point.value, 0.7 - 0.05);
  EXPECT_LE(point.value, 0.8 + 0.05);
}

TEST(PaperExamples, E5_25_MoodyMagpiesNotIgnored) {
  // Goodwin's example: random worlds pulls the answer below 0.9.
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Chirps(x) ; Bird(x))[x] ~=_1 0.9\n"
      "#(Chirps(x) ; Magpie(x) & Moody(x))[x] ~=_2 0.2\n"
      "forall x. (Magpie(x) => Bird(x))\n"
      "Magpie(Tweety)\n"));
  InferenceOptions options = FastOptions();
  options.use_symbolic = false;  // force the numeric path
  options.limit.domain_sizes = {10, 12};
  options.limit.tolerance_scales = {1.0};
  Answer answer = DegreeOfBelief(kb, "Chirps(Tweety)", options);
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  // The moody-magpie statistic pulls the value strictly below the 0.9 that
  // reference-class reasoning would give (the effect is small but real).
  EXPECT_LT(answer.value, 0.9);
  EXPECT_GT(answer.value, 0.5);
}

TEST(PaperExamples, NixonDiamondQuantitative) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Pacifist(x) ; Quaker(x))[x] ~=_1 0.8\n"
      "#(Pacifist(x) ; Republican(x))[x] ~=_2 0.8\n"
      "Quaker(Nixon)\n"
      "Republican(Nixon)\n"
      "exists! x. (Quaker(x) & Republican(x))\n"));
  Answer answer = DegreeOfBelief(kb, "Pacifist(Nixon)", FastOptions());
  ASSERT_EQ(answer.status, Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.64 / 0.68, 0.01);
}

TEST(PaperExamples, NixonDiamondConflictingDefaults) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Pacifist(x) ; Quaker(x))[x] ~=_1 1\n"
      "#(Pacifist(x) ; Republican(x))[x] ~=_2 0\n"
      "Quaker(Nixon)\n"
      "Republican(Nixon)\n"
      "exists! x. (Quaker(x) & Republican(x))\n"));
  Answer answer = DegreeOfBelief(kb, "Pacifist(Nixon)", FastOptions());
  EXPECT_EQ(answer.status, Answer::Status::kNonexistent);
}

TEST(PaperExamples, E5_28_Independence) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Hep(x) ; Jaun(x))[x] ~=_1 0.8\n"
      "Jaun(Eric)\n"
      "#(Over60(x) ; Patient(x))[x] ~=_5 0.4\n"
      "Patient(Eric)\n"));
  Answer answer =
      DegreeOfBelief(kb, "Hep(Eric) & Over60(Eric)", FastOptions());
  ASSERT_TRUE(answer.status == Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.32, 0.02);
}

TEST(PaperExamples, E4_4_ElephantZookeeper) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(Likes(x, y) ; Elephant(x) & Zookeeper(y))[x,y] ~=_1 1\n"
      "#(Likes(x, Fred) ; Elephant(x))[x] ~=_2 0\n"
      "Zookeeper(Fred)\n"
      "Elephant(Clyde)\n"
      "Zookeeper(Eric)\n"));
  Answer likes_eric = DegreeOfBelief(kb, "Likes(Clyde, Eric)", FastOptions());
  ASSERT_TRUE(likes_eric.status == Answer::Status::kPoint)
      << likes_eric.explanation;
  EXPECT_NEAR(likes_eric.value, 1.0, 1e-9);

  Answer likes_fred = DegreeOfBelief(kb, "Likes(Clyde, Fred)", FastOptions());
  ASSERT_TRUE(likes_fred.status == Answer::Status::kPoint)
      << likes_fred.explanation;
  EXPECT_NEAR(likes_fred.value, 0.0, 1e-9);
}

TEST(PaperExamples, E5_14_NestedDefaultsAliceRisesLate) {
  // Typically, people who normally go to bed late normally rise late;
  // Alice normally goes to bed late ⇒ she normally rises late.
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "#(#(RisesLate(x, y) ; Day(y))[y] ~=_1 1 ; "
      "#(ToBedLate(x, y2) ; Day(y2))[y2] ~=_2 1)[x] ~=_3 1\n"
      "#(ToBedLate(Alice, y2) ; Day(y2))[y2] ~=_2 1\n"));
  Answer answer = DegreeOfBelief(
      kb, "#(RisesLate(Alice, y) ; Day(y))[y] ~=_1 1", FastOptions());
  ASSERT_TRUE(answer.status == Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 1.0, 1e-9);
}

TEST(PaperExamples, Section7_2_RepresentationDependence) {
  // Pr(White(b)) = 1/2 with one predicate...
  KnowledgeBase plain;
  plain.mutable_vocabulary().AddPredicate("White", 1);
  plain.mutable_vocabulary().AddConstant("B");
  Answer white = DegreeOfBelief(plain, "White(B)", FastOptions());
  ASSERT_TRUE(white.status == Answer::Status::kPoint) << white.explanation;
  EXPECT_NEAR(white.value, 0.5, 0.01);

  // ...but 1/3 after refining ¬White into Red ⊎ Blue.
  KnowledgeBase refined;
  ASSERT_TRUE(refined.AddParsed(
      "forall x. (!White(x) <=> (Red(x) | Blue(x)))\n"
      "forall x. !(Red(x) & Blue(x))\n"));
  refined.mutable_vocabulary().AddConstant("B");
  Answer white3 = DegreeOfBelief(refined, "White(B)", FastOptions());
  ASSERT_TRUE(white3.status == Answer::Status::kPoint) << white3.explanation;
  EXPECT_NEAR(white3.value, 1.0 / 3.0, 0.01);
}

TEST(PaperExamples, Section7_2_FlyingBirdVariant) {
  // Half of birds fly; Tweety is a bird, Opus is something.
  // Pr(Fly(Tweety)) = 0.5 in both representations; Pr(Bird(Opus)) moves
  // from 1/2 to 2/3 under the FlyingBird encoding.
  KnowledgeBase direct;
  ASSERT_TRUE(direct.AddParsed(
      "#(Fly(x) ; Bird(x))[x] ~= 0.5\n"
      "Bird(Tweety)\n"));
  direct.mutable_vocabulary().AddConstant("Opus");
  Answer fly = DegreeOfBelief(direct, "Fly(Tweety)", FastOptions());
  ASSERT_TRUE(fly.status == Answer::Status::kPoint) << fly.explanation;
  EXPECT_NEAR(fly.value, 0.5, 0.02);
  // Pr(Bird(Opus)) converges to 1/2 slowly (conditioning on Bird(Tweety)
  // size-biases the bird class at finite N), so allow a wider band and use
  // larger domains.
  InferenceOptions big = FastOptions();
  big.limit.domain_sizes = {64, 96, 128};
  big.limit.tolerance_scales = {1.0};
  Answer bird = DegreeOfBelief(direct, "Bird(Opus)", big);
  ASSERT_TRUE(bird.status == Answer::Status::kPoint);
  EXPECT_NEAR(bird.value, 0.5, 0.05);

  KnowledgeBase flying_bird;
  ASSERT_TRUE(flying_bird.AddParsed(
      "#(FlyingBird(x) ; Bird(x))[x] ~= 0.5\n"
      "Bird(Tweety)\n"
      "forall x. (FlyingBird(x) => Bird(x))\n"));
  flying_bird.mutable_vocabulary().AddConstant("Opus");
  Answer fb = DegreeOfBelief(flying_bird, "FlyingBird(Tweety)",
                             FastOptions());
  ASSERT_TRUE(fb.status == Answer::Status::kPoint) << fb.explanation;
  EXPECT_NEAR(fb.value, 0.5, 0.02);
  Answer bird2 = DegreeOfBelief(flying_bird, "Bird(Opus)", FastOptions());
  ASSERT_TRUE(bird2.status == Answer::Status::kPoint);
  EXPECT_NEAR(bird2.value, 2.0 / 3.0, 0.02);
}

}  // namespace
}  // namespace rwl
