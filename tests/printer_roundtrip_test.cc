// Parser/printer round-trip property over generated formulas: under the
// interning arena, Parse(Print(f)) is not merely structurally equal to f —
// it is the SAME canonical node (pointer equality).  This is the property
// the corpus format and every textual reproducer rely on.
#include <random>

#include <gtest/gtest.h>

#include "src/logic/builder.h"
#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/workload/generators.h"

namespace rwl::logic {
namespace {

void ExpectRoundTrip(const FormulaPtr& f) {
  std::string text = ToString(f);
  ParseResult parsed = ParseFormula(text);
  ASSERT_TRUE(parsed.ok()) << "printed '" << text
                           << "' failed to parse: " << parsed.error;
  EXPECT_EQ(parsed.formula.get(), f.get())
      << "round trip lost identity: '" << text << "' reparsed as '"
      << ToString(parsed.formula) << "'";
}

TEST(PrinterRoundTrip, RandomUnaryKbsAndQueries) {
  std::mt19937 rng(20260730);
  for (int trial = 0; trial < 200; ++trial) {
    workload::UnaryKbParams params;
    params.num_predicates = 1 + trial % 3;
    params.num_constants = 1 + trial % 2;
    params.num_statements = 1 + trial % 3;
    params.num_facts = trial % 3;
    params.default_fraction = (trial % 4) * 0.25;
    params.max_depth = 1 + trial % 3;  // deep nesting included
    ExpectRoundTrip(workload::RandomUnaryKb(params, &rng));
    ExpectRoundTrip(workload::RandomQuery(params, &rng));
  }
}

TEST(PrinterRoundTrip, RandomMixedKbsAndQueries) {
  std::mt19937 rng(20260731);
  for (int trial = 0; trial < 200; ++trial) {
    workload::MixedKbParams params;
    params.num_unary = 1 + trial % 2;
    params.num_binary = 1 + trial % 2;
    params.num_constants = 1 + trial % 3;
    params.num_facts = 1 + trial % 2;
    params.num_axioms = trial % 3;
    params.num_statements = trial % 2;
    params.max_depth = 1 + trial % 3;
    ExpectRoundTrip(workload::RandomMixedKb(params, &rng));
    ExpectRoundTrip(workload::RandomMixedQuery(params, &rng));
  }
}

TEST(PrinterRoundTrip, RandomChainKbs) {
  std::mt19937 rng(20260732);
  for (int trial = 0; trial < 50; ++trial) {
    workload::ChainKb chain = workload::RandomChainKb(2 + trial % 3, &rng);
    ExpectRoundTrip(chain.kb);
    ExpectRoundTrip(chain.query);
  }
}

TEST(PrinterRoundTrip, HandWrittenEdgeCases) {
  TermPtr x = V("x");
  TermPtr k = C("K0");
  std::vector<FormulaPtr> cases = {
      Formula::True(),
      Formula::False(),
      P0("Raining"),
      Formula::Not(Formula::Not(P("A", k))),
      Eq(k, C("K1")),
      Formula::Iff(P("A", k), Formula::Implies(P("B", k), P("A", k))),
      ExistsUnique("x", P("A", x)),
      ExactlyN(2, "x", P("A", x)),
      // Nested proportion arithmetic with non-default tolerance indices.
      Formula::Compare(
          Expr::Add(Prop(P("A", x), {"x"}),
                    Expr::Mul(Num(0.25), CondProp(P("A", x), P("B", x),
                                                  {"x"}))),
          CompareOp::kApproxGeq, Num(1.0 / 3.0), 7),
      // Exact connectives (L= fragment).
      Formula::Compare(Prop(P("A", x), {"x"}), CompareOp::kLeq, Num(0.5)),
      Formula::Compare(Prop(P("A", x), {"x"}), CompareOp::kEq, Num(0.125)),
  };
  for (const auto& f : cases) ExpectRoundTrip(f);
}

}  // namespace
}  // namespace rwl::logic
