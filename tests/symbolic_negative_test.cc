// Negative / robustness tests for the symbolic engine: every theorem
// matcher must *refuse* when its side conditions fail, rather than return
// an unsound interval.  Each test perturbs a canonical positive case in
// exactly one way.
#include <gtest/gtest.h>

#include "src/engines/symbolic_engine.h"
#include "src/logic/builder.h"
#include "src/logic/transform.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

class SymbolicNegativeTest : public ::testing::Test {
 protected:
  std::optional<SymbolicAnswer> Direct(const FormulaPtr& kb,
                                       const FormulaPtr& query) {
    return engine_.TryDirectInference(AnalyzeKb(kb), query);
  }
  std::optional<SymbolicAnswer> Minimal(const FormulaPtr& kb,
                                        const FormulaPtr& query) {
    return engine_.TryMinimalReferenceClass(AnalyzeKb(kb), query);
  }
  std::optional<SymbolicAnswer> Strength(const FormulaPtr& kb,
                                         const FormulaPtr& query) {
    return engine_.TryStrengthRule(AnalyzeKb(kb), query);
  }
  std::optional<SymbolicAnswer> Dempster(const FormulaPtr& kb,
                                         const FormulaPtr& query) {
    return engine_.TryDempster(AnalyzeKb(kb), query);
  }

  SymbolicEngine engine_;
};

TEST_F(SymbolicNegativeTest, DirectInferenceNeedsMembershipFact) {
  FormulaPtr kb = logic::ApproxEq(
      CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}), 0.8, 1);
  EXPECT_FALSE(Direct(kb, P("Hep", C("Eric"))).has_value());
}

TEST_F(SymbolicNegativeTest, DirectInferenceRejectsConstantInRefclass) {
  // ψ(x) mentions Eric himself: the theorem's hypothesis fails (see the
  // disjunctive-reference-class discussion, Example 5.11).
  FormulaPtr spurious_class = Formula::And(
      P("Jaun", V("x")),
      Formula::Or(Formula::Not(P("Hep", V("x"))),
                  logic::Eq(V("x"), C("Eric"))));
  FormulaPtr kb = Formula::AndAll({
      logic::SubstituteVariable(spurious_class, "x", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), spurious_class, {"x"}),
                      0.0, 1),
  });
  EXPECT_FALSE(Direct(kb, P("Hep", C("Eric"))).has_value());
}

TEST_F(SymbolicNegativeTest, DirectInferenceRejectsRepeatedConstants) {
  // Pr(Hep(Tom) ∧ ¬Hep(Tom)-style pair queries with coinciding constants:
  // the ⃗c must be distinct (the Tom = Eric caveat after Theorem 5.16).
  FormulaPtr kb = logic::ApproxEq(
      Prop(Formula::And(P("Hep", V("x")),
                        Formula::Not(P("Hep", V("y")))),
           {"x", "y"}),
      0.2, 1);
  FormulaPtr bad_query = Formula::And(
      P("Hep", C("Tom")), Formula::Not(P("Hep", C("Tom"))));
  EXPECT_FALSE(Direct(kb, bad_query).has_value());
  // With distinct constants it applies (Theorem 5.6 with ψ = true).
  FormulaPtr good_query = Formula::And(
      P("Hep", C("Tom")), Formula::Not(P("Hep", C("Eric"))));
  ASSERT_TRUE(Direct(kb, good_query).has_value());
  EXPECT_DOUBLE_EQ(Direct(kb, good_query)->lo, 0.2);
}

TEST_F(SymbolicNegativeTest, MinimalClassRefusesWhenTargetSymbolLeaks) {
  // A universal conjunct constrains Fly outside the statistics: condition
  // (c) of Theorem 5.16 fails.
  FormulaPtr kb = Formula::AndAll({
      logic::Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 1),
      Formula::ForAll("x", Formula::Implies(P("Angel", V("x")),
                                            P("Fly", V("x")))),
      P("Bird", C("Tweety")),
  });
  EXPECT_FALSE(Minimal(kb, P("Fly", C("Tweety"))).has_value());
}

TEST_F(SymbolicNegativeTest, MinimalClassRefusesIncomparableClasses) {
  // Nixon-style incomparable classes: no unique minimal class.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("T", V("x")), P("A", V("x")), {"x"}), 0.8,
                      1),
      logic::ApproxEq(CondProp(P("T", V("x")), P("B", V("x")), {"x"}), 0.3,
                      2),
      P("A", C("K")),
      P("B", C("K")),
  });
  EXPECT_FALSE(Minimal(kb, P("T", C("K"))).has_value());
}

TEST_F(SymbolicNegativeTest, MinimalClassRefusesWithoutMembership) {
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("T", V("x")), P("A", V("x")), {"x"}), 0.8,
                      1),
      P("B", C("K")),  // K is a B, not known to be an A
  });
  EXPECT_FALSE(Minimal(kb, P("T", C("K"))).has_value());
}

TEST_F(SymbolicNegativeTest, StrengthRuleNeedsAChain) {
  FormulaPtr kb = Formula::AndAll({
      logic::InInterval(0.4, 1, CondProp(P("T", V("x")), P("A", V("x")),
                                         {"x"}),
                        0.6, 2),
      logic::InInterval(0.1, 3, CondProp(P("T", V("x")), P("B", V("x")),
                                         {"x"}),
                        0.9, 4),
      // A and B incomparable (no taxonomy conjunct).
      P("A", C("K")),
      P("B", C("K")),
  });
  EXPECT_FALSE(Strength(kb, P("T", C("K"))).has_value());
}

TEST_F(SymbolicNegativeTest, StrengthRuleNeedsAStrictlyTightestInterval) {
  // Intervals [0.4, 0.6] ⊂ [0.3, 0.7] but the subclass has the tighter
  // one — then it's plain specificity, and 5.23's tightest-is-elsewhere
  // pattern does not produce anything new.  If neither interval is
  // strictly inside the other, the matcher must refuse.
  FormulaPtr kb = Formula::AndAll({
      logic::InInterval(0.3, 1, CondProp(P("T", V("x")), P("A", V("x")),
                                         {"x"}),
                        0.5, 2),
      logic::InInterval(0.4, 3, CondProp(P("T", V("x")), P("B", V("x")),
                                         {"x"}),
                        0.6, 4),
      Formula::ForAll("x", Formula::Implies(P("A", V("x")),
                                            P("B", V("x")))),
      P("A", C("K")),
  });
  EXPECT_FALSE(Strength(kb, P("T", C("K"))).has_value());
}

TEST_F(SymbolicNegativeTest, DempsterNeedsDisjointnessWitness) {
  // No ∃!x(Quaker ∧ Republican) conjunct: the overlap is unknown, the
  // combination rule must not fire.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                               {"x"}),
                      0.8, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.8, 2),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
  });
  EXPECT_FALSE(Dempster(kb, P("Pacifist", C("Nixon"))).has_value());
}

TEST_F(SymbolicNegativeTest, DempsterNeedsPointValues) {
  FormulaPtr kb = Formula::AndAll({
      logic::InInterval(0.7, 1, CondProp(P("Pacifist", V("x")),
                                         P("Quaker", V("x")), {"x"}),
                        0.9, 2),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.8, 3),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
      logic::ExistsUnique("x", Formula::And(P("Quaker", V("x")),
                                            P("Republican", V("x")))),
  });
  EXPECT_FALSE(Dempster(kb, P("Pacifist", C("Nixon"))).has_value());
}

TEST_F(SymbolicNegativeTest, DempsterRejectsTargetInsideRefclass) {
  // P occurs in a reference class: the theorem forbids it.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               Formula::And(P("Quaker", V("x")),
                                            P("Pacifist", V("x"))),
                               {"x"}),
                      0.8, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.8, 2),
      P("Quaker", C("Nixon")),
      P("Pacifist", C("Nixon")),
      P("Republican", C("Nixon")),
  });
  EXPECT_FALSE(Dempster(kb, P("Pacifist", C("Nixon"))).has_value());
}

}  // namespace
}  // namespace rwl::engines
