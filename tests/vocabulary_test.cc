#include "src/logic/vocabulary.h"

#include <gtest/gtest.h>

namespace rwl::logic {
namespace {

TEST(Vocabulary, RegistersPredicates) {
  Vocabulary vocab;
  int bird = vocab.AddPredicate("Bird", 1);
  int likes = vocab.AddPredicate("Likes", 2);
  EXPECT_EQ(bird, 0);
  EXPECT_EQ(likes, 1);
  EXPECT_EQ(vocab.num_predicates(), 2);
  auto found = vocab.FindPredicate("Bird");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->arity, 1);
}

TEST(Vocabulary, RegistrationIsIdempotent) {
  Vocabulary vocab;
  int a = vocab.AddPredicate("Bird", 1);
  int b = vocab.AddPredicate("Bird", 1);
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.num_predicates(), 1);
}

TEST(Vocabulary, ConstantsAreNullaryFunctions) {
  Vocabulary vocab;
  vocab.AddConstant("Tweety");
  vocab.AddFunction("NextDay", 1);
  auto constants = vocab.Constants();
  ASSERT_EQ(constants.size(), 1u);
  EXPECT_EQ(constants[0].name, "Tweety");
}

TEST(Vocabulary, UnknownSymbolLookup) {
  Vocabulary vocab;
  EXPECT_FALSE(vocab.FindPredicate("Nope").has_value());
  EXPECT_FALSE(vocab.FindFunction("Nope").has_value());
}

TEST(Vocabulary, UnaryRelationalDetection) {
  Vocabulary unary;
  unary.AddPredicate("Bird", 1);
  unary.AddConstant("Tweety");
  EXPECT_TRUE(unary.IsUnaryRelational());

  Vocabulary binary;
  binary.AddPredicate("Likes", 2);
  EXPECT_FALSE(binary.IsUnaryRelational());

  Vocabulary functional;
  functional.AddPredicate("Bird", 1);
  functional.AddFunction("NextDay", 1);
  EXPECT_FALSE(functional.IsUnaryRelational());
}

}  // namespace
}  // namespace rwl::logic
