#include <cmath>

#include <gtest/gtest.h>

#include "src/engines/maxent_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/maxent/constraints.h"
#include "src/maxent/solver.h"

namespace rwl {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

TEST(MaxEntSolver, UnconstrainedIsUniform) {
  maxent::Problem problem;
  problem.dim = 4;
  maxent::Solution s = maxent::Solve(problem);
  ASSERT_TRUE(s.feasible);
  for (double p : s.p) EXPECT_NEAR(p, 0.25, 1e-6);
  EXPECT_NEAR(s.entropy, std::log(4.0), 1e-6);
}

TEST(MaxEntSolver, SupportRestriction) {
  maxent::Problem problem;
  problem.dim = 4;
  problem.support = {true, false, true, false};
  maxent::Solution s = maxent::Solve(problem);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.p[0], 0.5, 1e-6);
  EXPECT_NEAR(s.p[1], 0.0, 1e-12);
  EXPECT_NEAR(s.p[2], 0.5, 1e-6);
}

TEST(MaxEntSolver, SingleMassConstraint) {
  // p0 + p1 ≤ 0.3 over 4 cells: maxent puts p0 = p1 = 0.15, p2 = p3 = 0.35.
  maxent::Problem problem;
  problem.dim = 4;
  maxent::LinearConstraint c;
  c.coef = {1.0, 1.0, 0.0, 0.0};
  c.bound = 0.3;
  problem.constraints.push_back(c);
  maxent::Solution s = maxent::Solve(problem);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.p[0], 0.15, 5e-3);
  EXPECT_NEAR(s.p[1], 0.15, 5e-3);
  EXPECT_NEAR(s.p[2], 0.35, 5e-3);
  EXPECT_NEAR(s.p[3], 0.35, 5e-3);
}

TEST(MaxEntSolver, EqualityViaPairedInequalities) {
  // p0 = 0.7 exactly (paired bounds with τ = 0).
  maxent::Problem problem;
  problem.dim = 2;
  maxent::LinearConstraint upper;
  upper.coef = {1.0, 0.0};
  upper.bound = 0.7;
  maxent::LinearConstraint lower;
  lower.coef = {-1.0, 0.0};
  lower.bound = -0.7;
  problem.constraints = {upper, lower};
  maxent::Solution s = maxent::Solve(problem);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.p[0], 0.7, 2e-3);
  EXPECT_NEAR(s.p[1], 0.3, 2e-3);
}

TEST(MaxEntSolver, InfeasibleDetected) {
  // p0 ≥ 0.8 and p0 ≤ 0.1 cannot both hold.
  maxent::Problem problem;
  problem.dim = 2;
  maxent::LinearConstraint a;
  a.coef = {-1.0, 0.0};
  a.bound = -0.8;
  maxent::LinearConstraint b;
  b.coef = {1.0, 0.0};
  b.bound = 0.1;
  problem.constraints = {a, b};
  maxent::Solution s = maxent::Solve(problem);
  EXPECT_FALSE(s.feasible);
}

TEST(MaxEntConstraints, ExtractsTaxonomyAndStatistics) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("Bird", 1);
  vocab.AddPredicate("Penguin", 1);
  vocab.AddConstant("Tweety");
  FormulaPtr kb = Formula::AndAll({
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      logic::ApproxEq(CondProp(P("Penguin", V("x")), P("Bird", V("x")),
                               {"x"}),
                      0.1, 1),
      P("Penguin", C("Tweety")),
  });
  auto extracted = maxent::ExtractUnaryKb(
      vocab, kb, semantics::ToleranceVector::Uniform(0.01));
  ASSERT_TRUE(extracted.ok) << extracted.error;
  // Penguin ∧ ¬Bird excluded from the support.
  int excluded = 0;
  for (bool s : extracted.problem.support) excluded += s ? 0 : 1;
  EXPECT_EQ(excluded, 1);
  EXPECT_EQ(extracted.problem.constraints.size(), 2u);  // the ≈ pair
  ASSERT_TRUE(extracted.constant_facts.count("Tweety") > 0);
}

TEST(MaxEntConstraints, RejectsNonUnary) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("Likes", 2);
  auto extracted = maxent::ExtractUnaryKb(
      vocab, Formula::True(), semantics::ToleranceVector::Uniform(0.01));
  EXPECT_FALSE(extracted.ok);
}

TEST(MaxEntConstraints, RejectsUnsupportedConjuncts) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  auto extracted = maxent::ExtractUnaryKb(
      vocab, Formula::Exists("x", P("A", V("x"))),
      semantics::ToleranceVector::Uniform(0.01));
  EXPECT_FALSE(extracted.ok);
}

TEST(MaxEntEngine, Section6WorkedExample) {
  // Section 6: KB = ∀x P1(x) ∧ ||P1 ∧ P2||_x ⪯ 0.3 gives the maxent point
  // (0.3, 0.7, 0, 0) and Pr(P2(c) | KB) = 0.3.
  logic::Vocabulary vocab;
  vocab.AddPredicate("P1", 1);
  vocab.AddPredicate("P2", 1);
  vocab.AddConstant("C0");
  FormulaPtr kb = Formula::And(
      Formula::ForAll("x", P("P1", V("x"))),
      logic::ApproxLeq(Prop(Formula::And(P("P1", V("x")), P("P2", V("x"))),
                            {"x"}),
                       0.3, 1));
  engines::MaxEntEngine engine;
  auto result = engine.InferLimit(vocab, kb, P("P2", C("C0")),
                                  semantics::ToleranceVector::Uniform(0.02));
  ASSERT_TRUE(result.supported) << result.note;
  EXPECT_NEAR(result.value, 0.3, 0.02);
}

TEST(MaxEntEngine, Example5_29_NoIndependenceFromMaxent) {
  // KB: ||Black|Bird|| ≈ 0.2 ∧ ||Bird|| ≈ 0.1.  Pr(Black(Clyde)) ≈ 0.47,
  // NOT 0.2 (maximum entropy does not impose independence here).
  logic::Vocabulary vocab;
  vocab.AddPredicate("Black", 1);
  vocab.AddPredicate("Bird", 1);
  vocab.AddConstant("Clyde");
  FormulaPtr kb = Formula::And(
      logic::ApproxEq(CondProp(P("Black", V("x")), P("Bird", V("x")), {"x"}),
                      0.2, 1),
      logic::ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.1, 2));
  engines::MaxEntEngine engine;
  auto result = engine.InferLimit(vocab, kb, P("Black", C("Clyde")),
                                  semantics::ToleranceVector::Uniform(0.01));
  ASSERT_TRUE(result.supported) << result.note;
  // Closed form: among non-birds the maxent point splits the remaining 0.9
  // evenly between Black and ¬Black; total black mass = 0.1·0.2 + 0.45.
  EXPECT_NEAR(result.value, 0.47, 0.02);
}

TEST(MaxEntEngine, ConditioningOnConstantFacts) {
  // Pr(Hep(Eric) | Jaun(Eric), ||Hep|Jaun||≈0.8) = 0.8 via the maxent path.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Hep", 1);
  vocab.AddPredicate("Jaun", 1);
  vocab.AddConstant("Eric");
  FormulaPtr kb = Formula::And(
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1));
  engines::MaxEntEngine engine;
  auto result = engine.InferLimit(vocab, kb, P("Hep", C("Eric")),
                                  semantics::ToleranceVector::Uniform(0.01));
  ASSERT_TRUE(result.supported) << result.note;
  EXPECT_NEAR(result.value, 0.8, 0.02);
}

TEST(MaxEntEngine, ConcentrationMatchesProfileEngine) {
  // The profile engine at growing N approaches the maxent-engine limit
  // (the Section 6 concentration phenomenon).
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  vocab.AddPredicate("B", 1);
  vocab.AddConstant("K");
  FormulaPtr kb = Formula::And(
      logic::ApproxEq(CondProp(P("B", V("x")), P("A", V("x")), {"x"}), 0.6,
                      1),
      P("A", C("K")));
  FormulaPtr query = P("B", C("K"));
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.03);

  engines::MaxEntEngine maxent_engine;
  auto limit = maxent_engine.InferAt(vocab, kb, query, tol);
  ASSERT_TRUE(limit.supported) << limit.note;

  engines::ProfileEngine profile;
  double prev_gap = 1.0;
  for (int n : {16, 48, 96}) {
    auto finite = profile.DegreeAt(vocab, kb, query, n, tol);
    ASSERT_TRUE(finite.well_defined);
    double gap = std::fabs(finite.probability - limit.value);
    EXPECT_LT(gap, prev_gap + 0.05) << "N=" << n;
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.05);
}

}  // namespace
}  // namespace rwl
