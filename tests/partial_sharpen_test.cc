// The kPartial interval-sharpening contract: a sound symbolic interval
// (from interval-valued statistics) survives as the answer when no
// numeric strategy applies, and is sharpened to a point by a later
// numeric strategy when one does — with both methods credited.
#include <span>
#include <string>

#include <gtest/gtest.h>

#include "src/core/engine_registry.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/planner.h"
#include "src/logic/parser.h"

namespace rwl {
namespace {

// Interval statistics: 70-90% of birds fly, Tweety is a bird.  Direct
// inference gives Pr ∈ [0.7, 0.9]; the profile sweep pins the point.
KnowledgeBase IntervalBirdKb() {
  KnowledgeBase kb;
  std::string error;
  EXPECT_TRUE(kb.AddParsed("#(Fly(x) ; Bird(x))[x] >~ 0.7\n"
                           "#(Fly(x) ; Bird(x))[x] <~ 0.9\n"
                           "Bird(Tweety)\n",
                           &error))
      << error;
  return kb;
}

InferenceOptions FastOptions() {
  InferenceOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {8, 12, 16};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

const PlanStep* RanStep(const Answer& answer, const std::string& strategy) {
  if (answer.plan == nullptr) return nullptr;
  for (const PlanStep& step : answer.plan->steps) {
    if (step.strategy == strategy &&
        step.action == PlanStep::Action::kRan) {
      return &step;
    }
  }
  return nullptr;
}

TEST(PartialSharpenTest, SymbolicAloneYieldsTheInterval) {
  KnowledgeBase kb = IntervalBirdKb();
  InferenceOptions options = FastOptions();
  options.use_profile = false;
  options.use_maxent = false;
  options.use_exact_fallback = false;
  Answer answer = DegreeOfBelief(kb, "Fly(Tweety)", options);
  ASSERT_EQ(answer.status, Answer::Status::kInterval);
  EXPECT_NEAR(answer.lo, 0.7, 0.06);
  EXPECT_NEAR(answer.hi, 0.9, 0.06);
  // The symbolic strategy reported kPartial; with nothing to sharpen it,
  // the interval survives as the final answer.
  const PlanStep* symbolic = RanStep(answer, "symbolic");
  ASSERT_NE(symbolic, nullptr);
  EXPECT_EQ(symbolic->outcome, "partial");
}

TEST(PartialSharpenTest, NumericStrategySharpensTheInterval) {
  KnowledgeBase kb = IntervalBirdKb();
  InferenceOptions options = FastOptions();

  // Symbolic-only answer for the containment assertion below.
  InferenceOptions symbolic_only = options;
  symbolic_only.use_profile = false;
  symbolic_only.use_maxent = false;
  symbolic_only.use_exact_fallback = false;
  Answer interval = DegreeOfBelief(kb, "Fly(Tweety)", symbolic_only);
  ASSERT_EQ(interval.status, Answer::Status::kInterval);

  Answer sharpened = DegreeOfBelief(kb, "Fly(Tweety)", options);
  ASSERT_EQ(sharpened.status, Answer::Status::kPoint);
  // The point lands inside (a slightly widened copy of) the interval.
  EXPECT_GE(sharpened.value, interval.lo - 0.05);
  EXPECT_LE(sharpened.value, interval.hi + 0.05);
  // Both strategies are credited in the method string.
  EXPECT_NE(sharpened.method.find("5.6"), std::string::npos)
      << sharpened.method;
  EXPECT_NE(sharpened.method.find("profile"), std::string::npos)
      << sharpened.method;
  // And the plan trace shows the partial → final fallthrough.
  const PlanStep* symbolic = RanStep(sharpened, "symbolic");
  ASSERT_NE(symbolic, nullptr);
  EXPECT_EQ(symbolic->outcome, "partial");
  const PlanStep* profile = RanStep(sharpened, "profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->outcome, "final");
}

TEST(PartialSharpenTest, CustomRegistryPreservesThePartialContract) {
  // A registry with only the symbolic strategy: the partial interval is
  // the best available answer through the planner's fallback path.
  KnowledgeBase kb = IntervalBirdKb();
  InferenceOptions options = FastOptions();
  logic::FormulaPtr query = logic::ParseFormula("Fly(Tweety)").formula;
  QueryContext ctx = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(&query, 1), options);

  EngineRegistry registry;
  registry.Register(0, EngineRegistry::Default().Find("symbolic"));
  Answer symbolic_only = registry.Infer(ctx, query, options);
  EXPECT_EQ(symbolic_only.status, Answer::Status::kInterval);

  // Adding the profile strategy sharpens it through the same planner.
  registry.Register(10, EngineRegistry::Default().Find("profile"));
  Answer sharpened = registry.Infer(ctx, query, options);
  EXPECT_EQ(sharpened.status, Answer::Status::kPoint);
}

}  // namespace
}  // namespace rwl
