#include "src/semantics/tolerance.h"

#include <gtest/gtest.h>

namespace rwl::semantics {
namespace {

TEST(ToleranceVector, DefaultAndOverrides) {
  ToleranceVector tol(0.05);
  EXPECT_DOUBLE_EQ(tol.Get(1), 0.05);
  EXPECT_DOUBLE_EQ(tol.Get(7), 0.05);
  tol.Set(2, 0.001);
  EXPECT_DOUBLE_EQ(tol.Get(2), 0.001);
  EXPECT_DOUBLE_EQ(tol.Get(1), 0.05);
}

TEST(ToleranceVector, UniformFactory) {
  ToleranceVector tol = ToleranceVector::Uniform(0.1);
  EXPECT_DOUBLE_EQ(tol.Get(42), 0.1);
}

TEST(ToleranceVector, ScaledPreservesRelativeStrengths) {
  // Section 5.3: the τ → 0 limit must preserve default priorities, i.e.
  // scaling is uniform across indices.
  ToleranceVector tol(0.1);
  tol.Set(1, 0.001);   // a strong default
  tol.Set(2, 0.2);     // a weak one
  ToleranceVector scaled = tol.Scaled(0.5);
  EXPECT_DOUBLE_EQ(scaled.Get(1), 0.0005);
  EXPECT_DOUBLE_EQ(scaled.Get(2), 0.1);
  EXPECT_DOUBLE_EQ(scaled.Get(9), 0.05);
  // Ratios unchanged.
  EXPECT_DOUBLE_EQ(scaled.Get(2) / scaled.Get(1), tol.Get(2) / tol.Get(1));
}

TEST(ToleranceVector, ScalingComposes) {
  ToleranceVector tol(0.08);
  tol.Set(3, 0.4);
  ToleranceVector twice = tol.Scaled(0.5).Scaled(0.5);
  ToleranceVector quarter = tol.Scaled(0.25);
  EXPECT_DOUBLE_EQ(twice.Get(3), quarter.Get(3));
  EXPECT_DOUBLE_EQ(twice.Get(1), quarter.Get(1));
}

}  // namespace
}  // namespace rwl::semantics
