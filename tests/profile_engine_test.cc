#include "src/engines/profile_engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/logic/builder.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

semantics::ToleranceVector Tol(double v) {
  return semantics::ToleranceVector::Uniform(v);
}

TEST(ProfileEngine, SupportsOnlyUnaryRelational) {
  ProfileEngine engine;
  logic::Vocabulary unary;
  unary.AddPredicate("A", 1);
  unary.AddConstant("K");
  EXPECT_TRUE(engine.Supports(unary, Formula::True(), Formula::True(), 16));

  logic::Vocabulary binary;
  binary.AddPredicate("R", 2);
  EXPECT_FALSE(engine.Supports(binary, Formula::True(), Formula::True(), 16));

  logic::Vocabulary functional;
  functional.AddPredicate("A", 1);
  functional.AddFunction("F", 1);
  EXPECT_FALSE(
      engine.Supports(functional, Formula::True(), Formula::True(), 16));
}

TEST(ProfileEngine, TrivialPriorIsHalf) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("White", 1);
  vocab.AddConstant("B");
  ProfileEngine engine;
  for (int n : {1, 4, 16, 64}) {
    FiniteResult r = engine.DegreeAt(vocab, Formula::True(),
                                     P("White", C("B")), n, Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    EXPECT_NEAR(r.probability, 0.5, 1e-9) << "N=" << n;
  }
}

TEST(ProfileEngine, DirectInferenceAtLargeN) {
  // Example 5.8 core: Pr(Hep(Eric) | Jaun(Eric) ∧ ||Hep|Jaun|| ≈ 0.8) ≈ 0.8.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Hep", 1);
  vocab.AddPredicate("Jaun", 1);
  vocab.AddConstant("Eric");
  FormulaPtr kb = Formula::And(
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1));
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, kb, P("Hep", C("Eric")), 60,
                                   Tol(0.05));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 0.8, 0.03);
}

TEST(ProfileEngine, WorldCountMatchesClosedForm) {
  // KB = true over one predicate: total worlds = 2^N.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(), Formula::True(),
                                   10, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.log_denominator, 10 * std::log(2.0), 1e-9);
}

TEST(ProfileEngine, WorldCountWithConstant) {
  // One predicate + one constant: 2^N · N interpretations.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  vocab.AddConstant("K");
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(), Formula::True(),
                                   8, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.log_denominator, 8 * std::log(2.0) + std::log(8.0), 1e-9);
}

TEST(ProfileEngine, TaxonomyPruningMatchesSemantics) {
  // ∀x(Penguin ⇒ Bird): atoms with Penguin ∧ ¬Bird are forced empty.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Bird", 1);
  vocab.AddPredicate("Penguin", 1);
  FormulaPtr kb = Formula::ForAll(
      "x", Formula::Implies(P("Penguin", V("x")), P("Bird", V("x"))));
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, kb, Formula::True(), 6, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  // Each element independently: 3 allowed atoms of 4 → 3^6 worlds.
  EXPECT_NEAR(r.log_denominator, 6 * std::log(3.0), 1e-9);
}

TEST(ProfileEngine, UnsatisfiableIsUndefined) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  FormulaPtr kb = Formula::And(Formula::Exists("x", P("A", V("x"))),
                               Formula::ForAll("x", Formula::Not(P("A", V("x")))));
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, kb, Formula::True(), 8, Tol(0.1));
  EXPECT_FALSE(r.well_defined);
}

TEST(ProfileEngine, EqualityBetweenConstants) {
  logic::Vocabulary vocab;
  vocab.AddConstant("C1");
  vocab.AddConstant("C2");
  // With an empty predicate set there is a single atom; placements encode
  // only coincidence.  Pr(C1 = C2) = 1/N.
  ProfileEngine engine;
  for (int n : {2, 5, 10}) {
    FiniteResult r = engine.DegreeAt(vocab, Formula::True(),
                                     logic::Eq(C("C1"), C("C2")), n,
                                     Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    EXPECT_NEAR(r.probability, 1.0 / n, 1e-9) << "N=" << n;
  }
}

TEST(ProfileEngine, DefaultsConcentrate) {
  // Birds typically fly; Tweety is a bird ⇒ Pr(Fly(Tweety)) → 1.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Bird", 1);
  vocab.AddPredicate("Fly", 1);
  vocab.AddConstant("Tweety");
  FormulaPtr kb = Formula::And(
      P("Bird", C("Tweety")),
      logic::Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}));
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, kb, P("Fly", C("Tweety")), 80,
                                   Tol(0.02));
  ASSERT_TRUE(r.well_defined);
  EXPECT_GT(r.probability, 0.95);
}

TEST(ProfileEngine, ExistentialQuantifierOverProfiles) {
  // Pr(∃x A(x)) = 1 - 2^-N.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ProfileEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(),
                                   Formula::Exists("x", P("A", V("x"))), 6,
                                   Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 1.0 - std::pow(2.0, -6), 1e-9);
}

TEST(ProfileEngine, TwoVariableProportionQuery) {
  // Pr over worlds of ||A(x) ∧ A(y)||_{x,y} ≤ 1: trivially true.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ProfileEngine engine;
  FormulaPtr query = Formula::Compare(
      Prop(Formula::And(P("A", V("x")), P("A", V("y"))), {"x", "y"}),
      logic::CompareOp::kLeq, logic::Num(1.0));
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(), query, 6,
                                   Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 1.0, 1e-12);
}

TEST(ProfileEngine, BudgetExhaustionReported) {
  ProfileEngine::Options options;
  options.max_leaves = 3;
  ProfileEngine engine(options);
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  vocab.AddPredicate("B", 1);
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(), Formula::True(),
                                   32, Tol(0.1));
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.well_defined);
}

}  // namespace
}  // namespace rwl::engines
