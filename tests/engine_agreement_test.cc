// Property test: the profile engine computes exactly the same Pr_N^τ as
// brute-force world enumeration on randomly generated unary KBs.  This is
// the central correctness invariant of the fast engine — the two compute
// the same definitional quantity by entirely different decompositions.
#include <random>

#include <gtest/gtest.h>

#include "src/core/query_context.h"
#include "src/engines/exact_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/workload/generators.h"

namespace rwl::engines {
namespace {

using logic::Formula;
using logic::FormulaPtr;

struct AgreementCase {
  int num_predicates;
  int num_constants;
  int num_statements;
  int num_facts;
  int domain_size;
  int trials;
};

class EngineAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(EngineAgreementTest, ProfileMatchesExact) {
  const AgreementCase& param = GetParam();
  std::mt19937 rng(977 + param.num_predicates * 31 +
                   param.num_constants * 7 + param.domain_size);
  ExactEngine exact;
  ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.15);

  int compared = 0;
  for (int trial = 0; trial < param.trials; ++trial) {
    workload::UnaryKbParams params;
    params.num_predicates = param.num_predicates;
    params.num_constants = param.num_constants;
    params.num_statements = param.num_statements;
    params.num_facts = param.num_facts;
    FormulaPtr kb = workload::RandomUnaryKb(params, &rng);
    FormulaPtr query = workload::RandomQuery(params, &rng);

    logic::Vocabulary vocab;
    // Register the full generator vocabulary so both engines agree on the
    // world space even when a predicate/constant is unused.
    for (const auto& p : workload::GeneratorPredicates(param.num_predicates)) {
      vocab.AddPredicate(p, 1);
    }
    for (const auto& c : workload::GeneratorConstants(param.num_constants)) {
      vocab.AddConstant(c);
    }
    logic::RegisterSymbols(kb, &vocab);
    logic::RegisterSymbols(query, &vocab);

    if (!exact.Supports(vocab, kb, query, param.domain_size)) continue;
    FiniteResult ground_truth =
        exact.DegreeAt(vocab, kb, query, param.domain_size, tol);
    FiniteResult fast =
        profile.DegreeAt(vocab, kb, query, param.domain_size, tol);

    ASSERT_EQ(ground_truth.well_defined, fast.well_defined)
        << "KB: " << logic::ToString(kb)
        << "\nquery: " << logic::ToString(query);
    if (!ground_truth.well_defined) continue;
    ++compared;
    EXPECT_NEAR(ground_truth.probability, fast.probability, 1e-9)
        << "KB: " << logic::ToString(kb)
        << "\nquery: " << logic::ToString(query);
    EXPECT_NEAR(ground_truth.log_denominator, fast.log_denominator, 1e-7)
        << "world counts diverged; KB: " << logic::ToString(kb);

    // Context path: marking (first query at a sweep point), recording
    // (second) and replay (third) must all be bit-identical to the direct
    // computation.
    rwl::QueryContext ctx(vocab, kb, /*caching_enabled=*/true);
    FiniteResult recorded =
        profile.DegreeAt(ctx, Formula::True(), param.domain_size, tol);
    EXPECT_EQ(recorded.well_defined, fast.well_defined);
    profile.DegreeAt(ctx, Formula::False(), param.domain_size, tol);
    FiniteResult replayed =
        profile.DegreeAt(ctx, query, param.domain_size, tol);
    EXPECT_EQ(replayed.well_defined, fast.well_defined);
    EXPECT_EQ(replayed.probability, fast.probability)
        << "cached replay diverged; KB: " << logic::ToString(kb)
        << "\nquery: " << logic::ToString(query);
    EXPECT_EQ(replayed.log_numerator, fast.log_numerator);
    EXPECT_EQ(replayed.log_denominator, fast.log_denominator);

    rwl::QueryContext uncached_ctx(vocab, kb, /*caching_enabled=*/false);
    FiniteResult uncached =
        profile.DegreeAt(uncached_ctx, query, param.domain_size, tol);
    EXPECT_EQ(uncached.probability, fast.probability);
    EXPECT_EQ(uncached.log_denominator, fast.log_denominator);
  }
  // The sweep must have actually exercised the engines (random KBs with few
  // predicates are often unsatisfiable at this tolerance, so the bound is
  // deliberately loose).
  EXPECT_GE(compared, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineAgreementTest,
    ::testing::Values(
        AgreementCase{1, 1, 1, 1, 5, 40},
        AgreementCase{2, 1, 2, 1, 5, 40},
        AgreementCase{2, 2, 2, 2, 4, 40},
        AgreementCase{3, 1, 2, 1, 4, 30},
        AgreementCase{3, 2, 3, 2, 3, 30},
        AgreementCase{2, 3, 1, 2, 4, 25},
        AgreementCase{1, 2, 2, 2, 6, 25}));

// Quantified and equality-laden queries agree as well (these stress the
// placement bookkeeping rather than the statistics).
TEST(EngineAgreementSpecials, QuantifiersAndEquality) {
  using logic::C;
  using logic::P;
  using logic::V;
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  vocab.AddPredicate("B", 1);
  vocab.AddConstant("K0");
  vocab.AddConstant("K1");

  std::vector<FormulaPtr> kbs = {
      Formula::True(),
      P("A", C("K0")),
      Formula::And(P("A", C("K0")), Formula::Not(P("A", C("K1")))),
      Formula::Exists("x", Formula::And(P("A", V("x")), P("B", V("x")))),
      logic::Eq(C("K0"), C("K1")),
      Formula::Not(logic::Eq(C("K0"), C("K1"))),
      logic::ExistsUnique("x", P("A", V("x"))),
  };
  std::vector<FormulaPtr> queries = {
      P("A", C("K1")),
      logic::Eq(C("K0"), C("K1")),
      Formula::ForAll("x", Formula::Implies(P("A", V("x")), P("B", V("x")))),
      logic::ExistsUnique("x", P("A", V("x"))),
      Formula::Exists(
          "x", Formula::And(logic::Eq(V("x"), C("K0")), P("B", V("x")))),
  };

  ExactEngine exact;
  ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.2);
  for (int n : {2, 3, 4}) {
    for (const auto& kb : kbs) {
      for (const auto& query : queries) {
        FiniteResult g = exact.DegreeAt(vocab, kb, query, n, tol);
        FiniteResult f = profile.DegreeAt(vocab, kb, query, n, tol);
        ASSERT_EQ(g.well_defined, f.well_defined)
            << logic::ToString(kb) << " ? " << logic::ToString(query);
        if (!g.well_defined) continue;
        EXPECT_NEAR(g.probability, f.probability, 1e-9)
            << "N=" << n << " KB: " << logic::ToString(kb)
            << " query: " << logic::ToString(query);
      }
    }
  }
}

}  // namespace
}  // namespace rwl::engines
