// Durability tests for the WAL + crash-recovery + replication layer.
//
// The contract under test: a mutation ACK means the op is fsync'd in the
// KB's write-ahead log, so (1) a process that acked and then died — even
// SIGKILL mid-append — recovers to a state containing every acked
// mutation and answering queries BIT-IDENTICALLY to an uninterrupted
// catalog with the same history; (2) a torn final record (the crash cut
// an append short) is dropped silently, losing only the never-acked
// suffix; (3) snapshots truncate the log without changing the recovered
// state; (4) acks never wait on the maintenance queue (the 775 ms stall
// regression: with the worker paused, hundreds of mutations must all ack
// immediately, coalescing into one successor build); (5) a log-shipping
// replica fed through the service's real publish hook answers
// bit-identically to the primary via the version-vector handoff.
//
// The SIGKILL test forks: the child runs its own service over the shared
// WAL dir and reports each ack over a pipe; the parent kills it at an
// arbitrary point and recovers.  The oracle is prefix replay — acked
// facts are distinct markers, so the recovered state itself identifies
// which prefix survived, and that prefix must be AT LEAST every ack the
// parent observed.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/service/catalog.h"
#include "src/service/replica.h"
#include "src/service/service.h"
#include "src/service/wal.h"

namespace rwl {
namespace {

using service::KbCatalog;
using service::KbService;
using service::KbWal;
using service::ReplicaApplier;
using service::ReplicationHub;
using service::ServiceOptions;
using service::WalRecord;

// A self-cleaning WAL directory under the test's working directory.
struct TempDir {
  std::string path;
  TempDir() {
    char name[] = "wal_test_XXXXXX";
    char* made = ::mkdtemp(name);
    EXPECT_NE(made, nullptr);
    path = made != nullptr ? made : "wal_test_fallback";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

const char kBaseKb[] =
    "#(P(x))[x] ~= 0.3\n"
    "#(Q(x) ; P(x))[x] ~= 0.8\n"
    "P(C0)\n"
    "Q(C1)\n";

// Every marker constant is declared at load time so asserts stay
// signature-preserving (the incremental maintenance fast path — and the
// crash test needs the ack latency dominated by the fsync, not rebuilds).
std::vector<std::string> DeclareMarkers(int count) {
  std::vector<std::string> declare;
  for (int i = 2; i < 2 + count; ++i) {
    declare.push_back("C" + std::to_string(i));
  }
  return declare;
}

std::string Marker(int i) { return "P(C" + std::to_string(2 + i) + ")"; }

const char* kQueries[] = {"P(C0)", "Q(C1)", "(#(P(x))[x] <~ 0.5)"};

// Small service: shallow sweep, few workers — these tests measure
// durability plumbing, not inference throughput.
ServiceOptions SmallServiceOptions() {
  ServiceOptions options;
  options.scheduler.num_threads = 2;
  options.inference.tolerances = semantics::ToleranceVector::Uniform(0.1);
  options.inference.limit.domain_sizes = {4, 8};
  return options;
}

// Bit-level equality of two answers, with gtest-friendly diagnostics.
void ExpectSameAnswer(const Answer& a, const Answer& b,
                      const std::string& where) {
  EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status)) << where;
  EXPECT_EQ(a.value, b.value) << where;
  EXPECT_EQ(a.lo, b.lo) << where;
  EXPECT_EQ(a.hi, b.hi) << where;
  EXPECT_EQ(a.converged, b.converged) << where;
  EXPECT_EQ(a.method, b.method) << where;
}

// Queries `expected` and `actual` services side by side.
void ExpectServicesAgree(KbService* expected, KbService* actual,
                         const std::string& kb, const std::string& where) {
  for (const char* query : kQueries) {
    KbService::QueryResult lhs = expected->Query(kb, query);
    KbService::QueryResult rhs = actual->Query(kb, query);
    ASSERT_TRUE(lhs.ok) << where << " query " << query << ": " << lhs.error;
    ASSERT_TRUE(rhs.ok) << where << " query " << query << ": " << rhs.error;
    ExpectSameAnswer(lhs.answer, rhs.answer,
                     where + " query " + std::string(query));
  }
}

// ---- 1. durable ack + clean recovery ----

TEST(WalRecoveryTest, RecoveredCatalogAnswersBitIdentically) {
  TempDir dir;
  const int kMutations = 12;

  // The uninterrupted oracle: same history, no WAL.
  KbService oracle(SmallServiceOptions());
  ASSERT_TRUE(oracle.Load("kb", kBaseKb, DeclareMarkers(kMutations)).ok);

  uint64_t last_version = 0;
  {
    ServiceOptions options = SmallServiceOptions();
    options.wal.dir = dir.path;
    KbService durable(options);
    std::vector<std::string> warnings;
    std::string error;
    ASSERT_TRUE(durable.Recover(&warnings, &error)) << error;
    EXPECT_TRUE(warnings.empty());
    ASSERT_TRUE(durable.Load("kb", kBaseKb, DeclareMarkers(kMutations)).ok);
    for (int i = 0; i < kMutations; ++i) {
      // Mix asserts with one retract/re-assert round trip.
      KbService::MutationResult ack = durable.Assert("kb", Marker(i));
      ASSERT_TRUE(ack.ok) << ack.error;
      ASSERT_TRUE(oracle.Assert("kb", Marker(i)).ok);
      if (i == kMutations / 2) {
        ASSERT_TRUE(durable.Retract("kb", Marker(0)).ok);
        ASSERT_TRUE(oracle.Retract("kb", Marker(0)).ok);
      }
      last_version = ack.version;
    }
    const service::WalStats stats = durable.wal()->stats();
    EXPECT_GE(stats.appends, static_cast<uint64_t>(kMutations));
    EXPECT_GE(stats.fsyncs, 1u);
  }  // destructor: no flush required — every ack was already durable

  ServiceOptions options = SmallServiceOptions();
  options.wal.dir = dir.path;
  KbService recovered(options);
  std::vector<std::string> warnings;
  std::string error;
  ASSERT_TRUE(recovered.Recover(&warnings, &error)) << error;
  for (const std::string& warning : warnings) ADD_FAILURE() << warning;
  ExpectServicesAgree(&oracle, &recovered, "kb", "after recovery");

  // Post-recovery versions restart ABOVE the recovered history.
  KbService::MutationResult next = recovered.Assert("kb", Marker(0));
  ASSERT_TRUE(next.ok) << next.error;
  EXPECT_GT(next.version, last_version);
}

// ---- 2. SIGKILL mid-stream: acked prefix survives ----

TEST(WalRecoveryTest, SigkillMidStreamRecoversEveryAckedMutation) {
  TempDir dir;
  const int kMutations = 24;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: a durable service acking markers as fast as it can, one
    // pipe byte per ack (the load counts as ack 0).
    ::close(pipe_fds[0]);
    ServiceOptions options = SmallServiceOptions();
    options.wal.dir = dir.path;
    KbService durable(options);
    std::vector<std::string> warnings;
    std::string error;
    if (!durable.Recover(&warnings, &error)) ::_exit(3);
    if (!durable.Load("kb", kBaseKb, DeclareMarkers(kMutations)).ok) {
      ::_exit(3);
    }
    char byte = 'a';
    (void)!::write(pipe_fds[1], &byte, 1);
    for (int i = 0; i < kMutations; ++i) {
      if (!durable.Assert("kb", Marker(i)).ok) ::_exit(3);
      (void)!::write(pipe_fds[1], &byte, 1);
    }
    // Park until killed: exiting would run destructors and defeat the
    // point of the test.
    for (;;) ::pause();
  }
  ::close(pipe_fds[1]);

  // Parent: observe a few acks, then kill without warning.
  int observed_acks = 0;
  char byte;
  while (observed_acks < 1 + kMutations / 3 &&
         ::read(pipe_fds[0], &byte, 1) == 1) {
    ++observed_acks;
  }
  ASSERT_GE(observed_acks, 1) << "child never acked the load";
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  // Drain acks raced between the last read and the kill — they are acked,
  // so they too must survive recovery.
  while (::read(pipe_fds[0], &byte, 1) == 1) ++observed_acks;
  ::close(pipe_fds[0]);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child exited on its own (status " << status << ")";

  ServiceOptions options = SmallServiceOptions();
  options.wal.dir = dir.path;
  KbService recovered(options);
  std::vector<std::string> warnings;
  std::string error;
  ASSERT_TRUE(recovered.Recover(&warnings, &error)) << error;

  // The recovered prefix: markers are distinct facts, so presence of
  // Marker(i) == "ack i+1 survived".  The prefix must be contiguous and
  // cover every ack the parent observed (observed_acks - 1 mutations).
  KnowledgeBase probe;
  int survived = 0;
  {
    std::shared_ptr<const service::KbSnapshot> head =
        recovered.catalog()->Get("kb");
    ASSERT_NE(head, nullptr) << "acked LOAD lost";
    // Newline-delimit so "P(C2)" cannot match inside "P(C25)".
    std::string state = "\n";
    for (const auto& conjunct : head->kb.conjuncts()) {
      state += logic::ToString(conjunct) + "\n";
    }
    while (survived < kMutations &&
           state.find("\n" + Marker(survived) + "\n") != std::string::npos) {
      ++survived;
    }
    for (int i = survived; i < kMutations; ++i) {
      EXPECT_EQ(state.find("\n" + Marker(i) + "\n"), std::string::npos)
          << "non-contiguous recovered prefix at " << Marker(i);
    }
  }
  EXPECT_GE(survived, observed_acks - 1)
      << "an acked mutation did not survive the crash";

  // The prefix-replay oracle must agree bit-identically.
  KbService oracle(SmallServiceOptions());
  ASSERT_TRUE(oracle.Load("kb", kBaseKb, DeclareMarkers(kMutations)).ok);
  for (int i = 0; i < survived; ++i) {
    ASSERT_TRUE(oracle.Assert("kb", Marker(i)).ok);
  }
  ExpectServicesAgree(&oracle, &recovered, "kb", "after SIGKILL recovery");
}

// ---- 3. torn final record ----

TEST(WalRecoveryTest, TornFinalRecordIsDroppedSilently) {
  TempDir dir;
  {
    ServiceOptions options = SmallServiceOptions();
    options.wal.dir = dir.path;
    KbService durable(options);
    std::vector<std::string> warnings;
    std::string error;
    ASSERT_TRUE(durable.Recover(&warnings, &error));
    ASSERT_TRUE(durable.Load("kb", kBaseKb, DeclareMarkers(4)).ok);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(durable.Assert("kb", Marker(i)).ok);
    }
  }
  // Simulate a crash mid-append: a torn (undecodable) final line on the
  // newest segment.
  std::string newest, newest_name;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name > newest_name) {
      newest_name = name;
      newest = entry.path().string();
    }
  }
  ASSERT_FALSE(newest.empty());
  {
    std::ofstream out(newest, std::ios::app | std::ios::binary);
    out << "{\"op\":\"ASSERT\",\"kb\":\"kb\",\"ver";  // cut mid-key
  }

  ServiceOptions options = SmallServiceOptions();
  options.wal.dir = dir.path;
  KbService recovered(options);
  std::vector<std::string> warnings;
  std::string error;
  ASSERT_TRUE(recovered.Recover(&warnings, &error)) << error;
  EXPECT_TRUE(warnings.empty())
      << "torn FINAL record must be silent: " << warnings.front();

  KbService oracle(SmallServiceOptions());
  ASSERT_TRUE(oracle.Load("kb", kBaseKb, DeclareMarkers(4)).ok);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(oracle.Assert("kb", Marker(i)).ok);
  ExpectServicesAgree(&oracle, &recovered, "kb", "after torn record");
}

// ---- 4. snapshots truncate without changing recovery ----

TEST(WalRecoveryTest, SnapshotTruncationPreservesRecoveredState) {
  TempDir dir;
  const int kMutations = 16;
  {
    ServiceOptions options = SmallServiceOptions();
    options.wal.dir = dir.path;
    options.wal.snapshot_every = 4;
    options.wal.segment_bytes = 256;  // rotate every few records
    KbService durable(options);
    std::vector<std::string> warnings;
    std::string error;
    ASSERT_TRUE(durable.Recover(&warnings, &error));
    ASSERT_TRUE(durable.Load("kb", kBaseKb, DeclareMarkers(kMutations)).ok);
    for (int i = 0; i < kMutations; ++i) {
      ASSERT_TRUE(durable.Assert("kb", Marker(i)).ok);
    }
    // The snapshot worker runs off the ack path; wait for it to land.
    for (int spin = 0; spin < 500 && durable.wal()->stats().snapshots == 0;
         ++spin) {
      ::usleep(10 * 1000);
    }
    const service::WalStats stats = durable.wal()->stats();
    EXPECT_GE(stats.snapshots, 1u) << "snapshot worker never fired";
    EXPECT_GE(stats.segments_deleted, 1u) << "snapshot did not truncate";
  }

  ServiceOptions options = SmallServiceOptions();
  options.wal.dir = dir.path;
  KbService recovered(options);
  std::vector<std::string> warnings;
  std::string error;
  ASSERT_TRUE(recovered.Recover(&warnings, &error)) << error;
  for (const std::string& warning : warnings) ADD_FAILURE() << warning;

  KbService oracle(SmallServiceOptions());
  ASSERT_TRUE(oracle.Load("kb", kBaseKb, DeclareMarkers(kMutations)).ok);
  for (int i = 0; i < kMutations; ++i) {
    ASSERT_TRUE(oracle.Assert("kb", Marker(i)).ok);
  }
  ExpectServicesAgree(&oracle, &recovered, "kb", "after truncation");
}

// ---- 5. the 775 ms stall regression: acks never wait on maintenance ----

TEST(WalRecoveryTest, AcksNeverBlockOnThePausedMaintenanceQueue) {
  service::CatalogOptions catalog_options;
  catalog_options.background_maintenance = true;
  KbCatalog catalog(catalog_options);
  KnowledgeBase base;
  std::string parse_error;
  ASSERT_TRUE(base.AddParsed("#(P(x))[x] ~= 0.5", &parse_error));
  ASSERT_TRUE(base.AddParsed("P(C0)", &parse_error));
  catalog.Load("kb", base);

  // With the worker paused, the old fixed-cap queue (64) deadlocked the
  // 65th ack forever; now every ack returns immediately and same-KB runs
  // coalesce into one queued build.
  catalog.PauseMaintenance();
  const int kMutations = 200;
  uint64_t last_version = 0;
  for (int i = 0; i < kMutations; ++i) {
    // Distinct facts so the head count below is unambiguous.
    const std::string fact = "P(M" + std::to_string(i) + ")";
    service::MutationTicket ticket =
        catalog.Mutate("kb", [&](KnowledgeBase* kb, std::string* edit_error) {
          return kb->AddParsed(fact, edit_error);
        });
    ASSERT_TRUE(ticket.ok) << ticket.error;
    last_version = ticket.version;
  }
  // Paused + queued work: a bounded drain must time out, not hang.
  EXPECT_FALSE(catalog.DrainMaintenance(/*timeout_ms=*/50.0));
  catalog.ResumeMaintenance();
  EXPECT_TRUE(catalog.WaitForVersion("kb", last_version));
  EXPECT_TRUE(catalog.DrainMaintenance(/*timeout_ms=*/10000.0));
  EXPECT_GT(catalog.maintenance_stats().coalesced, 0u);

  // The coalesced build published the full run: head has every append.
  std::shared_ptr<const service::KbSnapshot> head = catalog.Get("kb");
  EXPECT_EQ(head->kb.conjuncts().size(), base.conjuncts().size() + kMutations);
  EXPECT_GE(head->version, last_version);
}

TEST(WalRecoveryTest, WaitForVersionTimesOutAndFailsOnDroppedKb) {
  service::CatalogOptions catalog_options;
  catalog_options.background_maintenance = true;
  KbCatalog catalog(catalog_options);
  KnowledgeBase base;
  std::string parse_error;
  ASSERT_TRUE(base.AddParsed("P(C0)", &parse_error));
  catalog.Load("kb", base);

  // A version that will never be published: bounded wait returns false.
  EXPECT_FALSE(catalog.WaitForVersion("kb", 1u << 20, /*timeout_ms=*/50.0));
  // A waiter on a KB that gets dropped must not hang.
  catalog.PauseMaintenance();
  service::MutationTicket ticket =
      catalog.Mutate("kb", [&](KnowledgeBase* kb, std::string*) {
        kb->Add(base.conjuncts()[0]);
        return true;
      });
  ASSERT_TRUE(ticket.ok);
  catalog.Drop("kb");
  EXPECT_FALSE(
      catalog.WaitForVersion("kb", ticket.version, /*timeout_ms=*/50.0));
  catalog.ResumeMaintenance();
}

// ---- 6. replica handoff through the service's real publish hook ----

TEST(WalRecoveryTest, ReplicaAnswersBitIdenticallyViaVersionHandoff) {
  ReplicationHub hub;
  ServiceOptions options = SmallServiceOptions();
  options.replication = &hub;
  KbService primary(options);

  KbCatalog replica_kbs;
  ReplicaApplier applier(&replica_kbs);
  // rwld's TAIL handshake: subscribe FIRST, then bootstrap from the
  // staged heads (a racing mutation lands in the stream and dedups).
  std::shared_ptr<service::ReplicationSubscription> sub = hub.Subscribe();
  ASSERT_TRUE(primary.Load("kb", kBaseKb, DeclareMarkers(8)).ok);

  auto pump = [&](int max_records) {
    std::string line, error;
    for (int i = 0; i < max_records; ++i) {
      if (!sub->Next(&line, /*timeout_ms=*/1000.0)) return;
      ASSERT_TRUE(applier.ApplyLine(line, &error)) << error << ": " << line;
    }
  };
  pump(1);  // the LOAD record doubles as the bootstrap here

  uint64_t acked = 0;
  for (int i = 0; i < 8; ++i) {
    KbService::MutationResult ack = primary.Assert("kb", Marker(i));
    ASSERT_TRUE(ack.ok) << ack.error;
    acked = ack.version;
  }
  pump(8);

  // Version-vector handoff: min_version = the primary ack.
  uint64_t local_version = 0;
  ASSERT_TRUE(applier.WaitForPrimaryVersion("kb", acked,
                                            /*timeout_ms=*/1000.0,
                                            &local_version));
  std::shared_ptr<const service::KbSnapshot> pinned =
      replica_kbs.GetVersion("kb", local_version);
  ASSERT_NE(pinned, nullptr);

  InferenceOptions inference = SmallServiceOptions().inference;
  for (const char* query : kQueries) {
    KbService::QueryResult on_primary = primary.Query("kb", query);
    ASSERT_TRUE(on_primary.ok) << on_primary.error;
    logic::ParseResult parsed = logic::ParseFormula(query);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    Answer on_replica =
        service::AnswerOnSnapshot(*pinned, parsed.formula, inference);
    ExpectSameAnswer(on_primary.answer, on_replica,
                     std::string("replica query ") + query);
  }
}

}  // namespace
}  // namespace rwl
