#include "src/refclass/reference_class.h"

#include <gtest/gtest.h>

#include "src/logic/builder.h"

namespace rwl::refclass {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

TEST(ReferenceClass, BasicReichenbachDirectInference) {
  FormulaPtr kb = Formula::And(
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1));
  RefClassAnswer answer = Infer(kb, P("Hep", C("Eric")),
                                Policy::kReichenbach);
  ASSERT_EQ(answer.status, RefClassAnswer::Status::kInterval)
      << answer.diagnosis;
  EXPECT_DOUBLE_EQ(answer.lo, 0.8);
  EXPECT_DOUBLE_EQ(answer.hi, 0.8);
}

TEST(ReferenceClass, SpecificityPrefersSubclass) {
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Fly", V("x")), P("Bird", V("x")), {"x"}),
                      0.9, 1),
      logic::ApproxEq(CondProp(P("Fly", V("x")), P("Penguin", V("x")),
                               {"x"}),
                      0.0, 2),
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      P("Penguin", C("Tweety")),
  });
  RefClassAnswer answer = Infer(kb, P("Fly", C("Tweety")),
                                Policy::kReichenbach);
  ASSERT_EQ(answer.status, RefClassAnswer::Status::kInterval);
  EXPECT_DOUBLE_EQ(answer.hi, 0.0);
}

TEST(ReferenceClass, IncomparableClassesGoVacuous) {
  // Section 2.3 / Nixon: competing classes make the baseline give [0,1] —
  // exactly the failure the paper criticizes (random worlds answers 0.94).
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                               {"x"}),
                      0.8, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.8, 2),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
  });
  RefClassAnswer answer = Infer(kb, P("Pacifist", C("Nixon")),
                                Policy::kReichenbach);
  EXPECT_EQ(answer.status, RefClassAnswer::Status::kVacuous);
  EXPECT_DOUBLE_EQ(answer.lo, 0.0);
  EXPECT_DOUBLE_EQ(answer.hi, 1.0);
}

TEST(ReferenceClass, HeartDiseaseExampleGoesVacuous) {
  // Section 2.3: cholesterol (15%) vs smoker (9%) — no single right class.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Heart", V("x")), P("Chol", V("x")), {"x"}),
                      0.15, 1),
      logic::ApproxEq(CondProp(P("Heart", V("x")), P("Smoker", V("x")),
                               {"x"}),
                      0.09, 2),
      P("Chol", C("Fred")),
      P("Smoker", C("Fred")),
  });
  RefClassAnswer answer = Infer(kb, P("Heart", C("Fred")),
                                Policy::kKyburgStrength);
  EXPECT_EQ(answer.status, RefClassAnswer::Status::kVacuous);
}

TEST(ReferenceClass, StrengthRulePrefersTighterSuperclass) {
  // Example 5.24 under Kyburg: [0.7, 0.8] from birds beats [0, 0.99] from
  // magpies.
  FormulaPtr kb = Formula::AndAll({
      logic::InInterval(0.7, 1,
                        CondProp(P("Chirps", V("x")), P("Bird", V("x")),
                                 {"x"}),
                        0.8, 2),
      logic::InInterval(0.0, 3,
                        CondProp(P("Chirps", V("x")), P("Magpie", V("x")),
                                 {"x"}),
                        0.99, 4),
      Formula::ForAll("x", Formula::Implies(P("Magpie", V("x")),
                                            P("Bird", V("x")))),
      P("Magpie", C("Tweety")),
  });
  RefClassAnswer kyburg = Infer(kb, P("Chirps", C("Tweety")),
                                Policy::kKyburgStrength);
  ASSERT_EQ(kyburg.status, RefClassAnswer::Status::kInterval);
  EXPECT_DOUBLE_EQ(kyburg.lo, 0.7);
  EXPECT_DOUBLE_EQ(kyburg.hi, 0.8);

  // Plain Reichenbach sticks with the most specific class.
  RefClassAnswer reich = Infer(kb, P("Chirps", C("Tweety")),
                               Policy::kReichenbach);
  ASSERT_EQ(reich.status, RefClassAnswer::Status::kInterval);
  EXPECT_DOUBLE_EQ(reich.lo, 0.0);
  EXPECT_DOUBLE_EQ(reich.hi, 0.99);
}

TEST(ReferenceClass, MembershipRequired) {
  // Statistics exist but Eric is not known to be jaundiced.
  FormulaPtr kb = logic::ApproxEq(
      CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}), 0.8, 1);
  RefClassAnswer answer = Infer(kb, P("Hep", C("Eric")),
                                Policy::kReichenbach);
  EXPECT_EQ(answer.status, RefClassAnswer::Status::kNoClass);
}

TEST(ReferenceClass, DisjunctiveClassUsable) {
  // Tay-Sachs (Example 5.22): the disjunctive class is fine here too.
  FormulaPtr eej_or_fc =
      Formula::Or(P("EEJ", V("x")), P("FC", V("x")));
  FormulaPtr kb = Formula::And(
      logic::ApproxEq(CondProp(P("TS", V("x")), eej_or_fc, {"x"}), 0.02, 1),
      P("EEJ", C("Eric")));
  RefClassAnswer answer = Infer(kb, P("TS", C("Eric")),
                                Policy::kReichenbach);
  ASSERT_EQ(answer.status, RefClassAnswer::Status::kInterval)
      << answer.diagnosis;
  EXPECT_DOUBLE_EQ(answer.lo, 0.02);
}

}  // namespace
}  // namespace rwl::refclass
