#include "src/workload/generators.h"

#include <random>

#include <gtest/gtest.h>

#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl::workload {
namespace {

TEST(Generators, DeterministicUnderSeed) {
  UnaryKbParams params;
  std::mt19937 rng1(7);
  std::mt19937 rng2(7);
  logic::FormulaPtr a = RandomUnaryKb(params, &rng1);
  logic::FormulaPtr b = RandomUnaryKb(params, &rng2);
  EXPECT_TRUE(logic::Formula::StructuralEqual(a, b));
}

TEST(Generators, PredicateAndConstantNaming) {
  auto preds = GeneratorPredicates(3);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0], "P0");
  EXPECT_EQ(preds[2], "P2");
  auto consts = GeneratorConstants(2);
  EXPECT_EQ(consts[1], "K1");
}

TEST(Generators, KbStaysInsideDeclaredVocabulary) {
  UnaryKbParams params;
  params.num_predicates = 3;
  params.num_constants = 2;
  params.num_statements = 4;
  params.num_facts = 3;
  std::mt19937 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    logic::FormulaPtr kb = RandomUnaryKb(params, &rng);
    for (const auto& p : logic::PredicatesOf(kb)) {
      EXPECT_EQ(p[0], 'P') << p;
      EXPECT_LT(p[1] - '0', params.num_predicates) << p;
    }
    for (const auto& c : logic::ConstantsOf(kb)) {
      EXPECT_EQ(c[0], 'K') << c;
      EXPECT_LT(c[1] - '0', params.num_constants) << c;
    }
    EXPECT_TRUE(logic::FreeVariables(kb).empty())
        << logic::ToString(kb);
  }
}

TEST(Generators, StatementsUseDistinctToleranceIndices) {
  UnaryKbParams params;
  params.num_statements = 3;
  std::mt19937 rng(5);
  logic::FormulaPtr kb = RandomUnaryKb(params, &rng);
  std::set<int> indices;
  for (const auto& conjunct : logic::Conjuncts(kb)) {
    if (conjunct->kind() == logic::Formula::Kind::kCompare) {
      indices.insert(conjunct->tolerance_index());
    }
  }
  EXPECT_EQ(indices.size(), 3u);
}

TEST(Generators, ChainKbHasTightestInsideAllLevels) {
  std::mt19937 rng(17);
  for (int depth : {2, 3, 4, 5}) {
    for (int trial = 0; trial < 20; ++trial) {
      ChainKb chain = RandomChainKb(depth, &rng);
      EXPECT_GT(chain.tightest_lo, 0.0);
      EXPECT_LT(chain.tightest_hi, 1.0);
      EXPECT_LT(chain.tightest_lo, chain.tightest_hi);
      // The query is T(K0).
      EXPECT_EQ(chain.query->kind(), logic::Formula::Kind::kAtom);
      EXPECT_EQ(chain.query->predicate(), "T");
    }
  }
}

TEST(Generators, RuleSetsHaveRequestedShape) {
  std::mt19937 rng(23);
  auto rules = RandomRuleSet(4, 6, &rng);
  ASSERT_EQ(rules.size(), 6u);
  for (const auto& rule : rules) {
    ASSERT_NE(rule.antecedent, nullptr);
    ASSERT_NE(rule.consequent, nullptr);
    // Consequent is a literal.
    auto kind = rule.consequent->kind();
    EXPECT_TRUE(kind == defaults::Prop::Kind::kVar ||
                kind == defaults::Prop::Kind::kNot);
  }
}

}  // namespace
}  // namespace rwl::workload
