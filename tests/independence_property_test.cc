// Two cross-system property tests:
//
// 1. Vocabulary independence is EXACT at finite N when the subvocabularies
//    share nothing: worlds factor into independent interpretations, so
//    Pr_N(φ1 ∧ φ2 | KB1 ∧ KB2) = Pr_N(φ1|KB1) · Pr_N(φ2|KB2) identically
//    (Theorem 5.27's proof idea, before any limits).
//
// 2. Adams soundness through Theorem 6.1: every p-entailed propositional
//    rule is an ME-plausible consequence, hence its random-worlds
//    translation gets degree of belief ≈ 1 at large N and small τ.
#include <random>

#include <gtest/gtest.h>

#include "src/defaults/epsilon_semantics.h"
#include "src/defaults/gmp90.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/workload/generators.h"

namespace rwl {
namespace {

// Renames generator symbols P<i> → <prefix>P<i>, K<i> → <prefix>K<i> so two
// generated KBs occupy disjoint vocabularies.
logic::FormulaPtr PrefixSymbols(const logic::FormulaPtr& f,
                                const std::string& prefix);

logic::TermPtr PrefixTerm(const logic::TermPtr& t,
                          const std::string& prefix) {
  if (t->is_variable()) return t;
  std::vector<logic::TermPtr> args;
  for (const auto& a : t->args()) args.push_back(PrefixTerm(a, prefix));
  return logic::Term::Apply(prefix + t->name(), std::move(args));
}

logic::ExprPtr PrefixExpr(const logic::ExprPtr& e,
                          const std::string& prefix) {
  if (e == nullptr) return e;
  using logic::Expr;
  switch (e->kind()) {
    case Expr::Kind::kConstant:
      return e;
    case Expr::Kind::kProportion:
      return Expr::Proportion(PrefixSymbols(e->body(), prefix), e->vars());
    case Expr::Kind::kConditional:
      return Expr::Conditional(PrefixSymbols(e->body(), prefix),
                               PrefixSymbols(e->cond(), prefix), e->vars());
    case Expr::Kind::kAdd:
      return Expr::Add(PrefixExpr(e->lhs(), prefix),
                       PrefixExpr(e->rhs(), prefix));
    case Expr::Kind::kSub:
      return Expr::Sub(PrefixExpr(e->lhs(), prefix),
                       PrefixExpr(e->rhs(), prefix));
    case Expr::Kind::kMul:
      return Expr::Mul(PrefixExpr(e->lhs(), prefix),
                       PrefixExpr(e->rhs(), prefix));
  }
  return e;
}

logic::FormulaPtr PrefixSymbols(const logic::FormulaPtr& f,
                                const std::string& prefix) {
  using logic::Formula;
  switch (f->kind()) {
    case Formula::Kind::kTrue:
    case Formula::Kind::kFalse:
      return f;
    case Formula::Kind::kAtom: {
      std::vector<logic::TermPtr> args;
      for (const auto& t : f->terms()) args.push_back(PrefixTerm(t, prefix));
      return Formula::Atom(prefix + f->predicate(), std::move(args));
    }
    case Formula::Kind::kEqual:
      return Formula::Equal(PrefixTerm(f->terms()[0], prefix),
                            PrefixTerm(f->terms()[1], prefix));
    case Formula::Kind::kNot:
      return Formula::Not(PrefixSymbols(f->body(), prefix));
    case Formula::Kind::kAnd:
      return Formula::And(PrefixSymbols(f->left(), prefix),
                          PrefixSymbols(f->right(), prefix));
    case Formula::Kind::kOr:
      return Formula::Or(PrefixSymbols(f->left(), prefix),
                         PrefixSymbols(f->right(), prefix));
    case Formula::Kind::kImplies:
      return Formula::Implies(PrefixSymbols(f->left(), prefix),
                              PrefixSymbols(f->right(), prefix));
    case Formula::Kind::kIff:
      return Formula::Iff(PrefixSymbols(f->left(), prefix),
                          PrefixSymbols(f->right(), prefix));
    case Formula::Kind::kForAll:
      return Formula::ForAll(f->var(), PrefixSymbols(f->body(), prefix));
    case Formula::Kind::kExists:
      return Formula::Exists(f->var(), PrefixSymbols(f->body(), prefix));
    case Formula::Kind::kCompare:
      return Formula::Compare(PrefixExpr(f->expr_left(), prefix),
                              f->compare_op(),
                              PrefixExpr(f->expr_right(), prefix),
                              f->tolerance_index());
  }
  return f;
}

TEST(IndependenceProperty, ExactFactorizationAtFiniteN) {
  std::mt19937 rng(60601);
  engines::ProfileEngine engine;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.2);
  workload::UnaryKbParams params;
  params.num_predicates = 2;
  params.num_constants = 1;
  params.num_statements = 1;
  params.num_facts = 1;

  int compared = 0;
  for (int trial = 0; trial < 30; ++trial) {
    logic::FormulaPtr kb1 =
        PrefixSymbols(workload::RandomUnaryKb(params, &rng), "L");
    logic::FormulaPtr kb2 =
        PrefixSymbols(workload::RandomUnaryKb(params, &rng), "R");
    logic::FormulaPtr q1 =
        PrefixSymbols(workload::RandomQuery(params, &rng), "L");
    logic::FormulaPtr q2 =
        PrefixSymbols(workload::RandomQuery(params, &rng), "R");

    logic::Vocabulary joint;
    for (const auto& f : {kb1, kb2, q1, q2}) {
      logic::RegisterSymbols(f, &joint);
    }
    const int n = 5;
    auto pr_joint = engine.DegreeAt(
        joint, logic::Formula::And(kb1, kb2),
        logic::Formula::And(q1, q2), n, tol);
    if (!pr_joint.well_defined) continue;

    // Marginals computed over the SAME joint vocabulary (the degree of
    // belief is unaffected by vocabulary expansion — footnote 8).
    auto pr1 = engine.DegreeAt(joint, logic::Formula::And(kb1, kb2), q1, n,
                               tol);
    auto pr2 = engine.DegreeAt(joint, logic::Formula::And(kb1, kb2), q2, n,
                               tol);
    ASSERT_TRUE(pr1.well_defined && pr2.well_defined);
    ++compared;
    EXPECT_NEAR(pr_joint.probability, pr1.probability * pr2.probability,
                1e-9)
        << "KB1: " << logic::ToString(kb1)
        << "\nKB2: " << logic::ToString(kb2)
        << "\nq1: " << logic::ToString(q1)
        << "\nq2: " << logic::ToString(q2);
  }
  EXPECT_GE(compared, 8);
}

TEST(AdamsSoundness, PEntailedRulesGetDegreeOne) {
  // p-entailment is the weakest of the probabilistic default systems; its
  // consequences must survive in random worlds (ε-entailment ⊆
  // ME-plausible = random worlds on the Theorem 6.1 translation).
  std::mt19937 rng(70707);
  engines::ProfileEngine engine;
  const int num_vars = 3;
  std::vector<std::string> names = {"Q0", "Q1", "Q2"};

  int checked = 0;
  for (int trial = 0; trial < 25 && checked < 8; ++trial) {
    std::vector<defaults::Rule> rules =
        workload::RandomRuleSet(num_vars, 2, &rng);
    if (!defaults::EpsilonConsistent(rules, num_vars)) continue;
    // Query each rule itself: trivially p-entailed.
    for (const auto& rule : rules) {
      if (!defaults::PEntails(rules, rule, num_vars)) continue;
      defaults::Gmp90System system(num_vars, rules);
      defaults::RwEmbedding embedding =
          defaults::TranslateQuery(system, rule, names);
      logic::Vocabulary vocab = embedding.kb.vocabulary();
      logic::RegisterSymbols(embedding.query, &vocab);
      auto r = engine.DegreeAt(vocab, embedding.kb.AsFormula(),
                               embedding.query, 16,
                               semantics::ToleranceVector::Uniform(0.04));
      if (!r.well_defined) continue;
      ++checked;
      EXPECT_GT(r.probability, 0.85)
          << "rule with antecedent "
          << defaults::PropToString(rule.antecedent, names);
    }
  }
  EXPECT_GE(checked, 5);
}

}  // namespace
}  // namespace rwl
