// Section 5.5: the lottery paradox and unique names.
#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"

namespace rwl {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

// KB: exactly one winner, winners hold tickets, c holds a ticket.
FormulaPtr LotteryKb() {
  return Formula::AndAll({
      logic::ExistsUnique("w", P("Winner", V("w"))),
      Formula::ForAll("x", Formula::Implies(P("Winner", V("x")),
                                            P("Ticket", V("x")))),
      P("Ticket", C("Eric")),
  });
}

TEST(Lottery, KnownPoolSizeGivesOneOverK) {
  // With exactly K ticket holders, Pr(Winner(Eric)) = 1/K at every N ≥ K.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Winner", 1);
  vocab.AddPredicate("Ticket", 1);
  vocab.AddConstant("Eric");
  engines::ProfileEngine engine;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);
  for (int k : {2, 3, 4}) {
    FormulaPtr kb = Formula::And(
        LotteryKb(), logic::ExactlyN(k, "t", P("Ticket", V("t"))));
    auto r = engine.DegreeAt(vocab, kb, P("Winner", C("Eric")), 8, tol);
    ASSERT_TRUE(r.well_defined) << "K=" << k;
    EXPECT_NEAR(r.probability, 1.0 / k, 1e-9) << "K=" << k;
  }
}

TEST(Lottery, SomeoneWinsWithCertainty) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("Winner", 1);
  vocab.AddPredicate("Ticket", 1);
  vocab.AddConstant("Eric");
  engines::ProfileEngine engine;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);
  auto r = engine.DegreeAt(vocab, LotteryKb(),
                           Formula::Exists("x", P("Winner", V("x"))), 12,
                           tol);
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 1.0, 1e-12);
}

TEST(Lottery, QualitativeLotteryWinnerProbabilityVanishes) {
  // Without a known pool size, Pr(Winner(Eric)) ~ E[1/#tickets] → 0 as the
  // domain (and hence the typical ticket pool) grows.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Winner", 1);
  vocab.AddPredicate("Ticket", 1);
  vocab.AddConstant("Eric");
  engines::ProfileEngine engine;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);
  double prev = 1.0;
  for (int n : {8, 16, 32, 64}) {
    auto r = engine.DegreeAt(vocab, LotteryKb(), P("Winner", C("Eric")), n,
                             tol);
    ASSERT_TRUE(r.well_defined);
    EXPECT_LT(r.probability, prev);
    prev = r.probability;
  }
  EXPECT_LT(prev, 0.07);
}

TEST(Lottery, PooleBirdPartitionIsInconsistent) {
  // Poole's variant (§3.5/§5.5): partitioning birds into finitely many
  // uniformly-exceptional subclasses contradicts the statistical reading of
  // defaults — no worlds satisfy the KB once τ < 1/#subclasses.
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed(
      "forall x. (Bird(x) <=> (Emu(x) | Penguin(x)))\n"
      "forall x. !(Emu(x) & Penguin(x))\n"
      // Each subclass is a negligible fraction of birds:
      "#(Emu(x) ; Bird(x))[x] ~=_1 0\n"
      "#(Penguin(x) ; Bird(x))[x] ~=_2 0\n"
      // and birds exist:
      "0.2 <~_3 #(Bird(x))[x]\n"));
  InferenceOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.05);
  options.limit.domain_sizes = {12, 20};
  options.limit.tolerance_scales = {1.0};
  options.use_maxent = false;
  options.use_exact_fallback = false;
  Answer answer = DegreeOfBelief(kb, "Bird(Tweety)", options);
  EXPECT_EQ(answer.status, Answer::Status::kUndefined)
      << StatusToString(answer.status);
}

TEST(UniqueNames, FreshConstantsDenoteDifferentObjects) {
  KnowledgeBase kb;
  kb.mutable_vocabulary().AddConstant("C1");
  kb.mutable_vocabulary().AddConstant("C2");
  InferenceOptions options;
  options.limit.domain_sizes = {16, 32, 64, 128};
  Answer answer = DegreeOfBelief(kb, "C1 = C2", options);
  ASSERT_TRUE(answer.status == Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 0.0, 0.01);
}

TEST(UniqueNames, LifschitzC1) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("Ray = Reiter\nDrew = McDermott\n"));
  InferenceOptions options;
  options.limit.domain_sizes = {16, 32, 64, 128};
  Answer answer = DegreeOfBelief(kb, "Ray != Drew", options);
  ASSERT_TRUE(answer.status == Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 1.0, 0.01);
}

TEST(UniqueNames, DisjunctionOfEqualitiesGivesOneThird) {
  KnowledgeBase kb;
  ASSERT_TRUE(kb.AddParsed("(C1 = C2) | (C2 = C3) | (C1 = C3)\n"));
  InferenceOptions options;
  options.limit.domain_sizes = {32, 64, 128, 256};
  Answer answer = DegreeOfBelief(kb, "C1 = C2", options);
  ASSERT_TRUE(answer.status == Answer::Status::kPoint) << answer.explanation;
  EXPECT_NEAR(answer.value, 1.0 / 3.0, 0.01);
}

}  // namespace
}  // namespace rwl
