// The random-propensities prior (Section 7.3 / BGHK92): unlike random
// worlds, it learns statistics from samples — and overlearns from
// non-representative ones, exactly the trade-off the paper discusses.
#include <cmath>

#include <gtest/gtest.h>

#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

semantics::ToleranceVector Tol(double v) {
  return semantics::ToleranceVector::Uniform(v);
}

ProfileEngine Propensities() {
  ProfileEngine::Options options;
  options.prior = Prior::kRandomPropensities;
  return ProfileEngine(options);
}

TEST(Propensities, PriorProbabilityOfPredicateIsHalfBySymmetry) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  vocab.AddConstant("K");
  ProfileEngine engine = Propensities();
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(), P("A", C("K")),
                                   12, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 0.5, 1e-9);
}

TEST(Propensities, WorldCountBecomesUniformOverFrequencies) {
  // Under uniform propensities every frequency c ∈ {0..N} of a single
  // predicate is equally likely: Pr(||A|| = c/N) = 1/(N+1).  Check via the
  // query "no element is A" (c = 0): probability 1/(N+1), against the
  // 2^-N of random worlds.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ProfileEngine propensities = Propensities();
  ProfileEngine uniform;
  FormulaPtr none = Formula::Not(Formula::Exists("x", P("A", V("x"))));
  const int n = 10;
  FiniteResult rp = propensities.DegreeAt(vocab, Formula::True(), none, n,
                                          Tol(0.1));
  FiniteResult ru = uniform.DegreeAt(vocab, Formula::True(), none, n,
                                     Tol(0.1));
  ASSERT_TRUE(rp.well_defined);
  EXPECT_NEAR(rp.probability, 1.0 / (n + 1), 1e-9);
  EXPECT_NEAR(ru.probability, std::pow(2.0, -n), 1e-12);
}

TEST(Propensities, LearnsFromSamples) {
  // Section 7.3's sampling KB: 90% of *sampled* birds fly.  Random worlds
  // keeps Pr(Fly) = 1/2 for an unsampled bird; random propensities
  // transfers the sample statistic.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Fly", 1);
  vocab.AddPredicate("Bird", 1);
  vocab.AddPredicate("S", 1);  // "was sampled"
  vocab.AddConstant("Tweety");
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(
          CondProp(P("Fly", V("x")),
                   Formula::And(P("Bird", V("x")), P("S", V("x"))), {"x"}),
          0.9, 1),
      // the sample is sizable, so the statistic is informative:
      logic::ApproxGeq(Prop(Formula::And(P("Bird", V("x")), P("S", V("x"))),
                            {"x"}),
                       0.2, 2),
      P("Bird", C("Tweety")),
      Formula::Not(P("S", C("Tweety"))),
  });
  FormulaPtr query = P("Fly", C("Tweety"));
  const int n = 24;

  ProfileEngine uniform;
  FiniteResult rw = uniform.DegreeAt(vocab, kb, query, n, Tol(0.05));
  ASSERT_TRUE(rw.well_defined);
  // Random worlds: the unsampled birds are an unrelated population.
  EXPECT_NEAR(rw.probability, 0.5, 0.1);

  ProfileEngine propensities = Propensities();
  FiniteResult pr = propensities.DegreeAt(vocab, kb, query, n, Tol(0.05));
  ASSERT_TRUE(pr.well_defined);
  // Random propensities: the Fly propensity itself was learned.
  EXPECT_GT(pr.probability, 0.75);
}

TEST(Propensities, OverlearnsFromUniversals) {
  // The documented flaw: "all giraffes are tall" drags the global Tall
  // propensity upward, so an arbitrary non-giraffe is now believed tall.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Tall", 1);
  vocab.AddPredicate("Giraffe", 1);
  vocab.AddConstant("Rock");
  FormulaPtr kb = Formula::AndAll({
      Formula::ForAll("x", Formula::Implies(P("Giraffe", V("x")),
                                            P("Tall", V("x")))),
      // giraffes are plentiful in this domain:
      logic::ApproxGeq(Prop(P("Giraffe", V("x")), {"x"}), 0.3, 1),
      Formula::Not(P("Giraffe", C("Rock"))),
  });
  FormulaPtr query = P("Tall", C("Rock"));
  const int n = 20;

  ProfileEngine uniform;
  FiniteResult rw = uniform.DegreeAt(vocab, kb, query, n, Tol(0.05));
  ASSERT_TRUE(rw.well_defined);
  EXPECT_NEAR(rw.probability, 0.5, 0.08);  // random worlds: unaffected

  ProfileEngine propensities = Propensities();
  FiniteResult pr = propensities.DegreeAt(vocab, kb, query, n, Tol(0.05));
  ASSERT_TRUE(pr.well_defined);
  EXPECT_GT(pr.probability, 0.6);  // propensities: contaminated
}

TEST(Propensities, DirectInferenceStillHolds) {
  // The BGHK92/KH96 result: direct inference survives the prior change.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Hep", 1);
  vocab.AddPredicate("Jaun", 1);
  vocab.AddConstant("Eric");
  FormulaPtr kb = Formula::And(
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1));
  ProfileEngine propensities = Propensities();
  FiniteResult r = propensities.DegreeAt(vocab, kb, P("Hep", C("Eric")), 48,
                                         Tol(0.04));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 0.8, 0.05);
}

}  // namespace
}  // namespace rwl::engines
