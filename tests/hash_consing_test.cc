// Hash-consing invariants (logic/intern.h): structural equality is pointer
// identity, hashes are cached and agree on equal nodes, ids are unique,
// and the parser produces shared subtrees.
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "src/logic/builder.h"
#include "src/logic/formula.h"
#include "src/logic/intern.h"
#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/workload/generators.h"

namespace rwl::logic {
namespace {

TEST(HashConsing, StructurallyEqualTermsArePointerEqual) {
  EXPECT_EQ(V("x").get(), V("x").get());
  EXPECT_EQ(C("Tweety").get(), C("Tweety").get());
  EXPECT_NE(V("x").get(), C("x").get());
  EXPECT_EQ(Term::Apply("f", {V("x"), C("A")}).get(),
            Term::Apply("f", {V("x"), C("A")}).get());
}

TEST(HashConsing, StructurallyEqualFormulasArePointerEqual) {
  FormulaPtr a = Default(P("Bird", V("x")), P("Fly", V("x")), {"x"});
  FormulaPtr b = Default(P("Bird", V("x")), P("Fly", V("x")), {"x"});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->id(), b->id());
  EXPECT_EQ(Formula::Hash(a), Formula::Hash(b));

  FormulaPtr c = Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 2);
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a->id(), c->id());
}

TEST(HashConsing, SharedSubtreesAcrossFormulas) {
  FormulaPtr bird = P("Bird", V("x"));
  FormulaPtr f = Formula::And(bird, P("Fly", V("x")));
  FormulaPtr g = Formula::Or(P("Penguin", V("x")), P("Bird", V("x")));
  // Both connectives reference the one canonical Bird(x) node.
  EXPECT_EQ(f->left().get(), bird.get());
  EXPECT_EQ(g->right().get(), bird.get());
}

TEST(HashConsing, ParserRoundTripsProduceSharedTrees) {
  const char* text = "#(Hep(x) ; Jaun(x))[x] ~= 0.8";
  ParseResult first = ParseFormula(text);
  ParseResult second = ParseFormula(text);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.formula.get(), second.formula.get());

  // The parsed tree also shares nodes with builder-made formulas.
  ParseResult atom = ParseFormula("Jaun(x)");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom.formula.get(), P("Jaun", V("x")).get());
}

TEST(HashConsing, ExactCompareToleranceIndexIsCanonicalized) {
  // ≈ keeps its subscript (distinct defaults have distinct strengths)...
  FormulaPtr approx1 = ApproxEq(Prop(P("A", V("x")), {"x"}), 0.5, 1);
  FormulaPtr approx2 = ApproxEq(Prop(P("A", V("x")), {"x"}), 0.5, 2);
  EXPECT_NE(approx1.get(), approx2.get());
  // ...but the exact connectives ignore the tolerance vector, so the
  // subscript is canonicalized away.
  ExprPtr e = Prop(P("A", V("x")), {"x"});
  FormulaPtr exact1 = Formula::Compare(e, CompareOp::kEq, Num(0.5), 1);
  FormulaPtr exact7 = Formula::Compare(e, CompareOp::kEq, Num(0.5), 7);
  EXPECT_EQ(exact1.get(), exact7.get());
  EXPECT_EQ(Formula::Hash(exact1), Formula::Hash(exact7));
}

TEST(HashConsing, NegativeZeroConstantsCoalesce) {
  EXPECT_EQ(Num(0.0).get(), Num(-0.0).get());
}

TEST(HashConsing, EqualImpliesHashEqualOnRandomFormulas) {
  // Property test: two generator runs from identical seeds build the same
  // formulas; interning must map them to the same node (hence hash and id
  // agree), and different trials must not collide pointer-wise unless
  // structurally equal.
  workload::UnaryKbParams params;
  params.num_predicates = 3;
  params.num_constants = 2;
  params.num_statements = 3;
  params.num_facts = 2;
  for (int trial = 0; trial < 25; ++trial) {
    std::mt19937 rng_a(1000 + trial);
    std::mt19937 rng_b(1000 + trial);
    FormulaPtr kb_a = workload::RandomUnaryKb(params, &rng_a);
    FormulaPtr kb_b = workload::RandomUnaryKb(params, &rng_b);
    ASSERT_EQ(kb_a.get(), kb_b.get()) << ToString(kb_a);
    EXPECT_EQ(Formula::Hash(kb_a), Formula::Hash(kb_b));
    EXPECT_EQ(kb_a->id(), kb_b->id());

    FormulaPtr query_a = workload::RandomQuery(params, &rng_a);
    FormulaPtr query_b = workload::RandomQuery(params, &rng_b);
    ASSERT_EQ(query_a.get(), query_b.get());

    // Pointer equality must track StructuralEqual in both directions.
    EXPECT_EQ(Formula::StructuralEqual(kb_a, query_a),
              kb_a.get() == query_a.get());
  }
}

TEST(HashConsing, IdsAreUniqueAcrossDistinctFormulas) {
  std::set<uint64_t> ids;
  std::vector<FormulaPtr> formulas;
  for (int i = 0; i < 50; ++i) {
    formulas.push_back(
        ApproxEq(Prop(P("Q", V("x")), {"x"}), 0.01 * i, 1 + (i % 3)));
  }
  for (const auto& f : formulas) ids.insert(f->id());
  EXPECT_EQ(ids.size(), formulas.size());
}

TEST(HashConsing, InternStatsCountHits) {
  InternStats before = GetInternStats();
  FormulaPtr f = P("FreshPredicateForStats", V("zz_stats"));
  FormulaPtr g = P("FreshPredicateForStats", V("zz_stats"));
  InternStats after = GetInternStats();
  EXPECT_EQ(f.get(), g.get());
  EXPECT_GT(after.nodes(), before.nodes());   // the new atom was created...
  EXPECT_GT(after.hits(), before.hits());     // ...and the duplicate hit.
}

}  // namespace
}  // namespace rwl::logic
