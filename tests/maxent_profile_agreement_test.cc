// Property test: the maximum-entropy engine's limit matches the profile
// engine's large-N value on random unary KBs (Section 6's concentration,
// engine-against-engine).  Agreement is up to the finite-N and finite-τ
// bias, so the tolerance is loose but the sweep is broad.
#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "src/engines/maxent_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/workload/generators.h"

namespace rwl {
namespace {

struct SweepCase {
  int num_predicates;
  int num_statements;
  int trials;
  int domain_size;
};

class MaxEntProfileSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MaxEntProfileSweep, LimitsAgree) {
  const SweepCase& param = GetParam();
  std::mt19937 rng(33 + param.num_predicates * 101 + param.num_statements);
  engines::MaxEntEngine maxent;
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);

  int compared = 0;
  for (int trial = 0; trial < param.trials; ++trial) {
    workload::UnaryKbParams params;
    params.num_predicates = param.num_predicates;
    params.num_constants = 1;
    params.num_statements = param.num_statements;
    params.num_facts = 1;
    logic::FormulaPtr kb = workload::RandomUnaryKb(params, &rng);
    // Query: a class fact about the constant.
    logic::FormulaPtr query = workload::RandomClassExpr(
        param.num_predicates, logic::C("K0"), 1, &rng);

    logic::Vocabulary vocab;
    for (const auto& p :
         workload::GeneratorPredicates(param.num_predicates)) {
      vocab.AddPredicate(p, 1);
    }
    vocab.AddConstant("K0");
    logic::RegisterSymbols(kb, &vocab);
    logic::RegisterSymbols(query, &vocab);

    auto limit = maxent.InferAt(vocab, kb, query, tol);
    if (!limit.supported || !limit.feasible) continue;
    auto finite = profile.DegreeAt(vocab, kb, query, param.domain_size, tol);
    if (!finite.well_defined || finite.exhausted) continue;
    ++compared;
    EXPECT_NEAR(finite.probability, limit.value, 0.12)
        << "KB: " << logic::ToString(kb)
        << "\nquery: " << logic::ToString(query);
  }
  // Random KBs at this tolerance are frequently unsatisfiable, so only a
  // loose quorum is demanded.
  EXPECT_GE(compared, 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaxEntProfileSweep,
                         ::testing::Values(SweepCase{2, 1, 30, 56},
                                           SweepCase{2, 2, 30, 56},
                                           SweepCase{3, 1, 20, 20},
                                           SweepCase{3, 2, 20, 20}));

TEST(MaxEntProfile, SameConstantConjunctionIntersects) {
  // Regression for the query decomposition: conjuncts about the same
  // constant must intersect, so a contradictory query gets probability 0.
  logic::Vocabulary vocab;
  vocab.AddPredicate("Hep", 1);
  vocab.AddPredicate("Jaun", 1);
  vocab.AddConstant("Eric");
  logic::FormulaPtr kb = logic::Formula::And(
      logic::P("Jaun", logic::C("Eric")),
      logic::ApproxEq(logic::CondProp(logic::P("Hep", logic::V("x")),
                                      logic::P("Jaun", logic::V("x")),
                                      {"x"}),
                      0.8, 1));
  engines::MaxEntEngine maxent;
  auto tol = semantics::ToleranceVector::Uniform(0.02);
  logic::FormulaPtr contradiction = logic::Formula::And(
      logic::P("Hep", logic::C("Eric")),
      logic::Formula::Not(logic::P("Hep", logic::C("Eric"))));
  auto result = maxent.InferAt(vocab, kb, contradiction, tol);
  ASSERT_TRUE(result.supported) << result.note;
  EXPECT_NEAR(result.value, 0.0, 1e-9);

  // And a redundant conjunction is idempotent, not squared.
  logic::FormulaPtr doubled = logic::Formula::And(
      logic::P("Hep", logic::C("Eric")), logic::P("Hep", logic::C("Eric")));
  auto result2 = maxent.InferAt(vocab, kb, doubled, tol);
  ASSERT_TRUE(result2.supported);
  // The value sits at the entropy-preferred edge of the τ-slack, so it is
  // 0.8 only up to O(τ).
  EXPECT_NEAR(result2.value, 0.8, 0.03);
}

}  // namespace
}  // namespace rwl
