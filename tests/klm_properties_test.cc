// Theorem 5.3: |∼rw satisfies the KLM core properties.  The identities hold
// exactly at every finite (N, τ) because Pr_N^τ is a genuine conditional
// probability; we verify them both on the paper's fixture KBs and on
// parameterized sweeps of randomly generated KBs and formulas.
#include <random>

#include <gtest/gtest.h>

#include "src/defaults/klm.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/workload/generators.h"

namespace rwl::defaults {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

class KlmRandomSweep : public ::testing::TestWithParam<int> {
 protected:
  KlmRandomSweep() {
    for (const auto& name : workload::GeneratorPredicates(2)) {
      vocab_.AddPredicate(name, 1);
    }
    for (const auto& name : workload::GeneratorConstants(2)) {
      vocab_.AddConstant(name);
    }
    ctx_.engine = &engine_;
    ctx_.vocabulary = &vocab_;
    ctx_.domain_size = 6;
    ctx_.tolerances = semantics::ToleranceVector::Uniform(0.2);
  }

  logic::Vocabulary vocab_;
  engines::ProfileEngine engine_;
  KlmContext ctx_;
};

TEST_P(KlmRandomSweep, CorePropertiesHold) {
  std::mt19937 rng(42 + GetParam());
  workload::UnaryKbParams params;
  params.num_predicates = 2;
  params.num_constants = 2;
  params.num_statements = 1;
  params.num_facts = 1;

  int applicable_total = 0;
  for (int trial = 0; trial < 40; ++trial) {
    FormulaPtr kb = workload::RandomUnaryKb(params, &rng);
    FormulaPtr kb2 = workload::RandomUnaryKb(params, &rng);
    FormulaPtr phi = workload::RandomQuery(params, &rng);
    FormulaPtr psi = workload::RandomQuery(params, &rng);
    FormulaPtr theta = workload::RandomQuery(params, &rng);

    for (const KlmCheck& check :
         {CheckAnd(ctx_, kb, phi, psi), CheckOr(ctx_, kb, kb2, phi),
          CheckCut(ctx_, kb, theta, phi),
          CheckCautiousMonotonicity(ctx_, kb, theta, phi),
          CheckRightWeakeningMonotone(ctx_, kb, phi, psi),
          CheckReflexivity(ctx_, kb),
          CheckRationalMonotonicityBound(ctx_, kb, theta, phi),
          CheckConditioningIdentity(ctx_, kb, theta, phi)}) {
      if (!check.applicable) continue;
      ++applicable_total;
      EXPECT_TRUE(check.holds)
          << check.detail << "\nKB: " << logic::ToString(kb)
          << "\nphi: " << logic::ToString(phi)
          << "\npsi: " << logic::ToString(psi)
          << "\ntheta: " << logic::ToString(theta);
    }
  }
  EXPECT_GT(applicable_total, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KlmRandomSweep, ::testing::Range(0, 8));

TEST(KlmFixture, BrokenArmExample) {
  // Example 5.4: exactly one of Eric's arms is usable, but we cannot say
  // which.  (Unary rendering: LeftBroken ∨ RightBroken known.)
  logic::Vocabulary vocab;
  for (const char* p :
       {"LeftUsable", "LeftBroken", "RightUsable", "RightBroken"}) {
    vocab.AddPredicate(p, 1);
  }
  vocab.AddConstant("Eric");
  logic::TermPtr x = V("x");
  FormulaPtr kb_arm = Formula::AndAll({
      logic::Default(Formula::True(), P("LeftUsable", x), {"x"}, 1),
      logic::ApproxEq(
          logic::CondProp(P("LeftUsable", x), P("LeftBroken", x), {"x"}),
          0.0, 2),
      logic::Default(Formula::True(), P("RightUsable", x), {"x"}, 3),
      logic::ApproxEq(
          logic::CondProp(P("RightUsable", x), P("RightBroken", x), {"x"}),
          0.0, 4),
      Formula::Or(P("LeftBroken", C("Eric")), P("RightBroken", C("Eric"))),
  });

  engines::ProfileEngine engine;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.04);
  const int n = 40;

  auto pr = [&](const FormulaPtr& q) {
    auto r = engine.DegreeAt(vocab, kb_arm, q, n, tol);
    EXPECT_TRUE(r.well_defined);
    return r.probability;
  };

  FormulaPtr left = P("LeftUsable", C("Eric"));
  FormulaPtr right = P("RightUsable", C("Eric"));
  // Exactly one arm usable (by default): Pr(left XOR right) → 1.
  double xor_prob = pr(Formula::And(Formula::Or(left, right),
                                    Formula::Not(Formula::And(left, right))));
  EXPECT_GT(xor_prob, 0.85);
  // But no verdict on which one: both marginals near 1/2.
  EXPECT_NEAR(pr(left), 0.5, 0.1);
  EXPECT_NEAR(pr(right), 0.5, 0.1);
}

}  // namespace
}  // namespace rwl::defaults
