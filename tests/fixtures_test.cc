// Data-driven run of the whole paper corpus (src/fixtures) through the
// public inference facade.  One TEST_P instance per example, named by the
// example id, so a failing paper claim is visible directly in the ctest
// output.
#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/fixtures/paper_kbs.h"

namespace rwl {
namespace {

using fixtures::PaperExample;

class PaperCorpus : public ::testing::TestWithParam<PaperExample> {};

TEST_P(PaperCorpus, ReproducesPaperValue) {
  const PaperExample& example = GetParam();
  KnowledgeBase kb;
  std::string error;
  ASSERT_TRUE(kb.AddParsed(example.kb, &error)) << error;
  for (const auto& constant : example.extra_constants) {
    kb.mutable_vocabulary().AddConstant(constant);
  }

  InferenceOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32, 48};
  options.limit.tolerance_scales = {1.0, 0.5};
  if (example.numeric_only) {
    options.use_symbolic = false;
    options.use_maxent = false;
    options.use_exact_fallback = false;
    options.limit.domain_sizes = {32, 64, 128};
    options.limit.tolerance_scales = {1.0};
  }
  Answer answer = DegreeOfBelief(kb, example.query, options);

  switch (example.expect) {
    case PaperExample::Expect::kPoint:
      ASSERT_TRUE(answer.status == Answer::Status::kPoint ||
                  answer.status == Answer::Status::kInterval)
          << StatusToString(answer.status) << ": " << answer.explanation;
      EXPECT_NEAR(answer.lo, example.value, example.tolerance)
          << answer.method;
      EXPECT_NEAR(answer.hi, example.value, example.tolerance)
          << answer.method;
      break;
    case PaperExample::Expect::kInterval: {
      // Accept the exact interval (symbolic) or a point inside it
      // (numeric sharpening).
      ASSERT_TRUE(answer.status == Answer::Status::kPoint ||
                  answer.status == Answer::Status::kInterval)
          << StatusToString(answer.status) << ": " << answer.explanation;
      EXPECT_GE(answer.lo, example.lo - example.tolerance) << answer.method;
      EXPECT_LE(answer.hi, example.hi + example.tolerance) << answer.method;
      break;
    }
    case PaperExample::Expect::kNonexistent:
      EXPECT_EQ(answer.status, Answer::Status::kNonexistent)
          << answer.explanation;
      break;
    case PaperExample::Expect::kUndefined:
      EXPECT_EQ(answer.status, Answer::Status::kUndefined)
          << answer.explanation;
      break;
  }
}

std::string ExampleName(const ::testing::TestParamInfo<PaperExample>& info) {
  std::string name = info.param.id;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(All, PaperCorpus,
                         ::testing::ValuesIn(fixtures::AllPaperExamples()),
                         ExampleName);

TEST(FixturesApi, LookupById) {
  const PaperExample& e = fixtures::ExampleById("E5.8");
  EXPECT_EQ(e.query, "Hep(Eric)");
  EXPECT_EQ(e.expect, PaperExample::Expect::kPoint);
}

TEST(FixturesApi, CorpusIsNonTrivial) {
  EXPECT_GE(fixtures::AllPaperExamples().size(), 18u);
}

}  // namespace
}  // namespace rwl
