// The corpus case format: serialization round trips, directive validation,
// vocabulary pinning, and the property that a corpus file doubles as a
// plain .rwl knowledge base.
#include <string>

#include <gtest/gtest.h>

#include "src/logic/parser.h"
#include "src/testing/corpus.h"

namespace rwl::testing {
namespace {

CorpusCase SampleCase() {
  CorpusCase corpus_case;
  corpus_case.notes = {"a note", "another note"};
  corpus_case.seed = 42;
  corpus_case.tolerance = 0.125;
  corpus_case.domain_sizes = {2, 3, 5};
  corpus_case.montecarlo_samples = 9000;
  corpus_case.check_pipeline = false;
  corpus_case.check_maxent = true;
  corpus_case.check_batch = false;
  corpus_case.pipeline_domain_sizes = {6, 9};
  corpus_case.predicates = {{"P0", 1}, {"R", 2}};
  corpus_case.functions = {{"K0", 0}, {"F", 1}};
  corpus_case.queries = {"P0(K0)", "(P0(K0) | R(K0, K0))"};
  corpus_case.kb_text = "#(P0(x))[x] ~= 0.5\nR(K0, K0)\n";
  return corpus_case;
}

TEST(CorpusFormat, FormatParseRoundTripsEveryField) {
  CorpusCase original = SampleCase();
  CorpusCase reparsed;
  std::string error;
  ASSERT_TRUE(ParseCase(FormatCase(original), &reparsed, &error)) << error;
  EXPECT_EQ(original.notes, reparsed.notes);
  EXPECT_EQ(original.seed, reparsed.seed);
  EXPECT_EQ(original.tolerance, reparsed.tolerance);
  EXPECT_EQ(original.domain_sizes, reparsed.domain_sizes);
  EXPECT_EQ(original.montecarlo_samples, reparsed.montecarlo_samples);
  EXPECT_EQ(original.check_pipeline, reparsed.check_pipeline);
  EXPECT_EQ(original.check_maxent, reparsed.check_maxent);
  EXPECT_EQ(original.check_batch, reparsed.check_batch);
  EXPECT_EQ(original.pipeline_domain_sizes, reparsed.pipeline_domain_sizes);
  EXPECT_EQ(original.predicates, reparsed.predicates);
  EXPECT_EQ(original.functions, reparsed.functions);
  EXPECT_EQ(original.queries, reparsed.queries);
  EXPECT_EQ(original.kb_text, reparsed.kb_text);
}

TEST(CorpusFormat, FormattedCaseIsAPlainKnowledgeBase) {
  // The whole file must parse as a KB: //! directives are ordinary
  // comments to the parser, so `rwlq <corpus-file> '<query>'` just works.
  std::string text = FormatCase(SampleCase());
  logic::ParseResult kb = logic::ParseKnowledgeBase(text);
  ASSERT_TRUE(kb.ok()) << kb.error;
}

TEST(CorpusFormat, DirectiveErrorsAreReported) {
  CorpusCase parsed;
  std::string error;
  EXPECT_FALSE(ParseCase("//! query: P(K)\n//! frobnicate: 1\n", &parsed,
                         &error));
  EXPECT_NE(error.find("unknown directive"), std::string::npos);
  EXPECT_FALSE(ParseCase("//! predicate: NoArity\n//! query: P(K)\n",
                         &parsed, &error));
  EXPECT_NE(error.find("malformed predicate"), std::string::npos);
  EXPECT_FALSE(ParseCase("//! checks: bogus\n//! query: P(K)\n", &parsed,
                         &error));
  EXPECT_NE(error.find("unknown check"), std::string::npos);
  EXPECT_FALSE(ParseCase("P(K)\n", &parsed, &error));  // no query directive
  EXPECT_NE(error.find("query"), std::string::npos);
}

TEST(CorpusFormat, ChecksNoneDisablesAllLimitChecks) {
  CorpusCase parsed;
  std::string error;
  ASSERT_TRUE(ParseCase("//! checks: none\n//! query: P(K)\ntrue\n",
                        &parsed, &error))
      << error;
  EXPECT_FALSE(parsed.check_pipeline);
  EXPECT_FALSE(parsed.check_maxent);
  EXPECT_FALSE(parsed.check_batch);
  DifferentialOptions options = ReplayOptions(parsed);
  EXPECT_FALSE(options.check_pipeline);
  EXPECT_FALSE(options.check_maxent);
  EXPECT_FALSE(options.check_batch);
}

TEST(CorpusFormat, ScenarioPinsTheDeclaredVocabulary) {
  CorpusCase parsed;
  std::string error;
  ASSERT_TRUE(ParseCase(
      "//! predicate: Unused/1\n"
      "//! constant: Spare\n"
      "//! query: P0(K0)\n"
      "#(P0(x))[x] ~= 0.5\n",
      &parsed, &error))
      << error;
  Scenario scenario;
  ASSERT_TRUE(CaseToScenario(parsed, &scenario, &error)) << error;
  // Pinned symbols exist even though no formula mentions them...
  EXPECT_TRUE(scenario.vocabulary.FindPredicate("Unused").has_value());
  EXPECT_TRUE(scenario.vocabulary.FindFunction("Spare").has_value());
  // ...and the formulas' own symbols are registered on top.
  EXPECT_TRUE(scenario.vocabulary.FindPredicate("P0").has_value());
  EXPECT_TRUE(scenario.vocabulary.FindFunction("K0").has_value());
}

TEST(CorpusFormat, ScenarioCaptureRoundTrips) {
  // CaseFromScenario(CaseToScenario(c)) preserves the executable content.
  CorpusCase original = SampleCase();
  Scenario scenario;
  std::string error;
  ASSERT_TRUE(CaseToScenario(original, &scenario, &error)) << error;
  CorpusCase captured =
      CaseFromScenario(scenario, ReplayOptions(original),
                       original.montecarlo_samples);
  Scenario again;
  ASSERT_TRUE(CaseToScenario(captured, &again, &error)) << error;
  // Hash-consing makes semantic equality pointer equality.
  EXPECT_EQ(scenario.kb.get(), again.kb.get());
  ASSERT_EQ(scenario.queries.size(), again.queries.size());
  for (size_t i = 0; i < scenario.queries.size(); ++i) {
    EXPECT_EQ(scenario.queries[i].get(), again.queries[i].get());
  }
  EXPECT_EQ(scenario.vocabulary.num_predicates(),
            again.vocabulary.num_predicates());
  EXPECT_EQ(scenario.vocabulary.num_functions(),
            again.vocabulary.num_functions());
}

TEST(CorpusFormat, WriteAndLoadRoundTripOnDisk) {
  std::string path =
      ::testing::TempDir() + "/corpus_format_roundtrip.rwl";
  CorpusCase original = SampleCase();
  std::string error;
  ASSERT_TRUE(WriteCaseFile(path, original, &error)) << error;
  CorpusCase loaded;
  ASSERT_TRUE(LoadCaseFile(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.name, "corpus_format_roundtrip");
  EXPECT_EQ(original.queries, loaded.queries);
  EXPECT_EQ(original.kb_text, loaded.kb_text);
  EXPECT_EQ(original.predicates, loaded.predicates);
  EXPECT_EQ(original.montecarlo_samples, loaded.montecarlo_samples);
}

TEST(CorpusFormat, ParseKeepsPlainCommentsOutOfDirectives) {
  CorpusCase parsed;
  std::string error;
  ASSERT_TRUE(ParseCase(
      "// a plain comment, not a directive\n"
      "//! query: P(K)\n"
      "P(K)\n",
      &parsed, &error))
      << error;
  EXPECT_EQ(parsed.queries.size(), 1u);
  // The plain comment is KB content and survives verbatim for the parser
  // to skip.
  EXPECT_NE(parsed.kb_text.find("// a plain comment"), std::string::npos);
}

}  // namespace
}  // namespace rwl::testing
