// QueryContext invariants: every engine answers identically through a
// caching context, an uncached context, and the legacy entry points — bit
// for bit — and the parallel limit sweep reproduces the serial one.
#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/query_context.h"
#include "src/engines/exact_engine.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/montecarlo_engine.h"
#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"

namespace rwl {
namespace {

using engines::FiniteResult;

struct Fixture {
  KnowledgeBase kb;
  logic::FormulaPtr query;
  // Two further distinct queries: recording is lazy, so the first query at
  // a sweep point only marks it, the second records, the third replays.
  logic::FormulaPtr other_query;
  logic::FormulaPtr third_query;
  logic::Vocabulary vocabulary;
};

Fixture MakeFixture() {
  Fixture f;
  std::string error;
  bool ok = f.kb.AddParsed(
      "Jaun(Eric)\n"
      "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"
      "#(Fever(x) ; Hep(x))[x] ~= 0.6\n",
      &error);
  EXPECT_TRUE(ok) << error;
  f.query = logic::ParseFormula("Hep(Eric)").formula;
  f.other_query = logic::ParseFormula("Fever(Eric)").formula;
  f.third_query = logic::ParseFormula("Hep(Eric) & Fever(Eric)").formula;
  f.vocabulary = f.kb.vocabulary();
  logic::RegisterSymbols(f.query, &f.vocabulary);
  logic::RegisterSymbols(f.other_query, &f.vocabulary);
  logic::RegisterSymbols(f.third_query, &f.vocabulary);
  return f;
}

void ExpectBitIdentical(const FiniteResult& a, const FiniteResult& b) {
  EXPECT_EQ(a.well_defined, b.well_defined);
  EXPECT_EQ(a.exhausted, b.exhausted);
  EXPECT_EQ(a.probability, b.probability);
  EXPECT_EQ(a.log_numerator, b.log_numerator);
  EXPECT_EQ(a.log_denominator, b.log_denominator);
}

TEST(QueryContextCaching, ProfileRecordReplayMatchesLegacy) {
  Fixture f = MakeFixture();
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);

  for (int n : {8, 16, 24}) {
    FiniteResult legacy =
        profile.DegreeAt(f.vocabulary, f.kb.AsFormula(), f.query, n, tol);

    QueryContext cached(f.vocabulary, f.kb.AsFormula(), true);
    // First call marks the point, the second records the world list...
    profile.DegreeAt(cached, f.other_query, n, tol);
    profile.DegreeAt(cached, f.third_query, n, tol);
    // ...and the third call replays it for yet another query.
    FiniteResult replayed = profile.DegreeAt(cached, f.query, n, tol);
    ExpectBitIdentical(replayed, legacy);
    // Memo: asking again returns the stored result.
    FiniteResult memoized = profile.DegreeAt(cached, f.query, n, tol);
    ExpectBitIdentical(memoized, legacy);

    QueryContext uncached(f.vocabulary, f.kb.AsFormula(), false);
    ExpectBitIdentical(profile.DegreeAt(uncached, f.query, n, tol), legacy);
  }
}

TEST(QueryContextCaching, ExactRecordReplayMatchesLegacy) {
  Fixture f = MakeFixture();
  engines::ExactEngine exact;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.2);

  const int n = 3;
  ASSERT_TRUE(exact.Supports(f.vocabulary, f.kb.AsFormula(), f.query, n));
  FiniteResult legacy =
      exact.DegreeAt(f.vocabulary, f.kb.AsFormula(), f.query, n, tol);

  QueryContext cached(f.vocabulary, f.kb.AsFormula(), true);
  exact.DegreeAt(cached, f.other_query, n, tol);  // mark
  exact.DegreeAt(cached, f.third_query, n, tol);  // record
  ExpectBitIdentical(exact.DegreeAt(cached, f.query, n, tol), legacy);

  QueryContext uncached(f.vocabulary, f.kb.AsFormula(), false);
  ExpectBitIdentical(exact.DegreeAt(uncached, f.query, n, tol), legacy);
}

TEST(QueryContextCaching, MonteCarloMemoMatchesLegacy) {
  Fixture f = MakeFixture();
  engines::MonteCarloEngine::Options options;
  options.num_samples = 20'000;
  engines::MonteCarloEngine montecarlo(options);
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.2);

  const int n = 8;
  FiniteResult legacy =
      montecarlo.DegreeAt(f.vocabulary, f.kb.AsFormula(), f.query, n, tol);
  QueryContext cached(f.vocabulary, f.kb.AsFormula(), true);
  ExpectBitIdentical(montecarlo.DegreeAt(cached, f.query, n, tol), legacy);
  ExpectBitIdentical(montecarlo.DegreeAt(cached, f.query, n, tol), legacy);
}

TEST(QueryContextCaching, MaxEntContextMatchesLegacy) {
  Fixture f = MakeFixture();
  engines::MaxEntEngine maxent;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);

  auto legacy =
      maxent.InferLimit(f.vocabulary, f.kb.AsFormula(), f.query, tol);
  QueryContext cached(f.vocabulary, f.kb.AsFormula(), true);
  auto through_ctx = maxent.InferLimit(cached, f.query, tol);
  EXPECT_EQ(legacy.supported, through_ctx.supported);
  EXPECT_EQ(legacy.converged, through_ctx.converged);
  EXPECT_EQ(legacy.value, through_ctx.value);
  EXPECT_EQ(legacy.per_scale_values, through_ctx.per_scale_values);
}

TEST(QueryContextCaching, SymbolicContextMatchesLegacy) {
  Fixture f = MakeFixture();
  engines::SymbolicEngine symbolic;
  auto legacy = symbolic.Infer(f.kb.AsFormula(), f.query);
  QueryContext cached(f.vocabulary, f.kb.AsFormula(), true);
  auto through_ctx = symbolic.Infer(cached, f.query);
  EXPECT_EQ(static_cast<int>(legacy.status),
            static_cast<int>(through_ctx.status));
  EXPECT_EQ(legacy.lo, through_ctx.lo);
  EXPECT_EQ(legacy.hi, through_ctx.hi);
  EXPECT_EQ(legacy.rule, through_ctx.rule);
  // Memoized second call.
  auto again = symbolic.Infer(cached, f.query);
  EXPECT_EQ(legacy.lo, again.lo);
  EXPECT_EQ(legacy.hi, again.hi);
}

TEST(QueryContextCaching, CacheStatsRecordHits) {
  Fixture f = MakeFixture();
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);
  QueryContext ctx(f.vocabulary, f.kb.AsFormula(), true);
  profile.DegreeAt(ctx, f.query, 8, tol);
  profile.DegreeAt(ctx, f.query, 8, tol);
  QueryContext::CacheStats stats = ctx.cache_stats();
  EXPECT_GE(stats.finite_hits, 1u);
  EXPECT_GE(stats.finite_misses, 1u);
}

TEST(QueryContextIncremental, FirstQueryAfterPatchedAssertReplaysWorldLists) {
  // The service catalog's ASSERT fast path: a signature-preserving append
  // must leave the successor context warm — patched world lists, prewarmed
  // analyses — so the FIRST post-mutation query is a replay, not a DFS.
  Fixture f = MakeFixture();
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);
  const int n = 8;

  QueryContext v1(f.vocabulary, f.kb.AsFormula(), true);
  v1.set_eager_world_recording(true);
  profile.DegreeAt(v1, f.query, n, tol);  // eager mode records on first call

  KnowledgeBase mutated = f.kb;  // persistent copy: shares the conjuncts
  std::string error;
  ASSERT_TRUE(mutated.AddParsed("Fever(Eric)\n", &error)) << error;
  KbDelta delta = ComputeKbDelta(f.kb, mutated);
  EXPECT_TRUE(delta.signature_preserving);
  EXPECT_TRUE(delta.is_append);
  ASSERT_TRUE(delta.patchable());

  QueryContext v2(f.vocabulary, mutated.AsFormula(), true);
  v2.set_eager_world_recording(true);
  v2.AdoptCachesFrom(v1);
  EXPECT_TRUE(v2.ApplyDelta(v1, delta));

  QueryContext::CacheStats patched_stats = v2.cache_stats();
  EXPECT_EQ(patched_stats.deltas_patched, 1u);
  EXPECT_EQ(patched_stats.deltas_rebuilt, 0u);
  EXPECT_GE(patched_stats.world_lists_patched, 1u);
  EXPECT_GE(patched_stats.analyses_prewarmed, 1u);

  // First post-mutation query: a blob hit on the patched list, and the
  // answer is bit-identical to an uncontexted computation on the new KB.
  FiniteResult fresh =
      profile.DegreeAt(f.vocabulary, mutated.AsFormula(), f.query, n, tol);
  FiniteResult replayed = profile.DegreeAt(v2, f.query, n, tol);
  ExpectBitIdentical(replayed, fresh);
  QueryContext::CacheStats queried_stats = v2.cache_stats();
  EXPECT_GT(queried_stats.blob_hits, patched_stats.blob_hits)
      << "the first post-mutation query should replay the patched list";
}

TEST(QueryContextIncremental, VocabularyExtendingAssertForcesRebuild) {
  // A mutation introducing a new symbol changes the world space: nothing
  // recorded under the old signature may be patched forward.  ApplyDelta
  // must take the rebuild path (the caches repopulate lazily, which the
  // version salt already makes correct) while still prewarming analyses.
  Fixture f = MakeFixture();
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);
  const int n = 8;

  QueryContext v1(f.vocabulary, f.kb.AsFormula(), true);
  v1.set_eager_world_recording(true);
  profile.DegreeAt(v1, f.query, n, tol);

  KnowledgeBase mutated = f.kb;
  std::string error;
  ASSERT_TRUE(mutated.AddParsed("Jaun(Maria)\n", &error)) << error;  // new C
  KbDelta delta = ComputeKbDelta(f.kb, mutated);
  EXPECT_FALSE(delta.signature_preserving);
  EXPECT_FALSE(delta.patchable());

  QueryContext v2(mutated.vocabulary(), mutated.AsFormula(), true);
  v2.set_eager_world_recording(true);
  v2.AdoptCachesFrom(v1);
  EXPECT_FALSE(v2.ApplyDelta(v1, delta));

  QueryContext::CacheStats stats = v2.cache_stats();
  EXPECT_EQ(stats.deltas_rebuilt, 1u);
  EXPECT_EQ(stats.deltas_patched, 0u);
  EXPECT_EQ(stats.world_lists_patched, 0u);
  EXPECT_GE(stats.analyses_prewarmed, 1u)
      << "the rebuild path still pays the KB analyses off the request path";

  // Correctness is unaffected: the rebuilt context recomputes from scratch.
  FiniteResult fresh = profile.DegreeAt(mutated.vocabulary(),
                                        mutated.AsFormula(), f.query, n, tol);
  ExpectBitIdentical(profile.DegreeAt(v2, f.query, n, tol), fresh);
}

TEST(QueryContextBudget, OversizedBlobIsDroppedOutright) {
  Fixture f = MakeFixture();
  QueryContext ctx(f.vocabulary, f.kb.AsFormula(), true);
  auto blob = std::make_shared<int>(7);
  ctx.StoreBlob("oversized", blob, QueryContext::kBlobBudgetBytes + 1);
  EXPECT_EQ(ctx.LookupBlob("oversized"), nullptr);
  QueryContext::CacheStats stats = ctx.cache_stats();
  EXPECT_EQ(stats.blob_stores_dropped, 1u);
  EXPECT_EQ(stats.blob_bytes, 0u) << "a dropped store must not be charged";
}

TEST(QueryContextBudget, EngineDegradesGracefullyWhenBudgetIsFull) {
  // Saturate the 256 MiB blob budget with one (hint-only) entry standing
  // in for an oversized satisfying-world record, then run the engines:
  // their world-list stores must be dropped — no cache — while every
  // answer stays bit-identical to the uncontexted computation.
  Fixture f = MakeFixture();
  engines::ProfileEngine profile;
  engines::ExactEngine exact;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.1);

  QueryContext ctx(f.vocabulary, f.kb.AsFormula(), true);
  ctx.StoreBlob("pin", std::make_shared<int>(0),
                QueryContext::kBlobBudgetBytes);
  ASSERT_EQ(ctx.cache_stats().blob_bytes, QueryContext::kBlobBudgetBytes);

  for (int n : {8, 16}) {
    FiniteResult legacy =
        profile.DegreeAt(f.vocabulary, f.kb.AsFormula(), f.query, n, tol);
    // Three distinct queries drive the record-replay protocol through
    // mark → (dropped) record → recompute.
    profile.DegreeAt(ctx, f.other_query, n, tol);
    profile.DegreeAt(ctx, f.third_query, n, tol);
    ExpectBitIdentical(profile.DegreeAt(ctx, f.query, n, tol), legacy);
  }
  const int exact_n = 3;
  FiniteResult legacy =
      exact.DegreeAt(f.vocabulary, f.kb.AsFormula(), f.query, exact_n, tol);
  exact.DegreeAt(ctx, f.other_query, exact_n, tol);
  exact.DegreeAt(ctx, f.third_query, exact_n, tol);
  ExpectBitIdentical(exact.DegreeAt(ctx, f.query, exact_n, tol), legacy);

  QueryContext::CacheStats stats = ctx.cache_stats();
  EXPECT_GE(stats.blob_stores_dropped, 3u)
      << "world-list records should have been rejected over budget";
  EXPECT_EQ(stats.blob_bytes, QueryContext::kBlobBudgetBytes)
      << "dropped stores must leave the charge untouched";
}

TEST(EstimateLimitParallel, MatchesSerialSweepBitwise) {
  Fixture f = MakeFixture();
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.05);

  engines::LimitOptions serial;
  serial.domain_sizes = {4, 8, 12, 16, 24};
  serial.num_threads = 1;
  engines::LimitOptions pooled = serial;
  pooled.num_threads = 4;

  QueryContext ctx_serial(f.vocabulary, f.kb.AsFormula(), false);
  QueryContext ctx_pooled(f.vocabulary, f.kb.AsFormula(), false);
  engines::LimitResult a =
      engines::EstimateLimit(profile, ctx_serial, f.query, tol, serial);
  engines::LimitResult b =
      engines::EstimateLimit(profile, ctx_pooled, f.query, tol, pooled);

  EXPECT_EQ(a.value.has_value(), b.value.has_value());
  if (a.value.has_value()) EXPECT_EQ(*a.value, *b.value);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.never_defined, b.never_defined);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].domain_size, b.series[i].domain_size);
    EXPECT_EQ(a.series[i].tolerance_scale, b.series[i].tolerance_scale);
    EXPECT_EQ(a.series[i].probability, b.series[i].probability);
    EXPECT_EQ(a.series[i].well_defined, b.series[i].well_defined);
  }

  // The legacy (vocabulary, kb) overload agrees too.
  engines::LimitResult legacy = engines::EstimateLimit(
      profile, f.vocabulary, f.kb.AsFormula(), f.query, tol, serial);
  EXPECT_EQ(a.value.has_value(), legacy.value.has_value());
  if (a.value.has_value()) EXPECT_EQ(*a.value, *legacy.value);
}

}  // namespace
}  // namespace rwl
