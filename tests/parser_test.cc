#include "src/logic/parser.h"

#include <random>

#include <gtest/gtest.h>

#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/workload/generators.h"

namespace rwl::logic {
namespace {

FormulaPtr MustParse(const std::string& text) {
  ParseResult result = ParseFormula(text);
  EXPECT_TRUE(result.ok()) << text << " : " << result.error << " at "
                           << result.error_offset;
  return result.formula;
}

TEST(Parser, Atom) {
  FormulaPtr f = MustParse("Bird(Tweety)");
  EXPECT_EQ(f->kind(), Formula::Kind::kAtom);
  EXPECT_EQ(f->predicate(), "Bird");
  EXPECT_TRUE(f->terms()[0]->is_constant());
}

TEST(Parser, VariableVsConstantCase) {
  FormulaPtr f = MustParse("Likes(x, Fred)");
  EXPECT_TRUE(f->terms()[0]->is_variable());
  EXPECT_TRUE(f->terms()[1]->is_constant());
}

TEST(Parser, FunctionApplication) {
  FormulaPtr f = MustParse("RisesLate(alice, NextDay(d))");
  EXPECT_EQ(f->terms()[1]->name(), "NextDay");
  EXPECT_EQ(f->terms()[1]->args().size(), 1u);
}

TEST(Parser, Connectives) {
  FormulaPtr f = MustParse("(Bird(x) & !Penguin(x)) => Fly(x)");
  EXPECT_EQ(f->kind(), Formula::Kind::kImplies);
  EXPECT_EQ(f->left()->kind(), Formula::Kind::kAnd);
}

TEST(Parser, PrecedenceAndBindsTighterThanOr) {
  FormulaPtr f = MustParse("A(x) | B(x) & C(x)");
  EXPECT_EQ(f->kind(), Formula::Kind::kOr);
  EXPECT_EQ(f->right()->kind(), Formula::Kind::kAnd);
}

TEST(Parser, Quantifiers) {
  FormulaPtr f = MustParse("forall x. (Penguin(x) => Bird(x))");
  EXPECT_EQ(f->kind(), Formula::Kind::kForAll);
  EXPECT_EQ(f->var(), "x");
}

TEST(Parser, ExistsUniqueSugar) {
  FormulaPtr f = MustParse("exists! x. Winner(x)");
  EXPECT_EQ(f->kind(), Formula::Kind::kExists);
  EXPECT_EQ(f->body()->kind(), Formula::Kind::kAnd);
}

TEST(Parser, Equality) {
  FormulaPtr f = MustParse("Ray = Reiter");
  EXPECT_EQ(f->kind(), Formula::Kind::kEqual);
  FormulaPtr g = MustParse("x != y");
  EXPECT_EQ(g->kind(), Formula::Kind::kNot);
}

TEST(Parser, ProportionFormula) {
  FormulaPtr f = MustParse("#(Hep(x) ; Jaun(x))[x] ~= 0.8");
  EXPECT_EQ(f->kind(), Formula::Kind::kCompare);
  EXPECT_EQ(f->compare_op(), CompareOp::kApproxEq);
  EXPECT_EQ(f->expr_left()->kind(), Expr::Kind::kConditional);
  EXPECT_DOUBLE_EQ(f->expr_right()->value(), 0.8);
}

TEST(Parser, ToleranceSubscript) {
  FormulaPtr f = MustParse("#(Fly(x) ; Bird(x))[x] ~=_3 1");
  EXPECT_EQ(f->tolerance_index(), 3);
}

TEST(Parser, MultiVariableProportion) {
  FormulaPtr f = MustParse(
      "#(Likes(x, y) ; Elephant(x) & Zookeeper(y))[x,y] ~= 1");
  EXPECT_EQ(f->expr_left()->vars().size(), 2u);
}

TEST(Parser, ArithmeticInExpressions) {
  FormulaPtr f = MustParse("(#(A(x))[x] + #(B(x))[x]) <= 0.5");
  EXPECT_EQ(f->kind(), Formula::Kind::kCompare);
  EXPECT_EQ(f->expr_left()->kind(), Expr::Kind::kAdd);
}

TEST(Parser, NestedProportions) {
  // The Morreau nested default (Example 4.6).
  FormulaPtr f = MustParse(
      "#(#(RisesLate(x, y) ; Day(y))[y] ~=_1 1 ; "
      "#(ToBedLate(x, y) ; Day(y))[y] ~=_2 1)[x] ~=_3 1");
  EXPECT_EQ(f->kind(), Formula::Kind::kCompare);
  EXPECT_EQ(f->expr_left()->kind(), Expr::Kind::kConditional);
  EXPECT_EQ(f->expr_left()->body()->kind(), Formula::Kind::kCompare);
}

TEST(Parser, ErrorsReportOffsets) {
  ParseResult result = ParseFormula("Bird(x");
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
}

TEST(Parser, TrailingInputIsError) {
  ParseResult result = ParseFormula("Bird(x) Bird(y)");
  EXPECT_FALSE(result.ok());
}

TEST(Parser, VariableAsFormulaIsError) {
  ParseResult result = ParseFormula("x & Bird(x)");
  EXPECT_FALSE(result.ok());
}

TEST(Parser, KnowledgeBaseLinesAndComments) {
  ParseResult result = ParseKnowledgeBase(
      "// the hepatitis KB from Example 5.8\n"
      "Jaun(Eric)\n"
      "\n"
      "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.formula->kind(), Formula::Kind::kAnd);
}

TEST(Parser, RoundTripFixedFormulas) {
  std::vector<FormulaPtr> formulas = {
      P("Bird", V("x")),
      Formula::Not(P("Fly", C("Tweety"))),
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 2),
      ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}), 0.8, 1),
      InInterval(0.7, 1, CondProp(P("Chirps", V("x")), P("Bird", V("x")),
                                  {"x"}),
                 0.8, 2),
      Formula::Compare(
          Expr::Add(Prop(P("A", V("x")), {"x"}), Num(0.25)),
          CompareOp::kLeq, Num(0.5), 1),
      ExistsUnique("x", Formula::And(P("Quaker", V("x")),
                                     P("Republican", V("x")))),
      Eq(C("Ray"), C("Drew")),
  };
  for (const auto& f : formulas) {
    std::string text = ToString(f);
    FormulaPtr parsed = MustParse(text);
    EXPECT_TRUE(Formula::StructuralEqual(f, parsed))
        << "round-trip failed for: " << text << " -> " << ToString(parsed);
  }
}

TEST(Parser, RoundTripGeneratedKbs) {
  std::mt19937 rng(20260612);
  for (int trial = 0; trial < 200; ++trial) {
    workload::UnaryKbParams params;
    params.num_predicates = 3;
    params.num_constants = 2;
    params.num_statements = 3;
    params.num_facts = 2;
    FormulaPtr kb = workload::RandomUnaryKb(params, &rng);
    std::string text = ToString(kb);
    FormulaPtr parsed = MustParse(text);
    EXPECT_TRUE(Formula::StructuralEqual(kb, parsed))
        << "round-trip failed for: " << text;
  }
}

}  // namespace
}  // namespace rwl::logic
