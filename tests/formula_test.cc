#include "src/logic/formula.h"

#include <gtest/gtest.h>

#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/logic/vocabulary.h"

namespace rwl::logic {
namespace {

TEST(Term, StructuralEquality) {
  EXPECT_TRUE(Term::Equal(V("x"), V("x")));
  EXPECT_FALSE(Term::Equal(V("x"), V("y")));
  EXPECT_FALSE(Term::Equal(V("x"), C("x")));
  EXPECT_TRUE(Term::Equal(Term::Apply("f", {V("x")}),
                          Term::Apply("f", {V("x")})));
  EXPECT_FALSE(Term::Equal(Term::Apply("f", {V("x")}),
                           Term::Apply("f", {V("y")})));
}

TEST(Formula, StructuralEquality) {
  FormulaPtr a = P("Bird", V("x"));
  FormulaPtr b = P("Bird", V("x"));
  FormulaPtr c = P("Bird", V("y"));
  EXPECT_TRUE(Formula::StructuralEqual(a, b));
  EXPECT_FALSE(Formula::StructuralEqual(a, c));
  EXPECT_TRUE(Formula::StructuralEqual(Formula::And(a, c),
                                       Formula::And(b, c)));
  EXPECT_FALSE(Formula::StructuralEqual(Formula::And(a, c),
                                        Formula::Or(a, c)));
}

TEST(Formula, CompareEqualityIncludesToleranceIndex) {
  FormulaPtr a = ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.5, 1);
  FormulaPtr b = ApproxEq(Prop(P("Bird", V("x")), {"x"}), 0.5, 2);
  EXPECT_FALSE(Formula::StructuralEqual(a, b));
}

TEST(Formula, HashAgreesOnEqualFormulas) {
  FormulaPtr a = Default(P("Bird", V("x")), P("Fly", V("x")), {"x"});
  FormulaPtr b = Default(P("Bird", V("x")), P("Fly", V("x")), {"x"});
  EXPECT_EQ(Formula::Hash(a), Formula::Hash(b));
}

TEST(Formula, AndAllEmptyIsTrue) {
  EXPECT_EQ(Formula::AndAll({})->kind(), Formula::Kind::kTrue);
  EXPECT_EQ(Formula::OrAll({})->kind(), Formula::Kind::kFalse);
}

TEST(FreeVariables, QuantifierBinds) {
  FormulaPtr f = Formula::ForAll(
      "x", Formula::Implies(P("Bird", V("x")), P("Fly", V("y"))));
  auto fv = FreeVariables(f);
  EXPECT_EQ(fv.size(), 1u);
  EXPECT_TRUE(fv.count("y") > 0);
}

TEST(FreeVariables, ProportionSubscriptBinds) {
  // ||Child(x, y)||_x has y free, x bound.
  ExprPtr e = Prop(P("Child", V("x"), V("y")), {"x"});
  auto fv = FreeVariables(e);
  EXPECT_EQ(fv.size(), 1u);
  EXPECT_TRUE(fv.count("y") > 0);
}

TEST(FreeVariables, CompareFormula) {
  FormulaPtr f = ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")),
                                   {"x"}),
                          0.8, 1);
  EXPECT_TRUE(FreeVariables(f).empty());
}

TEST(ConstantsOf, CollectsThroughProportions) {
  FormulaPtr f = ApproxEq(
      CondProp(P("Likes", V("x"), C("Fred")), P("Elephant", V("x")), {"x"}),
      0.0, 2);
  auto consts = ConstantsOf(f);
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_TRUE(consts.count("Fred") > 0);
}

TEST(Substitution, ReplacesFreeOnly) {
  // (Bird(x) ∧ ∀x Fly(x))[x := Tweety] replaces only the free occurrence.
  FormulaPtr f = Formula::And(P("Bird", V("x")),
                              Formula::ForAll("x", P("Fly", V("x"))));
  FormulaPtr g = SubstituteVariable(f, "x", C("Tweety"));
  EXPECT_EQ(ToString(g), "(Bird(Tweety) & (forall x. Fly(x)))");
}

TEST(Substitution, ProportionSubscriptShadows) {
  // ||Fly(x)||_x [x := Tweety] is unchanged.
  FormulaPtr f = ApproxEq(Prop(P("Fly", V("x")), {"x"}), 1.0, 1);
  FormulaPtr g = SubstituteVariable(f, "x", C("Tweety"));
  EXPECT_TRUE(Formula::StructuralEqual(f, g));
}

TEST(Conjuncts, FlattensNestedAnds) {
  FormulaPtr a = P("A", V("x"));
  FormulaPtr b = P("B", V("x"));
  FormulaPtr c = P("C", V("x"));
  auto list = Conjuncts(Formula::And(Formula::And(a, b), c));
  ASSERT_EQ(list.size(), 3u);
  EXPECT_TRUE(Formula::StructuralEqual(list[0], a));
  EXPECT_TRUE(Formula::StructuralEqual(list[1], b));
  EXPECT_TRUE(Formula::StructuralEqual(list[2], c));
}

TEST(Conjuncts, DropsTrue) {
  auto list = Conjuncts(Formula::And(Formula::True(), P("A", V("x"))));
  EXPECT_EQ(list.size(), 1u);
}

TEST(ExistsUniqueTest, ExpandsToWitnessForm) {
  FormulaPtr f = ExistsUnique("x", P("Winner", V("x")));
  // ∃x (Winner(x) ∧ ∀y (Winner(y) ⇒ y = x))
  EXPECT_EQ(f->kind(), Formula::Kind::kExists);
  const FormulaPtr& body = f->body();
  EXPECT_EQ(body->kind(), Formula::Kind::kAnd);
  EXPECT_EQ(body->right()->kind(), Formula::Kind::kForAll);
}

TEST(ExactlyNTest, ZeroIsNegatedExists) {
  FormulaPtr f = ExactlyN(0, "x", P("Winner", V("x")));
  EXPECT_EQ(f->kind(), Formula::Kind::kNot);
}

TEST(ExactlyNTest, PositiveBuildsWitnesses) {
  FormulaPtr f = ExactlyN(2, "x", P("T", V("x")));
  EXPECT_EQ(f->kind(), Formula::Kind::kExists);
}

TEST(RegisterSymbolsTest, InfersArities) {
  Vocabulary vocab;
  FormulaPtr f = Formula::And(
      P("Likes", C("Clyde"), C("Fred")),
      ApproxEq(Prop(P("Elephant", V("x")), {"x"}), 0.1, 1));
  RegisterSymbols(f, &vocab);
  EXPECT_EQ(vocab.FindPredicate("Likes")->arity, 2);
  EXPECT_EQ(vocab.FindPredicate("Elephant")->arity, 1);
  EXPECT_EQ(vocab.FindFunction("Clyde")->arity, 0);
  EXPECT_EQ(vocab.FindFunction("Fred")->arity, 0);
}

TEST(FreshVariableTest, AvoidsCollisions) {
  FormulaPtr f = Formula::ForAll("x_u", P("A", V("x_u")));
  std::string fresh = FreshVariable(f, "x_u");
  EXPECT_NE(fresh, "x_u");
}

}  // namespace
}  // namespace rwl::logic
