// Parser robustness: malformed input must produce a ParseResult error —
// never a crash, hang, or silently wrong tree.  Includes a deterministic
// mutation fuzz over valid corpus strings.
#include <random>

#include <gtest/gtest.h>

#include "src/fixtures/paper_kbs.h"
#include "src/logic/parser.h"
#include "src/logic/printer.h"

namespace rwl::logic {
namespace {

TEST(ParserRobustness, MalformedInputsReportErrors) {
  const char* bad[] = {
      "",
      "(",
      ")",
      "Bird(",
      "Bird(x))",
      "Bird(x) &",
      "& Bird(x)",
      "forall",
      "forall x",
      "forall x.",
      "exists .",
      "#(Bird(x))",         // missing subscript
      "#(Bird(x))[",        // unclosed subscript
      "#(Bird(x))[x",       // unclosed subscript
      "#(Bird(x))[x] ~=",   // missing rhs
      "#(Bird(x))[x] ~=_0 1",  // bad tolerance index
      "#()[x] ~= 1",
      "#(Bird(x) ;)[x] ~= 1",
      "0.5",                // bare expression is not a formula
      "0.5 ~=",             // half a comparison
      "x",                  // variable as formula
      "x = ",               // half an equality
      "Bird(x) => ",        // dangling implication
      "!(",
      "Likes(x,)",
      "~= 0.5",
      "Bird(x) Bird(y)",    // missing connective
      "@#$%",
  };
  for (const char* text : bad) {
    ParseResult result = ParseFormula(text);
    EXPECT_FALSE(result.ok()) << "accepted: '" << text << "' as "
                              << (result.formula ? ToString(result.formula)
                                                 : "?");
    EXPECT_FALSE(result.error.empty());
  }
}

TEST(ParserRobustness, MutationFuzzNeverCrashes) {
  // Take the paper corpus, mutate characters and truncate randomly, and
  // require parse to terminate with either a tree or an error.
  std::mt19937 rng(20260613);
  std::vector<std::string> seeds;
  for (const auto& example : fixtures::AllPaperExamples()) {
    seeds.push_back(example.kb);
    seeds.push_back(example.query);
  }
  const char alphabet[] = "()[]#;.&|!=~<>xX0123456789 PQabz_";
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string text = seeds[rng() % seeds.size()];
    int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      size_t pos = rng() % text.size();
      switch (rng() % 3) {
        case 0:
          text[pos] = alphabet[rng() % (sizeof(alphabet) - 1)];
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1, alphabet[rng() % (sizeof(alphabet) - 1)]);
          break;
      }
    }
    ParseResult result = ParseFormula(text);
    if (result.ok()) {
      ++parsed_ok;
      // Whatever parsed must round-trip through the printer.
      ParseResult again = ParseFormula(ToString(result.formula));
      EXPECT_TRUE(again.ok()) << ToString(result.formula);
    }
  }
  // Sanity: the fuzz actually exercised both outcomes.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_LT(parsed_ok, 3000);
}

TEST(ParserRobustness, DeeplyNestedInputTerminates) {
  std::string text;
  for (int i = 0; i < 200; ++i) text += "!(";
  text += "Bird(x)";
  for (int i = 0; i < 200; ++i) text += ")";
  ParseResult result = ParseFormula(text);
  EXPECT_TRUE(result.ok());
}

TEST(ParserRobustness, OffsetsPointIntoTheInput) {
  ParseResult result = ParseFormula("Bird(x) & forall . Fly(x)");
  ASSERT_FALSE(result.ok());
  EXPECT_LE(result.error_offset, 25u);
}

}  // namespace
}  // namespace rwl::logic
