// Convergence tests for the rate-aware early exit in EstimateLimit's
// N-sweep (LimitOptions::rate_aware_early_exit): when successive degrees
// contract geometrically inside the convergence tolerance the sweep skips
// the remaining (most expensive) N points; when they do not, the sweep is
// unchanged point for point.
#include <gtest/gtest.h>

#include "src/engines/engine.h"
#include "src/engines/exact_engine.h"
#include "src/logic/builder.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

semantics::ToleranceVector Tol(double v) {
  return semantics::ToleranceVector::Uniform(v);
}

LimitOptions SweepOptions() {
  LimitOptions options;
  options.domain_sizes = {2, 3, 4, 5, 6};
  options.tolerance_scales = {1.0};
  return options;
}

TEST(RateAwareEarlyExit, SkipsTailPointsOnAConvergedSeries) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  vocab.AddConstant("K");
  // Pr_N(P(K) | P(K)) = 1 at every N: deltas are identically zero, so the
  // rate bound fires as soon as two deltas exist.
  FormulaPtr kb = P("P", C("K"));
  FormulaPtr query = P("P", C("K"));
  ExactEngine exact;

  LimitResult full = EstimateLimit(exact, vocab, kb, query, Tol(0.1),
                                   SweepOptions());
  LimitOptions early_options = SweepOptions();
  early_options.rate_aware_early_exit = true;
  LimitResult early = EstimateLimit(exact, vocab, kb, query, Tol(0.1),
                                    early_options);

  ASSERT_TRUE(full.value.has_value());
  ASSERT_TRUE(early.value.has_value());
  EXPECT_EQ(*full.value, *early.value);
  EXPECT_TRUE(early.converged);
  // The full sweep evaluates all five N points; the rate-aware sweep stops
  // after the third (two zero deltas prove the tail).
  EXPECT_EQ(full.series.size(), 5u);
  EXPECT_EQ(early.series.size(), 3u);
}

TEST(RateAwareEarlyExit, LeavesNonContractingSeriesUntouched) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  // Pr_N(∃x. P(x)) = 1 − 2^{−N}: deltas 2^{−N} stay above the default
  // convergence epsilon on this schedule, so no point may be skipped.
  FormulaPtr kb = Formula::True();
  FormulaPtr query = Formula::Exists("x", P("P", V("x")));
  ExactEngine exact;

  LimitResult full = EstimateLimit(exact, vocab, kb, query, Tol(0.1),
                                   SweepOptions());
  LimitOptions early_options = SweepOptions();
  early_options.rate_aware_early_exit = true;
  LimitResult early = EstimateLimit(exact, vocab, kb, query, Tol(0.1),
                                    early_options);

  ASSERT_EQ(full.series.size(), early.series.size());
  for (size_t i = 0; i < full.series.size(); ++i) {
    EXPECT_EQ(full.series[i].probability, early.series[i].probability);
    EXPECT_EQ(full.series[i].domain_size, early.series[i].domain_size);
  }
  EXPECT_EQ(full.converged, early.converged);
  ASSERT_EQ(full.value.has_value(), early.value.has_value());
  if (full.value.has_value()) EXPECT_EQ(*full.value, *early.value);
}

TEST(RateAwareEarlyExit, GeometricContractionStopsWithinTolerance) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  FormulaPtr kb = Formula::True();
  FormulaPtr query = Formula::Exists("x", P("P", V("x")));
  ExactEngine exact;

  // With a loose epsilon the 2^{−N} deltas (ratio 1/2, tail = delta) fall
  // inside the bound early; the skipped points may not move the estimate
  // by more than the epsilon.
  LimitOptions early_options = SweepOptions();
  early_options.rate_aware_early_exit = true;
  early_options.convergence_epsilon = 0.15;
  LimitResult early = EstimateLimit(exact, vocab, kb, query, Tol(0.1),
                                    early_options);
  LimitOptions full_options = SweepOptions();
  full_options.convergence_epsilon = 0.15;
  LimitResult full = EstimateLimit(exact, vocab, kb, query, Tol(0.1),
                                   full_options);

  ASSERT_TRUE(early.value.has_value());
  ASSERT_TRUE(full.value.has_value());
  EXPECT_TRUE(early.converged);
  EXPECT_LT(early.series.size(), full.series.size());
  EXPECT_NEAR(*early.value, *full.value, full_options.convergence_epsilon);
}

}  // namespace
}  // namespace rwl::engines
