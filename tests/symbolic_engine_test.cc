#include "src/engines/symbolic_engine.h"

#include <gtest/gtest.h>

#include "src/logic/builder.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::CondProp;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::Prop;
using logic::V;

TEST(AnalyzeKbTest, ExtractsPointStatistics) {
  FormulaPtr kb = Formula::And(
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1));
  KbAnalysis analysis = AnalyzeKb(kb);
  ASSERT_EQ(analysis.stats.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.stats[0].lo, 0.8);
  EXPECT_DOUBLE_EQ(analysis.stats[0].hi, 0.8);
  EXPECT_EQ(analysis.conjuncts.size(), 2u);
  EXPECT_FALSE(analysis.is_stat_conjunct[0]);
  EXPECT_TRUE(analysis.is_stat_conjunct[1]);
}

TEST(AnalyzeKbTest, MergesIntervalPairs) {
  // 0.7 ⪯₁ e ⪯₂ 0.8 arrives as two conjuncts over the same expression.
  FormulaPtr kb = logic::InInterval(
      0.7, 1, CondProp(P("Chirps", V("x")), P("Bird", V("x")), {"x"}), 0.8,
      2);
  KbAnalysis analysis = AnalyzeKb(kb);
  ASSERT_EQ(analysis.stats.size(), 1u);
  EXPECT_DOUBLE_EQ(analysis.stats[0].lo, 0.7);
  EXPECT_DOUBLE_EQ(analysis.stats[0].hi, 0.8);
  EXPECT_EQ(analysis.stats[0].source_conjuncts.size(), 2u);
}

TEST(MatchExistsUniqueTest, RecognizesBuilderOutput) {
  FormulaPtr f = logic::ExistsUnique(
      "x", Formula::And(P("Quaker", V("x")), P("Republican", V("x"))));
  auto parts = MatchExistsUnique(f);
  ASSERT_TRUE(parts.has_value());
  EXPECT_EQ(parts->var, "x");
  EXPECT_EQ(parts->body->kind(), Formula::Kind::kAnd);
}

TEST(MatchExistsUniqueTest, RejectsPlainExists) {
  FormulaPtr f = Formula::Exists("x", P("Winner", V("x")));
  EXPECT_FALSE(MatchExistsUnique(f).has_value());
}

class SymbolicEngineTest : public ::testing::Test {
 protected:
  SymbolicEngine engine_;
};

TEST_F(SymbolicEngineTest, DirectInferenceHepatitis) {
  // Example 5.8 without extras.
  FormulaPtr kb = Formula::And(
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1));
  SymbolicAnswer answer = engine_.Infer(kb, P("Hep", C("Eric")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval);
  EXPECT_DOUBLE_EQ(answer.lo, 0.8);
  EXPECT_DOUBLE_EQ(answer.hi, 0.8);
}

TEST_F(SymbolicEngineTest, DirectInferenceIgnoresOtherIndividuals) {
  // Example 5.8: Pr(Hep(Eric) | KB ∧ Hep(Tom)) = 0.8 — Theorem 5.6 still
  // applies because Tom ≠ Eric.
  FormulaPtr kb = Formula::AndAll({
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1),
      P("Hep", C("Tom")),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Hep", C("Eric")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval);
  EXPECT_DOUBLE_EQ(answer.lo, 0.8);
}

TEST_F(SymbolicEngineTest, DirectInferenceBlocksWhenConstantLeaks) {
  // If the KB mentions Eric elsewhere in a way the theorem's side condition
  // forbids, Theorem 5.6 must not fire on that stat (here: a second fact
  // about Eric involving the target predicate's vocabulary is fine for
  // 5.16 but kills the 5.6 match).
  FormulaPtr kb = Formula::AndAll({
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1),
      P("Hep", C("Eric")),
  });
  KbAnalysis analysis = AnalyzeKb(kb);
  EXPECT_FALSE(engine_.TryDirectInference(analysis, P("Hep", C("Eric")))
                   .has_value());
}

TEST_F(SymbolicEngineTest, MinimalClassIgnoresIrrelevantFacts) {
  // Example 5.18: extra facts Fever(Eric), Tall(Eric) are ignored.
  FormulaPtr kb = Formula::AndAll({
      P("Jaun", C("Eric")),
      P("Fever", C("Eric")),
      P("Tall", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Hep", C("Eric")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 0.8);
  EXPECT_DOUBLE_EQ(answer.hi, 0.8);
  EXPECT_NE(answer.rule.find("5.16"), std::string::npos);
}

TEST_F(SymbolicEngineTest, SpecificityPrefersSubclass) {
  // Example 5.18 continued: with statistics for Jaun ∧ Fever, the more
  // specific class wins.
  FormulaPtr kb = Formula::AndAll({
      P("Jaun", C("Eric")),
      P("Fever", C("Eric")),
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1),
      logic::ApproxEq(
          CondProp(P("Hep", V("x")),
                   Formula::And(P("Jaun", V("x")), P("Fever", V("x"))),
                   {"x"}),
          1.0, 2),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Hep", C("Eric")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 1.0);
}

TEST_F(SymbolicEngineTest, TweetyThePenguinDoesNotFly) {
  // Example 5.10.
  FormulaPtr kb = Formula::AndAll({
      logic::Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 1),
      logic::ApproxEq(CondProp(P("Fly", V("x")), P("Penguin", V("x")),
                               {"x"}),
                      0.0, 2),
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      P("Penguin", C("Tweety")),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Fly", C("Tweety")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 0.0);
  EXPECT_DOUBLE_EQ(answer.hi, 0.0);
}

TEST_F(SymbolicEngineTest, YellowPenguinStillDoesNotFly) {
  // Example 5.19: irrelevant Yellow(Tweety).
  FormulaPtr kb = Formula::AndAll({
      logic::Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 1),
      logic::ApproxEq(CondProp(P("Fly", V("x")), P("Penguin", V("x")),
                               {"x"}),
                      0.0, 2),
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      P("Penguin", C("Tweety")),
      P("Yellow", C("Tweety")),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Fly", C("Tweety")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.hi, 0.0);
}

TEST_F(SymbolicEngineTest, ExceptionalSubclassInheritance) {
  // Example 5.20: Tweety the penguin is still warm-blooded.
  FormulaPtr kb = Formula::AndAll({
      logic::Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 1),
      logic::ApproxEq(CondProp(P("Fly", V("x")), P("Penguin", V("x")),
                               {"x"}),
                      0.0, 2),
      logic::Default(P("Bird", V("x")), P("WarmBlooded", V("x")), {"x"}, 3),
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      P("Penguin", C("Tweety")),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("WarmBlooded", C("Tweety")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 1.0);
}

TEST_F(SymbolicEngineTest, DrowningProblemSolved) {
  // Example 5.21: the yellow penguin is easy to see.
  FormulaPtr kb = Formula::AndAll({
      logic::Default(P("Bird", V("x")), P("Fly", V("x")), {"x"}, 1),
      logic::ApproxEq(CondProp(P("Fly", V("x")), P("Penguin", V("x")),
                               {"x"}),
                      0.0, 2),
      logic::Default(P("Yellow", V("x")), P("EasyToSee", V("x")), {"x"}, 3),
      Formula::ForAll("x", Formula::Implies(P("Penguin", V("x")),
                                            P("Bird", V("x")))),
      P("Penguin", C("Tweety")),
      P("Yellow", C("Tweety")),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("EasyToSee", C("Tweety")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 1.0);
}

TEST_F(SymbolicEngineTest, StrengthRuleChirpsInterval) {
  // Example 5.24: Pr(Chirps(Tweety)) ∈ [0.7, 0.8].
  FormulaPtr kb = Formula::AndAll({
      logic::InInterval(0.7, 1,
                        CondProp(P("Chirps", V("x")), P("Bird", V("x")),
                                 {"x"}),
                        0.8, 2),
      logic::InInterval(0.0, 3,
                        CondProp(P("Chirps", V("x")), P("Magpie", V("x")),
                                 {"x"}),
                        0.99, 4),
      Formula::ForAll("x", Formula::Implies(P("Magpie", V("x")),
                                            P("Bird", V("x")))),
      P("Magpie", C("Tweety")),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Chirps", C("Tweety")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 0.7);
  EXPECT_DOUBLE_EQ(answer.hi, 0.8);
}

TEST_F(SymbolicEngineTest, NixonDiamondDempster) {
  // Theorem 5.26 with α = β = 0.8: δ = 0.64/0.68 ≈ 0.941.
  FormulaPtr quaker_republican =
      Formula::And(P("Quaker", V("x")), P("Republican", V("x")));
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                               {"x"}),
                      0.8, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.8, 2),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
      logic::ExistsUnique("x", quaker_republican),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Pacifist", C("Nixon")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_NEAR(answer.lo, 0.64 / 0.68, 1e-12);
}

TEST_F(SymbolicEngineTest, NixonDiamondNeutralEvidenceDropsOut) {
  // β = 0.5 (neutral Republicans): answer = α.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                               {"x"}),
                      0.7, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.5, 2),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
      logic::ExistsUnique("x", Formula::And(P("Quaker", V("x")),
                                            P("Republican", V("x")))),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Pacifist", C("Nixon")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval);
  EXPECT_NEAR(answer.lo, 0.7, 1e-12);
}

TEST_F(SymbolicEngineTest, ConflictingDefaultsHaveNoLimit) {
  // α = 1, β = 0 with distinct tolerances: nonexistent.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                               {"x"}),
                      1.0, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.0, 2),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
      logic::ExistsUnique("x", Formula::And(P("Quaker", V("x")),
                                            P("Republican", V("x")))),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Pacifist", C("Nixon")));
  EXPECT_EQ(answer.status, SymbolicAnswer::Status::kNonexistent);
}

TEST_F(SymbolicEngineTest, EqualStrengthConflictGivesHalf) {
  // Same tolerance subscript on both defaults: Pr = 1/2 (§5.3).
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Pacifist", V("x")), P("Quaker", V("x")),
                               {"x"}),
                      1.0, 1),
      logic::ApproxEq(CondProp(P("Pacifist", V("x")),
                               P("Republican", V("x")), {"x"}),
                      0.0, 1),
      P("Quaker", C("Nixon")),
      P("Republican", C("Nixon")),
      logic::ExistsUnique("x", Formula::And(P("Quaker", V("x")),
                                            P("Republican", V("x")))),
  });
  SymbolicAnswer answer = engine_.Infer(kb, P("Pacifist", C("Nixon")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval);
  EXPECT_DOUBLE_EQ(answer.lo, 0.5);
}

TEST_F(SymbolicEngineTest, IndependenceProductRule) {
  // Example 5.28: Pr(Hep(Eric) ∧ Over60(Eric)) = 0.8 × 0.4.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1),
      P("Jaun", C("Eric")),
      logic::ApproxEq(CondProp(P("Over60", V("x")), P("Patient", V("x")),
                               {"x"}),
                      0.4, 5),
      P("Patient", C("Eric")),
  });
  SymbolicAnswer answer = engine_.Infer(
      kb, Formula::And(P("Hep", C("Eric")), P("Over60", C("Eric"))));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_NEAR(answer.lo, 0.32, 1e-12);
  EXPECT_NEAR(answer.hi, 0.32, 1e-12);
}

TEST_F(SymbolicEngineTest, IndependenceRefusesEntangledVocabularies) {
  // Both queries use Hep: no split possible.
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}),
                      0.8, 1),
      P("Jaun", C("Eric")),
      P("Jaun", C("Tom")),
  });
  KbAnalysis analysis = AnalyzeKb(kb);
  auto answer = engine_.TryIndependence(
      analysis, Formula::And(P("Hep", C("Eric")), P("Hep", C("Tom"))), 0);
  EXPECT_FALSE(answer.has_value());
}

TEST_F(SymbolicEngineTest, NonUnaryElephantZookeeper) {
  // Example 5.12: two-variable direct inference.
  logic::TermPtr x = V("x");
  logic::TermPtr y = V("y");
  FormulaPtr elephant_zookeeper =
      Formula::And(P("Elephant", x), P("Zookeeper", y));
  FormulaPtr kb = Formula::AndAll({
      logic::ApproxEq(CondProp(P("Likes", x, y), elephant_zookeeper,
                               {"x", "y"}),
                      1.0, 1),
      logic::ApproxEq(CondProp(P("Likes", x, C("Fred")), P("Elephant", x),
                               {"x"}),
                      0.0, 2),
      P("Zookeeper", C("Fred")),
      P("Elephant", C("Clyde")),
      P("Zookeeper", C("Eric")),
  });
  // Does Clyde like Eric?  Theorem 5.6 with the pair class.
  SymbolicAnswer likes_eric =
      engine_.Infer(kb, P("Likes", C("Clyde"), C("Eric")));
  ASSERT_EQ(likes_eric.status, SymbolicAnswer::Status::kInterval)
      << likes_eric.explanation;
  EXPECT_DOUBLE_EQ(likes_eric.lo, 1.0);

  // Does Clyde like Fred?  The Fred-specific statistic applies.
  SymbolicAnswer likes_fred =
      engine_.Infer(kb, P("Likes", C("Clyde"), C("Fred")));
  ASSERT_EQ(likes_fred.status, SymbolicAnswer::Status::kInterval)
      << likes_fred.explanation;
  EXPECT_DOUBLE_EQ(likes_fred.hi, 0.0);
}

TEST_F(SymbolicEngineTest, QuantifiedDefaultTallParent) {
  // Example 5.13: people with a tall parent are typically tall.
  logic::TermPtr x = V("x");
  FormulaPtr has_tall_parent = Formula::Exists(
      "y", Formula::And(P("Child", x, V("y")), P("Tall", V("y"))));
  FormulaPtr kb = Formula::And(
      logic::Default(has_tall_parent, P("Tall", x), {"x"}, 1),
      Formula::Exists("y", Formula::And(P("Child", C("Alice"), V("y")),
                                        P("Tall", V("y")))));
  SymbolicAnswer answer = engine_.Infer(kb, P("Tall", C("Alice")));
  ASSERT_EQ(answer.status, SymbolicAnswer::Status::kInterval)
      << answer.explanation;
  EXPECT_DOUBLE_EQ(answer.lo, 1.0);
}

TEST_F(SymbolicEngineTest, InapplicableWhenNothingMatches) {
  FormulaPtr kb = P("A", C("K"));
  SymbolicAnswer answer = engine_.Infer(kb, P("B", C("K")));
  EXPECT_EQ(answer.status, SymbolicAnswer::Status::kInapplicable);
}

}  // namespace
}  // namespace rwl::engines
