#include "src/engines/exact_engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/query_context.h"
#include "src/logic/builder.h"

namespace rwl::engines {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

semantics::ToleranceVector Tol(double v) {
  return semantics::ToleranceVector::Uniform(v);
}

TEST(ExactEngine, TrivialKbGivesPriorProbabilities) {
  // One unary predicate, no constants: Pr(some element is P) under the
  // uniform prior; for the query P(c) we need a constant.
  logic::Vocabulary vocab;
  vocab.AddPredicate("White", 1);
  vocab.AddConstant("B");
  ExactEngine engine;
  // Pr(White(B) | true) = 1/2 at every N: by symmetry exactly half the
  // (world, denotation) pairs satisfy it.
  for (int n = 1; n <= 4; ++n) {
    FiniteResult r = engine.DegreeAt(vocab, Formula::True(),
                                     P("White", C("B")), n, Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    EXPECT_NEAR(r.probability, 0.5, 1e-12) << "N=" << n;
  }
}

TEST(ExactEngine, RefinedVocabularyShiftsPrior) {
  // Section 7.2: with Red/Blue refining ¬White (disjoint union), the degree
  // of belief in White(B) becomes 1/3.
  logic::Vocabulary vocab;
  vocab.AddPredicate("White", 1);
  vocab.AddPredicate("Red", 1);
  vocab.AddPredicate("Blue", 1);
  vocab.AddConstant("B");
  // ∀x (¬White ⇔ (Red ∨ Blue)) ∧ ∀x ¬(Red ∧ Blue) ∧ ∀x(White ⇒ ¬Red ∧ ¬Blue)
  FormulaPtr partition = Formula::ForAll(
      "x",
      Formula::And(
          Formula::Iff(Formula::Not(P("White", V("x"))),
                       Formula::Or(P("Red", V("x")), P("Blue", V("x")))),
          Formula::Not(Formula::And(P("Red", V("x")), P("Blue", V("x"))))));
  ExactEngine engine;
  for (int n = 1; n <= 3; ++n) {
    FiniteResult r = engine.DegreeAt(vocab, partition, P("White", C("B")), n,
                                     Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    EXPECT_NEAR(r.probability, 1.0 / 3.0, 1e-12) << "N=" << n;
  }
}

TEST(ExactEngine, UnsatisfiableKbIsUndefined) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ExactEngine engine;
  FiniteResult r = engine.DegreeAt(
      vocab, Formula::And(Formula::Exists("x", P("A", V("x"))),
                          Formula::ForAll("x", Formula::Not(P("A", V("x"))))),
      P("A", V("y")), 3, Tol(0.1));
  EXPECT_FALSE(r.well_defined);
}

TEST(ExactEngine, UniqueNamesBias) {
  // Pr(c1 = c2 | true) = 1/N — the automatic unique-names bias (§5.5).
  logic::Vocabulary vocab;
  vocab.AddConstant("C1");
  vocab.AddConstant("C2");
  ExactEngine engine;
  for (int n = 2; n <= 5; ++n) {
    FiniteResult r = engine.DegreeAt(vocab, Formula::True(),
                                     logic::Eq(C("C1"), C("C2")), n, Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    EXPECT_NEAR(r.probability, 1.0 / n, 1e-12);
  }
}

TEST(ExactEngine, LifschitzC1UniqueNames) {
  // Pr(Ray ≠ Drew | Ray = Reiter ∧ Drew = McDermott) → 1.
  logic::Vocabulary vocab;
  for (const char* name : {"Ray", "Reiter", "Drew", "McDermott"}) {
    vocab.AddConstant(name);
  }
  ExactEngine engine;
  FormulaPtr kb = Formula::And(logic::Eq(C("Ray"), C("Reiter")),
                               logic::Eq(C("Drew"), C("McDermott")));
  FormulaPtr query = Formula::Not(logic::Eq(C("Ray"), C("Drew")));
  double last = 0.0;
  for (int n = 2; n <= 5; ++n) {
    FiniteResult r = engine.DegreeAt(vocab, kb, query, n, Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    last = r.probability;
    EXPECT_NEAR(last, 1.0 - 1.0 / n, 1e-12);
  }
  EXPECT_GT(last, 0.7);
}

TEST(ExactEngine, ThreeWayEqualityDisjunction) {
  // Pr(c1 = c2 | (c1=c2) ∨ (c2=c3) ∨ (c1=c3)) = 1/3 in the limit (§5.5).
  logic::Vocabulary vocab;
  vocab.AddConstant("C1");
  vocab.AddConstant("C2");
  vocab.AddConstant("C3");
  ExactEngine engine;
  FormulaPtr e12 = logic::Eq(C("C1"), C("C2"));
  FormulaPtr e23 = logic::Eq(C("C2"), C("C3"));
  FormulaPtr e13 = logic::Eq(C("C1"), C("C3"));
  FormulaPtr kb = Formula::Or(Formula::Or(e12, e23), e13);
  // At finite N: Pr = (#worlds with c1=c2) / (#worlds with some pair equal).
  // #(c1=c2) = N^2 (choose the shared value and c3); #some-pair-equal =
  // 3N^2 - 2N (inclusion-exclusion).  The ratio tends to 1/3.
  for (int n = 2; n <= 6; ++n) {
    FiniteResult r = engine.DegreeAt(vocab, kb, e12, n, Tol(0.1));
    ASSERT_TRUE(r.well_defined);
    double expected = static_cast<double>(n) * n /
                      (3.0 * n * n - 2.0 * n);
    EXPECT_NEAR(r.probability, expected, 1e-12) << "N=" << n;
  }
}

TEST(ExactEngine, BinaryPredicateWorldCounts) {
  // One binary predicate at N=2: 2^4 = 16 worlds; Pr(R(c,c)) = 1/2.
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  vocab.AddConstant("A");
  ExactEngine engine;
  FiniteResult r = engine.DegreeAt(vocab, Formula::True(),
                                   P("R", C("A"), C("A")), 2, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(r.probability, 0.5, 1e-12);
  EXPECT_NEAR(std::exp(r.log_denominator), 32.0, 1e-6);  // 16 worlds × 2 denotations
}

TEST(ExactEngine, SupportsRefusesHugeInstances) {
  logic::Vocabulary vocab;
  vocab.AddPredicate("R", 2);
  ExactEngine engine(/*max_log2_worlds=*/20.0);
  // A query that actually observes the binary relation keeps the engine on
  // the world odometer, so the enumeration cap applies.
  FormulaPtr query = Formula::Exists("x", P("R", V("x"), V("x")));
  EXPECT_TRUE(engine.Supports(vocab, Formula::True(), query, 4));
  EXPECT_FALSE(engine.Supports(vocab, Formula::True(), query, 8));
}

TEST(ExactEngine, CostModelReportsCountingPlansAsNearFree) {
  // The planner's min-cost mode must prefer the counting loop: for an
  // aggregate-only instance EstimateCost reports the composition count,
  // not the 2^N world odometer, and says so in the basis string.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  FormulaPtr kb = logic::ApproxLeq(logic::Prop(P("A", V("x")), {"x"}), 0.7, 1);
  FormulaPtr query =
      logic::ApproxLeq(logic::Prop(P("A", V("x")), {"x"}), 0.4, 1);
  QueryContext ctx(vocab, kb, /*caching_enabled=*/true);
  ExactEngine engine;
  CostEstimate counting = engine.EstimateCost(ctx, query, 64);
  EXPECT_NE(counting.basis.find("counting loop"), std::string::npos)
      << counting.basis;
  EXPECT_EQ(counting.error, 0.0);
  // 65 compositions at N=64, times program length — nowhere near 2^64.
  EXPECT_LT(counting.work, 1e5);

  // A non-aggregate query (it names a constant) falls back to the
  // odometer model and is astronomically more expensive.
  vocab.AddConstant("B");
  QueryContext ctx2(vocab, kb, /*caching_enabled=*/true);
  CostEstimate odometer = engine.EstimateCost(ctx2, P("A", C("B")), 64);
  EXPECT_NE(odometer.basis.find("odometer"), std::string::npos)
      << odometer.basis;
  EXPECT_GT(odometer.work, 1e15);
}

TEST(ExactEngine, CountingCollapseSupportsHugeAggregateInstances) {
  // Aggregate-only KB and query collapse to the counting loop: supported —
  // and answered exactly — at 2^64 worlds and beyond.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ExactEngine engine(/*max_log2_worlds=*/20.0);
  FormulaPtr kb = logic::ApproxLeq(logic::Prop(P("A", V("x")), {"x"}), 0.7, 1);
  FormulaPtr query =
      logic::ApproxLeq(logic::Prop(P("A", V("x")), {"x"}), 0.4, 1);
  ASSERT_TRUE(engine.Supports(vocab, kb, query, 500));
  FiniteResult r = engine.DegreeAt(vocab, kb, query, 500, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  // Pr(#A/N <= 0.5 | #A/N <= 0.8) at N=500: binomial mass ratio.
  EXPECT_GT(r.probability, 0.5);
  EXPECT_LE(r.probability, 1.0);
}

TEST(ExactEngine, StatisticalConjunctRestrictsWorlds) {
  // KB: ||A(x)||_x ≈ 0.5 with τ = 0.1 at N = 4 keeps only worlds with
  // exactly 2 of 4 elements in A: C(4,2) = 6 of 16.
  logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  ExactEngine engine;
  FormulaPtr kb = logic::ApproxEq(logic::Prop(P("A", V("x")), {"x"}), 0.5, 1);
  FiniteResult r = engine.DegreeAt(vocab, kb, Formula::True(), 4, Tol(0.1));
  ASSERT_TRUE(r.well_defined);
  EXPECT_NEAR(std::exp(r.log_denominator), 6.0, 1e-6);
}

}  // namespace
}  // namespace rwl::engines
