// Differential property tests for the compiled bytecode pipeline
// (semantics/compile.h + vm.h): on fuzz-generated scenarios the VM must be
// bit-identical to the tree-walking oracle on every world, compile errors
// must replace the walker's process-killing paths, and the sharded engines
// must be bit-identical at every thread count.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/engines/exact_engine.h"
#include "src/engines/montecarlo_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/semantics/compile.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/vm.h"
#include "src/workload/generators.h"

namespace rwl::semantics {
namespace {

using logic::C;
using logic::Formula;
using logic::FormulaPtr;
using logic::P;
using logic::V;

ToleranceVector Tol(double v) { return ToleranceVector::Uniform(v); }

void RandomizeWorld(World* world, std::mt19937_64* rng) {
  const auto& vocabulary = world->vocabulary();
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    if (world->predicate_arity(p) == 1) {
      for (int d = 0; d < world->domain_size(); ++d) {
        world->SetUnaryBit(p, d, ((*rng)() & 1) != 0);
      }
      continue;
    }
    for (auto& cell : world->predicate_table(p)) {
      cell = static_cast<uint8_t>((*rng)() & 1);
    }
  }
  std::uniform_int_distribution<int> element(0, world->domain_size() - 1);
  for (int f = 0; f < vocabulary.num_functions(); ++f) {
    for (auto& cell : world->function_table(f)) cell = element(*rng);
  }
}

// Asserts VM == walker over `worlds` random worlds at each domain size.
void ExpectAgreement(const FormulaPtr& f, const logic::Vocabulary& vocabulary,
                     const ToleranceVector& tolerances,
                     std::initializer_list<int> domain_sizes, int worlds,
                     uint64_t seed) {
  CompiledFormula compiled = CompileFormula(f, vocabulary);
  ASSERT_TRUE(compiled.ok())
      << compiled.error << " for " << logic::ToString(f);
  for (int n : domain_sizes) {
    World world(&vocabulary, n);
    EvalFrame frame;
    frame.Prepare(*compiled.program, tolerances);
    std::mt19937_64 rng(seed + n);
    for (int w = 0; w < worlds; ++w) {
      RandomizeWorld(&world, &rng);
      const bool walked = Evaluate(f, world, tolerances);
      const bool ran = RunProgram(*compiled.program, world, &frame);
      ASSERT_EQ(walked, ran)
          << logic::ToString(f) << " diverged at N=" << n << " world " << w;
    }
  }
}

TEST(CompiledVm, BitIdenticalToWalkerOnFuzzedUnaryScenarios) {
  std::mt19937 rng(20260730);
  for (int c = 0; c < 40; ++c) {
    workload::UnaryKbParams params;
    params.num_predicates = 1 + static_cast<int>(rng() % 3);
    params.num_constants = 1 + static_cast<int>(rng() % 2);
    params.num_statements = 1 + static_cast<int>(rng() % 3);
    params.num_facts = static_cast<int>(rng() % 3);
    params.default_fraction = 0.4;
    params.max_depth = 1 + static_cast<int>(rng() % 2);

    logic::Vocabulary vocabulary;
    for (const auto& p : workload::GeneratorPredicates(params.num_predicates)) {
      vocabulary.AddPredicate(p, 1);
    }
    for (const auto& k : workload::GeneratorConstants(params.num_constants)) {
      vocabulary.AddConstant(k);
    }
    FormulaPtr kb = workload::RandomUnaryKb(params, &rng);
    logic::RegisterSymbols(kb, &vocabulary);
    ExpectAgreement(kb, vocabulary, Tol(0.15), {1, 2, 3}, 12, 7000 + c);

    for (const auto& query :
         workload::RandomQueryBatch(params, 3, &rng)) {
      logic::RegisterSymbols(query, &vocabulary);
      ExpectAgreement(query, vocabulary, Tol(0.15), {2, 3}, 8, 9000 + c);
    }
  }
}

TEST(CompiledVm, BitIdenticalToWalkerOnFuzzedMixedScenarios) {
  std::mt19937 rng(20260731);
  for (int c = 0; c < 25; ++c) {
    workload::MixedKbParams params;
    params.num_unary = 1 + static_cast<int>(rng() % 2);
    params.num_binary = 1;
    params.num_constants = 1 + static_cast<int>(rng() % 2);
    params.num_facts = 1 + static_cast<int>(rng() % 2);
    params.num_axioms = static_cast<int>(rng() % 3);
    params.num_statements = static_cast<int>(rng() % 2);
    params.max_depth = 2;

    logic::Vocabulary vocabulary;
    for (const auto& p : workload::GeneratorPredicates(params.num_unary)) {
      vocabulary.AddPredicate(p, 1);
    }
    for (const auto& r :
         workload::GeneratorBinaryPredicates(params.num_binary)) {
      vocabulary.AddPredicate(r, 2);
    }
    for (const auto& k : workload::GeneratorConstants(params.num_constants)) {
      vocabulary.AddConstant(k);
    }
    FormulaPtr kb = workload::RandomMixedKb(params, &rng);
    logic::RegisterSymbols(kb, &vocabulary);
    ExpectAgreement(kb, vocabulary, Tol(0.2), {1, 2, 3}, 10, 1300 + c);

    FormulaPtr query = workload::RandomMixedQuery(params, &rng);
    logic::RegisterSymbols(query, &vocabulary);
    ExpectAgreement(query, vocabulary, Tol(0.2), {2, 3}, 8, 1700 + c);
  }
}

TEST(CompiledVm, ShadowedVariablesResolveToTheInnermostBinding) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("P", 1);
  vocabulary.AddPredicate("Q", 1);

  // ∀x. (P(x) ∨ ∃x. (Q(x) ∧ ¬P(x))) — the inner x shadows the outer.
  FormulaPtr inner =
      Formula::Exists("x", Formula::And(P("Q", V("x")),
                                        Formula::Not(P("P", V("x")))));
  FormulaPtr f = Formula::ForAll("x", Formula::Or(P("P", V("x")), inner));
  ExpectAgreement(f, vocabulary, Tol(0.1), {1, 2, 3, 4}, 24, 42);

  // Proportion whose tuple variable shadows a quantifier variable, with a
  // nested proportion re-binding it once more.
  using logic::Expr;
  FormulaPtr nested_cmp = Formula::Compare(
      Expr::Proportion(P("Q", V("x")), {"x"}), logic::CompareOp::kApproxGeq,
      Expr::Constant(0.25), 2);
  FormulaPtr body = Formula::And(P("P", V("x")), nested_cmp);
  FormulaPtr g = Formula::ForAll(
      "x", Formula::Implies(
               P("Q", V("x")),
               Formula::Compare(
                   Expr::Conditional(body, P("Q", V("x")), {"x"}),
                   logic::CompareOp::kApproxLeq, Expr::Constant(0.9), 1)));
  ExpectAgreement(g, vocabulary, Tol(0.2), {1, 2, 3}, 24, 43);
}

TEST(CompiledVm, RepeatedProportionVariableMatchesWalker) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("R", 2);
  using logic::Expr;
  // ||R(x, x)||_{x, x}: a degenerate tuple list the walker resolves by
  // last-write-wins; the compiler must bind identically.
  FormulaPtr f = Formula::Compare(
      Expr::Proportion(P("R", V("x"), V("x")), {"x", "x"}),
      logic::CompareOp::kApproxEq, Expr::Constant(0.5), 1);
  ExpectAgreement(f, vocabulary, Tol(0.3), {2, 3}, 16, 44);
}

TEST(CompiledVm, FunctionTermsAndEqualityMatchWalker) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("P", 1);
  vocabulary.AddFunction("f", 1);
  vocabulary.AddConstant("K");
  // ∃x. (f(f(x)) = K ∧ P(f(x)))
  logic::TermPtr fx = logic::Term::Apply("f", {V("x")});
  logic::TermPtr ffx = logic::Term::Apply("f", {fx});
  FormulaPtr f = Formula::Exists(
      "x", Formula::And(Formula::Equal(ffx, C("K")), P("P", fx)));
  ExpectAgreement(f, vocabulary, Tol(0.1), {1, 2, 3, 4}, 24, 45);
}

TEST(CompiledVm, ConstantArithmeticIsFolded) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("P", 1);
  using logic::Expr;
  // (0.125 + 0.25) * 0.5 ≤ ||P(x)||_x — the left side must fold to a
  // single constant-load at compile time.
  logic::ExprPtr folded = Expr::Mul(Expr::Add(Expr::Constant(0.125),
                                              Expr::Constant(0.25)),
                                    Expr::Constant(0.5));
  FormulaPtr f = Formula::Compare(folded, logic::CompareOp::kLeq,
                                  Expr::Proportion(P("P", V("x")), {"x"}));
  CompiledFormula compiled = CompileFormula(f, vocabulary);
  ASSERT_TRUE(compiled.ok());
  int const_loads = 0;
  int arithmetic = 0;
  for (const auto& ins : compiled.program->code) {
    const_loads += ins.op == Op::kPushConst ? 1 : 0;
    arithmetic +=
        ins.op == Op::kAdd || ins.op == Op::kSub || ins.op == Op::kMul ? 1
                                                                       : 0;
  }
  EXPECT_EQ(const_loads, 1);
  EXPECT_EQ(arithmetic, 0);
  ExpectAgreement(f, vocabulary, Tol(0.1), {2, 3}, 16, 46);
}

TEST(CompiledVm, UnboundVariableIsACompileError) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("P", 1);
  CompiledFormula compiled = CompileFormula(P("P", V("x")), vocabulary);
  EXPECT_FALSE(compiled.ok());
  EXPECT_NE(compiled.error.find("unbound variable x"), std::string::npos);
}

TEST(CompiledVm, UnknownSymbolsAreCompileErrors) {
  logic::Vocabulary vocabulary;
  CompiledFormula no_pred =
      CompileFormula(Formula::ForAll("x", P("Missing", V("x"))), vocabulary);
  EXPECT_FALSE(no_pred.ok());
  EXPECT_NE(no_pred.error.find("unknown predicate"), std::string::npos);

  CompiledFormula no_func = CompileFormula(
      Formula::Exists("x", Formula::Equal(V("x"), C("Ghost"))), vocabulary);
  EXPECT_FALSE(no_func.ok());
  EXPECT_NE(no_func.error.find("unknown function"), std::string::npos);
}

TEST(CompiledVm, EnginesGiveUpInsteadOfAbortingOnIllFormedInput) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("P", 1);
  FormulaPtr open_query = P("P", V("x"));  // free variable

  engines::ExactEngine exact;
  engines::FiniteResult r =
      exact.DegreeAt(vocabulary, Formula::True(), open_query, 2, Tol(0.1));
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.well_defined);

  engines::MonteCarloEngine::Options options;
  options.num_samples = 100;
  engines::MonteCarloEngine mc(options);
  r = mc.DegreeAt(vocabulary, Formula::True(), open_query, 2, Tol(0.1));
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.well_defined);
}

TEST(CompiledVm, ExactEngineBitIdenticalAcrossThreadCounts) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("P", 1);
  vocabulary.AddPredicate("R", 2);
  vocabulary.AddConstant("K");
  FormulaPtr kb = Formula::And(
      Formula::ForAll("x", Formula::Implies(P("R", V("x"), V("x")),
                                            P("P", V("x")))),
      P("P", C("K")));
  FormulaPtr query = Formula::Exists("x", P("R", C("K"), V("x")));

  engines::ExactEngine serial(26.0, 1);
  for (int threads : {2, 3, 8}) {
    engines::ExactEngine sharded(26.0, threads);
    for (int n : {2, 3}) {
      engines::FiniteResult a =
          serial.DegreeAt(vocabulary, kb, query, n, Tol(0.1));
      engines::FiniteResult b =
          sharded.DegreeAt(vocabulary, kb, query, n, Tol(0.1));
      EXPECT_EQ(a.well_defined, b.well_defined) << "N=" << n;
      EXPECT_EQ(a.probability, b.probability) << "N=" << n;
      EXPECT_EQ(a.log_numerator, b.log_numerator) << "N=" << n;
      EXPECT_EQ(a.log_denominator, b.log_denominator) << "N=" << n;
    }
  }
}

TEST(CompiledVm, MonteCarloBitIdenticalAcrossThreadCounts) {
  logic::Vocabulary vocabulary;
  vocabulary.AddPredicate("R", 2);
  vocabulary.AddConstant("A");
  FormulaPtr kb = Formula::ForAll("x", P("R", V("x"), V("x")));
  FormulaPtr query = P("R", C("A"), C("A"));

  engines::MonteCarloEngine::Options serial_options;
  serial_options.num_samples = 30'000;
  serial_options.num_threads = 1;
  engines::MonteCarloEngine::Options pooled_options = serial_options;
  pooled_options.num_threads = 4;

  engines::MonteCarloEngine serial(serial_options);
  engines::MonteCarloEngine pooled(pooled_options);
  for (int n : {3, 5}) {
    engines::FiniteResult a =
        serial.DegreeAt(vocabulary, kb, query, n, Tol(0.1));
    engines::FiniteResult b =
        pooled.DegreeAt(vocabulary, kb, query, n, Tol(0.1));
    EXPECT_EQ(a.well_defined, b.well_defined) << "N=" << n;
    EXPECT_EQ(a.probability, b.probability) << "N=" << n;
    EXPECT_EQ(a.log_numerator, b.log_numerator) << "N=" << n;
    EXPECT_EQ(a.log_denominator, b.log_denominator) << "N=" << n;
  }
}

}  // namespace
}  // namespace rwl::semantics
