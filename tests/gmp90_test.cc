#include "src/defaults/gmp90.h"

#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/logic/printer.h"

namespace rwl::defaults {
namespace {

constexpr int kBird = 0;
constexpr int kFly = 1;
constexpr int kPenguin = 2;
constexpr int kRed = 2;

Rule MakeRule(PropPtr a, PropPtr c) { return Rule{std::move(a), std::move(c)}; }

TEST(Gmp90, DirectRulePlausible) {
  Gmp90System system(2, {MakeRule(Prop::Var(kBird), Prop::Var(kFly))});
  auto result = system.MePlausible(
      MakeRule(Prop::Var(kBird), Prop::Var(kFly)));
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.plausible);
}

TEST(Gmp90, IrrelevantConjunctIgnored) {
  // Unlike raw ε-semantics, the maximum-entropy system concludes that red
  // birds fly (GMP90's headline improvement).
  Gmp90System system(3, {MakeRule(Prop::Var(kBird), Prop::Var(kFly))});
  auto result = system.MePlausible(MakeRule(
      Prop::And(Prop::Var(kBird), Prop::Var(kRed)), Prop::Var(kFly)));
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.plausible);
}

TEST(Gmp90, SpecificityViaMaxent) {
  Gmp90System system(3, {
      MakeRule(Prop::Var(kBird), Prop::Var(kFly)),
      MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly))),
      MakeRule(Prop::Var(kPenguin), Prop::Var(kBird)),
  });
  auto penguin_no_fly = system.MePlausible(
      MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly))));
  ASSERT_TRUE(penguin_no_fly.feasible);
  EXPECT_TRUE(penguin_no_fly.plausible);
  auto penguin_fly = system.MePlausible(
      MakeRule(Prop::Var(kPenguin), Prop::Var(kFly)));
  EXPECT_FALSE(penguin_fly.plausible);
}

TEST(Gmp90, NonConsequenceNotPlausible) {
  // From Bird → Fly alone, Fly → Bird should NOT be plausible.
  Gmp90System system(2, {MakeRule(Prop::Var(kBird), Prop::Var(kFly))});
  auto result = system.MePlausible(
      MakeRule(Prop::Var(kFly), Prop::Var(kBird)));
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.plausible);
}

TEST(Gmp90, ConditionalSeriesApproachesOne) {
  Gmp90System system(2, {MakeRule(Prop::Var(0), Prop::Var(1))});
  double loose = system.ConditionalAtEpsilon(
      MakeRule(Prop::Var(0), Prop::Var(1)), 0.1);
  double tight = system.ConditionalAtEpsilon(
      MakeRule(Prop::Var(0), Prop::Var(1)), 0.005);
  EXPECT_GT(loose, 0.85);
  EXPECT_GT(tight, loose);
}

TEST(Gmp90Strengths, PenguinTriangleStrengths) {
  Gmp90System system(3, {
      MakeRule(Prop::Var(kBird), Prop::Var(kFly)),
      MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly))),
      MakeRule(Prop::Var(kPenguin), Prop::Var(kBird)),
  });
  std::vector<int> z = system.RuleStrengths();
  ASSERT_EQ(z.size(), 3u);
  EXPECT_EQ(z[0], 1);  // bird → fly
  EXPECT_EQ(z[1], 2);  // penguin → ¬fly beats it
  EXPECT_EQ(z[2], 2);  // penguin → bird

  EXPECT_EQ(system.CompareByStrengths(
                MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly)))),
            +1);
  EXPECT_EQ(system.CompareByStrengths(
                MakeRule(Prop::Var(kPenguin), Prop::Var(kFly))),
            -1);
  EXPECT_EQ(system.CompareByStrengths(
                MakeRule(Prop::Var(kBird), Prop::Var(kFly))),
            +1);
}

TEST(Gmp90Strengths, InconsistentRulesReportEmpty) {
  Gmp90System system(2, {
      MakeRule(Prop::Var(0), Prop::Var(1)),
      MakeRule(Prop::Var(0), Prop::Not(Prop::Var(1))),
  });
  EXPECT_TRUE(system.RuleStrengths().empty());
}

TEST(Gmp90Strengths, GeffnerStrengthBoost) {
  // Adding P → ¬Q lifts the strength of P∧S → Q from 1 to 2 — the
  // mechanism behind the anomaly discussed at the end of Section 6.
  std::vector<Rule> base = {
      MakeRule(Prop::And(Prop::Var(0), Prop::Var(1)), Prop::Var(3)),
      MakeRule(Prop::Var(2), Prop::Not(Prop::Var(3))),
  };
  Gmp90System before(4, base);
  ASSERT_FALSE(before.RuleStrengths().empty());
  EXPECT_EQ(before.RuleStrengths()[0], 1);

  std::vector<Rule> extended = base;
  extended.push_back(MakeRule(Prop::Var(0), Prop::Not(Prop::Var(3))));
  Gmp90System after(4, extended);
  ASSERT_FALSE(after.RuleStrengths().empty());
  EXPECT_EQ(after.RuleStrengths()[0], 2);
}

TEST(Gmp90Translation, PropToUnaryShape) {
  std::vector<std::string> names = {"Bird", "Fly"};
  logic::FormulaPtr f = PropToUnary(
      Prop::And(Prop::Var(0), Prop::Not(Prop::Var(1))), names,
      logic::Term::Variable("x"));
  EXPECT_EQ(logic::ToString(f), "(Bird(x) & !Fly(x))");
}

TEST(Gmp90Translation, RuleBecomesSharedToleranceDefault) {
  std::vector<std::string> names = {"Bird", "Fly"};
  logic::FormulaPtr theta =
      TranslateRule(MakeRule(Prop::Var(0), Prop::Var(1)), names);
  EXPECT_EQ(theta->kind(), logic::Formula::Kind::kCompare);
  EXPECT_EQ(theta->tolerance_index(), 1);
}

TEST(Gmp90Embedding, Theorem6_1_AgreementWithRandomWorlds) {
  // Both systems must agree on the penguin triangle queries.
  std::vector<std::string> names = {"Bird", "Fly", "Penguin"};
  Gmp90System system(3, {
      MakeRule(Prop::Var(kBird), Prop::Var(kFly)),
      MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly))),
      MakeRule(Prop::Var(kPenguin), Prop::Var(kBird)),
  });

  struct Case {
    Rule query;
    bool expect_plausible;
  };
  std::vector<Case> cases = {
      {MakeRule(Prop::Var(kPenguin), Prop::Not(Prop::Var(kFly))), true},
      {MakeRule(Prop::Var(kBird), Prop::Var(kFly)), true},
      {MakeRule(Prop::Var(kPenguin), Prop::Var(kFly)), false},
  };
  for (const auto& c : cases) {
    auto me = system.MePlausible(c.query);
    EXPECT_EQ(me.plausible, c.expect_plausible);

    RwEmbedding embedding = TranslateQuery(system, c.query, names);
    InferenceOptions options;
    options.tolerances = semantics::ToleranceVector::Uniform(0.05);
    options.limit.domain_sizes = {12, 24, 36};
    options.limit.tolerance_scales = {1.0, 0.5};
    Answer answer = DegreeOfBelief(embedding.kb, embedding.query, options);
    ASSERT_TRUE(answer.status == Answer::Status::kPoint ||
                answer.status == Answer::Status::kInterval)
        << StatusToString(answer.status) << " " << answer.explanation;
    bool rw_plausible = answer.value >= 0.8 || answer.lo >= 0.8;
    EXPECT_EQ(rw_plausible, c.expect_plausible)
        << "rw answer " << answer.value << " for ME-plausible="
        << c.expect_plausible;
  }
}

}  // namespace
}  // namespace rwl::defaults
