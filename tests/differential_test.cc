// The differential harness's own correctness: the tolerance-aware result
// comparison, the oracle's agreement on known-good KBs, the shrinker's
// minimization, and the end-to-end self-check that a deliberately injected
// engine bug is caught and shrunk to a tiny reproducer.
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "src/engines/exact_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/testing/buggy_engine.h"
#include "src/testing/differential.h"
#include "src/testing/shrinker.h"
#include "src/workload/generators.h"

namespace rwl::testing {
namespace {

using engines::FiniteResult;
using engines::ResultClass;
using engines::ResultTolerance;
using logic::Formula;
using logic::FormulaPtr;

FiniteResult Defined(double p, double log_den) {
  FiniteResult r;
  r.well_defined = true;
  r.probability = p;
  r.log_numerator = 0.0;
  r.log_denominator = log_den;
  return r;
}

TEST(ResultsEquivalent, DeterministicPairUsesTightEpsilon) {
  ResultTolerance tol;
  std::string why;
  EXPECT_TRUE(engines::ResultsEquivalent(
      Defined(0.5, 3.0), ResultClass::kDeterministic,
      Defined(0.5 + 5e-10, 3.0), ResultClass::kDeterministic, tol, &why));
  EXPECT_FALSE(engines::ResultsEquivalent(
      Defined(0.5, 3.0), ResultClass::kDeterministic,
      Defined(0.5 + 1e-6, 3.0), ResultClass::kDeterministic, tol, &why));
  EXPECT_NE(why.find("probabilities differ"), std::string::npos);
}

TEST(ResultsEquivalent, StatisticalSideGetsSamplingAllowance) {
  ResultTolerance tol;
  // 10000 accepted samples → sd(0.5) = 0.005; z=6 plus floor allows ~0.035.
  FiniteResult estimate = Defined(0.52, std::log(10000.0));
  EXPECT_TRUE(engines::ResultsEquivalent(
      Defined(0.5, 3.0), ResultClass::kDeterministic, estimate,
      ResultClass::kStatistical, tol, nullptr));
  // A half-probability shift is far outside any sampling allowance.
  FiniteResult way_off = Defined(0.95, std::log(10000.0));
  EXPECT_FALSE(engines::ResultsEquivalent(
      Defined(0.5, 3.0), ResultClass::kDeterministic, way_off,
      ResultClass::kStatistical, tol, nullptr));
}

TEST(ResultsEquivalent, WellDefinednessRules) {
  ResultTolerance tol;
  FiniteResult undefined;  // default: not well-defined
  // Statistical drought against a defined deterministic answer: fine.
  EXPECT_TRUE(engines::ResultsEquivalent(
      undefined, ResultClass::kStatistical, Defined(0.4, 2.0),
      ResultClass::kDeterministic, tol, nullptr));
  // A statistical engine accepting worlds of a provably unsatisfiable KB
  // is a contradiction.
  std::string why;
  EXPECT_FALSE(engines::ResultsEquivalent(
      Defined(0.4, 2.0), ResultClass::kStatistical, undefined,
      ResultClass::kDeterministic, tol, &why));
  // Two deterministic engines must agree on definedness exactly.
  EXPECT_FALSE(engines::ResultsEquivalent(
      undefined, ResultClass::kDeterministic, Defined(0.4, 2.0),
      ResultClass::kDeterministic, tol, nullptr));
  // Exhausted results are uninformative.
  FiniteResult exhausted;
  exhausted.exhausted = true;
  EXPECT_TRUE(engines::ResultsEquivalent(
      exhausted, ResultClass::kDeterministic, Defined(0.4, 2.0),
      ResultClass::kDeterministic, tol, nullptr));
}

Scenario HepatitisScenario() {
  Scenario scenario;
  std::string error;
  EXPECT_TRUE(ScenarioFromTexts(
      "Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
      {"Hep(Eric)", "(Hep(Eric) | Jaun(Eric))", "!Hep(Eric)"}, &scenario,
      &error))
      << error;
  scenario.provenance = "hepatitis fixture";
  return scenario;
}

TEST(Differential, AgreesOnTheHepatitisFixture) {
  DifferentialOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.1);
  DifferentialReport report =
      RunDifferential(HepatitisScenario(), options);
  EXPECT_TRUE(report.ok()) << report.Summary(HepatitisScenario());
  EXPECT_GT(report.comparisons, 10);
}

TEST(Differential, CatchesAnInjectedEngineBug) {
  engines::ExactEngine exact;
  engines::ProfileEngine profile;
  SkewOnOrEngine skewed(&profile);
  std::vector<const engines::FiniteEngine*> buggy = {&exact, &skewed};

  Scenario scenario = HepatitisScenario();  // has an Or query
  DifferentialOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.1);
  options.check_pipeline = false;
  options.check_maxent = false;
  options.check_batch = false;
  DifferentialReport report =
      RunDifferential(scenario, buggy, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.disagreements[0].check, "finite");
}

TEST(Shrinker, MinimizesToThePredicateCore) {
  // A synthetic failure predicate — "some KB conjunct mentions P0 and some
  // query contains an Or" — shrinks to one conjunct and one query without
  // running any engine.
  Scenario scenario;
  std::string error;
  ASSERT_TRUE(ScenarioFromTexts(
      "P0(K0)\nP1(K0)\n(P2(K0) & P1(K1))\n#(P1(x))[x] ~= 0.4\n",
      {"(P1(K0) | P2(K0))", "P1(K1)"}, &scenario, &error))
      << error;

  auto still_fails = [](const Scenario& candidate) {
    bool kb_mentions_p0 = false;
    for (const auto& conjunct : logic::Conjuncts(candidate.kb)) {
      kb_mentions_p0 =
          kb_mentions_p0 || logic::PredicatesOf(conjunct).count("P0") > 0;
    }
    bool query_has_or = false;
    for (const auto& query : candidate.queries) {
      query_has_or = query_has_or || ContainsOr(query);
    }
    return kb_mentions_p0 && query_has_or;
  };
  ASSERT_TRUE(still_fails(scenario));

  ShrinkOutcome outcome = Shrink(scenario, still_fails);
  EXPECT_TRUE(still_fails(outcome.scenario));
  EXPECT_EQ(outcome.kb_conjuncts, 1);
  ASSERT_EQ(outcome.scenario.queries.size(), 1u);
  EXPECT_TRUE(ContainsOr(outcome.scenario.queries[0]));
}

// End-to-end self-check, mirroring `rwlfuzz --self-test` phase 2 at test
// scale: fuzz random unary scenarios against a skewed profile engine until
// the finite oracle fires, then shrink to a ≤5-conjunct reproducer.
TEST(Differential, InjectedBugIsCaughtAndShrunkSmall) {
  engines::ExactEngine exact;
  engines::ProfileEngine profile;
  SkewOnOrEngine skewed(&profile);
  std::vector<const engines::FiniteEngine*> buggy = {&exact, &skewed};

  DifferentialOptions options;
  options.tolerances = semantics::ToleranceVector::Uniform(0.2);
  options.domain_sizes = {2, 3};
  options.check_pipeline = false;
  options.check_maxent = false;
  options.check_batch = false;

  std::mt19937 rng(20260730);
  for (int attempt = 0; attempt < 200; ++attempt) {
    workload::UnaryKbParams params;
    params.num_predicates = 2;
    params.num_constants = 1;
    params.num_statements = 2;
    params.num_facts = 1;
    params.max_depth = 2;

    Scenario scenario;
    scenario.kb = workload::RandomUnaryKb(params, &rng);
    scenario.queries = workload::RandomQueryBatch(params, 3, &rng);
    for (const auto& p :
         workload::GeneratorPredicates(params.num_predicates)) {
      scenario.vocabulary.AddPredicate(p, 1);
    }
    scenario.vocabulary.AddConstant("K0");
    logic::RegisterSymbols(scenario.kb, &scenario.vocabulary);
    for (const auto& query : scenario.queries) {
      logic::RegisterSymbols(query, &scenario.vocabulary);
    }

    if (RunDifferential(scenario, buggy, options).ok()) continue;

    auto still_fails = [&](const Scenario& candidate) {
      return !RunDifferential(candidate, buggy, options).ok();
    };
    ShrinkOutcome outcome = Shrink(scenario, still_fails);
    EXPECT_LE(outcome.kb_conjuncts, 5)
        << Describe(outcome.scenario);
    EXPECT_FALSE(RunDifferential(outcome.scenario, buggy, options).ok())
        << "shrunk scenario no longer fails";
    return;  // caught and shrunk — done
  }
  FAIL() << "injected bug never caught in 200 scenarios";
}

}  // namespace
}  // namespace rwl::testing
