// Property sweep for Theorem 5.23 (chains of reference classes): on
// randomly generated taxonomy chains with a strictly tightest interval, the
// symbolic engine must return exactly that interval, the Kyburg baseline
// must agree, and the numeric profile estimate must fall inside it.
#include <random>

#include <gtest/gtest.h>

#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/refclass/reference_class.h"
#include "src/workload/generators.h"

namespace rwl {
namespace {

class ChainSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChainSweep, SymbolicReturnsTightestInterval) {
  std::mt19937 rng(811 + GetParam());
  engines::SymbolicEngine engine;
  for (int trial = 0; trial < 25; ++trial) {
    workload::ChainKb chain = workload::RandomChainKb(GetParam(), &rng);
    engines::SymbolicAnswer answer = engine.Infer(chain.kb, chain.query);
    ASSERT_EQ(answer.status, engines::SymbolicAnswer::Status::kInterval)
        << logic::ToString(chain.kb);
    EXPECT_NEAR(answer.lo, chain.tightest_lo, 1e-12)
        << logic::ToString(chain.kb);
    EXPECT_NEAR(answer.hi, chain.tightest_hi, 1e-12)
        << logic::ToString(chain.kb);
  }
}

TEST_P(ChainSweep, KyburgStrengthAgreesOnChains) {
  std::mt19937 rng(911 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    workload::ChainKb chain = workload::RandomChainKb(GetParam(), &rng);
    refclass::RefClassAnswer answer = refclass::Infer(
        chain.kb, chain.query, refclass::Policy::kKyburgStrength);
    ASSERT_EQ(answer.status, refclass::RefClassAnswer::Status::kInterval)
        << answer.diagnosis;
    EXPECT_NEAR(answer.lo, chain.tightest_lo, 1e-12);
    EXPECT_NEAR(answer.hi, chain.tightest_hi, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ChainSweep, ::testing::Values(2, 3, 4));

TEST(ChainNumeric, ProfileEstimateInsideTheInterval) {
  // Depth-2 chains stay cheap enough to sweep numerically.
  std::mt19937 rng(1213);
  engines::ProfileEngine profile;
  semantics::ToleranceVector tol = semantics::ToleranceVector::Uniform(0.02);
  int checked = 0;
  for (int trial = 0; trial < 6; ++trial) {
    workload::ChainKb chain = workload::RandomChainKb(2, &rng);
    logic::Vocabulary vocab;
    logic::RegisterSymbols(chain.kb, &vocab);
    logic::RegisterSymbols(chain.query, &vocab);
    auto r = profile.DegreeAt(vocab, chain.kb, chain.query, 20, tol);
    if (!r.well_defined) continue;
    ++checked;
    EXPECT_GE(r.probability, chain.tightest_lo - 0.08)
        << logic::ToString(chain.kb);
    EXPECT_LE(r.probability, chain.tightest_hi + 0.08)
        << logic::ToString(chain.kb);
  }
  EXPECT_GE(checked, 3);
}

}  // namespace
}  // namespace rwl
