// Batch API: DegreesOfBelief must agree with per-query DegreeOfBelief —
// including bit-identical values with caching on, off, and across the
// textual form — and handle duplicates and parse failures gracefully.
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/fixtures/paper_kbs.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"
#include "src/workload/generators.h"

namespace rwl {
namespace {

KnowledgeBase SpecificityKb() {
  KnowledgeBase kb;
  std::string error;
  bool ok = kb.AddParsed(fixtures::ExampleById("E5.10").kb, &error);
  EXPECT_TRUE(ok) << error;
  return kb;
}

std::vector<logic::FormulaPtr> ParseAll(
    const std::vector<std::string>& texts) {
  std::vector<logic::FormulaPtr> out;
  for (const auto& text : texts) {
    logic::ParseResult parsed = logic::ParseFormula(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.error;
    out.push_back(parsed.formula);
  }
  return out;
}

void ExpectSameAnswer(const Answer& a, const Answer& b,
                      const std::string& what) {
  EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status)) << what;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.lo, b.lo) << what;
  EXPECT_EQ(a.hi, b.hi) << what;
  EXPECT_EQ(a.method, b.method) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
}

TEST(BatchInference, AgreesWithSequentialCalls) {
  KnowledgeBase kb = SpecificityKb();
  std::vector<std::string> texts = {
      "Fly(Tweety)",  "Bird(Tweety)",           "Penguin(Tweety)",
      "!Fly(Tweety)", "Fly(Tweety) | Bird(Tweety)",
  };
  std::vector<logic::FormulaPtr> queries = ParseAll(texts);

  InferenceOptions options;
  options.limit.domain_sizes = {8, 16, 24};

  std::vector<Answer> batch = DegreesOfBelief(kb, queries, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Answer single = DegreeOfBelief(kb, queries[i], options);
    ExpectSameAnswer(batch[i], single, texts[i]);
  }
}

TEST(BatchInference, CachingOnAndOffAreBitIdentical) {
  KnowledgeBase kb = SpecificityKb();
  std::vector<logic::FormulaPtr> queries = ParseAll({
      "Fly(Tweety)",
      "Bird(Tweety) & !Fly(Tweety)",
      "#(Fly(x) ; Bird(x))[x] ~= 1",
      "Penguin(Tweety) => Bird(Tweety)",
  });

  InferenceOptions cached;
  cached.use_symbolic = false;  // route everything through the sweeps
  cached.limit.domain_sizes = {8, 16};
  InferenceOptions uncached = cached;
  uncached.enable_caching = false;

  std::vector<Answer> with_cache = DegreesOfBelief(kb, queries, cached);
  std::vector<Answer> without_cache = DegreesOfBelief(kb, queries, uncached);
  ASSERT_EQ(with_cache.size(), without_cache.size());
  for (size_t i = 0; i < with_cache.size(); ++i) {
    ExpectSameAnswer(with_cache[i], without_cache[i],
                     "query #" + std::to_string(i));
    ASSERT_EQ(with_cache[i].series.size(), without_cache[i].series.size());
    for (size_t j = 0; j < with_cache[i].series.size(); ++j) {
      EXPECT_EQ(with_cache[i].series[j].probability,
                without_cache[i].series[j].probability);
    }
  }
}

TEST(BatchInference, DeduplicatesRepeatedQueries) {
  KnowledgeBase kb = SpecificityKb();
  // Hash-consing makes the three copies pointer-equal; the batch answers
  // the formula once and fans the answer out.
  std::vector<logic::FormulaPtr> queries = ParseAll({
      "Fly(Tweety)",
      "Fly(Tweety)",
      "Bird(Tweety)",
      "Fly(Tweety)",
  });
  ASSERT_EQ(queries[0].get(), queries[1].get());
  ASSERT_EQ(queries[0].get(), queries[3].get());

  std::vector<Answer> answers = DegreesOfBelief(kb, queries);
  ASSERT_EQ(answers.size(), 4u);
  ExpectSameAnswer(answers[0], answers[1], "dup 1");
  ExpectSameAnswer(answers[0], answers[3], "dup 3");
}

TEST(BatchInference, QueriesWithFreshSymbolsDoNotPerturbOthers) {
  // A query introducing predicates/constants absent from the KB must not
  // change the other queries' answers (a shared union vocabulary would
  // grow their world space and can flip engine support limits), and must
  // itself match its sequential answer.
  KnowledgeBase kb = SpecificityKb();
  std::vector<logic::FormulaPtr> queries = ParseAll({
      "Fly(Tweety)",
      "Extra1(Other) & Extra2(Other) & Extra3(Other)",
      "Bird(Tweety)",
  });
  InferenceOptions options;
  options.limit.domain_sizes = {8, 16};

  std::vector<Answer> batch = DegreesOfBelief(kb, queries, options);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    Answer single = DegreeOfBelief(kb, queries[i], options);
    ExpectSameAnswer(batch[i], single, "query #" + std::to_string(i));
  }
}

TEST(BatchInference, TextualFormReportsParseErrorsPerQuery) {
  KnowledgeBase kb = SpecificityKb();
  std::vector<std::string> texts = {
      "Fly(Tweety)",
      "Fly(",  // malformed
      "Bird(Tweety)",
  };
  std::vector<Answer> answers = DegreesOfBelief(kb, texts);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_NE(answers[0].status, Answer::Status::kUnknown);
  EXPECT_EQ(answers[1].status, Answer::Status::kUnknown);
  EXPECT_NE(answers[1].explanation.find("parse error"), std::string::npos);
  EXPECT_NE(answers[2].status, Answer::Status::kUnknown);
}

TEST(BatchInference, FuzzGeneratedKbsMatchSequentialBitForBit) {
  // Beyond the paper fixtures: on randomly generated unary KBs — mixed
  // statistics and defaults, nested class expressions, duplicate queries,
  // and an occasional fresh-symbol query — every batch answer (and its
  // convergence series) must equal the sequential call exactly.
  std::mt19937 rng(20260730);
  InferenceOptions options;
  options.limit.domain_sizes = {6, 9, 12};

  int compared = 0;
  for (int trial = 0; trial < 8; ++trial) {
    workload::UnaryKbParams params;
    params.num_predicates = 1 + trial % 3;
    params.num_constants = 1 + trial % 2;
    params.num_statements = 1 + trial % 2;
    params.num_facts = trial % 2;
    params.default_fraction = (trial % 2) * 0.5;
    params.max_depth = 1 + trial % 2;

    KnowledgeBase kb;
    for (const auto& conjunct :
         logic::Conjuncts(workload::RandomUnaryKb(params, &rng))) {
      kb.Add(conjunct);
    }
    std::vector<logic::FormulaPtr> queries =
        workload::RandomQueryBatch(params, 4, &rng);
    if (trial % 3 == 0) {
      // A query whose symbols the KB has never seen: must be answered in
      // its own context without perturbing the others.
      queries.push_back(
          logic::ParseFormula("(Fresh(Novel) & P0(Novel))").formula);
    }

    std::vector<Answer> batch = DegreesOfBelief(kb, queries, options);
    ASSERT_EQ(batch.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      Answer single = DegreeOfBelief(kb, queries[i], options);
      ExpectSameAnswer(batch[i], single,
                       "trial " + std::to_string(trial) + " query #" +
                           std::to_string(i));
      ASSERT_EQ(batch[i].series.size(), single.series.size());
      for (size_t j = 0; j < batch[i].series.size(); ++j) {
        EXPECT_EQ(batch[i].series[j].probability,
                  single.series[j].probability);
        EXPECT_EQ(batch[i].series[j].well_defined,
                  single.series[j].well_defined);
      }
      ++compared;
    }
  }
  EXPECT_GE(compared, 32);
}

TEST(BatchInference, PaperFixtureValuesSurvive) {
  // The batch path must still reproduce the paper's numbers.
  const auto& example = fixtures::ExampleById("E5.10");
  KnowledgeBase kb;
  std::string error;
  ASSERT_TRUE(kb.AddParsed(example.kb, &error)) << error;
  std::vector<std::string> texts = {example.query};
  std::vector<Answer> answers = DegreesOfBelief(kb, texts);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].status, Answer::Status::kPoint);
  EXPECT_NEAR(answers[0].value, example.value, example.tolerance);
}

}  // namespace
}  // namespace rwl
