// Batch API: DegreesOfBelief must agree with per-query DegreeOfBelief —
// including bit-identical values with caching on, off, and across the
// textual form — and handle duplicates and parse failures gracefully.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/fixtures/paper_kbs.h"
#include "src/logic/parser.h"

namespace rwl {
namespace {

KnowledgeBase SpecificityKb() {
  KnowledgeBase kb;
  std::string error;
  bool ok = kb.AddParsed(fixtures::ExampleById("E5.10").kb, &error);
  EXPECT_TRUE(ok) << error;
  return kb;
}

std::vector<logic::FormulaPtr> ParseAll(
    const std::vector<std::string>& texts) {
  std::vector<logic::FormulaPtr> out;
  for (const auto& text : texts) {
    logic::ParseResult parsed = logic::ParseFormula(text);
    EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.error;
    out.push_back(parsed.formula);
  }
  return out;
}

void ExpectSameAnswer(const Answer& a, const Answer& b,
                      const std::string& what) {
  EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status)) << what;
  EXPECT_EQ(a.value, b.value) << what;
  EXPECT_EQ(a.lo, b.lo) << what;
  EXPECT_EQ(a.hi, b.hi) << what;
  EXPECT_EQ(a.method, b.method) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
}

TEST(BatchInference, AgreesWithSequentialCalls) {
  KnowledgeBase kb = SpecificityKb();
  std::vector<std::string> texts = {
      "Fly(Tweety)",  "Bird(Tweety)",           "Penguin(Tweety)",
      "!Fly(Tweety)", "Fly(Tweety) | Bird(Tweety)",
  };
  std::vector<logic::FormulaPtr> queries = ParseAll(texts);

  InferenceOptions options;
  options.limit.domain_sizes = {8, 16, 24};

  std::vector<Answer> batch = DegreesOfBelief(kb, queries, options);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Answer single = DegreeOfBelief(kb, queries[i], options);
    ExpectSameAnswer(batch[i], single, texts[i]);
  }
}

TEST(BatchInference, CachingOnAndOffAreBitIdentical) {
  KnowledgeBase kb = SpecificityKb();
  std::vector<logic::FormulaPtr> queries = ParseAll({
      "Fly(Tweety)",
      "Bird(Tweety) & !Fly(Tweety)",
      "#(Fly(x) ; Bird(x))[x] ~= 1",
      "Penguin(Tweety) => Bird(Tweety)",
  });

  InferenceOptions cached;
  cached.use_symbolic = false;  // route everything through the sweeps
  cached.limit.domain_sizes = {8, 16};
  InferenceOptions uncached = cached;
  uncached.enable_caching = false;

  std::vector<Answer> with_cache = DegreesOfBelief(kb, queries, cached);
  std::vector<Answer> without_cache = DegreesOfBelief(kb, queries, uncached);
  ASSERT_EQ(with_cache.size(), without_cache.size());
  for (size_t i = 0; i < with_cache.size(); ++i) {
    ExpectSameAnswer(with_cache[i], without_cache[i],
                     "query #" + std::to_string(i));
    ASSERT_EQ(with_cache[i].series.size(), without_cache[i].series.size());
    for (size_t j = 0; j < with_cache[i].series.size(); ++j) {
      EXPECT_EQ(with_cache[i].series[j].probability,
                without_cache[i].series[j].probability);
    }
  }
}

TEST(BatchInference, DeduplicatesRepeatedQueries) {
  KnowledgeBase kb = SpecificityKb();
  // Hash-consing makes the three copies pointer-equal; the batch answers
  // the formula once and fans the answer out.
  std::vector<logic::FormulaPtr> queries = ParseAll({
      "Fly(Tweety)",
      "Fly(Tweety)",
      "Bird(Tweety)",
      "Fly(Tweety)",
  });
  ASSERT_EQ(queries[0].get(), queries[1].get());
  ASSERT_EQ(queries[0].get(), queries[3].get());

  std::vector<Answer> answers = DegreesOfBelief(kb, queries);
  ASSERT_EQ(answers.size(), 4u);
  ExpectSameAnswer(answers[0], answers[1], "dup 1");
  ExpectSameAnswer(answers[0], answers[3], "dup 3");
}

TEST(BatchInference, QueriesWithFreshSymbolsDoNotPerturbOthers) {
  // A query introducing predicates/constants absent from the KB must not
  // change the other queries' answers (a shared union vocabulary would
  // grow their world space and can flip engine support limits), and must
  // itself match its sequential answer.
  KnowledgeBase kb = SpecificityKb();
  std::vector<logic::FormulaPtr> queries = ParseAll({
      "Fly(Tweety)",
      "Extra1(Other) & Extra2(Other) & Extra3(Other)",
      "Bird(Tweety)",
  });
  InferenceOptions options;
  options.limit.domain_sizes = {8, 16};

  std::vector<Answer> batch = DegreesOfBelief(kb, queries, options);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    Answer single = DegreeOfBelief(kb, queries[i], options);
    ExpectSameAnswer(batch[i], single, "query #" + std::to_string(i));
  }
}

TEST(BatchInference, TextualFormReportsParseErrorsPerQuery) {
  KnowledgeBase kb = SpecificityKb();
  std::vector<std::string> texts = {
      "Fly(Tweety)",
      "Fly(",  // malformed
      "Bird(Tweety)",
  };
  std::vector<Answer> answers = DegreesOfBelief(kb, texts);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_NE(answers[0].status, Answer::Status::kUnknown);
  EXPECT_EQ(answers[1].status, Answer::Status::kUnknown);
  EXPECT_NE(answers[1].explanation.find("parse error"), std::string::npos);
  EXPECT_NE(answers[2].status, Answer::Status::kUnknown);
}

TEST(BatchInference, PaperFixtureValuesSurvive) {
  // The batch path must still reproduce the paper's numbers.
  const auto& example = fixtures::ExampleById("E5.10");
  KnowledgeBase kb;
  std::string error;
  ASSERT_TRUE(kb.AddParsed(example.kb, &error)) << error;
  std::vector<std::string> texts = {example.query};
  std::vector<Answer> answers = DegreesOfBelief(kb, texts);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].status, Answer::Status::kPoint);
  EXPECT_NEAR(answers[0].value, example.value, example.tolerance);
}

}  // namespace
}  // namespace rwl
