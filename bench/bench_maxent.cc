// Experiment family: the random-worlds / maximum-entropy correspondence
// (Section 6) — the worked example Pr(P2(c)) = 0.3, concentration of the
// profile engine on the maxent point as N grows, and Example 5.29.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/parser.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

void ReportTable() {
  rwl::bench::PrintHeader("Maximum entropy correspondence (Section 6)");

  {
    KnowledgeBase kb;
    kb.AddParsed(
        "forall x. P1(x)\n"
        "#(P1(x) & P2(x))[x] <~ 0.3\n");
    kb.mutable_vocabulary().AddConstant("C0");
    InferenceOptions options;
    options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.02);
    rwl::bench::PrintRow("S6-worked", "Pr(P2(c)) at maxent point (0.3,0.7)",
                         "0.3", DegreeOfBelief(kb, "P2(C0)", options));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(Black(x) ; Bird(x))[x] ~=_1 0.2\n"
        "#(Bird(x))[x] ~=_2 0.1\n");
    kb.mutable_vocabulary().AddConstant("Clyde");
    InferenceOptions options;
    options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.02);
    rwl::bench::PrintRow("E5.29", "Pr(Black(Clyde))", "0.47",
                         DegreeOfBelief(kb, "Black(Clyde)", options));
  }

  // Concentration series: |Pr_N - Pr_maxent| shrinking in N (the paper's
  // e^{N·H} argument made visible).
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(B(x) ; A(x))[x] ~= 0.6\n"
        "A(K)\n");
    auto query = rwl::logic::ParseFormula("B(K)").formula;
    auto tol = rwl::semantics::ToleranceVector::Uniform(0.03);
    rwl::engines::MaxEntEngine maxent;
    // τ → 0 reference (= 0.6 by direct inference at the maxent point).
    auto limit = maxent.InferLimit(kb.vocabulary(), kb.AsFormula(), query,
                                   tol, {1.0, 0.3, 0.1, 0.03});
    std::printf(
        "\n  Concentration on the maxent point (KB: ||B|A|| ≈ 0.6, A(K); "
        "tau->0 limit %.4f):\n    %-6s %-12s %-12s\n", limit.value, "N",
        "Pr_N(B(K))", "|gap|");
    rwl::engines::ProfileEngine profile;
    for (int n : {8, 16, 32, 64, 96}) {
      auto r = profile.DegreeAt(kb.vocabulary(), kb.AsFormula(), query, n,
                                tol);
      std::printf("    %-6d %-12.5f %-12.5f\n", n, r.probability,
                  std::fabs(r.probability - limit.value));
    }
  }
}

void BM_MaxEntSolve(benchmark::State& state) {
  KnowledgeBase kb;
  kb.AddParsed(
      "#(Black(x) ; Bird(x))[x] ~=_1 0.2\n"
      "#(Bird(x))[x] ~=_2 0.1\n");
  rwl::engines::MaxEntEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.02);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.MaxEntPoint(kb.vocabulary(), kb.AsFormula(), tol));
  }
}
BENCHMARK(BM_MaxEntSolve);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
