// Shared reporting helpers for the experiment benches.
//
// Every bench binary regenerates one experiment family from the paper's
// evaluation (see DESIGN.md §3) and prints rows of the form
//
//   [experiment id]  description  paper=<value>  measured=<value>  method
//
// so that bench output can be diffed against EXPERIMENTS.md.
#ifndef RWL_BENCH_BENCH_UTIL_H_
#define RWL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/core/inference.h"

namespace rwl::bench {

inline void PrintHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

inline std::string AnswerToString(const Answer& answer) {
  char buf[128];
  switch (answer.status) {
    case Answer::Status::kPoint:
      std::snprintf(buf, sizeof(buf), "%.4f", answer.value);
      return buf;
    case Answer::Status::kInterval:
      std::snprintf(buf, sizeof(buf), "[%.4f, %.4f]", answer.lo, answer.hi);
      return buf;
    case Answer::Status::kNonexistent:
      return "nonexistent";
    case Answer::Status::kUndefined:
      return "undefined (no worlds)";
    case Answer::Status::kUnknown:
      return "unknown";
  }
  return "?";
}

inline void PrintRow(const std::string& id, const std::string& what,
                     const std::string& paper, const Answer& answer) {
  std::printf("  [%-18s] %-46s paper=%-14s measured=%-18s via %s\n",
              id.c_str(), what.c_str(), paper.c_str(),
              AnswerToString(answer).c_str(),
              answer.method.empty() ? "-" : answer.method.c_str());
}

inline void PrintValueRow(const std::string& id, const std::string& what,
                          const std::string& paper, double measured,
                          const std::string& method) {
  std::printf("  [%-18s] %-46s paper=%-14s measured=%-18.4f via %s\n",
              id.c_str(), what.c_str(), paper.c_str(), measured,
              method.c_str());
}

}  // namespace rwl::bench

#endif  // RWL_BENCH_BENCH_UTIL_H_
