// Shared reporting helpers for the experiment benches.
//
// Every bench binary regenerates one experiment family from the paper's
// evaluation (see DESIGN.md §3) and prints rows of the form
//
//   [experiment id]  description  paper=<value>  measured=<value>  method
//
// so that bench output can be diffed against EXPERIMENTS.md.
#ifndef RWL_BENCH_BENCH_UTIL_H_
#define RWL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/core/inference.h"

namespace rwl::bench {

// ---------------------------------------------------------------------------
// Machine-readable output.
//
// Every bench emits one JSON object per benchmark row on stdout (prefixed
// "BENCH_JSON ") so that the perf trajectory can be tracked across PRs by
// grepping bench logs into BENCH_*.json files:
//
//   bench_batch | grep '^BENCH_JSON ' | sed 's/^BENCH_JSON //' > BENCH_batch.json
//
// The human-readable rows are unchanged.  Set RWL_BENCH_JSON=0 to silence
// the JSON lines.
// ---------------------------------------------------------------------------

inline bool JsonEnabled() {
  const char* env = std::getenv("RWL_BENCH_JSON");
  return env == nullptr || std::string(env) != "0";
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

// One JSON line, built field by field.  Numbers print with enough digits
// to round-trip doubles.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) {
    Field("bench", bench);
  }

  JsonLine& Field(const std::string& key, const std::string& value) {
    Raw(key, "\"" + JsonEscape(value) + "\"");
    return *this;
  }
  JsonLine& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonLine& Field(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    Raw(key, buf);
    return *this;
  }
  JsonLine& Field(const std::string& key, int64_t value) {
    Raw(key, std::to_string(value));
    return *this;
  }
  JsonLine& Field(const std::string& key, int value) {
    return Field(key, static_cast<int64_t>(value));
  }
  JsonLine& Field(const std::string& key, bool value) {
    Raw(key, value ? "true" : "false");
    return *this;
  }

  // Prints "BENCH_JSON {...}\n" (unless RWL_BENCH_JSON=0).
  void Emit() const {
    if (!JsonEnabled()) return;
    std::string line = "BENCH_JSON {";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) line += ", ";
      line += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    line += "}";
    std::printf("%s\n", line.c_str());
  }

 private:
  void Raw(const std::string& key, std::string value) {
    fields_.emplace_back(key, std::move(value));
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

inline void EmitAnswerJson(const std::string& bench, const std::string& id,
                           const Answer& answer) {
  JsonLine line(bench);
  line.Field("id", id)
      .Field("status", StatusToString(answer.status))
      .Field("value", answer.value)
      .Field("lo", answer.lo)
      .Field("hi", answer.hi)
      .Field("method", answer.method)
      .Field("converged", answer.converged);
  line.Emit();
}

inline void PrintHeader(const char* title) {
  std::printf("\n==== %s ====\n", title);
}

inline std::string AnswerToString(const Answer& answer) {
  char buf[128];
  switch (answer.status) {
    case Answer::Status::kPoint:
      std::snprintf(buf, sizeof(buf), "%.4f", answer.value);
      return buf;
    case Answer::Status::kInterval:
      std::snprintf(buf, sizeof(buf), "[%.4f, %.4f]", answer.lo, answer.hi);
      return buf;
    case Answer::Status::kNonexistent:
      return "nonexistent";
    case Answer::Status::kUndefined:
      return "undefined (no worlds)";
    case Answer::Status::kUnknown:
      return "unknown";
  }
  return "?";
}

inline void PrintRow(const std::string& id, const std::string& what,
                     const std::string& paper, const Answer& answer) {
  std::printf("  [%-18s] %-46s paper=%-14s measured=%-18s via %s\n",
              id.c_str(), what.c_str(), paper.c_str(),
              AnswerToString(answer).c_str(),
              answer.method.empty() ? "-" : answer.method.c_str());
  JsonLine line(id);
  line.Field("what", what)
      .Field("paper", paper)
      .Field("status", StatusToString(answer.status))
      .Field("value", answer.value)
      .Field("lo", answer.lo)
      .Field("hi", answer.hi)
      .Field("method", answer.method)
      .Field("converged", answer.converged);
  line.Emit();
}

inline void PrintValueRow(const std::string& id, const std::string& what,
                          const std::string& paper, double measured,
                          const std::string& method) {
  std::printf("  [%-18s] %-46s paper=%-14s measured=%-18.4f via %s\n",
              id.c_str(), what.c_str(), paper.c_str(), measured,
              method.c_str());
  JsonLine line(id);
  line.Field("what", what)
      .Field("paper", paper)
      .Field("value", measured)
      .Field("method", method);
  line.Emit();
}

}  // namespace rwl::bench

#endif  // RWL_BENCH_BENCH_UTIL_H_
