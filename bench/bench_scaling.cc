// Experiment family: engine scaling — runtime of the exact, profile,
// maximum-entropy and symbolic engines as domain size and vocabulary grow.
// The paper's Section 7.4 complexity discussion in numbers: enumeration is
// doubly exponential, profiles polynomial-ish in N for fixed k, maxent and
// the symbolic rules essentially constant.
#include <benchmark/benchmark.h>

#include "src/core/knowledge_base.h"
#include "src/engines/exact_engine.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/logic/builder.h"
#include "src/logic/parser.h"
#include "src/workload/generators.h"

namespace {

using rwl::KnowledgeBase;
using rwl::logic::FormulaPtr;

struct Fixture {
  rwl::logic::Vocabulary vocab;
  FormulaPtr kb;
  FormulaPtr query;
};

Fixture MakeFixture(int num_predicates) {
  Fixture f;
  KnowledgeBase kb;
  std::string text = "#(T(x) ; C0(x))[x] ~= 0.7\nC0(K)\n";
  kb.AddParsed(text);
  for (int i = 1; i < num_predicates; ++i) {
    kb.mutable_vocabulary().AddPredicate("C" + std::to_string(i), 1);
  }
  f.vocab = kb.vocabulary();
  f.kb = kb.AsFormula();
  f.query = rwl::logic::ParseFormula("T(K)").formula;
  return f;
}

void BM_ExactVsN(benchmark::State& state) {
  Fixture f = MakeFixture(1);
  rwl::engines::ExactEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(f.vocab, f.kb, f.query, n, tol));
  }
}
BENCHMARK(BM_ExactVsN)->DenseRange(3, 8, 1);

void BM_ProfileVsN(benchmark::State& state) {
  Fixture f = MakeFixture(1);
  rwl::engines::ProfileEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(f.vocab, f.kb, f.query, n, tol));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ProfileVsN)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_ProfileVsPredicates(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  rwl::engines::ProfileEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.DegreeAt(f.vocab, f.kb, f.query, 24, tol));
  }
}
BENCHMARK(BM_ProfileVsPredicates)->DenseRange(2, 4, 1);

void BM_MaxEntVsPredicates(benchmark::State& state) {
  Fixture f = MakeFixture(static_cast<int>(state.range(0)));
  rwl::engines::MaxEntEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.02);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.InferAt(f.vocab, f.kb, f.query, tol));
  }
}
BENCHMARK(BM_MaxEntVsPredicates)->DenseRange(2, 6, 1);

void BM_SymbolicVsKbSize(benchmark::State& state) {
  // Symbolic matching cost as the KB accumulates irrelevant statistics.
  KnowledgeBase kb;
  kb.AddParsed("#(T(x) ; C0(x))[x] ~= 0.7\nC0(K)\n");
  for (int i = 1; i < state.range(0); ++i) {
    std::string extra = "#(Q" + std::to_string(i) + "(x) ; C0(x))[x] ~=_" +
                        std::to_string(i + 1) + " 0.5";
    kb.AddParsed(extra);
  }
  rwl::engines::SymbolicEngine engine;
  FormulaPtr query = rwl::logic::ParseFormula("T(K)").formula;
  FormulaPtr kb_formula = kb.AsFormula();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Infer(kb_formula, query));
  }
}
BENCHMARK(BM_SymbolicVsKbSize)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
