// Experiment family: competing reference classes (Section 5.3) — the
// strength rule (Theorem 5.23 / Example 5.24), too-specific vs too-general
// information (Example 5.25), and the Nixon diamond sweep over (α, β)
// (Theorem 5.26), including the footnote-14 Republican-banker case.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/evidence/dempster.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32, 48};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

KnowledgeBase NixonKb(double alpha, double beta, bool same_tolerance) {
  KnowledgeBase kb;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "#(Pacifist(x) ; Quaker(x))[x] ~=_1 %g\n"
                "#(Pacifist(x) ; Republican(x))[x] ~=_%d %g\n"
                "Quaker(Nixon)\n"
                "Republican(Nixon)\n"
                "exists! x. (Quaker(x) & Republican(x))\n",
                alpha, same_tolerance ? 1 : 2, beta);
  kb.AddParsed(buf);
  return kb;
}

void ReportTable() {
  rwl::bench::PrintHeader("Competing reference classes (Section 5.3)");

  {
    KnowledgeBase kb;
    kb.AddParsed(
        "(0.7 <~_1 #(Chirps(x) ; Bird(x))[x]) & "
        "(#(Chirps(x) ; Bird(x))[x] <~_2 0.8)\n"
        "(0 <~_3 #(Chirps(x) ; Magpie(x))[x]) & "
        "(#(Chirps(x) ; Magpie(x))[x] <~_4 0.99)\n"
        "forall x. (Magpie(x) => Bird(x))\n"
        "Magpie(Tweety)\n");
    InferenceOptions symbolic = Options();
    symbolic.use_profile = false;
    symbolic.use_maxent = false;
    symbolic.use_exact_fallback = false;
    rwl::bench::PrintRow("E5.24-strength",
                         "tighter bird interval beats magpies",
                         "[0.7, 0.8]",
                         DegreeOfBelief(kb, "Chirps(Tweety)", symbolic));
    InferenceOptions numeric = Options();
    numeric.use_symbolic = false;
    numeric.limit.domain_sizes = {16, 24};
    numeric.limit.tolerance_scales = {1.0};
    rwl::bench::PrintRow("E5.24-numeric",
                         "numeric estimate falls inside the interval",
                         "in [0.7, 0.8]",
                         DegreeOfBelief(kb, "Chirps(Tweety)", numeric));
  }
  {
    // Example 5.25: moody magpies pull the answer below 0.9.
    KnowledgeBase kb;
    kb.AddParsed(
        "#(Chirps(x) ; Bird(x))[x] ~=_1 0.9\n"
        "#(Chirps(x) ; Magpie(x) & Moody(x))[x] ~=_2 0.2\n"
        "forall x. (Magpie(x) => Bird(x))\n"
        "Magpie(Tweety)\n");
    InferenceOptions numeric = Options();
    numeric.use_symbolic = false;
    numeric.limit.domain_sizes = {10, 12};
    numeric.limit.tolerance_scales = {1.0};
    rwl::bench::PrintRow("E5.25-moody",
                         "moody-magpie stats not ignored", "< 0.9",
                         DegreeOfBelief(kb, "Chirps(Tweety)", numeric));
  }

  std::printf(
      "\n  Nixon diamond sweep (Theorem 5.26): measured vs "
      "δ(α,β)=αβ/(αβ+(1-α)(1-β))\n");
  for (double alpha : {0.8, 0.7, 0.6}) {
    for (double beta : {0.8, 0.5, 0.3}) {
      KnowledgeBase kb = NixonKb(alpha, beta, false);
      Answer answer = DegreeOfBelief(kb, "Pacifist(Nixon)", Options());
      double expected = rwl::evidence::DempsterCombine({alpha, beta});
      char id[64], what[96], paper[32];
      std::snprintf(id, sizeof(id), "T5.26 a=%.1f b=%.1f", alpha, beta);
      std::snprintf(what, sizeof(what), "Nixon diamond combination");
      std::snprintf(paper, sizeof(paper), "%.4f", expected);
      rwl::bench::PrintRow(id, what, paper, answer);
    }
  }
  {
    rwl::bench::PrintRow("T5.26-conflict",
                         "α=1, β=0, independent tolerances", "no limit",
                         DegreeOfBelief(NixonKb(1.0, 0.0, false),
                                        "Pacifist(Nixon)", Options()));
    rwl::bench::PrintRow("T5.26-equal",
                         "α=1, β=0, equal strength (same ≈₁)", "0.5",
                         DegreeOfBelief(NixonKb(1.0, 0.0, true),
                                        "Pacifist(Nixon)", Options()));
  }
  {
    // Footnote 14: 20% of Republicans and 20% of bankers are pacifists;
    // random worlds combines the two pieces of negative evidence to a value
    // BELOW 0.2, where Kyburg's strength rule would say exactly 0.2.
    KnowledgeBase kb = NixonKb(0.2, 0.2, false);
    Answer answer = DegreeOfBelief(kb, "Pacifist(Nixon)", Options());
    rwl::bench::PrintRow("fn14-reinforce",
                         "two 0.2 classes reinforce downward",
                         "< 0.2 (δ=0.059)", answer);
  }
}

void BM_NixonSymbolic(benchmark::State& state) {
  KnowledgeBase kb = NixonKb(0.8, 0.8, false);
  InferenceOptions options = Options();
  options.use_profile = false;
  options.use_maxent = false;
  options.use_exact_fallback = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DegreeOfBelief(kb, "Pacifist(Nixon)", options));
  }
}
BENCHMARK(BM_NixonSymbolic);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
