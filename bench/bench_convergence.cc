// Experiment family: the convergence "figure" — Pr_N^τ as a function of N
// for shrinking τ, approaching Pr_∞ (Definition 4.3).  This is the series
// view behind every sweep in the library; the paper's limits are the
// horizontal asymptotes.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/knowledge_base.h"
#include "src/engines/profile_engine.h"
#include "src/logic/parser.h"

namespace {

using rwl::KnowledgeBase;

void Series(const char* title, const char* kb_text, const char* query_text,
            double limit) {
  KnowledgeBase kb;
  kb.AddParsed(kb_text);
  auto query = rwl::logic::ParseFormula(query_text).formula;
  kb.RegisterQuerySymbols(query);
  rwl::engines::ProfileEngine engine;
  std::printf("\n  %s (Pr_inf = %.4f)\n  %-8s", title, limit, "N\\tau");
  const double taus[] = {0.08, 0.04, 0.02};
  for (double tau : taus) std::printf(" %-10.3f", tau);
  std::printf("\n");
  for (int n : {8, 16, 24, 32, 48, 64}) {
    std::printf("  %-8d", n);
    for (double tau : taus) {
      auto tol = rwl::semantics::ToleranceVector::Uniform(tau);
      auto r = engine.DegreeAt(kb.vocabulary(), kb.AsFormula(), query, n,
                               tol);
      if (r.well_defined) {
        std::printf(" %-10.5f", r.probability);
      } else {
        std::printf(" %-10s", "undef");
      }
    }
    std::printf("\n");
  }
}

void ReportTable() {
  rwl::bench::PrintHeader("Convergence of Pr_N^tau to Pr_inf (Def. 4.3)");
  Series("Direct inference (E5.8): Pr(Hep(Eric))",
         "Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n", "Hep(Eric)", 0.8);
  Series("Default (E5.10 core): Pr(Fly(Tweety)) for a bird",
         "#(Fly(x) ; Bird(x))[x] ~= 1\nBird(Tweety)\n", "Fly(Tweety)", 1.0);
  Series("Maxent pull (E5.29): Pr(Black(Clyde))",
         "#(Black(x) ; Bird(x))[x] ~=_1 0.2\n#(Bird(x))[x] ~=_2 0.1\n",
         "Black(Clyde)", 0.47);
}

void BM_ProfileSweepCost(benchmark::State& state) {
  KnowledgeBase kb;
  kb.AddParsed("Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n");
  auto query = rwl::logic::ParseFormula("Hep(Eric)").formula;
  rwl::engines::ProfileEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.04);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.DegreeAt(kb.vocabulary(), kb.AsFormula(), query, n, tol));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ProfileSweepCost)->RangeMultiplier(2)->Range(8, 128)
    ->Complexity();

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
