// Experiment family: direct inference (Examples 5.8, 5.11, 5.18).
//
// Regenerates the hepatitis numbers: the "right" reference class is used,
// other statistics, other individuals and spurious disjunctive classes are
// ignored.  Includes google-benchmark timings of the three engines on the
// core query.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/engines/exact_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/parser.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32, 48};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

KnowledgeBase HepKb(bool with_extras) {
  KnowledgeBase kb;
  std::string text =
      "Jaun(Eric)\n"
      "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n";
  if (with_extras) {
    text +=
        "#(Hep(x))[x] <~_2 0.05\n"
        "#(Hep(x) ; Jaun(x) & Fever(x))[x] ~=_3 1\n";
  }
  kb.AddParsed(text);
  return kb;
}

void ReportTable() {
  rwl::bench::PrintHeader(
      "Direct inference (Examples 5.8 / 5.11 / 5.18)");

  {
    KnowledgeBase kb = HepKb(false);
    rwl::bench::PrintRow("E5.8-core", "Pr(Hep(Eric) | jaundice stats)",
                         "0.8", DegreeOfBelief(kb, "Hep(Eric)", Options()));
  }
  {
    KnowledgeBase kb = HepKb(true);
    rwl::bench::PrintRow("E5.8-extras",
                         "extra class statistics ignored", "0.8",
                         DegreeOfBelief(kb, "Hep(Eric)", Options()));
  }
  {
    KnowledgeBase kb = HepKb(false);
    kb.AddParsed("Hep(Tom)");
    rwl::bench::PrintRow("E5.8-Tom", "other individuals ignored", "0.8",
                         DegreeOfBelief(kb, "Hep(Eric)", Options()));
  }
  {
    // E5.11: numeric path only; the spurious disjunctive class cannot shift
    // the answer because its statistics hold in almost all worlds.
    KnowledgeBase kb = HepKb(false);
    InferenceOptions numeric = Options();
    numeric.use_symbolic = false;
    numeric.limit.domain_sizes = {24, 48};
    rwl::bench::PrintRow("E5.11-numeric",
                         "profile engine, spurious class immaterial", "0.8",
                         DegreeOfBelief(kb, "Hep(Eric)", numeric));
  }
  {
    KnowledgeBase kb = HepKb(false);
    kb.AddParsed("Fever(Eric)\nTall(Eric)");
    rwl::bench::PrintRow("E5.18-irrelevant",
                         "Fever/Tall facts ignored (Thm 5.16)", "0.8",
                         DegreeOfBelief(kb, "Hep(Eric)", Options()));
  }
  {
    KnowledgeBase kb = HepKb(true);
    kb.AddParsed("Fever(Eric)\nTall(Eric)");
    rwl::bench::PrintRow("E5.18-specific",
                         "Jaun∧Fever class takes over", "1.0",
                         DegreeOfBelief(kb, "Hep(Eric)", Options()));
  }
}

void BM_SymbolicDirectInference(benchmark::State& state) {
  KnowledgeBase kb = HepKb(true);
  InferenceOptions options = Options();
  options.use_profile = false;
  options.use_maxent = false;
  options.use_exact_fallback = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DegreeOfBelief(kb, "Hep(Eric)", options));
  }
}
BENCHMARK(BM_SymbolicDirectInference);

void BM_ProfileDirectInference(benchmark::State& state) {
  KnowledgeBase kb = HepKb(false);
  rwl::engines::ProfileEngine engine;
  auto query = rwl::logic::ParseFormula("Hep(Eric)").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(kb.vocabulary(), kb.AsFormula(),
                                             query, n, tol));
  }
}
BENCHMARK(BM_ProfileDirectInference)->Arg(16)->Arg(32)->Arg(64);

void BM_ExactDirectInference(benchmark::State& state) {
  // The definitional enumeration on the hepatitis KB at exact-engine
  // reachable N: the world loop is the compiled-VM + sharding hot path.
  KnowledgeBase kb = HepKb(false);
  rwl::engines::ExactEngine engine;
  auto query = rwl::logic::ParseFormula("Hep(Eric)").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(kb.vocabulary(), kb.AsFormula(),
                                             query, n, tol));
  }
}
BENCHMARK(BM_ExactDirectInference)->DenseRange(4, 8, 2);

void BM_MaxEntDirectInference(benchmark::State& state) {
  KnowledgeBase kb = HepKb(false);
  InferenceOptions options = Options();
  options.use_symbolic = false;
  options.use_profile = false;
  options.use_exact_fallback = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DegreeOfBelief(kb, "Hep(Eric)", options));
  }
}
BENCHMARK(BM_MaxEntDirectInference);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
