// bench_planner — plan quality and planning overhead of the cost-based
// query planner (core/planner.h).
//
// For every generated workload the bench measures
//
//   * each forced strategy's wall time (rwlq --engine semantics) — the
//     "best-of-all-engines" baseline is the fastest forced strategy that
//     produced a final answer,
//   * the planner's wall time in cost mode (cheapest-predicted-first) —
//     plan-quality ratio = planner time / best forced time,
//   * the planning overhead (assessment + scoring) cold and on plan-cache
//     hits, and
//   * deadline conformance: with a deadline set, the elapsed time never
//     exceeds the deadline by more than the final candidate's own probe
//     (plus scheduling slack).
//
// Differential gate: the planner's point answers must agree with every
// forced strategy's point answers (|Δ| ≤ 0.15, the limit-level epsilon) —
// a disagreement fails the bench.  Timing targets (≥ 90% of workloads
// within 2x of best-of-all) are reported and recorded in BENCH_JSON, but
// only correctness exits nonzero (CI machines have noisy clocks).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/engine_registry.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/planner.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"
#include "src/workload/generators.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct WorkloadCase {
  std::string profile;
  rwl::KnowledgeBase kb;
  rwl::logic::FormulaPtr query;
};

rwl::KnowledgeBase ToKb(const rwl::logic::FormulaPtr& kb_formula,
                        const rwl::logic::FormulaPtr& query) {
  rwl::KnowledgeBase kb;
  for (const auto& conjunct : rwl::logic::Conjuncts(kb_formula)) {
    kb.Add(conjunct);
  }
  kb.RegisterQuerySymbols(query);
  return kb;
}

std::vector<WorkloadCase> GenerateWorkloads(int per_profile) {
  std::vector<WorkloadCase> cases;
  std::mt19937 rng(20260730);

  struct Profile {
    const char* name;
    rwl::workload::UnaryKbParams params;
  };
  std::vector<Profile> profiles;
  {
    Profile p{"unary-small", {}};
    p.params.num_predicates = 2;
    p.params.num_constants = 1;
    p.params.num_statements = 2;
    profiles.push_back(p);
  }
  {
    Profile p{"unary-wide", {}};
    p.params.num_predicates = 4;
    p.params.num_constants = 2;
    p.params.num_statements = 3;
    p.params.num_facts = 2;
    profiles.push_back(p);
  }
  {
    Profile p{"unary-deep", {}};
    p.params.num_predicates = 3;
    p.params.num_constants = 1;
    p.params.num_statements = 2;
    p.params.max_depth = 3;
    profiles.push_back(p);
  }
  {
    Profile p{"defaults-heavy", {}};
    p.params.num_predicates = 3;
    p.params.num_constants = 1;
    p.params.num_statements = 3;
    p.params.default_fraction = 0.8;
    profiles.push_back(p);
  }

  for (const Profile& profile : profiles) {
    for (int i = 0; i < per_profile; ++i) {
      WorkloadCase c;
      c.profile = profile.name;
      rwl::logic::FormulaPtr kb_formula =
          rwl::workload::RandomUnaryKb(profile.params, &rng);
      c.query = rwl::workload::RandomQuery(profile.params, &rng);
      c.kb = ToKb(kb_formula, c.query);
      cases.push_back(std::move(c));
    }
  }

  // Taxonomy chains: the symbolic strength rule vs numeric sweeps.
  for (int i = 0; i < per_profile; ++i) {
    rwl::workload::ChainKb chain =
        rwl::workload::RandomChainKb(2 + (i % 3), &rng);
    WorkloadCase c;
    c.profile = "chain";
    c.query = chain.query;
    c.kb = ToKb(chain.kb, chain.query);
    cases.push_back(std::move(c));
  }
  return cases;
}

rwl::InferenceOptions BaseOptions() {
  rwl::InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.05);
  options.limit.domain_sizes = {8, 12, 16};
  options.limit.tolerance_scales = {1.0, 0.5};
  // Keep the slowest candidates bounded (the exact odometer on wide
  // vocabularies) — the planner and the forced baselines share the cap.
  options.work_budget = 3e7;
  return options;
}

bool Answered(const rwl::Answer& answer) {
  return answer.status == rwl::Answer::Status::kPoint ||
         answer.status == rwl::Answer::Status::kUndefined;
}

struct ProfileStats {
  int cases = 0;
  int compared = 0;       // cases with a forced baseline to compare against
  int within_2x = 0;
  double log_ratio_sum = 0.0;
  double planning_cold_ms_sum = 0.0;
  double planner_ms_sum = 0.0;
  double best_forced_ms_sum = 0.0;
  double cache_speedup_sum = 0.0;
  int cache_hits = 0;
  int agreement_failures = 0;
  int deadline_violations = 0;
  double max_deadline_overshoot_ms = 0.0;
};

}  // namespace

int main() {
  const std::vector<WorkloadCase> cases = GenerateWorkloads(10);
  static const char* kForced[] = {"symbolic", "profile", "maxent", "exact"};

  std::vector<std::string> profile_order;
  std::vector<ProfileStats> stats_by_profile;
  auto stats_for = [&](const std::string& profile) -> ProfileStats& {
    for (size_t i = 0; i < profile_order.size(); ++i) {
      if (profile_order[i] == profile) return stats_by_profile[i];
    }
    profile_order.push_back(profile);
    stats_by_profile.emplace_back();
    return stats_by_profile.back();
  };

  rwl::bench::PrintHeader("planner plan quality vs best-of-all-engines");
  for (const WorkloadCase& c : cases) {
    ProfileStats& stats = stats_for(c.profile);
    ++stats.cases;

    // Forced baselines, each through a fresh context (cold, like a
    // single-query service request).
    double best_forced_ms = -1.0;
    std::string best_forced;
    std::vector<std::pair<std::string, rwl::Answer>> forced_answers;
    for (const char* name : kForced) {
      rwl::InferenceOptions forced = BaseOptions();
      forced.force_engine = name;
      Clock::time_point t0 = Clock::now();
      rwl::Answer answer = rwl::DegreeOfBelief(c.kb, c.query, forced);
      double elapsed = MillisSince(t0);
      if (!Answered(answer)) continue;
      forced_answers.emplace_back(name, answer);
      if (best_forced_ms < 0.0 || elapsed < best_forced_ms) {
        best_forced_ms = elapsed;
        best_forced = name;
      }
    }

    // The planner, cost mode, cold context.
    rwl::InferenceOptions planned_options = BaseOptions();
    planned_options.plan_mode = rwl::PlanMode::kMinCost;
    Clock::time_point t0 = Clock::now();
    rwl::Answer planned = rwl::DegreeOfBelief(c.kb, c.query,
                                              planned_options);
    const double planner_ms = MillisSince(t0);
    if (planned.plan != nullptr) {
      stats.planning_cold_ms_sum += planned.plan->planning_ms;
    }

    // Agreement gate: planner point vs every forced point.
    if (planned.status == rwl::Answer::Status::kPoint) {
      for (const auto& [name, forced_answer] : forced_answers) {
        if (forced_answer.status != rwl::Answer::Status::kPoint) continue;
        if (std::fabs(forced_answer.value - planned.value) > 0.15) {
          ++stats.agreement_failures;
          std::printf("  DISAGREE [%s] planner=%.4f forced:%s=%.4f\n",
                      c.profile.c_str(), planned.value, name.c_str(),
                      forced_answer.value);
        }
      }
    }

    if (best_forced_ms >= 0.0 && Answered(planned)) {
      ++stats.compared;
      double ratio = planner_ms / std::max(best_forced_ms, 1e-3);
      // Within 2x, with a 0.5ms absolute floor: at sub-millisecond
      // scale the constant planning + first-probe overhead dominates
      // the ratio, which measures clock noise rather than plan quality.
      if (ratio <= 2.0 || planner_ms - best_forced_ms <= 0.5) {
        ++stats.within_2x;
      }
      stats.log_ratio_sum += std::log(std::max(ratio, 1e-6));
      stats.planner_ms_sum += planner_ms;
      stats.best_forced_ms_sum += best_forced_ms;
    }

    // Plan-cache overhead: repeated shape in a shared context.
    {
      rwl::QueryContext ctx = rwl::MakeQueryContext(
          c.kb, std::span<const rwl::logic::FormulaPtr>(&c.query, 1),
          planned_options);
      Clock::time_point cold0 = Clock::now();
      rwl::Answer cold = rwl::DegreeOfBelief(ctx, c.query, planned_options);
      double cold_ms = MillisSince(cold0);
      Clock::time_point warm0 = Clock::now();
      rwl::Answer warm = rwl::DegreeOfBelief(ctx, c.query, planned_options);
      double warm_ms = MillisSince(warm0);
      if (warm.plan != nullptr && warm.plan->from_cache) {
        ++stats.cache_hits;
        stats.cache_speedup_sum +=
            cold_ms / std::max(warm_ms, 1e-4);
      }
      if (!(cold.status == warm.status && cold.value == warm.value &&
            cold.method == warm.method)) {
        ++stats.agreement_failures;
        std::printf("  DISAGREE [%s] plan-cache hit differs from cold\n",
                    c.profile.c_str());
      }
    }

    // Deadline conformance: elapsed ≤ deadline + the last candidate's own
    // probe time + slack.
    {
      rwl::InferenceOptions dl = BaseOptions();
      dl.deadline_ms = 2.0;
      Clock::time_point dl0 = Clock::now();
      rwl::Answer answer = rwl::DegreeOfBelief(c.kb, c.query, dl);
      double elapsed = MillisSince(dl0);
      double last_probe_ms = 0.0;
      if (answer.plan != nullptr) {
        for (const rwl::PlanStep& step : answer.plan->steps) {
          if (step.action == rwl::PlanStep::Action::kRan) {
            last_probe_ms = step.observed_ms;
          }
        }
      }
      double overshoot = elapsed - dl.deadline_ms;
      stats.max_deadline_overshoot_ms =
          std::max(stats.max_deadline_overshoot_ms, overshoot);
      // Slack for planning + scheduling noise.
      if (overshoot > last_probe_ms + 25.0) ++stats.deadline_violations;
    }
  }

  int total_compared = 0;
  int total_within = 0;
  int total_failures = 0;
  int total_deadline_violations = 0;
  for (size_t i = 0; i < profile_order.size(); ++i) {
    const ProfileStats& s = stats_by_profile[i];
    total_compared += s.compared;
    total_within += s.within_2x;
    total_failures += s.agreement_failures;
    total_deadline_violations += s.deadline_violations;
    double geo_ratio =
        s.compared > 0 ? std::exp(s.log_ratio_sum / s.compared) : 0.0;
    double within_frac =
        s.compared > 0 ? static_cast<double>(s.within_2x) / s.compared : 1.0;
    std::printf(
        "  [%-14s] cases=%-3d within2x=%.0f%%  geo-ratio=%.2f  "
        "planner=%.2fms best=%.2fms  plan-cold=%.3fms  cache-speedup=%.1fx  "
        "max-deadline-overshoot=%.2fms\n",
        profile_order[i].c_str(), s.cases, within_frac * 100.0, geo_ratio,
        s.compared > 0 ? s.planner_ms_sum / s.compared : 0.0,
        s.compared > 0 ? s.best_forced_ms_sum / s.compared : 0.0,
        s.cases > 0 ? s.planning_cold_ms_sum / s.cases : 0.0,
        s.cache_hits > 0 ? s.cache_speedup_sum / s.cache_hits : 0.0,
        s.max_deadline_overshoot_ms);
    rwl::bench::JsonLine line("planner");
    line.Field("profile", profile_order[i])
        .Field("cases", s.cases)
        .Field("compared", s.compared)
        .Field("within_2x_fraction", within_frac)
        .Field("geo_mean_ratio", geo_ratio)
        .Field("mean_planner_ms",
               s.compared > 0 ? s.planner_ms_sum / s.compared : 0.0)
        .Field("mean_best_forced_ms",
               s.compared > 0 ? s.best_forced_ms_sum / s.compared : 0.0)
        .Field("mean_cold_planning_ms",
               s.cases > 0 ? s.planning_cold_ms_sum / s.cases : 0.0)
        .Field("mean_cache_hit_speedup",
               s.cache_hits > 0 ? s.cache_speedup_sum / s.cache_hits : 0.0)
        .Field("max_deadline_overshoot_ms", s.max_deadline_overshoot_ms)
        .Field("deadline_violations", s.deadline_violations)
        .Field("agreement_failures", s.agreement_failures);
    line.Emit();
  }

  double overall_within = total_compared > 0
                              ? static_cast<double>(total_within) /
                                    total_compared
                              : 1.0;
  std::printf(
      "\n  overall: %d/%d within 2x of best-of-all (%.0f%%; target 90%%), "
      "%d agreement failure(s), %d deadline violation(s)\n",
      total_within, total_compared, overall_within * 100.0, total_failures,
      total_deadline_violations);
  rwl::bench::JsonLine summary("planner");
  summary.Field("profile", "overall")
      .Field("compared", total_compared)
      .Field("within_2x_fraction", overall_within)
      .Field("meets_2x_target", overall_within >= 0.9)
      .Field("agreement_failures", total_failures)
      .Field("deadline_violations", total_deadline_violations);
  summary.Emit();

  // ---- cost-model rows for the closed-form strategies ----
  //
  // EstimateCost is a pure function of the KB shape, so these rows are
  // bit-deterministic run to run — bench_gate.py compares them against
  // bench/baselines/BENCH_planner.json with a tight ratio.  A cost-model
  // change that would silently reorder cost-mode plans shows up here as a
  // predicted_work jump before it shows up as a planner regression.
  {
    struct CostProbe {
      const char* strategy;
      const char* kb_text;
      const char* query;
    };
    static const CostProbe kProbes[] = {
        {"epsilon_semantics",
         "#(Bird(x) ; Penguin(x))[x] ~= 1\n"
         "#(Fly(x) ; Bird(x))[x] ~= 1\n"
         "#(Fly(x) ; Penguin(x))[x] ~= 0\n"
         "Penguin(Opus)\n",
         "Fly(Opus)"},
        {"klm",
         "#(Bird(x) ; Penguin(x))[x] ~= 1\n"
         "#(Fly(x) ; Bird(x))[x] ~= 1\n"
         "#(Fly(x) ; Penguin(x))[x] ~= 0\n"
         "Penguin(Opus)\n",
         "Fly(Opus)"},
        {"gmp90",
         "#(Bird(x) ; Penguin(x))[x] ~= 1\n"
         "#(Fly(x) ; Bird(x))[x] ~= 1\n"
         "#(Fly(x) ; Penguin(x))[x] ~= 0\n"
         "Penguin(Opus)\n",
         "Fly(Opus)"},
        {"evidence",
         "#(Hep(x) ; Jaun(x))[x] ~=_1 0.8\n"
         "#(Hep(x) ; Pos(x))[x] ~=_2 0.75\n"
         "Jaun(Eric)\nPos(Eric)\n"
         "(exists! x. (Jaun(x) & Pos(x)))\n",
         "Hep(Eric)"},
        {"calibrated",
         "Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
         "Hep(Eric)"},
    };
    std::printf("\n  cost-model probes (deterministic; gated vs baseline):\n");
    int cost_model_failures = 0;
    for (const CostProbe& probe : kProbes) {
      auto strategy = rwl::EngineRegistry::Default().Find(probe.strategy);
      if (strategy == nullptr) {
        ++cost_model_failures;
        std::printf("  FAIL: strategy '%s' not registered\n", probe.strategy);
        continue;
      }
      rwl::KnowledgeBase kb;
      std::string error;
      if (!kb.AddParsed(probe.kb_text, &error)) {
        ++cost_model_failures;
        std::printf("  FAIL: cost probe KB for '%s': %s\n", probe.strategy,
                    error.c_str());
        continue;
      }
      rwl::InferenceOptions options = BaseOptions();
      if (std::string(probe.strategy) == "calibrated") {
        options.interval_confidence = 0.9;
      }
      rwl::logic::FormulaPtr query =
          rwl::logic::ParseFormula(probe.query).formula;
      rwl::QueryContext ctx = rwl::MakeQueryContext(
          kb, std::span<const rwl::logic::FormulaPtr>(&query, 1), options);
      rwl::engines::Capability cap = strategy->Assess(ctx, query, options);
      if (!cap.applicable) {
        ++cost_model_failures;
        std::printf("  FAIL: '%s' inapplicable on its canonical probe (%s)\n",
                    probe.strategy, cap.reason.c_str());
        continue;
      }
      rwl::engines::CostEstimate cost =
          strategy->EstimateCost(ctx, query, options);
      std::printf("  [%-17s] predicted work=%-12.6g error=%.3g\n",
                  probe.strategy, cost.work, cost.error);
      rwl::bench::JsonLine line("planner");
      line.Field("id", std::string("cost_model_") + probe.strategy)
          .Field("strategy", probe.strategy)
          .Field("predicted_work", cost.work)
          .Field("predicted_error", cost.error);
      line.Emit();
    }
    total_failures += cost_model_failures;
  }

  if (total_failures > 0) {
    std::printf("  FAIL: planner answers disagree with forced engines\n");
    return 1;
  }
  std::printf("  PASS: planner differentially equivalent to forced engines\n");
  return 0;
}
