// Experiment family: Section 6 — ε-semantics vs GMP90 maximum entropy vs
// random worlds (Theorem 6.1 embedding), including the Geffner anomaly
// discussed at the end of Section 6.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/defaults/epsilon_semantics.h"
#include "src/defaults/gmp90.h"

namespace {

using rwl::defaults::Gmp90System;
using rwl::defaults::PEntails;
using rwl::defaults::Prop;
using rwl::defaults::Rule;

Rule MakeRule(rwl::defaults::PropPtr a, rwl::defaults::PropPtr c) {
  return Rule{std::move(a), std::move(c)};
}

const char* YesNo(bool b) { return b ? "yes" : "no"; }

void ReportTable() {
  rwl::bench::PrintHeader(
      "Default systems compared (Section 6): ε-semantics / GMP90 / rwl");

  // Penguin triangle over Bird(0), Fly(1), Penguin(2).
  std::vector<Rule> rules = {
      MakeRule(Prop::Var(0), Prop::Var(1)),
      MakeRule(Prop::Var(2), Prop::Not(Prop::Var(1))),
      MakeRule(Prop::Var(2), Prop::Var(0)),
  };
  Gmp90System system(3, rules);
  std::vector<std::string> names = {"Bird", "Fly", "Penguin"};

  struct QueryCase {
    const char* label;
    Rule query;
    const char* paper;
  };
  std::vector<QueryCase> cases = {
      {"penguin => !fly", MakeRule(Prop::Var(2), Prop::Not(Prop::Var(1))),
       "all yes"},
      {"bird => fly", MakeRule(Prop::Var(0), Prop::Var(1)), "all yes"},
      {"penguin => fly", MakeRule(Prop::Var(2), Prop::Var(1)), "all no"},
      {"bird & red' => fly",
       MakeRule(Prop::And(Prop::Var(0), Prop::Not(Prop::Var(2))),
                Prop::Var(1)),
       "eps no*, ME yes, rwl yes"},
  };

  std::printf("  %-22s %-14s %-12s %-12s %s\n", "query", "eps-semantics",
              "GMP90-ME", "randworlds", "paper");
  for (const auto& c : cases) {
    bool eps = PEntails(rules, c.query, 3);
    auto me = system.MePlausible(c.query);
    rwl::defaults::RwEmbedding embedding =
        rwl::defaults::TranslateQuery(system, c.query, names);
    rwl::InferenceOptions options;
    options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.05);
    options.limit.domain_sizes = {12, 24, 36};
    options.limit.tolerance_scales = {1.0, 0.5};
    rwl::Answer answer =
        rwl::DegreeOfBelief(embedding.kb, embedding.query, options);
    bool rw = (answer.status == rwl::Answer::Status::kPoint &&
               answer.value >= 0.8) ||
              (answer.status == rwl::Answer::Status::kInterval &&
               answer.lo >= 0.8);
    std::printf("  %-22s %-14s %-12s %-12s %s\n", c.label, YesNo(eps),
                YesNo(me.plausible), YesNo(rw), c.paper);
  }

  // The Geffner anomaly: with a single shared ε, adding P → ¬Q makes
  // P ∧ S ∧ R → Q an ME-plausible consequence (counterintuitively).
  {
    // Variables: P(0), S(1), R(2), Q(3).
    std::vector<Rule> base = {
        MakeRule(Prop::And(Prop::Var(0), Prop::Var(1)), Prop::Var(3)),
        MakeRule(Prop::Var(2), Prop::Not(Prop::Var(3))),
    };
    Rule query = MakeRule(
        Prop::And(Prop::And(Prop::Var(0), Prop::Var(1)), Prop::Var(2)),
        Prop::Var(3));
    Gmp90System before(4, base);
    auto plaus_before = before.MePlausible(query);

    std::vector<Rule> extended = base;
    extended.push_back(MakeRule(Prop::Var(0), Prop::Not(Prop::Var(3))));
    Gmp90System after(4, extended);
    auto plaus_after = after.MePlausible(query);

    // The mechanism the paper describes: adding P → ¬Q makes P∧S doubly
    // exceptional, boosting the strength of P∧S → Q from 1 to 2.
    std::vector<int> z_before = before.RuleStrengths();
    std::vector<int> z_after = after.RuleStrengths();
    double cond_before = before.ConditionalAtEpsilon(query, 0.01);
    double cond_after = after.ConditionalAtEpsilon(query, 0.01);
    std::printf(
        "\n  Geffner anomaly (shared ε): strength of P∧S → Q before/after "
        "adding P → ¬Q: %d → %d (paper: the class P∧S becomes ε-small)\n"
        "    exponent comparison: before %+d, after %+d "
        "(0 = tie, decided by constants)\n"
        "    µ*_0.01(Q | P∧S∧R): before %.3f, after %.3f; "
        "plausible: %s → %s\n",
        z_before[0], z_after[0], before.CompareByStrengths(query),
        after.CompareByStrengths(query), cond_before, cond_after,
        YesNo(plaus_before.plausible), YesNo(plaus_after.plausible));
  }
}

void BM_MePlausible(benchmark::State& state) {
  std::vector<Rule> rules = {
      MakeRule(Prop::Var(0), Prop::Var(1)),
      MakeRule(Prop::Var(2), Prop::Not(Prop::Var(1))),
      MakeRule(Prop::Var(2), Prop::Var(0)),
  };
  Gmp90System system(3, rules);
  Rule query = MakeRule(Prop::Var(2), Prop::Not(Prop::Var(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.MePlausible(query));
  }
}
BENCHMARK(BM_MePlausible);

void BM_PEntailment(benchmark::State& state) {
  std::vector<Rule> rules = {
      MakeRule(Prop::Var(0), Prop::Var(1)),
      MakeRule(Prop::Var(2), Prop::Not(Prop::Var(1))),
      MakeRule(Prop::Var(2), Prop::Var(0)),
  };
  Rule query = MakeRule(Prop::Var(2), Prop::Not(Prop::Var(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PEntails(rules, query, 3));
  }
}
BENCHMARK(BM_PEntailment);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
