// Batch-inference benchmark: one DegreesOfBelief call vs. N sequential
// DegreeOfBelief calls on the paper fixture KBs.
//
// The batch path shares a QueryContext, so the expensive per-(N, τ)
// world enumerations (profile DFS, exact odometer) and the KB analyses run
// once and every further query replays them.  The acceptance bar for the
// refactor is ≥ 2× on a 16-query batch; the JSON lines feed BENCH_*.json.
//
// Also measured: the EstimateLimit worker pool (serial vs. pooled sweep of
// the (N, τ) grid) — on multi-core machines the grid points overlap; the
// answers are identical by construction.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/fixtures/paper_kbs.h"
#include "src/logic/parser.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct BatchCase {
  std::string id;
  std::string kb;
  std::vector<std::string> queries;
};

// 16 distinct queries per fixture, exercising the numeric sweep path.
std::vector<BatchCase> BuildCases() {
  std::vector<BatchCase> cases;
  {
    BatchCase c;
    c.id = "E5.10-specificity";
    c.kb = rwl::fixtures::ExampleById("E5.10").kb;
    c.queries = {
        "Fly(Tweety)",         "!Fly(Tweety)",
        "Bird(Tweety)",        "Penguin(Tweety)",
        "Fly(Tweety) & Bird(Tweety)",
        "Fly(Tweety) | Penguin(Tweety)",
        "Bird(Tweety) & !Fly(Tweety)",
        "Penguin(Tweety) => Bird(Tweety)",
        "#(Fly(x) ; Bird(x))[x] ~= 1",
        "#(Fly(x) ; Penguin(x))[x] ~= 0",
        "Fly(Tweety) & Penguin(Tweety)",
        "!Bird(Tweety)",
        "Bird(Tweety) | Penguin(Tweety)",
        "!Penguin(Tweety)",
        "Fly(Tweety) => Bird(Tweety)",
        "Bird(Tweety) & Penguin(Tweety)",
    };
    cases.push_back(std::move(c));
  }
  {
    BatchCase c;
    c.id = "E5.8b-chart";
    c.kb = rwl::fixtures::ExampleById("E5.8b").kb;
    c.queries = {
        "Hep(Eric)",          "!Hep(Eric)",
        "Jaun(Eric)",         "Fever(Eric)",
        "Hep(Eric) & Jaun(Eric)",
        "Hep(Eric) | Fever(Eric)",
        "Jaun(Eric) & !Hep(Eric)",
        "Fever(Eric) => Hep(Eric)",
        "Hep(Eric) & Fever(Eric)",
        "!Fever(Eric)",
        "Hep(Eric) => Jaun(Eric)",
        "Jaun(Eric) | Fever(Eric)",
        "!Jaun(Eric)",
        "Hep(Eric) & !Fever(Eric)",
        "Jaun(Eric) & Fever(Eric)",
        "Hep(Eric) | Jaun(Eric)",
    };
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace

int main() {
  rwl::bench::PrintHeader("batch inference: shared QueryContext vs. "
                          "sequential calls");

  // Numeric-only options so every query pays the sweep (the symbolic
  // engine would answer several fixtures in closed form).
  rwl::InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.05);
  options.use_symbolic = false;
  options.use_maxent = false;
  options.limit.domain_sizes = {8, 16, 24, 32};

  for (const auto& bench_case : BuildCases()) {
    rwl::KnowledgeBase kb;
    std::string error;
    if (!kb.AddParsed(bench_case.kb, &error)) {
      std::fprintf(stderr, "bench_batch: KB parse error in %s: %s\n",
                   bench_case.id.c_str(), error.c_str());
      return 1;
    }
    std::vector<rwl::logic::FormulaPtr> queries;
    for (const auto& text : bench_case.queries) {
      rwl::logic::ParseResult parsed = rwl::logic::ParseFormula(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bench_batch: query parse error '%s': %s\n",
                     text.c_str(), parsed.error.c_str());
        return 1;
      }
      queries.push_back(parsed.formula);
    }

    // Sequential: one fresh context per query (what callers did before the
    // batch API existed).
    Clock::time_point t0 = Clock::now();
    std::vector<rwl::Answer> sequential;
    for (const auto& query : queries) {
      sequential.push_back(rwl::DegreeOfBelief(kb, query, options));
    }
    Clock::time_point t1 = Clock::now();

    // Batch: one shared context.
    std::vector<rwl::Answer> batch =
        rwl::DegreesOfBelief(kb, queries, options);
    Clock::time_point t2 = Clock::now();

    // The two must agree bit for bit.
    int mismatches = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (sequential[i].status != batch[i].status ||
          sequential[i].value != batch[i].value ||
          sequential[i].lo != batch[i].lo ||
          sequential[i].hi != batch[i].hi) {
        ++mismatches;
      }
    }

    double sequential_s = Seconds(t0, t1);
    double batch_s = Seconds(t1, t2);
    double speedup = batch_s > 0 ? sequential_s / batch_s : 0.0;
    std::printf(
        "  [%-18s] %2zu queries  sequential=%.3fs  batch=%.3fs  "
        "speedup=%.2fx  mismatches=%d\n",
        bench_case.id.c_str(), queries.size(), sequential_s, batch_s,
        speedup, mismatches);
    rwl::bench::JsonLine(std::string("batch/") + bench_case.id)
        .Field("queries", static_cast<int>(queries.size()))
        .Field("sequential_s", sequential_s)
        .Field("batch_s", batch_s)
        .Field("speedup", speedup)
        .Field("mismatches", mismatches)
        .Emit();

    // Sweep worker pool: serial vs. pooled grid on the first query.
    rwl::InferenceOptions serial_options = options;
    serial_options.enable_caching = false;
    serial_options.limit.num_threads = 1;
    Clock::time_point p0 = Clock::now();
    rwl::Answer serial_answer =
        rwl::DegreeOfBelief(kb, queries[0], serial_options);
    Clock::time_point p1 = Clock::now();
    rwl::InferenceOptions pooled_options = serial_options;
    pooled_options.limit.num_threads = 0;  // one worker per hardware thread
    rwl::Answer pooled_answer =
        rwl::DegreeOfBelief(kb, queries[0], pooled_options);
    Clock::time_point p2 = Clock::now();
    double serial_s = Seconds(p0, p1);
    double pooled_s = Seconds(p1, p2);
    bool same = serial_answer.status == pooled_answer.status &&
                serial_answer.value == pooled_answer.value;
    std::printf(
        "  [%-18s] sweep: serial=%.3fs  pooled=%.3fs  speedup=%.2fx  "
        "identical=%s\n",
        bench_case.id.c_str(), serial_s, pooled_s,
        pooled_s > 0 ? serial_s / pooled_s : 0.0, same ? "yes" : "NO");
    rwl::bench::JsonLine(std::string("sweep-pool/") + bench_case.id)
        .Field("serial_s", serial_s)
        .Field("pooled_s", pooled_s)
        .Field("speedup", pooled_s > 0 ? serial_s / pooled_s : 0.0)
        .Field("identical", same)
        .Emit();

    if (mismatches > 0 || !same) return 1;
  }
  return 0;
}
