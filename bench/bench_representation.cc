// Experiment family: representation dependence (Section 7.2): the
// White/Red/Blue refinement (1/2 → 1/3) and the Bird/FlyingBird encodings
// (robust 0.5 for Fly(Tweety); 1/2 vs 2/3 for Bird(Opus)).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {32, 64, 96};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

void ReportTable() {
  rwl::bench::PrintHeader("Representation dependence (Section 7.2)");

  {
    KnowledgeBase kb;
    kb.mutable_vocabulary().AddPredicate("White", 1);
    kb.mutable_vocabulary().AddConstant("B");
    rwl::bench::PrintRow("S7.2-white", "Pr(White(b)), {White} vocabulary",
                         "1/2", DegreeOfBelief(kb, "White(B)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "forall x. (!White(x) <=> (Red(x) | Blue(x)))\n"
        "forall x. !(Red(x) & Blue(x))\n");
    kb.mutable_vocabulary().AddConstant("B");
    rwl::bench::PrintRow("S7.2-refined",
                         "after refining ¬White into Red ⊎ Blue", "1/3",
                         DegreeOfBelief(kb, "White(B)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed("#(Fly(x) ; Bird(x))[x] ~= 0.5\nBird(Tweety)\n");
    kb.mutable_vocabulary().AddConstant("Opus");
    rwl::bench::PrintRow("S7.2-fly-direct", "Pr(Fly(Tweety)), Fly/Bird",
                         "0.5", DegreeOfBelief(kb, "Fly(Tweety)", Options()));
    rwl::bench::PrintRow("S7.2-bird-direct", "Pr(Bird(Opus)), Fly/Bird",
                         "0.5", DegreeOfBelief(kb, "Bird(Opus)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(FlyingBird(x) ; Bird(x))[x] ~= 0.5\n"
        "Bird(Tweety)\n"
        "forall x. (FlyingBird(x) => Bird(x))\n");
    kb.mutable_vocabulary().AddConstant("Opus");
    rwl::bench::PrintRow("S7.2-fly-fb",
                         "Pr(FlyingBird(Tweety)), FlyingBird encoding",
                         "0.5",
                         DegreeOfBelief(kb, "FlyingBird(Tweety)", Options()));
    rwl::bench::PrintRow("S7.2-bird-fb",
                         "Pr(Bird(Opus)), FlyingBird encoding", "2/3",
                         DegreeOfBelief(kb, "Bird(Opus)", Options()));
  }
}

void BM_RefinedVocabulary(benchmark::State& state) {
  KnowledgeBase kb;
  kb.AddParsed(
      "forall x. (!White(x) <=> (Red(x) | Blue(x)))\n"
      "forall x. !(Red(x) & Blue(x))\n");
  kb.mutable_vocabulary().AddConstant("B");
  InferenceOptions options = Options();
  options.use_symbolic = false;
  options.limit.domain_sizes = {32};
  options.limit.tolerance_scales = {1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(DegreeOfBelief(kb, "White(B)", options));
  }
}
BENCHMARK(BM_RefinedVocabulary);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
