// Evaluator microbenchmark: compiled bytecode VM vs. the tree-walking
// interpreter, plus world-loop thread scaling of the sharded exact engine.
//
// Emits one BENCH_JSON line per row (grep into BENCH_eval.json — see
// bench_util.h) so the perf trajectory of the evaluation hot path is
// tracked across PRs:
//
//   bench_eval | grep '^BENCH_JSON ' | sed 's/^BENCH_JSON //' > BENCH_eval.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <thread>

#include "bench/bench_util.h"
#include "src/engines/exact_engine.h"
#include "src/logic/builder.h"
#include "src/logic/parser.h"
#include "src/semantics/compile.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/vm.h"

namespace {

using rwl::logic::FormulaPtr;
using rwl::semantics::CompiledFormula;
using rwl::semantics::EvalFrame;
using rwl::semantics::World;

struct Fixture {
  rwl::logic::Vocabulary vocab;
  FormulaPtr formula;
};

// A representative mixed-fragment sentence: quantifiers over a binary
// relation, a conditional proportion, and arithmetic on proportion terms.
Fixture MakeFixture() {
  Fixture f;
  f.vocab.AddPredicate("P", 1);
  f.vocab.AddPredicate("Q", 1);
  f.vocab.AddPredicate("R", 2);
  f.vocab.AddConstant("K");
  auto parsed = rwl::logic::ParseFormula(
      "(forall x. (R(x, x) => P(x))) & "
      "#(P(x) ; Q(x))[x] <~ #(Q(x))[x] + 0.5 & "
      "(exists x. R(K, x))");
  f.formula = parsed.formula;
  return f;
}

void RandomizeWorld(World* world, std::mt19937_64* rng) {
  const auto& vocab = world->vocabulary();
  for (int p = 0; p < vocab.num_predicates(); ++p) {
    for (auto& cell : world->predicate_table(p)) {
      cell = static_cast<uint8_t>((*rng)() & 1);
    }
  }
  std::uniform_int_distribution<int> element(0, world->domain_size() - 1);
  for (int fn = 0; fn < vocab.num_functions(); ++fn) {
    for (auto& cell : world->function_table(fn)) cell = element(*rng);
  }
}

// ---- manual compile-vs-interpret report (one JSON row per N) ----

void ReportCompileVsInterpret() {
  rwl::bench::PrintHeader("Evaluator: compiled VM vs tree-walker");
  Fixture f = MakeFixture();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  CompiledFormula compiled =
      rwl::semantics::CompileFormula(f.formula, f.vocab);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error.c_str());
    return;
  }

  for (int n : {4, 6, 8}) {
    World world(&f.vocab, n);
    std::mt19937_64 rng(99);
    RandomizeWorld(&world, &rng);
    EvalFrame frame;
    frame.Prepare(*compiled.program, tol);

    // Calibrate the iteration count on the VM so each side runs ~0.2s max.
    const int iters = n <= 4 ? 20000 : n <= 6 ? 4000 : 1000;
    using Clock = std::chrono::steady_clock;

    bool sink = false;
    auto walk_start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      sink ^= rwl::semantics::Evaluate(f.formula, world, tol);
    }
    double walk_ns = std::chrono::duration<double, std::nano>(
                         Clock::now() - walk_start)
                         .count() /
                     iters;

    auto vm_start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      sink ^= rwl::semantics::RunProgram(*compiled.program, world, &frame);
    }
    double vm_ns = std::chrono::duration<double, std::nano>(
                       Clock::now() - vm_start)
                       .count() /
                   iters;
    benchmark::DoNotOptimize(sink);

    double speedup = vm_ns > 0 ? walk_ns / vm_ns : 0.0;
    std::printf("  [eval-N%-2d] walker=%10.0f ns/eval  vm=%10.0f ns/eval  "
                "speedup=%.2fx\n",
                n, walk_ns, vm_ns, speedup);
    rwl::bench::JsonLine line("eval");
    line.Field("id", "vm_vs_interp_N" + std::to_string(n))
        .Field("domain_size", n)
        .Field("walker_ns_per_eval", walk_ns)
        .Field("vm_ns_per_eval", vm_ns)
        .Field("speedup", speedup);
    line.Emit();
  }
}

// ---- exact-engine world-loop thread scaling (one JSON row) ----

void ReportThreadScaling() {
  rwl::bench::PrintHeader("Exact engine: world-loop thread scaling");
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  vocab.AddPredicate("R", 2);
  FormulaPtr kb = rwl::logic::ParseFormula(
                      "(forall x. (R(x, x) => P(x)))")
                      .formula;
  FormulaPtr query =
      rwl::logic::ParseFormula("(exists x. R(x, x))").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  const int n = 4;  // 2^(4 + 16) ≈ 1M worlds

  using Clock = std::chrono::steady_clock;
  auto time_with = [&](int threads) {
    rwl::engines::ExactEngine engine(26.0, threads);
    auto start = Clock::now();
    benchmark::DoNotOptimize(engine.DegreeAt(vocab, kb, query, n, tol));
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  time_with(1);  // warm-up
  double serial_s = time_with(1);
  double pooled_s = time_with(8);
  double scaling = pooled_s > 0 ? serial_s / pooled_s : 0.0;
  std::printf("  [world-loop] 1 thread=%.3fs  8 threads=%.3fs  scaling=%.2fx"
              "  (hardware threads: %u)\n",
              serial_s, pooled_s, scaling,
              std::thread::hardware_concurrency());
  rwl::bench::JsonLine line("eval");
  line.Field("id", "exact_world_loop_threads")
      .Field("domain_size", n)
      .Field("serial_seconds", serial_s)
      .Field("threads8_seconds", pooled_s)
      .Field("scaling_8_threads", scaling)
      .Field("hardware_threads",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
  line.Emit();
}

// ---- google-benchmark timings ----

void BM_TreeWalkerEval(benchmark::State& state) {
  Fixture f = MakeFixture();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  World world(&f.vocab, static_cast<int>(state.range(0)));
  std::mt19937_64 rng(7);
  RandomizeWorld(&world, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rwl::semantics::Evaluate(f.formula, world, tol));
  }
}
BENCHMARK(BM_TreeWalkerEval)->Arg(4)->Arg(6)->Arg(8);

void BM_CompiledVmEval(benchmark::State& state) {
  Fixture f = MakeFixture();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  CompiledFormula compiled =
      rwl::semantics::CompileFormula(f.formula, f.vocab);
  World world(&f.vocab, static_cast<int>(state.range(0)));
  std::mt19937_64 rng(7);
  RandomizeWorld(&world, &rng);
  EvalFrame frame;
  frame.Prepare(*compiled.program, tol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rwl::semantics::RunProgram(*compiled.program, world, &frame));
  }
}
BENCHMARK(BM_CompiledVmEval)->Arg(4)->Arg(6)->Arg(8);

void BM_CompileFormula(benchmark::State& state) {
  Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rwl::semantics::CompileFormula(f.formula, f.vocab));
  }
}
BENCHMARK(BM_CompileFormula);

void BM_ExactEngineSharded(benchmark::State& state) {
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  vocab.AddConstant("K");
  FormulaPtr kb =
      rwl::logic::ParseFormula("#(P(x))[x] <~ 0.8 & P(K)").formula;
  FormulaPtr query = rwl::logic::ParseFormula("P(K)").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  rwl::engines::ExactEngine engine(26.0,
                                   static_cast<int>(state.range(1)));
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(vocab, kb, query, n, tol));
  }
}
BENCHMARK(BM_ExactEngineSharded)
    ->Args({8, 1})
    ->Args({8, 8})
    ->Args({16, 1})
    ->Args({16, 8});

}  // namespace

int main(int argc, char** argv) {
  ReportCompileVsInterpret();
  ReportThreadScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
