// Evaluator microbenchmark: compiled bytecode VM vs. the tree-walking
// interpreter, plus world-loop thread scaling of the sharded exact engine.
//
// Emits one BENCH_JSON line per row (grep into BENCH_eval.json — see
// bench_util.h) so the perf trajectory of the evaluation hot path is
// tracked across PRs:
//
//   bench_eval | grep '^BENCH_JSON ' | sed 's/^BENCH_JSON //' > BENCH_eval.json
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <thread>

#include "bench/bench_util.h"
#include "src/engines/exact_engine.h"
#include "src/logic/builder.h"
#include "src/logic/parser.h"
#include "src/semantics/compile.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/vm.h"

namespace {

using rwl::logic::FormulaPtr;
using rwl::semantics::CompiledFormula;
using rwl::semantics::EvalFrame;
using rwl::semantics::World;

struct Fixture {
  rwl::logic::Vocabulary vocab;
  FormulaPtr formula;
};

// A representative mixed-fragment sentence: quantifiers over a binary
// relation, a conditional proportion, and arithmetic on proportion terms.
Fixture MakeFixture() {
  Fixture f;
  f.vocab.AddPredicate("P", 1);
  f.vocab.AddPredicate("Q", 1);
  f.vocab.AddPredicate("R", 2);
  f.vocab.AddConstant("K");
  auto parsed = rwl::logic::ParseFormula(
      "(forall x. (R(x, x) => P(x))) & "
      "#(P(x) ; Q(x))[x] <~ #(Q(x))[x] + 0.5 & "
      "(exists x. R(K, x))");
  f.formula = parsed.formula;
  return f;
}

void RandomizeWorld(World* world, std::mt19937_64* rng) {
  const auto& vocab = world->vocabulary();
  for (int p = 0; p < vocab.num_predicates(); ++p) {
    if (world->predicate_arity(p) == 1) {
      for (int d = 0; d < world->domain_size(); ++d) {
        world->SetUnaryBit(p, d, ((*rng)() & 1) != 0);
      }
      continue;
    }
    for (auto& cell : world->predicate_table(p)) {
      cell = static_cast<uint8_t>((*rng)() & 1);
    }
  }
  std::uniform_int_distribution<int> element(0, world->domain_size() - 1);
  for (int fn = 0; fn < vocab.num_functions(); ++fn) {
    for (auto& cell : world->function_table(fn)) cell = element(*rng);
  }
}

// ---- manual compile-vs-interpret report (one JSON row per N) ----

void ReportCompileVsInterpret() {
  rwl::bench::PrintHeader("Evaluator: compiled VM vs tree-walker");
  Fixture f = MakeFixture();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  CompiledFormula compiled =
      rwl::semantics::CompileFormula(f.formula, f.vocab);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error.c_str());
    return;
  }

  for (int n : {4, 6, 8}) {
    World world(&f.vocab, n);
    std::mt19937_64 rng(99);
    RandomizeWorld(&world, &rng);
    EvalFrame frame;
    frame.Prepare(*compiled.program, tol);

    // Calibrate the iteration count on the VM so each side runs ~0.2s max.
    const int iters = n <= 4 ? 20000 : n <= 6 ? 4000 : 1000;
    using Clock = std::chrono::steady_clock;

    bool sink = false;
    auto walk_start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      sink ^= rwl::semantics::Evaluate(f.formula, world, tol);
    }
    double walk_ns = std::chrono::duration<double, std::nano>(
                         Clock::now() - walk_start)
                         .count() /
                     iters;

    auto vm_start = Clock::now();
    for (int i = 0; i < iters; ++i) {
      sink ^= rwl::semantics::RunProgram(*compiled.program, world, &frame);
    }
    double vm_ns = std::chrono::duration<double, std::nano>(
                       Clock::now() - vm_start)
                       .count() /
                   iters;
    benchmark::DoNotOptimize(sink);

    double speedup = vm_ns > 0 ? walk_ns / vm_ns : 0.0;
    std::printf("  [eval-N%-2d] walker=%10.0f ns/eval  vm=%10.0f ns/eval  "
                "speedup=%.2fx\n",
                n, walk_ns, vm_ns, speedup);
    rwl::bench::JsonLine line("eval");
    line.Field("id", "vm_vs_interp_N" + std::to_string(n))
        .Field("domain_size", n)
        .Field("walker_ns_per_eval", walk_ns)
        .Field("vm_ns_per_eval", vm_ns)
        .Field("speedup", speedup);
    line.Emit();
  }
}

// ---- proportion-heavy rows: popcount kernels at large N ----

// Every proportion is a fused kPropUnary, so the VM side runs pure
// popcount-over-words kernels while the walker scans element by element.
void ReportProportionHeavy() {
  rwl::bench::PrintHeader(
      "Evaluator: proportion-heavy formula (popcount kernels)");
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("P0", 1);
  vocab.AddPredicate("P1", 1);
  vocab.AddPredicate("P2", 1);
  FormulaPtr formula = rwl::logic::ParseFormula(
                           "#(P0(x))[x] <~ 0.7 & "
                           "#(P0(x) ; P1(x))[x] <~ 0.6 & "
                           "#(P2(x) ; P0(x))[x] <~ 0.4")
                           .formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  CompiledFormula compiled = rwl::semantics::CompileFormula(formula, vocab);
  if (!compiled.ok()) {
    std::printf("compile failed: %s\n", compiled.error.c_str());
    return;
  }

  for (int n : {32, 64, 127}) {
    World world(&vocab, n);
    std::mt19937_64 rng(101);
    RandomizeWorld(&world, &rng);
    EvalFrame frame;
    frame.Prepare(*compiled.program, tol);
    using Clock = std::chrono::steady_clock;

    const int walk_iters = 2000;
    bool sink = false;
    auto walk_start = Clock::now();
    for (int i = 0; i < walk_iters; ++i) {
      sink ^= rwl::semantics::Evaluate(formula, world, tol);
    }
    double walk_ns = std::chrono::duration<double, std::nano>(
                         Clock::now() - walk_start)
                         .count() /
                     walk_iters;

    const int vm_iters = 200000;
    auto vm_start = Clock::now();
    for (int i = 0; i < vm_iters; ++i) {
      sink ^= rwl::semantics::RunProgram(*compiled.program, world, &frame);
    }
    double vm_ns = std::chrono::duration<double, std::nano>(
                       Clock::now() - vm_start)
                       .count() /
                   vm_iters;
    benchmark::DoNotOptimize(sink);

    double speedup = vm_ns > 0 ? walk_ns / vm_ns : 0.0;
    std::printf("  [prop-N%-3d] walker=%10.0f ns/eval  vm=%8.1f ns/eval  "
                "speedup=%.1fx\n",
                n, walk_ns, vm_ns, speedup);
    rwl::bench::JsonLine line("eval");
    line.Field("id", "prop_vm_N" + std::to_string(n))
        .Field("domain_size", n)
        .Field("walker_ns_per_eval", walk_ns)
        .Field("vm_ns_per_eval", vm_ns)
        .Field("speedup", speedup);
    line.Emit();
  }
}

// ---- counting-loop collapse vs forced enumeration (one JSON row) ----

// Aggregate-only KB and query: the engine takes the counting loop over
// compositions of N.  Conjoining a quantified tautology to the KB changes
// no world but forces the odometer enumeration, so the same answer is
// timed both ways (bit-identity is asserted — it is the tentpole claim).
void ReportCountingCollapse() {
  rwl::bench::PrintHeader("Exact engine: counting-loop collapse");
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("P0", 1);
  vocab.AddPredicate("P1", 1);
  FormulaPtr kb =
      rwl::logic::ParseFormula("#(P0(x))[x] <~ 0.6").formula;
  FormulaPtr kb_enum = rwl::logic::ParseFormula(
                           "#(P0(x))[x] <~ 0.6 & "
                           "(forall x. (P0(x) | !P0(x)))")
                           .formula;
  FormulaPtr query =
      rwl::logic::ParseFormula("#(P1(x) ; P0(x))[x] <~ 0.5").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  const int n = 11;  // 2^22 worlds enumerated vs C(14,3) = 364 compositions
  rwl::engines::ExactEngine engine;
  using Clock = std::chrono::steady_clock;

  auto enum_start = Clock::now();
  auto enumerated = engine.DegreeAt(vocab, kb_enum, query, n, tol);
  double enum_s =
      std::chrono::duration<double>(Clock::now() - enum_start).count();

  // The counting loop is microseconds; repeat it to get a stable timing.
  const int count_iters = 200;
  auto count_start = Clock::now();
  rwl::engines::FiniteResult counted;
  for (int i = 0; i < count_iters; ++i) {
    counted = engine.DegreeAt(vocab, kb, query, n, tol);
    benchmark::DoNotOptimize(counted);
  }
  double count_s =
      std::chrono::duration<double>(Clock::now() - count_start).count() /
      count_iters;

  if (counted.probability != enumerated.probability ||
      counted.log_numerator != enumerated.log_numerator ||
      counted.log_denominator != enumerated.log_denominator) {
    std::printf("  BIT-IDENTITY VIOLATION: counting %-.17g vs enumeration "
                "%-.17g\n",
                counted.probability, enumerated.probability);
  }
  double speedup = count_s > 0 ? enum_s / count_s : 0.0;
  std::printf("  [counting-N%d] enumeration=%.3fs  counting=%.6fs  "
              "speedup=%.0fx\n",
              n, enum_s, count_s, speedup);
  rwl::bench::JsonLine line("eval");
  line.Field("id", "exact_counting_collapse_N" + std::to_string(n))
      .Field("domain_size", n)
      .Field("enumeration_seconds", enum_s)
      .Field("counting_seconds", count_s)
      .Field("speedup", speedup);
  line.Emit();
}

// ---- exact-engine world-loop thread scaling (one JSON row) ----

void ReportThreadScaling() {
  rwl::bench::PrintHeader("Exact engine: world-loop thread scaling");
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  vocab.AddPredicate("R", 2);
  FormulaPtr kb = rwl::logic::ParseFormula(
                      "(forall x. (R(x, x) => P(x)))")
                      .formula;
  FormulaPtr query =
      rwl::logic::ParseFormula("(exists x. R(x, x))").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  const int n = 4;  // 2^(4 + 16) ≈ 1M worlds

  using Clock = std::chrono::steady_clock;
  auto time_with = [&](int threads) {
    rwl::engines::ExactEngine engine(26.0, threads);
    auto start = Clock::now();
    benchmark::DoNotOptimize(engine.DegreeAt(vocab, kb, query, n, tol));
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  time_with(1);  // warm-up
  double serial_s = time_with(1);
  double pooled_s = time_with(8);
  double scaling = pooled_s > 0 ? serial_s / pooled_s : 0.0;
  const double total_worlds = std::exp2(4 + 16);  // P: 4 cells, R: 16
  const double serial_ns_per_world = serial_s / total_worlds * 1e9;
  const double pooled_ns_per_world = pooled_s / total_worlds * 1e9;

  // Block VM vs per-world scalar loop over the same enumeration: the
  // scalar side clears the frame binding each world, costing the per-world
  // pointer rebinding the byte-table representation used to pay.
  CompiledFormula ckb = rwl::semantics::CompileFormula(kb, vocab);
  CompiledFormula cq = rwl::semantics::CompileFormula(query, vocab);
  EvalFrame kb_frame;
  EvalFrame q_frame;
  kb_frame.Prepare(*ckb.program, tol);
  q_frame.Prepare(*cq.program, tol);
  const int64_t count = int64_t{1} << 20;

  World scalar_world(&vocab, n);
  auto scalar_start = Clock::now();
  rwl::semantics::BlockCounts scalar_counts;
  for (int64_t w = 0; w < count; ++w) {
    kb_frame.bound_world = nullptr;
    q_frame.bound_world = nullptr;
    if (rwl::semantics::RunProgram(*ckb.program, scalar_world, &kb_frame)) {
      ++scalar_counts.first;
      if (rwl::semantics::RunProgram(*cq.program, scalar_world, &q_frame)) {
        ++scalar_counts.both;
      }
    }
    scalar_world.AdvanceOdometer();
  }
  double scalar_ns = std::chrono::duration<double, std::nano>(
                         Clock::now() - scalar_start)
                         .count() /
                     count;

  World block_world(&vocab, n);
  auto block_start = Clock::now();
  rwl::semantics::BlockCounts block_counts = rwl::semantics::RunProgramBlock(
      *ckb.program, cq.program.get(), &block_world, &kb_frame, &q_frame,
      count);
  double block_ns = std::chrono::duration<double, std::nano>(
                        Clock::now() - block_start)
                        .count() /
                    count;
  if (block_counts.first != scalar_counts.first ||
      block_counts.both != scalar_counts.both) {
    std::printf("  BLOCK/SCALAR COUNT MISMATCH: %lld/%lld vs %lld/%lld\n",
                static_cast<long long>(block_counts.first),
                static_cast<long long>(block_counts.both),
                static_cast<long long>(scalar_counts.first),
                static_cast<long long>(scalar_counts.both));
  }
  double block_speedup = block_ns > 0 ? scalar_ns / block_ns : 0.0;

  std::printf("  [world-loop] 1 thread=%.3fs (%.0f ns/world)  "
              "8 threads=%.3fs (%.0f ns/world)  scaling=%.2fx"
              "  (hardware threads: %u)\n",
              serial_s, serial_ns_per_world, pooled_s, pooled_ns_per_world,
              scaling, std::thread::hardware_concurrency());
  std::printf("  [world-loop] scalar=%.0f ns/world  block=%.0f ns/world  "
              "block-vs-scalar=%.2fx\n",
              scalar_ns, block_ns, block_speedup);
  rwl::bench::JsonLine line("eval");
  line.Field("id", "exact_world_loop_threads")
      .Field("domain_size", n)
      .Field("serial_seconds", serial_s)
      .Field("serial_ns_per_world", serial_ns_per_world)
      .Field("threads8_seconds", pooled_s)
      .Field("threads8_ns_per_world", pooled_ns_per_world)
      .Field("scaling_8_threads", scaling)
      .Field("scalar_ns_per_world", scalar_ns)
      .Field("block_ns_per_world", block_ns)
      .Field("block_vs_scalar_speedup", block_speedup)
      .Field("hardware_threads",
             static_cast<int64_t>(std::thread::hardware_concurrency()));
  line.Emit();
}

// ---- google-benchmark timings ----

void BM_TreeWalkerEval(benchmark::State& state) {
  Fixture f = MakeFixture();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  World world(&f.vocab, static_cast<int>(state.range(0)));
  std::mt19937_64 rng(7);
  RandomizeWorld(&world, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rwl::semantics::Evaluate(f.formula, world, tol));
  }
}
BENCHMARK(BM_TreeWalkerEval)->Arg(4)->Arg(6)->Arg(8);

void BM_CompiledVmEval(benchmark::State& state) {
  Fixture f = MakeFixture();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  CompiledFormula compiled =
      rwl::semantics::CompileFormula(f.formula, f.vocab);
  World world(&f.vocab, static_cast<int>(state.range(0)));
  std::mt19937_64 rng(7);
  RandomizeWorld(&world, &rng);
  EvalFrame frame;
  frame.Prepare(*compiled.program, tol);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rwl::semantics::RunProgram(*compiled.program, world, &frame));
  }
}
BENCHMARK(BM_CompiledVmEval)->Arg(4)->Arg(6)->Arg(8);

void BM_CompileFormula(benchmark::State& state) {
  Fixture f = MakeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rwl::semantics::CompileFormula(f.formula, f.vocab));
  }
}
BENCHMARK(BM_CompileFormula);

void BM_ExactEngineSharded(benchmark::State& state) {
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("P", 1);
  vocab.AddConstant("K");
  FormulaPtr kb =
      rwl::logic::ParseFormula("#(P(x))[x] <~ 0.8 & P(K)").formula;
  FormulaPtr query = rwl::logic::ParseFormula("P(K)").formula;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.1);
  rwl::engines::ExactEngine engine(26.0,
                                   static_cast<int>(state.range(1)));
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(vocab, kb, query, n, tol));
  }
}
BENCHMARK(BM_ExactEngineSharded)
    ->Args({8, 1})
    ->Args({8, 8})
    ->Args({16, 1})
    ->Args({16, 8});

}  // namespace

int main(int argc, char** argv) {
  ReportCompileVsInterpret();
  ReportProportionHeavy();
  ReportCountingCollapse();
  ReportThreadScaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
