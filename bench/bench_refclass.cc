// Experiment family: random worlds vs reference-class baselines (Section 2).
// Regenerates the failure modes the paper catalogs — the baselines answer on
// single-class KBs but go vacuous on incomparable competing classes, where
// random worlds still commits — plus a randomized sweep counting how often
// each system produces an informative answer.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/refclass/reference_class.h"
#include "src/workload/generators.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;
using rwl::refclass::Infer;
using rwl::refclass::Policy;
using rwl::refclass::RefClassAnswer;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

std::string RefToString(const RefClassAnswer& a) {
  char buf[64];
  switch (a.status) {
    case RefClassAnswer::Status::kInterval:
      std::snprintf(buf, sizeof(buf), "[%.3f, %.3f]", a.lo, a.hi);
      return buf;
    case RefClassAnswer::Status::kVacuous:
      return "[0, 1] (vacuous)";
    case RefClassAnswer::Status::kNoClass:
      return "no class";
  }
  return "?";
}

void ReportTable() {
  rwl::bench::PrintHeader(
      "Random worlds vs reference-class baselines (Section 2)");

  struct Case {
    const char* id;
    const char* kb_text;
    const char* query;
    const char* paper;
  };
  std::vector<Case> cases = {
      {"hepatitis",
       "Jaun(Eric)\n#(Hep(x) ; Jaun(x))[x] ~= 0.8\n", "Hep(Eric)",
       "all agree: 0.8"},
      {"heart-disease",
       "#(Heart(x) ; Chol(x))[x] ~=_1 0.15\n"
       "#(Heart(x) ; Smoker(x))[x] ~=_2 0.09\n"
       "Chol(Fred)\nSmoker(Fred)\n",
       "Heart(Fred)", "baselines [0,1]; rwl answers below both marginals"},
      {"nixon",
       "#(Pacifist(x) ; Quaker(x))[x] ~=_1 0.8\n"
       "#(Pacifist(x) ; Republican(x))[x] ~=_2 0.8\n"
       "Quaker(Nixon)\nRepublican(Nixon)\n"
       "exists! x. (Quaker(x) & Republican(x))\n",
       "Pacifist(Nixon)", "baselines [0,1]; rwl 0.941"},
  };

  for (const auto& c : cases) {
    KnowledgeBase kb;
    kb.AddParsed(c.kb_text);
    auto query = rwl::logic::ParseFormula(c.query).formula;
    RefClassAnswer reich = Infer(kb.AsFormula(), query,
                                 Policy::kReichenbach);
    RefClassAnswer kyburg = Infer(kb.AsFormula(), query,
                                  Policy::kKyburgStrength);
    Answer rw = DegreeOfBelief(kb, query, Options());
    std::printf("  [%-14s] reichenbach=%-18s kyburg=%-18s rwl=%-18s (%s)\n",
                c.id, RefToString(reich).c_str(), RefToString(kyburg).c_str(),
                rwl::bench::AnswerToString(rw).c_str(), c.paper);
  }

  // Randomized sweep: count informative answers on two-competing-class KBs.
  std::printf(
      "\n  Random two-class KBs (100 draws): informative answers per "
      "system\n");
  std::mt19937 rng(555);
  std::uniform_real_distribution<double> value(0.1, 0.9);
  int reich_informative = 0, rwl_informative = 0;
  for (int i = 0; i < 100; ++i) {
    char text[512];
    std::snprintf(text, sizeof(text),
                  "#(T(x) ; A(x))[x] ~=_1 %.3f\n"
                  "#(T(x) ; B(x))[x] ~=_2 %.3f\n"
                  "A(K)\nB(K)\n"
                  "exists! x. (A(x) & B(x))\n",
                  value(rng), value(rng));
    KnowledgeBase kb;
    kb.AddParsed(text);
    auto query = rwl::logic::ParseFormula("T(K)").formula;
    RefClassAnswer reich = Infer(kb.AsFormula(), query,
                                 Policy::kReichenbach);
    if (reich.status == RefClassAnswer::Status::kInterval) {
      ++reich_informative;
    }
    InferenceOptions fast = Options();
    fast.use_profile = false;
    fast.use_maxent = false;
    fast.use_exact_fallback = false;
    Answer rw = DegreeOfBelief(kb, query, fast);
    if (rw.status == Answer::Status::kPoint) ++rwl_informative;
  }
  std::printf("    reichenbach: %d/100   random-worlds: %d/100   "
              "(paper: baselines give up on all competing-class cases)\n",
              reich_informative, rwl_informative);
}

void BM_ReferenceClassAnalysis(benchmark::State& state) {
  KnowledgeBase kb;
  kb.AddParsed(
      "#(Fly(x) ; Bird(x))[x] ~=_1 0.9\n"
      "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
      "forall x. (Penguin(x) => Bird(x))\n"
      "Penguin(Tweety)\n");
  auto query = rwl::logic::ParseFormula("Fly(Tweety)").formula;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Infer(kb.AsFormula(), query, Policy::kKyburgStrength));
  }
}
BENCHMARK(BM_ReferenceClassAnalysis);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
