// Experiment family: specificity and inheritance (Examples 5.10, 5.15,
// 5.19, 5.20, 5.21 and the Tay-Sachs disjunctive class, Example 5.22).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32, 48};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

KnowledgeBase FlyKb() {
  KnowledgeBase kb;
  kb.AddParsed(
      "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
      "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
      "forall x. (Penguin(x) => Bird(x))\n");
  return kb;
}

void ReportTable() {
  rwl::bench::PrintHeader("Specificity & inheritance (Section 5.2)");

  {
    KnowledgeBase kb = FlyKb();
    kb.AddParsed("Penguin(Tweety)");
    rwl::bench::PrintRow("E5.10-specificity",
                         "penguin Tweety does not fly", "0",
                         DegreeOfBelief(kb, "Fly(Tweety)", Options()));
  }
  {
    KnowledgeBase kb = FlyKb();
    kb.AddParsed("Penguin(Tweety)\nYellow(Tweety)");
    rwl::bench::PrintRow("E5.19-irrelevance",
                         "yellow penguin still does not fly", "0",
                         DegreeOfBelief(kb, "Fly(Tweety)", Options()));
  }
  {
    KnowledgeBase kb = FlyKb();
    kb.AddParsed(
        "#(WarmBlooded(x) ; Bird(x))[x] ~=_3 1\n"
        "Penguin(Tweety)");
    rwl::bench::PrintRow(
        "E5.20-exceptional",
        "exceptional subclass inherits warm-bloodedness", "1",
        DegreeOfBelief(kb, "WarmBlooded(Tweety)", Options()));
  }
  {
    KnowledgeBase kb = FlyKb();
    kb.AddParsed(
        "#(EasyToSee(x) ; Yellow(x))[x] ~=_3 1\n"
        "Penguin(Tweety)\nYellow(Tweety)");
    rwl::bench::PrintRow("E5.21-drowning",
                         "yellow penguin is easy to see", "1",
                         DegreeOfBelief(kb, "EasyToSee(Tweety)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(Swims(x) ; Penguin(x))[x] ~=_1 0.9\n"
        "#(Swims(x) ; Sparrow(x))[x] ~=_2 0.01\n"
        "#(Swims(x) ; Bird(x))[x] ~=_3 0.05\n"
        "#(Swims(x) ; Animal(x))[x] ~=_4 0.3\n"
        "#(Swims(x) ; Fish(x))[x] ~=_5 1\n"
        "forall x. (Penguin(x) => Bird(x))\n"
        "forall x. (Sparrow(x) => Bird(x))\n"
        "forall x. (Bird(x) => Animal(x))\n"
        "forall x. (Fish(x) => Animal(x))\n"
        "forall x. (Penguin(x) => !Sparrow(x))\n"
        "forall x. (Bird(x) => !Fish(x))\n"
        "Penguin(Opus)\nBlack(Opus)\nLargeNose(Opus)\n");
    rwl::bench::PrintRow("E5.15-taxonomy",
                         "Opus swims via minimal class (penguins)", "0.9",
                         DegreeOfBelief(kb, "Swims(Opus)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(TS(x) ; EEJ(x) | FC(x))[x] ~= 0.02\n"
        "EEJ(Eric)\n");
    rwl::bench::PrintRow("E5.22-disjunctive",
                         "Tay-Sachs via disjunctive class", "0.02",
                         DegreeOfBelief(kb, "TS(Eric)", Options()));
  }
}

void BM_InheritanceSymbolic(benchmark::State& state) {
  KnowledgeBase kb = FlyKb();
  kb.AddParsed(
      "#(EasyToSee(x) ; Yellow(x))[x] ~=_3 1\n"
      "Penguin(Tweety)\nYellow(Tweety)");
  InferenceOptions options = Options();
  options.use_profile = false;
  options.use_maxent = false;
  options.use_exact_fallback = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DegreeOfBelief(kb, "EasyToSee(Tweety)", options));
  }
}
BENCHMARK(BM_InheritanceSymbolic);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
