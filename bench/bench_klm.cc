// Experiment family: Theorem 5.3 (KLM core properties of |∼rw) and the
// broken-arm disjunction example (Example 5.4).  The properties are
// verified numerically at finite N over random KBs, reporting the number of
// applicable instances and violations (paper: zero violations).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "bench/bench_util.h"
#include "src/defaults/klm.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"
#include "src/workload/generators.h"

namespace {

using rwl::logic::C;
using rwl::logic::Formula;
using rwl::logic::FormulaPtr;
using rwl::logic::P;
using rwl::logic::V;

void ReportTable() {
  rwl::bench::PrintHeader("KLM properties of |~rw (Theorem 5.3)");

  rwl::logic::Vocabulary vocab;
  for (const auto& name : rwl::workload::GeneratorPredicates(2)) {
    vocab.AddPredicate(name, 1);
  }
  for (const auto& name : rwl::workload::GeneratorConstants(2)) {
    vocab.AddConstant(name);
  }
  rwl::engines::ProfileEngine engine;
  rwl::defaults::KlmContext ctx;
  ctx.engine = &engine;
  ctx.vocabulary = &vocab;
  ctx.domain_size = 6;
  ctx.tolerances = rwl::semantics::ToleranceVector::Uniform(0.2);

  struct Tally {
    const char* name;
    int applicable = 0;
    int violations = 0;
  };
  Tally tallies[] = {{"And"},   {"Or"},          {"Cut"},
                     {"CM"},    {"RightWeaken"}, {"Reflexivity"},
                     {"Conditioning"}};

  std::mt19937 rng(4242);
  rwl::workload::UnaryKbParams params;
  params.num_predicates = 2;
  params.num_constants = 2;
  params.num_statements = 1;
  params.num_facts = 1;
  for (int trial = 0; trial < 300; ++trial) {
    FormulaPtr kb = rwl::workload::RandomUnaryKb(params, &rng);
    FormulaPtr kb2 = rwl::workload::RandomUnaryKb(params, &rng);
    FormulaPtr phi = rwl::workload::RandomQuery(params, &rng);
    FormulaPtr psi = rwl::workload::RandomQuery(params, &rng);
    FormulaPtr theta = rwl::workload::RandomQuery(params, &rng);
    rwl::defaults::KlmCheck checks[] = {
        rwl::defaults::CheckAnd(ctx, kb, phi, psi),
        rwl::defaults::CheckOr(ctx, kb, kb2, phi),
        rwl::defaults::CheckCut(ctx, kb, theta, phi),
        rwl::defaults::CheckCautiousMonotonicity(ctx, kb, theta, phi),
        rwl::defaults::CheckRightWeakeningMonotone(ctx, kb, phi, psi),
        rwl::defaults::CheckReflexivity(ctx, kb),
        rwl::defaults::CheckConditioningIdentity(ctx, kb, theta, phi),
    };
    for (int i = 0; i < 7; ++i) {
      if (!checks[i].applicable) continue;
      ++tallies[i].applicable;
      if (!checks[i].holds) ++tallies[i].violations;
    }
  }
  std::printf("  %-14s %-12s %-10s (300 random KBs at N=6)\n", "property",
              "applicable", "violations");
  for (const auto& tally : tallies) {
    std::printf("  %-14s %-12d %-10d paper: 0 violations\n", tally.name,
                tally.applicable, tally.violations);
  }

  // Example 5.4 (broken arm): exactly one usable arm, but no verdict which.
  rwl::logic::Vocabulary arm_vocab;
  for (const char* p :
       {"LeftUsable", "LeftBroken", "RightUsable", "RightBroken"}) {
    arm_vocab.AddPredicate(p, 1);
  }
  arm_vocab.AddConstant("Eric");
  rwl::logic::TermPtr x = V("x");
  FormulaPtr kb_arm = Formula::AndAll({
      rwl::logic::Default(Formula::True(), P("LeftUsable", x), {"x"}, 1),
      rwl::logic::ApproxEq(
          rwl::logic::CondProp(P("LeftUsable", x), P("LeftBroken", x), {"x"}),
          0.0, 2),
      rwl::logic::Default(Formula::True(), P("RightUsable", x), {"x"}, 3),
      rwl::logic::ApproxEq(rwl::logic::CondProp(P("RightUsable", x),
                                                P("RightBroken", x), {"x"}),
                           0.0, 4),
      Formula::Or(P("LeftBroken", C("Eric")), P("RightBroken", C("Eric"))),
  });
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.04);
  FormulaPtr left = P("LeftUsable", C("Eric"));
  FormulaPtr right = P("RightUsable", C("Eric"));
  FormulaPtr exactly_one = Formula::And(
      Formula::Or(left, right), Formula::Not(Formula::And(left, right)));
  auto one = engine.DegreeAt(arm_vocab, kb_arm, exactly_one, 40, tol);
  auto left_pr = engine.DegreeAt(arm_vocab, kb_arm, left, 40, tol);
  rwl::bench::PrintValueRow("E5.4-xor", "exactly one usable arm", "→ 1",
                            one.probability, "profile N=40");
  rwl::bench::PrintValueRow("E5.4-left", "but which one is open", "1/2",
                            left_pr.probability, "profile N=40");
}

void BM_KlmCheckSuite(benchmark::State& state) {
  rwl::logic::Vocabulary vocab;
  for (const auto& name : rwl::workload::GeneratorPredicates(2)) {
    vocab.AddPredicate(name, 1);
  }
  vocab.AddConstant("K0");
  rwl::engines::ProfileEngine engine;
  rwl::defaults::KlmContext ctx;
  ctx.engine = &engine;
  ctx.vocabulary = &vocab;
  ctx.domain_size = 6;
  ctx.tolerances = rwl::semantics::ToleranceVector::Uniform(0.2);
  FormulaPtr kb = rwl::logic::ApproxEq(
      rwl::logic::Prop(P("P0", V("x")), {"x"}), 0.5, 1);
  FormulaPtr phi = P("P0", C("K0"));
  FormulaPtr psi = P("P1", C("K0"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rwl::defaults::CheckAnd(ctx, kb, phi, psi));
  }
}
BENCHMARK(BM_KlmCheckSuite);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
