// Experiment family: the expressiveness showcases beyond unary vocabularies
// (Sections 3.4 / 4.3): the elephant–zookeeper defaults (Examples 4.4 and
// 5.12), quantified defaults (Examples 4.5 / 5.13), and the Morreau nested
// defaults (Examples 4.6 / 5.14).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

void ReportTable() {
  rwl::bench::PrintHeader("Non-unary and nested defaults (Sections 3.4/4.3)");

  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(Likes(x, y) ; Elephant(x) & Zookeeper(y))[x,y] ~=_1 1\n"
        "#(Likes(x, Fred) ; Elephant(x))[x] ~=_2 0\n"
        "Zookeeper(Fred)\n"
        "Elephant(Clyde)\n"
        "Zookeeper(Eric)\n");
    rwl::bench::PrintRow("E5.12-eric", "Clyde likes zookeeper Eric", "1",
                         DegreeOfBelief(kb, "Likes(Clyde, Eric)", Options()));
    rwl::bench::PrintRow("E5.12-fred", "Clyde likes Fred", "0",
                         DegreeOfBelief(kb, "Likes(Clyde, Fred)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(Tall(x) ; exists y. (Child(x, y) & Tall(y)))[x] ~=_1 1\n"
        "exists y. (Child(Alice, y) & Tall(y))\n");
    rwl::bench::PrintRow("E5.13-tall",
                         "Alice has a tall parent ⇒ Alice tall", "1",
                         DegreeOfBelief(kb, "Tall(Alice)", Options()));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed(
        "#(#(RisesLate(x, y) ; Day(y))[y] ~=_1 1 ; "
        "#(ToBedLate(x, y2) ; Day(y2))[y2] ~=_2 1)[x] ~=_3 1\n"
        "#(ToBedLate(Alice, y2) ; Day(y2))[y2] ~=_2 1\n");
    rwl::bench::PrintRow(
        "E5.14-nested", "Alice normally rises late (nested default)", "1",
        DegreeOfBelief(kb, "#(RisesLate(Alice, y) ; Day(y))[y] ~=_1 1",
                       Options()));
  }
}

void BM_NonUnarySymbolic(benchmark::State& state) {
  KnowledgeBase kb;
  kb.AddParsed(
      "#(Likes(x, y) ; Elephant(x) & Zookeeper(y))[x,y] ~=_1 1\n"
      "#(Likes(x, Fred) ; Elephant(x))[x] ~=_2 0\n"
      "Zookeeper(Fred)\nElephant(Clyde)\nZookeeper(Eric)\n");
  InferenceOptions options = Options();
  options.use_profile = false;
  options.use_maxent = false;
  options.use_exact_fallback = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DegreeOfBelief(kb, "Likes(Clyde, Eric)", options));
  }
}
BENCHMARK(BM_NonUnarySymbolic);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
