// Ablation: the random-worlds prior vs the random-propensities prior
// (Section 7.3 / BGHK92) on the learning scenarios the paper uses to
// motivate (and criticize) each.  DESIGN.md lists this as the "learning"
// ablation called out in the limitations discussion.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"

namespace {

using rwl::logic::C;
using rwl::logic::CondProp;
using rwl::logic::Formula;
using rwl::logic::FormulaPtr;
using rwl::logic::P;
using rwl::logic::Prop;
using rwl::logic::V;

rwl::engines::ProfileEngine Uniform() { return rwl::engines::ProfileEngine(); }

rwl::engines::ProfileEngine Propensities() {
  rwl::engines::ProfileEngine::Options options;
  options.prior = rwl::engines::Prior::kRandomPropensities;
  return rwl::engines::ProfileEngine(options);
}

void Row(const char* id, const char* what, const char* paper,
         const rwl::logic::Vocabulary& vocab, const FormulaPtr& kb,
         const FormulaPtr& query, int n) {
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);
  auto uniform_engine = Uniform();
  auto prop_engine = Propensities();
  auto rw = uniform_engine.DegreeAt(vocab, kb, query, n, tol);
  auto rp = prop_engine.DegreeAt(vocab, kb, query, n, tol);
  std::printf(
      "  [%-16s] %-42s rand-worlds=%-8.4f propensities=%-8.4f (%s)\n", id,
      what, rw.probability, rp.probability, paper);
}

void ReportTable() {
  rwl::bench::PrintHeader(
      "Prior ablation: random worlds vs random propensities (Section 7.3)");

  {
    // Learning from a sample: 90% of sampled birds fly.
    rwl::logic::Vocabulary vocab;
    vocab.AddPredicate("Fly", 1);
    vocab.AddPredicate("Bird", 1);
    vocab.AddPredicate("S", 1);
    vocab.AddConstant("Tweety");
    FormulaPtr kb = Formula::AndAll({
        rwl::logic::ApproxEq(
            CondProp(P("Fly", V("x")),
                     Formula::And(P("Bird", V("x")), P("S", V("x"))), {"x"}),
            0.9, 1),
        rwl::logic::ApproxGeq(
            Prop(Formula::And(P("Bird", V("x")), P("S", V("x"))), {"x"}),
            0.2, 2),
        P("Bird", C("Tweety")),
        Formula::Not(P("S", C("Tweety"))),
    });
    Row("sampling", "Pr(Fly) for an unsampled bird",
        "rw stays 1/2; propensities learn 0.9", vocab, kb,
        P("Fly", C("Tweety")), 24);
  }
  {
    // Overlearning from a universal.
    rwl::logic::Vocabulary vocab;
    vocab.AddPredicate("Tall", 1);
    vocab.AddPredicate("Giraffe", 1);
    vocab.AddConstant("Rock");
    FormulaPtr kb = Formula::AndAll({
        Formula::ForAll("x", Formula::Implies(P("Giraffe", V("x")),
                                              P("Tall", V("x")))),
        rwl::logic::ApproxGeq(Prop(P("Giraffe", V("x")), {"x"}), 0.3, 1),
        Formula::Not(P("Giraffe", C("Rock"))),
    });
    Row("overlearning", "Pr(Tall) for a known non-giraffe",
        "propensities overlearn (> 1/2)", vocab, kb, P("Tall", C("Rock")),
        20);
  }
  {
    // Direct inference is prior-robust.
    rwl::logic::Vocabulary vocab;
    vocab.AddPredicate("Hep", 1);
    vocab.AddPredicate("Jaun", 1);
    vocab.AddConstant("Eric");
    FormulaPtr kb = Formula::And(
        P("Jaun", C("Eric")),
        rwl::logic::ApproxEq(
            CondProp(P("Hep", V("x")), P("Jaun", V("x")), {"x"}), 0.8, 1));
    Row("direct-inf", "Pr(Hep(Eric)) under both priors", "0.8 under both",
        vocab, kb, P("Hep", C("Eric")), 48);
  }
}

void BM_PropensitiesEngine(benchmark::State& state) {
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("A", 1);
  vocab.AddPredicate("B", 1);
  vocab.AddConstant("K");
  FormulaPtr kb = Formula::And(
      rwl::logic::ApproxEq(CondProp(P("B", V("x")), P("A", V("x")), {"x"}),
                           0.7, 1),
      P("A", C("K")));
  FormulaPtr query = P("B", C("K"));
  auto engine = Propensities();
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(vocab, kb, query, n, tol));
  }
}
BENCHMARK(BM_PropensitiesEngine)->Arg(16)->Arg(48);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
