// Experiment family: default independence (Theorem 5.27 / Example 5.28)
// and the maxent counterexample where independence must NOT appear
// (Example 5.29).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;

InferenceOptions Options() {
  InferenceOptions options;
  options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
  options.limit.domain_sizes = {16, 32, 48};
  options.limit.tolerance_scales = {1.0, 0.5};
  return options;
}

KnowledgeBase JointKb() {
  KnowledgeBase kb;
  kb.AddParsed(
      "#(Hep(x) ; Jaun(x))[x] ~=_1 0.8\n"
      "Jaun(Eric)\n"
      "#(Over60(x) ; Patient(x))[x] ~=_5 0.4\n"
      "Patient(Eric)\n");
  return kb;
}

void ReportTable() {
  rwl::bench::PrintHeader("Independence (Theorem 5.27 / Examples 5.28-5.29)");
  {
    KnowledgeBase kb = JointKb();
    rwl::bench::PrintRow(
        "E5.28-product", "Pr(Hep ∧ Over60) = 0.8 × 0.4", "0.32",
        DegreeOfBelief(kb, "Hep(Eric) & Over60(Eric)", Options()));
    rwl::bench::PrintRow("E5.28-left", "Pr(Hep(Eric)) alone", "0.8",
                         DegreeOfBelief(kb, "Hep(Eric)", Options()));
    rwl::bench::PrintRow("E5.28-right", "Pr(Over60(Eric)) alone", "0.4",
                         DegreeOfBelief(kb, "Over60(Eric)", Options()));
  }
  {
    // Numeric confirmation of the product (no symbolic shortcut).
    KnowledgeBase kb = JointKb();
    InferenceOptions numeric = Options();
    numeric.use_symbolic = false;
    numeric.limit.domain_sizes = {16, 24};
    rwl::bench::PrintRow(
        "E5.28-numeric", "product confirmed by profile sweep", "0.32",
        DegreeOfBelief(kb, "Hep(Eric) & Over60(Eric)", numeric));
  }
  {
    // Example 5.29: Pr(Black(Clyde)) = 0.47, not 0.2 — no independence
    // assumption between Bird and Black.
    KnowledgeBase kb;
    kb.AddParsed(
        "#(Black(x) ; Bird(x))[x] ~=_1 0.2\n"
        "#(Bird(x))[x] ~=_2 0.1\n");
    kb.mutable_vocabulary().AddConstant("Clyde");
    rwl::bench::PrintRow("E5.29-maxent",
                         "Pr(Black(Clyde)): 0.1·0.2 + 0.9/2", "0.47",
                         DegreeOfBelief(kb, "Black(Clyde)", Options()));
  }
}

void BM_IndependenceSplit(benchmark::State& state) {
  KnowledgeBase kb = JointKb();
  InferenceOptions options = Options();
  options.use_profile = false;
  options.use_maxent = false;
  options.use_exact_fallback = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DegreeOfBelief(kb, "Hep(Eric) & Over60(Eric)", options));
  }
}
BENCHMARK(BM_IndependenceSplit);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
