// The whole paper corpus in one table: every fixture from
// src/fixtures/paper_kbs run through the public facade, paper vs measured.
// This is the single-screen summary of the reproduction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/fixtures/paper_kbs.h"

namespace {

using rwl::Answer;
using rwl::fixtures::PaperExample;

std::string PaperString(const PaperExample& e) {
  char buf[64];
  switch (e.expect) {
    case PaperExample::Expect::kPoint:
      std::snprintf(buf, sizeof(buf), "%.4f", e.value);
      return buf;
    case PaperExample::Expect::kInterval:
      std::snprintf(buf, sizeof(buf), "[%.2f, %.2f]", e.lo, e.hi);
      return buf;
    case PaperExample::Expect::kNonexistent:
      return "no limit";
    case PaperExample::Expect::kUndefined:
      return "inconsistent";
  }
  return "?";
}

void ReportTable() {
  rwl::bench::PrintHeader("Full paper corpus (src/fixtures)");
  int agreements = 0;
  int total = 0;
  for (const auto& example : rwl::fixtures::AllPaperExamples()) {
    rwl::KnowledgeBase kb;
    std::string error;
    if (!kb.AddParsed(example.kb, &error)) {
      std::printf("  [%s] PARSE ERROR: %s\n", example.id.c_str(),
                  error.c_str());
      continue;
    }
    for (const auto& constant : example.extra_constants) {
      kb.mutable_vocabulary().AddConstant(constant);
    }
    rwl::InferenceOptions options;
    options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.04);
    options.limit.domain_sizes = {16, 32, 48};
    options.limit.tolerance_scales = {1.0, 0.5};
    if (example.numeric_only) {
      options.use_symbolic = false;
      options.use_maxent = false;
      options.use_exact_fallback = false;
      options.limit.domain_sizes = {32, 64, 128};
      options.limit.tolerance_scales = {1.0};
    }
    Answer answer = rwl::DegreeOfBelief(kb, example.query, options);
    rwl::bench::PrintRow(example.id, example.description,
                         PaperString(example), answer);
    ++total;
    bool agrees = false;
    switch (example.expect) {
      case PaperExample::Expect::kPoint:
        agrees = (answer.status == Answer::Status::kPoint ||
                  answer.status == Answer::Status::kInterval) &&
                 std::abs(answer.lo - example.value) <= example.tolerance &&
                 std::abs(answer.hi - example.value) <= example.tolerance;
        break;
      case PaperExample::Expect::kInterval:
        agrees = (answer.status == Answer::Status::kPoint ||
                  answer.status == Answer::Status::kInterval) &&
                 answer.lo >= example.lo - example.tolerance &&
                 answer.hi <= example.hi + example.tolerance;
        break;
      case PaperExample::Expect::kNonexistent:
        agrees = answer.status == Answer::Status::kNonexistent;
        break;
      case PaperExample::Expect::kUndefined:
        agrees = answer.status == Answer::Status::kUndefined;
        break;
    }
    if (agrees) ++agreements;
  }
  std::printf("\n  corpus agreement: %d / %d\n", agreements, total);
}

void BM_FullCorpus(benchmark::State& state) {
  for (auto _ : state) {
    for (const auto& example : rwl::fixtures::AllPaperExamples()) {
      if (example.numeric_only) continue;  // keep the benchmark symbolic
      rwl::KnowledgeBase kb;
      kb.AddParsed(example.kb);
      for (const auto& constant : example.extra_constants) {
        kb.mutable_vocabulary().AddConstant(constant);
      }
      rwl::InferenceOptions options;
      options.use_profile = false;
      options.use_maxent = false;
      options.use_exact_fallback = false;
      benchmark::DoNotOptimize(
          rwl::DegreeOfBelief(kb, example.query, options));
    }
  }
}
BENCHMARK(BM_FullCorpus);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
