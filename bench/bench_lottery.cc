// Experiment family: the lottery paradox and unique names (Section 5.5):
// Pr(Winner(c)) = 1/K for known pool size K, → 0 qualitatively, yet
// Pr(∃ winner) = 1; Poole's partition is inconsistent; unique-names bias and
// Lifschitz's C1.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/engines/profile_engine.h"
#include "src/logic/builder.h"

namespace {

using rwl::Answer;
using rwl::DegreeOfBelief;
using rwl::InferenceOptions;
using rwl::KnowledgeBase;
using rwl::logic::C;
using rwl::logic::Formula;
using rwl::logic::FormulaPtr;
using rwl::logic::P;
using rwl::logic::V;

FormulaPtr LotteryKb() {
  return Formula::AndAll({
      rwl::logic::ExistsUnique("w", P("Winner", V("w"))),
      Formula::ForAll("x", Formula::Implies(P("Winner", V("x")),
                                            P("Ticket", V("x")))),
      P("Ticket", C("Eric")),
  });
}

void ReportTable() {
  rwl::bench::PrintHeader("Lottery paradox & unique names (Section 5.5)");

  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("Winner", 1);
  vocab.AddPredicate("Ticket", 1);
  vocab.AddConstant("Eric");
  rwl::engines::ProfileEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);

  std::printf("  Known pool size K (at N = 8): Pr(Winner(Eric)) = 1/K\n");
  for (int k : {2, 3, 4}) {
    FormulaPtr kb = Formula::And(
        LotteryKb(), rwl::logic::ExactlyN(k, "t", P("Ticket", V("t"))));
    auto r = engine.DegreeAt(vocab, kb, P("Winner", C("Eric")), 8, tol);
    char id[32], paper[32];
    std::snprintf(id, sizeof(id), "lottery-K=%d", k);
    std::snprintf(paper, sizeof(paper), "%.4f", 1.0 / k);
    rwl::bench::PrintValueRow(id, "Pr(Winner(Eric)) with K tickets", paper,
                              r.probability, "profile N=8");
  }

  std::printf("\n  Qualitative lottery: Pr(Winner(Eric)) vs N (→ 0), while "
              "Pr(∃ winner) = 1\n");
  for (int n : {8, 16, 32, 64}) {
    auto win = engine.DegreeAt(vocab, LotteryKb(), P("Winner", C("Eric")), n,
                               tol);
    auto someone = engine.DegreeAt(vocab, LotteryKb(),
                                   Formula::Exists("x", P("Winner", V("x"))),
                                   n, tol);
    std::printf("    N=%-4d Pr(Winner(Eric))=%-9.5f Pr(exists winner)=%.3f\n",
                n, win.probability, someone.probability);
  }

  {
    KnowledgeBase poole;
    poole.AddParsed(
        "forall x. (Bird(x) <=> (Emu(x) | Penguin(x)))\n"
        "forall x. !(Emu(x) & Penguin(x))\n"
        "#(Emu(x) ; Bird(x))[x] ~=_1 0\n"
        "#(Penguin(x) ; Bird(x))[x] ~=_2 0\n"
        "0.2 <~_3 #(Bird(x))[x]\n");
    InferenceOptions options;
    options.tolerances = rwl::semantics::ToleranceVector::Uniform(0.05);
    options.limit.domain_sizes = {12, 20};
    options.limit.tolerance_scales = {1.0};
    options.use_maxent = false;
    options.use_exact_fallback = false;
    rwl::bench::PrintRow("Poole-partition",
                         "all-exceptional partition of birds",
                         "inconsistent",
                         DegreeOfBelief(poole, "Bird(Tweety)", options));
  }
  {
    KnowledgeBase kb;
    kb.mutable_vocabulary().AddConstant("C1");
    kb.mutable_vocabulary().AddConstant("C2");
    InferenceOptions options;
    options.limit.domain_sizes = {16, 32, 64, 128};
    rwl::bench::PrintRow("unique-names", "Pr(C1 = C2 | true)", "0",
                         DegreeOfBelief(kb, "C1 = C2", options));
  }
  {
    KnowledgeBase kb;
    kb.AddParsed("Ray = Reiter\nDrew = McDermott\n");
    InferenceOptions options;
    options.limit.domain_sizes = {16, 32, 64, 128};
    rwl::bench::PrintRow("Lifschitz-C1", "Pr(Ray ≠ Drew)", "1",
                         DegreeOfBelief(kb, "Ray != Drew", options));
  }
}

void BM_LotteryProfile(benchmark::State& state) {
  rwl::logic::Vocabulary vocab;
  vocab.AddPredicate("Winner", 1);
  vocab.AddPredicate("Ticket", 1);
  vocab.AddConstant("Eric");
  rwl::engines::ProfileEngine engine;
  auto tol = rwl::semantics::ToleranceVector::Uniform(0.05);
  FormulaPtr kb = LotteryKb();
  FormulaPtr query = P("Winner", C("Eric"));
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.DegreeAt(vocab, kb, query, n, tol));
  }
}
BENCHMARK(BM_LotteryProfile)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  ReportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
