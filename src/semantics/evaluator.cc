#include "src/semantics/evaluator.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

namespace rwl::semantics {
namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "rwl evaluator error: %s\n", message.c_str());
  std::abort();
}

// Counts tuples over `vars` satisfying body (and cond, when given).
// Returns {count_body_and_cond, count_cond}; for unconditional proportions
// cond is null and count_cond is N^k.
struct Counts {
  int64_t body = 0;
  int64_t cond = 0;
};

// Shadow-binding save/restore and odometer scratch, reused across
// CountTuples calls instead of per-call vector construction.  The buffers
// are used as stacks (base offsets captured per call) because nested
// proportions re-enter CountTuples through Evaluate; thread_local keeps the
// worker pools safe.  The saved names point into the interned Expr's vars
// list, which outlives the evaluation.
struct ShadowScratch {
  struct SavedBinding {
    const std::string* name;
    std::optional<int> old;
  };
  std::vector<SavedBinding> saved;
  std::vector<int> tuple;
};

thread_local ShadowScratch shadow_scratch;

Counts CountTuples(const logic::ExprPtr& e, const World& world,
                   const ToleranceVector& tolerances, Valuation* valuation) {
  const auto& vars = e->vars();
  const int n = world.domain_size();
  Counts counts;

  ShadowScratch& scratch = shadow_scratch;
  const size_t saved_base = scratch.saved.size();
  const size_t tuple_base = scratch.tuple.size();

  // Save shadowed bindings.
  for (const auto& v : vars) {
    auto it = valuation->find(v);
    scratch.saved.push_back({&v, it == valuation->end()
                                     ? std::nullopt
                                     : std::optional<int>(it->second)});
  }

  scratch.tuple.resize(tuple_base + vars.size(), 0);
  while (true) {
    for (size_t i = 0; i < vars.size(); ++i) {
      (*valuation)[vars[i]] = scratch.tuple[tuple_base + i];
    }
    bool cond_holds = true;
    if (e->cond() != nullptr) {
      cond_holds = Evaluate(e->cond(), world, tolerances, valuation);
    }
    if (cond_holds) {
      ++counts.cond;
      if (Evaluate(e->body(), world, tolerances, valuation)) ++counts.body;
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < vars.size(); ++i) {
      if (++scratch.tuple[tuple_base + i] < n) break;
      scratch.tuple[tuple_base + i] = 0;
    }
    if (i == vars.size()) break;
  }

  // Restore shadowed bindings and release the scratch frames.
  for (size_t i = 0; i < vars.size(); ++i) {
    const ShadowScratch::SavedBinding& binding = scratch.saved[saved_base + i];
    if (binding.old.has_value()) {
      (*valuation)[*binding.name] = *binding.old;
    } else {
      valuation->erase(*binding.name);
    }
  }
  scratch.saved.resize(saved_base);
  scratch.tuple.resize(tuple_base);
  return counts;
}

}  // namespace

int EvaluateTerm(const logic::TermPtr& t, const World& world,
                 Valuation* valuation) {
  if (t->is_variable()) {
    auto it = valuation->find(t->name());
    if (it == valuation->end()) Die("unbound variable " + t->name());
    return it->second;
  }
  auto sym = world.vocabulary().FindFunction(t->name());
  if (!sym.has_value()) Die("unknown function symbol " + t->name());
  std::vector<int> args;
  args.reserve(t->args().size());
  for (const auto& a : t->args()) {
    args.push_back(EvaluateTerm(a, world, valuation));
  }
  return world.Apply(sym->id, args);
}

ExprValue EvaluateExpr(const logic::ExprPtr& e, const World& world,
                       const ToleranceVector& tolerances,
                       Valuation* valuation) {
  using logic::Expr;
  switch (e->kind()) {
    case Expr::Kind::kConstant:
      return {e->value(), true};
    case Expr::Kind::kProportion: {
      Counts c = CountTuples(e, world, tolerances, valuation);
      double total = 1.0;
      for (size_t i = 0; i < e->vars().size(); ++i) {
        total *= world.domain_size();
      }
      return {static_cast<double>(c.body) / total, true};
    }
    case Expr::Kind::kConditional: {
      Counts c = CountTuples(e, world, tolerances, valuation);
      if (c.cond == 0) return {0.0, false};
      return {static_cast<double>(c.body) / static_cast<double>(c.cond),
              true};
    }
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul: {
      ExprValue lhs = EvaluateExpr(e->lhs(), world, tolerances, valuation);
      ExprValue rhs = EvaluateExpr(e->rhs(), world, tolerances, valuation);
      ExprValue out;
      out.defined = lhs.defined && rhs.defined;
      switch (e->kind()) {
        case Expr::Kind::kAdd:
          out.value = lhs.value + rhs.value;
          break;
        case Expr::Kind::kSub:
          out.value = lhs.value - rhs.value;
          break;
        default:
          out.value = lhs.value * rhs.value;
          break;
      }
      return out;
    }
  }
  Die("unreachable expression kind");
}

bool CompareValues(double lhs, logic::CompareOp op, double rhs, double tau) {
  using logic::CompareOp;
  switch (op) {
    case CompareOp::kApproxEq:
      return lhs - rhs <= tau && rhs - lhs <= tau;
    case CompareOp::kApproxLeq:
      return lhs - rhs <= tau;
    case CompareOp::kApproxGeq:
      return rhs - lhs <= tau;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kLeq:
      return lhs <= rhs;
    case CompareOp::kGeq:
      return lhs >= rhs;
  }
  return false;
}

bool Evaluate(const logic::FormulaPtr& f, const World& world,
              const ToleranceVector& tolerances, Valuation* valuation) {
  using logic::Formula;
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      return true;
    case Formula::Kind::kFalse:
      return false;
    case Formula::Kind::kAtom: {
      auto sym = world.vocabulary().FindPredicate(f->predicate());
      if (!sym.has_value()) Die("unknown predicate " + f->predicate());
      std::vector<int> args;
      args.reserve(f->terms().size());
      for (const auto& t : f->terms()) {
        args.push_back(EvaluateTerm(t, world, valuation));
      }
      return world.Holds(sym->id, args);
    }
    case Formula::Kind::kEqual:
      return EvaluateTerm(f->terms()[0], world, valuation) ==
             EvaluateTerm(f->terms()[1], world, valuation);
    case Formula::Kind::kNot:
      return !Evaluate(f->body(), world, tolerances, valuation);
    case Formula::Kind::kAnd:
      return Evaluate(f->left(), world, tolerances, valuation) &&
             Evaluate(f->right(), world, tolerances, valuation);
    case Formula::Kind::kOr:
      return Evaluate(f->left(), world, tolerances, valuation) ||
             Evaluate(f->right(), world, tolerances, valuation);
    case Formula::Kind::kImplies:
      return !Evaluate(f->left(), world, tolerances, valuation) ||
             Evaluate(f->right(), world, tolerances, valuation);
    case Formula::Kind::kIff:
      return Evaluate(f->left(), world, tolerances, valuation) ==
             Evaluate(f->right(), world, tolerances, valuation);
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists: {
      bool is_forall = f->kind() == Formula::Kind::kForAll;
      auto it = valuation->find(f->var());
      std::optional<int> saved = it == valuation->end()
                                     ? std::nullopt
                                     : std::optional<int>(it->second);
      bool result = is_forall;
      for (int d = 0; d < world.domain_size(); ++d) {
        (*valuation)[f->var()] = d;
        bool holds = Evaluate(f->body(), world, tolerances, valuation);
        if (is_forall && !holds) {
          result = false;
          break;
        }
        if (!is_forall && holds) {
          result = true;
          break;
        }
      }
      if (saved.has_value()) {
        (*valuation)[f->var()] = *saved;
      } else {
        valuation->erase(f->var());
      }
      return result;
    }
    case Formula::Kind::kCompare: {
      ExprValue lhs = EvaluateExpr(f->expr_left(), world, tolerances,
                                   valuation);
      ExprValue rhs = EvaluateExpr(f->expr_right(), world, tolerances,
                                   valuation);
      // 0/0 convention: the comparison holds (see header).
      if (!lhs.defined || !rhs.defined) return true;
      double tau = tolerances.Get(f->tolerance_index());
      return CompareValues(lhs.value, f->compare_op(), rhs.value, tau);
    }
  }
  Die("unreachable formula kind");
}

bool Evaluate(const logic::FormulaPtr& f, const World& world,
              const ToleranceVector& tolerances) {
  Valuation valuation;
  return Evaluate(f, world, tolerances, &valuation);
}

}  // namespace rwl::semantics
