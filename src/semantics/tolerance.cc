#include "src/semantics/tolerance.h"

namespace rwl::semantics {

ToleranceVector ToleranceVector::Uniform(double value) {
  return ToleranceVector(value);
}

double ToleranceVector::Get(int index) const {
  auto it = overrides_.find(index);
  if (it != overrides_.end()) return it->second;
  return default_value_;
}

void ToleranceVector::Set(int index, double value) {
  overrides_[index] = value;
}

ToleranceVector ToleranceVector::Scaled(double factor) const {
  ToleranceVector out(default_value_ * factor);
  for (const auto& [index, value] : overrides_) {
    out.overrides_[index] = value * factor;
  }
  return out;
}

}  // namespace rwl::semantics
