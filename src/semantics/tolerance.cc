#include "src/semantics/tolerance.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <vector>

namespace rwl::semantics {
namespace {

void AppendBits(double value, std::string* out) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(value)));
  out->append(buf);
}

}  // namespace

ToleranceVector ToleranceVector::Uniform(double value) {
  return ToleranceVector(value);
}

double ToleranceVector::Get(int index) const {
  auto it = overrides_.find(index);
  if (it != overrides_.end()) return it->second;
  return default_value_;
}

void ToleranceVector::Set(int index, double value) {
  overrides_[index] = value;
}

ToleranceVector ToleranceVector::Scaled(double factor) const {
  ToleranceVector out(default_value_ * factor);
  for (const auto& [index, value] : overrides_) {
    out.overrides_[index] = value * factor;
  }
  return out;
}

std::string ToleranceVector::CacheKey() const {
  std::string key;
  AppendBits(default_value_, &key);
  std::vector<std::pair<int, double>> sorted(overrides_.begin(),
                                             overrides_.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [index, value] : sorted) {
    // Overrides equal to the default do not change Get anywhere.
    if (value == default_value_) continue;
    key += ':';
    key += std::to_string(index);
    key += '=';
    AppendBits(value, &key);
  }
  return key;
}

}  // namespace rwl::semantics
