// Non-recursive stack VM for compiled L≈ programs (bytecode.h).
//
// One RunProgram call evaluates a program in one world.  All scratch state
// lives in an EvalFrame whose vectors are sized once by Prepare from the
// program's compile-time bounds — the inner world loops of the engines run
// with zero allocations.  Frames are not shared between threads; each
// worker prepares its own.
//
// RunProgram is bit-identical to semantics::Evaluate on every world (the
// tree-walker is kept as the reference oracle; compiled_vm_test and the
// fuzzer's vm check enforce the equivalence).  Precondition: the world's
// domain is non-empty, as for the tree-walker.
//
// Unary predicates are read from the world's packed bitset columns
// (world.h): fused unary atoms test single bits and the fused kPropUnary
// proportion scans run as popcount-over-words kernels.
// __builtin_popcountll is used by default; building with
// -DRWL_SCALAR_KERNELS selects a portable scalar popcount that is
// bit-identical by construction (CI proves it against the full suite).
#ifndef RWL_SEMANTICS_VM_H_
#define RWL_SEMANTICS_VM_H_

#include <cstdint>
#include <vector>

#include "src/semantics/bytecode.h"
#include "src/semantics/tolerance.h"
#include "src/semantics/world.h"

namespace rwl::semantics {

struct EvalFrame {
  struct Counts {
    int64_t body = 0;
    int64_t cond = 0;
  };

  std::vector<int> slots;    // variable frame (dense, compile-time indexed)
  std::vector<int> ints;     // term stack
  std::vector<Value> vals;   // formula / expression stack
  std::vector<Counts> counts;  // in-flight proportion counters
  std::vector<double> taus;  // pre-resolved tolerances, one per tau slot

  // Cached raw table pointers for the world most recently run against.
  // Cell values mutate between runs (odometer / sampling), but the tables
  // never resize, so the pointers stay valid for the lifetime of the World
  // object; Run rebinds automatically when it sees a different world.
  const World* bound_world = nullptr;
  std::vector<const uint64_t*> packed_tables;  // unary predicate columns
  std::vector<const uint8_t*> pred_tables;     // arity != 1 byte tables
  std::vector<const int*> func_tables;

  // Sizes the frame for `program` and resolves its tolerance slots.  Call
  // once per (program, tolerance vector); Run may then be called for any
  // number of worlds without allocating.
  void Prepare(const Program& program, const ToleranceVector& tolerances);
};

// Executes the program in `world`; returns the root formula's truth value.
// The frame must have been Prepared for this program.
bool RunProgram(const Program& program, const World& world, EvalFrame* frame);

// ---- batch evaluation over a block of odometer worlds ----

struct BlockCounts {
  int64_t first = 0;  // worlds where `first` held
  int64_t both = 0;   // worlds where `first` and `second` both held
};

// Evaluates `first` (and, in the worlds where it holds, `second`) across
// `count` consecutive enumeration worlds starting at the world's current
// cells, advancing the odometer's packed columns in place between worlds
// (no per-world pointer rebinding).  `second` may be null (only `first` is
// counted).  `count < 0` runs until the odometer wraps.  The world is left
// positioned after the block, and the counts are exactly those of the
// equivalent per-world RunProgram / AdvanceOdometer loop.
BlockCounts RunProgramBlock(const Program& first, const Program* second,
                            World* world, EvalFrame* first_frame,
                            EvalFrame* second_frame, int64_t count);

// ---- counting-loop collapse (aggregate-only programs) ----

// Predicate-cardinality view of a class of worlds: how many domain
// elements satisfy each unary predicate, and each pairwise conjunction.
// Programs that pass AnalyzeAggregate (compile.h) only observe a world
// through these statistics, so the exact engine can run them over counts
// directly — never materializing the worlds.
struct UnaryCountsView {
  int domain_size = 0;
  int num_predicates = 0;
  const int64_t* single = nullptr;  // [num_predicates]
  // [num_predicates * num_predicates]: pair[a * num_predicates + b] is the
  // number of elements satisfying both a and b (symmetric).
  const int64_t* pair = nullptr;
};

// Executes an aggregate-only program against predicate cardinalities;
// kPropUnary reads the counts and every other instruction behaves exactly
// as in RunProgram, so the result is bit-identical to running the program
// in any world realizing those counts.  Precondition: the program passed
// AnalyzeAggregate (a non-aggregate op returns false defensively).
bool RunProgramOnCounts(const Program& program, const UnaryCountsView& counts,
                        EvalFrame* frame);

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_VM_H_
