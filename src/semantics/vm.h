// Non-recursive stack VM for compiled L≈ programs (bytecode.h).
//
// One RunProgram call evaluates a program in one world.  All scratch state
// lives in an EvalFrame whose vectors are sized once by Prepare from the
// program's compile-time bounds — the inner world loops of the engines run
// with zero allocations.  Frames are not shared between threads; each
// worker prepares its own.
//
// RunProgram is bit-identical to semantics::Evaluate on every world (the
// tree-walker is kept as the reference oracle; compiled_vm_test and the
// fuzzer's vm check enforce the equivalence).  Precondition: the world's
// domain is non-empty, as for the tree-walker.
#ifndef RWL_SEMANTICS_VM_H_
#define RWL_SEMANTICS_VM_H_

#include <cstdint>
#include <vector>

#include "src/semantics/bytecode.h"
#include "src/semantics/tolerance.h"
#include "src/semantics/world.h"

namespace rwl::semantics {

struct EvalFrame {
  struct Counts {
    int64_t body = 0;
    int64_t cond = 0;
  };

  std::vector<int> slots;    // variable frame (dense, compile-time indexed)
  std::vector<int> ints;     // term stack
  std::vector<Value> vals;   // formula / expression stack
  std::vector<Counts> counts;  // in-flight proportion counters
  std::vector<double> taus;  // pre-resolved tolerances, one per tau slot

  // Cached raw table pointers for the world most recently run against.
  // Cell values mutate between runs (odometer / sampling), but the tables
  // never resize, so the pointers stay valid for the lifetime of the World
  // object; Run rebinds automatically when it sees a different world.
  const World* bound_world = nullptr;
  std::vector<const uint8_t*> pred_tables;
  std::vector<const int*> func_tables;

  // Sizes the frame for `program` and resolves its tolerance slots.  Call
  // once per (program, tolerance vector); Run may then be called for any
  // number of worlds without allocating.
  void Prepare(const Program& program, const ToleranceVector& tolerances);
};

// Executes the program in `world`; returns the root formula's truth value.
// The frame must have been Prepared for this program.
bool RunProgram(const Program& program, const World& world, EvalFrame* frame);

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_VM_H_
