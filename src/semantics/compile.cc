#include "src/semantics/compile.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rwl::semantics {
namespace {

using logic::Expr;
using logic::ExprPtr;
using logic::Formula;
using logic::FormulaPtr;
using logic::TermPtr;

class Compiler {
 public:
  explicit Compiler(const logic::Vocabulary& vocabulary)
      : vocabulary_(vocabulary) {}

  CompiledFormula Run(const FormulaPtr& f) {
    if (f == nullptr) {
      return Fail("null formula");
    }
    if (!CompileBool(f)) return {nullptr, error_};
    Emit(Op::kHalt);
    auto program = std::make_shared<Program>(std::move(program_));
    return {std::move(program), ""};
  }

 private:
  CompiledFormula Fail(std::string message) {
    return {nullptr, std::move(message)};
  }

  bool Error(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  int Emit(Op op, int32_t a = 0, int32_t b = 0, int32_t c = 0) {
    program_.code.push_back(Instruction{op, a, b, c});
    return static_cast<int>(program_.code.size()) - 1;
  }

  int Here() const { return static_cast<int>(program_.code.size()); }

  // ---- stack accounting (exact bounds, so the VM never reallocates) ----

  void PushVal(int n = 1) {
    val_depth_ += n;
    program_.max_values = std::max(program_.max_values, val_depth_);
  }
  void PopVal(int n = 1) { val_depth_ -= n; }
  void PushInt(int n = 1) {
    int_depth_ += n;
    program_.max_ints = std::max(program_.max_ints, int_depth_);
  }
  void PopInt(int n = 1) { int_depth_ -= n; }

  // ---- slot-scoped variable environment ----

  int BindSlot(const std::string& name) {
    int slot = next_slot_++;
    program_.num_slots = std::max(program_.num_slots, next_slot_);
    scopes_[name].push_back(slot);
    return slot;
  }

  void ReleaseSlot(const std::string& name) {
    scopes_[name].pop_back();
    --next_slot_;
  }

  int TauSlot(int tolerance_index) {
    auto& indices = program_.tolerance_indices;
    for (size_t i = 0; i < indices.size(); ++i) {
      if (indices[i] == tolerance_index) return static_cast<int>(i);
    }
    indices.push_back(tolerance_index);
    return static_cast<int>(indices.size()) - 1;
  }

  int ConstSlot(double value) {
    program_.constants.push_back(value);
    return static_cast<int>(program_.constants.size()) - 1;
  }

  // ---- terms → int stack ----

  bool CompileTerm(const TermPtr& t) {
    if (t->is_variable()) {
      auto it = scopes_.find(t->name());
      if (it == scopes_.end() || it->second.empty()) {
        return Error("unbound variable " + t->name());
      }
      Emit(Op::kLoadSlot, it->second.back());
      PushInt();
      return true;
    }
    auto sym = vocabulary_.FindFunction(t->name());
    if (!sym.has_value()) {
      return Error("unknown function symbol " + t->name());
    }
    if (sym->arity != static_cast<int>(t->args().size())) {
      return Error("function " + t->name() + " expects " +
                   std::to_string(sym->arity) + " argument(s), got " +
                   std::to_string(t->args().size()));
    }
    for (const auto& a : t->args()) {
      if (!CompileTerm(a)) return false;
    }
    Emit(Op::kApplyFunc, sym->id, sym->arity);
    PopInt(sym->arity);
    PushInt();
    return true;
  }

  // Resolves a variable occurrence to its slot, or -1 when unbound.
  int SlotOf(const std::string& name) const {
    auto it = scopes_.find(name);
    if (it == scopes_.end() || it->second.empty()) return -1;
    return it->second.back();
  }

  // ---- proportion loop body, shared by ||ψ||_X and ||ψ | θ||_X ----

  // True when `f` is a unary atom P(v) on exactly the variable `var`;
  // *predicate receives P's id.  The shape behind every fused
  // single-variable proportion scan.
  bool IsUnaryAtomOn(const FormulaPtr& f, const std::string& var,
                     int* predicate) const {
    if (f == nullptr || f->kind() != Formula::Kind::kAtom) return false;
    if (f->terms().size() != 1) return false;
    const TermPtr& t = f->terms()[0];
    if (!t->is_variable() || t->name() != var) return false;
    auto sym = vocabulary_.FindPredicate(f->predicate());
    if (!sym.has_value() || sym->arity != 1) return false;
    *predicate = sym->id;
    return true;
  }

  bool CompileProportionLoop(const ExprPtr& e) {
    const auto& vars = e->vars();
    const int k = static_cast<int>(vars.size());

    // Fused fast path for the dominant statistical-KB shape: a
    // single-variable proportion over plain unary atoms turns into one
    // linear scan of the predicate tables (no per-tuple dispatch).  The
    // counting — and hence the resulting double — is identical to the
    // generic loop.
    if (k == 1) {
      int body_pred = -1;
      int cond_pred = -1;
      const bool body_fusable = IsUnaryAtomOn(e->body(), vars[0], &body_pred);
      const bool cond_fusable =
          e->cond() == nullptr || IsUnaryAtomOn(e->cond(), vars[0], &cond_pred);
      if (body_fusable && cond_fusable) {
        Emit(Op::kPropUnary, body_pred, e->cond() == nullptr ? -1 : cond_pred);
        PushVal();
        return true;
      }
    }
    // Tuple slots are contiguous; the odometer advances the first variable
    // fastest, matching the tree-walker's tuple order.  Binding in list
    // order makes a repeated variable resolve to its last occurrence,
    // which is the occurrence the walker's valuation writes last.
    const int base = next_slot_;
    for (const auto& v : vars) BindSlot(v);

    Emit(Op::kPropInit, base, k);
    counts_depth_ += 1;
    program_.max_counts = std::max(program_.max_counts, counts_depth_);

    const int loop = Here();
    int skip_patch = -1;
    if (e->cond() != nullptr) {
      if (!CompileBool(e->cond())) return false;
      skip_patch = Emit(Op::kCondCheck);
      PopVal();
    } else {
      Emit(Op::kCondTrue);
    }
    if (!CompileBool(e->body())) return false;
    Emit(Op::kBodyCount);
    PopVal();
    if (skip_patch >= 0) program_.code[skip_patch].a = Here();
    Emit(Op::kPropStep, base, k, loop);

    Emit(e->cond() != nullptr ? Op::kPropEndCond : Op::kPropEndTotal, k);
    counts_depth_ -= 1;
    PushVal();

    for (auto it = vars.rbegin(); it != vars.rend(); ++it) ReleaseSlot(*it);
    return true;
  }

  // True when the expression is world-independent; *value receives the
  // folded constant.  Proportions always depend on the world, so only
  // constants and their sums/products fold.
  bool FoldConstant(const ExprPtr& e, double* value) const {
    switch (e->kind()) {
      case Expr::Kind::kConstant:
        *value = e->value();
        return true;
      case Expr::Kind::kAdd:
      case Expr::Kind::kSub:
      case Expr::Kind::kMul: {
        double lhs = 0.0;
        double rhs = 0.0;
        if (!FoldConstant(e->lhs(), &lhs) || !FoldConstant(e->rhs(), &rhs)) {
          return false;
        }
        *value = e->kind() == Expr::Kind::kAdd   ? lhs + rhs
                 : e->kind() == Expr::Kind::kSub ? lhs - rhs
                                                 : lhs * rhs;
        return true;
      }
      default:
        return false;
    }
  }

  // ---- proportion expressions → value stack ----

  bool CompileExpr(const ExprPtr& e) {
    double folded = 0.0;
    if (FoldConstant(e, &folded)) {
      Emit(Op::kPushConst, ConstSlot(folded));
      PushVal();
      return true;
    }
    switch (e->kind()) {
      case Expr::Kind::kConstant:
        // Handled by the fold above.
        return Error("unreachable constant");
      case Expr::Kind::kProportion:
      case Expr::Kind::kConditional:
        return CompileProportionLoop(e);
      case Expr::Kind::kAdd:
      case Expr::Kind::kSub:
      case Expr::Kind::kMul: {
        if (!CompileExpr(e->lhs()) || !CompileExpr(e->rhs())) return false;
        Emit(e->kind() == Expr::Kind::kAdd   ? Op::kAdd
             : e->kind() == Expr::Kind::kSub ? Op::kSub
                                             : Op::kMul);
        PopVal(2);
        PushVal();
        return true;
      }
    }
    return Error("unreachable expression kind");
  }

  // ---- formulas → boolean on the value stack ----

  bool CompileBool(const FormulaPtr& f) {
    switch (f->kind()) {
      case Formula::Kind::kTrue:
      case Formula::Kind::kFalse: {
        Emit(Op::kPushBool, f->kind() == Formula::Kind::kTrue ? 1 : 0);
        PushVal();
        return true;
      }
      case Formula::Kind::kAtom: {
        auto sym = vocabulary_.FindPredicate(f->predicate());
        if (!sym.has_value()) {
          return Error("unknown predicate " + f->predicate());
        }
        if (sym->arity != static_cast<int>(f->terms().size())) {
          return Error("predicate " + f->predicate() + " expects " +
                       std::to_string(sym->arity) + " argument(s), got " +
                       std::to_string(f->terms().size()));
        }
        // Fused forms for atoms whose arguments are plain bound variables
        // (the common case inside quantifier and proportion loops).
        if (sym->arity == 1 && f->terms()[0]->is_variable()) {
          int slot = SlotOf(f->terms()[0]->name());
          if (slot < 0) {
            return Error("unbound variable " + f->terms()[0]->name());
          }
          Emit(Op::kPred1, sym->id, slot);
          PushVal();
          return true;
        }
        if (sym->arity == 2 && f->terms()[0]->is_variable() &&
            f->terms()[1]->is_variable()) {
          int slot0 = SlotOf(f->terms()[0]->name());
          int slot1 = SlotOf(f->terms()[1]->name());
          if (slot0 < 0) {
            return Error("unbound variable " + f->terms()[0]->name());
          }
          if (slot1 < 0) {
            return Error("unbound variable " + f->terms()[1]->name());
          }
          Emit(Op::kPred2, sym->id, slot0, slot1);
          PushVal();
          return true;
        }
        for (const auto& t : f->terms()) {
          if (!CompileTerm(t)) return false;
        }
        Emit(Op::kPred, sym->id, sym->arity);
        PopInt(sym->arity);
        PushVal();
        return true;
      }
      case Formula::Kind::kEqual: {
        if (!CompileTerm(f->terms()[0]) || !CompileTerm(f->terms()[1])) {
          return false;
        }
        Emit(Op::kTermEq);
        PopInt(2);
        PushVal();
        return true;
      }
      case Formula::Kind::kNot: {
        if (!CompileBool(f->body())) return false;
        Emit(Op::kNot);
        return true;
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr:
      case Formula::Kind::kImplies: {
        // Short-circuit lowering.  And: a false lhs decides the result;
        // Or / Implies: a true / false lhs decides it as true.
        const bool decide_on_true = f->kind() == Formula::Kind::kOr;
        const int decided = f->kind() == Formula::Kind::kAnd ? 0 : 1;
        if (!CompileBool(f->left())) return false;
        int exit_patch =
            Emit(decide_on_true ? Op::kJumpIfTrue : Op::kJumpIfFalse);
        PopVal();
        if (!CompileBool(f->right())) return false;
        int end_patch = Emit(Op::kJump);
        program_.code[exit_patch].a = Here();
        // The decided branch re-pushes its constant; depth already counted
        // by the rhs push above.
        Emit(Op::kPushBool, decided);
        program_.code[end_patch].a = Here();
        return true;
      }
      case Formula::Kind::kIff: {
        if (!CompileBool(f->left()) || !CompileBool(f->right())) return false;
        Emit(Op::kBoolEq);
        PopVal(2);
        PushVal();
        return true;
      }
      case Formula::Kind::kForAll:
      case Formula::Kind::kExists: {
        const bool is_forall = f->kind() == Formula::Kind::kForAll;
        const int slot = BindSlot(f->var());
        int init = Emit(Op::kQuantInit, slot, 0, is_forall ? 1 : 0);
        const int loop = Here();
        if (!CompileBool(f->body())) return false;
        Emit(Op::kQuantStep, slot, loop, is_forall ? 1 : 0);
        program_.code[init].b = Here();
        // kQuantStep pops the body bool and pushes the result: net zero
        // against the body's push.
        ReleaseSlot(f->var());
        return true;
      }
      case Formula::Kind::kCompare: {
        if (!CompileExpr(f->expr_left()) || !CompileExpr(f->expr_right())) {
          return false;
        }
        Emit(Op::kCompare, static_cast<int32_t>(f->compare_op()),
             TauSlot(f->tolerance_index()));
        PopVal(2);
        PushVal();
        return true;
      }
    }
    return Error("unreachable formula kind");
  }

  const logic::Vocabulary& vocabulary_;
  Program program_;
  std::string error_;
  std::unordered_map<std::string, std::vector<int>> scopes_;
  int next_slot_ = 0;
  int val_depth_ = 0;
  int int_depth_ = 0;
  int counts_depth_ = 0;
};

}  // namespace

CompiledFormula CompileFormula(const logic::FormulaPtr& f,
                               const logic::Vocabulary& vocabulary) {
  Compiler compiler(vocabulary);
  return compiler.Run(f);
}

ProgramStats StatsOf(const CompiledFormula& compiled) {
  ProgramStats stats;
  if (!compiled.ok()) return stats;
  stats.ok = true;
  stats.length = static_cast<int>(compiled.program->code.size());
  stats.num_slots = compiled.program->num_slots;
  stats.max_stack = compiled.program->max_values;
  return stats;
}

AggregateAnalysis AnalyzeAggregate(const Program& program) {
  AggregateAnalysis analysis;
  std::vector<int> predicates;
  for (const Instruction& ins : program.code) {
    switch (ins.op) {
      case Op::kPropUnary:
        predicates.push_back(ins.a);
        if (ins.b >= 0) predicates.push_back(ins.b);
        break;
      // World-independent arithmetic and control flow.
      case Op::kPushBool:
      case Op::kBoolEq:
      case Op::kNot:
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfTrue:
      case Op::kPushConst:
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kCompare:
      case Op::kHalt:
        break;
      default:
        // Any op that reads individual cells (atoms, equalities, function
        // applications) or loops over tuples: not aggregate-only.
        return analysis;
    }
  }
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  analysis.aggregate_only = true;
  analysis.predicates = std::move(predicates);
  return analysis;
}

}  // namespace rwl::semantics
