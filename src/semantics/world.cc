#include "src/semantics/world.h"

#include <cmath>

namespace rwl::semantics {
namespace {

int64_t Power(int64_t base, int exponent) {
  int64_t result = 1;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

}  // namespace

World::World(const logic::Vocabulary* vocabulary, int domain_size)
    : vocabulary_(vocabulary), domain_size_(domain_size) {
  unary_words_ = (domain_size + 63) >> 6;
  const int rem = domain_size & 63;
  tail_mask_ = rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;

  pred_arities_.assign(vocabulary->num_predicates(), 0);
  predicate_tables_.resize(vocabulary->num_predicates());
  for (const auto& p : vocabulary->predicates()) {
    pred_arities_[p.id] = p.arity;
    if (p.arity != 1) {
      predicate_tables_[p.id].assign(Power(domain_size, p.arity), 0);
    }
  }
  unary_bits_.assign(
      static_cast<size_t>(vocabulary->num_predicates()) * unary_words_, 0);
  function_tables_.resize(vocabulary->num_functions());
  for (const auto& f : vocabulary->functions()) {
    function_tables_[f.id].assign(Power(domain_size, f.arity), 0);
  }
}

int64_t World::TableIndex(const std::vector<int>& args) const {
  int64_t index = 0;
  for (int a : args) index = index * domain_size_ + a;
  return index;
}

bool World::Holds(int predicate_id, const std::vector<int>& args) const {
  if (pred_arities_[predicate_id] == 1) {
    return GetUnaryBit(predicate_id, args[0]);
  }
  return predicate_tables_[predicate_id][TableIndex(args)] != 0;
}

void World::SetHolds(int predicate_id, const std::vector<int>& args,
                     bool value) {
  if (pred_arities_[predicate_id] == 1) {
    SetUnaryBit(predicate_id, args[0], value);
    return;
  }
  predicate_tables_[predicate_id][TableIndex(args)] = value ? 1 : 0;
}

int World::Apply(int function_id, const std::vector<int>& args) const {
  return function_tables_[function_id][TableIndex(args)];
}

void World::SetApply(int function_id, const std::vector<int>& args,
                     int value) {
  function_tables_[function_id][TableIndex(args)] = value;
}

void World::CopyUnaryColumnToBytes(int predicate_id, uint8_t* out) const {
  const uint64_t* col = unary_column(predicate_id);
  for (int d = 0; d < domain_size_; ++d) {
    out[d] = static_cast<uint8_t>((col[d >> 6] >> (d & 63)) & 1);
  }
}

void World::LoadUnaryColumnFromBytes(int predicate_id, const uint8_t* in) {
  uint64_t* col = unary_column(predicate_id);
  for (int i = 0; i < unary_words_; ++i) col[i] = 0;
  for (int d = 0; d < domain_size_; ++d) {
    if (in[d] != 0) col[d >> 6] |= uint64_t{1} << (d & 63);
  }
}

int64_t World::TotalPredicateCells() const {
  int64_t total = 0;
  for (size_t p = 0; p < pred_arities_.size(); ++p) {
    total += pred_arities_[p] == 1
                 ? domain_size_
                 : static_cast<int64_t>(predicate_tables_[p].size());
  }
  return total;
}

int64_t World::TotalFunctionCells() const {
  int64_t total = 0;
  for (const auto& t : function_tables_) total += t.size();
  return total;
}

void World::SeekToIndex(int64_t index) {
  const int num_predicates = vocabulary_->num_predicates();
  for (int p = 0; p < num_predicates; ++p) {
    if (pred_arities_[p] == 1) {
      // Consume the column's N low bits of `index`, word by word.  The
      // index never carries more than 62 meaningful bits (larger world
      // spaces are only ever seeked to index 0), so a full word consumes
      // everything that is left.
      uint64_t* col = unary_column(p);
      int remaining = domain_size_;
      for (int i = 0; i < unary_words_; ++i) {
        const int bits = remaining < 64 ? remaining : 64;
        if (bits == 64) {
          col[i] = static_cast<uint64_t>(index);
          index = 0;
        } else {
          col[i] = static_cast<uint64_t>(index) & ((uint64_t{1} << bits) - 1);
          index >>= bits;
        }
        remaining -= bits;
      }
    } else {
      for (auto& cell : predicate_tables_[p]) {
        cell = static_cast<uint8_t>(index & 1);
        index >>= 1;
      }
    }
  }
  const int n = domain_size_;
  for (int f = 0; f < vocabulary_->num_functions(); ++f) {
    for (auto& cell : function_tables_[f]) {
      cell = static_cast<int>(index % n);
      index /= n;
    }
  }
}

bool World::AdvanceOdometer() {
  const int num_predicates = vocabulary_->num_predicates();
  for (int p = 0; p < num_predicates; ++p) {
    if (pred_arities_[p] == 1) {
      // Binary increment over the packed column: adding 1 to a word
      // propagates the intra-word carry for free; a word at its maximum
      // (all valid bits set) clears and carries into the next word.
      uint64_t* col = unary_column(p);
      for (int i = 0; i < unary_words_; ++i) {
        const uint64_t full =
            i == unary_words_ - 1 ? tail_mask_ : ~uint64_t{0};
        if (col[i] != full) {
          ++col[i];
          return true;
        }
        col[i] = 0;
      }
    } else {
      for (auto& cell : predicate_tables_[p]) {
        if (cell == 0) {
          cell = 1;
          return true;
        }
        cell = 0;
      }
    }
  }
  const int n = domain_size_;
  for (int f = 0; f < vocabulary_->num_functions(); ++f) {
    for (auto& cell : function_tables_[f]) {
      if (cell + 1 < n) {
        ++cell;
        return true;
      }
      cell = 0;
    }
  }
  return false;
}

}  // namespace rwl::semantics
