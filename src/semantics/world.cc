#include "src/semantics/world.h"

#include <cmath>

namespace rwl::semantics {
namespace {

int64_t Power(int64_t base, int exponent) {
  int64_t result = 1;
  for (int i = 0; i < exponent; ++i) result *= base;
  return result;
}

}  // namespace

World::World(const logic::Vocabulary* vocabulary, int domain_size)
    : vocabulary_(vocabulary), domain_size_(domain_size) {
  predicate_tables_.resize(vocabulary->num_predicates());
  for (const auto& p : vocabulary->predicates()) {
    predicate_tables_[p.id].assign(Power(domain_size, p.arity), 0);
  }
  function_tables_.resize(vocabulary->num_functions());
  for (const auto& f : vocabulary->functions()) {
    function_tables_[f.id].assign(Power(domain_size, f.arity), 0);
  }
}

int64_t World::TableIndex(const std::vector<int>& args) const {
  int64_t index = 0;
  for (int a : args) index = index * domain_size_ + a;
  return index;
}

bool World::Holds(int predicate_id, const std::vector<int>& args) const {
  return predicate_tables_[predicate_id][TableIndex(args)] != 0;
}

void World::SetHolds(int predicate_id, const std::vector<int>& args,
                     bool value) {
  predicate_tables_[predicate_id][TableIndex(args)] = value ? 1 : 0;
}

int World::Apply(int function_id, const std::vector<int>& args) const {
  return function_tables_[function_id][TableIndex(args)];
}

void World::SetApply(int function_id, const std::vector<int>& args,
                     int value) {
  function_tables_[function_id][TableIndex(args)] = value;
}

int64_t World::TotalPredicateCells() const {
  int64_t total = 0;
  for (const auto& t : predicate_tables_) total += t.size();
  return total;
}

int64_t World::TotalFunctionCells() const {
  int64_t total = 0;
  for (const auto& t : function_tables_) total += t.size();
  return total;
}

}  // namespace rwl::semantics
