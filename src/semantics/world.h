// Finite first-order worlds over the domain {0, ..., N-1}.
//
// A World is one element of W_N(Φ) (Section 4.1): an interpretation of every
// predicate symbol as a relation over the domain and every function symbol
// as a function (constants are arity-0 functions, i.e. a single element).
// Worlds are the unit of counting for the exact engine and the unit of
// evaluation for the L≈ evaluator.
#ifndef RWL_SEMANTICS_WORLD_H_
#define RWL_SEMANTICS_WORLD_H_

#include <cstdint>
#include <vector>

#include "src/logic/vocabulary.h"

namespace rwl::semantics {

class World {
 public:
  // Creates the world where every relation is empty, every function maps to
  // element 0.
  World(const logic::Vocabulary* vocabulary, int domain_size);

  int domain_size() const { return domain_size_; }
  const logic::Vocabulary& vocabulary() const { return *vocabulary_; }

  // Predicate lookup / mutation.  `args` are domain elements, one per
  // argument position.
  bool Holds(int predicate_id, const std::vector<int>& args) const;
  void SetHolds(int predicate_id, const std::vector<int>& args, bool value);

  // Function application (constants: empty args).
  int Apply(int function_id, const std::vector<int>& args) const;
  void SetApply(int function_id, const std::vector<int>& args, int value);

  // Raw-table access used by the exact engine's odometer enumeration.
  std::vector<uint8_t>& predicate_table(int predicate_id) {
    return predicate_tables_[predicate_id];
  }
  std::vector<int>& function_table(int function_id) {
    return function_tables_[function_id];
  }
  const std::vector<uint8_t>& predicate_table(int predicate_id) const {
    return predicate_tables_[predicate_id];
  }
  const std::vector<int>& function_table(int function_id) const {
    return function_tables_[function_id];
  }

  // Total number of boolean predicate cells (used to size enumerations).
  int64_t TotalPredicateCells() const;
  // Total number of function cells.
  int64_t TotalFunctionCells() const;

 private:
  int64_t TableIndex(const std::vector<int>& args) const;

  const logic::Vocabulary* vocabulary_;
  int domain_size_;
  std::vector<std::vector<uint8_t>> predicate_tables_;
  std::vector<std::vector<int>> function_tables_;
};

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_WORLD_H_
