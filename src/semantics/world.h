// Finite first-order worlds over the domain {0, ..., N-1}.
//
// A World is one element of W_N(Φ) (Section 4.1): an interpretation of every
// predicate symbol as a relation over the domain and every function symbol
// as a function (constants are arity-0 functions, i.e. a single element).
// Worlds are the unit of counting for the exact engine and the unit of
// evaluation for the L≈ evaluator.
//
// Storage layout (structure-of-arrays):
//   * UNARY predicates are packed bitset columns: one contiguous run of
//     64-bit words per predicate, element d of predicate p at bit (d & 63)
//     of word (d >> 6).  Bits above the domain size in the tail word are
//     ALWAYS zero (every writer maintains the invariant), so the VM's
//     popcount kernels never need to re-mask.
//   * predicates of any other arity keep byte-per-cell tables;
//   * functions keep int-per-cell tables.
// The packed columns are the only storage for unary predicates — the
// legacy byte view is available through Holds/CopyUnaryColumnToBytes.
//
// The world-enumeration odometer (SeekToIndex / AdvanceOdometer) lives here
// too, so the exact engine and the block VM share one definition of the
// enumeration order: predicate cells are the low binary digits (predicate 0,
// cell 0 first — i.e. bit 0 of the first packed column), function cells the
// high base-N digits.
#ifndef RWL_SEMANTICS_WORLD_H_
#define RWL_SEMANTICS_WORLD_H_

#include <cstdint>
#include <vector>

#include "src/logic/vocabulary.h"

namespace rwl::semantics {

class World {
 public:
  // Creates the world where every relation is empty, every function maps to
  // element 0.
  World(const logic::Vocabulary* vocabulary, int domain_size);

  int domain_size() const { return domain_size_; }
  const logic::Vocabulary& vocabulary() const { return *vocabulary_; }

  // Predicate lookup / mutation.  `args` are domain elements, one per
  // argument position.
  bool Holds(int predicate_id, const std::vector<int>& args) const;
  void SetHolds(int predicate_id, const std::vector<int>& args, bool value);

  // Function application (constants: empty args).
  int Apply(int function_id, const std::vector<int>& args) const;
  void SetApply(int function_id, const std::vector<int>& args, int value);

  // ---- packed unary columns ----

  int predicate_arity(int predicate_id) const {
    return pred_arities_[predicate_id];
  }
  // Words per packed column (ceil(N / 64)); identical for every unary
  // predicate of this world.
  int unary_words() const { return unary_words_; }
  // Mask of the valid bits in the last word of a column (all-ones when N is
  // a multiple of 64).
  uint64_t unary_tail_mask() const { return tail_mask_; }
  const uint64_t* unary_column(int predicate_id) const {
    return unary_bits_.data() +
           static_cast<size_t>(predicate_id) * unary_words_;
  }
  uint64_t* unary_column(int predicate_id) {
    return unary_bits_.data() +
           static_cast<size_t>(predicate_id) * unary_words_;
  }
  bool GetUnaryBit(int predicate_id, int element) const {
    return (unary_column(predicate_id)[element >> 6] >>
            (element & 63)) & 1;
  }
  void SetUnaryBit(int predicate_id, int element, bool value) {
    uint64_t* word = unary_column(predicate_id) + (element >> 6);
    const uint64_t bit = uint64_t{1} << (element & 63);
    if (value) {
      *word |= bit;
    } else {
      *word &= ~bit;
    }
  }
  // Legacy byte view of one packed column: `out` receives N bytes (0/1) in
  // element order; Load expects the same format.
  void CopyUnaryColumnToBytes(int predicate_id, uint8_t* out) const;
  void LoadUnaryColumnFromBytes(int predicate_id, const uint8_t* in);

  // Raw-table access for predicates of arity != 1 (unary predicates are
  // packed; their byte tables are intentionally empty) and for functions.
  std::vector<uint8_t>& predicate_table(int predicate_id) {
    return predicate_tables_[predicate_id];
  }
  std::vector<int>& function_table(int function_id) {
    return function_tables_[function_id];
  }
  const std::vector<uint8_t>& predicate_table(int predicate_id) const {
    return predicate_tables_[predicate_id];
  }
  const std::vector<int>& function_table(int function_id) const {
    return function_tables_[function_id];
  }

  // Total number of boolean predicate cells (used to size enumerations).
  int64_t TotalPredicateCells() const;
  // Total number of function cells.
  int64_t TotalFunctionCells() const;

  // ---- world odometer ----

  // Positions every cell at world index `index` of the enumeration order:
  // predicate cells are the low binary digits (predicate 0, cell 0 first),
  // function cells the high base-N digits.
  void SeekToIndex(int64_t index);
  // Odometer increment over all predicate cells (base 2, packed columns
  // advance a word at a time) and all function cells (base N); returns
  // false when the odometer wraps around to the all-zero world.
  bool AdvanceOdometer();

 private:
  int64_t TableIndex(const std::vector<int>& args) const;

  const logic::Vocabulary* vocabulary_;
  int domain_size_;
  int unary_words_ = 0;
  uint64_t tail_mask_ = ~uint64_t{0};
  std::vector<int> pred_arities_;
  // num_predicates × unary_words_ words; rows of non-unary predicate ids
  // are unused (kept so columns index directly by predicate id).
  std::vector<uint64_t> unary_bits_;
  std::vector<std::vector<uint8_t>> predicate_tables_;
  std::vector<std::vector<int>> function_tables_;
};

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_WORLD_H_
