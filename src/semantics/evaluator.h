// Truth evaluation of L≈ formulas in finite worlds (Section 4.1 semantics).
//
// (W, V, ⃗τ) |= χ: predicates and functions are interpreted by the world,
// variables by the valuation, the approximate connectives by the tolerance
// vector.  Proportion terms are computed by exhaustive tuple counting.
//
// This recursive tree-walker is the REFERENCE implementation: the engines'
// hot paths run the compiled bytecode pipeline (compile.h + vm.h) instead,
// and the walker serves as the oracle it is differentially tested against
// (tests/compiled_vm_test.cc, the fuzzer's `vm` check).  Keep the two in
// lockstep when changing the semantics.
//
// Conditional proportions ||ψ | θ||_X are primitives.  A comparison formula
// in which some conditional proportion has an empty condition (||θ||_X = 0)
// is TRUE by convention — this matches the multiply-out-after-splitting
// translation into L= of Section 4.1 (the two sides of "ζ - ζ' ≤ ε_i" are
// multiplied by the nonnegative denominator, turning "0/0 ≤ anything" into
// "0 ≤ 0").  Example 4.2's pitfall (multiplying out *before* splitting) is
// avoided because the ratio itself is evaluated exactly when the denominator
// is nonzero.
#ifndef RWL_SEMANTICS_EVALUATOR_H_
#define RWL_SEMANTICS_EVALUATOR_H_

#include <map>
#include <string>

#include "src/logic/formula.h"
#include "src/semantics/tolerance.h"
#include "src/semantics/world.h"

namespace rwl::semantics {

// Variable valuation V: X → domain.
using Valuation = std::map<std::string, int>;

// Value of a proportion expression; `defined == false` propagates a 0/0
// conditional proportion up to the nearest comparison (which then holds).
struct ExprValue {
  double value = 0.0;
  bool defined = true;
};

// Evaluates a closed or open formula; free variables must be bound by the
// valuation.  Unknown symbols or unbound variables abort (programming
// error).
bool Evaluate(const logic::FormulaPtr& f, const World& world,
              const ToleranceVector& tolerances, Valuation* valuation);

// Convenience overload for sentences.
bool Evaluate(const logic::FormulaPtr& f, const World& world,
              const ToleranceVector& tolerances);

ExprValue EvaluateExpr(const logic::ExprPtr& e, const World& world,
                       const ToleranceVector& tolerances,
                       Valuation* valuation);

// Evaluates a term to a domain element.
int EvaluateTerm(const logic::TermPtr& t, const World& world,
                 Valuation* valuation);

// Decides `lhs op rhs` under tolerance τ (the scalar for this comparison's
// index).  Shared with the profile engine.
bool CompareValues(double lhs, logic::CompareOp op, double rhs, double tau);

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_EVALUATOR_H_
