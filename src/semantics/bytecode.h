// Flat bytecode for L≈ evaluation (the compiled form of semantics::Evaluate).
//
// A Program is a one-pass lowering of an interned Formula/Expr/Term tree in
// which every variable occurrence has been resolved to a dense *frame slot*
// at compile time (zero string lookups at run time), every predicate and
// function symbol to its vocabulary id, and the proportion / quantifier
// nodes to explicit odometer loop ops over pre-sized slot ranges.  The VM
// (vm.h) executes a Program non-recursively over one World per call; the
// tree-walker in evaluator.h remains the reference implementation the
// compiled pipeline is differentially tested against.
//
// Value discipline (mirrors the walker exactly):
//   * terms evaluate to domain elements on an int stack;
//   * formulas evaluate to booleans, expressions to {double, defined} pairs,
//     both on one value stack (booleans are 0.0 / 1.0 with defined == true);
//   * each in-flight proportion keeps a {body, cond} counter pair on a
//     dedicated counts stack, so proportions nest without recursion.
#ifndef RWL_SEMANTICS_BYTECODE_H_
#define RWL_SEMANTICS_BYTECODE_H_

#include <cstdint>
#include <vector>

namespace rwl::semantics {

enum class Op : uint8_t {
  // ---- terms (int stack) ----
  kLoadSlot,    // a = slot               push frame slot value
  kApplyFunc,   // a = function id, b = arity
                //                        pop b args, push table lookup
  // ---- formulas (value stack, booleans) ----
  kPushBool,    // a = 0 / 1              push constant boolean
  kPred,        // a = predicate id, b = arity
                //                        pop b args, push table lookup
  kPred1,       // a = predicate id, b = slot
                //                        fused unary atom on a variable
  kPred2,       // a = predicate id, b = slot1, c = slot2
                //                        fused binary atom on two variables
  kTermEq,      // pop two ints, push their equality
  kBoolEq,      // pop two booleans, push their equality (Iff)
  kNot,         // negate the top boolean
  kJump,        // a = target
  kJumpIfFalse, // a = target             pop; jump when false
  kJumpIfTrue,  // a = target             pop; jump when true
  // ---- quantifier loops ----
  kQuantInit,   // a = slot, b = end target
                //                        slot = 0; empty domain jumps to end
                //                        pushing the identity (c = is_forall)
  kQuantStep,   // a = slot, b = loop target, c = is_forall
                //                        pop body bool; short-circuit exit or
                //                        advance slot and loop
  // ---- proportion loops ----
  kPropInit,    // a = base slot, b = arity k
                //                        zero slots, push a fresh counter pair
  kCondTrue,    // unconditional proportion: count the tuple as condition-true
  kCondCheck,   // a = skip target        pop cond bool; false skips the body,
                //                        true counts the tuple
  kBodyCount,   // pop body bool; count when true
  kPropStep,    // a = base slot, b = arity k, c = loop target
                //                        odometer over the k slots
  kPropEndTotal,// a = arity k            pop counters, push body / N^k
  kPropEndCond, // pop counters, push body / cond (undefined when cond == 0)
  kPropUnary,   // a = body predicate id, b = cond predicate id (-1: none)
                //                        fused ||B(x)||_x / ||B(x)|C(x)||_x:
                //                        one pass over the unary tables,
                //                        push the proportion value directly
  // ---- proportion expressions (value stack) ----
  kPushConst,   // a = constant pool index
  kAdd,         // pop rhs, lhs; push sum       (defined = both defined)
  kSub,         // pop rhs, lhs; push difference
  kMul,         // pop rhs, lhs; push product
  kCompare,     // a = CompareOp, b = tau slot
                //                        pop rhs, lhs; push comparison bool
                //                        (an undefined side makes it true)
  kHalt,        // top of the value stack is the program result
};

struct Instruction {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
};

// A {double, defined} expression value; booleans are 0.0 / 1.0.
struct Value {
  double v = 0.0;
  bool defined = true;
};

struct Program {
  std::vector<Instruction> code;
  std::vector<double> constants;
  // Tolerance indices used by kCompare, deduplicated; instruction operand b
  // indexes this vector (the frame pre-resolves them against a
  // ToleranceVector once, not once per world).
  std::vector<int> tolerance_indices;
  // Frame sizing, computed at compile time so the VM never allocates after
  // the frame is prepared.
  int num_slots = 0;
  int max_ints = 0;
  int max_values = 0;
  int max_counts = 0;
};

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_BYTECODE_H_
