// Tolerance vectors ⃗τ = ⟨τ1, τ2, ...⟩ interpreting the approximate
// connectives ≈_i and ⪯_i (Section 4.1).  Each subscript i names its own
// tolerance; the paper uses distinct subscripts for independently-measured
// statistics and identical subscripts to assert equal default strength
// (e.g. the Nixon diamond resolution at the end of Section 5.3).
#ifndef RWL_SEMANTICS_TOLERANCE_H_
#define RWL_SEMANTICS_TOLERANCE_H_

#include <string>
#include <unordered_map>

namespace rwl::semantics {

class ToleranceVector {
 public:
  // All tolerances equal to `value` unless overridden.
  static ToleranceVector Uniform(double value);

  ToleranceVector() : default_value_(1e-3) {}
  explicit ToleranceVector(double default_value)
      : default_value_(default_value) {}

  double Get(int index) const;
  void Set(int index, double value);

  double default_value() const { return default_value_; }

  // A copy with every tolerance (default and overrides) scaled by `factor`;
  // used to drive the τ → 0 limit while preserving relative default
  // strengths (Section 5.3: "the magnitude of the tolerance represents the
  // strength of the default").
  ToleranceVector Scaled(double factor) const;

  // An exact (bit-level, sorted) serialization of this vector, used as a
  // component of engine cache keys (core/query_context.h).  Two vectors
  // produce the same key iff Get agrees on every index.
  std::string CacheKey() const;

 private:
  double default_value_;
  std::unordered_map<int, double> overrides_;
};

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_TOLERANCE_H_
