// One-pass compiler from interned L≈ formulas to slot-indexed bytecode.
//
// Compilation resolves every variable to a frame slot (binding structure is
// static, so shadowing is decided here, not by runtime save/restore), every
// symbol to its vocabulary id, folds constant arithmetic subexpressions, and
// computes exact stack-depth bounds for allocation-free execution (vm.h).
//
// Errors that the tree-walking evaluator handled by Die()/std::abort —
// unbound variables, unknown symbols, arity mismatches — are compile-time
// failures here, reported as a message instead of killing the process; no
// abort is reachable from user-supplied `.rwl` input through the compiled
// pipeline.  Programs depend only on (formula, vocabulary), so they are
// cached per formula id in QueryContext and shared across worlds, domain
// sizes, tolerance vectors and threads.
#ifndef RWL_SEMANTICS_COMPILE_H_
#define RWL_SEMANTICS_COMPILE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"
#include "src/semantics/bytecode.h"

namespace rwl::semantics {

// A compiled formula: either a program or a diagnostic.
struct CompiledFormula {
  std::shared_ptr<const Program> program;  // null on error
  std::string error;

  bool ok() const { return program != nullptr; }
};

// Compiles a sentence (no free variables) against the vocabulary.  Never
// aborts: ill-formed input yields ok() == false with a message.
CompiledFormula CompileFormula(const logic::FormulaPtr& f,
                               const logic::Vocabulary& vocabulary);

// Size statistics of a compiled program, used by the planner's cost
// models: per-world evaluation time is roughly proportional to `length`
// (loop ops multiply, but instruction count is the comparable first-order
// proxy across formulas of one workload).
struct ProgramStats {
  bool ok = false;
  int length = 0;     // instruction count
  int num_slots = 0;  // quantifier/proportion variable slots
  int max_stack = 0;  // peak value-stack depth
};
ProgramStats StatsOf(const CompiledFormula& compiled);

// Aggregate-only analysis: does the program observe a world ONLY through
// unary predicate cardinalities?  True exactly when every instruction is a
// fused unary proportion (kPropUnary) or world-independent arithmetic /
// boolean control flow — no atoms, equalities, quantifier loops, generic
// proportion loops or function applications.  Such a program evaluates
// identically in every world with the same per-predicate (and pairwise)
// counts, so the exact engine can run it over predicate cardinalities
// directly (vm.h RunProgramOnCounts) instead of materializing worlds.
struct AggregateAnalysis {
  bool aggregate_only = false;
  // Unary predicate ids the program's proportions observe, sorted unique.
  std::vector<int> predicates;
};
AggregateAnalysis AnalyzeAggregate(const Program& program);

}  // namespace rwl::semantics

#endif  // RWL_SEMANTICS_COMPILE_H_
