#include "src/semantics/vm.h"

#include "src/semantics/evaluator.h"

namespace rwl::semantics {

void EvalFrame::Prepare(const Program& program,
                        const ToleranceVector& tolerances) {
  slots.assign(program.num_slots, 0);
  ints.resize(program.max_ints);
  vals.resize(program.max_values);
  counts.resize(program.max_counts);
  taus.resize(program.tolerance_indices.size());
  for (size_t i = 0; i < taus.size(); ++i) {
    taus[i] = tolerances.Get(program.tolerance_indices[i]);
  }
  bound_world = nullptr;
}

namespace {

void BindWorld(const World& world, EvalFrame* frame) {
  const auto& vocabulary = world.vocabulary();
  frame->pred_tables.resize(vocabulary.num_predicates());
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    frame->pred_tables[p] = world.predicate_table(p).data();
  }
  frame->func_tables.resize(vocabulary.num_functions());
  for (int f = 0; f < vocabulary.num_functions(); ++f) {
    frame->func_tables[f] = world.function_table(f).data();
  }
  frame->bound_world = &world;
}

}  // namespace

bool RunProgram(const Program& program, const World& world, EvalFrame* frame) {
  if (frame->bound_world != &world) BindWorld(world, frame);
  const Instruction* code = program.code.data();
  const double* consts = program.constants.data();
  const double* taus = frame->taus.data();
  const uint8_t* const* pred_tables = frame->pred_tables.data();
  const int* const* func_tables = frame->func_tables.data();
  const int n = world.domain_size();

  int* slots = frame->slots.data();
  int* ints = frame->ints.data();
  Value* vals = frame->vals.data();
  EvalFrame::Counts* counts = frame->counts.data();
  int it = 0;  // term-stack top
  int vt = 0;  // value-stack top
  int ct = 0;  // counts-stack top

  for (int pc = 0;; ++pc) {
    const Instruction& ins = code[pc];
    switch (ins.op) {
      case Op::kLoadSlot:
        ints[it++] = slots[ins.a];
        break;
      case Op::kApplyFunc: {
        it -= ins.b;
        int64_t index = 0;
        for (int j = 0; j < ins.b; ++j) index = index * n + ints[it + j];
        ints[it++] = func_tables[ins.a][index];
        break;
      }
      case Op::kPushBool:
        vals[vt++] = {static_cast<double>(ins.a), true};
        break;
      case Op::kPred: {
        it -= ins.b;
        int64_t index = 0;
        for (int j = 0; j < ins.b; ++j) index = index * n + ints[it + j];
        vals[vt++] = {pred_tables[ins.a][index] != 0 ? 1.0 : 0.0, true};
        break;
      }
      case Op::kPred1:
        vals[vt++] = {pred_tables[ins.a][slots[ins.b]] != 0 ? 1.0 : 0.0,
                      true};
        break;
      case Op::kPred2:
        vals[vt++] = {pred_tables[ins.a][static_cast<int64_t>(slots[ins.b]) *
                                             n +
                                         slots[ins.c]] != 0
                          ? 1.0
                          : 0.0,
                      true};
        break;
      case Op::kTermEq:
        it -= 2;
        vals[vt++] = {ints[it] == ints[it + 1] ? 1.0 : 0.0, true};
        break;
      case Op::kBoolEq:
        vt -= 2;
        vals[vt] = {(vals[vt].v != 0.0) == (vals[vt + 1].v != 0.0) ? 1.0 : 0.0,
                    true};
        ++vt;
        break;
      case Op::kNot:
        vals[vt - 1].v = vals[vt - 1].v != 0.0 ? 0.0 : 1.0;
        break;
      case Op::kJump:
        pc = ins.a - 1;
        break;
      case Op::kJumpIfFalse:
        if (vals[--vt].v == 0.0) pc = ins.a - 1;
        break;
      case Op::kJumpIfTrue:
        if (vals[--vt].v != 0.0) pc = ins.a - 1;
        break;
      case Op::kQuantInit:
        slots[ins.a] = 0;
        if (n == 0) {
          vals[vt++] = {ins.c != 0 ? 1.0 : 0.0, true};
          pc = ins.b - 1;
        }
        break;
      case Op::kQuantStep: {
        const bool holds = vals[--vt].v != 0.0;
        if (ins.c != 0 ? !holds : holds) {
          // Short-circuit: a counterexample (∀) or witness (∃).
          vals[vt++] = {holds ? 1.0 : 0.0, true};
        } else if (++slots[ins.a] < n) {
          pc = ins.b - 1;
        } else {
          vals[vt++] = {ins.c != 0 ? 1.0 : 0.0, true};
        }
        break;
      }
      case Op::kPropInit:
        for (int j = 0; j < ins.b; ++j) slots[ins.a + j] = 0;
        counts[ct++] = {0, 0};
        break;
      case Op::kCondTrue:
        ++counts[ct - 1].cond;
        break;
      case Op::kCondCheck:
        if (vals[--vt].v == 0.0) {
          pc = ins.a - 1;
        } else {
          ++counts[ct - 1].cond;
        }
        break;
      case Op::kBodyCount:
        if (vals[--vt].v != 0.0) ++counts[ct - 1].body;
        break;
      case Op::kPropStep: {
        int j = 0;
        for (; j < ins.b; ++j) {
          if (++slots[ins.a + j] < n) break;
          slots[ins.a + j] = 0;
        }
        if (j < ins.b) pc = ins.c - 1;  // not wrapped: next tuple
        break;
      }
      case Op::kPropEndTotal: {
        const EvalFrame::Counts c = counts[--ct];
        double total = 1.0;
        for (int j = 0; j < ins.a; ++j) total *= n;
        vals[vt++] = {static_cast<double>(c.body) / total, true};
        break;
      }
      case Op::kPropEndCond: {
        const EvalFrame::Counts c = counts[--ct];
        if (c.cond == 0) {
          vals[vt++] = {0.0, false};
        } else {
          vals[vt++] = {static_cast<double>(c.body) /
                            static_cast<double>(c.cond),
                        true};
        }
        break;
      }
      case Op::kPropUnary: {
        // Fused single-variable proportion over unary atoms: one pass over
        // the predicate tables, counting exactly as the generic loop does.
        const uint8_t* body = pred_tables[ins.a];
        int64_t body_count = 0;
        if (ins.b < 0) {
          for (int d = 0; d < n; ++d) body_count += body[d] != 0;
          double total = 1.0;
          total *= n;
          vals[vt++] = {static_cast<double>(body_count) / total, true};
        } else {
          const uint8_t* cond = pred_tables[ins.b];
          int64_t cond_count = 0;
          for (int d = 0; d < n; ++d) {
            if (cond[d] != 0) {
              ++cond_count;
              body_count += body[d] != 0;
            }
          }
          if (cond_count == 0) {
            vals[vt++] = {0.0, false};
          } else {
            vals[vt++] = {static_cast<double>(body_count) /
                              static_cast<double>(cond_count),
                          true};
          }
        }
        break;
      }
      case Op::kPushConst:
        vals[vt++] = {consts[ins.a], true};
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul: {
        vt -= 2;
        const Value lhs = vals[vt];
        const Value rhs = vals[vt + 1];
        double v = ins.op == Op::kAdd   ? lhs.v + rhs.v
                   : ins.op == Op::kSub ? lhs.v - rhs.v
                                        : lhs.v * rhs.v;
        vals[vt++] = {v, lhs.defined && rhs.defined};
        break;
      }
      case Op::kCompare: {
        vt -= 2;
        const Value lhs = vals[vt];
        const Value rhs = vals[vt + 1];
        // 0/0 convention: an undefined side makes the comparison hold.
        bool result = true;
        if (lhs.defined && rhs.defined) {
          result = CompareValues(lhs.v, static_cast<logic::CompareOp>(ins.a),
                                 rhs.v, taus[ins.b]);
        }
        vals[vt++] = {result ? 1.0 : 0.0, true};
        break;
      }
      case Op::kHalt:
        return vals[vt - 1].v != 0.0;
    }
  }
}

}  // namespace rwl::semantics
