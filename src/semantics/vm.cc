#include "src/semantics/vm.h"

#include "src/semantics/evaluator.h"

namespace rwl::semantics {
namespace {

// Population count of one packed word.  The scalar build (RWL_SCALAR_KERNELS)
// is the portable reference the popcount path is proven bit-identical to in
// CI; both compute the exact bit count, so every downstream double is the
// same either way.
inline int PopcountWord(uint64_t x) {
#if defined(RWL_SCALAR_KERNELS)
  x = x - ((x >> 1) & 0x5555555555555555ull);
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<int>((x * 0x0101010101010101ull) >> 56);
#else
  return __builtin_popcountll(x);
#endif
}

}  // namespace

void EvalFrame::Prepare(const Program& program,
                        const ToleranceVector& tolerances) {
  slots.assign(program.num_slots, 0);
  ints.resize(program.max_ints);
  vals.resize(program.max_values);
  counts.resize(program.max_counts);
  taus.resize(program.tolerance_indices.size());
  for (size_t i = 0; i < taus.size(); ++i) {
    taus[i] = tolerances.Get(program.tolerance_indices[i]);
  }
  bound_world = nullptr;
}

namespace {

void BindWorld(const World& world, EvalFrame* frame) {
  const auto& vocabulary = world.vocabulary();
  frame->packed_tables.resize(vocabulary.num_predicates());
  frame->pred_tables.resize(vocabulary.num_predicates());
  for (int p = 0; p < vocabulary.num_predicates(); ++p) {
    frame->packed_tables[p] = world.unary_column(p);
    frame->pred_tables[p] = world.predicate_table(p).data();
  }
  frame->func_tables.resize(vocabulary.num_functions());
  for (int f = 0; f < vocabulary.num_functions(); ++f) {
    frame->func_tables[f] = world.function_table(f).data();
  }
  frame->bound_world = &world;
}

}  // namespace

bool RunProgram(const Program& program, const World& world, EvalFrame* frame) {
  if (frame->bound_world != &world) BindWorld(world, frame);
  const Instruction* code = program.code.data();
  const double* consts = program.constants.data();
  const double* taus = frame->taus.data();
  const uint64_t* const* packed_tables = frame->packed_tables.data();
  const uint8_t* const* pred_tables = frame->pred_tables.data();
  const int* const* func_tables = frame->func_tables.data();
  const int n = world.domain_size();
  const int words = world.unary_words();

  int* slots = frame->slots.data();
  int* ints = frame->ints.data();
  Value* vals = frame->vals.data();
  EvalFrame::Counts* counts = frame->counts.data();
  int it = 0;  // term-stack top
  int vt = 0;  // value-stack top
  int ct = 0;  // counts-stack top

  for (int pc = 0;; ++pc) {
    const Instruction& ins = code[pc];
    switch (ins.op) {
      case Op::kLoadSlot:
        ints[it++] = slots[ins.a];
        break;
      case Op::kApplyFunc: {
        it -= ins.b;
        int64_t index = 0;
        for (int j = 0; j < ins.b; ++j) index = index * n + ints[it + j];
        ints[it++] = func_tables[ins.a][index];
        break;
      }
      case Op::kPushBool:
        vals[vt++] = {static_cast<double>(ins.a), true};
        break;
      case Op::kPred: {
        it -= ins.b;
        if (ins.b == 1) {
          // Arity-1 predicates live in the packed columns.
          const int d = ints[it];
          vals[vt++] = {(packed_tables[ins.a][d >> 6] >> (d & 63)) & 1
                            ? 1.0
                            : 0.0,
                        true};
          break;
        }
        int64_t index = 0;
        for (int j = 0; j < ins.b; ++j) index = index * n + ints[it + j];
        vals[vt++] = {pred_tables[ins.a][index] != 0 ? 1.0 : 0.0, true};
        break;
      }
      case Op::kPred1: {
        const int d = slots[ins.b];
        vals[vt++] = {(packed_tables[ins.a][d >> 6] >> (d & 63)) & 1 ? 1.0
                                                                     : 0.0,
                      true};
        break;
      }
      case Op::kPred2:
        vals[vt++] = {pred_tables[ins.a][static_cast<int64_t>(slots[ins.b]) *
                                             n +
                                         slots[ins.c]] != 0
                          ? 1.0
                          : 0.0,
                      true};
        break;
      case Op::kTermEq:
        it -= 2;
        vals[vt++] = {ints[it] == ints[it + 1] ? 1.0 : 0.0, true};
        break;
      case Op::kBoolEq:
        vt -= 2;
        vals[vt] = {(vals[vt].v != 0.0) == (vals[vt + 1].v != 0.0) ? 1.0 : 0.0,
                    true};
        ++vt;
        break;
      case Op::kNot:
        vals[vt - 1].v = vals[vt - 1].v != 0.0 ? 0.0 : 1.0;
        break;
      case Op::kJump:
        pc = ins.a - 1;
        break;
      case Op::kJumpIfFalse:
        if (vals[--vt].v == 0.0) pc = ins.a - 1;
        break;
      case Op::kJumpIfTrue:
        if (vals[--vt].v != 0.0) pc = ins.a - 1;
        break;
      case Op::kQuantInit:
        slots[ins.a] = 0;
        if (n == 0) {
          vals[vt++] = {ins.c != 0 ? 1.0 : 0.0, true};
          pc = ins.b - 1;
        }
        break;
      case Op::kQuantStep: {
        const bool holds = vals[--vt].v != 0.0;
        if (ins.c != 0 ? !holds : holds) {
          // Short-circuit: a counterexample (∀) or witness (∃).
          vals[vt++] = {holds ? 1.0 : 0.0, true};
        } else if (++slots[ins.a] < n) {
          pc = ins.b - 1;
        } else {
          vals[vt++] = {ins.c != 0 ? 1.0 : 0.0, true};
        }
        break;
      }
      case Op::kPropInit:
        for (int j = 0; j < ins.b; ++j) slots[ins.a + j] = 0;
        counts[ct++] = {0, 0};
        break;
      case Op::kCondTrue:
        ++counts[ct - 1].cond;
        break;
      case Op::kCondCheck:
        if (vals[--vt].v == 0.0) {
          pc = ins.a - 1;
        } else {
          ++counts[ct - 1].cond;
        }
        break;
      case Op::kBodyCount:
        if (vals[--vt].v != 0.0) ++counts[ct - 1].body;
        break;
      case Op::kPropStep: {
        int j = 0;
        for (; j < ins.b; ++j) {
          if (++slots[ins.a + j] < n) break;
          slots[ins.a + j] = 0;
        }
        if (j < ins.b) pc = ins.c - 1;  // not wrapped: next tuple
        break;
      }
      case Op::kPropEndTotal: {
        const EvalFrame::Counts c = counts[--ct];
        double total = 1.0;
        for (int j = 0; j < ins.a; ++j) total *= n;
        vals[vt++] = {static_cast<double>(c.body) / total, true};
        break;
      }
      case Op::kPropEndCond: {
        const EvalFrame::Counts c = counts[--ct];
        if (c.cond == 0) {
          vals[vt++] = {0.0, false};
        } else {
          vals[vt++] = {static_cast<double>(c.body) /
                            static_cast<double>(c.cond),
                        true};
        }
        break;
      }
      case Op::kPropUnary: {
        // Fused single-variable proportion over unary atoms: popcount over
        // the packed columns.  Tail bits above the domain are zero by the
        // World invariant, so no re-masking is needed, and the counts — and
        // hence the resulting doubles — are identical to the generic loop.
        const uint64_t* body = packed_tables[ins.a];
        int64_t body_count = 0;
        if (ins.b < 0) {
          for (int i = 0; i < words; ++i) {
            body_count += PopcountWord(body[i]);
          }
          double total = 1.0;
          total *= n;
          vals[vt++] = {static_cast<double>(body_count) / total, true};
        } else {
          const uint64_t* cond = packed_tables[ins.b];
          int64_t cond_count = 0;
          for (int i = 0; i < words; ++i) {
            cond_count += PopcountWord(cond[i]);
            body_count += PopcountWord(cond[i] & body[i]);
          }
          if (cond_count == 0) {
            vals[vt++] = {0.0, false};
          } else {
            vals[vt++] = {static_cast<double>(body_count) /
                              static_cast<double>(cond_count),
                          true};
          }
        }
        break;
      }
      case Op::kPushConst:
        vals[vt++] = {consts[ins.a], true};
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul: {
        vt -= 2;
        const Value lhs = vals[vt];
        const Value rhs = vals[vt + 1];
        double v = ins.op == Op::kAdd   ? lhs.v + rhs.v
                   : ins.op == Op::kSub ? lhs.v - rhs.v
                                        : lhs.v * rhs.v;
        vals[vt++] = {v, lhs.defined && rhs.defined};
        break;
      }
      case Op::kCompare: {
        vt -= 2;
        const Value lhs = vals[vt];
        const Value rhs = vals[vt + 1];
        // 0/0 convention: an undefined side makes the comparison hold.
        bool result = true;
        if (lhs.defined && rhs.defined) {
          result = CompareValues(lhs.v, static_cast<logic::CompareOp>(ins.a),
                                 rhs.v, taus[ins.b]);
        }
        vals[vt++] = {result ? 1.0 : 0.0, true};
        break;
      }
      case Op::kHalt:
        return vals[vt - 1].v != 0.0;
    }
  }
}

BlockCounts RunProgramBlock(const Program& first, const Program* second,
                            World* world, EvalFrame* first_frame,
                            EvalFrame* second_frame, int64_t count) {
  BlockCounts out;
  for (int64_t w = 0; count < 0 || w < count; ++w) {
    if (RunProgram(first, *world, first_frame)) {
      ++out.first;
      if (second != nullptr &&
          RunProgram(*second, *world, second_frame)) {
        ++out.both;
      }
    }
    if (!world->AdvanceOdometer() && count < 0) break;
  }
  return out;
}

bool RunProgramOnCounts(const Program& program, const UnaryCountsView& counts,
                        EvalFrame* frame) {
  const Instruction* code = program.code.data();
  const double* consts = program.constants.data();
  const double* taus = frame->taus.data();
  const int n = counts.domain_size;
  const int np = counts.num_predicates;

  Value* vals = frame->vals.data();
  int vt = 0;

  for (int pc = 0;; ++pc) {
    const Instruction& ins = code[pc];
    switch (ins.op) {
      case Op::kPushBool:
        vals[vt++] = {static_cast<double>(ins.a), true};
        break;
      case Op::kBoolEq:
        vt -= 2;
        vals[vt] = {(vals[vt].v != 0.0) == (vals[vt + 1].v != 0.0) ? 1.0 : 0.0,
                    true};
        ++vt;
        break;
      case Op::kNot:
        vals[vt - 1].v = vals[vt - 1].v != 0.0 ? 0.0 : 1.0;
        break;
      case Op::kJump:
        pc = ins.a - 1;
        break;
      case Op::kJumpIfFalse:
        if (vals[--vt].v == 0.0) pc = ins.a - 1;
        break;
      case Op::kJumpIfTrue:
        if (vals[--vt].v != 0.0) pc = ins.a - 1;
        break;
      case Op::kPropUnary: {
        // Same division (and 0-denominator convention) as the world kernel,
        // with the counts read from the cardinality view instead of being
        // popcounted: bit-identical doubles for every world in the class.
        if (ins.b < 0) {
          const int64_t body_count = counts.single[ins.a];
          double total = 1.0;
          total *= n;
          vals[vt++] = {static_cast<double>(body_count) / total, true};
        } else {
          const int64_t cond_count = counts.single[ins.b];
          const int64_t body_count = counts.pair[ins.a * np + ins.b];
          if (cond_count == 0) {
            vals[vt++] = {0.0, false};
          } else {
            vals[vt++] = {static_cast<double>(body_count) /
                              static_cast<double>(cond_count),
                          true};
          }
        }
        break;
      }
      case Op::kPushConst:
        vals[vt++] = {consts[ins.a], true};
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul: {
        vt -= 2;
        const Value lhs = vals[vt];
        const Value rhs = vals[vt + 1];
        double v = ins.op == Op::kAdd   ? lhs.v + rhs.v
                   : ins.op == Op::kSub ? lhs.v - rhs.v
                                        : lhs.v * rhs.v;
        vals[vt++] = {v, lhs.defined && rhs.defined};
        break;
      }
      case Op::kCompare: {
        vt -= 2;
        const Value lhs = vals[vt];
        const Value rhs = vals[vt + 1];
        bool result = true;
        if (lhs.defined && rhs.defined) {
          result = CompareValues(lhs.v, static_cast<logic::CompareOp>(ins.a),
                                 rhs.v, taus[ins.b]);
        }
        vals[vt++] = {result ? 1.0 : 0.0, true};
        break;
      }
      case Op::kHalt:
        return vals[vt - 1].v != 0.0;
      default:
        // Not an aggregate-only op: AnalyzeAggregate gates callers, so this
        // is unreachable; refuse instead of reading world state.
        return false;
    }
  }
}

}  // namespace rwl::semantics
