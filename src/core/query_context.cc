#include "src/core/query_context.h"

#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/engines/engine.h"
#include "src/engines/exact_engine.h"
#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/logic/intern.h"
#include "src/logic/transform.h"
#include "src/semantics/compile.h"

namespace rwl {
namespace {

// "<salt>\x1f": '\x1f' (unit separator) cannot appear in the numeric
// salt, so a qualified key splits unambiguously.
std::string SaltPrefix(uint64_t salt) {
  std::string prefix = std::to_string(salt);
  prefix += '\x1f';
  return prefix;
}

// Qualifies an engine-supplied key with a precomputed salt prefix (one
// concatenation; the prefix itself is built once per context — the cache
// paths run on every query of the service's hot loop).
std::string QualifiedKey(const std::string& salt_prefix,
                         const std::string& key) {
  std::string qualified;
  qualified.reserve(salt_prefix.size() + key.size());
  qualified += salt_prefix;
  qualified += key;
  return qualified;
}

}  // namespace

KbDelta ComputeKbDelta(const KnowledgeBase& from, const KnowledgeBase& to) {
  KbDelta delta;
  delta.signature_preserving =
      from.vocabulary().Fingerprint() == to.vocabulary().Fingerprint();
  // Formulas are hash-consed, so prefix detection is pointer equality —
  // and the persistent vector short-circuits whole shared chunks.
  if (to.conjuncts().size() >= from.conjuncts().size() &&
      to.conjuncts().StartsWith(from.conjuncts())) {
    delta.is_append = true;
    for (size_t i = from.conjuncts().size(); i < to.conjuncts().size(); ++i) {
      delta.appended.push_back(to.conjuncts()[i]);
    }
  }
  return delta;
}

struct QueryContext::Impl {
  // The version_salt() rendered once for key qualification.
  std::string salt_prefix;
  mutable std::mutex mutex;

  // Lazily computed KB-level analyses.  Guarded by `mutex`; computed at
  // most once and then immutable.
  std::optional<std::vector<logic::FormulaPtr>> conjuncts;
  std::optional<KbSplit> split;
  std::optional<engines::KbAnalysis> analysis;

  struct BlobEntry {
    std::shared_ptr<const void> blob;
    size_t bytes = 0;
  };

  std::unordered_map<std::string, engines::FiniteResult> finite;
  std::unordered_map<std::string, BlobEntry> blobs;
  std::unordered_map<uint64_t, std::shared_ptr<const semantics::CompiledFormula>>
      programs;

  mutable CacheStats stats;
};

QueryContext::QueryContext(logic::Vocabulary vocabulary, logic::FormulaPtr kb,
                           bool caching_enabled)
    : vocabulary_(std::move(vocabulary)),
      kb_(std::move(kb)),
      caching_enabled_(caching_enabled),
      impl_(std::make_unique<Impl>()) {
  version_salt_ = logic::HashCombine(
      logic::HashMix(kb_ == nullptr ? 0 : kb_->id()),
      vocabulary_.Fingerprint());
  impl_->salt_prefix = SaltPrefix(version_salt_);
}

QueryContext::~QueryContext() = default;
QueryContext::QueryContext(QueryContext&&) noexcept = default;
QueryContext& QueryContext::operator=(QueryContext&&) noexcept = default;

const std::vector<logic::FormulaPtr>& QueryContext::kb_conjuncts() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->conjuncts.has_value()) {
    impl_->conjuncts = logic::Conjuncts(kb_);
  }
  return *impl_->conjuncts;
}

const QueryContext::KbSplit& QueryContext::kb_split() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->split.has_value()) {
    logic::ConstantSplit split = logic::SplitByConstants(kb_);
    impl_->split = KbSplit{std::move(split.constant_free),
                           std::move(split.constant_dependent)};
  }
  return *impl_->split;
}

const engines::KbAnalysis& QueryContext::kb_analysis() const {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->analysis.has_value()) return *impl_->analysis;
  }
  // AnalyzeKb allocates formulas (arena locks); compute outside our mutex
  // and racily adopt the first result — the computation is deterministic.
  engines::KbAnalysis computed = engines::AnalyzeKb(kb_);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->analysis.has_value()) impl_->analysis = std::move(computed);
  return *impl_->analysis;
}

std::shared_ptr<const semantics::CompiledFormula> QueryContext::Compiled(
    const logic::FormulaPtr& f) const {
  const uint64_t id = f == nullptr ? 0 : f->id();
  if (caching_enabled_) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->programs.find(id);
    if (it != impl_->programs.end()) return it->second;
  }
  // Compile outside the lock (deterministic, so racing adopters agree).
  auto compiled = std::make_shared<const semantics::CompiledFormula>(
      semantics::CompileFormula(f, vocabulary_));
  if (caching_enabled_) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto [it, inserted] = impl_->programs.emplace(id, compiled);
    return it->second;
  }
  return compiled;
}

std::shared_ptr<const semantics::CompiledFormula>
QueryContext::CompiledIfCached(const logic::FormulaPtr& f) const {
  if (!caching_enabled_) return nullptr;
  const uint64_t id = f == nullptr ? 0 : f->id();
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->programs.find(id);
  return it != impl_->programs.end() ? it->second : nullptr;
}

bool QueryContext::LookupFinite(const std::string& key,
                                engines::FiniteResult* out) const {
  if (!caching_enabled_) return false;
  // Key qualification allocates; keep it (like every qualification below)
  // outside the critical section — these paths run on every query of the
  // service's hot loop, with many threads sharing one context.
  const std::string qualified = QualifiedKey(impl_->salt_prefix, key);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->finite.find(qualified);
  if (it == impl_->finite.end()) {
    ++impl_->stats.finite_misses;
    return false;
  }
  ++impl_->stats.finite_hits;
  *out = it->second;
  return true;
}

void QueryContext::StoreFinite(const std::string& key,
                               const engines::FiniteResult& value) {
  if (!caching_enabled_) return;
  // Never memoize a budget-exhausted result: exhaustion reflects the
  // execution environment (work budgets, deadlines), not the semantics of
  // the key.  A failure at a small budget must not poison a later retry
  // that could afford the computation.
  if (value.exhausted) return;
  std::string qualified = QualifiedKey(impl_->salt_prefix, key);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->finite.emplace(std::move(qualified), value);
}

std::shared_ptr<const void> QueryContext::LookupBlob(
    const std::string& key) const {
  if (!caching_enabled_) return nullptr;
  const std::string qualified = QualifiedKey(impl_->salt_prefix, key);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->blobs.find(qualified);
  if (it == impl_->blobs.end()) {
    ++impl_->stats.blob_misses;
    return nullptr;
  }
  ++impl_->stats.blob_hits;
  return it->second.blob;
}

void QueryContext::StoreBlob(const std::string& key,
                             std::shared_ptr<const void> blob,
                             size_t bytes_hint) {
  if (!caching_enabled_) return;
  const std::string qualified = QualifiedKey(impl_->salt_prefix, key);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->blobs.find(qualified);
  size_t refund = it != impl_->blobs.end() ? it->second.bytes : 0;
  if (impl_->stats.blob_bytes - refund + bytes_hint > kBlobBudgetBytes) {
    ++impl_->stats.blob_stores_dropped;
    return;
  }
  impl_->stats.blob_bytes += bytes_hint - refund;
  // Overwrite semantics: engines upgrade "seen once" markers to recorded
  // world lists on the second visit.
  impl_->blobs.insert_or_assign(qualified,
                                Impl::BlobEntry{std::move(blob), bytes_hint});
}

void QueryContext::AdoptCachesFrom(const QueryContext& prior) {
  if (!caching_enabled_ || !prior.caching_enabled_) return;
  if (&prior == this) return;
  // Generational GC along the version chain: only entries salted for the
  // predecessor's KB version or for THIS version (a mutation that reverts
  // to an earlier KB — the assert/retract round trip) are carried
  // forward.  Entries for older versions are dead weight: without this
  // filter a long-lived mutating tenant would copy an ever-growing map on
  // every mutation and pin memory for versions that can never be read
  // again except through this same two-salt window.
  const std::string& keep_prior = prior.impl_->salt_prefix;
  const std::string& keep_self = impl_->salt_prefix;
  auto live = [&](const std::string& key) {
    return key.compare(0, keep_prior.size(), keep_prior) == 0 ||
           key.compare(0, keep_self.size(), keep_self) == 0;
  };
  // Only the predecessor's lock is taken: this context is still private to
  // its constructor's thread (the catalog installs it after adoption).
  std::lock_guard<std::mutex> lock(prior.impl_->mutex);
  for (const auto& [key, value] : prior.impl_->finite) {
    if (!live(key)) continue;
    impl_->finite.emplace(key, value);
  }
  for (const auto& [key, entry] : prior.impl_->blobs) {
    if (!live(key)) continue;
    if (impl_->stats.blob_bytes + entry.bytes > kBlobBudgetBytes) {
      ++impl_->stats.blob_stores_dropped;
      continue;
    }
    impl_->stats.blob_bytes += entry.bytes;
    impl_->blobs.emplace(key, entry);
  }
  // Programs are keyed by formula id alone and depend on the vocabulary:
  // adoptable exactly when the signatures resolve symbols identically.
  if (vocabulary_.Fingerprint() == prior.vocabulary_.Fingerprint()) {
    for (const auto& [id, program] : prior.impl_->programs) {
      impl_->programs.emplace(id, program);
    }
  }
}

void QueryContext::PrewarmAnalyses() const {
  if (!caching_enabled_) return;
  // Drive the exact lazy accessors a query would hit: whatever they
  // compute is by construction bit-identical to what the first
  // post-mutation query would have computed on the request path.
  kb_conjuncts();
  kb_split();
  kb_analysis();
  Compiled(kb_);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ++impl_->stats.analyses_prewarmed;
}

bool QueryContext::ApplyDelta(const QueryContext& prior, const KbDelta& delta) {
  if (!caching_enabled_ || !prior.caching_enabled_) return false;
  PrewarmAnalyses();
  if (!delta.patchable()) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->stats.deltas_rebuilt;
    return false;
  }
  if (version_salt_ == prior.version_salt_) {
    // The mutation reproduced the predecessor's (vocabulary, KB) pair;
    // every entry AdoptCachesFrom carried over is already keyed for this
    // context.  Nothing to re-salt.
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->stats.deltas_patched;
    return true;
  }
  // Collect the predecessor-salted world lists adopted above.  Entries
  // keep their old keys (the two-salt revert window of AdoptCachesFrom);
  // survivors are re-stored under THIS context's salt.
  const std::string& old_prefix = prior.impl_->salt_prefix;
  struct Candidate {
    std::string suffix;
    std::shared_ptr<const void> blob;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& [key, entry] : impl_->blobs) {
      if (key.compare(0, old_prefix.size(), old_prefix) != 0) continue;
      candidates.push_back({key.substr(old_prefix.size()), entry.blob});
    }
  }
  uint64_t patched = 0;
  uint64_t dropped = 0;
  for (const Candidate& candidate : candidates) {
    std::shared_ptr<const void> result;
    size_t bytes = 0;
    if (candidate.suffix.compare(0, 15, "profile.worlds|") == 0) {
      result = engines::PatchProfileWorlds(candidate.blob, vocabulary_,
                                           delta.appended, &bytes);
    } else if (candidate.suffix.compare(0, 13, "exact.worlds|") == 0) {
      result = engines::PatchExactWorlds(candidate.blob, vocabulary_,
                                         delta.appended, &bytes);
    } else {
      // Every other engine's blobs (planner plans, maxent solutions, ...)
      // recompute lazily under the new salt; salting makes that correct.
      continue;
    }
    if (result == nullptr) {
      ++dropped;  // marker or tombstone — the point recomputes lazily
      continue;
    }
    StoreBlob(candidate.suffix, std::move(result), bytes);
    ++patched;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ++impl_->stats.deltas_patched;
  impl_->stats.world_lists_patched += patched;
  impl_->stats.world_lists_dropped += dropped;
  return true;
}

QueryContext::CacheStats QueryContext::cache_stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace rwl
