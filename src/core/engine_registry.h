// EngineRegistry: the priority-ordered pipeline of inference strategies
// behind DegreeOfBelief.
//
// The seed hard-coded its engine routing as one long function; the registry
// makes the pipeline data.  A strategy wraps one way of answering a query
// (a theorem engine, a finite-N sweep, a closed-form limit, ...) behind a
// uniform three-way contract:
//
//   kFinal   — the answer is finalized, stop the pipeline,
//   kPartial — the answer was improved (e.g. a sound symbolic interval
//              that a later numeric strategy may sharpen), keep going,
//   kSkip    — the strategy is disabled or does not apply.
//
// The default registry is seeded with the built-in strategies in the
// paper's preference order: fixed-N (footnote 9), symbolic theorems,
// profile sweep, maximum entropy, exact-enumeration fallback, and the
// opt-in Monte-Carlo sweep.  Callers may register additional strategies;
// registration is thread-safe.
#ifndef RWL_CORE_ENGINE_REGISTRY_H_
#define RWL_CORE_ENGINE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/inference.h"
#include "src/core/query_context.h"

namespace rwl {

class InferenceStrategy {
 public:
  enum class Outcome {
    kFinal,
    kPartial,
    kSkip,
  };

  virtual ~InferenceStrategy() = default;

  virtual std::string name() const = 0;

  // Attempts to answer `query` against the context's KB, reading and
  // updating the accumulated `answer`.
  virtual Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
                      const InferenceOptions& options,
                      Answer* answer) const = 0;
};

class EngineRegistry {
 public:
  // The process-wide registry, pre-seeded with the built-in strategies.
  static EngineRegistry& Default();

  // An empty registry (for tests and custom pipelines).
  EngineRegistry() = default;

  // Lower priority runs earlier; equal priorities run in registration
  // order.
  void Register(int priority,
                std::shared_ptr<const InferenceStrategy> strategy);

  // Strategies in execution order.
  std::vector<std::shared_ptr<const InferenceStrategy>> Ordered() const;

  // Runs the pipeline: strategies in order until one finalizes; a partial
  // interval survives as the fallback answer, otherwise kUnknown.
  Answer Infer(QueryContext& ctx, const logic::FormulaPtr& query,
               const InferenceOptions& options) const;

 private:
  mutable std::mutex mutex_;
  std::multimap<int, std::shared_ptr<const InferenceStrategy>> strategies_;
};

}  // namespace rwl

#endif  // RWL_CORE_ENGINE_REGISTRY_H_
