// EngineRegistry: the registered inference strategies behind
// DegreeOfBelief, routed by the cost-based planner (core/planner.h).
//
// The seed hard-coded its engine routing as one long function; PR 1 made
// the pipeline data (a priority-ordered strategy list); this revision makes
// the routing a *decision*.  A strategy wraps one way of answering a query
// (a theorem engine, a finite-N sweep, a closed-form limit, ...) behind a
// uniform three-way contract:
//
//   kFinal   — the answer is finalized, stop,
//   kPartial — the answer was improved (e.g. a sound symbolic interval
//              that a later numeric strategy may sharpen), keep going,
//   kSkip    — the strategy is disabled or does not apply.
//
// and additionally reports, per (KB, query), a Capability (can it apply at
// all?) and a CostEstimate (how much work would an answer take?).  The
// planner assesses every registered strategy, orders the applicable ones —
// by the paper's fidelity preference or by predicted cost — executes under
// the per-query deadline/work budget of InferenceOptions, falls back
// adaptively when an engine exhausts its budget, and caches the plan in
// the QueryContext for repeated traffic.
//
// Registration priority doubles as the fidelity rank: lower priority =
// preferred at equal applicability.  The default registry is seeded in the
// paper's preference order: fixed-N (footnote 9), symbolic theorems,
// profile sweep, maximum entropy, exact-enumeration fallback, and the
// opt-in Monte-Carlo sweep.  Callers may register additional strategies;
// registration is thread-safe.
#ifndef RWL_CORE_ENGINE_REGISTRY_H_
#define RWL_CORE_ENGINE_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/inference.h"
#include "src/core/query_context.h"

namespace rwl {

class InferenceStrategy {
 public:
  enum class Outcome {
    kFinal,
    kPartial,
    kSkip,
  };

  virtual ~InferenceStrategy() = default;

  // Stable identifier: the planner's cache entries, rwlq --engine and the
  // plan trace all refer to strategies by this name.
  virtual std::string name() const = 0;

  // Attempts to answer `query` against the context's KB, reading and
  // updating the accumulated `answer`.
  virtual Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
                      const InferenceOptions& options,
                      Answer* answer) const = 0;

  // ---- Planner hooks (core/planner.h) ----

  // Cheap applicability pre-check: may this strategy produce an answer for
  // this (KB, query) under these options?  Must be a superset of Run's own
  // skip conditions (a strategy assessed applicable may still return kSkip
  // at runtime; the planner falls through).  The default claims
  // applicability with no structural facts.
  virtual engines::Capability Assess(QueryContext& ctx,
                                     const logic::FormulaPtr& query,
                                     const InferenceOptions& options) const;

  // Predicted work/accuracy of running this strategy to completion (sweep
  // strategies aggregate their engine's per-point estimates over the
  // (N, ⃗τ) schedule).  The default is an uninformative high cost.
  virtual engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& options) const;

  // How a differential comparator must treat this strategy's answers
  // (statistical estimators carry sampling error).
  virtual engines::ResultClass result_class() const {
    return engines::ResultClass::kDeterministic;
  }

  // Preemptive strategies run before every other candidate regardless of
  // cost ordering (fixed-N: a known domain size replaces limit taking).
  virtual bool preemptive() const { return false; }
};

class EngineRegistry {
 public:
  // The process-wide registry, pre-seeded with the built-in strategies.
  static EngineRegistry& Default();

  // An empty registry (for tests and custom pipelines).
  EngineRegistry() = default;

  // Lower priority ranks earlier in fidelity order; equal priorities rank
  // in registration order.
  void Register(int priority,
                std::shared_ptr<const InferenceStrategy> strategy);

  // Strategies in fidelity (registration-priority) order.
  std::vector<std::shared_ptr<const InferenceStrategy>> Ordered() const;

  // The strategy registered under `name`, or null (rwlq --engine).
  std::shared_ptr<const InferenceStrategy> Find(const std::string& name)
      const;

  // Plans and executes: assesses capability and cost of every registered
  // strategy, orders candidates (paper preference or predicted cost),
  // honors options.deadline_ms / work_budget / force_engine, reuses cached
  // plans from the context, and attaches a structured plan trace to the
  // answer.  A partial interval survives as the fallback answer, otherwise
  // kUnknown.
  Answer Infer(QueryContext& ctx, const logic::FormulaPtr& query,
               const InferenceOptions& options) const;

 private:
  mutable std::mutex mutex_;
  std::multimap<int, std::shared_ptr<const InferenceStrategy>> strategies_;
};

}  // namespace rwl

#endif  // RWL_CORE_ENGINE_REGISTRY_H_
