#include "src/core/inference.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/core/engine_registry.h"
#include "src/engines/exact_engine.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/montecarlo_engine.h"
#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"

namespace rwl {

std::string StatusToString(Answer::Status status) {
  switch (status) {
    case Answer::Status::kPoint:
      return "point";
    case Answer::Status::kInterval:
      return "interval";
    case Answer::Status::kNonexistent:
      return "nonexistent";
    case Answer::Status::kUndefined:
      return "undefined";
    case Answer::Status::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

// 0. Known domain size (footnote 9): evaluate Pr_N^τ directly at N.
// Final whenever a fixed N is requested — there is no limit to fall back
// to.
class FixedDomainStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "fixed-n"; }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (options.fixed_domain_size <= 0) return Outcome::kSkip;
    const int n = options.fixed_domain_size;
    engines::ProfileEngine profile;
    engines::ExactEngine exact;
    const engines::FiniteEngine* engine = nullptr;
    if (options.use_profile && profile.Supports(ctx, query, n)) {
      engine = &profile;
    } else if (options.use_exact_fallback && exact.Supports(ctx, query, n)) {
      engine = &exact;
    }
    if (engine != nullptr) {
      engines::FiniteResult fr =
          engine->DegreeAt(ctx, query, n, options.tolerances);
      if (fr.exhausted) {
        answer->status = Answer::Status::kUnknown;
        answer->explanation = "work budget exhausted at the fixed N";
        return Outcome::kFinal;
      }
      if (!fr.well_defined) {
        answer->status = Answer::Status::kUndefined;
        answer->method = engine == &profile ? "profile @ fixed N"
                                            : "exact @ fixed N";
        answer->explanation = "no worlds satisfy the KB at this (N, τ)";
        return Outcome::kFinal;
      }
      answer->status = Answer::Status::kPoint;
      answer->value = fr.probability;
      answer->lo = answer->hi = fr.probability;
      answer->method = engine == &profile ? "profile @ fixed N"
                                          : "exact @ fixed N";
      answer->converged = true;
      return Outcome::kFinal;
    }
    answer->status = Answer::Status::kUnknown;
    answer->explanation = "no engine supports the fixed domain size";
    return Outcome::kFinal;
  }
};

// 1. Symbolic theorems: exact Pr_∞, full language.  Points and
// nonexistence are final; an interval is partial — a numeric strategy may
// sharpen it to a point.
class SymbolicStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "symbolic"; }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_symbolic) return Outcome::kSkip;
    engines::SymbolicEngine symbolic;
    engines::SymbolicAnswer sa = symbolic.Infer(ctx, query);
    if (sa.status == engines::SymbolicAnswer::Status::kNonexistent) {
      answer->status = Answer::Status::kNonexistent;
      answer->method = sa.rule;
      answer->explanation = sa.explanation;
      return Outcome::kFinal;
    }
    if (sa.status == engines::SymbolicAnswer::Status::kInterval) {
      answer->method = sa.rule;
      answer->explanation = sa.explanation;
      answer->converged = true;
      if (sa.is_point()) {
        answer->status = Answer::Status::kPoint;
        answer->value = sa.lo;
        answer->lo = answer->hi = sa.lo;
        return Outcome::kFinal;
      }
      answer->status = Answer::Status::kInterval;
      answer->lo = sa.lo;
      answer->hi = sa.hi;
      return Outcome::kPartial;
    }
    return Outcome::kSkip;
  }
};

// 2. Profile engine sweep (unary KBs).
class ProfileSweepStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "profile-sweep"; }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_profile) return Outcome::kSkip;
    engines::ProfileEngine profile;
    bool any_supported = false;
    for (int n : options.limit.domain_sizes) {
      any_supported = any_supported || profile.Supports(ctx, query, n);
    }
    if (!any_supported) return Outcome::kSkip;
    engines::LimitResult lr = engines::EstimateLimit(
        profile, ctx, query, options.tolerances, options.limit);
    answer->series = lr.series;
    if (lr.never_defined) {
      answer->status = Answer::Status::kUndefined;
      answer->method = "profile sweep";
      answer->explanation = "no worlds satisfy the KB at any sampled (N, τ)";
      return Outcome::kFinal;
    }
    if (lr.value.has_value()) {
      answer->status = Answer::Status::kPoint;
      answer->value = *lr.value;
      answer->lo = answer->hi = *lr.value;
      answer->method = answer->method.empty()
                           ? "profile sweep"
                           : answer->method + " + profile sweep";
      answer->converged = lr.converged;
      return Outcome::kFinal;
    }
    return Outcome::kPartial;
  }
};

// 3. Maximum-entropy limit (unary KBs within the linear fragment).
class MaxEntStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "maxent"; }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_maxent) return Outcome::kSkip;
    engines::MaxEntEngine maxent;
    engines::MaxEntEngine::LimitResultME mr =
        maxent.InferLimit(ctx, query, options.tolerances);
    if (!mr.supported) return Outcome::kSkip;
    answer->status = Answer::Status::kPoint;
    answer->value = mr.value;
    answer->lo = answer->hi = mr.value;
    answer->method = answer->method.empty()
                         ? "maximum entropy"
                         : answer->method + " + maximum entropy";
    answer->converged = mr.converged;
    return Outcome::kFinal;
  }
};

// 4. Exact enumeration fallback for tiny instances.
class ExactFallbackStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "exact-fallback"; }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_exact_fallback) return Outcome::kSkip;
    engines::ExactEngine exact;
    engines::LimitOptions small;
    small.domain_sizes = {2, 3, 4, 5, 6};
    small.tolerance_scales = options.limit.tolerance_scales;
    small.num_threads = options.limit.num_threads;
    bool any = false;
    for (int n : small.domain_sizes) {
      any = any || exact.Supports(ctx, query, n);
    }
    if (!any) return Outcome::kSkip;
    engines::LimitResult lr =
        engines::EstimateLimit(exact, ctx, query, options.tolerances, small);
    answer->series = lr.series;
    if (lr.value.has_value()) {
      answer->status = Answer::Status::kPoint;
      answer->value = *lr.value;
      answer->lo = answer->hi = *lr.value;
      answer->method = answer->method.empty()
                           ? "exact enumeration (small N)"
                           : answer->method + " + exact enumeration";
      answer->converged = lr.converged;
      return Outcome::kFinal;
    }
    return Outcome::kPartial;
  }
};

// 5. Monte-Carlo sweep (opt-in): rejection sampling covers vocabularies no
// other numeric engine reaches (binary predicates at medium N), at the
// price of sampling error — so it must be requested explicitly.
class MonteCarloStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "montecarlo-sweep"; }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_montecarlo) return Outcome::kSkip;
    engines::MonteCarloEngine montecarlo;
    bool any = false;
    for (int n : options.limit.domain_sizes) {
      any = any || montecarlo.Supports(ctx, query, n);
    }
    if (!any) return Outcome::kSkip;
    engines::LimitResult lr = engines::EstimateLimit(
        montecarlo, ctx, query, options.tolerances, options.limit);
    if (lr.value.has_value()) {
      // This sweep produced the answer, so its series replaces any earlier
      // engine's diagnostics.
      answer->series = lr.series;
      answer->status = Answer::Status::kPoint;
      answer->value = *lr.value;
      answer->lo = answer->hi = *lr.value;
      answer->method = answer->method.empty()
                           ? "montecarlo sweep"
                           : answer->method + " + montecarlo sweep";
      answer->converged = lr.converged;
      return Outcome::kFinal;
    }
    if (answer->series.empty()) answer->series = lr.series;
    return Outcome::kPartial;
  }
};

}  // namespace

EngineRegistry& EngineRegistry::Default() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    r->Register(0, std::make_shared<FixedDomainStrategy>());
    r->Register(10, std::make_shared<SymbolicStrategy>());
    r->Register(20, std::make_shared<ProfileSweepStrategy>());
    r->Register(30, std::make_shared<MaxEntStrategy>());
    r->Register(40, std::make_shared<ExactFallbackStrategy>());
    r->Register(50, std::make_shared<MonteCarloStrategy>());
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(
    int priority, std::shared_ptr<const InferenceStrategy> strategy) {
  std::lock_guard<std::mutex> lock(mutex_);
  strategies_.emplace(priority, std::move(strategy));
}

std::vector<std::shared_ptr<const InferenceStrategy>> EngineRegistry::Ordered()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const InferenceStrategy>> ordered;
  ordered.reserve(strategies_.size());
  for (const auto& [priority, strategy] : strategies_) {
    ordered.push_back(strategy);
  }
  return ordered;
}

Answer EngineRegistry::Infer(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const {
  Answer answer;
  for (const auto& strategy : Ordered()) {
    if (strategy->Run(ctx, query, options, &answer) ==
        InferenceStrategy::Outcome::kFinal) {
      return answer;
    }
  }
  // The symbolic interval (if any) is the best we have.
  if (answer.status == Answer::Status::kInterval) return answer;
  answer.status = Answer::Status::kUnknown;
  if (answer.explanation.empty()) {
    answer.explanation = "no engine applies to this (KB, query) pair";
  }
  return answer;
}

Answer DegreeOfBelief(QueryContext& ctx, const logic::FormulaPtr& query,
                      const InferenceOptions& options) {
  return EngineRegistry::Default().Infer(ctx, query, options);
}

Answer DegreeOfBelief(const KnowledgeBase& kb, const logic::FormulaPtr& query,
                      const InferenceOptions& options) {
  QueryContext ctx =
      MakeQueryContext(kb, std::span<const logic::FormulaPtr>(&query, 1),
                       options);
  return DegreeOfBelief(ctx, query, options);
}

QueryContext MakeQueryContext(const KnowledgeBase& kb,
                              std::span<const logic::FormulaPtr> queries,
                              const InferenceOptions& options) {
  logic::Vocabulary vocabulary = kb.vocabulary();
  for (const auto& query : queries) {
    logic::RegisterSymbols(query, &vocabulary);
  }
  return QueryContext(std::move(vocabulary), kb.AsFormula(),
                      options.enable_caching);
}

namespace {

// True when the query mentions no symbol beyond the KB's vocabulary — the
// condition under which sharing the KB-only context reproduces the
// per-query vocabulary exactly.
bool CoveredByKbVocabulary(const KnowledgeBase& kb,
                           const logic::FormulaPtr& query) {
  const logic::Vocabulary& vocabulary = kb.vocabulary();
  for (const auto& predicate : logic::PredicatesOf(query)) {
    if (!vocabulary.FindPredicate(predicate).has_value()) return false;
  }
  for (const auto& function : logic::FunctionsOf(query)) {
    if (!vocabulary.FindFunction(function).has_value()) return false;
  }
  return true;
}

}  // namespace

std::vector<Answer> DegreesOfBelief(const KnowledgeBase& kb,
                                    std::span<const logic::FormulaPtr> queries,
                                    const InferenceOptions& options) {
  // Queries share the context only when they add no symbols to the KB's
  // vocabulary; a query introducing fresh predicates/constants gets its
  // own context instead.  This keeps every answer identical to the
  // sequential DegreeOfBelief call: a shared union vocabulary would let
  // one query's symbols shift another's engine support limits (world
  // counts grow with the vocabulary, and the profile engine caps atoms
  // and constants).
  QueryContext shared = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(), options);
  // Hash-consing makes duplicate queries pointer-equal: answer each
  // distinct formula once.
  std::unordered_map<const logic::Formula*, size_t> first_index;
  std::vector<Answer> answers(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = first_index.emplace(queries[i].get(), i);
    if (!inserted) {
      answers[i] = answers[it->second];
      continue;
    }
    if (CoveredByKbVocabulary(kb, queries[i])) {
      answers[i] = DegreeOfBelief(shared, queries[i], options);
    } else {
      answers[i] = DegreeOfBelief(kb, queries[i], options);
    }
  }
  return answers;
}

std::vector<Answer> DegreesOfBelief(const KnowledgeBase& kb,
                                    std::span<const std::string> queries,
                                    const InferenceOptions& options) {
  std::vector<logic::FormulaPtr> parsed(queries.size());
  std::vector<Answer> answers(queries.size());
  std::vector<logic::FormulaPtr> valid;
  valid.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    logic::ParseResult result = logic::ParseFormula(queries[i]);
    if (!result.ok()) {
      answers[i].status = Answer::Status::kUnknown;
      answers[i].explanation = "query parse error: " + result.error;
      continue;
    }
    parsed[i] = result.formula;
    valid.push_back(result.formula);
  }
  std::vector<Answer> valid_answers = DegreesOfBelief(kb, valid, options);
  size_t next = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (parsed[i] != nullptr) answers[i] = std::move(valid_answers[next++]);
  }
  return answers;
}

Answer ConditionalDegreeOfBelief(const KnowledgeBase& kb,
                                 const logic::FormulaPtr& query,
                                 const logic::FormulaPtr& evidence,
                                 const InferenceOptions& options) {
  KnowledgeBase conditioned = kb;
  conditioned.Add(evidence);
  return DegreeOfBelief(conditioned, query, options);
}

Answer DegreeOfBelief(const KnowledgeBase& kb, std::string_view query,
                      const InferenceOptions& options) {
  logic::ParseResult parsed = logic::ParseFormula(query);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rwl: query parse error: %s\n",
                 parsed.error.c_str());
    std::abort();
  }
  return DegreeOfBelief(kb, parsed.formula, options);
}

}  // namespace rwl
