#include "src/core/inference.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/core/engine_registry.h"
#include "src/core/planner.h"
#include "src/defaults/fragment.h"
#include "src/defaults/gmp90.h"
#include "src/engines/exact_engine.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/montecarlo_engine.h"
#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/evidence/combination.h"
#include "src/evidence/dempster.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"

namespace rwl {

std::string StatusToString(Answer::Status status) {
  switch (status) {
    case Answer::Status::kPoint:
      return "point";
    case Answer::Status::kInterval:
      return "interval";
    case Answer::Status::kNonexistent:
      return "nonexistent";
    case Answer::Status::kUndefined:
      return "undefined";
    case Answer::Status::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

// Shared by the sweep strategies: is the engine capable at any N of the
// schedule?  Goes through the engine's AssessCapability hook so engine
// subclasses can refine applicability beyond Supports.
template <typename Engine>
bool AnySupported(const Engine& engine, const QueryContext& ctx,
                  const logic::FormulaPtr& query,
                  const std::vector<int>& domain_sizes) {
  for (int n : domain_sizes) {
    if (engine.AssessCapability(ctx, query, n).applicable) return true;
  }
  return false;
}

// Shared by the sweep strategies: per-point engine cost summed over the
// (N, ⃗τ-scale) schedule.
template <typename Engine>
engines::CostEstimate SweepCost(const Engine& engine, QueryContext& ctx,
                                const logic::FormulaPtr& query,
                                const std::vector<int>& domain_sizes,
                                size_t num_scales, double limit_error) {
  engines::CostEstimate total;
  total.error = limit_error;
  // The basis describes the dominant (most expensive) probe — the one a
  // reader should reconcile the work figure against.
  double dominant_work = -1.0;
  for (int n : domain_sizes) {
    if (!engine.Supports(ctx, query, n)) continue;
    engines::CostEstimate point = engine.EstimateCost(ctx, query, n);
    total.work += point.work * static_cast<double>(num_scales);
    total.error = std::max(total.error, point.error);
    if (point.work > dominant_work) {
      dominant_work = point.work;
      total.basis = point.basis;
    }
  }
  if (!total.basis.empty()) {
    total.basis += " at the largest N; work summed over the sweep schedule";
  }
  return total;
}

// 0. Known domain size (footnote 9): evaluate Pr_N^τ directly at N.
// Final whenever a fixed N is requested — there is no limit to fall back
// to.
class FixedDomainStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "fixed-n"; }

  bool preemptive() const override { return true; }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    cap.applicable = options.fixed_domain_size > 0;
    cap.reason = cap.applicable
                     ? "fixed domain size N=" +
                           std::to_string(options.fixed_domain_size) +
                           " requested"
                     : "no fixed domain size requested";
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& options) const override {
    const int n = options.fixed_domain_size;
    engines::ProfileEngine profile;
    engines::ExactEngine exact;
    if (options.use_profile && profile.Supports(ctx, query, n)) {
      return profile.EstimateCost(ctx, query, n);
    }
    if (options.use_exact_fallback && exact.Supports(ctx, query, n)) {
      return exact.EstimateCost(ctx, query, n);
    }
    engines::CostEstimate none;
    none.basis = "no engine supports the fixed domain size";
    return none;
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (options.fixed_domain_size <= 0) return Outcome::kSkip;
    const int n = options.fixed_domain_size;
    engines::ProfileEngine profile;
    engines::ExactEngine exact;
    const engines::FiniteEngine* engine = nullptr;
    if (options.use_profile && profile.Supports(ctx, query, n)) {
      engine = &profile;
    } else if (options.use_exact_fallback && exact.Supports(ctx, query, n)) {
      engine = &exact;
    }
    if (engine != nullptr) {
      engines::FiniteResult fr =
          engine->DegreeAt(ctx, query, n, options.tolerances);
      if (fr.exhausted) {
        answer->status = Answer::Status::kUnknown;
        answer->explanation = "work budget exhausted at the fixed N";
        return Outcome::kFinal;
      }
      if (!fr.well_defined) {
        answer->status = Answer::Status::kUndefined;
        answer->method = engine == &profile ? "profile @ fixed N"
                                            : "exact @ fixed N";
        answer->explanation = "no worlds satisfy the KB at this (N, τ)";
        return Outcome::kFinal;
      }
      answer->status = Answer::Status::kPoint;
      answer->value = fr.probability;
      answer->lo = answer->hi = fr.probability;
      answer->method = engine == &profile ? "profile @ fixed N"
                                          : "exact @ fixed N";
      answer->converged = true;
      return Outcome::kFinal;
    }
    answer->status = Answer::Status::kUnknown;
    answer->explanation = "no engine supports the fixed domain size";
    return Outcome::kFinal;
  }
};

// 1. Symbolic theorems: exact Pr_∞, full language.  Points and
// nonexistence are final; an interval is partial — a numeric strategy may
// sharpen it to a point.
class SymbolicStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "symbolic"; }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::SymbolicEngine symbolic;
    engines::Capability cap = symbolic.Assess(ctx, query);
    if (!options.use_symbolic) {
      cap.applicable = false;
      cap.reason = "disabled (--no-symbolic)";
    }
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& /*options*/) const override {
    engines::SymbolicEngine symbolic;
    return symbolic.EstimateCost(ctx, query);
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_symbolic) return Outcome::kSkip;
    engines::SymbolicEngine symbolic;
    engines::SymbolicAnswer sa = symbolic.Infer(ctx, query);
    if (sa.status == engines::SymbolicAnswer::Status::kNonexistent) {
      answer->status = Answer::Status::kNonexistent;
      answer->method = sa.rule;
      answer->explanation = sa.explanation;
      return Outcome::kFinal;
    }
    if (sa.status == engines::SymbolicAnswer::Status::kInterval) {
      answer->method = sa.rule;
      answer->explanation = sa.explanation;
      answer->converged = true;
      if (sa.is_point()) {
        answer->status = Answer::Status::kPoint;
        answer->value = sa.lo;
        answer->lo = answer->hi = sa.lo;
        return Outcome::kFinal;
      }
      answer->status = Answer::Status::kInterval;
      answer->lo = sa.lo;
      answer->hi = sa.hi;
      return Outcome::kPartial;
    }
    return Outcome::kSkip;
  }
};

// 2. Profile engine sweep (unary KBs).
class ProfileSweepStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "profile"; }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::ProfileEngine profile;
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!options.use_profile) {
      cap.reason = "disabled";
      return cap;
    }
    cap.applicable =
        AnySupported(profile, ctx, query, options.limit.domain_sizes);
    cap.reason = cap.applicable
                     ? "unary fragment within the leaf budget"
                     : "no schedule N within the engine's structural "
                       "limits (unary fragment, atom/constant caps)";
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& options) const override {
    engines::ProfileEngine profile;
    return SweepCost(profile, ctx, query, options.limit.domain_sizes,
                     options.limit.tolerance_scales.size(),
                     options.limit.convergence_epsilon);
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_profile) return Outcome::kSkip;
    engines::ProfileEngine profile;
    bool any_supported = false;
    for (int n : options.limit.domain_sizes) {
      any_supported = any_supported || profile.Supports(ctx, query, n);
    }
    if (!any_supported) return Outcome::kSkip;
    engines::LimitResult lr = engines::EstimateLimit(
        profile, ctx, query, options.tolerances, options.limit);
    answer->series = lr.series;
    if (lr.exhausted && answer->explanation.empty()) {
      answer->explanation = "profile engine exhausted its leaf budget";
    }
    if (lr.deadline_hit && answer->explanation.empty()) {
      answer->explanation = "profile sweep cut short by the deadline";
    }
    if (lr.never_defined) {
      // Only a sweep that actually evaluated its points may claim the KB
      // has no worlds.  A sweep cut short by the work budget or the
      // deadline has no information — fall through so the planner can try
      // the next candidate.
      if (lr.series.empty() || lr.exhausted || lr.deadline_hit) {
        return Outcome::kPartial;
      }
      answer->status = Answer::Status::kUndefined;
      answer->method = "profile sweep";
      answer->explanation = "no worlds satisfy the KB at any sampled (N, τ)";
      return Outcome::kFinal;
    }
    if (lr.value.has_value()) {
      answer->status = Answer::Status::kPoint;
      answer->value = *lr.value;
      answer->lo = answer->hi = *lr.value;
      answer->method = answer->method.empty()
                           ? "profile sweep"
                           : answer->method + " + profile sweep";
      answer->converged = lr.converged;
      return Outcome::kFinal;
    }
    return Outcome::kPartial;
  }
};

// 3. Maximum-entropy limit (unary KBs within the linear fragment).
class MaxEntStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "maxent"; }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::MaxEntEngine maxent;
    engines::Capability cap = maxent.Assess(ctx, query);
    if (!options.use_maxent) {
      cap.applicable = false;
      cap.reason = "disabled";
    }
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& /*options*/) const override {
    engines::MaxEntEngine maxent;
    return maxent.EstimateCost(ctx, query);
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_maxent) return Outcome::kSkip;
    engines::MaxEntEngine maxent;
    engines::MaxEntEngine::LimitResultME mr =
        maxent.InferLimit(ctx, query, options.tolerances);
    if (!mr.supported) return Outcome::kSkip;
    answer->status = Answer::Status::kPoint;
    answer->value = mr.value;
    answer->lo = answer->hi = mr.value;
    answer->method = answer->method.empty()
                         ? "maximum entropy"
                         : answer->method + " + maximum entropy";
    answer->converged = mr.converged;
    return Outcome::kFinal;
  }
};

// 4. Exact enumeration fallback for tiny instances.
class ExactFallbackStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "exact"; }

  // The sweep schedule is fixed small: enumeration is hopeless beyond
  // tiny N, and the limit is extrapolated from the prefix.
  static std::vector<int> SmallSizes() { return {2, 3, 4, 5, 6}; }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::ExactEngine exact;
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!options.use_exact_fallback) {
      cap.reason = "disabled";
      return cap;
    }
    cap.applicable = AnySupported(exact, ctx, query, SmallSizes());
    cap.reason = cap.applicable
                     ? "world odometer fits at small N"
                     : "world count exceeds the enumeration cap at every "
                       "small N";
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& options) const override {
    engines::ExactEngine exact;
    engines::CostEstimate cost =
        SweepCost(exact, ctx, query, SmallSizes(),
                  options.limit.tolerance_scales.size(),
                  options.limit.convergence_epsilon);
    // Extrapolating Pr_∞ from N ≤ 6 carries real finite-size bias.
    cost.error = std::max(cost.error, 0.05);
    return cost;
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_exact_fallback) return Outcome::kSkip;
    engines::ExactEngine exact;
    engines::LimitOptions small;
    small.domain_sizes = SmallSizes();
    small.tolerance_scales = options.limit.tolerance_scales;
    small.num_threads = options.limit.num_threads;
    small.deadline = options.limit.deadline;
    bool any = false;
    for (int n : small.domain_sizes) {
      any = any || exact.Supports(ctx, query, n);
    }
    if (!any) return Outcome::kSkip;
    engines::LimitResult lr =
        engines::EstimateLimit(exact, ctx, query, options.tolerances, small);
    answer->series = lr.series;
    if (lr.deadline_hit && answer->explanation.empty()) {
      answer->explanation = "exact sweep cut short by the deadline";
    }
    if (lr.value.has_value()) {
      answer->status = Answer::Status::kPoint;
      answer->value = *lr.value;
      answer->lo = answer->hi = *lr.value;
      answer->method = answer->method.empty()
                           ? "exact enumeration (small N)"
                           : answer->method + " + exact enumeration";
      answer->converged = lr.converged;
      return Outcome::kFinal;
    }
    return Outcome::kPartial;
  }
};

// 5. Monte-Carlo sweep (opt-in): rejection sampling covers vocabularies no
// other numeric engine reaches (binary predicates at medium N), at the
// price of sampling error — so it must be requested explicitly.
class MonteCarloStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "montecarlo"; }

  // The sampling-error budget of InferenceOptions maps onto the engine's
  // sample count; everything else stays at the engine defaults (and is
  // pinned into the memo key by the engine's CacheSalt).
  static engines::MonteCarloEngine MakeEngine(
      const InferenceOptions& options) {
    engines::MonteCarloEngine::Options mc;
    if (options.montecarlo_samples > 0) {
      mc.num_samples = options.montecarlo_samples;
    }
    return engines::MonteCarloEngine(mc);
  }

  engines::ResultClass result_class() const override {
    return engines::ResultClass::kStatistical;
  }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::MonteCarloEngine montecarlo = MakeEngine(options);
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!options.use_montecarlo) {
      cap.reason = "disabled (opt-in: sampling error; --montecarlo)";
      return cap;
    }
    cap.applicable =
        AnySupported(montecarlo, ctx, query, options.limit.domain_sizes);
    cap.reason = cap.applicable
                     ? "world representation within the cell cap"
                     : "world representation exceeds the cell cap at "
                       "every schedule N";
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& options) const override {
    engines::MonteCarloEngine montecarlo = MakeEngine(options);
    return SweepCost(montecarlo, ctx, query, options.limit.domain_sizes,
                     options.limit.tolerance_scales.size(),
                     options.limit.convergence_epsilon);
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_montecarlo) return Outcome::kSkip;
    engines::MonteCarloEngine montecarlo = MakeEngine(options);
    bool any = false;
    for (int n : options.limit.domain_sizes) {
      any = any || montecarlo.Supports(ctx, query, n);
    }
    if (!any) return Outcome::kSkip;
    engines::LimitResult lr = engines::EstimateLimit(
        montecarlo, ctx, query, options.tolerances, options.limit);
    if (lr.deadline_hit && answer->explanation.empty()) {
      answer->explanation = "montecarlo sweep cut short by the deadline";
    }
    if (lr.value.has_value()) {
      // This sweep produced the answer, so its series replaces any earlier
      // engine's diagnostics.
      answer->series = lr.series;
      answer->status = Answer::Status::kPoint;
      answer->value = *lr.value;
      answer->lo = answer->hi = *lr.value;
      answer->method = answer->method.empty()
                           ? "montecarlo sweep"
                           : answer->method + " + montecarlo sweep";
      answer->converged = lr.converged;
      return Outcome::kFinal;
    }
    if (answer->series.empty()) answer->series = lr.series;
    return Outcome::kPartial;
  }
};

// ---- The defaults family (Section 6) ----
//
// Three strategies over the propositional-defaults fragment
// (defaults/fragment.h).  All are sound for the random-worlds limit:
// p-entailment is a conservative part of the GMP90 maximum-entropy system,
// and Theorem 6.1 identifies ME-plausible consequence with Pr_∞ = 1 under
// the unary translation.  epsilon_semantics and klm decide the *same*
// relation by two independent algorithms (greedy peel vs subset
// enumeration) — the differential `defaults` check leans on that.

// A p-entailment decider differing only in caps and the underlying
// algorithm.
class PEntailmentStrategy : public InferenceStrategy {
 public:
  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!options.use_defaults) {
      cap.applicable = false;
      cap.reason = "disabled (defaults family off)";
      return cap;
    }
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, limits());
    cap.applicable = instance.ok;
    cap.reason = instance.ok
                     ? "propositional-defaults fragment: " +
                           std::to_string(instance.rules.size()) +
                           " rules over " +
                           std::to_string(instance.num_vars) + " classes"
                     : instance.reason;
    return cap;
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_defaults) return Outcome::kSkip;
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, limits());
    if (!instance.ok) return Outcome::kSkip;
    const defaults::Rule negated{
        instance.query.antecedent,
        defaults::Prop::Not(instance.query.consequent)};
    const bool entails_query =
        Entails(instance.rules, instance.query, instance.num_vars);
    const bool entails_negation =
        Entails(instance.rules, negated, instance.num_vars);
    if (entails_query == entails_negation) {
      // Neither: p-entailment is silent (it is incomplete for random
      // worlds).  Both: the evidence is negligible under the rules and
      // conditioning degenerates — the numeric sweeps decide.
      return Outcome::kSkip;
    }
    answer->status = Answer::Status::kPoint;
    answer->value = entails_query ? 1.0 : 0.0;
    answer->lo = answer->hi = answer->value;
    answer->method = answer->method.empty()
                         ? method_label()
                         : answer->method + " + " + method_label();
    answer->explanation = entails_query
                              ? "the rules p-entail evidence → query"
                              : "the rules p-entail evidence → ¬query";
    answer->converged = true;
    return Outcome::kFinal;
  }

 protected:
  virtual defaults::FragmentLimits limits() const = 0;
  virtual std::string method_label() const = 0;
  virtual bool Entails(const std::vector<defaults::Rule>& rules,
                       const defaults::Rule& query, int num_vars) const = 0;
};

// 6. ε-semantics p-entailment via the Goldszmidt–Pearl greedy peel.
class EpsilonSemanticsStrategy : public PEntailmentStrategy {
 public:
  std::string name() const override { return "epsilon_semantics"; }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& /*options*/) const override {
    engines::CostEstimate cost;
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, limits());
    const double rules = static_cast<double>(instance.rules.size()) + 1.0;
    const double worlds =
        static_cast<double>(uint64_t{1} << std::max(instance.num_vars, 1));
    // Two greedy peels (query and negation): peel rounds × toleration
    // probes × worlds × material checks.
    cost.work = 2.0 * rules * rules * rules * worlds;
    cost.error = 0.0;
    cost.basis = "greedy tolerance peel over 2^classes worlds, both query "
                 "directions";
    return cost;
  }

 protected:
  defaults::FragmentLimits limits() const override {
    defaults::FragmentLimits limits;
    limits.max_vars = 10;
    limits.max_rules = 16;
    return limits;
  }
  std::string method_label() const override {
    return "epsilon-semantics p-entailment";
  }
  bool Entails(const std::vector<defaults::Rule>& rules,
               const defaults::Rule& query, int num_vars) const override {
    return defaults::PEntails(rules, query, num_vars);
  }
};

// 7. KLM preferential entailment — for this fragment the same relation as
// p-entailment (System P), decided by the definitional subset enumeration.
// Deliberately an independent implementation: the fuzzer compares it
// against epsilon_semantics' greedy peel.
class KlmStrategy : public PEntailmentStrategy {
 public:
  std::string name() const override { return "klm"; }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& /*options*/) const override {
    engines::CostEstimate cost;
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, limits());
    const double rules = static_cast<double>(instance.rules.size()) + 1.0;
    const double worlds =
        static_cast<double>(uint64_t{1} << std::max(instance.num_vars, 1));
    cost.work = 2.0 * std::pow(2.0, rules) * rules * worlds;
    cost.error = 0.0;
    cost.basis = "tolerated-rule test over all 2^rules subsets, both query "
                 "directions";
    return cost;
  }

 protected:
  defaults::FragmentLimits limits() const override {
    defaults::FragmentLimits limits;
    limits.max_vars = 8;
    limits.max_rules = 11;
    return limits;
  }
  std::string method_label() const override { return "klm p-entailment"; }
  bool Entails(const std::vector<defaults::Rule>& rules,
               const defaults::Rule& query, int num_vars) const override {
    return defaults::PEntailsBySubsets(rules, query, num_vars);
  }
};

// 8. GMP90 maximum-entropy defaults: the κ-strength comparison decides
// specificity beyond p-entailment; exponent-level ties fall through to the
// numeric µ*_ε series.  Exact for the fragment by Theorem 6.1.
class Gmp90Strategy : public InferenceStrategy {
 public:
  std::string name() const override { return "gmp90"; }

  static defaults::FragmentLimits Limits() {
    defaults::FragmentLimits limits;
    limits.max_vars = 8;
    limits.max_rules = 12;
    return limits;
  }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!options.use_defaults) {
      cap.applicable = false;
      cap.reason = "disabled (defaults family off)";
      return cap;
    }
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, Limits());
    cap.applicable = instance.ok;
    cap.reason = instance.ok
                     ? "propositional-defaults fragment: " +
                           std::to_string(instance.rules.size()) +
                           " rules over " +
                           std::to_string(instance.num_vars) + " classes"
                     : instance.reason;
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& /*options*/) const override {
    engines::CostEstimate cost;
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, Limits());
    const double rules = static_cast<double>(instance.rules.size()) + 1.0;
    const double worlds =
        static_cast<double>(uint64_t{1} << std::max(instance.num_vars, 1));
    // Strength fixed point (rounds × rules × worlds × rules) plus up to
    // six entropy solves on ties (~200 iterations each).
    cost.work = rules * rules * rules * worlds + 1200.0 * worlds;
    cost.error = 0.0;
    cost.basis = "κ-strength fixed point over 2^classes worlds (+ µ*_ε "
                 "series on exponent ties)";
    return cost;
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_defaults) return Outcome::kSkip;
    defaults::DefaultsInstance instance = defaults::AnalyzeDefaultsInstance(
        ctx.kb_conjuncts(), query, Limits());
    if (!instance.ok) return Outcome::kSkip;
    // The evidence must be propositionally satisfiable: facts are hard, so
    // contradictory evidence means no worlds at all — the sweeps' call
    // (kUndefined), not a defaults verdict.
    const uint32_t num_worlds = uint32_t{1} << instance.num_vars;
    bool evidence_satisfiable = false;
    for (uint32_t w = 0; w < num_worlds && !evidence_satisfiable; ++w) {
      evidence_satisfiable =
          defaults::EvalProp(instance.query.antecedent, w);
    }
    if (!evidence_satisfiable) return Outcome::kSkip;

    defaults::Gmp90System system(instance.num_vars, instance.rules);
    if (system.RuleStrengths().empty()) {
      // Fixed point diverged: ε-inconsistent rules.  CompareByStrengths
      // would report an indistinguishable "tie"; bow out instead.
      return Outcome::kSkip;
    }
    const int comparison = system.CompareByStrengths(instance.query);
    double value = -1.0;
    std::string how;
    if (comparison > 0) {
      value = 1.0;
      how = "cheapest evidence∧query world strictly cheaper (κ-strengths)";
    } else if (comparison < 0) {
      value = 0.0;
      how = "cheapest evidence∧¬query world strictly cheaper (κ-strengths)";
    } else {
      // Exponent-level tie: second-order terms may still decide — ask the
      // numeric µ*_ε series for both directions.
      defaults::MePlausibleResult plausible =
          system.MePlausible(instance.query);
      if (plausible.feasible && plausible.plausible) {
        value = 1.0;
        how = "µ*_ε(query|evidence) → 1 (maximum-entropy series)";
      } else {
        const defaults::Rule negated{
            instance.query.antecedent,
            defaults::Prop::Not(instance.query.consequent)};
        defaults::MePlausibleResult anti = system.MePlausible(negated);
        if (anti.feasible && anti.plausible) {
          value = 0.0;
          how = "µ*_ε(¬query|evidence) → 1 (maximum-entropy series)";
        }
      }
    }
    if (value < 0.0) return Outcome::kSkip;
    answer->status = Answer::Status::kPoint;
    answer->value = value;
    answer->lo = answer->hi = value;
    answer->method = answer->method.empty()
                         ? "gmp90 maximum-entropy defaults"
                         : answer->method + " + gmp90 maximum-entropy "
                                            "defaults";
    answer->explanation = how;
    answer->converged = true;
    return Outcome::kFinal;
  }
};

// 9. Dempster evidence combination (Theorem 5.26): exact limit for
// essentially-disjoint competing reference classes.
class EvidenceStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "evidence"; }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!options.use_evidence) {
      cap.applicable = false;
      cap.reason = "disabled (evidence combination off)";
      return cap;
    }
    evidence::EvidenceInstance instance =
        evidence::AnalyzeEvidenceInstance(ctx.kb_conjuncts(), query);
    cap.applicable = instance.ok;
    cap.reason = instance.ok
                     ? "Theorem 5.26 shape: " +
                           std::to_string(instance.alphas.size()) +
                           " essentially-disjoint mass assignments"
                     : instance.reason;
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& /*options*/) const override {
    engines::CostEstimate cost;
    evidence::EvidenceInstance instance =
        evidence::AnalyzeEvidenceInstance(ctx.kb_conjuncts(), query);
    cost.work = static_cast<double>(
        instance.alphas.empty() ? 1 : instance.alphas.size());
    cost.error = 0.0;
    cost.basis = "closed-form product over the mass assignments";
    return cost;
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!options.use_evidence) return Outcome::kSkip;
    evidence::EvidenceInstance instance =
        evidence::AnalyzeEvidenceInstance(ctx.kb_conjuncts(), query);
    if (!instance.ok) return Outcome::kSkip;
    bool any_one = false;
    bool any_zero = false;
    for (double alpha : instance.alphas) {
      any_one = any_one || alpha >= 1.0;
      any_zero = any_zero || alpha <= 0.0;
    }
    if (any_one && any_zero) {
      // Conflicting hard defaults (mirrors the symbolic TryDempster):
      // equal strength — identical tolerance subscripts, exactly two
      // classes — resolves to 1/2; otherwise the limit does not exist.
      if (instance.alphas.size() == 2 &&
          instance.tolerance_indices[0] == instance.tolerance_indices[1]) {
        answer->status = Answer::Status::kPoint;
        answer->value = 0.5;
        answer->lo = answer->hi = 0.5;
        answer->method = answer->method.empty()
                             ? "dempster evidence combination"
                             : answer->method +
                                   " + dempster evidence combination";
        answer->explanation =
            "equal-strength conflicting hard defaults resolve to 1/2";
        answer->converged = true;
        return Outcome::kFinal;
      }
      answer->status = Answer::Status::kNonexistent;
      answer->method = "dempster evidence combination";
      answer->explanation = "conflicting hard defaults of differing "
                            "strengths: the limit does not exist "
                            "(Section 5.3)";
      return Outcome::kFinal;
    }
    const double combined = evidence::DempsterCombine(instance.alphas);
    answer->status = Answer::Status::kPoint;
    answer->value = combined;
    answer->lo = answer->hi = combined;
    answer->method = answer->method.empty()
                         ? "dempster evidence combination"
                         : answer->method + " + dempster evidence "
                                            "combination";
    answer->explanation =
        "Theorem 5.26 over " + std::to_string(instance.alphas.size()) +
        " essentially-disjoint reference classes";
    answer->converged = true;
    return Outcome::kFinal;
  }
};

// 10. Calibrated-interval mode (preemptive, like fixed-N: the caller asked
// a different question).  The numeric sweep runs as usual; the answer is
// the empirical quantile interval leaving out at most a δ = 1-confidence
// fraction of the well-defined sweep values, widened to cover a symbolic
// point/interval when one exists (widening can only improve coverage).
// The differential `coverage` check replays the schedule on the exact
// engine and verifies empirical coverage ≥ confidence - tolerance.
class CalibratedStrategy : public InferenceStrategy {
 public:
  std::string name() const override { return "calibrated"; }

  bool preemptive() const override { return true; }

  static bool Requested(const InferenceOptions& options) {
    return options.interval_confidence > 0.0 &&
           options.interval_confidence < 1.0;
  }

  engines::Capability Assess(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const override {
    engines::Capability cap =
        engines::DescribeInstance(ctx.vocabulary(), query);
    if (!Requested(options)) {
      cap.applicable = false;
      cap.reason = options.interval_confidence == 0.0
                       ? "no interval confidence requested"
                       : "interval confidence outside (0, 1)";
      return cap;
    }
    engines::ProfileEngine profile;
    engines::ExactEngine exact;
    cap.applicable =
        (options.use_profile &&
         AnySupported(profile, ctx, query, options.limit.domain_sizes)) ||
        (options.use_exact_fallback &&
         AnySupported(exact, ctx, query, ExactFallbackStrategy::SmallSizes()));
    cap.reason = cap.applicable
                     ? "interval at confidence requested; a numeric sweep "
                       "engine covers the schedule"
                     : "no numeric sweep engine covers this instance";
    return cap;
  }

  engines::CostEstimate EstimateCost(
      QueryContext& ctx, const logic::FormulaPtr& query,
      const InferenceOptions& options) const override {
    engines::ProfileEngine profile;
    if (options.use_profile &&
        AnySupported(profile, ctx, query, options.limit.domain_sizes)) {
      return SweepCost(profile, ctx, query, options.limit.domain_sizes,
                       options.limit.tolerance_scales.size(),
                       options.limit.convergence_epsilon);
    }
    engines::ExactEngine exact;
    return SweepCost(exact, ctx, query, ExactFallbackStrategy::SmallSizes(),
                     options.limit.tolerance_scales.size(),
                     options.limit.convergence_epsilon);
  }

  Outcome Run(QueryContext& ctx, const logic::FormulaPtr& query,
              const InferenceOptions& options, Answer* answer) const override {
    if (!Requested(options)) return Outcome::kSkip;
    engines::ProfileEngine profile;
    engines::ExactEngine exact;
    engines::LimitResult lr;
    std::string sweep_label;
    if (options.use_profile &&
        AnySupported(profile, ctx, query, options.limit.domain_sizes)) {
      lr = engines::EstimateLimit(profile, ctx, query, options.tolerances,
                                  options.limit);
      sweep_label = "profile sweep";
    } else if (options.use_exact_fallback &&
               AnySupported(exact, ctx, query,
                            ExactFallbackStrategy::SmallSizes())) {
      engines::LimitOptions small = options.limit;
      small.domain_sizes = ExactFallbackStrategy::SmallSizes();
      lr = engines::EstimateLimit(exact, ctx, query, options.tolerances,
                                  small);
      sweep_label = "exact sweep (small N)";
    } else {
      return Outcome::kSkip;
    }

    std::vector<double> values;
    for (const engines::SeriesPoint& point : lr.series) {
      if (point.well_defined) values.push_back(point.probability);
    }
    if (values.empty()) {
      // Nothing to calibrate against: fall through to the normal
      // strategies (the answer simply won't carry a coverage guarantee).
      if (answer->series.empty()) answer->series = lr.series;
      return Outcome::kSkip;
    }
    std::sort(values.begin(), values.end());

    // Leave out at most floor(n·δ) points, split between the two tails.
    const double delta = 1.0 - options.interval_confidence;
    const size_t n = values.size();
    const size_t allowed_out =
        static_cast<size_t>(static_cast<double>(n) * delta);
    const size_t out_lo = allowed_out / 2;
    const size_t out_hi = allowed_out - out_lo;
    double lo = values[out_lo];
    double hi = values[n - 1 - out_hi];

    // Hull with the symbolic kPartial path: a sound Pr_∞ point or
    // interval, when a theorem applies, must stay inside the answer.
    std::string hull_note;
    if (options.use_symbolic) {
      engines::SymbolicEngine symbolic;
      engines::SymbolicAnswer sa = symbolic.Infer(ctx, query);
      if (sa.status == engines::SymbolicAnswer::Status::kInterval) {
        if (sa.lo < lo || sa.hi > hi) {
          lo = std::min(lo, sa.lo);
          hi = std::max(hi, sa.hi);
          hull_note = "; widened to cover the symbolic " +
                      std::string(sa.is_point() ? "point" : "interval");
        }
      }
    }

    answer->status = Answer::Status::kInterval;
    answer->lo = lo;
    answer->hi = hi;
    answer->value = (lo + hi) / 2.0;
    answer->series = lr.series;
    answer->converged = lr.converged;
    answer->method = "calibrated quantile interval (" + sweep_label + ")";
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "confidence %.3g: %zu of %zu well-defined sweep values "
                  "inside by construction",
                  options.interval_confidence, n - allowed_out, n);
    answer->explanation = detail + hull_note;
    return Outcome::kFinal;
  }
};

}  // namespace

engines::Capability InferenceStrategy::Assess(
    QueryContext& ctx, const logic::FormulaPtr& query,
    const InferenceOptions& /*options*/) const {
  engines::Capability cap = engines::DescribeInstance(ctx.vocabulary(), query);
  cap.applicable = true;
  cap.reason = "no capability model; assumed applicable";
  return cap;
}

engines::CostEstimate InferenceStrategy::EstimateCost(
    QueryContext& /*ctx*/, const logic::FormulaPtr& /*query*/,
    const InferenceOptions& /*options*/) const {
  engines::CostEstimate cost;
  cost.work = 1e9;
  cost.basis = "no cost model";
  return cost;
}

EngineRegistry& EngineRegistry::Default() {
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    r->Register(0, std::make_shared<FixedDomainStrategy>());
    r->Register(1, std::make_shared<CalibratedStrategy>());
    r->Register(10, std::make_shared<SymbolicStrategy>());
    r->Register(20, std::make_shared<ProfileSweepStrategy>());
    // The closed-form fragment strategies rank after profile in fidelity
    // order: on their fragments they are exact, but profile's finite
    // sweeps remain the default oracle so answers outside forced/cost
    // runs are unchanged.  In kMinCost mode their tiny predicted work
    // puts them first whenever they apply.
    r->Register(22, std::make_shared<EpsilonSemanticsStrategy>());
    r->Register(23, std::make_shared<KlmStrategy>());
    r->Register(24, std::make_shared<Gmp90Strategy>());
    r->Register(26, std::make_shared<EvidenceStrategy>());
    r->Register(30, std::make_shared<MaxEntStrategy>());
    r->Register(40, std::make_shared<ExactFallbackStrategy>());
    r->Register(50, std::make_shared<MonteCarloStrategy>());
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(
    int priority, std::shared_ptr<const InferenceStrategy> strategy) {
  std::lock_guard<std::mutex> lock(mutex_);
  strategies_.emplace(priority, std::move(strategy));
}

std::vector<std::shared_ptr<const InferenceStrategy>> EngineRegistry::Ordered()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const InferenceStrategy>> ordered;
  ordered.reserve(strategies_.size());
  for (const auto& [priority, strategy] : strategies_) {
    ordered.push_back(strategy);
  }
  return ordered;
}

std::shared_ptr<const InferenceStrategy> EngineRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [priority, strategy] : strategies_) {
    if (strategy->name() == name) return strategy;
  }
  return nullptr;
}

Answer EngineRegistry::Infer(QueryContext& ctx,
                             const logic::FormulaPtr& query,
                             const InferenceOptions& options) const {
  return PlanAndExecute(*this, ctx, query, options);
}

Answer DegreeOfBelief(QueryContext& ctx, const logic::FormulaPtr& query,
                      const InferenceOptions& options) {
  return EngineRegistry::Default().Infer(ctx, query, options);
}

Answer DegreeOfBelief(const KnowledgeBase& kb, const logic::FormulaPtr& query,
                      const InferenceOptions& options) {
  QueryContext ctx =
      MakeQueryContext(kb, std::span<const logic::FormulaPtr>(&query, 1),
                       options);
  return DegreeOfBelief(ctx, query, options);
}

QueryContext MakeQueryContext(const KnowledgeBase& kb,
                              std::span<const logic::FormulaPtr> queries,
                              const InferenceOptions& options) {
  logic::Vocabulary vocabulary = kb.vocabulary();
  for (const auto& query : queries) {
    logic::RegisterSymbols(query, &vocabulary);
  }
  return QueryContext(std::move(vocabulary), kb.AsFormula(),
                      options.enable_caching);
}

bool QueryCoveredByVocabulary(const logic::Vocabulary& vocabulary,
                              const logic::FormulaPtr& query) {
  for (const auto& predicate : logic::PredicatesOf(query)) {
    if (!vocabulary.FindPredicate(predicate).has_value()) return false;
  }
  for (const auto& function : logic::FunctionsOf(query)) {
    if (!vocabulary.FindFunction(function).has_value()) return false;
  }
  return true;
}

std::vector<Answer> DegreesOfBelief(const KnowledgeBase& kb,
                                    std::span<const logic::FormulaPtr> queries,
                                    const InferenceOptions& options) {
  // Queries share the context only when they add no symbols to the KB's
  // vocabulary; a query introducing fresh predicates/constants gets its
  // own context instead.  This keeps every answer identical to the
  // sequential DegreeOfBelief call: a shared union vocabulary would let
  // one query's symbols shift another's engine support limits (world
  // counts grow with the vocabulary, and the profile engine caps atoms
  // and constants).
  QueryContext shared = MakeQueryContext(
      kb, std::span<const logic::FormulaPtr>(), options);
  // Hash-consing makes duplicate queries pointer-equal: answer each
  // distinct formula once.
  std::unordered_map<const logic::Formula*, size_t> first_index;
  std::vector<Answer> answers(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = first_index.emplace(queries[i].get(), i);
    if (!inserted) {
      answers[i] = answers[it->second];
      continue;
    }
    if (QueryCoveredByVocabulary(kb.vocabulary(), queries[i])) {
      answers[i] = DegreeOfBelief(shared, queries[i], options);
    } else {
      answers[i] = DegreeOfBelief(kb, queries[i], options);
    }
  }
  return answers;
}

std::vector<Answer> DegreesOfBelief(const KnowledgeBase& kb,
                                    std::span<const std::string> queries,
                                    const InferenceOptions& options) {
  std::vector<logic::FormulaPtr> parsed(queries.size());
  std::vector<Answer> answers(queries.size());
  std::vector<logic::FormulaPtr> valid;
  valid.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    logic::ParseResult result = logic::ParseFormula(queries[i]);
    if (!result.ok()) {
      answers[i].status = Answer::Status::kUnknown;
      answers[i].explanation = "query parse error: " + result.error;
      continue;
    }
    parsed[i] = result.formula;
    valid.push_back(result.formula);
  }
  std::vector<Answer> valid_answers = DegreesOfBelief(kb, valid, options);
  size_t next = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (parsed[i] != nullptr) answers[i] = std::move(valid_answers[next++]);
  }
  return answers;
}

Answer ConditionalDegreeOfBelief(const KnowledgeBase& kb,
                                 const logic::FormulaPtr& query,
                                 const logic::FormulaPtr& evidence,
                                 const InferenceOptions& options) {
  KnowledgeBase conditioned = kb;
  conditioned.Add(evidence);
  return DegreeOfBelief(conditioned, query, options);
}

Answer DegreeOfBelief(const KnowledgeBase& kb, std::string_view query,
                      const InferenceOptions& options) {
  logic::ParseResult parsed = logic::ParseFormula(query);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rwl: query parse error: %s\n",
                 parsed.error.c_str());
    std::abort();
  }
  return DegreeOfBelief(kb, parsed.formula, options);
}

}  // namespace rwl
