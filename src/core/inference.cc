#include "src/core/inference.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/engines/exact_engine.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/profile_engine.h"
#include "src/engines/symbolic_engine.h"
#include "src/logic/parser.h"
#include "src/logic/transform.h"

namespace rwl {

std::string StatusToString(Answer::Status status) {
  switch (status) {
    case Answer::Status::kPoint:
      return "point";
    case Answer::Status::kInterval:
      return "interval";
    case Answer::Status::kNonexistent:
      return "nonexistent";
    case Answer::Status::kUndefined:
      return "undefined";
    case Answer::Status::kUnknown:
      return "unknown";
  }
  return "?";
}

Answer DegreeOfBelief(const KnowledgeBase& kb, const logic::FormulaPtr& query,
                      const InferenceOptions& options) {
  // Build a vocabulary covering KB and query symbols.
  logic::Vocabulary vocabulary = kb.vocabulary();
  logic::RegisterSymbols(query, &vocabulary);
  logic::FormulaPtr kb_formula = kb.AsFormula();

  Answer answer;

  // 0. Known domain size (footnote 9): evaluate Pr_N^τ directly at N.
  if (options.fixed_domain_size > 0) {
    const int n = options.fixed_domain_size;
    engines::ProfileEngine profile;
    engines::ExactEngine exact;
    const engines::FiniteEngine* engine = nullptr;
    if (options.use_profile &&
        profile.Supports(vocabulary, kb_formula, query, n)) {
      engine = &profile;
    } else if (options.use_exact_fallback &&
               exact.Supports(vocabulary, kb_formula, query, n)) {
      engine = &exact;
    }
    if (engine != nullptr) {
      engines::FiniteResult fr = engine->DegreeAt(
          vocabulary, kb_formula, query, n, options.tolerances);
      if (fr.exhausted) {
        answer.status = Answer::Status::kUnknown;
        answer.explanation = "work budget exhausted at the fixed N";
        return answer;
      }
      if (!fr.well_defined) {
        answer.status = Answer::Status::kUndefined;
        answer.method = engine == &profile ? "profile @ fixed N"
                                           : "exact @ fixed N";
        answer.explanation = "no worlds satisfy the KB at this (N, τ)";
        return answer;
      }
      answer.status = Answer::Status::kPoint;
      answer.value = fr.probability;
      answer.lo = answer.hi = fr.probability;
      answer.method = engine == &profile ? "profile @ fixed N"
                                         : "exact @ fixed N";
      answer.converged = true;
      return answer;
    }
    answer.status = Answer::Status::kUnknown;
    answer.explanation = "no engine supports the fixed domain size";
    return answer;
  }

  // 1. Symbolic theorems: exact Pr_∞, full language.
  if (options.use_symbolic) {
    engines::SymbolicEngine symbolic;
    engines::SymbolicAnswer sa = symbolic.Infer(kb_formula, query);
    if (sa.status == engines::SymbolicAnswer::Status::kNonexistent) {
      answer.status = Answer::Status::kNonexistent;
      answer.method = sa.rule;
      answer.explanation = sa.explanation;
      return answer;
    }
    if (sa.status == engines::SymbolicAnswer::Status::kInterval) {
      answer.method = sa.rule;
      answer.explanation = sa.explanation;
      answer.converged = true;
      if (sa.is_point()) {
        answer.status = Answer::Status::kPoint;
        answer.value = sa.lo;
        answer.lo = answer.hi = sa.lo;
        return answer;
      }
      answer.status = Answer::Status::kInterval;
      answer.lo = sa.lo;
      answer.hi = sa.hi;
      // Keep the interval, but fall through: a numeric engine may sharpen
      // it to a point.
    }
  }

  // 2. Profile engine sweep (unary KBs).
  if (options.use_profile) {
    engines::ProfileEngine profile;
    bool any_supported = false;
    for (int n : options.limit.domain_sizes) {
      any_supported =
          any_supported || profile.Supports(vocabulary, kb_formula, query, n);
    }
    if (any_supported) {
      engines::LimitResult lr =
          engines::EstimateLimit(profile, vocabulary, kb_formula, query,
                                 options.tolerances, options.limit);
      answer.series = lr.series;
      if (lr.never_defined) {
        answer.status = Answer::Status::kUndefined;
        answer.method = "profile sweep";
        answer.explanation = "no worlds satisfy the KB at any sampled (N, τ)";
        return answer;
      }
      if (lr.value.has_value()) {
        answer.status = Answer::Status::kPoint;
        answer.value = *lr.value;
        answer.lo = answer.hi = *lr.value;
        answer.method = answer.method.empty()
                            ? "profile sweep"
                            : answer.method + " + profile sweep";
        answer.converged = lr.converged;
        return answer;
      }
    }
  }

  // 3. Maximum-entropy limit (unary KBs within the linear fragment).
  if (options.use_maxent) {
    engines::MaxEntEngine maxent;
    engines::MaxEntEngine::LimitResultME mr = maxent.InferLimit(
        vocabulary, kb_formula, query, options.tolerances);
    if (mr.supported) {
      answer.status = Answer::Status::kPoint;
      answer.value = mr.value;
      answer.lo = answer.hi = mr.value;
      answer.method = answer.method.empty() ? "maximum entropy"
                                            : answer.method +
                                                  " + maximum entropy";
      answer.converged = mr.converged;
      return answer;
    }
  }

  // 4. Exact enumeration fallback for tiny instances.
  if (options.use_exact_fallback) {
    engines::ExactEngine exact;
    engines::LimitOptions small;
    small.domain_sizes = {2, 3, 4, 5, 6};
    small.tolerance_scales = options.limit.tolerance_scales;
    bool any = false;
    for (int n : small.domain_sizes) {
      any = any || exact.Supports(vocabulary, kb_formula, query, n);
    }
    if (any) {
      engines::LimitResult lr = engines::EstimateLimit(
          exact, vocabulary, kb_formula, query, options.tolerances, small);
      answer.series = lr.series;
      if (lr.value.has_value()) {
        answer.status = Answer::Status::kPoint;
        answer.value = *lr.value;
        answer.lo = answer.hi = *lr.value;
        answer.method = answer.method.empty()
                            ? "exact enumeration (small N)"
                            : answer.method + " + exact enumeration";
        answer.converged = lr.converged;
        return answer;
      }
    }
  }

  // The symbolic interval (if any) is the best we have.
  if (answer.status == Answer::Status::kInterval) return answer;
  answer.status = Answer::Status::kUnknown;
  if (answer.explanation.empty()) {
    answer.explanation = "no engine applies to this (KB, query) pair";
  }
  return answer;
}

Answer ConditionalDegreeOfBelief(const KnowledgeBase& kb,
                                 const logic::FormulaPtr& query,
                                 const logic::FormulaPtr& evidence,
                                 const InferenceOptions& options) {
  KnowledgeBase conditioned = kb;
  conditioned.Add(evidence);
  return DegreeOfBelief(conditioned, query, options);
}

Answer DegreeOfBelief(const KnowledgeBase& kb, std::string_view query,
                      const InferenceOptions& options) {
  logic::ParseResult parsed = logic::ParseFormula(query);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rwl: query parse error: %s\n",
                 parsed.error.c_str());
    std::abort();
  }
  return DegreeOfBelief(kb, parsed.formula, options);
}

}  // namespace rwl
