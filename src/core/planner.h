// The cost-based query planner behind EngineRegistry::Infer.
//
// For each query the planner:
//
//   1. assesses every registered strategy's Capability (does it apply to
//      this (KB, query) at all?) and CostEstimate (predicted work and
//      accuracy, derived from the KB analyses cached in the QueryContext:
//      profile leaf counts, world-odometer size, compiled-program length,
//      Monte-Carlo acceptance-rate estimates),
//   2. orders the applicable candidates — paper preference order
//      (PlanMode::kFidelity, the default) or cheapest-predicted-first
//      (PlanMode::kMinCost, the service mode),
//   3. caches the plan in the QueryContext keyed by (KB signature, query
//      shape, N schedule, ⃗τ, planner options), so batch and repeated
//      traffic skips assessment and scoring entirely — a cache hit
//      executes the identical candidate order, so its answers are
//      bit-identical to a cold plan,
//   4. executes candidates in order under the per-query deadline / work
//      budget of InferenceOptions, falling back adaptively when an engine
//      exhausts its budget or a sweep is cut short, and
//   5. attaches a structured PlanTrace to the Answer (strategies tried,
//      predicted vs observed costs, skips, fallbacks) — the data behind
//      rwlq --explain and the --json "plan" field.
//
// The plan is advisory: every strategy still validates its own
// applicability when run (a candidate may return kSkip), so a plan cached
// for one query shape stays sound for every query of that shape.
#ifndef RWL_CORE_PLANNER_H_
#define RWL_CORE_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine_registry.h"
#include "src/core/inference.h"
#include "src/core/query_context.h"
#include "src/engines/engine.h"
#include "src/logic/formula.h"

namespace rwl {

// One assessed candidate of a plan, in planned order.
struct PlanStep {
  std::string strategy;
  engines::Capability capability;
  engines::CostEstimate predicted;
  // Preemptive candidates (fixed-N) define the semantics of the query —
  // they are pinned first and exempt from deadline/budget substitution
  // (answering a Pr_N question with a cheaper engine's Pr_∞ would be a
  // silent change of question, not a fallback).
  bool preemptive = false;

  enum class Action {
    kRan,                  // executed; see `outcome` / `observed_ms`
    kSkippedInapplicable,  // capability said no
    kSkippedBudget,        // predicted work over options.work_budget
    kSkippedDeadline,      // deadline passed before this candidate started
    kNotReached,           // an earlier candidate finalized the answer
  };
  Action action = Action::kNotReached;
  // When kRan: "final", "partial" (answer improved, fell through) or
  // "skip" (runtime self-check declined).
  std::string outcome;
  double observed_ms = 0.0;
};

// The structured trace attached to every planner answer.
struct PlanTrace {
  std::vector<PlanStep> steps;  // in planned (execution) order
  // "fidelity", "cost", or "forced:<name>".
  std::string mode;
  bool from_cache = false;   // plan order came from the context's cache
  bool deadline_hit = false;  // the deadline cut planning or execution short
  double planning_ms = 0.0;  // assessment + scoring (0 on cache hits)
  double total_ms = 0.0;     // planning + execution wall time
  uint64_t shape_fingerprint = 0;
};

// Structural fingerprint of a query with constant names abstracted away:
// Hep(Eric) and Hep(Tom) share a fingerprint — and therefore a cached
// plan — while Hep(Eric) ∧ Jaun(Eric) does not.
uint64_t PlanShapeFingerprint(const logic::FormulaPtr& query);

// Multi-line EXPLAIN rendering (rwlq --explain).
std::string FormatPlanTrace(const PlanTrace& trace);

// Plans and executes one query.  Called by EngineRegistry::Infer; exposed
// for the planner tests and bench_planner.
Answer PlanAndExecute(const EngineRegistry& registry, QueryContext& ctx,
                      const logic::FormulaPtr& query,
                      const InferenceOptions& options);

}  // namespace rwl

#endif  // RWL_CORE_PLANNER_H_
