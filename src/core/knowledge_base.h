// KnowledgeBase: the public container for an agent's knowledge.
//
// Holds a vocabulary and a conjunction of L≈ sentences.  Formulas can be
// added programmatically (via the builder DSL) or parsed from the textual
// syntax; symbol registration (predicates, constants, functions, with
// arities inferred from use) is automatic.
//
// The conjunct list is a persistent (structurally shared) vector: copying
// a KnowledgeBase shares every stored formula chunk with the original, so
// the service catalog's copy-on-write mutation path costs O(delta), not
// O(KB).  The conjunction formula is maintained incrementally as the same
// left fold logic::Formula::AndAll performs, so AsFormula() is O(1) and
// hash-conses to the identical node.
#ifndef RWL_CORE_KNOWLEDGE_BASE_H_
#define RWL_CORE_KNOWLEDGE_BASE_H_

#include <string>
#include <string_view>

#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"
#include "src/util/persistent_vector.h"

namespace rwl {

class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  // Adds a sentence (conjunct).
  void Add(const logic::FormulaPtr& formula);

  // Parses and adds; returns false (with the message in *error) on failure.
  bool AddParsed(std::string_view text, std::string* error = nullptr);

  // Registers the symbols of a formula without asserting it (used for
  // queries, so that query-only symbols — e.g. a fresh constant — exist in
  // the vocabulary).
  void RegisterQuerySymbols(const logic::FormulaPtr& query);

  // The conjunction of everything added (logic::Formula::True() if empty).
  logic::FormulaPtr AsFormula() const;

  const util::PersistentVector<logic::FormulaPtr>& conjuncts() const {
    return conjuncts_;
  }
  const logic::Vocabulary& vocabulary() const { return vocabulary_; }
  logic::Vocabulary& mutable_vocabulary() { return vocabulary_; }

  // Human-readable dump, one conjunct per line.
  std::string ToString() const;

 private:
  logic::Vocabulary vocabulary_;
  util::PersistentVector<logic::FormulaPtr> conjuncts_;
  // Left fold of conjuncts_ (null when empty), kept in lockstep by Add so
  // AsFormula never re-folds the whole list.
  logic::FormulaPtr formula_;
};

}  // namespace rwl

#endif  // RWL_CORE_KNOWLEDGE_BASE_H_
