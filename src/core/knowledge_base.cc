#include "src/core/knowledge_base.h"

#include <sstream>

#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl {

void KnowledgeBase::Add(const logic::FormulaPtr& formula) {
  for (const auto& conjunct : logic::Conjuncts(formula)) {
    logic::RegisterSymbols(conjunct, &vocabulary_);
    conjuncts_.push_back(conjunct);
  }
}

bool KnowledgeBase::AddParsed(std::string_view text, std::string* error) {
  logic::ParseResult result = logic::ParseKnowledgeBase(text);
  if (!result.ok()) {
    if (error != nullptr) {
      std::ostringstream message;
      message << result.error << " at offset " << result.error_offset;
      *error = message.str();
    }
    return false;
  }
  Add(result.formula);
  return true;
}

void KnowledgeBase::RegisterQuerySymbols(const logic::FormulaPtr& query) {
  logic::RegisterSymbols(query, &vocabulary_);
}

logic::FormulaPtr KnowledgeBase::AsFormula() const {
  return logic::Formula::AndAll(conjuncts_);
}

std::string KnowledgeBase::ToString() const {
  std::ostringstream out;
  for (const auto& conjunct : conjuncts_) {
    out << logic::ToString(conjunct) << "\n";
  }
  return out.str();
}

}  // namespace rwl
