#include "src/core/knowledge_base.h"

#include <sstream>

#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl {

void KnowledgeBase::Add(const logic::FormulaPtr& formula) {
  for (const auto& conjunct : logic::Conjuncts(formula)) {
    logic::RegisterSymbols(conjunct, &vocabulary_);
    // The same left fold as Formula::AndAll over the full list: the
    // incremental formula hash-conses to the identical node, so the KB
    // formula id (and every version salt derived from it) is independent
    // of how the conjuncts arrived.
    formula_ = conjuncts_.empty() ? conjunct
                                  : logic::Formula::And(formula_, conjunct);
    conjuncts_.push_back(conjunct);
  }
}

bool KnowledgeBase::AddParsed(std::string_view text, std::string* error) {
  logic::ParseResult result = logic::ParseKnowledgeBase(text);
  if (!result.ok()) {
    if (error != nullptr) {
      std::ostringstream message;
      message << result.error << " at offset " << result.error_offset;
      *error = message.str();
    }
    return false;
  }
  Add(result.formula);
  return true;
}

void KnowledgeBase::RegisterQuerySymbols(const logic::FormulaPtr& query) {
  logic::RegisterSymbols(query, &vocabulary_);
}

logic::FormulaPtr KnowledgeBase::AsFormula() const {
  return conjuncts_.empty() ? logic::Formula::True() : formula_;
}

std::string KnowledgeBase::ToString() const {
  std::ostringstream out;
  for (const auto& conjunct : conjuncts_) {
    out << logic::ToString(conjunct) << "\n";
  }
  return out.str();
}

}  // namespace rwl
