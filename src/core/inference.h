// Inference: the public entry point for computing degrees of belief.
//
// Routes a (KB, query) pair through the available engines:
//
//   1. the symbolic engine (closed-form Pr_∞ via the paper's theorems;
//      works for the full language),
//   2. the profile engine (exact Pr_N^τ for unary KBs, swept over growing N
//      and shrinking τ to estimate the limit),
//   3. the maximum-entropy engine (the true N→∞ limit for unary KBs),
//   4. the exact enumeration engine (tiny instances; mostly for validation).
//
// and reports a point value or interval together with which method produced
// it and the convergence series (the data behind the paper-style
// convergence figures).
#ifndef RWL_CORE_INFERENCE_H_
#define RWL_CORE_INFERENCE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/knowledge_base.h"
#include "src/core/query_context.h"
#include "src/engines/engine.h"
#include "src/logic/formula.h"
#include "src/semantics/tolerance.h"

namespace rwl {

struct PlanTrace;  // core/planner.h

// How the planner orders applicable strategies (core/planner.h).
enum class PlanMode {
  // The paper's preference order (symbolic theorems, profile counting,
  // maximum entropy, enumeration): highest-fidelity candidate first, with
  // cost estimates used for capability gating, deadlines and budgets.
  kFidelity,
  // Cheapest predicted applicable candidate first — the service mode for
  // heavy traffic, where every engine estimates the same limit and the
  // planner's job is to spend the least work that yields an answer.
  kMinCost,
};

struct InferenceOptions {
  // Base tolerance vector (scaled down during the τ → 0 sweep).
  semantics::ToleranceVector tolerances{0.05};
  engines::LimitOptions limit;
  bool use_symbolic = true;
  bool use_profile = true;
  bool use_maxent = true;
  bool use_exact_fallback = true;
  // Opt-in: rejection-sampling sweep for instances outside every other
  // engine's fragment (binary predicates at medium N).  Off by default —
  // it turns some kUnknown answers into estimates, which callers must
  // want explicitly.
  bool use_montecarlo = false;
  // Sampling-error budget for the Monte-Carlo sweep: number of samples
  // per (N, ⃗τ) point (0 = the engine default).  Smaller budgets trade
  // accuracy for latency; the planner's cost model accounts for it.
  uint64_t montecarlo_samples = 0;
  // The defaults family (epsilon_semantics, klm, gmp90): exact limits for
  // KBs in the propositional-defaults fragment (defaults/fragment.h).
  bool use_defaults = true;
  // Dempster evidence combination for Theorem 5.26 instances
  // (evidence/combination.h).
  bool use_evidence = true;
  // Calibrated-interval mode (conformal-style): a value in (0, 1) asks
  // for an interval answer at confidence 1-δ with δ = 1-interval_confidence:
  // the preemptive `calibrated` strategy sweeps the numeric schedule and
  // returns the empirical quantile interval leaving out at most a δ
  // fraction of the well-defined sweep values (widened to include a
  // symbolic point when one exists).  0 (the default) disables the mode;
  // the differential `coverage` check verifies empirical coverage against
  // ground-truth enumeration over the same schedule.
  double interval_confidence = 0.0;
  // Footnote 9: when the true domain size is known (and small enough to
  // matter), compute Pr_N^τ at exactly this N instead of taking the
  // N → ∞ limit.  0 means unknown (take limits).
  int fixed_domain_size = 0;
  // Share derived state (KB analyses, satisfying-world lists, per-point
  // results) inside a query — and across queries when a batch shares one
  // QueryContext.  Answers are bit-identical either way; disabling is for
  // tests and measurement.
  bool enable_caching = true;

  // ---- Planner controls (core/planner.h) ----

  PlanMode plan_mode = PlanMode::kFidelity;
  // Per-query wall-clock deadline in milliseconds (0 = none).  The planner
  // stops starting candidates once the deadline passes, and sweeps stop
  // between grid points, so a query overshoots by at most one engine
  // probe.  Deadline-limited answers are wall-clock-dependent by nature.
  double deadline_ms = 0.0;
  // Per-candidate predicted-work budget in abstract engine work units
  // (engines::CostEstimate::work; 0 = none): candidates predicted over
  // budget are skipped, recorded in the plan trace.
  double work_budget = 0.0;
  // Force a single strategy by name, bypassing the planner (rwlq
  // --engine).  The forced strategy runs with its use_* switch enabled;
  // an inapplicable forced strategy yields kUnknown.
  std::string force_engine;
};

struct Answer {
  enum class Status {
    kPoint,        // Pr_∞ = value
    kInterval,     // Pr_∞ ∈ [lo, hi]
    kNonexistent,  // the limit provably does not exist
    kUndefined,    // KB not eventually consistent (no worlds)
    kUnknown,      // no engine could decide
  };
  Status status = Status::kUnknown;
  double value = 0.0;
  double lo = 0.0;
  double hi = 1.0;
  std::string method;
  std::string explanation;
  bool converged = false;
  std::vector<engines::SeriesPoint> series;
  // Structured plan trace: strategies assessed/tried, predicted vs
  // observed costs, skips and fallbacks (core/planner.h; rwlq --explain).
  // Shared, immutable; null only for answers produced outside the planner
  // (e.g. parse failures).
  std::shared_ptr<const PlanTrace> plan;
};

Answer DegreeOfBelief(const KnowledgeBase& kb, const logic::FormulaPtr& query,
                      const InferenceOptions& options = {});

// Convenience: parses the query from textual syntax.  Aborts on parse
// errors (tests and examples pass literals).
Answer DegreeOfBelief(const KnowledgeBase& kb, std::string_view query,
                      const InferenceOptions& options = {});

// Context form: answers against an existing QueryContext (whose vocabulary
// must already cover the query symbols — see MakeQueryContext).  All
// engine-derived state accumulates in the context, so repeated calls share
// work.
Answer DegreeOfBelief(QueryContext& ctx, const logic::FormulaPtr& query,
                      const InferenceOptions& options = {});

// Builds a context for a batch: one vocabulary covering the KB and every
// query.  Proportions are invariant under vocabulary extension (extra
// constants/predicates multiply world counts uniformly), so answers agree
// with the per-query form whenever the engines' structural limits do.
QueryContext MakeQueryContext(const KnowledgeBase& kb,
                              std::span<const logic::FormulaPtr> queries,
                              const InferenceOptions& options = {});

// Batch inference: answers many queries over one shared context.  Queries
// are deduplicated (hash-consing makes duplicates pointer-equal), and the
// engines reuse each other's per-(N, τ) work — for B queries on one KB the
// expensive world enumerations run once, not B times.  A query that
// introduces symbols beyond the KB's vocabulary is answered in its own
// context (sharing would let it shift the other queries' engine support
// limits), so every answer equals the sequential DegreeOfBelief call.
std::vector<Answer> DegreesOfBelief(const KnowledgeBase& kb,
                                    std::span<const logic::FormulaPtr> queries,
                                    const InferenceOptions& options = {});

// Textual batch form: parses each query; a parse failure yields a
// kUnknown answer carrying the parser message (it does not abort — batch
// callers handle per-query failures).
std::vector<Answer> DegreesOfBelief(const KnowledgeBase& kb,
                                    std::span<const std::string> queries,
                                    const InferenceOptions& options = {});

// True when the query mentions no predicate/function symbol beyond
// `vocabulary` — the condition under which answering through a shared
// KB-level context reproduces the per-query vocabulary exactly.  Used by
// the batch API above and by the service layer's snapshot routing
// (service/catalog.h).
bool QueryCoveredByVocabulary(const logic::Vocabulary& vocabulary,
                              const logic::FormulaPtr& query);

// Pr(φ | KB ∧ ψ): conditioning on additional evidence ψ.  By Proposition
// 5.2, when KB |∼rw ψ this equals Pr(φ | KB); in general it is the degree
// of belief after learning ψ.
Answer ConditionalDegreeOfBelief(const KnowledgeBase& kb,
                                 const logic::FormulaPtr& query,
                                 const logic::FormulaPtr& evidence,
                                 const InferenceOptions& options = {});

std::string StatusToString(Answer::Status status);

}  // namespace rwl

#endif  // RWL_CORE_INFERENCE_H_
