#include "src/core/planner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <limits>
#include <optional>
#include <utility>

#include "src/logic/intern.h"
#include "src/logic/term.h"

namespace rwl {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// ---- query shape fingerprint ----
//
// A structural hash with constant names erased: plans depend on the shape
// of the query (connectives, proportion structure, predicate symbols),
// not on which individual it mentions — Hep(Eric) and Hep(Tom) cost the
// same to answer and share a plan.  Built on the interner's combinators
// (logic/intern.h).

uint64_t Mix(uint64_t h, uint64_t v) {
  return logic::HashCombine(h, v);
}

uint64_t HashString(const std::string& s) {
  return std::hash<std::string>{}(s);
}

uint64_t HashTerm(const logic::TermPtr& t) {
  if (t == nullptr) return 0;
  if (t->is_variable()) return Mix(1, HashString(t->name()));
  if (t->is_constant()) return 2;  // every constant hashes alike
  uint64_t h = Mix(3, HashString(t->name()));
  for (const auto& arg : t->args()) h = Mix(h, HashTerm(arg));
  return h;
}

uint64_t HashFormulaShape(const logic::FormulaPtr& f);

uint64_t HashExprShape(const logic::ExprPtr& e) {
  if (e == nullptr) return 0;
  uint64_t h = Mix(101, static_cast<uint64_t>(e->kind()));
  switch (e->kind()) {
    case logic::Expr::Kind::kConstant: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double));
      double v = e->value();
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return Mix(h, bits);
    }
    case logic::Expr::Kind::kProportion:
    case logic::Expr::Kind::kConditional:
      h = Mix(h, HashFormulaShape(e->body()));
      h = Mix(h, HashFormulaShape(e->cond()));
      for (const auto& var : e->vars()) h = Mix(h, HashString(var));
      return h;
    case logic::Expr::Kind::kAdd:
    case logic::Expr::Kind::kSub:
    case logic::Expr::Kind::kMul:
      h = Mix(h, HashExprShape(e->lhs()));
      return Mix(h, HashExprShape(e->rhs()));
  }
  return h;
}

uint64_t HashFormulaShape(const logic::FormulaPtr& f) {
  if (f == nullptr) return 0;
  uint64_t h = Mix(201, static_cast<uint64_t>(f->kind()));
  using K = logic::Formula::Kind;
  switch (f->kind()) {
    case K::kTrue:
    case K::kFalse:
      return h;
    case K::kAtom:
      h = Mix(h, HashString(f->predicate()));
      for (const auto& t : f->terms()) h = Mix(h, HashTerm(t));
      return h;
    case K::kEqual:
      for (const auto& t : f->terms()) h = Mix(h, HashTerm(t));
      return h;
    case K::kNot:
      return Mix(h, HashFormulaShape(f->body()));
    case K::kAnd:
    case K::kOr:
    case K::kImplies:
    case K::kIff:
      h = Mix(h, HashFormulaShape(f->left()));
      return Mix(h, HashFormulaShape(f->right()));
    case K::kForAll:
    case K::kExists:
      h = Mix(h, HashString(f->var()));
      return Mix(h, HashFormulaShape(f->body()));
    case K::kCompare:
      h = Mix(h, static_cast<uint64_t>(f->compare_op()));
      h = Mix(h, static_cast<uint64_t>(f->tolerance_index()));
      h = Mix(h, HashExprShape(f->expr_left()));
      return Mix(h, HashExprShape(f->expr_right()));
  }
  return h;
}

// ---- plan cache ----

// The cached artifact: the assessed candidate list in execution order.
// Capability and cost ride along so cache hits render the same EXPLAIN
// output without re-assessing.
struct CachedPlan {
  std::vector<PlanStep> steps;
};

std::string PlanCacheKey(const InferenceOptions& options, uint64_t shape,
                         uint64_t registry_fingerprint) {
  std::string key = "planner.plan|r=";
  key += std::to_string(registry_fingerprint);
  key += "|m=";
  key += options.plan_mode == PlanMode::kMinCost ? "cost" : "fid";
  // No KB component: QueryContext::StoreBlob/LookupBlob transparently
  // qualify every key with the context's version_salt() (KB formula id +
  // vocabulary fingerprint), which is what keeps an adopted plan from
  // surviving a KB mutation or a signature change.
  key += "|q=";
  key += std::to_string(shape);
  key += "|n=";
  for (int n : options.limit.domain_sizes) {
    key += std::to_string(n);
    key += ',';
  }
  key += "|s=";
  for (double s : options.limit.tolerance_scales) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g,", s);
    key += buf;
  }
  key += "|t=";
  key += options.tolerances.CacheKey();
  key += "|f=";
  key += options.use_symbolic ? '1' : '0';
  key += options.use_profile ? '1' : '0';
  key += options.use_maxent ? '1' : '0';
  key += options.use_exact_fallback ? '1' : '0';
  key += options.use_montecarlo ? '1' : '0';
  key += options.use_defaults ? '1' : '0';
  key += options.use_evidence ? '1' : '0';
  key += "|ic=";
  {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", options.interval_confidence);
    key += buf;
  }
  key += "|fx=";
  key += std::to_string(options.fixed_domain_size);
  key += "|mc=";
  key += std::to_string(options.montecarlo_samples);
  return key;
}

std::string OutcomeName(InferenceStrategy::Outcome outcome) {
  switch (outcome) {
    case InferenceStrategy::Outcome::kFinal:
      return "final";
    case InferenceStrategy::Outcome::kPartial:
      return "partial";
    case InferenceStrategy::Outcome::kSkip:
      return "skip";
  }
  return "?";
}

// Builds the planned candidate list: every registered strategy assessed
// and costed, applicable candidates first in the mode's order (preemptive
// strategies pinned to the front), inapplicable ones kept at the tail for
// the trace.
std::vector<PlanStep> BuildPlan(
    const std::vector<std::shared_ptr<const InferenceStrategy>>& strategies,
    QueryContext& ctx, const logic::FormulaPtr& query,
    const InferenceOptions& options) {
  struct Assessed {
    PlanStep step;
    size_t rank = 0;  // registration (fidelity) order
  };
  std::vector<Assessed> assessed;
  assessed.reserve(strategies.size());
  for (size_t i = 0; i < strategies.size(); ++i) {
    const auto& strategy = strategies[i];
    Assessed a;
    a.step.strategy = strategy->name();
    a.step.capability = strategy->Assess(ctx, query, options);
    if (a.step.capability.applicable) {
      a.step.predicted = strategy->EstimateCost(ctx, query, options);
    }
    a.step.preemptive = strategy->preemptive();
    a.rank = i;
    assessed.push_back(std::move(a));
  }

  std::stable_sort(assessed.begin(), assessed.end(),
                   [&](const Assessed& x, const Assessed& y) {
                     auto bucket = [&](const Assessed& a) {
                       if (!a.step.capability.applicable) return 2;
                       return a.step.preemptive ? 0 : 1;
                     };
                     int bx = bucket(x);
                     int by = bucket(y);
                     if (bx != by) return bx < by;
                     if (bx == 1 && options.plan_mode == PlanMode::kMinCost &&
                         x.step.predicted.work != y.step.predicted.work) {
                       return x.step.predicted.work < y.step.predicted.work;
                     }
                     return x.rank < y.rank;
                   });

  std::vector<PlanStep> steps;
  steps.reserve(assessed.size());
  for (auto& a : assessed) {
    if (!a.step.capability.applicable) {
      a.step.action = PlanStep::Action::kSkippedInapplicable;
    }
    steps.push_back(std::move(a.step));
  }
  return steps;
}

void FinalizeAnswer(Answer* answer, bool deadline_hit, bool budget_skips) {
  // Mirrors the pre-planner pipeline: a sound symbolic interval survives
  // as the answer; otherwise the query is unanswered.
  if (answer->status == Answer::Status::kInterval) return;
  answer->status = Answer::Status::kUnknown;
  if (answer->explanation.empty()) {
    if (deadline_hit) {
      answer->explanation =
          "deadline exhausted before any engine produced an answer";
    } else if (budget_skips) {
      answer->explanation =
          "every applicable engine was predicted over the work budget";
    } else {
      answer->explanation = "no engine applies to this (KB, query) pair";
    }
  }
}

}  // namespace

uint64_t PlanShapeFingerprint(const logic::FormulaPtr& query) {
  return HashFormulaShape(query);
}

std::string FormatPlanTrace(const PlanTrace& trace) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "plan: mode=%s source=%s shape=%016llx planning=%.3fms "
                "total=%.3fms%s\n",
                trace.mode.c_str(), trace.from_cache ? "cache" : "cold",
                static_cast<unsigned long long>(trace.shape_fingerprint),
                trace.planning_ms, trace.total_ms,
                trace.deadline_hit ? " [deadline hit]" : "");
  out += buf;
  int position = 0;
  for (const PlanStep& step : trace.steps) {
    ++position;
    std::string status;
    switch (step.action) {
      case PlanStep::Action::kRan:
        std::snprintf(buf, sizeof(buf), "%-7s %8.3fms",
                      step.outcome.c_str(), step.observed_ms);
        status = buf;
        break;
      case PlanStep::Action::kSkippedInapplicable:
        status = "inapplicable: " + step.capability.reason;
        break;
      case PlanStep::Action::kSkippedBudget:
        status = "skipped: predicted work over budget";
        break;
      case PlanStep::Action::kSkippedDeadline:
        status = "skipped: deadline";
        break;
      case PlanStep::Action::kNotReached:
        status = "not reached";
        break;
    }
    std::snprintf(buf, sizeof(buf), "  %d. %-11s %s\n", position,
                  step.strategy.c_str(), status.c_str());
    out += buf;
    if (step.capability.applicable) {
      std::snprintf(buf, sizeof(buf),
                    "       predicted work=%.3g err=%.3g  (%s)\n",
                    step.predicted.work, step.predicted.error,
                    step.predicted.basis.c_str());
      out += buf;
    }
  }
  return out;
}

Answer PlanAndExecute(const EngineRegistry& registry, QueryContext& ctx,
                      const logic::FormulaPtr& query,
                      const InferenceOptions& options) {
  const Clock::time_point start = Clock::now();
  Answer answer;
  auto trace = std::make_shared<PlanTrace>();
  trace->shape_fingerprint = PlanShapeFingerprint(query);

  // ---- forced single-strategy path (rwlq --engine) ----
  if (!options.force_engine.empty()) {
    trace->mode = "forced:" + options.force_engine;
    std::shared_ptr<const InferenceStrategy> strategy =
        registry.Find(options.force_engine);
    if (strategy == nullptr) {
      answer.status = Answer::Status::kUnknown;
      answer.explanation =
          "no strategy named '" + options.force_engine + "' is registered";
      answer.plan = trace;
      return answer;
    }
    // Forcing implies enabling: the forced strategy's opt-in switch is
    // turned on, and only it runs.
    InferenceOptions forced = options;
    forced.force_engine.clear();
    forced.use_symbolic = true;
    forced.use_profile = true;
    forced.use_maxent = true;
    forced.use_exact_fallback = true;
    forced.use_montecarlo = true;
    forced.use_defaults = true;
    forced.use_evidence = true;
    if (options.deadline_ms > 0.0) {
      forced.limit.deadline =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          options.deadline_ms));
    }
    PlanStep step;
    step.strategy = strategy->name();
    step.capability = strategy->Assess(ctx, query, forced);
    if (step.capability.applicable) {
      step.predicted = strategy->EstimateCost(ctx, query, forced);
      if (options.work_budget > 0.0 &&
          step.predicted.work > options.work_budget) {
        step.action = PlanStep::Action::kSkippedBudget;
        answer.status = Answer::Status::kUnknown;
        answer.explanation = "forced strategy '" + options.force_engine +
                             "' predicted over the work budget";
        trace->steps.push_back(std::move(step));
        trace->total_ms = MillisSince(start);
        answer.plan = trace;
        return answer;
      }
      Clock::time_point t0 = Clock::now();
      InferenceStrategy::Outcome outcome =
          strategy->Run(ctx, query, forced, &answer);
      step.action = PlanStep::Action::kRan;
      step.outcome = OutcomeName(outcome);
      step.observed_ms = MillisSince(t0);
      if (outcome != InferenceStrategy::Outcome::kFinal) {
        const bool past_deadline =
            options.deadline_ms > 0.0 &&
            Clock::now() > forced.limit.deadline;
        trace->deadline_hit = past_deadline;
        FinalizeAnswer(&answer, past_deadline, false);
      }
    } else {
      step.action = PlanStep::Action::kSkippedInapplicable;
      answer.status = Answer::Status::kUnknown;
      answer.explanation = "forced strategy '" + options.force_engine +
                           "' is inapplicable: " + step.capability.reason;
    }
    trace->steps.push_back(std::move(step));
    trace->total_ms = MillisSince(start);
    answer.plan = trace;
    return answer;
  }

  // ---- plan (or fetch the cached plan) ----
  trace->mode =
      options.plan_mode == PlanMode::kMinCost ? "cost" : "fidelity";
  const std::vector<std::shared_ptr<const InferenceStrategy>> strategies =
      registry.Ordered();
  // Plans cache per registry composition: two registries sharing one
  // context (tests, custom pipelines) must not replay each other's plans.
  uint64_t registry_fingerprint = 0;
  for (const auto& strategy : strategies) {
    registry_fingerprint =
        Mix(registry_fingerprint, HashString(strategy->name()));
  }
  const std::string cache_key = PlanCacheKey(
      options, trace->shape_fingerprint, registry_fingerprint);
  std::shared_ptr<const CachedPlan> cached =
      std::static_pointer_cast<const CachedPlan>(ctx.LookupBlob(cache_key));
  std::vector<PlanStep> steps;
  if (cached != nullptr) {
    trace->from_cache = true;
    steps = cached->steps;
  } else {
    steps = BuildPlan(strategies, ctx, query, options);
    trace->planning_ms = MillisSince(start);
    auto to_store = std::make_shared<CachedPlan>();
    to_store->steps = steps;
    size_t bytes = 64;
    for (const PlanStep& step : steps) {
      bytes += sizeof(PlanStep) + step.strategy.size() +
               step.capability.reason.size() + step.predicted.basis.size();
    }
    ctx.StoreBlob(cache_key, std::move(to_store), bytes);
  }

  // ---- execute under deadline / work budget ----
  const bool deadline_set = options.deadline_ms > 0.0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      options.deadline_ms));
  InferenceOptions step_options = options;
  if (deadline_set) step_options.limit.deadline = deadline;

  bool ran_any = false;
  bool finalized = false;
  // Index of the one candidate allowed to start after the deadline when
  // nothing has run yet (the cheapest remaining): a late planner still
  // answers cheap queries, and the overshoot is bounded by that single
  // probe.
  std::optional<size_t> late_only;
  for (size_t i = 0; i < steps.size(); ++i) {
    PlanStep& step = steps[i];
    if (!step.capability.applicable) {
      step.action = PlanStep::Action::kSkippedInapplicable;
      continue;
    }
    if (finalized) {
      step.action = PlanStep::Action::kNotReached;
      continue;
    }
    // Preemptive candidates (fixed-N) ARE the question: skipping one for
    // a cheaper limit engine would silently answer Pr_∞ where Pr_N was
    // asked.  They run regardless of deadline/budget — a single probe,
    // so the overshoot stays bounded.
    if (!step.preemptive && options.work_budget > 0.0 &&
        step.predicted.work > options.work_budget) {
      step.action = PlanStep::Action::kSkippedBudget;
      continue;
    }
    if (!step.preemptive && deadline_set && Clock::now() > deadline) {
      trace->deadline_hit = true;
      if (ran_any) {
        step.action = PlanStep::Action::kSkippedDeadline;
        continue;
      }
      if (!late_only.has_value()) {
        size_t best = i;
        double best_work = std::numeric_limits<double>::infinity();
        for (size_t j = i; j < steps.size(); ++j) {
          const PlanStep& candidate = steps[j];
          if (!candidate.capability.applicable) continue;
          if (options.work_budget > 0.0 &&
              candidate.predicted.work > options.work_budget) {
            continue;
          }
          if (candidate.predicted.work < best_work) {
            best_work = candidate.predicted.work;
            best = j;
          }
        }
        late_only = best;
      }
      if (i != *late_only) {
        step.action = PlanStep::Action::kSkippedDeadline;
        continue;
      }
    }

    const InferenceStrategy* strategy = nullptr;
    for (const auto& candidate : strategies) {
      if (candidate->name() == step.strategy) {
        strategy = candidate.get();
        break;
      }
    }
    if (strategy == nullptr) {
      // Defensive: a cached plan from a context outliving a registry
      // mutation; the registry fingerprint makes this unreachable for
      // composition changes, but a same-name swap stays sound — the plan
      // is advisory and every strategy self-validates.
      step.action = PlanStep::Action::kSkippedInapplicable;
      step.capability.reason = "strategy no longer registered";
      continue;
    }
    Clock::time_point t0 = Clock::now();
    InferenceStrategy::Outcome outcome =
        strategy->Run(ctx, query, step_options, &answer);
    step.action = PlanStep::Action::kRan;
    step.outcome = OutcomeName(outcome);
    step.observed_ms = MillisSince(t0);
    ran_any = true;
    if (outcome == InferenceStrategy::Outcome::kFinal) finalized = true;
  }

  // A deadline that fired inside the LAST candidate's sweep has no later
  // step to trip the skip check; the elapsed clock is the ground truth.
  if (deadline_set && Clock::now() > deadline) trace->deadline_hit = true;
  if (!finalized) {
    bool budget_skips = false;
    for (const PlanStep& step : steps) {
      budget_skips =
          budget_skips || step.action == PlanStep::Action::kSkippedBudget;
    }
    FinalizeAnswer(&answer, trace->deadline_hit, budget_skips);
  }
  trace->steps = std::move(steps);
  trace->total_ms = MillisSince(start);
  answer.plan = trace;
  return answer;
}

}  // namespace rwl
