// QueryContext: the shared, memoizing state of one inference pipeline.
//
// A context pins down the (vocabulary, KB) pair a query — or a batch of
// queries — is answered against, and owns every piece of derived state the
// engines would otherwise recompute per call:
//
//   * the flattened KB conjunct list and the symbolic engine's KbAnalysis,
//   * the profile engine's constant-free / constant-dependent split,
//   * a memo of finite-engine results keyed by (engine, query id, N, ⃗τ)
//     — node ids come from the hash-consed AST (logic/intern.h), so keys
//     are dense and exact,
//   * a type-erased cache of engine-derived state (e.g. the profile
//     engine's satisfying-world list per (N, ⃗τ), which makes every query
//     after the first a replay instead of a DFS).
//
// All lookups are thread-safe: the limit-sweep worker pool shares one
// context across its workers, and the service layer (src/service/) runs
// many concurrent queries against one context.  Caching can be disabled
// (for testing and for measuring): the engines then recompute everything,
// and are required to produce bit-identical answers — the caches store
// only what the uncached path would have computed, in the same order.
//
// KB-version keying.  Every finite-memo and blob key is transparently
// prefixed with the context's version_salt() — a hash of the KB formula's
// dense hash-consed id and the vocabulary fingerprint — before it touches
// the underlying maps.  Within one context the prefix is a constant (a
// context pins one (vocabulary, KB) pair), but it makes entries portable:
// AdoptCachesFrom() can seed a successor context (a new KB version in the
// service catalog) with a predecessor's entries, and a stale hit against
// the old KB is impossible by construction — the old entries are keyed by
// the old salt and become reachable again only if a later mutation
// produces the identical (vocabulary, KB) pair, in which case they are
// exactly right.
#ifndef RWL_CORE_QUERY_CONTEXT_H_
#define RWL_CORE_QUERY_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/knowledge_base.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"

namespace rwl::engines {
struct FiniteResult;
struct KbAnalysis;
}  // namespace rwl::engines

namespace rwl::semantics {
struct CompiledFormula;
}  // namespace rwl::semantics

namespace rwl {

// The shape of one KB mutation, as seen by the incremental-maintenance
// path (QueryContext::ApplyDelta and the service catalog's background
// minting worker).  Computed by diffing predecessor and successor KBs —
// cheap, because the persistent conjunct vector recognizes shared prefixes
// by node pointer.
struct KbDelta {
  // No new symbols: the vocabulary fingerprints agree, so compiled
  // programs (and everything keyed per-vocabulary) stay valid.
  bool signature_preserving = false;
  // The successor is the predecessor plus `appended` (ASSERT).  False for
  // retractions and rewrites — those cannot be patched by filtering, only
  // adopted (salt revert) or rebuilt lazily.
  bool is_append = false;
  std::vector<logic::FormulaPtr> appended;

  bool patchable() const {
    return signature_preserving && is_append && !appended.empty();
  }
};

// Diffs two KB versions into the delta ApplyDelta consumes.
KbDelta ComputeKbDelta(const KnowledgeBase& from, const KnowledgeBase& to);

class QueryContext {
 public:
  // The vocabulary must already cover the KB and every query that will be
  // asked through this context (see MakeQueryContext in core/inference.h).
  QueryContext(logic::Vocabulary vocabulary, logic::FormulaPtr kb,
               bool caching_enabled = true);
  ~QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;
  QueryContext(QueryContext&&) noexcept;
  QueryContext& operator=(QueryContext&&) noexcept;

  const logic::Vocabulary& vocabulary() const { return vocabulary_; }
  const logic::FormulaPtr& kb() const { return kb_; }
  bool caching_enabled() const { return caching_enabled_; }

  // The KB-version salt every finite/blob key is qualified with: a hash of
  // (KB formula id, vocabulary fingerprint).  Equal salts mean cached
  // results are interchangeable; unequal salts mean they cannot collide.
  uint64_t version_salt() const { return version_salt_; }

  // Seeds this context's caches from a predecessor's (the copy-on-write
  // path of the service catalog: an ASSERT/RETRACT builds the successor
  // version's context and adopts what is still valid).
  //
  //   * finite-memo and blob entries salted for the predecessor's
  //     version or for THIS version (a mutation reverting to an earlier
  //     KB — the assert/retract round trip) are copied verbatim; entries
  //     for older versions are dropped (generational GC: without it a
  //     long-lived mutating tenant copies an ever-growing map per
  //     mutation).  Old-salted entries are unreachable from this context
  //     unless the salts match, in which case replaying them is exact;
  //   * compiled programs (keyed by formula id, valid per vocabulary) are
  //     adopted only when the vocabulary fingerprints agree;
  //   * KB-level analyses (conjuncts/split/analysis) are never adopted —
  //     they describe the predecessor's KB.
  //
  // Blob copies are charged against this context's budget; entries that
  // would exceed it are dropped (counted in blob_stores_dropped).  Must be
  // called before this context is shared across threads (the predecessor
  // may be live and is only read under its own lock).  No-op when either
  // context has caching disabled.
  void AdoptCachesFrom(const QueryContext& prior);

  // Incremental cache patching for a signature-preserving append mutation
  // (the service catalog's ASSERT fast path).  Call after AdoptCachesFrom
  // and before this context is shared across threads.  When the delta is
  // patchable this
  //
  //   * re-salts the predecessor's recorded world lists (profile and
  //     exact engines) to THIS version after filtering each recorded
  //     world through the appended conjuncts — O(worlds × |delta|)
  //     instead of a fresh DFS/odometer sweep, and bit-identical to one:
  //     the survivors are exactly the new KB's worlds, in the same
  //     enumeration order, with unchanged log-weights;
  //   * pre-computes the KB-level analyses (conjuncts/split/analysis)
  //     through the exact code paths the lazy accessors use, so the first
  //     post-mutation query finds them warm.
  //
  // Returns true when the delta was patched; false when it forces the
  // rebuild path (vocabulary-extending mutation, retraction to a novel
  // state) — the caches then repopulate lazily, which the two-salt
  // adoption window above already makes correct.  Counted in
  // cache_stats().deltas_patched / deltas_rebuilt.
  bool ApplyDelta(const QueryContext& prior, const KbDelta& delta);

  // Pre-computes the lazily-derived KB analyses (used by the maintenance
  // worker on the rebuild path, so even an unpatchable mutation pays its
  // O(KB) analysis cost off the request path).
  void PrewarmAnalyses() const;

  // Eager world-list recording: record on the FIRST computation at each
  // sweep point instead of the second (see engines/world_cache.h).  The
  // service catalog enables this on snapshot contexts — a recorded list
  // is what ApplyDelta patches, and service tenants re-ask the same sweep
  // points for the lifetime of the KB, so recording up front is the right
  // trade there.  Must be set before the context is shared.
  void set_eager_world_recording(bool eager) { eager_world_recording_ = eager; }
  bool eager_world_recording() const { return eager_world_recording_; }

  // ---- Memoized KB-level analyses (computed once, shared by engines) ----

  // Flattened conjunct list of the KB.
  const std::vector<logic::FormulaPtr>& kb_conjuncts() const;

  // The profile engine's split: conjuncts mentioning no constant
  // (evaluated once per profile) vs. the rest (evaluated per placement).
  struct KbSplit {
    logic::FormulaPtr constant_free;
    logic::FormulaPtr constant_dependent;
  };
  const KbSplit& kb_split() const;

  // The symbolic engine's flattened statistical view of the KB.
  const engines::KbAnalysis& kb_analysis() const;

  // ---- Compiled-program cache ----
  //
  // The bytecode program (semantics/compile.h) for a formula against this
  // context's vocabulary, memoized by the formula's dense node id.  A
  // program depends only on (formula, vocabulary) — compilation is
  // deterministic and carries no query results — but the memo still honors
  // caching_enabled() so the uncached measurement mode recompiles from
  // scratch (bit-identically).  Never returns null; compile failures are
  // carried inside the CompiledFormula.
  std::shared_ptr<const semantics::CompiledFormula> Compiled(
      const logic::FormulaPtr& f) const;

  // The cached program if one exists, else null — never compiles.  The
  // planner's cost models peek here: an exact program length when an
  // engine already compiled the formula, a cheap structural estimate
  // otherwise (compiling everything up front would make planning cost
  // more than small queries themselves).
  std::shared_ptr<const semantics::CompiledFormula> CompiledIfCached(
      const logic::FormulaPtr& f) const;

  // ---- Finite-result memo ----
  //
  // Keys are exact serializations (engine name + options salt + query id +
  // N + ⃗τ bits); equality of keys implies equality of the computation.
  // Lookup returns false (and Store is a no-op) when caching is disabled.
  // Results with exhausted = true are never stored: exhaustion reflects
  // the execution environment (budgets, deadlines), not the key.
  bool LookupFinite(const std::string& key, engines::FiniteResult* out) const;
  void StoreFinite(const std::string& key, const engines::FiniteResult& value);

  // ---- Type-erased derived-state cache ----
  //
  // Engines park arbitrary shared state here (profile world lists, maxent
  // solutions, ...) under the same exact-key discipline.  Returns nullptr
  // (and Store is a no-op) when caching is disabled.  `bytes_hint` is the
  // approximate payload size, charged against a per-context aggregate
  // budget: a store that would exceed it is dropped (callers then simply
  // recompute — the caches are transparent), so one batch cannot pin
  // unbounded memory no matter how many sweep points it records.
  std::shared_ptr<const void> LookupBlob(const std::string& key) const;
  void StoreBlob(const std::string& key, std::shared_ptr<const void> blob,
                 size_t bytes_hint = 0);

  // Aggregate budget for sized blobs (world lists); overwriting a key
  // refunds the old entry's charge.
  static constexpr size_t kBlobBudgetBytes = 256u << 20;

  struct CacheStats {
    uint64_t finite_hits = 0;
    uint64_t finite_misses = 0;
    uint64_t blob_hits = 0;
    uint64_t blob_misses = 0;
    uint64_t blob_bytes = 0;          // charged against kBlobBudgetBytes
    uint64_t blob_stores_dropped = 0;  // stores rejected over budget
    // Incremental-maintenance counters (ApplyDelta / PrewarmAnalyses).
    uint64_t deltas_patched = 0;       // ApplyDelta took the patch path
    uint64_t deltas_rebuilt = 0;       // delta forced the rebuild path
    uint64_t world_lists_patched = 0;  // recorded lists re-salted by filter
    uint64_t world_lists_dropped = 0;  // adopted lists a patch could not carry
    uint64_t analyses_prewarmed = 0;   // KB analyses computed off-request-path
  };
  CacheStats cache_stats() const;

 private:
  struct Impl;

  logic::Vocabulary vocabulary_;
  logic::FormulaPtr kb_;
  bool caching_enabled_;
  bool eager_world_recording_ = false;
  uint64_t version_salt_ = 0;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rwl

#endif  // RWL_CORE_QUERY_CONTEXT_H_
