#include "src/testing/buggy_engine.h"

namespace rwl::testing {
namespace {

using logic::Expr;
using logic::ExprPtr;
using logic::Formula;
using logic::FormulaPtr;

bool ExprContainsOr(const ExprPtr& e);

bool FormulaContainsOr(const FormulaPtr& f) {
  if (f == nullptr) return false;
  switch (f->kind()) {
    case Formula::Kind::kOr:
      return true;
    case Formula::Kind::kNot:
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists:
      return FormulaContainsOr(f->body());
    case Formula::Kind::kAnd:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff:
      return FormulaContainsOr(f->left()) || FormulaContainsOr(f->right());
    case Formula::Kind::kCompare:
      return ExprContainsOr(f->expr_left()) ||
             ExprContainsOr(f->expr_right());
    default:
      return false;
  }
}

bool ExprContainsOr(const ExprPtr& e) {
  if (e == nullptr) return false;
  switch (e->kind()) {
    case Expr::Kind::kProportion:
      return FormulaContainsOr(e->body());
    case Expr::Kind::kConditional:
      return FormulaContainsOr(e->body()) || FormulaContainsOr(e->cond());
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
      return ExprContainsOr(e->lhs()) || ExprContainsOr(e->rhs());
    default:
      return false;
  }
}

}  // namespace

bool ContainsOr(const logic::FormulaPtr& f) { return FormulaContainsOr(f); }

}  // namespace rwl::testing
