#include "src/testing/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl::testing {
namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Strict unsigned parse: the whole string must be digits.
bool ParseUnsigned(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  uint64_t value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

// Splits "Name/arity"; returns false on malformed input.
bool ParseSymbolPin(const std::string& text, std::string* name, int* arity) {
  size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0) return false;
  *name = text.substr(0, slash);
  char* end = nullptr;
  long value = std::strtol(text.c_str() + slash + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value < 0) return false;
  *arity = static_cast<int>(value);
  return true;
}

}  // namespace

std::string FormatCase(const CorpusCase& corpus_case) {
  std::ostringstream out;
  for (const auto& note : corpus_case.notes) {
    out << "//! note: " << note << "\n";
  }
  if (corpus_case.seed != 0) {
    out << "//! seed: " << corpus_case.seed << "\n";
  }
  out << "//! tol: " << FormatDouble(corpus_case.tolerance) << "\n";
  if (!corpus_case.domain_sizes.empty()) {
    out << "//! n:";
    for (int n : corpus_case.domain_sizes) out << " " << n;
    out << "\n";
  }
  if (corpus_case.montecarlo_samples > 0) {
    out << "//! mc: " << corpus_case.montecarlo_samples << "\n";
  }
  if (!corpus_case.check_pipeline || !corpus_case.check_maxent ||
      !corpus_case.check_batch || !corpus_case.check_service ||
      !corpus_case.check_defaults || !corpus_case.check_evidence ||
      corpus_case.check_coverage) {
    std::string enabled;
    if (corpus_case.check_pipeline) enabled += " pipeline";
    if (corpus_case.check_maxent) enabled += " maxent";
    if (corpus_case.check_batch) enabled += " batch";
    if (corpus_case.check_service) enabled += " service";
    if (corpus_case.check_defaults) enabled += " defaults";
    if (corpus_case.check_evidence) enabled += " evidence";
    if (corpus_case.check_coverage) enabled += " coverage";
    out << "//! checks:" << (enabled.empty() ? " none" : enabled) << "\n";
  }
  if (corpus_case.check_coverage) {
    out << "//! confidence: " << FormatDouble(corpus_case.coverage_confidence)
        << "\n";
  }
  if (!corpus_case.pipeline_domain_sizes.empty()) {
    out << "//! pipeline-n:";
    for (int n : corpus_case.pipeline_domain_sizes) out << " " << n;
    out << "\n";
  }
  for (const auto& [name, arity] : corpus_case.predicates) {
    out << "//! predicate: " << name << "/" << arity << "\n";
  }
  for (const auto& [name, arity] : corpus_case.functions) {
    if (arity == 0) {
      out << "//! constant: " << name << "\n";
    } else {
      out << "//! function: " << name << "/" << arity << "\n";
    }
  }
  for (const auto& query : corpus_case.queries) {
    out << "//! query: " << query << "\n";
  }
  std::string kb = corpus_case.kb_text;
  if (!kb.empty() && kb.back() != '\n') kb += '\n';
  out << kb;
  return out.str();
}

bool ParseCase(const std::string& text, CorpusCase* out,
               std::string* error) {
  CorpusCase parsed;
  std::ostringstream kb;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_number) + ": " + message;
    }
    return false;
  };
  while (std::getline(lines, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.rfind("//!", 0) != 0) {
      // KB content (including plain // comments and blank lines) passes
      // through verbatim.
      if (!trimmed.empty()) kb << trimmed << "\n";
      continue;
    }
    std::string directive = Trim(trimmed.substr(3));
    size_t colon = directive.find(':');
    if (colon == std::string::npos) return fail("directive missing ':'");
    std::string key = Trim(directive.substr(0, colon));
    std::string value = Trim(directive.substr(colon + 1));
    if (key == "note") {
      parsed.notes.push_back(value);
    } else if (key == "seed") {
      if (!ParseUnsigned(value, &parsed.seed)) {
        return fail("malformed seed '" + value + "'");
      }
    } else if (key == "tol") {
      parsed.tolerance = std::strtod(value.c_str(), nullptr);
      if (parsed.tolerance <= 0.0) return fail("tol must be positive");
    } else if (key == "n") {
      std::istringstream sizes(value);
      int n = 0;
      parsed.domain_sizes.clear();
      while (sizes >> n) {
        if (n <= 0) return fail("domain sizes must be positive");
        parsed.domain_sizes.push_back(n);
      }
      if (parsed.domain_sizes.empty()) return fail("empty n: directive");
    } else if (key == "mc") {
      // Strict: a typo that silently parsed as 0 would drop the Monte
      // Carlo engine from replay — the very engine the case may guard.
      if (!ParseUnsigned(value, &parsed.montecarlo_samples)) {
        return fail("malformed mc sample count '" + value + "'");
      }
    } else if (key == "checks") {
      parsed.check_pipeline = parsed.check_maxent = parsed.check_batch =
          parsed.check_service = parsed.check_defaults =
              parsed.check_evidence = false;
      parsed.check_coverage = false;
      std::istringstream names(value);
      std::string name;
      while (names >> name) {
        if (name == "pipeline") {
          parsed.check_pipeline = true;
        } else if (name == "maxent") {
          parsed.check_maxent = true;
        } else if (name == "batch") {
          parsed.check_batch = true;
        } else if (name == "service") {
          parsed.check_service = true;
        } else if (name == "defaults") {
          parsed.check_defaults = true;
        } else if (name == "evidence") {
          parsed.check_evidence = true;
        } else if (name == "coverage") {
          parsed.check_coverage = true;
        } else if (name != "none") {
          return fail("unknown check '" + name + "'");
        }
      }
    } else if (key == "confidence") {
      parsed.coverage_confidence = std::strtod(value.c_str(), nullptr);
      if (parsed.coverage_confidence <= 0.0 ||
          parsed.coverage_confidence >= 1.0) {
        return fail("confidence must be in (0, 1)");
      }
    } else if (key == "pipeline-n") {
      std::istringstream sizes(value);
      int n = 0;
      parsed.pipeline_domain_sizes.clear();
      while (sizes >> n) {
        if (n <= 0) return fail("pipeline sizes must be positive");
        parsed.pipeline_domain_sizes.push_back(n);
      }
      if (parsed.pipeline_domain_sizes.empty()) {
        return fail("empty pipeline-n: directive");
      }
    } else if (key == "predicate") {
      std::string name;
      int arity = 0;
      if (!ParseSymbolPin(value, &name, &arity)) {
        return fail("malformed predicate pin '" + value + "'");
      }
      parsed.predicates.emplace_back(name, arity);
    } else if (key == "constant") {
      if (value.empty()) return fail("empty constant pin");
      parsed.functions.emplace_back(value, 0);
    } else if (key == "function") {
      std::string name;
      int arity = 0;
      if (!ParseSymbolPin(value, &name, &arity)) {
        return fail("malformed function pin '" + value + "'");
      }
      parsed.functions.emplace_back(name, arity);
    } else if (key == "query") {
      if (value.empty()) return fail("empty query directive");
      parsed.queries.push_back(value);
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (parsed.queries.empty()) return fail("no //! query: directive");
  parsed.kb_text = kb.str();
  *out = std::move(parsed);
  return true;
}

bool LoadCaseFile(const std::string& path, CorpusCase* out,
                  std::string* error) {
  std::ifstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (!ParseCase(buffer.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  out->name = std::filesystem::path(path).stem().string();
  return true;
}

bool WriteCaseFile(const std::string& path, const CorpusCase& corpus_case,
                   std::string* error) {
  std::ofstream file(path);
  if (!file) {
    if (error != nullptr) *error = "cannot write '" + path + "'";
    return false;
  }
  file << FormatCase(corpus_case);
  return file.good();
}

std::vector<std::string> ListCorpusFiles(const std::string& directory) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (entry.path().extension() == ".rwl") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool CaseToScenario(const CorpusCase& corpus_case, Scenario* out,
                    std::string* error) {
  Scenario scenario;
  for (const auto& [name, arity] : corpus_case.predicates) {
    scenario.vocabulary.AddPredicate(name, arity);
  }
  for (const auto& [name, arity] : corpus_case.functions) {
    scenario.vocabulary.AddFunction(name, arity);
  }
  logic::ParseResult kb = logic::ParseKnowledgeBase(corpus_case.kb_text);
  if (!kb.ok()) {
    if (error != nullptr) *error = "KB: " + kb.error;
    return false;
  }
  scenario.kb = kb.formula;
  logic::RegisterSymbols(scenario.kb, &scenario.vocabulary);
  for (const auto& text : corpus_case.queries) {
    logic::ParseResult query = logic::ParseFormula(text);
    if (!query.ok()) {
      if (error != nullptr) *error = "query '" + text + "': " + query.error;
      return false;
    }
    logic::RegisterSymbols(query.formula, &scenario.vocabulary);
    scenario.queries.push_back(query.formula);
  }
  scenario.provenance = corpus_case.name.empty()
                            ? std::string("corpus case")
                            : "corpus:" + corpus_case.name;
  *out = std::move(scenario);
  return true;
}

CorpusCase CaseFromScenario(const Scenario& scenario,
                            const DifferentialOptions& options,
                            uint64_t montecarlo_samples) {
  CorpusCase corpus_case;
  corpus_case.tolerance = options.tolerances.default_value();
  corpus_case.domain_sizes = options.domain_sizes;
  corpus_case.montecarlo_samples = montecarlo_samples;
  corpus_case.check_pipeline = options.check_pipeline;
  corpus_case.check_maxent = options.check_maxent;
  corpus_case.check_batch = options.check_batch;
  corpus_case.check_service = options.check_service;
  corpus_case.check_defaults = options.check_defaults;
  corpus_case.check_evidence = options.check_evidence;
  corpus_case.check_coverage = options.check_coverage;
  corpus_case.coverage_confidence = options.coverage_confidence;
  corpus_case.pipeline_domain_sizes = options.pipeline_domain_sizes;
  for (const auto& predicate : scenario.vocabulary.predicates()) {
    corpus_case.predicates.emplace_back(predicate.name, predicate.arity);
  }
  for (const auto& function : scenario.vocabulary.functions()) {
    corpus_case.functions.emplace_back(function.name, function.arity);
  }
  for (const auto& query : scenario.queries) {
    corpus_case.queries.push_back(logic::ToString(query));
  }
  std::ostringstream kb;
  for (const auto& conjunct : logic::Conjuncts(scenario.kb)) {
    kb << logic::ToString(conjunct) << "\n";
  }
  corpus_case.kb_text = kb.str();
  if (!scenario.provenance.empty()) {
    corpus_case.notes.push_back(scenario.provenance);
  }
  return corpus_case;
}

DifferentialOptions ReplayOptions(const CorpusCase& corpus_case) {
  DifferentialOptions options;
  options.tolerances =
      semantics::ToleranceVector::Uniform(corpus_case.tolerance);
  if (!corpus_case.domain_sizes.empty()) {
    options.domain_sizes = corpus_case.domain_sizes;
  }
  options.check_pipeline = corpus_case.check_pipeline;
  options.check_maxent = corpus_case.check_maxent;
  options.check_batch = corpus_case.check_batch;
  options.check_service = corpus_case.check_service;
  options.check_defaults = corpus_case.check_defaults;
  options.check_evidence = corpus_case.check_evidence;
  options.check_coverage = corpus_case.check_coverage;
  options.coverage_confidence = corpus_case.coverage_confidence;
  if (!corpus_case.pipeline_domain_sizes.empty()) {
    options.pipeline_domain_sizes = corpus_case.pipeline_domain_sizes;
  }
  return options;
}

}  // namespace rwl::testing
