// The cross-engine differential oracle.
//
// The paper's central claim is that the degree of belief is ONE
// well-defined quantity however it is computed.  This oracle operationalizes
// that claim as executable checks over a Scenario:
//
//   finite    — every FiniteEngine that supports the instance computes the
//               same Pr_N^τ at each sampled (N, ⃗τ), compared through the
//               tolerance-aware ResultsEquivalent hook (deterministic
//               engines to 1e-9, statistical estimators within a z-score
//               sampling allowance);
//   context   — each engine's answer through a shared caching QueryContext
//               (mark → record → replay / memo) is bit-identical to its
//               direct computation;
//   pipeline  — the full DegreeOfBelief pipeline with the symbolic theorem
//               engine enabled agrees with the numeric-only pipeline
//               whenever both converge (intervals must contain the numeric
//               point);
//   maxent    — the maximum-entropy limit agrees with the profile engine's
//               N-sweep estimate on unary scenarios when both converge;
//   batch     — DegreesOfBelief over the query batch equals the sequential
//               per-query answers exactly;
//   service   — after a deterministic pseudo-random ASSERT/RETRACT
//               sequence through the service catalog (copy-on-write
//               snapshots, version-salted cache adoption), the
//               incrementally-maintained head KB answers every query
//               bit-identically to a KB rebuilt from scratch — and so
//               does a version pinned mid-sequence (no cross-version
//               cache leaks);
//   replica   — the same kind of sequence shipped as WAL records through
//               the replication pipeline (hub -> subscription -> applier,
//               SNAPSHOT bootstrap first) leaves a replica catalog
//               answering bit-identically to the primary, head and
//               pinned-version alike;
//   defaults  — on propositional-defaults-fragment scenarios, the three
//               defaults strategies (epsilon_semantics, klm, gmp90) agree
//               with each other exactly and with the planner's numeric
//               answer within a loose limit epsilon;
//   evidence  — on Theorem 5.26 scenarios, the evidence strategy's
//               Dempster closed form matches the symbolic engine's
//               independent TryDempster to 1e-9;
//   coverage  — a calibrated-interval answer's empirical coverage of the
//               ground-truth enumeration sweep is at least
//               confidence - tolerance.
//
// Any violated check becomes a Disagreement; a scenario with at least one
// disagreement is a fuzzing failure, to be shrunk (shrinker.h) and checked
// into tests/corpus/.
#ifndef RWL_TESTING_DIFFERENTIAL_H_
#define RWL_TESTING_DIFFERENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/inference.h"
#include "src/engines/engine.h"
#include "src/semantics/tolerance.h"
#include "src/testing/scenario.h"

namespace rwl::testing {

struct DifferentialOptions {
  // Domain sizes for the finite-N oracle (small: the exact engine must
  // support them for the crisp comparisons to run).
  std::vector<int> domain_sizes = {2, 3, 4};
  semantics::ToleranceVector tolerances =
      semantics::ToleranceVector::Uniform(0.2);
  engines::ResultTolerance finite_tolerance;

  // vm — the compiled bytecode VM (semantics/compile.h + vm.h) must agree
  // with the tree-walking evaluator bit for bit on every formula of the
  // scenario, over `vm_worlds` pseudo-random worlds per domain size
  // (deterministically seeded).  Cheap, so on by default everywhere,
  // including corpus replay.
  bool check_vm = true;
  int vm_worlds = 8;
  // Extra vm-check domain sizes around the 64-bit word boundary of the
  // packed unary world representation (world.h): tail-word masking bugs in
  // the popcount kernels only show at N near multiples of 64.  Applied
  // only to unary-relational vocabularies — the tree-walking oracle is
  // O(N^depth) per world on relations of higher arity.
  std::vector<int> vm_extra_domain_sizes = {63, 64, 65, 127};

  // Limit-level checks (pipeline / maxent).  Numeric sweeps estimate the
  // N → ∞ limit from finite prefixes, so the epsilon is necessarily loose.
  bool check_pipeline = true;
  bool check_maxent = true;
  bool check_batch = true;
  double limit_epsilon = 0.15;

  // service — incremental maintenance through the service catalog: a
  // mutation sequence (retracts, re-asserts, a vocabulary-extending fresh
  // fact) derived deterministically from the scenario text must leave the
  // head — and a mid-sequence pinned version — answering bit-identically
  // to a from-scratch rebuild of the same conjuncts and vocabulary.
  bool check_service = true;
  // replica — a second mutation sequence shipped through the replication
  // pipeline (WAL record encode -> ReplicationHub -> ReplicaApplier, with
  // a SNAPSHOT bootstrap like rwld's TAIL handshake): the replica catalog
  // must answer bit-identically to the primary at the head AND at a
  // mid-sequence pin mapped through the primary->local version vector.
  bool check_replica = true;
  // Mutation steps (bounded by the conjunct count; 0 disables).
  int service_mutations = 6;
  // The check's own sweep schedule, deliberately shallow: a stale cache
  // replay shows up at any N, and every from-scratch rebuild pays a
  // cold full sweep — deep schedules would dominate fuzzing wall-clock
  // without adding discrimination.
  std::vector<int> service_domain_sizes = {4, 6};

  // planner — the cost-based planner's answer (core/planner.h) must be
  // differentially equivalent, via ResultsEquivalent at the limit level,
  // to the answer of every forced applicable strategy (rwlq --engine
  // semantics), and to its own cost-ordered mode; a repeated query through
  // one context (a plan-cache hit) must be bit-identical to the cold
  // plan's answer.
  bool check_planner = true;
  // Sample budget for the forced Monte-Carlo strategy (0 disables forcing
  // montecarlo — the full default budget is too slow for fuzz loops).
  uint64_t planner_montecarlo_samples = 4000;
  // Sweep schedule for the pipeline checks.  Kept small: the fuzzer runs
  // thousands of scenarios, and the profile DFS grows combinatorially in
  // (N, atoms) — at 8 atoms the leaf count at N=24 already exceeds the
  // engine's work budget, turning every check into a wasted 2M-leaf abort.
  std::vector<int> pipeline_domain_sizes = {8, 12, 16};
  std::vector<double> pipeline_tolerance_scales = {1.0, 0.5};

  // defaults — forced runs of the defaults family on propositional-
  // defaults-fragment scenarios: epsilon_semantics and klm decide the same
  // p-entailment relation by independent algorithms (greedy peel vs subset
  // enumeration — their points must match exactly); a p-entailed point
  // must also be the gmp90 point (p-entailment is a conservative part of
  // the maximum-entropy system); and the planner's own answer must agree
  // with any defaults point within defaults_epsilon.  Self-gating:
  // scenarios outside the fragment cost one analyzer call.
  bool check_defaults = true;
  // evidence — the forced `evidence` strategy vs the symbolic engine's
  // independent TryDempster matcher on Theorem 5.26 scenarios: closed-form
  // points must match to 1e-9, nonexistence verdicts must pair up, and the
  // planner must agree.  Self-gating like `defaults`.
  bool check_evidence = true;
  // Epsilon for defaults/evidence points vs numeric-sweep answers: the
  // closed forms sit at exactly 0/1 while finite prefixes approach them
  // slowly, so this is necessarily looser than limit_epsilon.
  double defaults_epsilon = 0.25;
  // coverage — calibrated-interval mode: answer the first queries with
  // interval_confidence = coverage_confidence, replay the same sweep
  // schedule on the ground-truth enumeration engine, and require the
  // empirical coverage of the well-defined ground-truth values to be
  // ≥ coverage_confidence - coverage_tolerance.  Costs a full enumeration
  // sweep per query, so off by default (the fuzzer turns it on for
  // calibrated profiles; rwlfuzz --checks coverage).
  bool check_coverage = false;
  double coverage_confidence = 0.9;
  double coverage_tolerance = 0.05;
};

struct Disagreement {
  std::string check;  // "vm", "finite", "context", "pipeline", "maxent",
                      // "batch", "planner", "plan-cache", "service",
                      // "replica"
  std::string lhs;    // engine / strategy names
  std::string rhs;
  logic::FormulaPtr query;
  int domain_size = 0;  // 0 for limit-level checks
  std::string detail;
};

struct DifferentialReport {
  int comparisons = 0;
  std::vector<Disagreement> disagreements;

  bool ok() const { return disagreements.empty(); }
  std::string Summary(const Scenario& scenario) const;
};

// An owning set of finite engines for the oracle.  The default set is
// exact + profile, plus Monte Carlo when `montecarlo_samples` > 0.
struct EngineSet {
  std::vector<std::unique_ptr<engines::FiniteEngine>> owned;

  std::vector<const engines::FiniteEngine*> pointers() const;
  void Add(std::unique_ptr<engines::FiniteEngine> engine);
};

EngineSet DefaultEngineSet(uint64_t montecarlo_samples = 0);

// Fraction of well-defined series points whose probability lies in
// [lo - 1e-9, hi + 1e-9] — the coverage check's scoring primitive,
// exposed for unit tests.  A series with no well-defined point scores 1.0
// (vacuous coverage).
double EmpiricalCoverage(const std::vector<engines::SeriesPoint>& series,
                         double lo, double hi);

// Runs every applicable check over the scenario with the given engine set.
DifferentialReport RunDifferential(
    const Scenario& scenario,
    const std::vector<const engines::FiniteEngine*>& engines,
    const DifferentialOptions& options);

// Convenience: default engine set.
DifferentialReport RunDifferential(const Scenario& scenario,
                                   const DifferentialOptions& options);

}  // namespace rwl::testing

#endif  // RWL_TESTING_DIFFERENTIAL_H_
