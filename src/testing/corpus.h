// The golden-corpus case format: fuzzer reproducers as checked-in files.
//
// A corpus case is a PLAIN .rwl KNOWLEDGE BASE — every non-comment line is
// one KB sentence, so `rwlq tests/corpus/foo.rwl '<query>'` reproduces a
// case with no extra tooling.  Harness metadata rides in `//!` directive
// comments (ordinary `//` comments to the parser):
//
//   //! note: profile vs exact disagreed before PR 2      (free text)
//   //! seed: 20260730                                    (provenance)
//   //! tol: 0.2                                          (base tolerance)
//   //! n: 2 3 4                                          (finite-oracle Ns)
//   //! mc: 20000                                         (MC samples; 0 = off)
//   //! checks: pipeline maxent batch                     (enabled limit-level
//                                                          checks; "none" for
//                                                          finite-only; absent
//                                                          = all defaults)
//   //! confidence: 0.9                                   (coverage-check
//                                                          interval confidence)
//   //! pipeline-n: 6 9 12                                (limit-check sweep Ns)
//   //! predicate: P0/1                                   (vocabulary pin)
//   //! constant: K0
//   //! function: F/1
//   //! query: (P0(K0) | !P1(K0))                         (one per query)
//   #(P0(x))[x] ~= 0.5                                    (KB sentences...)
//
// Vocabulary pins matter: unused symbols change the world space, so a
// reproducer must re-create the vocabulary the fuzzer generated, not just
// the symbols the shrunk formulas happen to mention.
#ifndef RWL_TESTING_CORPUS_H_
#define RWL_TESTING_CORPUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/testing/differential.h"
#include "src/testing/scenario.h"

namespace rwl::testing {

struct CorpusCase {
  std::string name;  // file stem; informational
  std::vector<std::string> notes;
  uint64_t seed = 0;
  double tolerance = 0.2;
  std::vector<int> domain_sizes;  // empty → DifferentialOptions defaults
  uint64_t montecarlo_samples = 0;
  // Limit-level check configuration (the finite oracle always runs).
  bool check_pipeline = true;
  bool check_maxent = true;
  bool check_batch = true;
  bool check_service = true;
  // Self-gating fragment checks (differential.h): on by default like the
  // other limit-level checks.
  bool check_defaults = true;
  bool check_evidence = true;
  // Calibrated-interval coverage vs ground-truth enumeration: costs a full
  // sweep per query, so opt-in per case (`//! checks: ... coverage`).
  bool check_coverage = false;
  double coverage_confidence = 0.9;
  std::vector<int> pipeline_domain_sizes;  // empty → defaults
  // Vocabulary pins (predicates with arity; functions with arity,
  // constants being arity 0).
  std::vector<std::pair<std::string, int>> predicates;
  std::vector<std::pair<std::string, int>> functions;
  std::vector<std::string> queries;  // textual formulas
  std::string kb_text;               // the non-directive lines, verbatim
};

// Serializes a case to the directive-comment format above.
std::string FormatCase(const CorpusCase& corpus_case);

// Parses the format; returns false with a message on malformed directives
// (KB/query syntax is validated later, by CaseToScenario).
bool ParseCase(const std::string& text, CorpusCase* out, std::string* error);

// File I/O.  LoadCaseFile derives `name` from the path's stem.
bool LoadCaseFile(const std::string& path, CorpusCase* out,
                  std::string* error);
bool WriteCaseFile(const std::string& path, const CorpusCase& corpus_case,
                   std::string* error);

// All `.rwl` files under `directory`, sorted by name (empty when the
// directory does not exist).
std::vector<std::string> ListCorpusFiles(const std::string& directory);

// Builds the executable scenario: registers the pinned vocabulary, parses
// the KB and queries (registering any further symbols they mention).
bool CaseToScenario(const CorpusCase& corpus_case, Scenario* out,
                    std::string* error);

// Captures a scenario (typically a shrunk failure) as a corpus case.
CorpusCase CaseFromScenario(const Scenario& scenario,
                            const DifferentialOptions& options,
                            uint64_t montecarlo_samples);

// The oracle configuration a case asks to be replayed under.
DifferentialOptions ReplayOptions(const CorpusCase& corpus_case);

}  // namespace rwl::testing

#endif  // RWL_TESTING_CORPUS_H_
