// Greedy test-case shrinker: minimizes a failing Scenario while a caller
// predicate keeps reporting the failure.
//
// Passes, applied to a fixpoint (bounded by max_rounds):
//   1. drop KB conjuncts one at a time,
//   2. replace KB conjuncts by closed proper subformulas (And → left,
//      Not φ → φ, quantifier → body when it stays a sentence, ...),
//   3. drop queries (keeping at least one) and replace queries by closed
//      subformulas,
//   4. drop vocabulary symbols no remaining formula mentions.
//
// Every candidate is re-validated through the predicate, so the result is
// guaranteed to still fail; a typical cross-engine disagreement shrinks to
// a handful of conjuncts, small enough to read and check into
// tests/corpus/.
#ifndef RWL_TESTING_SHRINKER_H_
#define RWL_TESTING_SHRINKER_H_

#include <functional>

#include "src/testing/scenario.h"

namespace rwl::testing {

// True when the scenario still exhibits the failure being minimized.
using FailurePredicate = std::function<bool(const Scenario&)>;

struct ShrinkOptions {
  int max_rounds = 6;
  // Hard cap on predicate evaluations (each typically re-runs the full
  // differential oracle).
  int max_evaluations = 2000;
};

struct ShrinkOutcome {
  Scenario scenario;
  int rounds = 0;
  int evaluations = 0;
  // Conjunct count of the shrunk KB (the headline minimality metric).
  int kb_conjuncts = 0;
};

// Requires predicate(failing) to be true on entry; returns a (weakly)
// smaller scenario on which it still holds.
ShrinkOutcome Shrink(const Scenario& failing,
                     const FailurePredicate& still_fails,
                     const ShrinkOptions& options = {});

}  // namespace rwl::testing

#endif  // RWL_TESTING_SHRINKER_H_
