// Scenario: the unit of differential testing — one (vocabulary, KB, query
// batch) triple, with provenance for reporting.
//
// The vocabulary is explicit rather than derived from the formulas because
// it is semantically load-bearing: unused predicates and constants multiply
// the world space uniformly, and the fuzzer deliberately generates
// vocabularies larger than the formulas mention (the engines must agree on
// that world space too).  Shrinking therefore treats vocabulary symbols as
// case content (see shrinker.h).
#ifndef RWL_TESTING_SCENARIO_H_
#define RWL_TESTING_SCENARIO_H_

#include <string>
#include <vector>

#include "src/core/knowledge_base.h"
#include "src/logic/formula.h"
#include "src/logic/vocabulary.h"

namespace rwl::testing {

struct Scenario {
  logic::Vocabulary vocabulary;
  logic::FormulaPtr kb;  // a conjunction; logic::Conjuncts flattens it
  std::vector<logic::FormulaPtr> queries;
  // Where this scenario came from (generator profile, seed, case index, or
  // corpus file name) — prefixed to every disagreement report.
  std::string provenance;
};

// Builds a scenario from textual KB and query syntax, registering all
// mentioned symbols.  Returns false (with the parser message in *error)
// on any parse failure.
bool ScenarioFromTexts(const std::string& kb_text,
                       const std::vector<std::string>& query_texts,
                       Scenario* out, std::string* error);

// A KnowledgeBase carrying the scenario's full vocabulary (including
// symbols no formula mentions), for routing through the DegreeOfBelief
// pipeline.
KnowledgeBase ToKnowledgeBase(const Scenario& scenario);

// The scenario with its vocabulary rebuilt from only the symbols the KB
// and queries actually mention (used by the shrinker's vocabulary pass).
Scenario WithMinimalVocabulary(const Scenario& scenario);

// One line per KB conjunct, then one per query — for failure reports.
std::string Describe(const Scenario& scenario);

}  // namespace rwl::testing

#endif  // RWL_TESTING_SCENARIO_H_
