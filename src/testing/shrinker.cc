#include "src/testing/shrinker.h"

#include <utility>
#include <vector>

#include "src/logic/transform.h"

namespace rwl::testing {
namespace {

using logic::Formula;
using logic::FormulaPtr;

// Closed proper subformulas usable as drop-in replacements: the formula
// must remain a sentence (no free variables escape).
std::vector<FormulaPtr> ReplacementCandidates(const FormulaPtr& f) {
  std::vector<FormulaPtr> candidates;
  auto add_if_closed = [&](const FormulaPtr& g) {
    if (g != nullptr && logic::FreeVariables(g).empty()) {
      candidates.push_back(g);
    }
  };
  switch (f->kind()) {
    case Formula::Kind::kNot:
      add_if_closed(f->body());
      break;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff:
      add_if_closed(f->left());
      add_if_closed(f->right());
      break;
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists:
      add_if_closed(f->body());
      break;
    default:
      break;
  }
  return candidates;
}

struct ShrinkState {
  std::vector<FormulaPtr> conjuncts;
  std::vector<FormulaPtr> queries;
  const Scenario* original;
  const FailurePredicate* still_fails;
  int evaluations = 0;
  int max_evaluations = 0;

  Scenario Assemble() const {
    Scenario scenario = *original;
    scenario.kb = Formula::AndAll(conjuncts);
    scenario.queries = queries;
    return scenario;
  }

  bool Budget() const { return evaluations < max_evaluations; }

  bool Try(const std::vector<FormulaPtr>& new_conjuncts,
           const std::vector<FormulaPtr>& new_queries) {
    if (!Budget()) return false;
    Scenario candidate = *original;
    candidate.kb = Formula::AndAll(new_conjuncts);
    candidate.queries = new_queries;
    ++evaluations;
    if (!(*still_fails)(candidate)) return false;
    conjuncts = new_conjuncts;
    queries = new_queries;
    return true;
  }
};

// Pass 1/2: drop, then structurally simplify, each KB conjunct.
bool ShrinkConjuncts(ShrinkState* state) {
  bool progressed = false;
  for (size_t i = 0; i < state->conjuncts.size();) {
    std::vector<FormulaPtr> without = state->conjuncts;
    without.erase(without.begin() + i);
    if (state->Try(without, state->queries)) {
      progressed = true;
      continue;  // same index now names the next conjunct
    }
    ++i;
  }
  for (size_t i = 0; i < state->conjuncts.size(); ++i) {
    bool replaced = true;
    while (replaced && state->Budget()) {
      replaced = false;
      for (const auto& candidate :
           ReplacementCandidates(state->conjuncts[i])) {
        std::vector<FormulaPtr> patched = state->conjuncts;
        patched[i] = candidate;
        if (state->Try(patched, state->queries)) {
          progressed = true;
          replaced = true;
          break;
        }
      }
    }
  }
  return progressed;
}

// Pass 3: drop queries (keeping one), then simplify each.
bool ShrinkQueries(ShrinkState* state) {
  bool progressed = false;
  for (size_t i = 0; state->queries.size() > 1 && i < state->queries.size();) {
    std::vector<FormulaPtr> without = state->queries;
    without.erase(without.begin() + i);
    if (state->Try(state->conjuncts, without)) {
      progressed = true;
      continue;
    }
    ++i;
  }
  for (size_t i = 0; i < state->queries.size(); ++i) {
    bool replaced = true;
    while (replaced && state->Budget()) {
      replaced = false;
      for (const auto& candidate :
           ReplacementCandidates(state->queries[i])) {
        std::vector<FormulaPtr> patched = state->queries;
        patched[i] = candidate;
        if (state->Try(state->conjuncts, patched)) {
          progressed = true;
          replaced = true;
          break;
        }
      }
    }
  }
  return progressed;
}

}  // namespace

ShrinkOutcome Shrink(const Scenario& failing,
                     const FailurePredicate& still_fails,
                     const ShrinkOptions& options) {
  ShrinkState state;
  state.conjuncts = logic::Conjuncts(failing.kb);
  state.queries = failing.queries;
  state.original = &failing;
  state.still_fails = &still_fails;
  state.max_evaluations = options.max_evaluations;

  ShrinkOutcome outcome;
  for (outcome.rounds = 0; outcome.rounds < options.max_rounds;
       ++outcome.rounds) {
    bool progressed = ShrinkConjuncts(&state);
    progressed = ShrinkQueries(&state) || progressed;
    if (!progressed || !state.Budget()) break;
  }

  // Pass 4: drop vocabulary symbols nothing mentions — but only when the
  // failure survives the smaller world space.
  Scenario shrunk = state.Assemble();
  Scenario minimal = WithMinimalVocabulary(shrunk);
  if (minimal.vocabulary.num_predicates() !=
          shrunk.vocabulary.num_predicates() ||
      minimal.vocabulary.num_functions() !=
          shrunk.vocabulary.num_functions()) {
    ++state.evaluations;
    if (still_fails(minimal)) shrunk = std::move(minimal);
  }

  outcome.scenario = std::move(shrunk);
  outcome.evaluations = state.evaluations;
  outcome.kb_conjuncts =
      static_cast<int>(logic::Conjuncts(outcome.scenario.kb).size());
  return outcome;
}

}  // namespace rwl::testing
