#include "src/testing/scenario.h"

#include <sstream>

#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"

namespace rwl::testing {

bool ScenarioFromTexts(const std::string& kb_text,
                       const std::vector<std::string>& query_texts,
                       Scenario* out, std::string* error) {
  logic::ParseResult kb = logic::ParseKnowledgeBase(kb_text);
  if (!kb.ok()) {
    if (error != nullptr) *error = "KB: " + kb.error;
    return false;
  }
  Scenario scenario;
  scenario.kb = kb.formula;
  logic::RegisterSymbols(scenario.kb, &scenario.vocabulary);
  for (const std::string& text : query_texts) {
    logic::ParseResult query = logic::ParseFormula(text);
    if (!query.ok()) {
      if (error != nullptr) *error = "query '" + text + "': " + query.error;
      return false;
    }
    logic::RegisterSymbols(query.formula, &scenario.vocabulary);
    scenario.queries.push_back(query.formula);
  }
  *out = std::move(scenario);
  return true;
}

KnowledgeBase ToKnowledgeBase(const Scenario& scenario) {
  KnowledgeBase kb;
  for (const auto& predicate : scenario.vocabulary.predicates()) {
    kb.mutable_vocabulary().AddPredicate(predicate.name, predicate.arity);
  }
  for (const auto& function : scenario.vocabulary.functions()) {
    kb.mutable_vocabulary().AddFunction(function.name, function.arity);
  }
  for (const auto& conjunct : logic::Conjuncts(scenario.kb)) {
    kb.Add(conjunct);
  }
  return kb;
}

Scenario WithMinimalVocabulary(const Scenario& scenario) {
  Scenario minimal = scenario;
  minimal.vocabulary = logic::Vocabulary();
  logic::RegisterSymbols(scenario.kb, &minimal.vocabulary);
  for (const auto& query : scenario.queries) {
    logic::RegisterSymbols(query, &minimal.vocabulary);
  }
  return minimal;
}

std::string Describe(const Scenario& scenario) {
  std::ostringstream out;
  for (const auto& predicate : scenario.vocabulary.predicates()) {
    out << "predicate " << predicate.name << "/" << predicate.arity << "\n";
  }
  for (const auto& function : scenario.vocabulary.functions()) {
    out << (function.arity == 0 ? "constant " : "function ")
        << function.name;
    if (function.arity != 0) out << "/" << function.arity;
    out << "\n";
  }
  for (const auto& conjunct : logic::Conjuncts(scenario.kb)) {
    out << "kb: " << logic::ToString(conjunct) << "\n";
  }
  for (const auto& query : scenario.queries) {
    out << "query: " << logic::ToString(query) << "\n";
  }
  return out.str();
}

}  // namespace rwl::testing
