// A deliberately broken FiniteEngine decorator, used to validate that the
// differential harness actually catches and shrinks engine bugs (the
// fuzzer's --self-test and tests/differential_test.cc).
//
// The decorator delegates everything to the wrapped engine but skews the
// probability whenever the query contains a disjunction — a predicate the
// shrinker cannot remove without losing the failure, so minimized
// reproducers keep exactly one small Or-query.  The skew (+0.05, mirrored
// near 1) has no fixed point in [0, 1], so every triggered result really
// changes.
#ifndef RWL_TESTING_BUGGY_ENGINE_H_
#define RWL_TESTING_BUGGY_ENGINE_H_

#include <string>

#include "src/engines/engine.h"

namespace rwl::testing {

// True when the formula tree contains a kOr node.
bool ContainsOr(const logic::FormulaPtr& f);

class SkewOnOrEngine : public engines::FiniteEngine {
 public:
  // Does not own `inner`; the caller keeps it alive.
  explicit SkewOnOrEngine(const engines::FiniteEngine* inner)
      : inner_(inner) {}

  std::string name() const override { return inner_->name() + "+skew"; }

  using engines::FiniteEngine::DegreeAt;
  using engines::FiniteEngine::Supports;

  bool Supports(const logic::Vocabulary& vocabulary,
                const logic::FormulaPtr& kb, const logic::FormulaPtr& query,
                int domain_size) const override {
    return inner_->Supports(vocabulary, kb, query, domain_size);
  }

  engines::FiniteResult DegreeAt(
      const logic::Vocabulary& vocabulary, const logic::FormulaPtr& kb,
      const logic::FormulaPtr& query, int domain_size,
      const semantics::ToleranceVector& tolerances) const override {
    engines::FiniteResult result =
        inner_->DegreeAt(vocabulary, kb, query, domain_size, tolerances);
    if (result.well_defined && !result.exhausted && ContainsOr(query)) {
      result.probability = result.probability <= 0.9
                               ? result.probability + 0.05
                               : result.probability - 0.05;
    }
    return result;
  }

  std::string CacheSalt() const override {
    return inner_->CacheSalt() + ";skew-on-or";
  }

  engines::ResultClass result_class() const override {
    return inner_->result_class();
  }

 private:
  const engines::FiniteEngine* inner_;
};

}  // namespace rwl::testing

#endif  // RWL_TESTING_BUGGY_ENGINE_H_
