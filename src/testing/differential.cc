#include "src/testing/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <sstream>

#include "src/core/planner.h"
#include "src/core/query_context.h"
#include "src/defaults/fragment.h"
#include "src/engines/exact_engine.h"
#include "src/evidence/combination.h"
#include "src/service/catalog.h"
#include "src/service/replica.h"
#include "src/service/wal.h"
#include "src/engines/maxent_engine.h"
#include "src/engines/montecarlo_engine.h"
#include "src/engines/profile_engine.h"
#include "src/logic/printer.h"
#include "src/logic/transform.h"
#include "src/semantics/compile.h"
#include "src/semantics/evaluator.h"
#include "src/semantics/vm.h"

namespace rwl::testing {
namespace {

using engines::FiniteEngine;
using engines::FiniteResult;

// Bit-level equality: the context path (memo / record-replay) is required
// to reproduce the direct computation exactly, not just approximately.
bool BitIdentical(const FiniteResult& a, const FiniteResult& b) {
  return a.well_defined == b.well_defined && a.exhausted == b.exhausted &&
         a.probability == b.probability &&
         a.log_numerator == b.log_numerator &&
         a.log_denominator == b.log_denominator;
}

std::string AnswerToString(const Answer& answer) {
  std::ostringstream out;
  out << StatusToString(answer.status);
  if (answer.status == Answer::Status::kPoint) {
    out << " " << answer.value;
  } else if (answer.status == Answer::Status::kInterval) {
    out << " [" << answer.lo << ", " << answer.hi << "]";
  }
  out << (answer.converged ? " (converged" : " (not converged");
  if (!answer.method.empty()) out << "; " << answer.method;
  out << ")";
  return out.str();
}

// Limit-level, tolerance-aware comparison of two pipeline answers for the
// same query.  kUnknown and kNonexistent are uninformative for a numeric
// cross-check (the sweep sees only a finite prefix of the limit), so those
// pairs are skipped.  Returns false with an explanation on disagreement;
// *compared reports whether the pair carried information.
bool PipelineAnswersAgree(const Answer& a, const Answer& b, double epsilon,
                          bool* compared, std::string* why) {
  *compared = false;
  auto skip = [&] { return true; };
  if (a.status == Answer::Status::kUnknown ||
      b.status == Answer::Status::kUnknown ||
      a.status == Answer::Status::kNonexistent ||
      b.status == Answer::Status::kNonexistent) {
    return skip();
  }
  auto fail = [&](const std::string& message) {
    *compared = true;
    if (why != nullptr) {
      *why = message + "  [" + AnswerToString(a) + " vs " +
             AnswerToString(b) + "]";
    }
    return false;
  };
  if (a.status == Answer::Status::kUndefined ||
      b.status == Answer::Status::kUndefined) {
    if (a.status == b.status) {
      *compared = true;
      return true;
    }
    // Mismatched undefinedness here always means a symbolic theorem
    // finalized while the numeric sweep saw no worlds in its finite
    // prefix (both pipelines share the numeric strategies, options and
    // caches).  Eventual consistency is exactly what a finite prefix
    // cannot decide, so this is uninformative, not a disagreement.
    return skip();
  }
  // Point / interval cases.  Unconverged numeric points are estimates
  // without error bars; skip them.
  if (!a.converged || !b.converged) return skip();
  double a_lo = a.status == Answer::Status::kPoint ? a.value : a.lo;
  double a_hi = a.status == Answer::Status::kPoint ? a.value : a.hi;
  double b_lo = b.status == Answer::Status::kPoint ? b.value : b.lo;
  double b_hi = b.status == Answer::Status::kPoint ? b.value : b.hi;
  if (a_lo - epsilon > b_hi || b_lo - epsilon > a_hi) {
    return fail("answers do not overlap within epsilon " +
                std::to_string(epsilon));
  }
  *compared = true;
  return true;
}

// Limit-level equivalence of two planner/forced-strategy answers, routed
// through the engines' ResultsEquivalent hook so statistical strategies
// get a sampling-error allowance.  Status handling (skips for unknown /
// nonexistent / unconverged answers, undefinedness pairing) mirrors
// PipelineAnswersAgree; interval answers compare by overlap.
bool PlannerAnswersAgree(const Answer& a, engines::ResultClass class_a,
                         const Answer& b, engines::ResultClass class_b,
                         double epsilon, bool* compared, std::string* why) {
  *compared = false;
  if (a.status == Answer::Status::kUnknown ||
      b.status == Answer::Status::kUnknown ||
      a.status == Answer::Status::kNonexistent ||
      b.status == Answer::Status::kNonexistent) {
    return true;
  }
  if (a.status == Answer::Status::kUndefined ||
      b.status == Answer::Status::kUndefined) {
    if (a.status == b.status) {
      *compared = true;
      return true;
    }
    // A symbolic theorem can finalize where a numeric strategy's finite
    // prefix sees no worlds; uninformative (as in the pipeline check).
    return true;
  }
  if (!a.converged || !b.converged) return true;
  if (a.status == Answer::Status::kInterval ||
      b.status == Answer::Status::kInterval) {
    double a_lo = a.status == Answer::Status::kPoint ? a.value : a.lo;
    double a_hi = a.status == Answer::Status::kPoint ? a.value : a.hi;
    double b_lo = b.status == Answer::Status::kPoint ? b.value : b.lo;
    double b_hi = b.status == Answer::Status::kPoint ? b.value : b.hi;
    *compared = true;
    if (a_lo - epsilon > b_hi || b_lo - epsilon > a_hi) {
      if (why != nullptr) {
        *why = "intervals do not overlap within epsilon " +
               std::to_string(epsilon) + "  [" + AnswerToString(a) +
               " vs " + AnswerToString(b) + "]";
      }
      return false;
    }
    return true;
  }
  // Point vs point: ResultsEquivalent with a limit-level tolerance — the
  // epsilon absorbs finite-prefix extrapolation bias, and statistical
  // sides get the same epsilon again as their sampling floor.
  engines::FiniteResult fa;
  fa.well_defined = true;
  fa.probability = a.value;
  engines::FiniteResult fb;
  fb.well_defined = true;
  fb.probability = b.value;
  engines::ResultTolerance tolerance;
  tolerance.deterministic_epsilon = epsilon;
  tolerance.statistical_z = 0.0;
  tolerance.statistical_floor = epsilon;
  *compared = true;
  return engines::ResultsEquivalent(fa, class_a, fb, class_b, tolerance,
                                    why);
}

// A planner answer produced by the Monte-Carlo sweep carries sampling
// error; everything else is deterministic.
engines::ResultClass AnswerClass(const Answer& answer) {
  return answer.method.find("montecarlo") != std::string::npos
             ? engines::ResultClass::kStatistical
             : engines::ResultClass::kDeterministic;
}

// Exact equality of the documented batch invariant: every batch answer
// equals the sequential DegreeOfBelief call bit for bit.
bool SameAnswer(const Answer& a, const Answer& b, std::string* why) {
  if (a.status != b.status || a.value != b.value || a.lo != b.lo ||
      a.hi != b.hi || a.method != b.method || a.converged != b.converged) {
    if (why != nullptr) {
      *why = "batch answer diverged  [" + AnswerToString(a) + " vs " +
             AnswerToString(b) + "]";
    }
    return false;
  }
  return true;
}

// vm-vs-interp: the compiled VM must reproduce the tree-walking oracle bit
// for bit on every formula over pseudo-random worlds.  World seeds derive
// from the (formula position, N) pair alone, so a replay of the same case
// file exercises the same worlds.
void RunVmCheck(const Scenario& scenario, const DifferentialOptions& options,
                DifferentialReport* report) {
  std::vector<logic::FormulaPtr> formulas;
  formulas.push_back(scenario.kb);
  for (const auto& query : scenario.queries) formulas.push_back(query);

  for (size_t fi = 0; fi < formulas.size(); ++fi) {
    const logic::FormulaPtr& f = formulas[fi];
    semantics::CompiledFormula compiled =
        semantics::CompileFormula(f, scenario.vocabulary);
    if (!compiled.ok()) {
      report->disagreements.push_back(
          Disagreement{"vm", "compiler", "tree-walker", f, 0,
                       "compile failed: " + compiled.error});
      continue;
    }
    std::vector<int> domain_sizes = options.domain_sizes;
    if (scenario.vocabulary.IsUnaryRelational()) {
      // Word-boundary sizes exercise the packed columns' tail masks; the
      // tree-walker stays affordable on unary vocabularies.
      domain_sizes.insert(domain_sizes.end(),
                          options.vm_extra_domain_sizes.begin(),
                          options.vm_extra_domain_sizes.end());
    }
    for (int n : domain_sizes) {
      if (n <= 0) continue;
      std::mt19937_64 rng(0x5eed0000ull + static_cast<uint64_t>(n) * 1009 +
                          fi);
      semantics::World world(&scenario.vocabulary, n);
      semantics::EvalFrame frame;
      frame.Prepare(*compiled.program, options.tolerances);
      ++report->comparisons;
      for (int w = 0; w < options.vm_worlds; ++w) {
        // Per-cell draws (NOT word-wise) keep the RNG stream — and hence
        // the replayed corpus worlds — identical to the byte-table era.
        for (int p = 0; p < scenario.vocabulary.num_predicates(); ++p) {
          if (world.predicate_arity(p) == 1) {
            for (int d = 0; d < n; ++d) {
              world.SetUnaryBit(p, d, (rng() & 1) != 0);
            }
            continue;
          }
          for (auto& cell : world.predicate_table(p)) {
            cell = static_cast<uint8_t>(rng() & 1);
          }
        }
        std::uniform_int_distribution<int> element(0, n - 1);
        for (int fn = 0; fn < scenario.vocabulary.num_functions(); ++fn) {
          for (auto& cell : world.function_table(fn)) cell = element(rng);
        }
        const bool walked =
            semantics::Evaluate(f, world, options.tolerances);
        const bool compiled_result =
            semantics::RunProgram(*compiled.program, world, &frame);
        if (walked != compiled_result) {
          report->disagreements.push_back(Disagreement{
              "vm", "compiled-vm", "tree-walker", f, n,
              std::string("evaluations differ on world ") +
                  std::to_string(w) + ": vm=" +
                  (compiled_result ? "true" : "false") + " interp=" +
                  (walked ? "true" : "false")});
          break;
        }
      }
    }
  }
}

// service: incremental maintenance vs rebuild-from-scratch.
//
// Loads the scenario KB into a service catalog, applies a deterministic
// pseudo-random mutation sequence (retract a conjunct / re-assert a
// retracted one / assert a vocabulary-extending fresh fact), then checks
// that the incrementally-maintained head — whose QueryContext was seeded
// by AdoptCachesFrom across every version — answers each query
// BIT-IDENTICALLY to a KnowledgeBase rebuilt from scratch with the same
// conjuncts and vocabulary.  A version pinned mid-sequence is checked the
// same way: its caches must not have leaked entries from any other
// version.  The mutation RNG seeds from the scenario text, so a corpus
// replay exercises the same sequence forever.
void RunServiceCheck(const Scenario& scenario,
                     const DifferentialOptions& options,
                     DifferentialReport* report) {
  if (options.service_mutations <= 0) return;

  KnowledgeBase base = ToKnowledgeBase(scenario);
  service::KbCatalog catalog;
  catalog.Load("diff", base);

  InferenceOptions inference;
  inference.tolerances = options.tolerances;
  inference.limit.domain_sizes = options.service_domain_sizes;
  inference.limit.tolerance_scales = options.pipeline_tolerance_scales;

  // Scenario-text seed: stable across processes (formula ids are not).
  std::string text = Describe(scenario);
  std::mt19937_64 rng(std::hash<std::string>{}(text));

  std::vector<logic::FormulaPtr> retracted;
  std::shared_ptr<const service::KbSnapshot> pinned;
  bool asserted_fresh = false;
  for (int step = 0; step < options.service_mutations; ++step) {
    std::shared_ptr<const service::KbSnapshot> head = catalog.Get("diff");
    const size_t num_conjuncts = head->kb.conjuncts().size();
    // Op choice: retract when possible, re-assert when possible, and one
    // vocabulary-extending fresh fact per sequence.
    int op = static_cast<int>(rng() % 3);
    if (op == 0 && num_conjuncts == 0) op = 1;
    if (op == 1 && retracted.empty()) op = 2;
    if (op == 2 && asserted_fresh) op = num_conjuncts > 0 ? 0 : 1;

    if (op == 0 && num_conjuncts > 0) {
      const size_t victim = rng() % num_conjuncts;
      logic::FormulaPtr formula = head->kb.conjuncts()[victim];
      catalog.Mutate(
          "diff", [&](KnowledgeBase* kb, std::string*) {
            // The service's RETRACT semantics (vocabulary preserved),
            // through the same shared helper KbService::Retract uses.
            service::RetractConjuncts(
                kb, [&](size_t i, const logic::FormulaPtr&) {
                  return i == victim;
                });
            return true;
          });
      retracted.push_back(formula);
    } else if (op == 1 && !retracted.empty()) {
      const size_t index = rng() % retracted.size();
      logic::FormulaPtr formula = retracted[index];
      retracted.erase(retracted.begin() + static_cast<long>(index));
      catalog.Mutate(
          "diff", [&](KnowledgeBase* kb, std::string*) {
            kb->Add(formula);
            return true;
          });
    } else if (op == 2 && !asserted_fresh) {
      // A fact about a fresh CONSTANT over an existing unary predicate:
      // the successor vocabulary fingerprint changes, so compiled
      // programs must not be adopted across this step.  (A fresh
      // predicate would double the profile engine's atom classes and
      // blow up the from-scratch rebuilds; a constant grows placements
      // linearly.)  Scenarios with no unary predicate skip the op.
      asserted_fresh = true;
      std::string unary;
      for (const auto& predicate : head->kb.vocabulary().predicates()) {
        if (predicate.arity == 1) {
          unary = predicate.name;
          break;
        }
      }
      if (!unary.empty()) {
        catalog.Mutate(
            "diff", [&](KnowledgeBase* kb, std::string* edit_error) {
              return kb->AddParsed(unary + "(ZzSvcC)", edit_error);
            });
      }
    }
    if (step == 0) pinned = catalog.Get("diff");
  }

  auto compare_snapshot = [&](const service::KbSnapshot& snapshot,
                              const std::string& label) {
    // Rebuild from scratch: same conjuncts, same vocabulary (same symbol
    // ids), fresh caches.
    KnowledgeBase scratch;
    scratch.mutable_vocabulary() = snapshot.kb.vocabulary();
    for (const auto& conjunct : snapshot.kb.conjuncts()) {
      scratch.Add(conjunct);
    }
    // Bounded like the planner check: each query pays two full cold
    // pipelines per compared snapshot.
    const size_t num_queries = std::min<size_t>(scenario.queries.size(), 2);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const logic::FormulaPtr& query = scenario.queries[qi];
      Answer incremental =
          service::AnswerOnSnapshot(snapshot, query, inference);
      Answer rebuilt = DegreeOfBelief(scratch, query, inference);
      ++report->comparisons;
      std::string why;
      if (!SameAnswer(incremental, rebuilt, &why)) {
        report->disagreements.push_back(Disagreement{
            "service", label, "rebuilt-from-scratch", query, 0, why});
      }
    }
  };

  std::shared_ptr<const service::KbSnapshot> head = catalog.Get("diff");
  compare_snapshot(*head, "incremental-head@v" +
                              std::to_string(head->version));
  if (pinned != nullptr && pinned->version != head->version) {
    compare_snapshot(*pinned, "incremental-pinned@v" +
                                  std::to_string(pinned->version));
  }

  // Async publication window: with background maintenance on and the
  // worker paused, an acked signature-preserving append must leave
  // readers on the OLD published head — still bit-identical to that KB's
  // from-scratch rebuild — and the successor, once published, must be
  // bit-identical to the new KB's rebuild (its caches were adopted AND
  // delta-patched off the request path).
  if (!base.conjuncts().empty()) {
    service::CatalogOptions async_options;
    async_options.background_maintenance = true;
    service::KbCatalog async_catalog(async_options);
    async_catalog.Load("diff", base);
    async_catalog.PauseMaintenance();
    std::shared_ptr<const service::KbSnapshot> loaded =
        async_catalog.Get("diff");
    service::MutationTicket ticket = async_catalog.Mutate(
        "diff", [&](KnowledgeBase* kb, std::string*) {
          kb->Add(base.conjuncts()[0]);  // signature-preserving append
          return true;
        });
    std::shared_ptr<const service::KbSnapshot> during =
        async_catalog.Get("diff");
    if (!ticket.ok || during->version != loaded->version) {
      report->disagreements.push_back(Disagreement{
          "service", "async-window", "published-head", nullptr, 0,
          "acked mutation visible before the maintenance worker published "
          "it (or ack failed)"});
    } else {
      compare_snapshot(*during, "async-window@v" +
                                    std::to_string(during->version));
    }
    async_catalog.ResumeMaintenance();
    async_catalog.WaitForVersion("diff", ticket.version);
    std::shared_ptr<const service::KbSnapshot> published =
        async_catalog.Get("diff");
    compare_snapshot(*published, "async-published@v" +
                                     std::to_string(published->version));
  }
}

// replica: log-shipping bit-identity.
//
// Ships a deterministic mutation sequence through the real replication
// pipeline in-process: every mutation is a WAL record applied to the
// PRIMARY catalog via ApplyWalRecord (the routing crash recovery and a
// live replica share), published to a ReplicationHub from where the
// record's version is known, consumed off the subscription queue, and
// applied to a REPLICA catalog by ReplicaApplier — after a SNAPSHOT
// bootstrap record exactly like rwld's TAIL handshake.  The replica head
// must answer every query BIT-IDENTICALLY to the primary head, and the
// primary->local version-vector handoff must map a version pinned
// mid-sequence to a replica snapshot that answers bit-identically to the
// primary's pin of the same primary version.  The record texts round-trip
// through the NDJSON encoding (encode -> line -> decode), so this also
// pins the wire format against semantic drift.
void RunReplicaCheck(const Scenario& scenario,
                     const DifferentialOptions& options,
                     DifferentialReport* report) {
  if (options.service_mutations <= 0) return;

  KnowledgeBase base = ToKnowledgeBase(scenario);
  service::KbCatalog primary;
  primary.Load("diff", base);

  service::ReplicationHub hub;
  service::KbCatalog replica_kbs;
  service::ReplicaApplier applier(&replica_kbs);
  std::shared_ptr<service::ReplicationSubscription> sub = hub.Subscribe();

  auto fail = [&](const std::string& stage, const std::string& why) {
    report->disagreements.push_back(
        Disagreement{"replica", stage, "primary", nullptr, 0, why});
  };

  // TAIL bootstrap: one SNAPSHOT record serialized from the primary head.
  {
    std::shared_ptr<const service::KbSnapshot> head = primary.Get("diff");
    std::string line = service::EncodeWalRecord(
        service::MakeSnapshotRecord("diff", head->version, head->kb));
    std::string apply_error;
    if (!applier.ApplyLine(line, &apply_error)) {
      fail("bootstrap", "snapshot record rejected: " + apply_error);
      return;
    }
  }

  // One mutation = one record: apply to the primary, stamp the
  // primary-assigned version, publish, pop off the subscription, apply to
  // the replica.  Same op mix as RunServiceCheck, but expressed as record
  // text (the only form replication can carry).
  std::string text = Describe(scenario);
  // Distinct stream from RunServiceCheck's so the two checks exercise
  // different sequences over the same scenario.
  std::mt19937_64 rng(std::hash<std::string>{}(text) ^ 0x5E971CA5ull);
  std::vector<std::string> retracted;
  uint64_t pinned_primary_version = 0;
  std::shared_ptr<const service::KbSnapshot> pinned_primary;
  std::shared_ptr<const service::KbSnapshot> pinned_replica;
  bool asserted_fresh = false;
  for (int step = 0; step < options.service_mutations; ++step) {
    std::shared_ptr<const service::KbSnapshot> head = primary.Get("diff");
    const size_t num_conjuncts = head->kb.conjuncts().size();
    int op = static_cast<int>(rng() % 3);
    if (op == 0 && num_conjuncts == 0) op = 1;
    if (op == 1 && retracted.empty()) op = 2;
    if (op == 2 && asserted_fresh) op = num_conjuncts > 0 ? 0 : 1;

    service::WalRecord record;
    record.kb = "diff";
    if (op == 0 && num_conjuncts > 0) {
      const size_t victim = rng() % num_conjuncts;
      record.op = service::WalRecord::Op::kRetract;
      record.text = logic::ToString(head->kb.conjuncts()[victim]);
      retracted.push_back(record.text);
    } else if (op == 1 && !retracted.empty()) {
      const size_t index = rng() % retracted.size();
      record.op = service::WalRecord::Op::kAssert;
      record.text = retracted[index];
      retracted.erase(retracted.begin() + static_cast<long>(index));
    } else {
      asserted_fresh = true;
      std::string unary;
      for (const auto& predicate : head->kb.vocabulary().predicates()) {
        if (predicate.arity == 1) {
          unary = predicate.name;
          break;
        }
      }
      if (unary.empty()) continue;  // no unary predicate: skip the op
      record.op = service::WalRecord::Op::kAssert;
      record.text = unary + "(ZzRepC)";
    }

    uint64_t primary_version = 0;
    std::string apply_error;
    if (!service::ApplyWalRecord(&primary, record, &primary_version,
                                 &apply_error)) {
      fail("primary-apply", "record {" + service::EncodeWalRecord(record) +
                                "} failed: " + apply_error);
      return;
    }
    record.version = primary_version;
    hub.Publish(service::EncodeWalRecord(record));

    std::string line;
    if (!sub->Next(&line, /*timeout_ms=*/1000.0)) {
      fail("ship", "published record never reached the subscription");
      return;
    }
    if (!applier.ApplyLine(line, &apply_error)) {
      fail("replica-apply", "shipped record {" + line +
                                "} rejected: " + apply_error);
      return;
    }

    if (step == 0) {
      // Version-vector handoff for the mid-sequence pin: a client that
      // acked `primary_version` pins the replica's mapped local version.
      pinned_primary_version = primary_version;
      pinned_primary = primary.Get("diff");
      uint64_t local_version = 0;
      if (!applier.WaitForPrimaryVersion("diff", primary_version,
                                         /*timeout_ms=*/1000.0,
                                         &local_version)) {
        fail("handoff", "WaitForPrimaryVersion timed out for an already "
                        "applied version");
        return;
      }
      pinned_replica = replica_kbs.GetVersion("diff", local_version);
    }
  }

  InferenceOptions inference;
  inference.tolerances = options.tolerances;
  inference.limit.domain_sizes = options.service_domain_sizes;
  inference.limit.tolerance_scales = options.pipeline_tolerance_scales;

  auto compare_pair = [&](const service::KbSnapshot& primary_snapshot,
                          const service::KbSnapshot& replica_snapshot,
                          const std::string& label) {
    const size_t num_queries = std::min<size_t>(scenario.queries.size(), 2);
    for (size_t qi = 0; qi < num_queries; ++qi) {
      const logic::FormulaPtr& query = scenario.queries[qi];
      Answer on_primary =
          service::AnswerOnSnapshot(primary_snapshot, query, inference);
      Answer on_replica =
          service::AnswerOnSnapshot(replica_snapshot, query, inference);
      ++report->comparisons;
      std::string why;
      if (!SameAnswer(on_primary, on_replica, &why)) {
        report->disagreements.push_back(Disagreement{
            "replica", label, "primary@v" +
                std::to_string(primary_snapshot.version), query, 0, why});
      }
    }
  };

  std::shared_ptr<const service::KbSnapshot> primary_head =
      primary.Get("diff");
  std::shared_ptr<const service::KbSnapshot> replica_head =
      replica_kbs.Get("diff");
  if (replica_head == nullptr) {
    fail("head", "replica catalog has no head after the sequence");
    return;
  }
  compare_pair(*primary_head, *replica_head,
               "replica-head@v" + std::to_string(replica_head->version));
  if (pinned_primary != nullptr && pinned_replica != nullptr &&
      pinned_primary_version != primary_head->version) {
    compare_pair(*pinned_primary, *pinned_replica,
                 "replica-pinned@primary-v" +
                     std::to_string(pinned_primary_version));
  }
}

// defaults: the defaults family against itself and the planner.
//
// Self-gating on the propositional-defaults fragment (the same analyzer
// the strategies' Capability hooks use, at the loosest caps in the
// family).  Three relations are pinned:
//
//   1. epsilon_semantics == klm exactly when both answer: the greedy
//      tolerance peel and the subset enumeration decide the same
//      p-entailment relation, so two points for the same query must be
//      identical (0/1 values — any mismatch is an implementation bug,
//      not numerics);
//   2. epsilon_semantics == gmp90 exactly when both answer: a p-entailed
//      conclusion is ME-plausible (conservativity), so gmp90 must land on
//      the same 0/1 point;
//   3. every defaults point agrees with the planner's own (numeric)
//      answer within defaults_epsilon when the numeric side converged —
//      the finite sweep approaches the 0/1 limit slowly, hence the loose
//      epsilon.
void RunDefaultsCheck(const Scenario& scenario,
                      const DifferentialOptions& options,
                      DifferentialReport* report) {
  std::vector<logic::FormulaPtr> conjuncts = logic::Conjuncts(scenario.kb);
  KnowledgeBase kb = ToKnowledgeBase(scenario);

  InferenceOptions base;
  base.tolerances = options.tolerances;
  base.limit.domain_sizes = options.pipeline_domain_sizes;
  base.limit.tolerance_scales = options.pipeline_tolerance_scales;
  base.work_budget = 3e7;

  const size_t num_queries = std::min<size_t>(scenario.queries.size(), 2);
  static const char* kDefaultsFamily[] = {"epsilon_semantics", "klm",
                                          "gmp90"};
  for (size_t qi = 0; qi < num_queries; ++qi) {
    const logic::FormulaPtr& query = scenario.queries[qi];
    defaults::DefaultsInstance instance =
        defaults::AnalyzeDefaultsInstance(conjuncts, query);
    if (!instance.ok) continue;  // outside the fragment: one analyzer call

    struct Forced {
      const char* name;
      Answer answer;
    };
    std::vector<Forced> points;
    for (const char* name : kDefaultsFamily) {
      InferenceOptions forced = base;
      forced.force_engine = name;
      Answer answer = DegreeOfBelief(kb, query, forced);
      if (answer.status == Answer::Status::kPoint) {
        points.push_back(Forced{name, answer});
      }
    }
    // Pairwise exactness inside the family (relations 1 and 2).
    for (size_t i = 0; i < points.size(); ++i) {
      for (size_t j = i + 1; j < points.size(); ++j) {
        ++report->comparisons;
        if (points[i].answer.value != points[j].answer.value) {
          report->disagreements.push_back(Disagreement{
              "defaults", std::string("forced:") + points[i].name,
              std::string("forced:") + points[j].name, query, 0,
              "defaults-family points differ  [" +
                  AnswerToString(points[i].answer) + " vs " +
                  AnswerToString(points[j].answer) + "]"});
        }
      }
    }
    if (points.empty()) continue;
    // Relation 3: the planner's own answer.
    Answer planned = DegreeOfBelief(kb, query, base);
    for (const Forced& point : points) {
      bool compared = false;
      std::string why;
      if (!PlannerAnswersAgree(planned, AnswerClass(planned), point.answer,
                               engines::ResultClass::kDeterministic,
                               options.defaults_epsilon, &compared, &why)) {
        report->disagreements.push_back(
            Disagreement{"defaults", "planner",
                         std::string("forced:") + point.name, query, 0,
                         why});
      }
      if (compared) ++report->comparisons;
    }
  }
}

// evidence: Dempster combination against the symbolic engine's
// independent matcher, and against the planner.
//
// Self-gating on the Theorem 5.26 shape.  The evidence strategy and the
// symbolic TryDempster recognize the same fragment through two separate
// analyzers and compute the same closed form through two separate code
// paths — their points must match to 1e-9 and their nonexistence verdicts
// (conflicting hard defaults of differing strengths) must pair up.
void RunEvidenceCheck(const Scenario& scenario,
                      const DifferentialOptions& options,
                      DifferentialReport* report) {
  std::vector<logic::FormulaPtr> conjuncts = logic::Conjuncts(scenario.kb);
  KnowledgeBase kb = ToKnowledgeBase(scenario);

  InferenceOptions base;
  base.tolerances = options.tolerances;
  base.limit.domain_sizes = options.pipeline_domain_sizes;
  base.limit.tolerance_scales = options.pipeline_tolerance_scales;
  base.work_budget = 3e7;

  const size_t num_queries = std::min<size_t>(scenario.queries.size(), 2);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    const logic::FormulaPtr& query = scenario.queries[qi];
    evidence::EvidenceInstance instance =
        evidence::AnalyzeEvidenceInstance(conjuncts, query);
    if (!instance.ok) continue;

    InferenceOptions forced_evidence = base;
    forced_evidence.force_engine = "evidence";
    Answer combined = DegreeOfBelief(kb, query, forced_evidence);
    if (combined.status == Answer::Status::kUnknown) continue;

    InferenceOptions forced_symbolic = base;
    forced_symbolic.force_engine = "symbolic";
    Answer symbolic = DegreeOfBelief(kb, query, forced_symbolic);
    if (symbolic.status != Answer::Status::kUnknown) {
      ++report->comparisons;
      const bool both_nonexistent =
          combined.status == Answer::Status::kNonexistent &&
          symbolic.status == Answer::Status::kNonexistent;
      const bool both_points =
          combined.status == Answer::Status::kPoint &&
          symbolic.status == Answer::Status::kPoint &&
          std::fabs(combined.value - symbolic.value) <= 1e-9;
      if (!both_nonexistent && !both_points) {
        report->disagreements.push_back(Disagreement{
            "evidence", "forced:evidence", "forced:symbolic", query, 0,
            "Dempster closed forms diverge  [" + AnswerToString(combined) +
                " vs " + AnswerToString(symbolic) + "]"});
      }
    }

    Answer planned = DegreeOfBelief(kb, query, base);
    bool compared = false;
    std::string why;
    if (!PlannerAnswersAgree(planned, AnswerClass(planned), combined,
                             engines::ResultClass::kDeterministic,
                             options.defaults_epsilon, &compared, &why)) {
      report->disagreements.push_back(Disagreement{
          "evidence", "planner", "forced:evidence", query, 0, why});
    }
    if (compared) ++report->comparisons;
  }
}

// coverage: the calibrated-interval guarantee against ground truth.
//
// Answers the first queries with interval_confidence = coverage_confidence
// (routing through the preemptive calibrated strategy), then replays the
// SAME sweep schedule — the (domain_size, tolerance_scale) grid of the
// answer's own series — on the exact enumeration engine and scores the
// fraction of well-defined ground-truth values inside the interval.  A
// calibrated answer whose ground-truth coverage falls below
// confidence - tolerance is a disagreement.
void RunCoverageCheck(const Scenario& scenario,
                      const DifferentialOptions& options,
                      DifferentialReport* report) {
  KnowledgeBase kb = ToKnowledgeBase(scenario);
  QueryContext ctx(scenario.vocabulary, scenario.kb,
                   /*caching_enabled=*/true);
  engines::ExactEngine exact;

  InferenceOptions calibrated;
  calibrated.tolerances = options.tolerances;
  calibrated.limit.domain_sizes = options.pipeline_domain_sizes;
  calibrated.limit.tolerance_scales = options.pipeline_tolerance_scales;
  calibrated.interval_confidence = options.coverage_confidence;
  calibrated.work_budget = 3e7;

  const size_t num_queries = std::min<size_t>(scenario.queries.size(), 2);
  for (size_t qi = 0; qi < num_queries; ++qi) {
    const logic::FormulaPtr& query = scenario.queries[qi];
    Answer answer = DegreeOfBelief(kb, query, calibrated);
    if (answer.status != Answer::Status::kInterval ||
        answer.series.empty()) {
      // The calibrated strategy bowed out (no numeric engine, or no
      // well-defined sweep values) — nothing to verify.
      continue;
    }

    // Ground truth over the answer's own schedule.
    engines::LimitOptions schedule;
    schedule.domain_sizes.clear();
    for (const engines::SeriesPoint& point : answer.series) {
      if (std::find(schedule.domain_sizes.begin(),
                    schedule.domain_sizes.end(),
                    point.domain_size) == schedule.domain_sizes.end()) {
        schedule.domain_sizes.push_back(point.domain_size);
      }
    }
    schedule.tolerance_scales = calibrated.limit.tolerance_scales;
    engines::LimitResult truth = engines::EstimateLimit(
        exact, ctx, query, options.tolerances, schedule);

    // Score only the grid points the enumeration engine actually reached
    // (it may not support the sweep's largest N).
    std::vector<engines::SeriesPoint> matched;
    for (const engines::SeriesPoint& gt : truth.series) {
      for (const engines::SeriesPoint& swept : answer.series) {
        if (gt.domain_size == swept.domain_size &&
            gt.tolerance_scale == swept.tolerance_scale) {
          matched.push_back(gt);
          break;
        }
      }
    }
    bool any_defined = false;
    for (const engines::SeriesPoint& point : matched) {
      any_defined = any_defined || point.well_defined;
    }
    if (!any_defined) continue;

    ++report->comparisons;
    const double coverage = EmpiricalCoverage(matched, answer.lo,
                                              answer.hi);
    const double required =
        options.coverage_confidence - options.coverage_tolerance;
    if (coverage < required) {
      char detail[200];
      std::snprintf(detail, sizeof(detail),
                    "empirical coverage %.3f < required %.3f over %zu "
                    "ground-truth points  [interval [%g, %g]]",
                    coverage, required, matched.size(), answer.lo,
                    answer.hi);
      report->disagreements.push_back(Disagreement{
          "coverage", "calibrated interval", "exact enumeration", query, 0,
          detail});
    }
  }
}

}  // namespace

double EmpiricalCoverage(const std::vector<engines::SeriesPoint>& series,
                         double lo, double hi) {
  size_t defined = 0;
  size_t covered = 0;
  for (const engines::SeriesPoint& point : series) {
    if (!point.well_defined) continue;
    ++defined;
    if (point.probability >= lo - 1e-9 && point.probability <= hi + 1e-9) {
      ++covered;
    }
  }
  if (defined == 0) return 1.0;
  return static_cast<double>(covered) / static_cast<double>(defined);
}

std::vector<const FiniteEngine*> EngineSet::pointers() const {
  std::vector<const FiniteEngine*> out;
  out.reserve(owned.size());
  for (const auto& engine : owned) out.push_back(engine.get());
  return out;
}

void EngineSet::Add(std::unique_ptr<FiniteEngine> engine) {
  owned.push_back(std::move(engine));
}

EngineSet DefaultEngineSet(uint64_t montecarlo_samples) {
  EngineSet set;
  set.Add(std::make_unique<engines::ExactEngine>());
  set.Add(std::make_unique<engines::ProfileEngine>());
  if (montecarlo_samples > 0) {
    engines::MonteCarloEngine::Options options;
    options.num_samples = montecarlo_samples;
    set.Add(std::make_unique<engines::MonteCarloEngine>(options));
  }
  return set;
}

std::string DifferentialReport::Summary(const Scenario& scenario) const {
  std::ostringstream out;
  out << (scenario.provenance.empty() ? "scenario" : scenario.provenance)
      << ": " << comparisons << " comparisons, " << disagreements.size()
      << " disagreement(s)\n";
  for (const auto& d : disagreements) {
    out << "  [" << d.check << "] " << d.lhs << " vs " << d.rhs;
    if (d.domain_size > 0) out << " @ N=" << d.domain_size;
    if (d.query != nullptr) {
      out << " on " << logic::ToString(d.query);
    }
    out << ": " << d.detail << "\n";
  }
  if (!ok()) out << Describe(scenario);
  return out.str();
}

DifferentialReport RunDifferential(
    const Scenario& scenario,
    const std::vector<const FiniteEngine*>& engines,
    const DifferentialOptions& options) {
  DifferentialReport report;

  // ---- vm-vs-interp check (compiled pipeline vs. reference walker) ----
  if (options.check_vm) RunVmCheck(scenario, options, &report);

  // ---- finite + context checks ----
  QueryContext ctx(scenario.vocabulary, scenario.kb,
                   /*caching_enabled=*/true);
  for (const auto& query : scenario.queries) {
    for (int n : options.domain_sizes) {
      struct Run {
        const FiniteEngine* engine;
        FiniteResult direct;
      };
      std::vector<Run> runs;
      for (const FiniteEngine* engine : engines) {
        if (!engine->Supports(scenario.vocabulary, scenario.kb, query, n)) {
          continue;
        }
        FiniteResult direct = engine->DegreeAt(scenario.vocabulary,
                                               scenario.kb, query, n,
                                               options.tolerances);
        FiniteResult via_context =
            engine->DegreeAt(ctx, query, n, options.tolerances);
        ++report.comparisons;
        if (!BitIdentical(direct, via_context)) {
          report.disagreements.push_back(Disagreement{
              "context", engine->name(), engine->name() + "+ctx", query, n,
              "context path diverged from direct computation  [" +
                  engines::ToString(direct) + " vs " +
                  engines::ToString(via_context) + "]"});
        }
        runs.push_back(Run{engine, direct});
      }
      for (size_t i = 0; i < runs.size(); ++i) {
        for (size_t j = i + 1; j < runs.size(); ++j) {
          ++report.comparisons;
          std::string why;
          if (!engines::ResultsEquivalent(
                  runs[i].direct, runs[i].engine->result_class(),
                  runs[j].direct, runs[j].engine->result_class(),
                  options.finite_tolerance, &why)) {
            report.disagreements.push_back(
                Disagreement{"finite", runs[i].engine->name(),
                             runs[j].engine->name(), query, n, why});
          }
        }
      }
    }
  }

  // ---- pipeline / batch checks (full DegreeOfBelief routing) ----
  KnowledgeBase kb = ToKnowledgeBase(scenario);
  InferenceOptions full;
  full.tolerances = options.tolerances;
  full.limit.domain_sizes = options.pipeline_domain_sizes;
  full.limit.tolerance_scales = options.pipeline_tolerance_scales;
  const bool batch_applicable =
      options.check_batch && scenario.queries.size() > 1;
  if (options.check_pipeline || batch_applicable) {
    std::vector<Answer> sequential;
    sequential.reserve(scenario.queries.size());
    for (const auto& query : scenario.queries) {
      sequential.push_back(DegreeOfBelief(kb, query, full));
    }
    if (options.check_pipeline) {
      InferenceOptions numeric = full;
      numeric.use_symbolic = false;
      for (size_t i = 0; i < scenario.queries.size(); ++i) {
        Answer numeric_answer =
            DegreeOfBelief(kb, scenario.queries[i], numeric);
        bool compared = false;
        std::string why;
        if (!PipelineAnswersAgree(sequential[i], numeric_answer,
                                  options.limit_epsilon, &compared, &why)) {
          report.disagreements.push_back(
              Disagreement{"pipeline", "symbolic+numeric", "numeric-only",
                           scenario.queries[i], 0, why});
        }
        if (compared) ++report.comparisons;
      }
    }
    if (batch_applicable) {
      std::vector<Answer> batch =
          DegreesOfBelief(kb, scenario.queries, full);
      for (size_t i = 0; i < scenario.queries.size(); ++i) {
        ++report.comparisons;
        std::string why;
        if (!SameAnswer(batch[i], sequential[i], &why)) {
          report.disagreements.push_back(
              Disagreement{"batch", "DegreesOfBelief", "DegreeOfBelief",
                           scenario.queries[i], 0, why});
        }
      }
    }
  }

  // ---- maxent vs profile sweep (unary scenarios) ----
  // Bounded to small vocabularies: the profile DFS is combinatorial in
  // (N, 2^predicates), and the deep sweep this check needs (the finite-N
  // bias must shrink below limit_epsilon) is only cheap up to 4 atoms.
  // Larger-vocabulary agreement is covered by the tier-1
  // maxent_profile_agreement_test.
  if (options.check_maxent && scenario.vocabulary.IsUnaryRelational() &&
      scenario.vocabulary.num_predicates() <= 2) {
    engines::MaxEntEngine maxent;
    engines::ProfileEngine profile;
    engines::LimitOptions sweep;
    sweep.domain_sizes = {8, 16, 32};
    sweep.tolerance_scales = options.pipeline_tolerance_scales;
    for (const auto& query : scenario.queries) {
      // Through the shared context: the entropy solve depends only on
      // (KB, ⃗τ) and the profile world lists only on (N, ⃗τ), so the whole
      // check is amortized across the query batch (and stays bit-identical
      // to the uncontexted forms).
      engines::MaxEntEngine::LimitResultME limit =
          maxent.InferLimit(ctx, query, options.tolerances);
      if (!limit.supported || !limit.converged) continue;
      engines::LimitResult swept = engines::EstimateLimit(
          profile, ctx, query, options.tolerances, sweep);
      if (!swept.converged || !swept.value.has_value()) continue;
      ++report.comparisons;
      if (std::fabs(limit.value - *swept.value) > options.limit_epsilon) {
        report.disagreements.push_back(Disagreement{
            "maxent", "maxent", "profile", query, 0,
            "limits differ: " + std::to_string(limit.value) + " vs " +
                std::to_string(*swept.value)});
      }
    }
  }

  // ---- defaults family / evidence combination / calibrated coverage ----
  if (options.check_defaults) RunDefaultsCheck(scenario, options, &report);
  if (options.check_evidence) RunEvidenceCheck(scenario, options, &report);
  if (options.check_coverage) RunCoverageCheck(scenario, options, &report);

  // ---- service: incremental maintenance vs rebuild-from-scratch ----
  if (options.check_service) RunServiceCheck(scenario, options, &report);

  // ---- replica: log-shipping bit-identity ----
  if (options.check_replica) RunReplicaCheck(scenario, options, &report);

  // ---- planner vs forced strategies / plan-cache bit-identity ----
  //
  // The cost-based planner must be equivalent to every strategy it could
  // have chosen: whatever engine the plan picks, the paper's claim is that
  // the degree of belief is one quantity.  Bounded to the first queries of
  // the batch — each comparison reruns the full routing several times.
  if (options.check_planner) {
    InferenceOptions planner_options;
    planner_options.tolerances = options.tolerances;
    planner_options.limit.domain_sizes = options.pipeline_domain_sizes;
    planner_options.limit.tolerance_scales =
        options.pipeline_tolerance_scales;
    // Keep fuzz loops affordable: candidates predicted over this budget
    // are skipped (yielding kUnknown, which the comparison treats as
    // uninformative) — the exact odometer at N=6 on a 4-predicate
    // vocabulary alone is ~2^24 worlds per point.
    planner_options.work_budget = 3e7;
    const size_t planner_queries =
        std::min<size_t>(scenario.queries.size(), 2);
    static const char* kForced[] = {"symbolic", "profile", "maxent",
                                    "exact", "montecarlo"};
    KnowledgeBase planner_kb = ToKnowledgeBase(scenario);
    // One shared caching context for the planner and forced runs: the
    // finite-result memo dedups the sweeps across them (answers are
    // bit-identical either way — the context checks above pin that).
    QueryContext shared_ctx = MakeQueryContext(
        planner_kb,
        std::span<const logic::FormulaPtr>(scenario.queries.data(),
                                           planner_queries),
        planner_options);
    for (size_t qi = 0; qi < planner_queries; ++qi) {
      const logic::FormulaPtr& query = scenario.queries[qi];
      Answer planned = DegreeOfBelief(shared_ctx, query, planner_options);

      // The cost-ordered plan answers the same question.
      InferenceOptions cost_options = planner_options;
      cost_options.plan_mode = PlanMode::kMinCost;
      Answer cost_planned = DegreeOfBelief(shared_ctx, query, cost_options);
      bool compared = false;
      std::string why;
      if (!PlannerAnswersAgree(planned, AnswerClass(planned), cost_planned,
                               AnswerClass(cost_planned),
                               options.limit_epsilon, &compared, &why)) {
        report.disagreements.push_back(Disagreement{
            "planner", "planner:fidelity", "planner:cost", query, 0, why});
      }
      if (compared) ++report.comparisons;

      // A planned answer from one of the closed-form defaults/evidence
      // strategies is the full Pr_∞ = lim_{τ→0} lim_{N→∞} value; the
      // maxent engine computes the inner N→∞ limit at the FIXED base
      // tolerances and never takes the outer τ→0 limit.  On hard-default
      // instances with exceptional individuals (penguin chains) those two
      // genuinely differ at any positive τ, so the pair carries no
      // differential information.  The `defaults` check covers these
      // instances with the appropriate oracles instead.
      const bool planned_exact_limit =
          planned.method.find("p-entailment") != std::string::npos ||
          planned.method.find("gmp90") != std::string::npos ||
          planned.method.find("dempster") != std::string::npos;

      // Every forced applicable strategy.
      for (const char* forced_name : kForced) {
        const bool is_montecarlo =
            std::string(forced_name) == "montecarlo";
        if (is_montecarlo && options.planner_montecarlo_samples == 0) {
          continue;
        }
        if (planned_exact_limit && std::string(forced_name) == "maxent") {
          continue;
        }
        InferenceOptions forced_options = planner_options;
        forced_options.force_engine = forced_name;
        if (is_montecarlo) {
          forced_options.montecarlo_samples =
              options.planner_montecarlo_samples;
        }
        Answer forced =
            DegreeOfBelief(shared_ctx, query, forced_options);
        compared = false;
        why.clear();
        engines::ResultClass forced_class =
            is_montecarlo ? engines::ResultClass::kStatistical
                          : engines::ResultClass::kDeterministic;
        if (!PlannerAnswersAgree(planned, AnswerClass(planned), forced,
                                 forced_class, options.limit_epsilon,
                                 &compared, &why)) {
          report.disagreements.push_back(
              Disagreement{"planner", "planner",
                           std::string("forced:") + forced_name, query, 0,
                           why});
        }
        if (compared) ++report.comparisons;
      }

      // Plan-cache hit ≡ cold plan, bit for bit: the second identical
      // query through one context executes the cached candidate order.
      QueryContext planner_ctx = MakeQueryContext(
          planner_kb, std::span<const logic::FormulaPtr>(&query, 1),
          planner_options);
      Answer cold = DegreeOfBelief(planner_ctx, query, planner_options);
      Answer warm = DegreeOfBelief(planner_ctx, query, planner_options);
      ++report.comparisons;
      why.clear();
      if (!SameAnswer(warm, cold, &why)) {
        report.disagreements.push_back(Disagreement{
            "plan-cache", "cached plan", "cold plan", query, 0, why});
      } else if (warm.plan == nullptr || !warm.plan->from_cache) {
        report.disagreements.push_back(Disagreement{
            "plan-cache", "cached plan", "cold plan", query, 0,
            "second identical query did not hit the plan cache"});
      }
    }
  }

  return report;
}

DifferentialReport RunDifferential(const Scenario& scenario,
                                   const DifferentialOptions& options) {
  EngineSet set = DefaultEngineSet();
  return RunDifferential(scenario, set.pointers(), options);
}

}  // namespace rwl::testing
