// The paper's worked examples as a data corpus.
//
// Each entry carries the KB in textual L≈ syntax, the query, and the
// paper's reported answer, so downstream users (and the data-driven test
// in tests/fixtures_test.cc plus bench_corpus) can regression-check an
// engine against the whole evaluation at once.
#ifndef RWL_FIXTURES_PAPER_KBS_H_
#define RWL_FIXTURES_PAPER_KBS_H_

#include <string>
#include <vector>

namespace rwl::fixtures {

struct PaperExample {
  enum class Expect {
    kPoint,        // Pr_∞ = value (± tolerance)
    kInterval,     // Pr_∞ ∈ [lo, hi] (numeric estimates inside; symbolic
                   // answers equal to the interval)
    kNonexistent,  // the limit does not exist
    kUndefined,    // the KB is not eventually consistent
  };

  std::string id;           // e.g. "E5.8"
  std::string description;  // one line, the paper's claim
  std::string kb;           // textual L≈, one sentence per line
  std::string query;
  Expect expect = Expect::kPoint;
  double value = 0.0;       // kPoint
  double lo = 0.0;          // kInterval
  double hi = 1.0;
  double tolerance = 0.03;  // numeric slack for sweep-based answers
  // Constants the query mentions but the KB does not (they must exist in
  // the vocabulary as fresh individuals).
  std::vector<std::string> extra_constants;
  // True when the example is only decidable by the numeric engines (no
  // theorem applies); the runner then disables the symbolic engine.
  bool numeric_only = false;
};

// The full corpus, in paper order.
const std::vector<PaperExample>& AllPaperExamples();

// Lookup by id; aborts if absent (programming error in the caller).
const PaperExample& ExampleById(const std::string& id);

}  // namespace rwl::fixtures

#endif  // RWL_FIXTURES_PAPER_KBS_H_
