#include "src/fixtures/paper_kbs.h"

#include <cstdio>
#include <cstdlib>

namespace rwl::fixtures {
namespace {

std::vector<PaperExample> BuildCorpus() {
  std::vector<PaperExample> corpus;
  auto point = [&](std::string id, std::string description, std::string kb,
                   std::string query, double value,
                   double tolerance = 0.03) {
    PaperExample e;
    e.id = std::move(id);
    e.description = std::move(description);
    e.kb = std::move(kb);
    e.query = std::move(query);
    e.expect = PaperExample::Expect::kPoint;
    e.value = value;
    e.tolerance = tolerance;
    corpus.push_back(std::move(e));
    return &corpus.back();
  };

  point("E5.8",
        "direct inference: the jaundice statistics fix Pr(Hep(Eric))",
        "Jaun(Eric)\n"
        "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
        "Hep(Eric)", 0.8);

  point("E5.8b", "statistics for other classes are ignored",
        "Jaun(Eric)\n"
        "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"
        "#(Hep(x))[x] <~_2 0.05\n"
        "#(Hep(x) ; Jaun(x) & Fever(x))[x] ~=_3 1\n",
        "Hep(Eric)", 0.8);

  point("E5.8c", "facts about other individuals are ignored",
        "Jaun(Eric)\n"
        "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n"
        "Hep(Tom)\n",
        "Hep(Eric)", 0.8);

  point("E5.10", "specificity: Tweety the penguin does not fly",
        "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
        "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
        "forall x. (Penguin(x) => Bird(x))\n"
        "Penguin(Tweety)\n",
        "Fly(Tweety)", 0.0);

  point("E5.13", "quantified default: a tall parent makes Alice tall",
        "#(Tall(x) ; exists y. (Child(x, y) & Tall(y)))[x] ~=_1 1\n"
        "exists y. (Child(Alice, y) & Tall(y))\n",
        "Tall(Alice)", 1.0);

  point("E5.15", "taxonomy: Opus inherits swimming from penguins",
        "#(Swims(x) ; Penguin(x))[x] ~=_1 0.9\n"
        "#(Swims(x) ; Sparrow(x))[x] ~=_2 0.01\n"
        "#(Swims(x) ; Bird(x))[x] ~=_3 0.05\n"
        "#(Swims(x) ; Animal(x))[x] ~=_4 0.3\n"
        "#(Swims(x) ; Fish(x))[x] ~=_5 1\n"
        "forall x. (Penguin(x) => Bird(x))\n"
        "forall x. (Sparrow(x) => Bird(x))\n"
        "forall x. (Bird(x) => Animal(x))\n"
        "forall x. (Fish(x) => Animal(x))\n"
        "forall x. (Penguin(x) => !Sparrow(x))\n"
        "forall x. (Bird(x) => !Fish(x))\n"
        "Penguin(Opus)\n"
        "Black(Opus)\n"
        "LargeNose(Opus)\n",
        "Swims(Opus)", 0.9);

  point("E5.18", "irrelevant chart entries ignored",
        "Jaun(Eric)\n"
        "Fever(Eric)\n"
        "Tall(Eric)\n"
        "#(Hep(x) ; Jaun(x))[x] ~= 0.8\n",
        "Hep(Eric)", 0.8);

  point("E5.19", "irrelevance: the yellow penguin still does not fly",
        "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
        "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
        "forall x. (Penguin(x) => Bird(x))\n"
        "Penguin(Tweety)\n"
        "Yellow(Tweety)\n",
        "Fly(Tweety)", 0.0);

  point("E5.20", "exceptional subclass inherits warm-bloodedness",
        "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
        "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
        "#(WarmBlooded(x) ; Bird(x))[x] ~=_3 1\n"
        "forall x. (Penguin(x) => Bird(x))\n"
        "Penguin(Tweety)\n",
        "WarmBlooded(Tweety)", 1.0);

  point("E5.21", "drowning problem: the yellow penguin is easy to see",
        "#(Fly(x) ; Bird(x))[x] ~=_1 1\n"
        "#(Fly(x) ; Penguin(x))[x] ~=_2 0\n"
        "#(EasyToSee(x) ; Yellow(x))[x] ~=_3 1\n"
        "forall x. (Penguin(x) => Bird(x))\n"
        "Penguin(Tweety)\n"
        "Yellow(Tweety)\n",
        "EasyToSee(Tweety)", 1.0);

  point("E5.22", "Tay-Sachs through a disjunctive reference class",
        "#(TS(x) ; EEJ(x) | FC(x))[x] ~= 0.02\n"
        "EEJ(Eric)\n",
        "TS(Eric)", 0.02);

  {
    PaperExample e;
    e.id = "E5.24";
    e.description = "strength rule: birds' tighter interval beats magpies";
    e.kb =
        "(0.7 <~_1 #(Chirps(x) ; Bird(x))[x]) & "
        "(#(Chirps(x) ; Bird(x))[x] <~_2 0.8)\n"
        "(0 <~_3 #(Chirps(x) ; Magpie(x))[x]) & "
        "(#(Chirps(x) ; Magpie(x))[x] <~_4 0.99)\n"
        "forall x. (Magpie(x) => Bird(x))\n"
        "Magpie(Tweety)\n";
    e.query = "Chirps(Tweety)";
    e.expect = PaperExample::Expect::kInterval;
    e.lo = 0.7;
    e.hi = 0.8;
    e.tolerance = 0.05;
    corpus.push_back(e);
  }

  point("T5.26", "Nixon diamond: δ(0.8, 0.8) = 0.9412",
        "#(Pacifist(x) ; Quaker(x))[x] ~=_1 0.8\n"
        "#(Pacifist(x) ; Republican(x))[x] ~=_2 0.8\n"
        "Quaker(Nixon)\n"
        "Republican(Nixon)\n"
        "exists! x. (Quaker(x) & Republican(x))\n",
        "Pacifist(Nixon)", 0.64 / 0.68, 0.01);

  {
    PaperExample e;
    e.id = "T5.26-conflict";
    e.description =
        "conflicting hard defaults with independent strengths: no limit";
    e.kb =
        "#(Pacifist(x) ; Quaker(x))[x] ~=_1 1\n"
        "#(Pacifist(x) ; Republican(x))[x] ~=_2 0\n"
        "Quaker(Nixon)\n"
        "Republican(Nixon)\n"
        "exists! x. (Quaker(x) & Republican(x))\n";
    e.query = "Pacifist(Nixon)";
    e.expect = PaperExample::Expect::kNonexistent;
    corpus.push_back(e);
  }

  point("E5.28", "independence: Pr(Hep ∧ Over60) = 0.8 × 0.4",
        "#(Hep(x) ; Jaun(x))[x] ~=_1 0.8\n"
        "Jaun(Eric)\n"
        "#(Over60(x) ; Patient(x))[x] ~=_5 0.4\n"
        "Patient(Eric)\n",
        "Hep(Eric) & Over60(Eric)", 0.32);

  {
    PaperExample e = PaperExample();
    e.id = "E5.29";
    e.description = "no spurious independence: Pr(Black(Clyde)) = 0.47";
    e.kb =
        "#(Black(x) ; Bird(x))[x] ~=_1 0.2\n"
        "#(Bird(x))[x] ~=_2 0.1\n";
    e.query = "Black(Clyde)";
    e.expect = PaperExample::Expect::kPoint;
    e.value = 0.47;
    e.tolerance = 0.03;
    e.extra_constants = {"Clyde"};
    corpus.push_back(e);
  }

  point("E4.4a", "elephants typically like zookeepers: Clyde likes Eric",
        "#(Likes(x, y) ; Elephant(x) & Zookeeper(y))[x,y] ~=_1 1\n"
        "#(Likes(x, Fred) ; Elephant(x))[x] ~=_2 0\n"
        "Zookeeper(Fred)\n"
        "Elephant(Clyde)\n"
        "Zookeeper(Eric)\n",
        "Likes(Clyde, Eric)", 1.0);

  point("E4.4b", "but Clyde does not like Fred",
        "#(Likes(x, y) ; Elephant(x) & Zookeeper(y))[x,y] ~=_1 1\n"
        "#(Likes(x, Fred) ; Elephant(x))[x] ~=_2 0\n"
        "Zookeeper(Fred)\n"
        "Elephant(Clyde)\n"
        "Zookeeper(Eric)\n",
        "Likes(Clyde, Fred)", 0.0);

  point("E4.6", "nested default: Alice normally rises late",
        "#(#(RisesLate(x, y) ; Day(y))[y] ~=_1 1 ; "
        "#(ToBedLate(x, y2) ; Day(y2))[y2] ~=_2 1)[x] ~=_3 1\n"
        "#(ToBedLate(Alice, y2) ; Day(y2))[y2] ~=_2 1\n",
        "#(RisesLate(Alice, y) ; Day(y))[y] ~=_1 1", 1.0);

  {
    PaperExample e;
    e.id = "S5.5-poole";
    e.description =
        "Poole's all-exceptional partition of birds is inconsistent";
    e.kb =
        "forall x. (Bird(x) <=> (Emu(x) | Penguin(x)))\n"
        "forall x. !(Emu(x) & Penguin(x))\n"
        "#(Emu(x) ; Bird(x))[x] ~=_1 0\n"
        "#(Penguin(x) ; Bird(x))[x] ~=_2 0\n"
        "0.2 <~_3 #(Bird(x))[x]\n";
    e.query = "Bird(Tweety)";
    e.expect = PaperExample::Expect::kUndefined;
    e.extra_constants = {"Tweety"};
    e.numeric_only = true;
    corpus.push_back(e);
  }

  {
    PaperExample e;
    e.id = "S5.5-names";
    e.description = "unique names: Ray ≠ Drew (Lifschitz C1)";
    e.kb = "Ray = Reiter\nDrew = McDermott\n";
    e.query = "Ray != Drew";
    e.expect = PaperExample::Expect::kPoint;
    e.value = 1.0;
    e.tolerance = 0.02;
    e.numeric_only = true;
    corpus.push_back(e);
  }

  point("S7.2", "representation dependence: the refined prior is 1/3",
        "forall x. (!White(x) <=> (Red(x) | Blue(x)))\n"
        "forall x. !(Red(x) & Blue(x))\n",
        "White(B)", 1.0 / 3.0, 0.02)
      ->extra_constants = {"B"};

  return corpus;
}

}  // namespace

const std::vector<PaperExample>& AllPaperExamples() {
  static const std::vector<PaperExample>* corpus =
      new std::vector<PaperExample>(BuildCorpus());
  return *corpus;
}

const PaperExample& ExampleById(const std::string& id) {
  for (const auto& example : AllPaperExamples()) {
    if (example.id == id) return example;
  }
  std::fprintf(stderr, "rwl fixtures: unknown example id '%s'\n",
               id.c_str());
  std::abort();
}

}  // namespace rwl::fixtures
