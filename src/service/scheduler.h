// QueryScheduler: fair multi-tenant admission and dispatch for the rwld
// service, on top of util::WorkerPool.
//
// Each tenant (a named KB) owns a FIFO queue; the pool's workers drain the
// queues round-robin, one job per turn, so a tenant flooding the service
// delays its own queries, not its neighbours'.  Admission control is a
// per-tenant queue-depth cap: a submit against a full queue is rejected
// immediately (the protocol layer turns that into an "overloaded" error)
// instead of growing an unbounded backlog.
//
// The scheduler runs opaque jobs; per-query deadlines and work budgets are
// carried inside the job's InferenceOptions and enforced by the planner
// (core/planner.h) — the scheduler's only timing role is to start jobs
// fairly.
#ifndef RWL_SERVICE_SCHEDULER_H_
#define RWL_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/thread_pool.h"

namespace rwl::service {

struct SchedulerOptions {
  // Worker threads (0 = one per hardware thread).
  int num_threads = 0;
  // Per-tenant queued-job cap; submits beyond it are rejected.
  size_t max_queue_depth = 256;
};

class QueryScheduler {
 public:
  explicit QueryScheduler(const SchedulerOptions& options = {});
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Enqueues `job` under `tenant`'s queue.  Returns false (job dropped,
  // not run) when the tenant's queue is at max_queue_depth.
  bool Submit(const std::string& tenant, std::function<void()> job);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t rejected = 0;   // admission-control drops
    uint64_t completed = 0;
    uint64_t queued = 0;     // currently waiting, across tenants
    uint64_t running = 0;    // currently executing
    int threads = 0;
  };
  Stats stats() const;

  int num_threads() const { return pool_.num_threads(); }

 private:
  // Pops the next job in round-robin tenant order (called by pool tasks).
  void RunNext();

  SchedulerOptions options_;
  mutable std::mutex mutex_;
  // Ordered map: the round-robin cursor walks tenant names in a stable
  // order, and empty queues are erased so the map stays small.
  std::map<std::string, std::deque<std::function<void()>>> queues_;
  std::string cursor_;  // last-served tenant; next turn starts after it
  Stats stats_;
  util::WorkerPool pool_;  // last member: workers stop before state dies
};

}  // namespace rwl::service

#endif  // RWL_SERVICE_SCHEDULER_H_
