#include "src/service/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/core/planner.h"
#include "src/service/replica.h"

namespace rwl::service {
namespace {

// ---- recursive-descent JSON parser ----

struct Parser {
  const std::string& text;
  size_t pos = 0;
  int depth = 0;
  std::string error;

  // ParseValue recurses per nesting level; the protocol's requests are
  // depth ≤ 3, and without a cap one crafted line of repeated '[' would
  // overflow the connection thread's stack and kill the daemon.
  static constexpr int kMaxDepth = 64;

  explicit Parser(const std::string& t) : text(t) {}

  bool Fail(const std::string& message) {
    error = message + " at byte " + std::to_string(pos);
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool ParseHex4(unsigned* out) {
    if (pos + 4 > text.size()) return Fail("truncated \\u escape");
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text[pos++];
      *out <<= 4;
      if (h >= '0' && h <= '9') *out |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') *out |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') *out |= static_cast<unsigned>(h - 'A' + 10);
      else return Fail("bad \\u escape");
    }
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return Fail("truncated escape");
        char esc = text[pos++];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!ParseHex4(&code)) return false;
            // Surrogate pair: combine the halves into one code point (a
            // lone half would otherwise be emitted as invalid UTF-8).
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos + 2 > text.size() || text[pos] != '\\' ||
                  text[pos + 1] != 'u') {
                return Fail("unpaired high surrogate");
              }
              pos += 2;
              unsigned low = 0;
              if (!ParseHex4(&low)) return false;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("unpaired low surrogate");
            }
            // UTF-8 encode (the protocol carries L≈ text, which is
            // ASCII; this keeps foreign payloads lossless).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xF0 | (code >> 18));
              *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      *out += c;
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Json* out) {
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    if (depth >= kMaxDepth) return Fail("nesting too deep");
    ++depth;
    bool ok = ParseValueInner(out);
    --depth;
    return ok;
  }

  bool ParseValueInner(Json* out) {
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = Json::Type::kObject;
      SkipSpace();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        SkipSpace();
        if (!ParseString(&key)) return false;
        if (!Consume(':')) return false;
        Json value;
        if (!ParseValue(&value)) return false;
        out->fields.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos >= text.size()) return Fail("unterminated object");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == '}') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = Json::Type::kArray;
      SkipSpace();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        Json item;
        if (!ParseValue(&item)) return false;
        out->items.push_back(std::move(item));
        SkipSpace();
        if (pos >= text.size()) return Fail("unterminated array");
        if (text[pos] == ',') {
          ++pos;
          continue;
        }
        if (text[pos] == ']') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = Json::Type::kString;
      return ParseString(&out->string);
    }
    if (text.compare(pos, 4, "true") == 0) {
      out->type = Json::Type::kBool;
      out->boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out->type = Json::Type::kBool;
      out->boolean = false;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      out->type = Json::Type::kNull;
      pos += 4;
      return true;
    }
    // Number.
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return Fail("unexpected character");
    char* end = nullptr;
    std::string token = text.substr(start, pos - start);
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->type = Json::Type::kNumber;
    out->number = value;
    return true;
  }
};

// Typed field accessors with error reporting.
bool WantString(const Json& request, const std::string& key,
                std::string* out, std::string* error) {
  const Json* field = request.Find(key);
  if (field == nullptr || field->type != Json::Type::kString) {
    *error = "missing string field '" + key + "'";
    return false;
  }
  *out = field->string;
  return true;
}

double NumberOr(const Json& request, const std::string& key,
                double fallback) {
  const Json* field = request.Find(key);
  if (field == nullptr || field->type != Json::Type::kNumber) return fallback;
  return field->number;
}

bool StringArray(const Json& request, const std::string& key,
                 std::vector<std::string>* out, std::string* error) {
  const Json* field = request.Find(key);
  if (field == nullptr) return true;  // optional
  if (field->type != Json::Type::kArray) {
    *error = "field '" + key + "' must be an array of strings";
    return false;
  }
  for (const Json& item : field->items) {
    if (item.type != Json::Type::kString) {
      *error = "field '" + key + "' must be an array of strings";
      return false;
    }
    out->push_back(item.string);
  }
  return true;
}

std::string FormatDouble(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

const Json* Json::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool ParseJson(const std::string& text, Json* out, std::string* error) {
  Parser parser(text);
  if (!parser.ParseValue(out)) {
    *error = parser.error;
    return false;
  }
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    *error = "trailing content after JSON value";
    return false;
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ParseRequest(const std::string& line, Request* out, std::string* error) {
  Json json;
  if (!ParseJson(line, &json, error)) return false;
  if (json.type != Json::Type::kObject) {
    *error = "request must be a JSON object";
    return false;
  }
  out->id = static_cast<int64_t>(NumberOr(json, "id", 0));

  std::string op;
  if (!WantString(json, "op", &op, error)) return false;
  if (op == "LOAD") out->op = Request::Op::kLoad;
  else if (op == "ASSERT") out->op = Request::Op::kAssert;
  else if (op == "RETRACT") out->op = Request::Op::kRetract;
  else if (op == "QUERY") out->op = Request::Op::kQuery;
  else if (op == "BATCH") out->op = Request::Op::kBatch;
  else if (op == "STATS") out->op = Request::Op::kStats;
  else if (op == "SHUTDOWN") out->op = Request::Op::kShutdown;
  else if (op == "TAIL") out->op = Request::Op::kTail;
  else if (op == "WAIT") out->op = Request::Op::kWait;
  else {
    *error = "unknown op '" + op + "'";
    return false;
  }

  switch (out->op) {
    case Request::Op::kLoad:
      if (!WantString(json, "kb", &out->kb, error)) return false;
      if (!WantString(json, "text", &out->text, error)) return false;
      if (!StringArray(json, "declare", &out->declare, error)) return false;
      break;
    case Request::Op::kAssert:
    case Request::Op::kRetract:
      if (!WantString(json, "kb", &out->kb, error)) return false;
      if (!WantString(json, "text", &out->text, error)) return false;
      break;
    case Request::Op::kQuery:
      if (!WantString(json, "kb", &out->kb, error)) return false;
      if (!WantString(json, "q", &out->query, error)) return false;
      break;
    case Request::Op::kBatch: {
      if (!WantString(json, "kb", &out->kb, error)) return false;
      const Json* queries = json.Find("queries");
      if (queries == nullptr || queries->type != Json::Type::kArray ||
          queries->items.empty()) {
        *error = "BATCH needs a non-empty 'queries' array";
        return false;
      }
      if (!StringArray(json, "queries", &out->queries, error)) return false;
      break;
    }
    case Request::Op::kWait:
      if (!WantString(json, "kb", &out->kb, error)) return false;
      if (json.Find("min_version") == nullptr) {
        *error = "WAIT needs 'min_version'";
        return false;
      }
      break;
    case Request::Op::kStats:
    case Request::Op::kShutdown:
    case Request::Op::kTail:
      break;
  }

  out->options.deadline_ms = NumberOr(json, "deadline_ms", 0.0);
  out->options.work_budget = NumberOr(json, "budget", 0.0);
  out->options.min_version =
      static_cast<uint64_t>(NumberOr(json, "min_version", 0.0));
  out->options.fixed_domain_size =
      static_cast<int>(NumberOr(json, "fixed_n", 0.0));
  const Json* plan = json.Find("plan");
  if (plan != nullptr) {
    if (plan->type != Json::Type::kString ||
        (plan->string != "fidelity" && plan->string != "cost")) {
      *error = "field 'plan' must be \"fidelity\" or \"cost\"";
      return false;
    }
    out->options.plan = plan->string;
  }
  const Json* engine = json.Find("engine");
  if (engine != nullptr) {
    if (engine->type != Json::Type::kString || engine->string.empty()) {
      *error = "field 'engine' must be a non-empty strategy name";
      return false;
    }
    out->options.engine = engine->string;
  }
  const Json* interval = json.Find("interval");
  if (interval != nullptr) {
    if (interval->type != Json::Type::kNumber || interval->number <= 0.0 ||
        interval->number >= 1.0) {
      *error = "field 'interval' must be a confidence in (0,1)";
      return false;
    }
    out->options.interval_confidence = interval->number;
  }
  return true;
}

std::string ErrorResponse(int64_t id, const std::string& error) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":false,\"error\":\""
      << JsonEscape(error) << "\"}";
  return out.str();
}

std::string MutationResponse(int64_t id, const std::string& kb,
                             const KbService::MutationResult& result) {
  if (!result.ok) return ErrorResponse(id, result.error);
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":true,\"kb\":\"" << JsonEscape(kb)
      << "\",\"version\":" << result.version << "}";
  return out.str();
}

std::string AnswerJson(const KbService::QueryResult& result) {
  std::ostringstream out;
  if (!result.ok) {
    out << "{\"ok\":false,\"error\":\"" << JsonEscape(result.error) << "\"}";
    return out.str();
  }
  const Answer& answer = result.answer;
  out << "{\"ok\":true";
  if (result.snapshot != nullptr) {
    out << ",\"kb\":\"" << JsonEscape(result.snapshot->name)
        << "\",\"version\":" << result.snapshot->version;
  }
  out << ",\"status\":\"" << StatusToString(answer.status) << "\"";
  if (answer.status == Answer::Status::kPoint) {
    out << ",\"value\":" << FormatDouble(answer.value);
  } else if (answer.status == Answer::Status::kInterval) {
    out << ",\"lo\":" << FormatDouble(answer.lo)
        << ",\"hi\":" << FormatDouble(answer.hi);
  }
  out << ",\"method\":\"" << JsonEscape(answer.method) << "\",\"converged\":"
      << (answer.converged ? "true" : "false");
  if (answer.status == Answer::Status::kUnknown &&
      !answer.explanation.empty()) {
    out << ",\"explanation\":\"" << JsonEscape(answer.explanation) << "\"";
  }
  out << ",\"latency_ms\":" << FormatDouble(result.latency_ms) << "}";
  return out.str();
}

std::string QueryResponse(int64_t id, const KbService::QueryResult& result) {
  if (!result.ok) return ErrorResponse(id, result.error);
  std::string answer = AnswerJson(result);
  // Splice the id into the answer object: {"id":N,... }.
  std::ostringstream out;
  out << "{\"id\":" << id << "," << answer.substr(1);
  return out.str();
}

std::string BatchResponse(
    int64_t id, const std::vector<KbService::QueryResult>& results) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":true,\"answers\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out << ",";
    out << AnswerJson(results[i]);
  }
  out << "]}";
  return out.str();
}

std::string StatsResponse(int64_t id, const KbService& service,
                          const ReplicaApplier* replica) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":true,\"kbs\":[";
  bool first = true;
  for (const auto& snapshot : service.Heads()) {
    if (!first) out << ",";
    first = false;
    QueryContext::CacheStats cache = snapshot->context->cache_stats();
    out << "{\"name\":\"" << JsonEscape(snapshot->name)
        << "\",\"version\":" << snapshot->version
        << ",\"conjuncts\":" << snapshot->kb.conjuncts().size()
        << ",\"finite_hits\":" << cache.finite_hits
        << ",\"finite_misses\":" << cache.finite_misses
        << ",\"blob_hits\":" << cache.blob_hits
        << ",\"blob_bytes\":" << cache.blob_bytes
        << ",\"deltas_patched\":" << cache.deltas_patched
        << ",\"deltas_rebuilt\":" << cache.deltas_rebuilt
        << ",\"world_lists_patched\":" << cache.world_lists_patched
        << ",\"world_lists_dropped\":" << cache.world_lists_dropped
        << ",\"analyses_prewarmed\":" << cache.analyses_prewarmed << "}";
  }
  QueryScheduler::Stats stats = service.scheduler_stats();
  KbCatalog::MaintenanceStats maintenance = service.maintenance_stats();
  out << "],\"scheduler\":{\"threads\":" << stats.threads
      << ",\"submitted\":" << stats.submitted
      << ",\"rejected\":" << stats.rejected
      << ",\"completed\":" << stats.completed
      << ",\"queued\":" << stats.queued << ",\"running\":" << stats.running
      << "},\"maintenance\":{\"queue_depth\":" << maintenance.queue_depth
      << ",\"minted\":" << maintenance.minted
      << ",\"patched\":" << maintenance.patched
      << ",\"rebuilt\":" << maintenance.rebuilt
      << ",\"discarded\":" << maintenance.discarded
      << ",\"coalesced\":" << maintenance.coalesced << "}";
  if (const KbWal* wal = service.wal()) {
    WalStats ws = wal->stats();
    out << ",\"wal\":{\"appends\":" << ws.appends
        << ",\"fsyncs\":" << ws.fsyncs << ",\"snapshots\":" << ws.snapshots
        << ",\"segments_deleted\":" << ws.segments_deleted
        << ",\"fsync_p50_us\":" << FormatDouble(ws.fsync_p50_us)
        << ",\"fsync_p99_us\":" << FormatDouble(ws.fsync_p99_us)
        << ",\"fsync_max_us\":" << FormatDouble(ws.fsync_max_us) << "}";
  }
  if (replica != nullptr) {
    out << ",\"replica\":{\"records_applied\":" << replica->records_applied()
        << ",\"records_skipped\":" << replica->records_skipped()
        << ",\"applied\":[";
    bool first_kb = true;
    for (const auto& [name, versions] : replica->AppliedVersions()) {
      if (!first_kb) out << ",";
      first_kb = false;
      out << "{\"name\":\"" << JsonEscape(name)
          << "\",\"primary_version\":" << versions.primary
          << ",\"local_version\":" << versions.local << "}";
    }
    out << "]}";
  }
  out << "}";
  return out.str();
}

std::string ShutdownResponse(int64_t id) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":true,\"shutdown\":true}";
  return out.str();
}

std::string TailAckResponse(int64_t id) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":true,\"tail\":true}";
  return out.str();
}

std::string WaitResponse(int64_t id, const std::string& kb,
                         uint64_t version) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"ok\":true,\"kb\":\"" << JsonEscape(kb)
      << "\",\"version\":" << version << "}";
  return out.str();
}

}  // namespace rwl::service
