// KbService: the embeddable core of the rwld daemon — a KbCatalog of
// versioned KBs behind a fair multi-tenant QueryScheduler.
//
// Contract (the snapshot-isolation guarantee rwld documents):
//
//   * a mutation (LOAD/ASSERT/RETRACT) is durable when the call returns:
//     its version number is the ack, the WAL order is fixed, and — with a
//     WAL configured — its journal record is fsync'd (group commit)
//     before the ack, so Recover() reproduces it after a crash.  Every
//     later mutation builds on it.  The successor snapshot itself is
//     minted on a background maintenance worker (incremental cache
//     patching included) and published atomically once warm — readers
//     keep serving the previous head during that window, and the ack
//     never waits for a build (same-KB builds coalesce);
//   * a query pins a snapshot at admission time and answers against that
//     version no matter what lands while it waits or runs — the answer is
//     bit-identical to a fresh single-threaded query against that version
//     (service_stress_test holds this under 8 writers × 32 readers,
//     including the async publication window);
//   * a query carrying RequestOptions::min_version (the protocol layer's
//     read-your-writes: a connection's own acked mutations) waits for
//     that version to publish before pinning;
//   * a BATCH pins one snapshot for all its queries;
//   * admission control: a tenant whose queue is full gets an immediate
//     "overloaded" rejection, and queries on other tenants are served
//     round-robin regardless.
//
// Per-query deadlines and work budgets ride into the planner through
// InferenceOptions; the scheduler never preempts a running query.
#ifndef RWL_SERVICE_SERVICE_H_
#define RWL_SERVICE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/inference.h"
#include "src/service/catalog.h"
#include "src/service/scheduler.h"
#include "src/service/wal.h"

namespace rwl::service {

class ReplicationHub;  // replica.h

struct ServiceOptions {
  SchedulerOptions scheduler;
  // The service defaults to background maintenance: mutations ack after
  // the WAL-order edit and the successor snapshot is minted off the
  // request path (flip catalog.background_maintenance off to get the
  // synchronous build back).
  CatalogOptions catalog = [] {
    CatalogOptions defaults;
    defaults.background_maintenance = true;
    return defaults;
  }();
  // Defaults for every query; per-request options override deadline,
  // budget and plan mode.
  InferenceOptions inference;
  // Durability: with a non-empty wal.dir every LOAD/ASSERT/RETRACT is
  // journaled and fsync'd (group commit) before its ack returns, KB
  // snapshots are written off the ack path every wal.snapshot_every
  // mutations (truncating the log), and Recover() rebuilds the catalog
  // after a crash.  Empty dir = in-memory only (the old behavior).
  WalOptions wal;
  // Log shipping: when set, every journaled record is also published to
  // this hub (inside the version-assignment critical section, so ship
  // order is version order) for TAIL subscribers.  Not owned.
  ReplicationHub* replication = nullptr;
};

// Per-request overrides (the protocol's optional QUERY fields).
struct RequestOptions {
  double deadline_ms = 0.0;  // 0 = service default
  double work_budget = 0.0;  // 0 = service default
  std::string plan;          // "", "fidelity" or "cost"
  int fixed_domain_size = 0;  // 0 = service default
  // Forces a single named strategy, bypassing the planner (QUERY field
  // "engine"; empty = plan normally).  An inapplicable forced strategy
  // answers kUnknown, like rwlq --engine.
  std::string engine;
  // Calibrated-interval mode (QUERY field "interval"): confidence in
  // (0,1); 0 keeps the service default (normally off).
  double interval_confidence = 0.0;
  // Waits for this version to publish before pinning (0 = pin the current
  // head).  The protocol layer sets a connection's last acked mutation
  // version here so a client always reads its own writes even while the
  // successor snapshot is still minting in the background.
  uint64_t min_version = 0;
};

class KbService {
 public:
  explicit KbService(const ServiceOptions& options = {});
  ~KbService();

  // Crash recovery: scans the WAL directory and reinstalls every
  // journaled KB (newest snapshot + replay), raises the catalog version
  // floor above every journaled version, and re-snapshots each recovered
  // KB (compacting the log into the new version space).  Call once,
  // before serving.  No-op without a WAL.  Non-fatal per-KB problems ride
  // back as warnings; false only when the WAL root is unreadable.
  bool Recover(std::vector<std::string>* warnings, std::string* error);

  struct MutationResult {
    bool ok = false;
    std::string error;
    uint64_t version = 0;  // the acked head version when ok
  };

  // Parses `kb_text` (one sentence per line) and installs it as a new KB.
  // `declare` registers extra constants the KB text does not mention
  // (query-only individuals; see README "Running as a service").
  MutationResult Load(const std::string& name, const std::string& kb_text,
                      const std::vector<std::string>& declare = {});

  // Parses and asserts sentences; produces the successor version.
  MutationResult Assert(const std::string& name, const std::string& text);

  // Parses one sentence and retracts every structurally identical
  // conjunct; an absent conjunct is an error (no version is produced).
  // Retraction keeps the vocabulary: symbols stay registered, so the
  // world space — and therefore every other degree of belief — is
  // unchanged by retract-then-reassert round trips.
  MutationResult Retract(const std::string& name, const std::string& text);

  bool Drop(const std::string& name);

  struct QueryResult {
    bool ok = false;
    std::string error;  // parse error / unknown KB / "overloaded"
    Answer answer;
    // The pinned version the answer was computed against (null on error
    // before admission).
    std::shared_ptr<const KbSnapshot> snapshot;
    double latency_ms = 0.0;  // admission to completion, queue wait included
  };

  // Synchronous: admits, waits for the scheduler, returns the answer.
  QueryResult Query(const std::string& name, const std::string& query_text,
                    const RequestOptions& request = {});

  // One pinned snapshot for the whole batch; answers in argument order.
  std::vector<QueryResult> Batch(const std::string& name,
                                 const std::vector<std::string>& queries,
                                 const RequestOptions& request = {});

  QueryScheduler::Stats scheduler_stats() const { return scheduler_.stats(); }
  std::vector<std::shared_ptr<const KbSnapshot>> Heads() const {
    return catalog_.Heads();
  }
  std::shared_ptr<const KbSnapshot> Snapshot(const std::string& name) const {
    return catalog_.Get(name);
  }

  // Background-maintenance surface (see KbCatalog): observing an acked
  // version, draining the mint queue, and holding the publication window
  // open deterministically in tests.
  bool WaitForVersion(const std::string& name, uint64_t version,
                      double timeout_ms = -1.0) const {
    return catalog_.WaitForVersion(name, version, timeout_ms);
  }
  bool DrainMaintenance(double timeout_ms = -1.0) {
    return catalog_.DrainMaintenance(timeout_ms);
  }
  void PauseMaintenance() { catalog_.PauseMaintenance(); }
  void ResumeMaintenance() { catalog_.ResumeMaintenance(); }
  KbCatalog::MaintenanceStats maintenance_stats() const {
    return catalog_.maintenance_stats();
  }
  const ServiceOptions& options() const { return options_; }

  // Null when durability is off.  Exposed for STATS and the bench fields.
  const KbWal* wal() const { return wal_.get(); }
  KbCatalog* catalog() { return &catalog_; }

  // The effective InferenceOptions a request runs under (exposed so tests
  // can reproduce a service answer with a fresh single-threaded call).
  InferenceOptions EffectiveOptions(const RequestOptions& request) const;

 private:
  std::future<void> SubmitOnSnapshot(
      std::shared_ptr<const KbSnapshot> snapshot,
      const std::string& query_text, const InferenceOptions& options,
      QueryResult* result);

  // The read-side snapshot pin shared by Query and Batch: the published
  // head once it reaches `min_version`, or — after a bounded wait on a
  // backlogged maintenance worker — a cold transient snapshot of the
  // staged tail (bit-identical answers, unwarmed caches).
  std::shared_ptr<const KbSnapshot> PinForRead(const std::string& name,
                                               uint64_t min_version);

  // The version hook shared by Load/Assert/Retract: journals `record`
  // (version filled in) and ships it to the replication hub.  Returns the
  // WAL sequence to Sync on (0 = nothing journaled).
  KbCatalog::VersionHook JournalHook(WalRecord record, uint64_t* seq);
  // Finishes a mutation: group-commit fsync of `seq`, then snapshot
  // scheduling.  Flips result->ok to false on a durability failure.
  void FinishDurable(const std::string& name, uint64_t seq,
                     MutationResult* result);

  void SnapshotLoop();

  ServiceOptions options_;
  std::unique_ptr<KbWal> wal_;  // null = durability off
  KbCatalog catalog_;
  QueryScheduler scheduler_;  // workers stop before the catalog dies

  // Off-ack-path snapshot writer (one KB name queued at most once).
  std::mutex snapshot_mutex_;
  std::condition_variable snapshot_cv_;
  std::deque<std::string> snapshot_queue_;
  bool snapshot_stop_ = false;
  std::thread snapshot_thread_;  // last: joined first in ~KbService
};

}  // namespace rwl::service

#endif  // RWL_SERVICE_SERVICE_H_
