#include "src/service/catalog.h"

#include <utility>

namespace rwl::service {

KbCatalog::KbCatalog(const CatalogOptions& options) : options_(options) {}

std::shared_ptr<KbSnapshot> KbCatalog::BuildSnapshot(
    const std::string& name, KnowledgeBase kb, const QueryContext* prior,
    bool caching_enabled) {
  auto snapshot = std::make_shared<KbSnapshot>();
  snapshot->name = name;
  snapshot->kb = std::move(kb);
  snapshot->context = std::make_shared<QueryContext>(
      snapshot->kb.vocabulary(), snapshot->kb.AsFormula(), caching_enabled);
  if (prior != nullptr) snapshot->context->AdoptCachesFrom(*prior);
  return snapshot;
}

void KbCatalog::InstallLocked(Chain* chain,
                              std::shared_ptr<KbSnapshot> snapshot) {
  snapshot->version = next_version_++;
  chain->versions.emplace(snapshot->version, std::move(snapshot));
  while (chain->versions.size() > options_.retained_versions &&
         options_.retained_versions > 0) {
    chain->versions.erase(chain->versions.begin());
  }
}

std::shared_ptr<const KbSnapshot> KbCatalog::Load(const std::string& name,
                                                  KnowledgeBase kb) {
  std::shared_ptr<KbSnapshot> snapshot =
      BuildSnapshot(name, std::move(kb), nullptr, options_.caching_enabled);
  std::lock_guard<std::mutex> lock(mutex_);
  chains_.erase(name);  // a re-load starts a fresh chain
  InstallLocked(&chains_[name], snapshot);
  return snapshot;
}

std::shared_ptr<const KbSnapshot> KbCatalog::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(name);
  if (it == chains_.end() || it->second.versions.empty()) return nullptr;
  return it->second.versions.rbegin()->second;
}

std::shared_ptr<const KbSnapshot> KbCatalog::GetVersion(
    const std::string& name, uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(name);
  if (it == chains_.end()) return nullptr;
  auto vit = it->second.versions.find(version);
  return vit == it->second.versions.end() ? nullptr : vit->second;
}

std::shared_ptr<const KbSnapshot> KbCatalog::Mutate(
    const std::string& name,
    const std::function<bool(KnowledgeBase*, std::string*)>& edit,
    std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  // Serialize writers on this tenant only; the catalog-wide mutex_ is
  // held just long enough to read the head and to install the successor,
  // so other tenants' Get() admissions never wait on this build.
  std::shared_ptr<std::mutex> write_mutex;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.versions.empty()) {
      return fail("no knowledge base named '" + name + "'");
    }
    write_mutex = it->second.write_mutex;
  }
  std::lock_guard<std::mutex> write_lock(*write_mutex);
  std::shared_ptr<const KbSnapshot> head;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.write_mutex != write_mutex) {
      return fail("knowledge base '" + name + "' was dropped or reloaded");
    }
    head = it->second.versions.rbegin()->second;
  }

  KnowledgeBase next = head->kb;  // copy-on-write, outside every lock
  std::string edit_error;
  if (!edit(&next, &edit_error)) return fail(edit_error);
  std::shared_ptr<KbSnapshot> snapshot =
      BuildSnapshot(name, std::move(next), head->context.get(),
                    options_.caching_enabled);

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(name);
  if (it == chains_.end() || it->second.write_mutex != write_mutex) {
    return fail("knowledge base '" + name + "' was dropped or reloaded");
  }
  InstallLocked(&it->second, snapshot);
  return snapshot;
}

bool KbCatalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return chains_.erase(name) > 0;
}

std::vector<std::shared_ptr<const KbSnapshot>> KbCatalog::Heads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const KbSnapshot>> heads;
  heads.reserve(chains_.size());
  for (const auto& [name, chain] : chains_) {
    if (!chain.versions.empty()) {
      heads.push_back(chain.versions.rbegin()->second);
    }
  }
  return heads;
}

size_t RetractConjuncts(
    KnowledgeBase* kb,
    const std::function<bool(size_t, const logic::FormulaPtr&)>& drop) {
  KnowledgeBase next;
  next.mutable_vocabulary() = kb->vocabulary();
  size_t removed = 0;
  for (size_t i = 0; i < kb->conjuncts().size(); ++i) {
    if (drop(i, kb->conjuncts()[i])) {
      ++removed;
      continue;
    }
    next.Add(kb->conjuncts()[i]);
  }
  *kb = std::move(next);
  return removed;
}

Answer AnswerOnSnapshot(const KbSnapshot& snapshot,
                        const logic::FormulaPtr& query,
                        const InferenceOptions& options) {
  if (QueryCoveredByVocabulary(snapshot.kb.vocabulary(), query)) {
    return DegreeOfBelief(*snapshot.context, query, options);
  }
  // Fresh query symbols: a private context over the pinned KB (the shared
  // context's vocabulary cannot cover them) — the batch API's rule.
  return DegreeOfBelief(snapshot.kb, query, options);
}

}  // namespace rwl::service
