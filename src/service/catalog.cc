#include "src/service/catalog.h"

#include <chrono>
#include <utility>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace rwl::service {

void KbSnapshot::RecordQuery(const logic::FormulaPtr& query,
                             const InferenceOptions& options) const {
  // Only queries the shared context answered are worth replaying; a query
  // with fresh symbols runs in a private context either way.
  if (!QueryCoveredByVocabulary(kb.vocabulary(), query)) return;
  std::lock_guard<std::mutex> lock(query_log_mutex_);
  if (query_log_.size() >= kMaxLoggedQueries) return;
  for (const auto& logged : query_log_) {
    // Formulas are hash-consed: pointer equality is formula identity.
    if (logged.first == query) return;
  }
  query_log_.emplace_back(query, options);
}

std::vector<std::pair<logic::FormulaPtr, InferenceOptions>>
KbSnapshot::LoggedQueries() const {
  std::lock_guard<std::mutex> lock(query_log_mutex_);
  return query_log_;
}

KbCatalog::KbCatalog(const CatalogOptions& options) : options_(options) {
  if (options_.background_maintenance) {
    maintenance_thread_ = std::thread(&KbCatalog::MaintenanceLoop, this);
  }
}

KbCatalog::~KbCatalog() {
  {
    std::lock_guard<std::mutex> lock(maintenance_mutex_);
    stopping_ = true;
  }
  maintenance_cv_.notify_all();
  if (maintenance_thread_.joinable()) maintenance_thread_.join();
}

std::shared_ptr<KbSnapshot> KbCatalog::BuildSnapshot(
    const std::string& name, KnowledgeBase kb, const QueryContext* prior,
    bool caching_enabled) {
  auto snapshot = std::make_shared<KbSnapshot>();
  snapshot->name = name;
  snapshot->kb = std::move(kb);
  snapshot->context = std::make_shared<QueryContext>(
      snapshot->kb.vocabulary(), snapshot->kb.AsFormula(), caching_enabled);
  // Service tenants re-ask the same sweep points for the KB's lifetime,
  // and a recorded world list is the unit ApplyDelta patches across
  // versions — record on first computation instead of second (never
  // changes an answer; see engines/world_cache.h).
  snapshot->context->set_eager_world_recording(caching_enabled);
  if (prior != nullptr) snapshot->context->AdoptCachesFrom(*prior);
  return snapshot;
}

std::shared_ptr<KbSnapshot> KbCatalog::MintSuccessor(const std::string& name,
                                                     KnowledgeBase kb,
                                                     const KbSnapshot& prior) {
  std::shared_ptr<KbSnapshot> snapshot = BuildSnapshot(
      name, std::move(kb), prior.context.get(), options_.caching_enabled);
  if (options_.caching_enabled) {
    KbDelta delta = ComputeKbDelta(prior.kb, snapshot->kb);
    if (snapshot->context->ApplyDelta(*prior.context, delta)) {
      patched_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rebuilt_.fetch_add(1, std::memory_order_relaxed);
    }
    // Publish-when-warm: replay the predecessor's query log so everything
    // those queries will need on the new version — including work the old
    // version never did, like a sweep for a query the mutation knocked off
    // a symbolic fast path — is computed HERE, before readers can pin this
    // snapshot, not on the first post-mutation request.  Answers are
    // discarded; the caches the replay fills are transparent, so the first
    // real query is a hit with a bit-identical result.  The log carries
    // forward so the next successor warms the same working set.
    for (const auto& [query, opts] : prior.LoggedQueries()) {
      try {
        AnswerOnSnapshot(*snapshot, query, opts);
      } catch (...) {
        // Best-effort: a query that fails here fails identically (and
        // reports its own error) when a client re-asks it.
      }
      snapshot->RecordQuery(query, opts);
    }
  }
  return snapshot;
}

void KbCatalog::InstallLocked(Chain* chain,
                              std::shared_ptr<KbSnapshot> snapshot) {
  chain->versions.emplace(snapshot->version, std::move(snapshot));
  while (chain->versions.size() > options_.retained_versions &&
         options_.retained_versions > 0) {
    chain->versions.erase(chain->versions.begin());
  }
  install_cv_.notify_all();
}

std::shared_ptr<const KbSnapshot> KbCatalog::Load(
    const std::string& name, KnowledgeBase kb, const VersionHook& on_version) {
  std::shared_ptr<KbSnapshot> snapshot =
      BuildSnapshot(name, std::move(kb), nullptr, options_.caching_enabled);
  std::lock_guard<std::mutex> lock(mutex_);
  chains_.erase(name);  // a re-load starts a fresh chain
  snapshot->version = next_version_++;
  Chain& chain = chains_[name];
  chain.staged_kb = snapshot->kb;
  chain.staged_version = snapshot->version;
  if (on_version) on_version(snapshot->version);
  InstallLocked(&chain, snapshot);
  return snapshot;
}

std::shared_ptr<const KbSnapshot> KbCatalog::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(name);
  if (it == chains_.end() || it->second.versions.empty()) return nullptr;
  return it->second.versions.rbegin()->second;
}

std::shared_ptr<const KbSnapshot> KbCatalog::GetVersion(
    const std::string& name, uint64_t version) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(name);
  if (it == chains_.end()) return nullptr;
  auto vit = it->second.versions.find(version);
  return vit == it->second.versions.end() ? nullptr : vit->second;
}

MutationTicket KbCatalog::Mutate(
    const std::string& name,
    const std::function<bool(KnowledgeBase*, std::string*)>& edit,
    const VersionHook& on_version) {
  MutationTicket ticket;
  auto fail = [&](const std::string& message) {
    ticket.error = message;
    return ticket;
  };
  // Serialize writers on this tenant only; the catalog-wide mutex_ is
  // held just long enough to read and update chain state, so other
  // tenants' Get() admissions never wait on this edit or build.
  std::shared_ptr<std::mutex> write_mutex;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.versions.empty()) {
      return fail("no knowledge base named '" + name + "'");
    }
    write_mutex = it->second.write_mutex;
  }
  std::lock_guard<std::mutex> write_lock(*write_mutex);
  // Edit against the STAGED tail, not the published head: in background
  // mode the head may lag acked mutations, and a later mutation must see
  // every earlier ack (WAL order).  The copy is O(delta) — the conjunct
  // list is a persistent vector.
  KnowledgeBase next;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.write_mutex != write_mutex) {
      return fail("knowledge base '" + name + "' was dropped or reloaded");
    }
    next = it->second.staged_kb;
  }
  std::string edit_error;
  if (!edit(&next, &edit_error)) return fail(edit_error);

  if (!options_.background_maintenance) {
    // Synchronous: build and publish the successor before acking.
    std::shared_ptr<const KbSnapshot> head;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = chains_.find(name);
      if (it == chains_.end() || it->second.write_mutex != write_mutex) {
        return fail("knowledge base '" + name + "' was dropped or reloaded");
      }
      head = it->second.versions.rbegin()->second;
    }
    std::shared_ptr<KbSnapshot> snapshot =
        MintSuccessor(name, std::move(next), *head);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.write_mutex != write_mutex) {
      return fail("knowledge base '" + name + "' was dropped or reloaded");
    }
    snapshot->version = next_version_++;
    it->second.staged_kb = snapshot->kb;
    it->second.staged_version = snapshot->version;
    ticket.ok = true;
    ticket.version = snapshot->version;
    if (on_version) on_version(snapshot->version);
    InstallLocked(&it->second, std::move(snapshot));
    return ticket;
  }

  // Background: fix the WAL order now (assign the version, advance the
  // staged tail, journal/ship via the hook), hand the expensive successor
  // build to the maintenance worker, and return.  Readers keep serving
  // the published head until the warm successor is installed.
  uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.write_mutex != write_mutex) {
      return fail("knowledge base '" + name + "' was dropped or reloaded");
    }
    version = next_version_++;
    it->second.staged_kb = next;
    it->second.staged_version = version;
    if (on_version) on_version(version);
  }
  {
    // Never block the ack on the worker: a run of mutations on one chain
    // coalesces into the single queued task, which the worker always
    // builds from the NEWEST acked state (skipped versions still satisfy
    // WaitForVersion — it waits for `head >= v`, and the coalesced
    // publication carries the highest v of the run).  This replaces the
    // old bounded-queue backpressure that stalled acks for the length of
    // a successor build (the 775 ms mixed-phase mutation p99).
    std::unique_lock<std::mutex> lock(maintenance_mutex_);
    if (!stopping_) {
      bool folded = false;
      for (MaintenanceTask& task : queue_) {
        if (task.name == name && task.token == write_mutex) {
          task.kb = std::move(next);
          task.version = version;
          folded = true;
          coalesced_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
      }
      if (!folded) {
        queue_.push_back(
            MaintenanceTask{name, write_mutex, std::move(next), version});
      }
    }
  }
  maintenance_cv_.notify_all();
  ticket.ok = true;
  ticket.version = version;
  return ticket;
}

bool KbCatalog::Drop(const std::string& name,
                     const std::function<void()>& on_drop) {
  bool dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped = chains_.erase(name) > 0;
    if (dropped && on_drop) on_drop();
  }
  // Queued maintenance for the dropped chain is discarded by the worker
  // (its token no longer matches); waiters must re-check now.
  install_cv_.notify_all();
  return dropped;
}

KbCatalog::StagedState KbCatalog::Staged(const std::string& name) const {
  StagedState state;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(name);
  if (it == chains_.end()) return state;
  state.ok = true;
  state.kb = it->second.staged_kb;  // O(delta): persistent conjunct vector
  state.version = it->second.staged_version;
  return state;
}

std::shared_ptr<const KbSnapshot> KbCatalog::StagedSnapshot(
    const std::string& name) const {
  StagedState staged;
  std::shared_ptr<const KbSnapshot> prior;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(name);
    if (it == chains_.end()) return nullptr;
    staged.kb = it->second.staged_kb;  // O(delta) persistent-vector copy
    staged.version = it->second.staged_version;
    if (!it->second.versions.empty()) {
      prior = it->second.versions.rbegin()->second;
    }
  }
  // Same warm path as the worker's mint — adopt the published head's
  // caches and patch the delta — minus the query-log replay: the caller
  // has one concrete query to answer, so warming the rest of the working
  // set here would put exactly the work this fallback exists to avoid
  // back on the request path.  The service differential check covers the
  // adopt+patch path's bit-identity.
  std::shared_ptr<KbSnapshot> snapshot = BuildSnapshot(
      name, std::move(staged.kb),
      prior != nullptr ? prior->context.get() : nullptr,
      options_.caching_enabled);
  snapshot->version = staged.version;
  if (prior != nullptr && options_.caching_enabled) {
    KbDelta delta = ComputeKbDelta(prior->kb, snapshot->kb);
    snapshot->context->ApplyDelta(*prior->context, delta);  // best effort
  }
  return snapshot;
}

void KbCatalog::EnsureVersionFloor(uint64_t floor) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (next_version_ <= floor) next_version_ = floor + 1;
}

std::vector<std::shared_ptr<const KbSnapshot>> KbCatalog::Heads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const KbSnapshot>> heads;
  heads.reserve(chains_.size());
  for (const auto& [name, chain] : chains_) {
    if (!chain.versions.empty()) {
      heads.push_back(chain.versions.rbegin()->second);
    }
  }
  return heads;
}

bool KbCatalog::WaitForVersion(const std::string& name, uint64_t version,
                               double timeout_ms) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              timeout_ms < 0 ? 0.0 : timeout_ms));
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = chains_.find(name);
    if (it == chains_.end() || it->second.versions.empty()) return false;
    if (it->second.versions.rbegin()->second->version >= version) return true;
    if (timeout_ms < 0) {
      install_cv_.wait(lock);
    } else if (install_cv_.wait_until(lock, deadline) ==
               std::cv_status::timeout) {
      auto again = chains_.find(name);
      return again != chains_.end() && !again->second.versions.empty() &&
             again->second.versions.rbegin()->second->version >= version;
    }
  }
}

bool KbCatalog::DrainMaintenance(double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              timeout_ms < 0 ? 0.0 : timeout_ms));
  std::unique_lock<std::mutex> lock(maintenance_mutex_);
  auto drained = [&] { return queue_.empty() && in_flight_ == 0; };
  if (timeout_ms < 0) {
    maintenance_cv_.wait(lock, drained);
    return true;
  }
  // A deadline instead of the old deadlock: draining while PAUSED with
  // work queued (catalog.h used to document this as a footgun) now just
  // reports false when the clock runs out.
  return maintenance_cv_.wait_until(lock, deadline, drained);
}

void KbCatalog::PauseMaintenance() {
  std::unique_lock<std::mutex> lock(maintenance_mutex_);
  paused_ = true;
  maintenance_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void KbCatalog::ResumeMaintenance() {
  {
    std::lock_guard<std::mutex> lock(maintenance_mutex_);
    paused_ = false;
  }
  maintenance_cv_.notify_all();
}

KbCatalog::MaintenanceStats KbCatalog::maintenance_stats() const {
  MaintenanceStats stats;
  {
    std::lock_guard<std::mutex> lock(maintenance_mutex_);
    stats.queue_depth = queue_.size() + in_flight_;
  }
  stats.minted = minted_.load(std::memory_order_relaxed);
  stats.patched = patched_.load(std::memory_order_relaxed);
  stats.rebuilt = rebuilt_.load(std::memory_order_relaxed);
  stats.discarded = discarded_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  return stats;
}

void KbCatalog::MaintenanceLoop() {
#if defined(__linux__)
  // Successor builds (and their warming replays) can burn hundreds of
  // milliseconds of CPU; on a saturated machine that time must come out
  // of idle cycles, not out of foreground query latency.  Lowest niceness
  // for this thread only: queries preempt maintenance, publication just
  // lags a little longer — readers keep the warm predecessor meanwhile.
  ::setpriority(PRIO_PROCESS, static_cast<id_t>(::syscall(SYS_gettid)), 19);
#endif
  std::unique_lock<std::mutex> lock(maintenance_mutex_);
  for (;;) {
    maintenance_cv_.wait(
        lock, [&] { return stopping_ || (!paused_ && !queue_.empty()); });
    if (queue_.empty()) {
      if (stopping_) return;  // fully drained
      continue;
    }
    // On shutdown the queue is drained regardless of pause: every acked
    // mutation is published within the catalog's lifetime.
    if (paused_ && !stopping_) continue;
    MaintenanceTask task = std::move(queue_.front());
    queue_.pop_front();
    ++in_flight_;
    lock.unlock();
    ProcessTask(std::move(task));
    lock.lock();
    --in_flight_;
    maintenance_cv_.notify_all();  // Drain / Pause waiters re-check
  }
}

void KbCatalog::ProcessTask(MaintenanceTask task) {
  // The predecessor is the published head at processing time: this worker
  // is the only publisher of successors, so the build adopts (and patches
  // against) the newest published version.  With coalescing the task may
  // fold several acked mutations into one mint — the delta is then
  // multi-op, and ApplyDelta falls back to a lazy rebuild when it cannot
  // patch; answers are unaffected either way.
  std::shared_ptr<const KbSnapshot> head;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chains_.find(task.name);
    if (it == chains_.end() || it->second.write_mutex != task.token) {
      discarded_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    head = it->second.versions.rbegin()->second;
  }
  std::shared_ptr<KbSnapshot> snapshot =
      MintSuccessor(task.name, std::move(task.kb), *head);
  snapshot->version = task.version;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chains_.find(task.name);
  if (it == chains_.end() || it->second.write_mutex != task.token) {
    discarded_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  minted_.fetch_add(1, std::memory_order_relaxed);
  InstallLocked(&it->second, std::move(snapshot));
}

size_t RetractConjuncts(
    KnowledgeBase* kb,
    const std::function<bool(size_t, const logic::FormulaPtr&)>& drop) {
  KnowledgeBase next;
  next.mutable_vocabulary() = kb->vocabulary();
  size_t removed = 0;
  for (size_t i = 0; i < kb->conjuncts().size(); ++i) {
    if (drop(i, kb->conjuncts()[i])) {
      ++removed;
      continue;
    }
    next.Add(kb->conjuncts()[i]);
  }
  *kb = std::move(next);
  return removed;
}

Answer AnswerOnSnapshot(const KbSnapshot& snapshot,
                        const logic::FormulaPtr& query,
                        const InferenceOptions& options) {
  if (QueryCoveredByVocabulary(snapshot.kb.vocabulary(), query)) {
    return DegreeOfBelief(*snapshot.context, query, options);
  }
  // Fresh query symbols: a private context over the pinned KB (the shared
  // context's vocabulary cannot cover them) — the batch API's rule.
  return DegreeOfBelief(snapshot.kb, query, options);
}

}  // namespace rwl::service
