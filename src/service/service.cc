#include "src/service/service.h"

#include <chrono>
#include <exception>
#include <future>
#include <set>
#include <utility>

#include "src/logic/parser.h"
#include "src/logic/transform.h"

namespace rwl::service {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The engines treat an unbound variable as a programming error and abort
// the process; at the service boundary a formula comes off the wire, so
// open formulas must be rejected at admission instead.
bool CheckClosed(const logic::FormulaPtr& formula, const char* what,
                 std::string* error) {
  std::set<std::string> free_variables = logic::FreeVariables(formula);
  if (free_variables.empty()) return true;
  *error = std::string(what) + " has free variables:";
  for (const auto& name : free_variables) *error += " " + name;
  *error += " (lowercase-initial terms are variables; constants start "
            "uppercase)";
  return false;
}

}  // namespace

KbService::KbService(const ServiceOptions& options)
    : options_(options),
      catalog_(options.catalog),
      scheduler_(options.scheduler) {}

InferenceOptions KbService::EffectiveOptions(
    const RequestOptions& request) const {
  InferenceOptions options = options_.inference;
  if (request.deadline_ms > 0.0) options.deadline_ms = request.deadline_ms;
  if (request.work_budget > 0.0) options.work_budget = request.work_budget;
  if (request.fixed_domain_size > 0) {
    options.fixed_domain_size = request.fixed_domain_size;
  }
  if (request.plan == "cost") {
    options.plan_mode = PlanMode::kMinCost;
  } else if (request.plan == "fidelity") {
    options.plan_mode = PlanMode::kFidelity;
  }
  return options;
}

KbService::MutationResult KbService::Load(
    const std::string& name, const std::string& kb_text,
    const std::vector<std::string>& declare) {
  MutationResult result;
  KnowledgeBase kb;
  if (!kb.AddParsed(kb_text, &result.error)) return result;
  if (!CheckClosed(kb.AsFormula(), "knowledge base", &result.error)) {
    return result;
  }
  for (const std::string& constant : declare) {
    if (constant.empty()) {
      result.error = "empty constant declaration";
      return result;
    }
    // Validate before AddConstant: the vocabulary treats a cross-kind
    // re-declaration as a fatal programming error, but here the name
    // comes off the wire.
    if (kb.vocabulary().FindPredicate(constant).has_value()) {
      result.error =
          "cannot declare constant '" + constant + "': already a predicate";
      return result;
    }
    auto existing = kb.vocabulary().FindFunction(constant);
    if (existing.has_value() && existing->arity != 0) {
      result.error =
          "cannot declare constant '" + constant + "': already a function";
      return result;
    }
    kb.mutable_vocabulary().AddConstant(constant);
  }
  std::shared_ptr<const KbSnapshot> snapshot =
      catalog_.Load(name, std::move(kb));
  result.ok = true;
  result.version = snapshot->version;
  return result;
}

KbService::MutationResult KbService::Assert(const std::string& name,
                                            const std::string& text) {
  MutationResult result;
  MutationTicket ticket = catalog_.Mutate(
      name, [&](KnowledgeBase* kb, std::string* error) {
        if (!kb->AddParsed(text, error)) return false;
        return CheckClosed(kb->AsFormula(), "asserted sentence", error);
      });
  result.ok = ticket.ok;
  result.error = std::move(ticket.error);
  result.version = ticket.version;
  return result;
}

KbService::MutationResult KbService::Retract(const std::string& name,
                                             const std::string& text) {
  MutationResult result;
  logic::ParseResult parsed = logic::ParseFormula(text);
  if (!parsed.ok()) {
    result.error = "retract parse error: " + parsed.error;
    return result;
  }
  MutationTicket ticket = catalog_.Mutate(
      name, [&](KnowledgeBase* kb, std::string* error) {
        // Hash-consing: structural equality is pointer equality.
        size_t removed =
            RetractConjuncts(kb, [&](size_t, const logic::FormulaPtr& c) {
              return c == parsed.formula;
            });
        if (removed == 0) {
          *error = "no conjunct matches '" + text + "'";
          return false;
        }
        return true;
      });
  result.ok = ticket.ok;
  result.error = std::move(ticket.error);
  result.version = ticket.version;
  return result;
}

bool KbService::Drop(const std::string& name) { return catalog_.Drop(name); }

// Parses and admits one query against a pinned snapshot.  On admission the
// returned future completes when the job has filled *result (which must
// outlive it); an invalid future means *result already carries the error.
std::future<void> KbService::SubmitOnSnapshot(
    std::shared_ptr<const KbSnapshot> snapshot, const std::string& query_text,
    const InferenceOptions& options, QueryResult* result) {
  result->snapshot = snapshot;
  logic::ParseResult parsed = logic::ParseFormula(query_text);
  if (!parsed.ok()) {
    result->error = "query parse error: " + parsed.error;
    return {};
  }
  if (!CheckClosed(parsed.formula, "query", &result->error)) return {};
  // Feed the snapshot's query log: the maintenance worker replays it when
  // minting this version's successor, so the working set is warm before a
  // post-mutation snapshot is ever published (catalog.h).
  snapshot->RecordQuery(parsed.formula, options);
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> future = done->get_future();
  const Clock::time_point admitted = Clock::now();
  const bool admitted_ok = scheduler_.Submit(
      snapshot->name,
      [result, snapshot, query = parsed.formula, options, admitted, done]() {
        try {
          result->answer = AnswerOnSnapshot(*snapshot, query, options);
          result->ok = true;
        } catch (const std::exception& e) {
          result->error = std::string("engine failure: ") + e.what();
        } catch (...) {
          result->error = "engine failure";
        }
        result->latency_ms = MillisSince(admitted);
        done->set_value();
      });
  if (!admitted_ok) {
    result->error = "overloaded: tenant queue is full";
    return {};
  }
  return future;
}

KbService::QueryResult KbService::Query(const std::string& name,
                                        const std::string& query_text,
                                        const RequestOptions& request) {
  QueryResult result;
  // Read-your-writes: a request carrying the caller's last acked mutation
  // version waits for that version to publish before pinning.
  if (request.min_version > 0) {
    catalog_.WaitForVersion(name, request.min_version);
  }
  std::shared_ptr<const KbSnapshot> snapshot = catalog_.Get(name);
  if (snapshot == nullptr) {
    result.error = "no knowledge base named '" + name + "'";
    return result;
  }
  std::future<void> future = SubmitOnSnapshot(
      std::move(snapshot), query_text, EffectiveOptions(request), &result);
  if (future.valid()) future.wait();
  return result;
}

std::vector<KbService::QueryResult> KbService::Batch(
    const std::string& name, const std::vector<std::string>& queries,
    const RequestOptions& request) {
  std::vector<QueryResult> results(queries.size());
  if (request.min_version > 0) {
    catalog_.WaitForVersion(name, request.min_version);
  }
  std::shared_ptr<const KbSnapshot> snapshot = catalog_.Get(name);
  if (snapshot == nullptr) {
    for (auto& result : results) {
      result.error = "no knowledge base named '" + name + "'";
    }
    return results;
  }
  // One pinned snapshot for the whole batch; all queries are admitted
  // before the first wait, so they run concurrently on the pool, and the
  // shared snapshot context dedups the per-(N, τ) work across them
  // exactly like DegreesOfBelief.
  const InferenceOptions options = EffectiveOptions(request);
  std::vector<std::future<void>> futures(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    futures[i] =
        SubmitOnSnapshot(snapshot, queries[i], options, &results[i]);
  }
  for (auto& future : futures) {
    if (future.valid()) future.wait();
  }
  return results;
}

}  // namespace rwl::service
