#include "src/service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <set>
#include <utility>

#include "src/logic/parser.h"
#include "src/logic/transform.h"
#include "src/service/replica.h"

namespace rwl::service {
namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// The engines treat an unbound variable as a programming error and abort
// the process; at the service boundary a formula comes off the wire, so
// open formulas must be rejected at admission instead.
bool CheckClosed(const logic::FormulaPtr& formula, const char* what,
                 std::string* error) {
  std::set<std::string> free_variables = logic::FreeVariables(formula);
  if (free_variables.empty()) return true;
  *error = std::string(what) + " has free variables:";
  for (const auto& name : free_variables) *error += " " + name;
  *error += " (lowercase-initial terms are variables; constants start "
            "uppercase)";
  return false;
}

}  // namespace

KbService::KbService(const ServiceOptions& options)
    : options_(options),
      catalog_(options.catalog),
      scheduler_(options.scheduler) {
  if (!options_.wal.dir.empty()) {
    wal_ = std::make_unique<KbWal>(options_.wal);
    snapshot_thread_ = std::thread(&KbService::SnapshotLoop, this);
  }
}

KbService::~KbService() {
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_stop_ = true;
  }
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
}

bool KbService::Recover(std::vector<std::string>* warnings,
                        std::string* error) {
  if (wal_ == nullptr) return true;
  if (!wal_->ok()) {
    *error = wal_->init_error();
    return false;
  }
  std::vector<KbWal::RecoveredKb> recovered;
  uint64_t max_version = 0;
  if (!KbWal::Recover(options_.wal.dir, &recovered, &max_version, warnings,
                      error)) {
    return false;
  }
  // New versions must exceed every journaled one BEFORE any re-load, so
  // old and new version spaces never collide in a segment.
  catalog_.EnsureVersionFloor(max_version);
  for (KbWal::RecoveredKb& kb : recovered) {
    std::shared_ptr<const KbSnapshot> snapshot =
        catalog_.Load(kb.name, std::move(kb.kb));
    // Compact immediately: a durable snapshot at the NEW version covers
    // (and truncates) everything journaled in the old version space.
    std::string snap_error;
    if (!wal_->WriteSnapshot(kb.name, snapshot->version, snapshot->kb,
                             &snap_error)) {
      if (warnings) {
        warnings->push_back("post-recovery snapshot of '" + kb.name +
                            "': " + snap_error);
      }
    }
  }
  return true;
}

KbCatalog::VersionHook KbService::JournalHook(WalRecord record,
                                              uint64_t* seq) {
  *seq = 0;
  ReplicationHub* hub = options_.replication;
  // With a hub configured the hook must run even while no subscriber is
  // attached: a TAIL bootstrap subscribes BEFORE serializing the staged
  // state, so a record the bootstrap misses is guaranteed to be in the
  // stream only if every version assignment publishes.
  if (wal_ == nullptr && hub == nullptr) return {};
  // Runs inside the catalog's version-assignment critical section: the
  // version is final here, and appending/publishing under the lock makes
  // journal order and ship order equal to version order.  Append only
  // buffers (the fsync happens in FinishDurable, outside the lock).
  return [this, hub, record = std::move(record), seq](uint64_t version) {
    WalRecord versioned = record;
    versioned.version = version;
    const std::string line = EncodeWalRecord(versioned);
    if (wal_ != nullptr) *seq = wal_->Append(versioned.kb, line);
    if (hub != nullptr) hub->Publish(line);
  };
}

void KbService::FinishDurable(const std::string& name, uint64_t seq,
                              MutationResult* result) {
  if (wal_ == nullptr || !result->ok) return;
  if (seq == 0) {
    result->ok = false;
    result->error = "durability failure: could not journal mutation";
    return;
  }
  std::string sync_error;
  if (!wal_->Sync(name, seq, &sync_error)) {
    // The op is applied in memory but its durability is indeterminate —
    // surfaced as a failure so the client treats the ack as unsafe.
    result->ok = false;
    result->error = "durability failure: " + sync_error;
    return;
  }
  if (wal_->SnapshotDue(name)) {
    bool notify = false;
    {
      std::lock_guard<std::mutex> lock(snapshot_mutex_);
      if (std::find(snapshot_queue_.begin(), snapshot_queue_.end(), name) ==
          snapshot_queue_.end()) {
        snapshot_queue_.push_back(name);
        notify = true;
      }
    }
    if (notify) snapshot_cv_.notify_all();
  }
}

void KbService::SnapshotLoop() {
  std::unique_lock<std::mutex> lock(snapshot_mutex_);
  for (;;) {
    snapshot_cv_.wait(lock,
                      [&] { return snapshot_stop_ || !snapshot_queue_.empty(); });
    if (snapshot_queue_.empty()) {
      if (snapshot_stop_) return;
      continue;
    }
    std::string name = std::move(snapshot_queue_.front());
    snapshot_queue_.pop_front();
    lock.unlock();
    // The staged tail is the authoritative post-ack state; its version
    // bounds every record in the closed segments WriteSnapshot truncates.
    KbCatalog::StagedState staged = catalog_.Staged(name);
    if (staged.ok) {
      std::string snap_error;
      (void)wal_->WriteSnapshot(name, staged.version, staged.kb, &snap_error);
    }
    lock.lock();
  }
}

InferenceOptions KbService::EffectiveOptions(
    const RequestOptions& request) const {
  InferenceOptions options = options_.inference;
  if (request.deadline_ms > 0.0) options.deadline_ms = request.deadline_ms;
  if (request.work_budget > 0.0) options.work_budget = request.work_budget;
  if (request.fixed_domain_size > 0) {
    options.fixed_domain_size = request.fixed_domain_size;
  }
  if (request.plan == "cost") {
    options.plan_mode = PlanMode::kMinCost;
  } else if (request.plan == "fidelity") {
    options.plan_mode = PlanMode::kFidelity;
  }
  if (!request.engine.empty()) options.force_engine = request.engine;
  if (request.interval_confidence > 0.0) {
    options.interval_confidence = request.interval_confidence;
  }
  return options;
}

KbService::MutationResult KbService::Load(
    const std::string& name, const std::string& kb_text,
    const std::vector<std::string>& declare) {
  MutationResult result;
  KnowledgeBase kb;
  if (!kb.AddParsed(kb_text, &result.error)) return result;
  if (!CheckClosed(kb.AsFormula(), "knowledge base", &result.error)) {
    return result;
  }
  for (const std::string& constant : declare) {
    if (constant.empty()) {
      result.error = "empty constant declaration";
      return result;
    }
    // Validate before AddConstant: the vocabulary treats a cross-kind
    // re-declaration as a fatal programming error, but here the name
    // comes off the wire.
    if (kb.vocabulary().FindPredicate(constant).has_value()) {
      result.error =
          "cannot declare constant '" + constant + "': already a predicate";
      return result;
    }
    auto existing = kb.vocabulary().FindFunction(constant);
    if (existing.has_value() && existing->arity != 0) {
      result.error =
          "cannot declare constant '" + constant + "': already a function";
      return result;
    }
    kb.mutable_vocabulary().AddConstant(constant);
  }
  WalRecord record;
  record.op = WalRecord::Op::kLoad;
  record.kb = name;
  record.text = kb_text;
  record.declare = declare;
  uint64_t seq = 0;
  std::shared_ptr<const KbSnapshot> snapshot =
      catalog_.Load(name, std::move(kb), JournalHook(std::move(record), &seq));
  result.ok = true;
  result.version = snapshot->version;
  FinishDurable(name, seq, &result);
  return result;
}

KbService::MutationResult KbService::Assert(const std::string& name,
                                            const std::string& text) {
  MutationResult result;
  WalRecord record;
  record.op = WalRecord::Op::kAssert;
  record.kb = name;
  record.text = text;
  uint64_t seq = 0;
  MutationTicket ticket = catalog_.Mutate(
      name,
      [&](KnowledgeBase* kb, std::string* error) {
        if (!kb->AddParsed(text, error)) return false;
        return CheckClosed(kb->AsFormula(), "asserted sentence", error);
      },
      JournalHook(std::move(record), &seq));
  result.ok = ticket.ok;
  result.error = std::move(ticket.error);
  result.version = ticket.version;
  FinishDurable(name, seq, &result);
  return result;
}

KbService::MutationResult KbService::Retract(const std::string& name,
                                             const std::string& text) {
  MutationResult result;
  logic::ParseResult parsed = logic::ParseFormula(text);
  if (!parsed.ok()) {
    result.error = "retract parse error: " + parsed.error;
    return result;
  }
  WalRecord record;
  record.op = WalRecord::Op::kRetract;
  record.kb = name;
  record.text = text;
  uint64_t seq = 0;
  MutationTicket ticket = catalog_.Mutate(
      name,
      [&](KnowledgeBase* kb, std::string* error) {
        // Hash-consing: structural equality is pointer equality.
        size_t removed =
            RetractConjuncts(kb, [&](size_t, const logic::FormulaPtr& c) {
              return c == parsed.formula;
            });
        if (removed == 0) {
          *error = "no conjunct matches '" + text + "'";
          return false;
        }
        return true;
      },
      JournalHook(std::move(record), &seq));
  result.ok = ticket.ok;
  result.error = std::move(ticket.error);
  result.version = ticket.version;
  FinishDurable(name, seq, &result);
  return result;
}

bool KbService::Drop(const std::string& name) {
  ReplicationHub* hub = options_.replication;
  const bool dropped = catalog_.Drop(name, [&] {
    // Under the catalog mutex: the DROP ships in global version order.
    if (hub != nullptr && hub->HasSubscribers()) {
      WalRecord record;
      record.op = WalRecord::Op::kDrop;
      record.kb = name;
      hub->Publish(EncodeWalRecord(record));
    }
  });
  if (dropped && wal_ != nullptr) wal_->Remove(name);
  return dropped;
}

// Parses and admits one query against a pinned snapshot.  On admission the
// returned future completes when the job has filled *result (which must
// outlive it); an invalid future means *result already carries the error.
std::future<void> KbService::SubmitOnSnapshot(
    std::shared_ptr<const KbSnapshot> snapshot, const std::string& query_text,
    const InferenceOptions& options, QueryResult* result) {
  result->snapshot = snapshot;
  logic::ParseResult parsed = logic::ParseFormula(query_text);
  if (!parsed.ok()) {
    result->error = "query parse error: " + parsed.error;
    return {};
  }
  if (!CheckClosed(parsed.formula, "query", &result->error)) return {};
  // Feed the snapshot's query log: the maintenance worker replays it when
  // minting this version's successor, so the working set is warm before a
  // post-mutation snapshot is ever published (catalog.h).
  snapshot->RecordQuery(parsed.formula, options);
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> future = done->get_future();
  const Clock::time_point admitted = Clock::now();
  const bool admitted_ok = scheduler_.Submit(
      snapshot->name,
      [result, snapshot, query = parsed.formula, options, admitted, done]() {
        try {
          result->answer = AnswerOnSnapshot(*snapshot, query, options);
          result->ok = true;
        } catch (const std::exception& e) {
          result->error = std::string("engine failure: ") + e.what();
        } catch (...) {
          result->error = "engine failure";
        }
        result->latency_ms = MillisSince(admitted);
        done->set_value();
      });
  if (!admitted_ok) {
    result->error = "overloaded: tenant queue is full";
    return {};
  }
  return future;
}

// How long a min_version read waits for the warm successor to publish
// before answering on a cold transient snapshot of the staged tail
// instead.  Publication normally lands within a few milliseconds of the
// ack; the bound matters when the maintenance worker is backlogged or
// CPU-starved (an oversubscribed host, a replica applying a busy feed) —
// read-your-writes promises the acked STATE, not warmed caches, so a
// bounded wait plus the bit-identical cold fallback beats queueing the
// read behind cache warming.
constexpr double kPublishGraceMs = 20.0;

// Read-your-writes pin: the published head once it reaches min_version,
// or the staged-tail fallback (see kPublishGraceMs).  Null when the KB is
// unknown.
std::shared_ptr<const KbSnapshot> KbService::PinForRead(
    const std::string& name, uint64_t min_version) {
  if (min_version > 0 &&
      !catalog_.WaitForVersion(name, min_version, kPublishGraceMs)) {
    std::shared_ptr<const KbSnapshot> staged = catalog_.StagedSnapshot(name);
    if (staged != nullptr && staged->version >= min_version) return staged;
  }
  return catalog_.Get(name);
}

KbService::QueryResult KbService::Query(const std::string& name,
                                        const std::string& query_text,
                                        const RequestOptions& request) {
  QueryResult result;
  std::shared_ptr<const KbSnapshot> snapshot =
      PinForRead(name, request.min_version);
  if (snapshot == nullptr) {
    result.error = "no knowledge base named '" + name + "'";
    return result;
  }
  std::future<void> future = SubmitOnSnapshot(
      std::move(snapshot), query_text, EffectiveOptions(request), &result);
  if (future.valid()) future.wait();
  return result;
}

std::vector<KbService::QueryResult> KbService::Batch(
    const std::string& name, const std::vector<std::string>& queries,
    const RequestOptions& request) {
  std::vector<QueryResult> results(queries.size());
  std::shared_ptr<const KbSnapshot> snapshot =
      PinForRead(name, request.min_version);
  if (snapshot == nullptr) {
    for (auto& result : results) {
      result.error = "no knowledge base named '" + name + "'";
    }
    return results;
  }
  // One pinned snapshot for the whole batch; all queries are admitted
  // before the first wait, so they run concurrently on the pool, and the
  // shared snapshot context dedups the per-(N, τ) work across them
  // exactly like DegreesOfBelief.
  const InferenceOptions options = EffectiveOptions(request);
  std::vector<std::future<void>> futures(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    futures[i] =
        SubmitOnSnapshot(snapshot, queries[i], options, &results[i]);
  }
  for (auto& future : futures) {
    if (future.valid()) future.wait();
  }
  return results;
}

}  // namespace rwl::service
