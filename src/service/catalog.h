// KbCatalog: named, versioned knowledge bases with copy-on-write snapshot
// isolation — the storage layer of the rwld service.
//
// Every named KB is a chain of immutable KbSnapshot versions.  A reader
// pins the head snapshot (a shared_ptr) and keeps answering against that
// version for the whole query, no matter how many ASSERT/RETRACTs land
// concurrently; the snapshot — its KnowledgeBase and its shared
// QueryContext full of derived caches — stays alive until the last pinned
// reader drops it.
//
// A mutation copies the head KnowledgeBase, applies the edit, and installs
// a successor snapshot with a fresh QueryContext that ADOPTS the
// predecessor's caches (QueryContext::AdoptCachesFrom).  Invalidation is
// selective by keying, not by flushing: every cached entry is qualified
// with the version salt of the KB it was computed against, so entries for
// the old KB id are unreachable from the new version — except when a
// mutation sequence reproduces an identical (vocabulary, KB) pair, in
// which case the hash-consed KB formula gets the same id, the salts agree,
// and the old entries are valid hits again.  Compiled programs, which
// depend only on (formula, vocabulary), survive every mutation that leaves
// the signature unchanged.
#ifndef RWL_SERVICE_CATALOG_H_
#define RWL_SERVICE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/query_context.h"

namespace rwl::service {

// One immutable KB version.  `context` carries the version's shared caches
// and is safe for concurrent queries (QueryContext is internally locked);
// everything else is read-only after construction.
struct KbSnapshot {
  std::string name;
  // Catalog-wide monotone counter: a tenant's successive versions are
  // strictly increasing but NOT consecutive (versions interleave across
  // tenants, and numbers never reuse — a pinned reader of a dropped chain
  // can never alias a later version).
  uint64_t version = 0;
  KnowledgeBase kb;
  std::shared_ptr<QueryContext> context;
};

struct CatalogOptions {
  // Snapshot caches replay derived state across queries and adopted
  // versions.  Off is for tests and measurement only — the differential
  // `service` check deliberately runs with caching ON and compares
  // against cache-free from-scratch rebuilds, which is exactly what
  // proves the adopted caches never change an answer.
  bool caching_enabled = true;
  // Old versions retained for GetVersion lookups (pinned readers keep
  // their snapshots alive regardless; this only bounds the catalog's own
  // history index).
  size_t retained_versions = 4;
};

class KbCatalog {
 public:
  explicit KbCatalog(const CatalogOptions& options = {});

  // Installs `kb` as version 1 of `name` (or re-loads: the version chain
  // restarts and the version number keeps growing, so pinned readers of
  // the old chain stay consistent and never alias a new version number).
  // Returns the installed snapshot.
  std::shared_ptr<const KbSnapshot> Load(const std::string& name,
                                         KnowledgeBase kb);

  // The head snapshot, or null when `name` is unknown.
  std::shared_ptr<const KbSnapshot> Get(const std::string& name) const;

  // A retained historical version, or null when unknown / already trimmed.
  std::shared_ptr<const KbSnapshot> GetVersion(const std::string& name,
                                               uint64_t version) const;

  // Copy-on-write mutation: copies the head KnowledgeBase, applies `edit`,
  // and on success installs the result as the next version (adopting the
  // predecessor's caches).  When `edit` returns false nothing changes and
  // its *error is propagated.  Returns the new snapshot, or null on error
  // (unknown name, or edit failure).
  std::shared_ptr<const KbSnapshot> Mutate(
      const std::string& name,
      const std::function<bool(KnowledgeBase*, std::string*)>& edit,
      std::string* error);

  // Removes a KB outright.  Pinned readers keep their snapshots.
  bool Drop(const std::string& name);

  std::vector<std::shared_ptr<const KbSnapshot>> Heads() const;

 private:
  struct Chain {
    // version -> snapshot; the last entry is the head.
    std::map<uint64_t, std::shared_ptr<const KbSnapshot>> versions;
    // Serializes writers per tenant so the expensive copy-on-write build
    // (KB copy, edit, context construction, cache adoption) runs OUTSIDE
    // the catalog-wide mutex_ — one tenant's mutation must not stall
    // other tenants' snapshot pins.  The pointer identity doubles as the
    // chain token: a concurrent re-Load mints a new chain (and mutex),
    // which an in-flight mutation detects at install time.
    std::shared_ptr<std::mutex> write_mutex = std::make_shared<std::mutex>();
  };

  // Builds a snapshot (version assigned at install).  Lock-free.
  static std::shared_ptr<KbSnapshot> BuildSnapshot(
      const std::string& name, KnowledgeBase kb, const QueryContext* prior,
      bool caching_enabled);

  void InstallLocked(Chain* chain, std::shared_ptr<KbSnapshot> snapshot);

  CatalogOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Chain> chains_;
  uint64_t next_version_ = 1;  // catalog-wide: version numbers never reuse
};

// RETRACT semantics, shared by KbService::Retract and the differential
// `service` check: rebuilds *kb without the conjuncts selected by
// `drop(index, conjunct)`, PRESERVING the vocabulary — retraction removes
// knowledge, not symbols, so the world space (and every other degree of
// belief) is unchanged by retract-then-reassert round trips.  Returns the
// number of conjuncts dropped.
size_t RetractConjuncts(
    KnowledgeBase* kb,
    const std::function<bool(size_t, const logic::FormulaPtr&)>& drop);

// Shared by KbService and the differential `service` check: answers one
// query against a pinned snapshot.  Queries covered by the snapshot's
// vocabulary run through the shared context (cache hits across queries and
// adopted versions); a query introducing fresh symbols gets a private
// context derived from the snapshot's KB — same rule, and bit-identical
// answers, as the batch API (core/inference.cc).
Answer AnswerOnSnapshot(const KbSnapshot& snapshot,
                        const logic::FormulaPtr& query,
                        const InferenceOptions& options);

}  // namespace rwl::service

#endif  // RWL_SERVICE_CATALOG_H_
