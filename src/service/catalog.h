// KbCatalog: named, versioned knowledge bases with copy-on-write snapshot
// isolation — the storage layer of the rwld service.
//
// Every named KB is a chain of immutable KbSnapshot versions.  A reader
// pins the head snapshot (a shared_ptr) and keeps answering against that
// version for the whole query, no matter how many ASSERT/RETRACTs land
// concurrently; the snapshot — its KnowledgeBase and its shared
// QueryContext full of derived caches — stays alive until the last pinned
// reader drops it.
//
// A mutation copies the head KnowledgeBase (O(delta): the conjunct list is
// a persistent vector), applies the edit, and installs a successor
// snapshot with a fresh QueryContext that ADOPTS the predecessor's caches
// (QueryContext::AdoptCachesFrom) and, for signature-preserving appends,
// PATCHES the expensive recorded world lists instead of letting them
// rebuild (QueryContext::ApplyDelta).  Invalidation is selective by
// keying, not by flushing: every cached entry is qualified with the
// version salt of the KB it was computed against, so entries for the old
// KB id are unreachable from the new version — except when a mutation
// sequence reproduces an identical (vocabulary, KB) pair, in which case
// the hash-consed KB formula gets the same id, the salts agree, and the
// old entries are valid hits again.  Compiled programs, which depend only
// on (formula, vocabulary), survive every mutation that leaves the
// signature unchanged.
//
// Maintenance modes.  In the default synchronous mode a mutation builds
// and publishes its successor before returning.  With
// CatalogOptions::background_maintenance the expensive part — context
// construction, cache adoption and delta patching — moves off the request
// path: Mutate applies the edit to the chain's STAGED tail (the
// authoritative post-ack state), assigns the version number (fixing the
// WAL order), enqueues the build for the maintenance worker, and returns.
// Readers keep serving the published head until the warm successor is
// installed atomically; a query that must observe an acked version waits
// with WaitForVersion.  Answers stay bit-identical to fresh
// single-threaded queries against whichever snapshot a reader pinned.
#ifndef RWL_SERVICE_CATALOG_H_
#define RWL_SERVICE_CATALOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/inference.h"
#include "src/core/knowledge_base.h"
#include "src/core/query_context.h"

namespace rwl::service {

// One immutable KB version.  `context` carries the version's shared caches
// and is safe for concurrent queries (QueryContext is internally locked);
// everything else is read-only after construction.
struct KbSnapshot {
  std::string name;
  // Catalog-wide monotone counter: a tenant's successive versions are
  // strictly increasing but NOT consecutive (versions interleave across
  // tenants, and numbers never reuse — a pinned reader of a dropped chain
  // can never alias a later version).
  uint64_t version = 0;
  KnowledgeBase kb;
  std::shared_ptr<QueryContext> context;

  // Best-effort log of distinct queries answered on this version (capped;
  // first options seen win; queries outside the snapshot's vocabulary are
  // skipped — they never touch the shared context).  The maintenance
  // worker replays the predecessor's log against a successor BEFORE
  // publishing it, so compute a mutation forces back onto the query path —
  // a symbolic fast path the new conjunct breaks, a sweep the old version
  // never needed — happens off the request path while readers keep the
  // warm predecessor.  Thread-safe.
  static constexpr size_t kMaxLoggedQueries = 32;
  void RecordQuery(const logic::FormulaPtr& query,
                   const InferenceOptions& options) const;
  std::vector<std::pair<logic::FormulaPtr, InferenceOptions>> LoggedQueries()
      const;

 private:
  mutable std::mutex query_log_mutex_;
  mutable std::vector<std::pair<logic::FormulaPtr, InferenceOptions>>
      query_log_;
};

struct CatalogOptions {
  // Snapshot caches replay derived state across queries and adopted
  // versions.  Off is for tests and measurement only — the differential
  // `service` check deliberately runs with caching ON and compares
  // against cache-free from-scratch rebuilds, which is exactly what
  // proves the adopted caches never change an answer.
  bool caching_enabled = true;
  // Old versions retained for GetVersion lookups (pinned readers keep
  // their snapshots alive regardless; this only bounds the catalog's own
  // history index).
  size_t retained_versions = 4;
  // Build mutation successors on a background maintenance worker instead
  // of on the mutating caller's thread (see the header comment).  The
  // default is synchronous: embedders that never mutate under load — and
  // the differential check, whose value is comparing the PUBLISHED state
  // right after an ack — keep the simple model.  KbService turns this on.
  //
  // Ack never waits on the worker: a run of queued mutations on one chain
  // COALESCES into a single successor mint from the newest staged state
  // (the queue holds at most one task per chain), so the queue depth is
  // bounded by the tenant count and acking is O(edit) regardless of write
  // pressure.  Durability is the WAL's job (wal.h), not the queue's.
  bool background_maintenance = false;
};

// The ack of a mutation: `version` is fixed (WAL order) even when the
// successor snapshot is still being built in the background.
struct MutationTicket {
  bool ok = false;
  uint64_t version = 0;
  std::string error;
};

class KbCatalog {
 public:
  // Runs inside the catalog's version-assignment critical section, right
  // after the op's version is fixed and the staged tail updated — the one
  // place where "this version number, in this global order" is certain.
  // KbService journals (WAL append) and publishes (replica hub) here so
  // file order and ship order are version order.  Must be fast and must
  // not re-enter the catalog.
  using VersionHook = std::function<void(uint64_t version)>;

  explicit KbCatalog(const CatalogOptions& options = {});
  ~KbCatalog();

  KbCatalog(const KbCatalog&) = delete;
  KbCatalog& operator=(const KbCatalog&) = delete;

  // Installs `kb` as version 1 of `name` (or re-loads: the version chain
  // restarts and the version number keeps growing, so pinned readers of
  // the old chain stay consistent and never alias a new version number).
  // Always synchronous (a load has no predecessor to serve meanwhile).
  // Returns the installed snapshot.
  std::shared_ptr<const KbSnapshot> Load(const std::string& name,
                                         KnowledgeBase kb,
                                         const VersionHook& on_version = {});

  // The head snapshot, or null when `name` is unknown.
  std::shared_ptr<const KbSnapshot> Get(const std::string& name) const;

  // A retained historical version, or null when unknown / already trimmed.
  std::shared_ptr<const KbSnapshot> GetVersion(const std::string& name,
                                               uint64_t version) const;

  // Copy-on-write mutation: copies the staged KnowledgeBase, applies
  // `edit`, and on success acks the next version.  When `edit` returns
  // false nothing changes and the error rides back in the ticket.
  //
  // Synchronous mode publishes the successor before returning: on ok the
  // ticket's version IS the head.  Background mode returns once the edit
  // is applied and the version assigned; the successor is published by the
  // maintenance worker (WaitForVersion to observe it).  Either way later
  // mutations see this one: edits run against the staged tail, serialized
  // per tenant.
  MutationTicket Mutate(
      const std::string& name,
      const std::function<bool(KnowledgeBase*, std::string*)>& edit,
      const VersionHook& on_version = {});

  // Removes a KB outright.  Pinned readers keep their snapshots; queued
  // maintenance for the dropped chain is discarded.  `on_drop` runs under
  // the catalog mutex only when something was actually dropped (the
  // version-hook slot of a DROP: replica shipping stays in global order).
  bool Drop(const std::string& name,
            const std::function<void()>& on_drop = {});

  std::vector<std::shared_ptr<const KbSnapshot>> Heads() const;

  // The authoritative post-ack state of `name`: the staged tail KB (an
  // O(delta) persistent-vector copy) and its acked version — ahead of the
  // published head whenever builds are queued.  This is what WAL
  // snapshots and replica bootstraps serialize.
  struct StagedState {
    bool ok = false;
    KnowledgeBase kb;
    uint64_t version = 0;
  };
  StagedState Staged(const std::string& name) const;

  // Read-your-writes fallback: a TRANSIENT cold snapshot of the staged
  // tail — the acked state at Staged().version — built on the caller's
  // thread and never published into the chain.  Answers on it are
  // bit-identical (a cold context is exactly the from-scratch baseline)
  // but unwarmed, so callers prefer the published head and reach for
  // this only after a bounded WaitForVersion expires — a backlogged or
  // CPU-starved maintenance worker must bound a min_version read's
  // latency, not gate it on cache warming.  Null when `name` is unknown.
  std::shared_ptr<const KbSnapshot> StagedSnapshot(
      const std::string& name) const;

  // Raises the catalog's next version above `floor` so every version
  // assigned from now on exceeds it.  Recovery calls this with the
  // highest journaled version BEFORE re-loading recovered KBs: fresh
  // version numbers never collide with ones already on disk.
  void EnsureVersionFloor(uint64_t floor);

  // Blocks until the published head of `name` reaches `version`; returns
  // false when the chain is dropped (or never existed) or — with a
  // non-negative `timeout_ms` — when the deadline expires first.  Never
  // hangs on a discarded in-flight mutation: a re-Load publishes a
  // strictly higher version than every previously acked one.
  bool WaitForVersion(const std::string& name, uint64_t version,
                      double timeout_ms = -1.0) const;

  // Blocks until the maintenance queue is empty and the worker idle.
  // Returns false on deadline expiry (`timeout_ms` >= 0) — including the
  // once-deadlocking footgun of draining while PAUSED with work still
  // queued, which now simply times out.
  bool DrainMaintenance(double timeout_ms = -1.0);

  // Deterministically holds the async publication window open for tests:
  // Pause returns once the worker is idle and keeps it from starting the
  // next build; Resume lets it continue.
  void PauseMaintenance();
  void ResumeMaintenance();

  struct MaintenanceStats {
    size_t queue_depth = 0;   // chains with an acked-but-unpublished build
    uint64_t minted = 0;      // successors published by the worker
    uint64_t patched = 0;     // successors whose delta was patched in place
    uint64_t rebuilt = 0;     // successors left to rebuild caches lazily
    uint64_t discarded = 0;   // queued builds dropped (tenant drop/reload)
    uint64_t coalesced = 0;   // acked mutations folded into a queued build
  };
  MaintenanceStats maintenance_stats() const;

 private:
  struct Chain {
    // version -> snapshot; the last entry is the published head.
    std::map<uint64_t, std::shared_ptr<const KbSnapshot>> versions;
    // The authoritative post-ack state: every acked mutation is applied
    // here immediately, even while its snapshot build is still queued.
    // Written only at chain creation and under write_mutex.
    KnowledgeBase staged_kb;
    uint64_t staged_version = 0;
    // Serializes writers per tenant so the copy-on-write edit (and, in
    // synchronous mode, the whole successor build) runs OUTSIDE the
    // catalog-wide mutex_ — one tenant's mutation must not stall other
    // tenants' snapshot pins.  The pointer identity doubles as the chain
    // token: a concurrent re-Load mints a new chain (and mutex), which an
    // in-flight mutation or queued maintenance task detects and discards.
    std::shared_ptr<std::mutex> write_mutex = std::make_shared<std::mutex>();
  };

  // One acked mutation awaiting its successor build.
  struct MaintenanceTask {
    std::string name;
    std::shared_ptr<std::mutex> token;  // the chain's write_mutex identity
    KnowledgeBase kb;
    uint64_t version = 0;  // preassigned at ack time
  };

  // Builds a snapshot (version assigned by the caller).  Lock-free.
  static std::shared_ptr<KbSnapshot> BuildSnapshot(
      const std::string& name, KnowledgeBase kb, const QueryContext* prior,
      bool caching_enabled);

  // BuildSnapshot + delta patching against the predecessor (the successor
  // minting both modes share).
  std::shared_ptr<KbSnapshot> MintSuccessor(const std::string& name,
                                            KnowledgeBase kb,
                                            const KbSnapshot& prior);

  // Publishes an already-versioned snapshot and wakes WaitForVersion.
  void InstallLocked(Chain* chain, std::shared_ptr<KbSnapshot> snapshot);

  void MaintenanceLoop();
  void ProcessTask(MaintenanceTask task);

  CatalogOptions options_;
  mutable std::mutex mutex_;
  mutable std::condition_variable install_cv_;  // with mutex_: publications
  std::map<std::string, Chain> chains_;
  uint64_t next_version_ = 1;  // catalog-wide: version numbers never reuse

  // Maintenance worker state (guarded by maintenance_mutex_ except the
  // counters, which are read lock-free by maintenance_stats).
  mutable std::mutex maintenance_mutex_;
  std::condition_variable maintenance_cv_;
  std::deque<MaintenanceTask> queue_;
  size_t in_flight_ = 0;
  bool paused_ = false;
  bool stopping_ = false;
  std::atomic<uint64_t> minted_{0};
  std::atomic<uint64_t> patched_{0};
  std::atomic<uint64_t> rebuilt_{0};
  std::atomic<uint64_t> discarded_{0};
  std::atomic<uint64_t> coalesced_{0};
  std::thread maintenance_thread_;  // last: joins before members die
};

// RETRACT semantics, shared by KbService::Retract and the differential
// `service` check: rebuilds *kb without the conjuncts selected by
// `drop(index, conjunct)`, PRESERVING the vocabulary — retraction removes
// knowledge, not symbols, so the world space (and every other degree of
// belief) is unchanged by retract-then-reassert round trips.  Returns the
// number of conjuncts dropped.
size_t RetractConjuncts(
    KnowledgeBase* kb,
    const std::function<bool(size_t, const logic::FormulaPtr&)>& drop);

// Shared by KbService and the differential `service` check: answers one
// query against a pinned snapshot.  Queries covered by the snapshot's
// vocabulary run through the shared context (cache hits across queries and
// adopted versions); a query introducing fresh symbols gets a private
// context derived from the snapshot's KB — same rule, and bit-identical
// answers, as the batch API (core/inference.cc).
Answer AnswerOnSnapshot(const KbSnapshot& snapshot,
                        const logic::FormulaPtr& query,
                        const InferenceOptions& options);

}  // namespace rwl::service

#endif  // RWL_SERVICE_CATALOG_H_
