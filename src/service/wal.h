// Durable write-ahead logging for the KB service.
//
// Every mutation the catalog acks (LOAD / ASSERT / RETRACT) is first
// appended as one canonical NDJSON record to a per-KB segmented log under
// `WalOptions::dir` and fsync'd (group commit) BEFORE the ack returns to
// the client.  The mutation protocol is already a replayable journal — the
// differential `service` check replays deterministic mutation sequences
// against a bit-identity oracle — so the WAL record format IS the wire
// format: the same records recover a crashed catalog from disk and ship
// live to log-tailing read replicas (replica.h).
//
// Layout, per KB (directory name is the percent-escaped KB name):
//
//   <dir>/<kb>/wal-000001.ndjson     closed segment (rotated at size cap)
//   <dir>/<kb>/wal-000002.ndjson     current segment (append + fsync)
//   <dir>/<kb>/snap-000000042.ndjson one-line full-state snapshot at v42
//
// Records carry the catalog version assigned at append time (the append
// runs inside the catalog's version-assignment critical section, so file
// order is version order per segment; recovery additionally sorts by
// version, making cross-segment interleavings harmless).  A snapshot is
// the serialized conjunct list plus the exact vocabulary — symbols in
// registration order, so reconstruction reproduces every symbol id and
// the vocabulary fingerprint verifies it.  Snapshots are written off the
// ack path (KbService's snapshot worker) and truncate the log: once
// snap-<V> is durable, every closed segment is deleted (all of their
// records have version <= V by construction — the snapshot is taken from
// the staged tail AFTER rotating the segment).
//
// Recovery = newest snapshot + replay of newer records, tolerating a torn
// final record (a crash mid-append loses only the never-acked suffix).
// Versions after recovery restart ABOVE the highest recovered version
// (KbCatalog::EnsureVersionFloor), and the recovered state is immediately
// re-snapshotted so old and new version spaces never share a segment.
#ifndef RWL_SERVICE_WAL_H_
#define RWL_SERVICE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/core/knowledge_base.h"
#include "src/service/catalog.h"

namespace rwl::service {

// One journaled / shipped mutation.  kSnapshot doubles as the on-disk
// snapshot file format and the replica bootstrap record.
struct WalRecord {
  enum class Op { kLoad, kAssert, kRetract, kSnapshot, kDrop };
  Op op = Op::kAssert;
  std::string kb;
  uint64_t version = 0;  // catalog version assigned at ack (0 for kDrop)
  std::string text;      // LOAD / ASSERT / RETRACT payload
  std::vector<std::string> declare;  // LOAD extra constants
  // kSnapshot: the full state.  Symbols are listed in registration order
  // so reconstruction reassigns identical ids; `fingerprint` must match
  // the rebuilt vocabulary's Fingerprint() or the snapshot is rejected.
  std::vector<std::pair<std::string, int>> predicates;
  std::vector<std::pair<std::string, int>> functions;
  std::vector<std::string> conjuncts;  // printed formulas (parser round-trips)
  uint64_t fingerprint = 0;
};

// One NDJSON line (no trailing newline).
std::string EncodeWalRecord(const WalRecord& record);
bool DecodeWalRecord(const std::string& line, WalRecord* out,
                     std::string* error);

// Serializes a KB state as a kSnapshot record.
WalRecord MakeSnapshotRecord(const std::string& kb_name, uint64_t version,
                             const KnowledgeBase& kb);

// Rebuilds the KB of a kSnapshot record: vocabulary first (exact symbol
// ids), then the conjuncts.  Fails on a parse error or a vocabulary
// fingerprint mismatch.
bool KbFromSnapshot(const WalRecord& record, KnowledgeBase* out,
                    std::string* error);

// Applies one record's op semantics to a bare KB state (`state` may hold
// no value yet — LOAD / SNAPSHOT create it).  Shared by recovery and by
// ApplyWalRecord so journal replay, replica apply and the live service
// agree on semantics (RETRACT preserves the vocabulary, exactly like
// KbService::Retract).
bool ApplyRecordToState(const WalRecord& record,
                        std::unique_ptr<KnowledgeBase>* state,
                        std::string* error);

// Applies one record to a catalog through the same Load / Mutate paths
// the live service uses (the replica's apply path).  On success
// *local_version is the catalog version the op produced (0 for kDrop).
bool ApplyWalRecord(KbCatalog* catalog, const WalRecord& record,
                    uint64_t* local_version, std::string* error);

struct WalOptions {
  std::string dir;  // root directory; empty = durability off
  // Rotate the active segment once it exceeds this many bytes.
  size_t segment_bytes = 1u << 20;
  // Journaled mutations per KB between snapshots (0 = never snapshot;
  // the log then grows without truncation).
  int snapshot_every = 256;
};

struct WalStats {
  uint64_t appends = 0;
  uint64_t fsyncs = 0;
  uint64_t snapshots = 0;
  uint64_t segments_deleted = 0;
  // Over the most recent fsyncs (capped reservoir).
  double fsync_p50_us = 0.0;
  double fsync_p99_us = 0.0;
  double fsync_max_us = 0.0;
};

// The per-KB segmented log writer set.  Thread-safe; Append is cheap (an
// in-memory buffer append) so it can run inside the catalog's
// version-assignment critical section, while Sync pays the write+fsync
// with group commit: concurrent syncers of one KB ride a single fsync.
class KbWal {
 public:
  explicit KbWal(const WalOptions& options);
  ~KbWal();

  KbWal(const KbWal&) = delete;
  KbWal& operator=(const KbWal&) = delete;

  // False when the root directory could not be created.
  bool ok() const { return ok_; }
  const std::string& init_error() const { return init_error_; }
  const WalOptions& options() const { return options_; }

  // Buffers one encoded record for `kb` (creating its log on first use)
  // and returns the per-KB sequence to pass to Sync; 0 on failure.  The
  // caller provides the already-encoded line so the hub publish path can
  // share the encoding.
  uint64_t Append(const std::string& kb, const std::string& line);

  // Group commit: returns once every buffered record of `kb` up to `seq`
  // is written and fsync'd.  One concurrent caller becomes the leader and
  // pays the fsync; the rest wait for the durable sequence to cover them.
  bool Sync(const std::string& kb, uint64_t seq, std::string* error);

  // True when `kb` has journaled at least `snapshot_every` records since
  // its last snapshot (always false when snapshots are disabled).
  bool SnapshotDue(const std::string& kb) const;

  // Writes a durable snapshot of `state` at `version` and truncates: the
  // active segment is rotated first, then every closed segment is deleted
  // (their records are all <= version when `state`/`version` come from
  // the catalog's staged tail), along with older snapshot files.
  bool WriteSnapshot(const std::string& kb, uint64_t version,
                     const KnowledgeBase& state, std::string* error);

  // Deletes every durable trace of `kb` (DROP semantics: a KB either has
  // a directory — not dropped — or none).
  void Remove(const std::string& kb);

  WalStats stats() const;

  // ---- recovery (static: runs before any writer exists) ----
  struct RecoveredKb {
    std::string name;
    KnowledgeBase kb;
    uint64_t version = 0;       // highest applied record / snapshot version
    size_t replayed_records = 0;
  };

  // Scans `dir` and reconstructs every journaled KB: newest readable
  // snapshot plus all newer records in version order.  A torn final
  // record (crash mid-append) is dropped silently; other malformed lines
  // stop that KB's replay at the last good prefix with a warning.
  // *max_version is the highest version seen anywhere (the catalog's
  // post-recovery version floor).  Returns false only on an unreadable
  // root directory.
  static bool Recover(const std::string& dir, std::vector<RecoveredKb>* out,
                      uint64_t* max_version,
                      std::vector<std::string>* warnings, std::string* error);

 private:
  struct Writer {
    std::mutex mutex;
    std::condition_variable cv;
    std::string dir;            // <root>/<escaped-kb>
    int fd = -1;
    uint64_t segment_index = 0;  // index of the open segment
    size_t segment_bytes = 0;    // bytes written to the open segment
    uint64_t next_seq = 1;
    uint64_t durable_seq = 0;
    uint64_t pending_seq = 0;    // seq of the last buffered record
    std::string pending;         // encoded lines awaiting the next fsync
    bool syncing = false;        // a group-commit leader is flushing
    uint64_t appends_since_snapshot = 0;
    std::mutex snapshot_mutex;   // serializes WriteSnapshot
  };

  std::shared_ptr<Writer> GetWriter(const std::string& kb, bool create);
  bool OpenSegment(Writer* writer, std::string* error);  // writer->mutex held
  void RecordFsync(double micros);

  WalOptions options_;
  bool ok_ = false;
  std::string init_error_;

  mutable std::mutex mutex_;  // guards writers_
  std::map<std::string, std::shared_ptr<Writer>> writers_;

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> segments_deleted_{0};
  mutable std::mutex fsync_stats_mutex_;
  std::vector<double> fsync_samples_;  // ring, kMaxFsyncSamples entries
  size_t fsync_sample_next_ = 0;
  static constexpr size_t kMaxFsyncSamples = 4096;
};

}  // namespace rwl::service

#endif  // RWL_SERVICE_WAL_H_
