// Log-shipping replication for the KB service.
//
// The primary publishes every journaled WAL record (already encoded as
// one NDJSON line) to a ReplicationHub from inside the catalog's
// version-assignment critical section, so the ship order IS the version
// order.  A replica process connects over the ordinary NDJSON transport,
// sends {"op":"TAIL"}, receives one SNAPSHOT record per live KB as a
// bootstrap (serialized from the primary's staged tails AFTER the
// subscription is registered — any mutation that races the bootstrap is
// also in the stream and deduplicated by version), then applies the live
// tail through ReplicaApplier: the same ApplyWalRecord path crash
// recovery uses, through the same KbCatalog the primary runs, so replica
// answers are bit-identical to primary answers at the same version.
//
// Version-vector handoff: primary version numbers are NOT replica catalog
// versions (the replica's catalog assigns its own), so the applier keeps
// a per-KB map {primary_version -> local_version}.  A client that acked
// version V on the primary sends min_version=V to the replica; the
// replica waits until applied_primary >= V and pins the mapped local
// version — read-your-writes holds across the handoff.
//
// Shipping is asynchronous and deliberately so: the hub publishes at ack
// time (WAL order fixed) while the primary's own fsync may still be in
// flight, so a replica can briefly lead the primary's durable state.  A
// primary crash + recovery can therefore lose a suffix the replica saw;
// the replica re-bootstraps from the recovered primary on reconnect.
#ifndef RWL_SERVICE_REPLICA_H_
#define RWL_SERVICE_REPLICA_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/service/catalog.h"
#include "src/service/wal.h"

namespace rwl::service {

// One replica's live feed.  The hub pushes encoded lines; the serving
// thread pops them with Next.  Bounded: a replica that cannot keep up is
// closed (it reconnects and re-bootstraps) rather than letting the
// primary buffer without limit.
class ReplicationSubscription {
 public:
  static constexpr size_t kMaxQueuedLines = 65536;

  // Pops the next line, waiting up to timeout_ms.  False on timeout (out
  // stays untouched — poll again) or when closed with the queue drained.
  bool Next(std::string* line, double timeout_ms);

  // True once the hub dropped this subscription (overflow or shutdown)
  // AND every queued line has been consumed.
  bool closed() const;

 private:
  friend class ReplicationHub;
  bool Push(const std::string& line);  // false = overflow (now closed)
  void Close();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  bool closed_ = false;
};

// Fan-out point on the primary.  Publish is called under the catalog
// mutex (the version hook), so it must stay cheap: one string copy per
// subscriber onto an in-memory queue.
class ReplicationHub {
 public:
  std::shared_ptr<ReplicationSubscription> Subscribe();
  void Unsubscribe(const std::shared_ptr<ReplicationSubscription>& sub);
  void Publish(const std::string& line);
  // Subscribers currently attached (drops overflowed ones on the way).
  size_t active() const;
  // True when at least one subscriber is attached — lets the publish
  // hook skip record encoding entirely on a replica-less primary.
  bool HasSubscribers() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<ReplicationSubscription>> subs_;
};

// The replica side: applies shipped lines to a local catalog and tracks
// the primary->local version vector.
class ReplicaApplier {
 public:
  explicit ReplicaApplier(KbCatalog* catalog) : catalog_(catalog) {}

  // Decodes and applies one shipped line.  Records with a version at or
  // below the KB's applied primary version are skipped (bootstrap overlap
  // dedup); DROP always applies.  Returns false on a decode/apply error
  // (the tailer logs and drops the connection to re-bootstrap).
  bool ApplyLine(const std::string& line, std::string* error);

  // Waits until `kb` has applied primary version >= `version`; on success
  // *local_version is the mapped local catalog version to pin (the local
  // version of the newest applied record, which is >= the mapping of
  // `version` — pinning it preserves read-your-writes).  False on timeout
  // or when the KB vanished (dropped on the primary).
  bool WaitForPrimaryVersion(const std::string& kb, uint64_t version,
                             double timeout_ms, uint64_t* local_version) const;

  struct KbVersions {
    uint64_t primary = 0;  // newest applied primary version
    uint64_t local = 0;    // its local catalog version
  };
  std::map<std::string, KbVersions> AppliedVersions() const;

  uint64_t records_applied() const;
  uint64_t records_skipped() const;

 private:
  KbCatalog* catalog_;
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::map<std::string, KbVersions> applied_;
  uint64_t records_applied_ = 0;
  uint64_t records_skipped_ = 0;
};

}  // namespace rwl::service

#endif  // RWL_SERVICE_REPLICA_H_
