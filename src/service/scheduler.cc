#include "src/service/scheduler.h"

#include <utility>

namespace rwl::service {

QueryScheduler::QueryScheduler(const SchedulerOptions& options)
    : options_(options), pool_(options.num_threads) {}

QueryScheduler::~QueryScheduler() = default;  // pool_ drains, then joins

bool QueryScheduler::Submit(const std::string& tenant,
                            std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::deque<std::function<void()>>& queue = queues_[tenant];
    if (queue.size() >= options_.max_queue_depth) {
      ++stats_.rejected;
      if (queue.empty()) queues_.erase(tenant);
      return false;
    }
    queue.push_back(std::move(job));
    ++stats_.submitted;
    ++stats_.queued;
  }
  // One pool ticket per queued job: each ticket serves whichever tenant
  // the round-robin cursor selects, so queue order and service order can
  // differ per tenant flood — that is the fairness.
  pool_.Submit([this] { RunNext(); });
  return true;
}

void QueryScheduler::RunNext() {
  std::function<void()> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queues_.empty()) return;  // job count == ticket count; defensive
    // Round-robin: first tenant strictly after the cursor, wrapping.
    auto it = queues_.upper_bound(cursor_);
    if (it == queues_.end()) it = queues_.begin();
    cursor_ = it->first;
    job = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    --stats_.queued;
    ++stats_.running;
  }
  job();
  std::lock_guard<std::mutex> lock(mutex_);
  --stats_.running;
  ++stats_.completed;
}

QueryScheduler::Stats QueryScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats = stats_;
  stats.threads = pool_.num_threads();
  return stats;
}

}  // namespace rwl::service
