#include "src/service/replica.h"

#include <algorithm>
#include <chrono>

namespace rwl::service {

namespace {
std::chrono::steady_clock::time_point DeadlineFromMs(double timeout_ms) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(
                 timeout_ms < 0 ? 0.0 : timeout_ms));
}
}  // namespace

bool ReplicationSubscription::Next(std::string* line, double timeout_ms) {
  const auto deadline = DeadlineFromMs(timeout_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!lines_.empty()) {
      *line = std::move(lines_.front());
      lines_.pop_front();
      return true;
    }
    if (closed_) return false;
    if (timeout_ms < 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      if (lines_.empty()) return false;
    }
  }
}

bool ReplicationSubscription::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_ && lines_.empty();
}

bool ReplicationSubscription::Push(const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    if (lines_.size() >= kMaxQueuedLines) {
      // The replica fell too far behind for in-memory buffering; cut it
      // off so it reconnects and re-bootstraps from fresh snapshots.
      closed_ = true;
      cv_.notify_all();
      return false;
    }
    lines_.push_back(line);
  }
  cv_.notify_all();
  return true;
}

void ReplicationSubscription::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::shared_ptr<ReplicationSubscription> ReplicationHub::Subscribe() {
  auto sub = std::make_shared<ReplicationSubscription>();
  std::lock_guard<std::mutex> lock(mutex_);
  subs_.push_back(sub);
  return sub;
}

void ReplicationHub::Unsubscribe(
    const std::shared_ptr<ReplicationSubscription>& sub) {
  if (sub == nullptr) return;
  sub->Close();
  std::lock_guard<std::mutex> lock(mutex_);
  subs_.erase(std::remove(subs_.begin(), subs_.end(), sub), subs_.end());
}

void ReplicationHub::Publish(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < subs_.size();) {
    if (subs_[i]->Push(line)) {
      ++i;
    } else {
      subs_.erase(subs_.begin() + i);  // overflowed or closed
    }
  }
}

size_t ReplicationHub::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return subs_.size();
}

bool ReplicationHub::HasSubscribers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !subs_.empty();
}

bool ReplicaApplier::ApplyLine(const std::string& line, std::string* error) {
  WalRecord record;
  if (!DecodeWalRecord(line, &record, error)) return false;
  if (record.op == WalRecord::Op::kDrop) {
    // DROP carries no version (the chain is gone); always apply.
    catalog_->Drop(record.kb);
    std::lock_guard<std::mutex> lock(mutex_);
    applied_.erase(record.kb);
    ++records_applied_;
    cv_.notify_all();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = applied_.find(record.kb);
    if (it != applied_.end() && record.version <= it->second.primary) {
      // Bootstrap/stream overlap: a record published while the bootstrap
      // snapshot (which already contains it) was being serialized.
      ++records_skipped_;
      return true;
    }
  }
  uint64_t local_version = 0;
  if (!ApplyWalRecord(catalog_, record, &local_version, error)) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    KbVersions& versions = applied_[record.kb];
    versions.primary = record.version;
    versions.local = local_version;
    ++records_applied_;
  }
  cv_.notify_all();
  return true;
}

bool ReplicaApplier::WaitForPrimaryVersion(const std::string& kb,
                                           uint64_t version, double timeout_ms,
                                           uint64_t* local_version) const {
  const auto deadline = DeadlineFromMs(timeout_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = applied_.find(kb);
    if (it != applied_.end() && it->second.primary >= version) {
      *local_version = it->second.local;
      return true;
    }
    if (timeout_ms < 0) {
      cv_.wait(lock);
    } else if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      it = applied_.find(kb);
      if (it != applied_.end() && it->second.primary >= version) {
        *local_version = it->second.local;
        return true;
      }
      return false;
    }
  }
}

std::map<std::string, ReplicaApplier::KbVersions>
ReplicaApplier::AppliedVersions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_;
}

uint64_t ReplicaApplier::records_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_applied_;
}

uint64_t ReplicaApplier::records_skipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_skipped_;
}

}  // namespace rwl::service
