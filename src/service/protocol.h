// The rwld wire protocol: newline-delimited JSON, one request or response
// object per line.
//
// Requests (fields beyond `op` are op-specific; `id` is echoed back):
//
//   {"id":1,"op":"LOAD","kb":"med","text":"#(Hep(x)|Jaun(x))[x] ~= 0.8",
//    "declare":["Eric"]}
//   {"id":2,"op":"ASSERT","kb":"med","text":"Jaun(Eric)"}
//   {"id":3,"op":"RETRACT","kb":"med","text":"Jaun(Eric)"}
//   {"id":4,"op":"QUERY","kb":"med","q":"Hep(Eric)",
//    "deadline_ms":50,"budget":1e7,"plan":"cost",
//    "engine":"gmp90","interval":0.9,
//    "min_version":12}                                   (options optional)
//   {"id":5,"op":"BATCH","kb":"med","queries":["Hep(Eric)","Jaun(Eric)"]}
//   {"id":6,"op":"STATS"}
//   {"id":7,"op":"SHUTDOWN"}
//   {"id":8,"op":"TAIL"}
//   {"id":9,"op":"WAIT","kb":"med","min_version":12}
//
// TAIL turns the connection into a replication feed: the daemon replies
// {"id":8,"ok":true,"tail":true}, then streams one WAL record per line
// (wal.h format) — first a SNAPSHOT bootstrap per live KB, then every
// mutation as it acks — until the connection closes.  A replica rwld
// started with --replica-of consumes this feed (replica.h).
//
// Read-your-writes: mutations ack as soon as their WAL order is fixed;
// the successor snapshot publishes asynchronously.  The daemon tracks the
// highest acked version per KB per connection (SessionState below) and
// floors every QUERY/BATCH's min_version with it, so a connection always
// observes its own mutations even mid-publication.  The optional
// "min_version" request field raises the floor further (e.g. to read a
// version acked on another connection).
//
// WAIT blocks until the daemon holds the named version — on a replica,
// until the feed has applied that PRIMARY version (the response carries
// the mapped local version); on a primary, until it publishes.  It runs
// no query, so its round trip is pure replication/publication lag —
// rwlload's replica-lag probe — independent of how expensive the
// tenant's queries happen to be on the new version.
//
// Responses:
//
//   {"id":1,"ok":true,"kb":"med","version":12}                 (mutations)
//   {"id":4,"ok":true,"kb":"med","version":12,"status":"point",
//    "value":0.8,"method":"...","converged":true,"latency_ms":0.41}
//   {"id":5,"ok":true,"answers":[{...},{...}]}                 (batch)
//   {"id":6,"ok":true,"kbs":[...],"scheduler":{...}}           (stats)
//   {"id":4,"ok":false,"error":"..."}                          (any failure)
//
// The parser accepts exactly the JSON this protocol needs (flat objects,
// string arrays, numbers, bools, null, string escapes) — no dependency.
#ifndef RWL_SERVICE_PROTOCOL_H_
#define RWL_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/service/service.h"

namespace rwl::service {

// A parsed JSON value (object keys keep insertion order irrelevant — the
// protocol looks fields up by name).
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> items;                           // kArray
  std::vector<std::pair<std::string, Json>> fields;  // kObject

  // Field lookup on an object; null when absent or not an object.
  const Json* Find(const std::string& key) const;
};

// Parses one complete JSON value; trailing non-whitespace is an error.
bool ParseJson(const std::string& text, Json* out, std::string* error);

std::string JsonEscape(const std::string& s);

struct Request {
  enum class Op {
    kLoad,
    kAssert,
    kRetract,
    kQuery,
    kBatch,
    kStats,
    kShutdown,
    kTail,
    kWait,
  };
  Op op = Op::kStats;
  int64_t id = 0;
  std::string kb;
  std::string text;                  // LOAD/ASSERT/RETRACT payload
  std::vector<std::string> declare;  // LOAD extra constants
  std::string query;                 // QUERY
  std::vector<std::string> queries;  // BATCH
  RequestOptions options;  // deadline_ms / budget / plan / fixed_n /
                           // engine / interval
};

// Parses one request line.  On failure *error carries a message suitable
// for an error response.
bool ParseRequest(const std::string& line, Request* out, std::string* error);

// Per-connection read-your-writes state: the highest acked mutation
// version per KB seen on this connection.  The daemon records every
// successful mutation ack and floors QUERY/BATCH min_version with it
// before dispatch (each connection serves one request at a time, so no
// locking).
struct SessionState {
  std::map<std::string, uint64_t> acked_versions;

  void RecordAck(const std::string& kb, uint64_t version) {
    uint64_t& acked = acked_versions[kb];
    if (version > acked) acked = version;
  }
  uint64_t AckedVersion(const std::string& kb) const {
    auto it = acked_versions.find(kb);
    return it == acked_versions.end() ? 0 : it->second;
  }
};

// ---- response serialization ----

std::string ErrorResponse(int64_t id, const std::string& error);
std::string MutationResponse(int64_t id, const std::string& kb,
                             const KbService::MutationResult& result);
// One answer object (used standalone for QUERY, nested for BATCH).
std::string AnswerJson(const KbService::QueryResult& result);
std::string QueryResponse(int64_t id, const KbService::QueryResult& result);
std::string BatchResponse(int64_t id,
                          const std::vector<KbService::QueryResult>& results);
// `replica` (optional) adds the replica's applied version vector — set by
// a --replica-of daemon so clients can observe lag.
class ReplicaApplier;
std::string StatsResponse(int64_t id, const KbService& service,
                          const ReplicaApplier* replica = nullptr);
std::string ShutdownResponse(int64_t id);
std::string TailAckResponse(int64_t id);
// WAIT success: `version` is the version now held locally (on a replica,
// the local version the requested primary version mapped to).
std::string WaitResponse(int64_t id, const std::string& kb,
                         uint64_t version);

}  // namespace rwl::service

#endif  // RWL_SERVICE_PROTOCOL_H_
