#include "src/service/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/logic/parser.h"
#include "src/logic/printer.h"
#include "src/service/protocol.h"

namespace rwl::service {
namespace {

using Clock = std::chrono::steady_clock;

const char* OpName(WalRecord::Op op) {
  switch (op) {
    case WalRecord::Op::kLoad: return "LOAD";
    case WalRecord::Op::kAssert: return "ASSERT";
    case WalRecord::Op::kRetract: return "RETRACT";
    case WalRecord::Op::kSnapshot: return "SNAPSHOT";
    case WalRecord::Op::kDrop: return "DROP";
  }
  return "?";
}

// Versions are uint64 and a JSON number is a double (53-bit mantissa), so
// they travel as decimal strings.
std::string U64(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

bool ParseU64(const Json* field, uint64_t* out) {
  if (field == nullptr) return false;
  if (field->type == Json::Type::kString) {
    char* end = nullptr;
    *out = std::strtoull(field->string.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && !field->string.empty();
  }
  if (field->type == Json::Type::kNumber && field->number >= 0) {
    *out = static_cast<uint64_t>(field->number);
    return true;
  }
  return false;
}

void AppendStringArray(std::ostringstream* out,
                       const std::vector<std::string>& items) {
  *out << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out << ",";
    *out << "\"" << JsonEscape(items[i]) << "\"";
  }
  *out << "]";
}

void AppendSymbolArray(std::ostringstream* out,
                       const std::vector<std::pair<std::string, int>>& items) {
  *out << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) *out << ",";
    *out << "[\"" << JsonEscape(items[i].first) << "\"," << items[i].second
         << "]";
  }
  *out << "]";
}

bool ParseSymbolArray(const Json* field,
                      std::vector<std::pair<std::string, int>>* out,
                      std::string* error) {
  if (field == nullptr) return true;  // optional (empty)
  if (field->type != Json::Type::kArray) {
    *error = "symbol list must be an array";
    return false;
  }
  for (const Json& item : field->items) {
    if (item.type != Json::Type::kArray || item.items.size() != 2 ||
        item.items[0].type != Json::Type::kString ||
        item.items[1].type != Json::Type::kNumber) {
      *error = "symbol entry must be [name, arity]";
      return false;
    }
    out->emplace_back(item.items[0].string,
                      static_cast<int>(item.items[1].number));
  }
  return true;
}

// Filesystem-safe, reversible encoding of a KB name: [A-Za-z0-9_.-] pass
// through, everything else becomes %XX.
std::string EscapeKbName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (unsigned char c : name) {
    if (std::isalnum(c) || c == '_' || c == '.' || c == '-') {
      out += static_cast<char>(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    }
  }
  return out.empty() ? std::string("%") : out;
}

bool EnsureDir(const std::string& path, std::string* error) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  *error = "mkdir " + path + ": " + std::strerror(errno);
  return false;
}

void FsyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string SegmentName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06" PRIu64 ".ndjson", index);
  return buf;
}

std::string SnapshotName(uint64_t version) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%09" PRIu64 ".ndjson", version);
  return buf;
}

// Parses "wal-<N>.ndjson" / "snap-<N>.ndjson"; returns false otherwise.
bool ParseIndexedName(const std::string& name, const char* prefix,
                      uint64_t* index) {
  size_t prefix_len = std::strlen(prefix);
  if (name.size() <= prefix_len + 7 ||
      name.compare(0, prefix_len, prefix) != 0 ||
      name.compare(name.size() - 7, 7, ".ndjson") != 0) {
    return false;
  }
  std::string digits = name.substr(prefix_len, name.size() - prefix_len - 7);
  if (digits.empty()) return false;
  char* end = nullptr;
  *index = std::strtoull(digits.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ListDir(const std::string& path, std::vector<std::string>* names,
             std::string* error) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    *error = "opendir " + path + ": " + std::strerror(errno);
    return false;
  }
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names->push_back(name);
  }
  ::closedir(dir);
  std::sort(names->begin(), names->end());
  return true;
}

}  // namespace

// ---- record encode / decode ----

std::string EncodeWalRecord(const WalRecord& record) {
  std::ostringstream out;
  out << "{\"op\":\"" << OpName(record.op) << "\",\"kb\":\""
      << JsonEscape(record.kb) << "\"";
  if (record.op != WalRecord::Op::kDrop) {
    out << ",\"version\":\"" << U64(record.version) << "\"";
  }
  switch (record.op) {
    case WalRecord::Op::kLoad:
      out << ",\"text\":\"" << JsonEscape(record.text) << "\"";
      if (!record.declare.empty()) {
        out << ",\"declare\":";
        AppendStringArray(&out, record.declare);
      }
      break;
    case WalRecord::Op::kAssert:
    case WalRecord::Op::kRetract:
      out << ",\"text\":\"" << JsonEscape(record.text) << "\"";
      break;
    case WalRecord::Op::kSnapshot:
      out << ",\"fingerprint\":\"" << U64(record.fingerprint) << "\"";
      out << ",\"predicates\":";
      AppendSymbolArray(&out, record.predicates);
      out << ",\"functions\":";
      AppendSymbolArray(&out, record.functions);
      out << ",\"conjuncts\":";
      AppendStringArray(&out, record.conjuncts);
      break;
    case WalRecord::Op::kDrop:
      break;
  }
  out << "}";
  return out.str();
}

bool DecodeWalRecord(const std::string& line, WalRecord* out,
                     std::string* error) {
  Json json;
  if (!ParseJson(line, &json, error)) return false;
  if (json.type != Json::Type::kObject) {
    *error = "record must be a JSON object";
    return false;
  }
  const Json* op = json.Find("op");
  if (op == nullptr || op->type != Json::Type::kString) {
    *error = "record missing 'op'";
    return false;
  }
  if (op->string == "LOAD") out->op = WalRecord::Op::kLoad;
  else if (op->string == "ASSERT") out->op = WalRecord::Op::kAssert;
  else if (op->string == "RETRACT") out->op = WalRecord::Op::kRetract;
  else if (op->string == "SNAPSHOT") out->op = WalRecord::Op::kSnapshot;
  else if (op->string == "DROP") out->op = WalRecord::Op::kDrop;
  else {
    *error = "unknown record op '" + op->string + "'";
    return false;
  }
  const Json* kb = json.Find("kb");
  if (kb == nullptr || kb->type != Json::Type::kString) {
    *error = "record missing 'kb'";
    return false;
  }
  out->kb = kb->string;
  if (out->op != WalRecord::Op::kDrop &&
      !ParseU64(json.Find("version"), &out->version)) {
    *error = "record missing 'version'";
    return false;
  }
  const Json* text = json.Find("text");
  if (text != nullptr && text->type == Json::Type::kString) {
    out->text = text->string;
  } else if (out->op == WalRecord::Op::kLoad ||
             out->op == WalRecord::Op::kAssert ||
             out->op == WalRecord::Op::kRetract) {
    *error = "record missing 'text'";
    return false;
  }
  const Json* declare = json.Find("declare");
  if (declare != nullptr && declare->type == Json::Type::kArray) {
    for (const Json& item : declare->items) {
      if (item.type != Json::Type::kString) {
        *error = "'declare' must be an array of strings";
        return false;
      }
      out->declare.push_back(item.string);
    }
  }
  if (out->op == WalRecord::Op::kSnapshot) {
    if (!ParseU64(json.Find("fingerprint"), &out->fingerprint)) {
      *error = "snapshot missing 'fingerprint'";
      return false;
    }
    if (!ParseSymbolArray(json.Find("predicates"), &out->predicates, error) ||
        !ParseSymbolArray(json.Find("functions"), &out->functions, error)) {
      return false;
    }
    const Json* conjuncts = json.Find("conjuncts");
    if (conjuncts != nullptr) {
      if (conjuncts->type != Json::Type::kArray) {
        *error = "'conjuncts' must be an array of strings";
        return false;
      }
      for (const Json& item : conjuncts->items) {
        if (item.type != Json::Type::kString) {
          *error = "'conjuncts' must be an array of strings";
          return false;
        }
        out->conjuncts.push_back(item.string);
      }
    }
  }
  return true;
}

WalRecord MakeSnapshotRecord(const std::string& kb_name, uint64_t version,
                             const KnowledgeBase& kb) {
  WalRecord record;
  record.op = WalRecord::Op::kSnapshot;
  record.kb = kb_name;
  record.version = version;
  record.fingerprint = kb.vocabulary().Fingerprint();
  for (const auto& predicate : kb.vocabulary().predicates()) {
    record.predicates.emplace_back(predicate.name, predicate.arity);
  }
  for (const auto& function : kb.vocabulary().functions()) {
    record.functions.emplace_back(function.name, function.arity);
  }
  record.conjuncts.reserve(kb.conjuncts().size());
  for (size_t i = 0; i < kb.conjuncts().size(); ++i) {
    record.conjuncts.push_back(logic::ToString(kb.conjuncts()[i]));
  }
  return record;
}

bool KbFromSnapshot(const WalRecord& record, KnowledgeBase* out,
                    std::string* error) {
  KnowledgeBase kb;
  // Symbols first, in recorded (registration) order: ids — and therefore
  // the fingerprint, compiled programs and world tables — come out
  // identical to the snapshotted vocabulary's.
  for (const auto& [name, arity] : record.predicates) {
    kb.mutable_vocabulary().AddPredicate(name, arity);
  }
  for (const auto& [name, arity] : record.functions) {
    kb.mutable_vocabulary().AddFunction(name, arity);
  }
  for (const std::string& conjunct : record.conjuncts) {
    if (!kb.AddParsed(conjunct, error)) {
      *error = "snapshot conjunct '" + conjunct + "': " + *error;
      return false;
    }
  }
  if (kb.vocabulary().Fingerprint() != record.fingerprint) {
    *error = "snapshot vocabulary fingerprint mismatch (corrupt snapshot?)";
    return false;
  }
  *out = std::move(kb);
  return true;
}

bool ApplyRecordToState(const WalRecord& record,
                        std::unique_ptr<KnowledgeBase>* state,
                        std::string* error) {
  switch (record.op) {
    case WalRecord::Op::kLoad: {
      auto kb = std::make_unique<KnowledgeBase>();
      if (!kb->AddParsed(record.text, error)) return false;
      for (const std::string& constant : record.declare) {
        if (constant.empty()) {
          *error = "empty constant declaration";
          return false;
        }
        kb->mutable_vocabulary().AddConstant(constant);
      }
      *state = std::move(kb);
      return true;
    }
    case WalRecord::Op::kSnapshot: {
      auto kb = std::make_unique<KnowledgeBase>();
      if (!KbFromSnapshot(record, kb.get(), error)) return false;
      *state = std::move(kb);
      return true;
    }
    case WalRecord::Op::kAssert:
      if (*state == nullptr) {
        *error = "ASSERT before any LOAD/SNAPSHOT";
        return false;
      }
      return (*state)->AddParsed(record.text, error);
    case WalRecord::Op::kRetract: {
      if (*state == nullptr) {
        *error = "RETRACT before any LOAD/SNAPSHOT";
        return false;
      }
      logic::ParseResult parsed = logic::ParseFormula(record.text);
      if (!parsed.ok()) {
        *error = "retract parse error: " + parsed.error;
        return false;
      }
      size_t removed = RetractConjuncts(
          state->get(), [&](size_t, const logic::FormulaPtr& conjunct) {
            return conjunct == parsed.formula;
          });
      if (removed == 0) {
        *error = "no conjunct matches '" + record.text + "'";
        return false;
      }
      return true;
    }
    case WalRecord::Op::kDrop:
      state->reset();
      return true;
  }
  *error = "unreachable";
  return false;
}

bool ApplyWalRecord(KbCatalog* catalog, const WalRecord& record,
                    uint64_t* local_version, std::string* error) {
  *local_version = 0;
  switch (record.op) {
    case WalRecord::Op::kLoad:
    case WalRecord::Op::kSnapshot: {
      std::unique_ptr<KnowledgeBase> state;
      if (!ApplyRecordToState(record, &state, error)) return false;
      std::shared_ptr<const KbSnapshot> snapshot =
          catalog->Load(record.kb, std::move(*state));
      *local_version = snapshot->version;
      return true;
    }
    case WalRecord::Op::kAssert:
    case WalRecord::Op::kRetract: {
      MutationTicket ticket =
          catalog->Mutate(record.kb, [&](KnowledgeBase* kb,
                                         std::string* edit_error) {
            // Route through the state-apply helper so replica, recovery
            // and live semantics cannot drift.
            auto holder = std::make_unique<KnowledgeBase>(std::move(*kb));
            std::unique_ptr<KnowledgeBase> state = std::move(holder);
            if (!ApplyRecordToState(record, &state, edit_error)) return false;
            *kb = std::move(*state);
            return true;
          });
      if (!ticket.ok) {
        *error = ticket.error;
        return false;
      }
      *local_version = ticket.version;
      return true;
    }
    case WalRecord::Op::kDrop:
      catalog->Drop(record.kb);
      return true;
  }
  *error = "unreachable";
  return false;
}

// ---- KbWal ----

KbWal::KbWal(const WalOptions& options) : options_(options) {
  fsync_samples_.reserve(kMaxFsyncSamples);
  ok_ = EnsureDir(options_.dir, &init_error_);
}

KbWal::~KbWal() {
  // Flush every pending buffer so a clean shutdown loses nothing even
  // when the last writer never called Sync (it always does — belt and
  // braces for abnormal teardown order).
  std::map<std::string, std::shared_ptr<Writer>> writers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    writers = writers_;
  }
  for (auto& [name, writer] : writers) {
    std::lock_guard<std::mutex> lock(writer->mutex);
    if (writer->fd >= 0) {
      if (!writer->pending.empty()) {
        ssize_t n = ::write(writer->fd, writer->pending.data(),
                            writer->pending.size());
        if (n > 0) writer->segment_bytes += static_cast<size_t>(n);
      }
      (void)!::ftruncate(writer->fd,
                         static_cast<off_t>(writer->segment_bytes));
      ::fsync(writer->fd);
      ::close(writer->fd);
      writer->fd = -1;
    }
  }
}

std::shared_ptr<KbWal::Writer> KbWal::GetWriter(const std::string& kb,
                                                bool create) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = writers_.find(kb);
  if (it != writers_.end()) return it->second;
  if (!create) return nullptr;
  auto writer = std::make_shared<Writer>();
  writer->dir = options_.dir + "/" + EscapeKbName(kb);
  std::string dir_error;
  if (!EnsureDir(writer->dir, &dir_error)) return nullptr;
  // Resume after the highest existing segment so recovery-era files are
  // never appended to (their records may belong to an older version
  // space).
  std::vector<std::string> names;
  std::string list_error;
  uint64_t max_index = 0;
  if (ListDir(writer->dir, &names, &list_error)) {
    for (const std::string& name : names) {
      uint64_t index = 0;
      if (ParseIndexedName(name, "wal-", &index)) {
        max_index = std::max(max_index, index);
      }
    }
  }
  writer->segment_index = max_index;  // OpenSegment pre-increments
  writers_.emplace(kb, writer);
  return writer;
}

bool KbWal::OpenSegment(Writer* writer, std::string* error) {
  if (writer->fd >= 0) return true;
  ++writer->segment_index;
  std::string path = writer->dir + "/" + SegmentName(writer->segment_index);
  writer->fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0666);
  if (writer->fd < 0) {
    *error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  writer->segment_bytes = 0;
  // Preallocate the whole segment with REAL zero blocks (not fallocate's
  // unwritten extents) so steady-state appends rewrite already-written
  // blocks in place: fdatasync then has no metadata to commit — no i_size
  // update, no unwritten-extent conversion — and issues a pure data flush
  // that never waits on a jbd2 journal commit.  On ext4 that is the
  // difference between a multi-millisecond and a sub-millisecond ack-path
  // fsync tail.  The one-time cost lands here, off the per-ack path, once
  // per segment.  Every close path truncates back to the bytes actually
  // written; after a crash the NUL padding sits behind the last record
  // and recovery skips it.  A short write is fine: appends past the
  // preallocated region fall back to extending writes, just with a
  // slower tail.
  {
    std::string zeros(std::min<size_t>(options_.segment_bytes, 1 << 20),
                      '\0');
    size_t filled = 0;
    while (filled < options_.segment_bytes) {
      size_t chunk = std::min(zeros.size(), options_.segment_bytes - filled);
      ssize_t n = ::pwrite(writer->fd, zeros.data(), chunk,
                           static_cast<off_t>(filled));
      if (n <= 0) break;
      filled += static_cast<size_t>(n);
    }
    ::fsync(writer->fd);  // flush the padding now, not under the first ack
  }
  FsyncDir(writer->dir);  // make the new segment's name durable
  return true;
}

uint64_t KbWal::Append(const std::string& kb, const std::string& line) {
  std::shared_ptr<Writer> writer = GetWriter(kb, /*create=*/true);
  if (writer == nullptr) return 0;
  std::lock_guard<std::mutex> lock(writer->mutex);
  uint64_t seq = writer->next_seq++;
  writer->pending += line;
  writer->pending += '\n';
  writer->pending_seq = seq;
  ++writer->appends_since_snapshot;
  appends_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

bool KbWal::Sync(const std::string& kb, uint64_t seq, std::string* error) {
  std::shared_ptr<Writer> writer = GetWriter(kb, /*create=*/false);
  if (writer == nullptr) {
    *error = "no WAL writer for '" + kb + "'";
    return false;
  }
  std::unique_lock<std::mutex> lock(writer->mutex);
  while (writer->durable_seq < seq) {
    if (writer->syncing) {
      writer->cv.wait(lock);
      continue;
    }
    // Become the group-commit leader: take the whole pending buffer (ours
    // and every record buffered behind us) through one write + fsync.
    if (!OpenSegment(writer.get(), error)) return false;
    std::string batch;
    batch.swap(writer->pending);
    const uint64_t batch_seq = writer->pending_seq;
    const int fd = writer->fd;
    writer->syncing = true;
    lock.unlock();

    bool write_ok = true;
    size_t written = 0;
    while (written < batch.size()) {
      ssize_t n = ::write(fd, batch.data() + written, batch.size() - written);
      if (n <= 0) {
        write_ok = false;
        break;
      }
      written += static_cast<size_t>(n);
    }
    const Clock::time_point fsync_start = Clock::now();
    if (write_ok && ::fdatasync(fd) != 0) write_ok = false;
    const double fsync_us =
        std::chrono::duration<double, std::micro>(Clock::now() - fsync_start)
            .count();
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    RecordFsync(fsync_us);

    lock.lock();
    writer->syncing = false;
    if (!write_ok) {
      writer->cv.notify_all();
      *error = std::string("WAL write/fsync failed: ") + std::strerror(errno);
      return false;
    }
    writer->durable_seq = std::max(writer->durable_seq, batch_seq);
    writer->segment_bytes += batch.size();
    // Rotate once the segment exceeds the cap; the next leader opens the
    // successor segment lazily.  Drop any preallocated tail so closed
    // segments end exactly at their last record.
    if (writer->segment_bytes >= options_.segment_bytes) {
      (void)!::ftruncate(writer->fd,
                         static_cast<off_t>(writer->segment_bytes));
      ::close(writer->fd);
      writer->fd = -1;
    }
    writer->cv.notify_all();
  }
  return true;
}

bool KbWal::SnapshotDue(const std::string& kb) const {
  if (options_.snapshot_every <= 0) return false;
  std::shared_ptr<Writer> writer =
      const_cast<KbWal*>(this)->GetWriter(kb, /*create=*/false);
  if (writer == nullptr) return false;
  std::lock_guard<std::mutex> lock(writer->mutex);
  return writer->appends_since_snapshot >=
         static_cast<uint64_t>(options_.snapshot_every);
}

bool KbWal::WriteSnapshot(const std::string& kb, uint64_t version,
                          const KnowledgeBase& state, std::string* error) {
  std::shared_ptr<Writer> writer = GetWriter(kb, /*create=*/true);
  if (writer == nullptr) {
    *error = "cannot create WAL directory for '" + kb + "'";
    return false;
  }
  // One snapshot at a time per KB (the service's snapshot worker is
  // single-threaded; recovery runs before it starts — this is a guard).
  std::lock_guard<std::mutex> snapshot_lock(writer->snapshot_mutex);

  // Rotate first: after this point every record in a CLOSED segment was
  // appended before `version` was staged, so the snapshot covers it and
  // the closed segments can be deleted once the snapshot is durable.
  uint64_t current_index;
  {
    std::lock_guard<std::mutex> lock(writer->mutex);
    if (writer->fd >= 0) {
      // Pending-but-unsynced bytes belong to unacked mutations; flush so
      // the close loses nothing (they are > version and stay replayable).
      if (!writer->pending.empty()) {
        size_t written = 0;
        while (written < writer->pending.size()) {
          ssize_t n = ::write(writer->fd, writer->pending.data() + written,
                              writer->pending.size() - written);
          if (n <= 0) break;
          written += static_cast<size_t>(n);
        }
        // durable_seq intentionally NOT advanced: only Sync acks.
        writer->pending.clear();
        writer->segment_bytes += written;
      }
      if (writer->segment_bytes > 0) {
        // Truncate the preallocated tail, then make the new size durable
        // BEFORE the close: a closed mid-log segment must never carry
        // padding (recovery tolerates padding only as a trailing run).
        (void)!::ftruncate(writer->fd,
                           static_cast<off_t>(writer->segment_bytes));
        ::fdatasync(writer->fd);
        ::close(writer->fd);
        writer->fd = -1;
      }
    }
    current_index = writer->segment_index;
    writer->appends_since_snapshot = 0;
  }

  // Serialize + write to a temp file, fsync, atomic rename.
  const std::string line = EncodeWalRecord(MakeSnapshotRecord(kb, version,
                                                              state));
  const std::string tmp_path = writer->dir + "/snap-tmp";
  const std::string final_path = writer->dir + "/" + SnapshotName(version);
  int fd = ::open(tmp_path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0666);
  if (fd < 0) {
    *error = "open " + tmp_path + ": " + std::strerror(errno);
    return false;
  }
  std::string payload = line + "\n";
  size_t written = 0;
  bool ok = true;
  while (written < payload.size()) {
    ssize_t n = ::write(fd, payload.data() + written,
                        payload.size() - written);
    if (n <= 0) {
      ok = false;
      break;
    }
    written += static_cast<size_t>(n);
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (!ok || ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    *error = "snapshot write failed: " + std::string(std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return false;
  }
  FsyncDir(writer->dir);
  snapshots_.fetch_add(1, std::memory_order_relaxed);

  // Truncate: closed segments (index <= current_index, no longer open)
  // and older snapshots are now redundant.
  std::vector<std::string> names;
  std::string list_error;
  if (ListDir(writer->dir, &names, &list_error)) {
    uint64_t open_index;
    {
      std::lock_guard<std::mutex> lock(writer->mutex);
      open_index = writer->fd >= 0 ? writer->segment_index : 0;
    }
    for (const std::string& name : names) {
      uint64_t index = 0;
      if (ParseIndexedName(name, "wal-", &index) &&
          index <= current_index && index != open_index) {
        if (::unlink((writer->dir + "/" + name).c_str()) == 0) {
          segments_deleted_.fetch_add(1, std::memory_order_relaxed);
        }
      } else if (ParseIndexedName(name, "snap-", &index) && index < version) {
        ::unlink((writer->dir + "/" + name).c_str());
      }
    }
    FsyncDir(writer->dir);
  }
  return true;
}

void KbWal::Remove(const std::string& kb) {
  std::shared_ptr<Writer> writer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = writers_.find(kb);
    if (it != writers_.end()) {
      writer = it->second;
      writers_.erase(it);
    }
  }
  std::string dir = options_.dir + "/" + EscapeKbName(kb);
  if (writer != nullptr) {
    std::lock_guard<std::mutex> lock(writer->mutex);
    if (writer->fd >= 0) {
      ::close(writer->fd);
      writer->fd = -1;
    }
    dir = writer->dir;
  }
  std::vector<std::string> names;
  std::string list_error;
  if (ListDir(dir, &names, &list_error)) {
    for (const std::string& name : names) {
      ::unlink((dir + "/" + name).c_str());
    }
    ::rmdir(dir.c_str());
    FsyncDir(options_.dir);
  }
}

void KbWal::RecordFsync(double micros) {
  std::lock_guard<std::mutex> lock(fsync_stats_mutex_);
  if (fsync_samples_.size() < kMaxFsyncSamples) {
    fsync_samples_.push_back(micros);
  } else {
    fsync_samples_[fsync_sample_next_] = micros;
    fsync_sample_next_ = (fsync_sample_next_ + 1) % kMaxFsyncSamples;
  }
}

WalStats KbWal::stats() const {
  WalStats stats;
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.segments_deleted = segments_deleted_.load(std::memory_order_relaxed);
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(fsync_stats_mutex_);
    samples = fsync_samples_;
  }
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    auto at = [&](double q) {
      size_t index = static_cast<size_t>(q * (samples.size() - 1));
      return samples[index];
    };
    stats.fsync_p50_us = at(0.50);
    stats.fsync_p99_us = at(0.99);
    stats.fsync_max_us = samples.back();
  }
  return stats;
}

// ---- recovery ----

bool KbWal::Recover(const std::string& dir, std::vector<RecoveredKb>* out,
                    uint64_t* max_version,
                    std::vector<std::string>* warnings, std::string* error) {
  *max_version = 0;
  std::vector<std::string> kb_dirs;
  {
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0) return true;  // nothing to recover
    if (!ListDir(dir, &kb_dirs, error)) return false;
  }
  for (const std::string& kb_dir_name : kb_dirs) {
    const std::string kb_dir = dir + "/" + kb_dir_name;
    struct stat st;
    if (::stat(kb_dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) continue;
    std::vector<std::string> names;
    std::string list_error;
    if (!ListDir(kb_dir, &names, &list_error)) {
      if (warnings) warnings->push_back(list_error);
      continue;
    }

    // Newest readable snapshot.
    std::unique_ptr<KnowledgeBase> state;
    std::string kb_name;
    uint64_t base_version = 0;
    std::vector<uint64_t> snapshot_versions;
    for (const std::string& name : names) {
      uint64_t version = 0;
      if (ParseIndexedName(name, "snap-", &version)) {
        snapshot_versions.push_back(version);
      }
    }
    std::sort(snapshot_versions.rbegin(), snapshot_versions.rend());
    for (uint64_t version : snapshot_versions) {
      std::ifstream in(kb_dir + "/" + SnapshotName(version));
      std::string line;
      WalRecord record;
      std::string parse_error;
      if (in && std::getline(in, line) &&
          DecodeWalRecord(line, &record, &parse_error) &&
          record.op == WalRecord::Op::kSnapshot) {
        std::unique_ptr<KnowledgeBase> snap_state;
        if (ApplyRecordToState(record, &snap_state, &parse_error)) {
          state = std::move(snap_state);
          kb_name = record.kb;
          base_version = record.version;
          break;
        }
      }
      if (warnings) {
        warnings->push_back(kb_dir + "/" + SnapshotName(version) + ": " +
                            (parse_error.empty() ? "unreadable"
                                                 : parse_error));
      }
    }

    // All segment records, version-sorted.  A torn final record — a crash
    // mid-append — is the last line of the last segment; it was never
    // acked, so it is dropped silently.
    std::vector<uint64_t> segment_indices;
    for (const std::string& name : names) {
      uint64_t index = 0;
      if (ParseIndexedName(name, "wal-", &index)) {
        segment_indices.push_back(index);
      }
    }
    std::sort(segment_indices.begin(), segment_indices.end());
    std::vector<WalRecord> records;
    bool truncated = false;  // stop collecting after a corrupt mid-log line
    for (size_t si = 0; si < segment_indices.size() && !truncated; ++si) {
      const bool last_segment = si + 1 == segment_indices.size();
      std::ifstream in(kb_dir + "/" + SegmentName(segment_indices[si]));
      std::string line;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        WalRecord record;
        std::string parse_error;
        if (!DecodeWalRecord(line, &record, &parse_error)) {
          // Segments are preallocated; after a crash the last one may end
          // in a NUL-padded tail.  An all-NUL "line" is unambiguously that
          // padding, never a damaged record — skip it silently.
          if (line.find_first_not_of('\0') == std::string::npos) continue;
          const bool at_eof = in.peek() == EOF;
          if (last_segment && at_eof) break;  // torn final record
          if (warnings) {
            warnings->push_back(kb_dir + "/" +
                                SegmentName(segment_indices[si]) +
                                ": corrupt record (" + parse_error +
                                "); replay stops at the last good prefix");
          }
          truncated = true;
          break;
        }
        records.push_back(std::move(record));
      }
    }
    std::stable_sort(records.begin(), records.end(),
                     [](const WalRecord& a, const WalRecord& b) {
                       return a.version < b.version;
                     });

    uint64_t version = base_version;
    size_t replayed = 0;
    for (const WalRecord& record : records) {
      *max_version = std::max(*max_version, record.version);
      if (record.version <= base_version) continue;  // covered by snapshot
      std::string apply_error;
      if (!ApplyRecordToState(record, &state, &apply_error)) {
        if (warnings) {
          warnings->push_back(kb_dir + ": replaying v" +
                              std::to_string(record.version) + ": " +
                              apply_error);
        }
        continue;
      }
      if (kb_name.empty()) kb_name = record.kb;
      version = record.version;
      ++replayed;
    }
    *max_version = std::max(*max_version, version);
    if (state == nullptr || kb_name.empty()) {
      if (warnings && (!records.empty() || !snapshot_versions.empty())) {
        warnings->push_back(kb_dir + ": no recoverable state");
      }
      continue;
    }
    RecoveredKb recovered;
    recovered.name = kb_name;
    recovered.kb = std::move(*state);
    recovered.version = version;
    recovered.replayed_records = replayed;
    out->push_back(std::move(recovered));
  }
  return true;
}

}  // namespace rwl::service
