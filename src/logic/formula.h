// Formulas and proportion expressions of L≈ (Definition 4.1).
//
// The language extends first-order logic with proportion expressions:
//   ||ψ||_{x1..xk}      — fraction of k-tuples satisfying ψ
//   ||ψ | θ||_{x1..xk}  — conditional proportion (a primitive, Section 4.1)
//   rational constants, sums and products of proportion expressions,
// and proportion formulas comparing two expressions with one of an infinite
// family of approximate connectives ≈_i / ⪯_i (interpreted with tolerance
// τ_i), or with exact =, ≤ (the language L= of Halpern 1990).
//
// Formula and Expr are immutable, hash-consed trees shared by
// shared_ptr<const T> (see intern.h): the factories return canonical nodes,
// so structurally identical formulas are the same object.  Equality is
// pointer identity, Hash is a cached field, and id() is a dense unique id
// usable as an engine cache key.
#ifndef RWL_LOGIC_FORMULA_H_
#define RWL_LOGIC_FORMULA_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/logic/term.h"

namespace rwl::logic {

class Formula;
class Expr;
using FormulaPtr = std::shared_ptr<const Formula>;
using ExprPtr = std::shared_ptr<const Expr>;

// Comparison connective of a proportion formula.
enum class CompareOp {
  kApproxEq,   // ζ ≈_i ζ'   (|ζ - ζ'| ≤ τ_i)
  kApproxLeq,  // ζ ⪯_i ζ'   (ζ - ζ' ≤ τ_i)
  kApproxGeq,  // ζ ⪰_i ζ'   (ζ' - ζ ≤ τ_i)
  kEq,         // ζ = ζ'     (exact; L= connective)
  kLeq,        // ζ ≤ ζ'
  kGeq,        // ζ ≥ ζ'
};

// True for the ≈/⪯/⪰ family, which consult the tolerance vector.
bool IsApproximate(CompareOp op);

// A proportion expression (denotes a real number in a world).
class Expr {
 public:
  enum class Kind {
    kConstant,     // rational constant (stored as double)
    kProportion,   // ||body||_vars
    kConditional,  // ||body | cond||_vars
    kAdd,          // lhs + rhs
    kSub,          // lhs - rhs
    kMul,          // lhs * rhs
  };

  static ExprPtr Constant(double value);
  static ExprPtr Proportion(FormulaPtr body, std::vector<std::string> vars);
  static ExprPtr Conditional(FormulaPtr body, FormulaPtr cond,
                             std::vector<std::string> vars);
  static ExprPtr Add(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Sub(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Mul(ExprPtr lhs, ExprPtr rhs);

  Kind kind() const { return kind_; }
  double value() const { return value_; }
  const FormulaPtr& body() const { return body_; }
  const FormulaPtr& cond() const { return cond_; }
  const std::vector<std::string>& vars() const { return vars_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  // Cached structural hash / dense unique id (ids start at 1).
  size_t hash() const { return hash_; }
  uint64_t id() const { return id_; }

  // Interning makes structural equality pointer identity and the hash a
  // field read; the null-safe static forms are kept for call sites.
  static bool Equal(const ExprPtr& a, const ExprPtr& b);
  static size_t Hash(const ExprPtr& e);

 private:
  friend class ExprArena;

  Expr(Kind kind) : kind_(kind) {}

  static ExprPtr Intern(Expr&& candidate);

  Kind kind_;
  double value_ = 0.0;
  FormulaPtr body_;
  FormulaPtr cond_;
  std::vector<std::string> vars_;
  ExprPtr lhs_;
  ExprPtr rhs_;
  size_t hash_ = 0;
  uint64_t id_ = 0;
};

// A formula of L≈.
class Formula {
 public:
  enum class Kind {
    kTrue,
    kFalse,
    kAtom,     // R(t1,...,tr)
    kEqual,    // t1 = t2
    kNot,
    kAnd,
    kOr,
    kImplies,  // material implication ⇒
    kIff,      // ⇔
    kForAll,   // ∀x. body
    kExists,   // ∃x. body
    kCompare,  // proportion formula ζ op ζ'
  };

  static FormulaPtr True();
  static FormulaPtr False();
  static FormulaPtr Atom(std::string predicate, std::vector<TermPtr> args);
  static FormulaPtr Equal(TermPtr lhs, TermPtr rhs);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Or(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Implies(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr Iff(FormulaPtr lhs, FormulaPtr rhs);
  static FormulaPtr ForAll(std::string var, FormulaPtr body);
  static FormulaPtr Exists(std::string var, FormulaPtr body);
  // ζ op ζ' with tolerance index i (1-based, as in the paper's ≈_i).
  // The index is ignored by the exact connectives and canonicalized to 1
  // for them, so that semantically identical exact comparisons are one
  // interned node (equal AND hash-equal — the seed treated them as
  // distinct, inconsistently with this comment).
  static FormulaPtr Compare(ExprPtr lhs, CompareOp op, ExprPtr rhs,
                            int tolerance_index = 1);

  // Conjunction / disjunction of a list (True / False when empty).
  static FormulaPtr AndAll(const std::vector<FormulaPtr>& fs);
  static FormulaPtr OrAll(const std::vector<FormulaPtr>& fs);

  Kind kind() const { return kind_; }
  const std::string& predicate() const { return name_; }
  const std::string& var() const { return name_; }
  const std::vector<TermPtr>& terms() const { return terms_; }
  const FormulaPtr& left() const { return left_; }
  const FormulaPtr& right() const { return right_; }
  const FormulaPtr& body() const { return left_; }
  const ExprPtr& expr_left() const { return expr_left_; }
  const ExprPtr& expr_right() const { return expr_right_; }
  CompareOp compare_op() const { return compare_op_; }
  int tolerance_index() const { return tolerance_index_; }

  // Cached structural hash / dense unique id (ids start at 1).
  size_t hash() const { return hash_; }
  uint64_t id() const { return id_; }

  // Interning makes structural equality pointer identity and the hash a
  // field read; the null-safe static forms are kept for call sites.
  static bool StructuralEqual(const FormulaPtr& a, const FormulaPtr& b);
  static size_t Hash(const FormulaPtr& f);

 private:
  friend class FormulaArena;

  Formula(Kind kind) : kind_(kind) {}

  static FormulaPtr Intern(Formula&& candidate);

  Kind kind_;
  std::string name_;             // predicate name or bound variable
  std::vector<TermPtr> terms_;   // atom arguments / equality operands
  FormulaPtr left_;              // unary & binary connectives; quantifier body
  FormulaPtr right_;
  ExprPtr expr_left_;
  ExprPtr expr_right_;
  CompareOp compare_op_ = CompareOp::kEq;
  int tolerance_index_ = 1;
  size_t hash_ = 0;
  uint64_t id_ = 0;
};

}  // namespace rwl::logic

#endif  // RWL_LOGIC_FORMULA_H_
