#include "src/logic/formula.h"

#include <functional>

namespace rwl::logic {

bool IsApproximate(CompareOp op) {
  switch (op) {
    case CompareOp::kApproxEq:
    case CompareOp::kApproxLeq:
    case CompareOp::kApproxGeq:
      return true;
    case CompareOp::kEq:
    case CompareOp::kLeq:
    case CompareOp::kGeq:
      return false;
  }
  return false;
}

ExprPtr Expr::Constant(double value) {
  auto* e = new Expr(Kind::kConstant);
  e->value_ = value;
  return ExprPtr(e);
}

ExprPtr Expr::Proportion(FormulaPtr body, std::vector<std::string> vars) {
  auto* e = new Expr(Kind::kProportion);
  e->body_ = std::move(body);
  e->vars_ = std::move(vars);
  return ExprPtr(e);
}

ExprPtr Expr::Conditional(FormulaPtr body, FormulaPtr cond,
                          std::vector<std::string> vars) {
  auto* e = new Expr(Kind::kConditional);
  e->body_ = std::move(body);
  e->cond_ = std::move(cond);
  e->vars_ = std::move(vars);
  return ExprPtr(e);
}

ExprPtr Expr::Add(ExprPtr lhs, ExprPtr rhs) {
  auto* e = new Expr(Kind::kAdd);
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return ExprPtr(e);
}

ExprPtr Expr::Sub(ExprPtr lhs, ExprPtr rhs) {
  auto* e = new Expr(Kind::kSub);
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return ExprPtr(e);
}

ExprPtr Expr::Mul(ExprPtr lhs, ExprPtr rhs) {
  auto* e = new Expr(Kind::kMul);
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return ExprPtr(e);
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case Kind::kConstant:
      return a->value_ == b->value_;
    case Kind::kProportion:
      return a->vars_ == b->vars_ &&
             Formula::StructuralEqual(a->body_, b->body_);
    case Kind::kConditional:
      return a->vars_ == b->vars_ &&
             Formula::StructuralEqual(a->body_, b->body_) &&
             Formula::StructuralEqual(a->cond_, b->cond_);
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
      return Equal(a->lhs_, b->lhs_) && Equal(a->rhs_, b->rhs_);
  }
  return false;
}

size_t Expr::Hash(const ExprPtr& e) {
  if (e == nullptr) return 0;
  size_t h = static_cast<size_t>(e->kind_) * 1000003;
  switch (e->kind_) {
    case Kind::kConstant:
      h ^= std::hash<double>()(e->value_);
      break;
    case Kind::kProportion:
    case Kind::kConditional:
      h = h * 31 + Formula::Hash(e->body_);
      h = h * 31 + Formula::Hash(e->cond_);
      for (const auto& v : e->vars_) h = h * 31 + std::hash<std::string>()(v);
      break;
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
      h = h * 31 + Hash(e->lhs_);
      h = h * 31 + Hash(e->rhs_);
      break;
  }
  return h;
}

FormulaPtr Formula::True() {
  static const FormulaPtr instance(new Formula(Kind::kTrue));
  return instance;
}

FormulaPtr Formula::False() {
  static const FormulaPtr instance(new Formula(Kind::kFalse));
  return instance;
}

FormulaPtr Formula::Atom(std::string predicate, std::vector<TermPtr> args) {
  auto* f = new Formula(Kind::kAtom);
  f->name_ = std::move(predicate);
  f->terms_ = std::move(args);
  return FormulaPtr(f);
}

FormulaPtr Formula::Equal(TermPtr lhs, TermPtr rhs) {
  auto* f = new Formula(Kind::kEqual);
  f->terms_ = {std::move(lhs), std::move(rhs)};
  return FormulaPtr(f);
}

FormulaPtr Formula::Not(FormulaPtr f) {
  auto* n = new Formula(Kind::kNot);
  n->left_ = std::move(f);
  return FormulaPtr(n);
}

FormulaPtr Formula::And(FormulaPtr lhs, FormulaPtr rhs) {
  auto* f = new Formula(Kind::kAnd);
  f->left_ = std::move(lhs);
  f->right_ = std::move(rhs);
  return FormulaPtr(f);
}
FormulaPtr Formula::Or(FormulaPtr lhs, FormulaPtr rhs) {
  auto* f = new Formula(Kind::kOr);
  f->left_ = std::move(lhs);
  f->right_ = std::move(rhs);
  return FormulaPtr(f);
}
FormulaPtr Formula::Implies(FormulaPtr lhs, FormulaPtr rhs) {
  auto* f = new Formula(Kind::kImplies);
  f->left_ = std::move(lhs);
  f->right_ = std::move(rhs);
  return FormulaPtr(f);
}
FormulaPtr Formula::Iff(FormulaPtr lhs, FormulaPtr rhs) {
  auto* f = new Formula(Kind::kIff);
  f->left_ = std::move(lhs);
  f->right_ = std::move(rhs);
  return FormulaPtr(f);
}

FormulaPtr Formula::ForAll(std::string var, FormulaPtr body) {
  auto* f = new Formula(Kind::kForAll);
  f->name_ = std::move(var);
  f->left_ = std::move(body);
  return FormulaPtr(f);
}

FormulaPtr Formula::Exists(std::string var, FormulaPtr body) {
  auto* f = new Formula(Kind::kExists);
  f->name_ = std::move(var);
  f->left_ = std::move(body);
  return FormulaPtr(f);
}

FormulaPtr Formula::Compare(ExprPtr lhs, CompareOp op, ExprPtr rhs,
                            int tolerance_index) {
  auto* f = new Formula(Kind::kCompare);
  f->expr_left_ = std::move(lhs);
  f->expr_right_ = std::move(rhs);
  f->compare_op_ = op;
  f->tolerance_index_ = tolerance_index;
  return FormulaPtr(f);
}

FormulaPtr Formula::AndAll(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return True();
  FormulaPtr result = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) result = And(result, fs[i]);
  return result;
}

FormulaPtr Formula::OrAll(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return False();
  FormulaPtr result = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) result = Or(result, fs[i]);
  return result;
}

bool Formula::StructuralEqual(const FormulaPtr& a, const FormulaPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return true;
    case Kind::kAtom:
      if (a->name_ != b->name_ || a->terms_.size() != b->terms_.size()) {
        return false;
      }
      for (size_t i = 0; i < a->terms_.size(); ++i) {
        if (!Term::Equal(a->terms_[i], b->terms_[i])) return false;
      }
      return true;
    case Kind::kEqual:
      return Term::Equal(a->terms_[0], b->terms_[0]) &&
             Term::Equal(a->terms_[1], b->terms_[1]);
    case Kind::kNot:
      return StructuralEqual(a->left_, b->left_);
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kImplies:
    case Kind::kIff:
      return StructuralEqual(a->left_, b->left_) &&
             StructuralEqual(a->right_, b->right_);
    case Kind::kForAll:
    case Kind::kExists:
      return a->name_ == b->name_ && StructuralEqual(a->left_, b->left_);
    case Kind::kCompare:
      return a->compare_op_ == b->compare_op_ &&
             a->tolerance_index_ == b->tolerance_index_ &&
             Expr::Equal(a->expr_left_, b->expr_left_) &&
             Expr::Equal(a->expr_right_, b->expr_right_);
  }
  return false;
}

size_t Formula::Hash(const FormulaPtr& f) {
  if (f == nullptr) return 0;
  size_t h = static_cast<size_t>(f->kind_) * 2654435761u;
  h = h * 31 + std::hash<std::string>()(f->name_);
  for (const auto& t : f->terms_) h = h * 31 + Term::Hash(t);
  h = h * 31 + Hash(f->left_);
  h = h * 31 + Hash(f->right_);
  h = h * 31 + Expr::Hash(f->expr_left_);
  h = h * 31 + Expr::Hash(f->expr_right_);
  h = h * 31 + static_cast<size_t>(f->compare_op_);
  h = h * 31 + static_cast<size_t>(f->tolerance_index_);
  return h;
}

}  // namespace rwl::logic
