#include "src/logic/formula.h"

#include <bit>
#include <cmath>
#include <functional>
#include <mutex>
#include <unordered_set>

#include "src/logic/intern.h"

namespace rwl::logic {
namespace {

// Doubles are interned by bit pattern so that NaN payloads behave sanely in
// the arena; ±0.0 is canonicalized at construction (the seed's Equal used
// `==`, which identifies the two zeros, while its Hash saw different bits —
// an Equal/Hash inconsistency this removes).
uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

size_t ExprStructuralHash(const Expr& e) {
  size_t h = HashMix(static_cast<size_t>(e.kind()) + 0xE1);
  switch (e.kind()) {
    case Expr::Kind::kConstant:
      h = HashCombine(h, static_cast<size_t>(DoubleBits(e.value())));
      break;
    case Expr::Kind::kProportion:
    case Expr::Kind::kConditional:
      h = HashCombine(h, Formula::Hash(e.body()));
      h = HashCombine(h, Formula::Hash(e.cond()));
      for (const auto& v : e.vars()) {
        h = HashCombine(h, std::hash<std::string>()(v));
      }
      break;
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
      h = HashCombine(h, Expr::Hash(e.lhs()));
      h = HashCombine(h, Expr::Hash(e.rhs()));
      break;
  }
  return h;
}

// Shallow structural equality: children are canonical, so they compare by
// pointer.
bool ExprShallowEqual(const Expr& a, const Expr& b) {
  if (a.kind() != b.kind()) return false;
  return DoubleBits(a.value()) == DoubleBits(b.value()) &&
         a.body() == b.body() && a.cond() == b.cond() &&
         a.vars() == b.vars() && a.lhs() == b.lhs() && a.rhs() == b.rhs();
}

size_t FormulaStructuralHash(const Formula& f) {
  size_t h = HashMix(static_cast<size_t>(f.kind()) + 0xF1);
  h = HashCombine(h, std::hash<std::string>()(f.var()));
  for (const auto& t : f.terms()) h = HashCombine(h, Term::Hash(t));
  h = HashCombine(h, Formula::Hash(f.left()));
  h = HashCombine(h, Formula::Hash(f.right()));
  h = HashCombine(h, Expr::Hash(f.expr_left()));
  h = HashCombine(h, Expr::Hash(f.expr_right()));
  h = HashCombine(h, static_cast<size_t>(f.compare_op()));
  h = HashCombine(h, static_cast<size_t>(f.tolerance_index()));
  return h;
}

bool FormulaShallowEqual(const Formula& a, const Formula& b) {
  if (a.kind() != b.kind()) return false;
  return a.var() == b.var() && a.terms() == b.terms() &&
         a.left() == b.left() && a.right() == b.right() &&
         a.expr_left() == b.expr_left() && a.expr_right() == b.expr_right() &&
         a.compare_op() == b.compare_op() &&
         a.tolerance_index() == b.tolerance_index();
}

// The Expr and Formula arenas are instantiations of the shared
// internal::NodeArena mechanism (intern.h), like TermArena in term.cc.

}  // namespace

class ExprArena
    : public internal::NodeArena<ExprArena, Expr, ExprPtr,
                                 ExprStructuralHash, ExprShallowEqual> {
 public:
  static ExprArena& Instance() {
    static ExprArena* arena = new ExprArena();
    return *arena;
  }
  static void SetIdentity(Expr* node, size_t hash, uint64_t id) {
    node->hash_ = hash;
    node->id_ = id;
  }
};

class FormulaArena
    : public internal::NodeArena<FormulaArena, Formula, FormulaPtr,
                                 FormulaStructuralHash, FormulaShallowEqual> {
 public:
  static FormulaArena& Instance() {
    static FormulaArena* arena = new FormulaArena();
    return *arena;
  }
  static void SetIdentity(Formula* node, size_t hash, uint64_t id) {
    node->hash_ = hash;
    node->id_ = id;
  }
};

void ExprArenaStats(uint64_t* nodes, uint64_t* hits) {
  ExprArena::Instance().Stats(nodes, hits);
}
void FormulaArenaStats(uint64_t* nodes, uint64_t* hits) {
  FormulaArena::Instance().Stats(nodes, hits);
}

InternStats GetInternStats() {
  InternStats stats;
  TermArenaStats(&stats.term_nodes, &stats.term_hits);
  ExprArenaStats(&stats.expr_nodes, &stats.expr_hits);
  FormulaArenaStats(&stats.formula_nodes, &stats.formula_hits);
  return stats;
}

bool IsApproximate(CompareOp op) {
  switch (op) {
    case CompareOp::kApproxEq:
    case CompareOp::kApproxLeq:
    case CompareOp::kApproxGeq:
      return true;
    case CompareOp::kEq:
    case CompareOp::kLeq:
    case CompareOp::kGeq:
      return false;
  }
  return false;
}

ExprPtr Expr::Intern(Expr&& candidate) {
  return ExprArena::Instance().Intern(std::move(candidate));
}

FormulaPtr Formula::Intern(Formula&& candidate) {
  return FormulaArena::Instance().Intern(std::move(candidate));
}

ExprPtr Expr::Constant(double value) {
  Expr e(Kind::kConstant);
  e.value_ = value == 0.0 ? 0.0 : value;  // canonicalize -0.0
  return Intern(std::move(e));
}

ExprPtr Expr::Proportion(FormulaPtr body, std::vector<std::string> vars) {
  Expr e(Kind::kProportion);
  e.body_ = std::move(body);
  e.vars_ = std::move(vars);
  return Intern(std::move(e));
}

ExprPtr Expr::Conditional(FormulaPtr body, FormulaPtr cond,
                          std::vector<std::string> vars) {
  Expr e(Kind::kConditional);
  e.body_ = std::move(body);
  e.cond_ = std::move(cond);
  e.vars_ = std::move(vars);
  return Intern(std::move(e));
}

ExprPtr Expr::Add(ExprPtr lhs, ExprPtr rhs) {
  Expr e(Kind::kAdd);
  e.lhs_ = std::move(lhs);
  e.rhs_ = std::move(rhs);
  return Intern(std::move(e));
}

ExprPtr Expr::Sub(ExprPtr lhs, ExprPtr rhs) {
  Expr e(Kind::kSub);
  e.lhs_ = std::move(lhs);
  e.rhs_ = std::move(rhs);
  return Intern(std::move(e));
}

ExprPtr Expr::Mul(ExprPtr lhs, ExprPtr rhs) {
  Expr e(Kind::kMul);
  e.lhs_ = std::move(lhs);
  e.rhs_ = std::move(rhs);
  return Intern(std::move(e));
}

bool Expr::Equal(const ExprPtr& a, const ExprPtr& b) {
  return a == b;  // interning: structural equality is pointer identity
}

size_t Expr::Hash(const ExprPtr& e) { return e == nullptr ? 0 : e->hash_; }

FormulaPtr Formula::True() {
  static const FormulaPtr instance = Intern(Formula(Kind::kTrue));
  return instance;
}

FormulaPtr Formula::False() {
  static const FormulaPtr instance = Intern(Formula(Kind::kFalse));
  return instance;
}

FormulaPtr Formula::Atom(std::string predicate, std::vector<TermPtr> args) {
  Formula f(Kind::kAtom);
  f.name_ = std::move(predicate);
  f.terms_ = std::move(args);
  return Intern(std::move(f));
}

FormulaPtr Formula::Equal(TermPtr lhs, TermPtr rhs) {
  Formula f(Kind::kEqual);
  f.terms_ = {std::move(lhs), std::move(rhs)};
  return Intern(std::move(f));
}

FormulaPtr Formula::Not(FormulaPtr f) {
  Formula n(Kind::kNot);
  n.left_ = std::move(f);
  return Intern(std::move(n));
}

FormulaPtr Formula::And(FormulaPtr lhs, FormulaPtr rhs) {
  Formula f(Kind::kAnd);
  f.left_ = std::move(lhs);
  f.right_ = std::move(rhs);
  return Intern(std::move(f));
}
FormulaPtr Formula::Or(FormulaPtr lhs, FormulaPtr rhs) {
  Formula f(Kind::kOr);
  f.left_ = std::move(lhs);
  f.right_ = std::move(rhs);
  return Intern(std::move(f));
}
FormulaPtr Formula::Implies(FormulaPtr lhs, FormulaPtr rhs) {
  Formula f(Kind::kImplies);
  f.left_ = std::move(lhs);
  f.right_ = std::move(rhs);
  return Intern(std::move(f));
}
FormulaPtr Formula::Iff(FormulaPtr lhs, FormulaPtr rhs) {
  Formula f(Kind::kIff);
  f.left_ = std::move(lhs);
  f.right_ = std::move(rhs);
  return Intern(std::move(f));
}

FormulaPtr Formula::ForAll(std::string var, FormulaPtr body) {
  Formula f(Kind::kForAll);
  f.name_ = std::move(var);
  f.left_ = std::move(body);
  return Intern(std::move(f));
}

FormulaPtr Formula::Exists(std::string var, FormulaPtr body) {
  Formula f(Kind::kExists);
  f.name_ = std::move(var);
  f.left_ = std::move(body);
  return Intern(std::move(f));
}

FormulaPtr Formula::Compare(ExprPtr lhs, CompareOp op, ExprPtr rhs,
                            int tolerance_index) {
  Formula f(Kind::kCompare);
  f.expr_left_ = std::move(lhs);
  f.expr_right_ = std::move(rhs);
  f.compare_op_ = op;
  // Exact connectives ignore the tolerance vector; canonicalizing their
  // index makes equal-meaning comparisons one interned node.
  f.tolerance_index_ = IsApproximate(op) ? tolerance_index : 1;
  return Intern(std::move(f));
}

FormulaPtr Formula::AndAll(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return True();
  FormulaPtr result = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) result = And(result, fs[i]);
  return result;
}

FormulaPtr Formula::OrAll(const std::vector<FormulaPtr>& fs) {
  if (fs.empty()) return False();
  FormulaPtr result = fs[0];
  for (size_t i = 1; i < fs.size(); ++i) result = Or(result, fs[i]);
  return result;
}

bool Formula::StructuralEqual(const FormulaPtr& a, const FormulaPtr& b) {
  return a == b;  // interning: structural equality is pointer identity
}

size_t Formula::Hash(const FormulaPtr& f) {
  return f == nullptr ? 0 : f->hash_;
}

}  // namespace rwl::logic
