// Recursive-descent parser for the textual L≈ syntax (see printer.h for the
// grammar summary).  No exceptions: parse failures are reported through
// ParseResult with a message and input offset.
//
// Convention (matching the paper's notation): identifiers beginning with a
// lower-case letter are variables; identifiers beginning with an upper-case
// letter are predicate / constant / function symbols.
#ifndef RWL_LOGIC_PARSER_H_
#define RWL_LOGIC_PARSER_H_

#include <string>
#include <string_view>

#include "src/logic/formula.h"

namespace rwl::logic {

struct ParseResult {
  FormulaPtr formula;       // null on failure
  std::string error;        // empty on success
  size_t error_offset = 0;  // byte offset of the failure

  bool ok() const { return formula != nullptr; }
};

// Parses a single formula.  Trailing input (other than whitespace) is an
// error.
ParseResult ParseFormula(std::string_view input);

// Parses a knowledge base: one formula per non-empty line; lines beginning
// with '#' after optional whitespace are comments... except that '#' also
// opens a proportion expression, so KB comments use "//" instead.  All lines
// are conjoined.
ParseResult ParseKnowledgeBase(std::string_view input);

}  // namespace rwl::logic

#endif  // RWL_LOGIC_PARSER_H_
