// Structural transformations and queries over L≈ formulas: free variables,
// symbol collection, substitution, conjunct flattening.
//
// Note on binding: both quantifiers and proportion subscripts bind variables
// (the paper observes that ||·||_X is a new kind of quantification), so the
// free-variable and substitution routines treat proportion subscripts as
// binders.
#ifndef RWL_LOGIC_TRANSFORM_H_
#define RWL_LOGIC_TRANSFORM_H_

#include <set>
#include <string>
#include <vector>

#include "src/logic/formula.h"

namespace rwl::logic {

// Free variables of a formula / expression.
std::set<std::string> FreeVariables(const FormulaPtr& f);
std::set<std::string> FreeVariables(const ExprPtr& e);

// All constant symbols mentioned.
std::set<std::string> ConstantsOf(const FormulaPtr& f);
// All predicate symbols mentioned.
std::set<std::string> PredicatesOf(const FormulaPtr& f);
// All function symbols (including constants) mentioned.
std::set<std::string> FunctionsOf(const FormulaPtr& f);
// All non-logical symbols (predicates + functions + constants).
std::set<std::string> SymbolsOf(const FormulaPtr& f);

// True if the formula mentions the given constant anywhere.
bool MentionsConstant(const FormulaPtr& f, const std::string& constant);

// Substitutes the free occurrences of `var` by `replacement`.
// Quantifiers and proportion subscripts shadow: bound occurrences are left
// untouched.  The replacement term must not contain variables that would be
// captured; callers substituting ground terms (the common case: variables by
// constants, as in φ(⃗c) of Theorem 5.6) are always safe.
FormulaPtr SubstituteVariable(const FormulaPtr& f, const std::string& var,
                              const TermPtr& replacement);
ExprPtr SubstituteVariable(const ExprPtr& e, const std::string& var,
                           const TermPtr& replacement);

// Simultaneous substitution of several variables by terms.
FormulaPtr SubstituteVariables(
    const FormulaPtr& f,
    const std::vector<std::pair<std::string, TermPtr>>& subst);

// A variable name based on `hint` that does not occur (free or bound) in f.
std::string FreshVariable(const FormulaPtr& f, const std::string& hint);

// Splits nested conjunctions into a flat conjunct list (the "KB as a set of
// conjuncts" view used by the symbolic engine and the reference-class
// reasoner).
std::vector<FormulaPtr> Conjuncts(const FormulaPtr& f);

// Splits a KB into the conjunction of conjuncts mentioning no constant and
// the conjunction of the rest, preserving conjunct order.  The profile
// engine evaluates the first once per profile and the second once per
// constant placement; QueryContext::kb_split caches this same split, and
// the two call sites must agree for cached answers to be bit-identical to
// uncached ones — hence the single implementation.
struct ConstantSplit {
  FormulaPtr constant_free;       // True() when no such conjunct
  FormulaPtr constant_dependent;  // True() when no such conjunct
};
ConstantSplit SplitByConstants(const FormulaPtr& f);

// Registers every non-logical symbol of f into the vocabulary, inferring
// arities from use (atoms declare predicates, applications declare
// functions/constants).
class Vocabulary;
void RegisterSymbols(const FormulaPtr& f, Vocabulary* vocabulary);

}  // namespace rwl::logic

#endif  // RWL_LOGIC_TRANSFORM_H_
