// Terms of the language L≈ (Definition 4.1): variables and function
// applications.  Constants are arity-0 function applications.
//
// All AST nodes in rwl are immutable, hash-consed (see intern.h) and shared
// via shared_ptr<const T>: structurally identical terms are the same object,
// so equality is pointer comparison, the structural hash is a cached field,
// and every node carries a dense unique id usable as a cache key.
#ifndef RWL_LOGIC_TERM_H_
#define RWL_LOGIC_TERM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace rwl::logic {

class Term;
using TermPtr = std::shared_ptr<const Term>;

class Term {
 public:
  enum class Kind {
    kVariable,  // x, y, ...
    kApply,     // f(t1,...,tr); constants are r == 0
  };

  static TermPtr Variable(std::string name);
  static TermPtr Constant(std::string name);
  static TermPtr Apply(std::string function, std::vector<TermPtr> args);

  Kind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  const std::vector<TermPtr>& args() const { return args_; }

  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kApply && args_.empty(); }

  // Cached structural hash and dense unique id (ids start at 1; 0 is free
  // for callers to mean "no term").
  size_t hash() const { return hash_; }
  uint64_t id() const { return id_; }

  // Structural equality / hash.  Interning makes these pointer identity and
  // a field read; the null-safe static forms are kept for call-site
  // convenience.
  static bool Equal(const TermPtr& a, const TermPtr& b);
  static size_t Hash(const TermPtr& t);

  // Collects variable names occurring in this term into `out`.
  void CollectVariables(std::set<std::string>* out) const;
  // Collects constant names (arity-0 applications) into `out`.
  void CollectConstants(std::set<std::string>* out) const;
  // Collects all function names (including constants) into `out`.
  void CollectFunctions(std::set<std::string>* out) const;

  // Capture-free substitution of variables by terms.  Terms have no binders,
  // so this is plain simultaneous replacement.
  static TermPtr Substitute(
      const TermPtr& t,
      const std::vector<std::pair<std::string, TermPtr>>& subst);

 private:
  friend class TermArena;

  Term(Kind kind, std::string name, std::vector<TermPtr> args)
      : kind_(kind), name_(std::move(name)), args_(std::move(args)) {}

  // Arena lookup: returns the canonical node for this structure.
  static TermPtr Intern(Kind kind, std::string name,
                        std::vector<TermPtr> args);

  Kind kind_;
  std::string name_;
  std::vector<TermPtr> args_;
  size_t hash_ = 0;
  uint64_t id_ = 0;
};

}  // namespace rwl::logic

#endif  // RWL_LOGIC_TERM_H_
