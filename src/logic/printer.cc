#include "src/logic/printer.h"

#include <cstdio>
#include <sstream>

namespace rwl::logic {
namespace {

void PrintTerm(const TermPtr& t, std::ostringstream* out) {
  *out << t->name();
  if (t->kind() == Term::Kind::kApply && !t->args().empty()) {
    *out << "(";
    for (size_t i = 0; i < t->args().size(); ++i) {
      if (i > 0) *out << ", ";
      PrintTerm(t->args()[i], out);
    }
    *out << ")";
  }
}

void PrintFormula(const FormulaPtr& f, std::ostringstream* out);

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void PrintVars(const std::vector<std::string>& vars, std::ostringstream* out) {
  *out << "[";
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i > 0) *out << ",";
    *out << vars[i];
  }
  *out << "]";
}

void PrintExpr(const ExprPtr& e, std::ostringstream* out) {
  switch (e->kind()) {
    case Expr::Kind::kConstant:
      *out << FormatNumber(e->value());
      return;
    case Expr::Kind::kProportion:
      *out << "#(";
      PrintFormula(e->body(), out);
      *out << ")";
      PrintVars(e->vars(), out);
      return;
    case Expr::Kind::kConditional:
      *out << "#(";
      PrintFormula(e->body(), out);
      *out << " ; ";
      PrintFormula(e->cond(), out);
      *out << ")";
      PrintVars(e->vars(), out);
      return;
    case Expr::Kind::kAdd:
      *out << "(";
      PrintExpr(e->lhs(), out);
      *out << " + ";
      PrintExpr(e->rhs(), out);
      *out << ")";
      return;
    case Expr::Kind::kSub:
      *out << "(";
      PrintExpr(e->lhs(), out);
      *out << " - ";
      PrintExpr(e->rhs(), out);
      *out << ")";
      return;
    case Expr::Kind::kMul:
      *out << "(";
      PrintExpr(e->lhs(), out);
      *out << " * ";
      PrintExpr(e->rhs(), out);
      *out << ")";
      return;
  }
}

const char* CompareOpToken(CompareOp op) {
  switch (op) {
    case CompareOp::kApproxEq:
      return "~=";
    case CompareOp::kApproxLeq:
      return "<~";
    case CompareOp::kApproxGeq:
      return ">~";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kLeq:
      return "<=";
    case CompareOp::kGeq:
      return ">=";
  }
  return "?";
}

void PrintFormula(const FormulaPtr& f, std::ostringstream* out) {
  switch (f->kind()) {
    case Formula::Kind::kTrue:
      *out << "true";
      return;
    case Formula::Kind::kFalse:
      *out << "false";
      return;
    case Formula::Kind::kAtom:
      *out << f->predicate();
      if (!f->terms().empty()) {
        *out << "(";
        for (size_t i = 0; i < f->terms().size(); ++i) {
          if (i > 0) *out << ", ";
          PrintTerm(f->terms()[i], out);
        }
        *out << ")";
      }
      return;
    case Formula::Kind::kEqual:
      *out << "(";
      PrintTerm(f->terms()[0], out);
      *out << " = ";
      PrintTerm(f->terms()[1], out);
      *out << ")";
      return;
    case Formula::Kind::kNot:
      *out << "!";
      // Parenthesize non-primary bodies.
      switch (f->body()->kind()) {
        case Formula::Kind::kAtom:
        case Formula::Kind::kTrue:
        case Formula::Kind::kFalse:
        case Formula::Kind::kNot:
        case Formula::Kind::kEqual:
          PrintFormula(f->body(), out);
          break;
        default:
          *out << "(";
          PrintFormula(f->body(), out);
          *out << ")";
      }
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
    case Formula::Kind::kImplies:
    case Formula::Kind::kIff: {
      const char* op = f->kind() == Formula::Kind::kAnd        ? " & "
                       : f->kind() == Formula::Kind::kOr       ? " | "
                       : f->kind() == Formula::Kind::kImplies  ? " => "
                                                               : " <=> ";
      *out << "(";
      PrintFormula(f->left(), out);
      *out << op;
      PrintFormula(f->right(), out);
      *out << ")";
      return;
    }
    case Formula::Kind::kForAll:
    case Formula::Kind::kExists:
      *out << "(" << (f->kind() == Formula::Kind::kForAll ? "forall " : "exists ")
           << f->var() << ". ";
      PrintFormula(f->body(), out);
      *out << ")";
      return;
    case Formula::Kind::kCompare:
      *out << "(";
      PrintExpr(f->expr_left(), out);
      *out << " " << CompareOpToken(f->compare_op());
      if (IsApproximate(f->compare_op()) && f->tolerance_index() != 1) {
        *out << "_" << f->tolerance_index();
      }
      *out << " ";
      PrintExpr(f->expr_right(), out);
      *out << ")";
      return;
  }
}

}  // namespace

std::string ToString(const FormulaPtr& f) {
  std::ostringstream out;
  PrintFormula(f, &out);
  return out.str();
}

std::string ToString(const ExprPtr& e) {
  std::ostringstream out;
  PrintExpr(e, &out);
  return out.str();
}

std::string ToString(const TermPtr& t) {
  std::ostringstream out;
  PrintTerm(t, &out);
  return out.str();
}

}  // namespace rwl::logic
