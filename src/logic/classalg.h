// Class algebra: decidable reasoning about boolean combinations of unary
// predicates ("classes" / "reference classes").
//
// A ClassUniverse fixes an ordered list of unary predicate names P1..Pk and
// identifies a class expression with the set of atoms (Section 6: the 2^k
// conjunctions Q1 ∧ ... ∧ Qk, Qi ∈ {Pi, ¬Pi}) it contains.  Subset and
// disjointness questions relative to a background taxonomy — the side
// conditions "KB |= ∀x(ψ0(x) ⇒ ψ(x))" of Theorems 5.16 and 5.23 — reduce to
// bit operations over atom sets.
#ifndef RWL_LOGIC_CLASSALG_H_
#define RWL_LOGIC_CLASSALG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/logic/formula.h"

namespace rwl::logic {

// The set of atoms over a fixed list of unary predicates.
class ClassUniverse {
 public:
  // At most 24 predicates (2^24 atoms); enough for any realistic KB and far
  // beyond what the engines can enumerate anyway.
  static constexpr int kMaxPredicates = 24;

  explicit ClassUniverse(std::vector<std::string> predicates);

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  int num_atoms() const { return 1 << num_predicates(); }
  const std::vector<std::string>& predicates() const { return predicates_; }

  // Index of a predicate name, or -1.
  int PredicateIndex(const std::string& name) const;

  // Whether predicate `pred` holds in atom `atom`.
  static bool AtomHas(int atom, int pred_index) {
    return (atom >> pred_index) & 1;
  }

 private:
  std::vector<std::string> predicates_;
};

// A set of atoms (the extension of a class expression).
class AtomSet {
 public:
  AtomSet() = default;
  explicit AtomSet(int num_atoms, bool all = false);

  static AtomSet All(const ClassUniverse& u) { return AtomSet(u.num_atoms(), true); }
  static AtomSet None(const ClassUniverse& u) { return AtomSet(u.num_atoms(), false); }
  // Atoms where predicate `pred_index` holds.
  static AtomSet OfPredicate(const ClassUniverse& u, int pred_index);

  bool Get(int atom) const;
  void Set(int atom, bool value);

  AtomSet Intersect(const AtomSet& other) const;
  AtomSet Union(const AtomSet& other) const;
  AtomSet Complement() const;

  bool Empty() const;
  int Count() const;
  int num_atoms() const { return num_atoms_; }

  // a ⊆ b within the allowed atoms.
  static bool SubsetOf(const AtomSet& a, const AtomSet& b,
                       const AtomSet& allowed);
  static bool Disjoint(const AtomSet& a, const AtomSet& b,
                       const AtomSet& allowed);
  static bool Equal(const AtomSet& a, const AtomSet& b);

  std::vector<int> Atoms() const;  // indices of members

 private:
  int num_atoms_ = 0;
  std::vector<uint64_t> words_;
};

// Compiles a formula into the atom set of the class {x : f(x)} over the
// universe.  Succeeds only when f is a boolean combination of atoms P(t)
// where every P is in the universe and every argument term equals `subject`
// (a variable name, or a constant when compiling facts about an individual).
// Returns nullopt outside this fragment.
std::optional<AtomSet> CompileClass(const ClassUniverse& u, const FormulaPtr& f,
                                    const TermPtr& subject);

// A taxonomy: the atoms permitted by the universal conjuncts of a KB.
// Built by intersecting, for every conjunct ∀x φ(x) with φ compilable, the
// atom set of φ.
class Taxonomy {
 public:
  explicit Taxonomy(const ClassUniverse& u)
      : universe_(&u), allowed_(AtomSet::All(u)) {}

  // Inspects a KB conjunct; if it is a universal class constraint, narrows
  // the allowed atoms and returns true.
  bool Absorb(const FormulaPtr& conjunct);

  const AtomSet& allowed() const { return allowed_; }

  bool Entails_Subset(const AtomSet& a, const AtomSet& b) const {
    return AtomSet::SubsetOf(a, b, allowed_);
  }
  bool Entails_Disjoint(const AtomSet& a, const AtomSet& b) const {
    return AtomSet::Disjoint(a, b, allowed_);
  }
  // The class is empty under the taxonomy.
  bool Entails_Empty(const AtomSet& a) const {
    return a.Intersect(allowed_).Empty();
  }

 private:
  const ClassUniverse* universe_;
  AtomSet allowed_;
};

}  // namespace rwl::logic

#endif  // RWL_LOGIC_CLASSALG_H_
