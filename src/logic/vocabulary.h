// Vocabulary: the finite first-order signature Φ of Section 4.1.
//
// A vocabulary registers predicate symbols (with arity), function symbols
// (with arity; arity-0 functions are constants) and hands out stable integer
// ids.  Worlds, engines and the parser all resolve symbols through a
// Vocabulary.
#ifndef RWL_LOGIC_VOCABULARY_H_
#define RWL_LOGIC_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rwl::logic {

struct PredicateSymbol {
  int id = -1;
  std::string name;
  int arity = 1;
};

struct FunctionSymbol {
  int id = -1;
  std::string name;
  int arity = 0;  // 0 == constant
};

// A mutable symbol table.  Symbols are identified by name; registering the
// same name twice with the same arity is idempotent, with a different arity
// it is an error.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Registers (or finds) a predicate symbol and returns its id.
  // Terminates the program on an arity clash: that is a programming error in
  // the caller, not a recoverable condition.
  int AddPredicate(const std::string& name, int arity);

  // Registers (or finds) a function symbol; arity 0 declares a constant.
  int AddFunction(const std::string& name, int arity);
  int AddConstant(const std::string& name) { return AddFunction(name, 0); }

  std::optional<PredicateSymbol> FindPredicate(const std::string& name) const;
  std::optional<FunctionSymbol> FindFunction(const std::string& name) const;

  const std::vector<PredicateSymbol>& predicates() const { return predicates_; }
  const std::vector<FunctionSymbol>& functions() const { return functions_; }

  // Constants in declaration order (the arity-0 functions).
  std::vector<FunctionSymbol> Constants() const;

  // True when every predicate is unary and every function is a constant:
  // the fragment covered by the profile and maximum-entropy engines
  // (Section 6 of the paper).
  bool IsUnaryRelational() const;

  int num_predicates() const { return static_cast<int>(predicates_.size()); }
  int num_functions() const { return static_cast<int>(functions_.size()); }

  // Order-sensitive structural hash of the signature (names, arities, id
  // assignment).  Two vocabularies with equal fingerprints resolve every
  // symbol to the same id, so derived state keyed on symbol ids — compiled
  // programs, world tables — is interchangeable between them.  Used by the
  // QueryContext version salt and the service catalog's cache adoption.
  uint64_t Fingerprint() const;

 private:
  std::vector<PredicateSymbol> predicates_;
  std::vector<FunctionSymbol> functions_;
  std::unordered_map<std::string, int> predicate_index_;
  std::unordered_map<std::string, int> function_index_;
};

}  // namespace rwl::logic

#endif  // RWL_LOGIC_VOCABULARY_H_
