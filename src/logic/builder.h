// Ergonomic construction helpers for L≈ formulas.
//
// These are thin wrappers over the Formula/Expr/Term factories that make
// knowledge bases in tests, examples and benchmarks read close to the
// paper's notation, e.g.
//
//   // ||Hep(x) | Jaun(x)||_x ≈_1 0.8
//   ApproxEq(CondProp(P("Hep", x), P("Jaun", x), {"x"}), 0.8, 1)
//
//   // Bird(x) → Fly(x)   (statistical interpretation of a default)
//   Default(P("Bird", x), P("Fly", x), {"x"}, 1)
#ifndef RWL_LOGIC_BUILDER_H_
#define RWL_LOGIC_BUILDER_H_

#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/logic/term.h"

namespace rwl::logic {

// Terms.
TermPtr V(const std::string& name);  // variable
TermPtr C(const std::string& name);  // constant

// Atoms with up to three arguments.
FormulaPtr P(const std::string& pred, const TermPtr& a);
FormulaPtr P(const std::string& pred, const TermPtr& a, const TermPtr& b);
FormulaPtr P(const std::string& pred, const TermPtr& a, const TermPtr& b,
             const TermPtr& c);
// Propositional atom (0-ary predicate).
FormulaPtr P0(const std::string& pred);

FormulaPtr Eq(const TermPtr& a, const TermPtr& b);

// Proportion expressions.
ExprPtr Prop(const FormulaPtr& body, const std::vector<std::string>& vars);
ExprPtr CondProp(const FormulaPtr& body, const FormulaPtr& cond,
                 const std::vector<std::string>& vars);
ExprPtr Num(double value);

// Proportion formulas.
FormulaPtr ApproxEq(const ExprPtr& e, double value, int tolerance_index = 1);
FormulaPtr ApproxLeq(const ExprPtr& e, double value, int tolerance_index = 1);
FormulaPtr ApproxGeq(const ExprPtr& e, double value, int tolerance_index = 1);
// α ⪯_i e ⪯_j β, as used in Theorem 5.23 / Example 5.24.
FormulaPtr InInterval(double lo, int i, const ExprPtr& e, double hi, int j);

// The statistical interpretation of the default "A's are typically B's"
// (Section 4.3): ||B | A||_vars ≈_i 1.
FormulaPtr Default(const FormulaPtr& antecedent, const FormulaPtr& consequent,
                   const std::vector<std::string>& vars,
                   int tolerance_index = 1);

// ∃! x. body  — "there is a unique x" (used by Theorem 5.26 / the lottery).
// Expands to ∃x (body ∧ ∀y (body[x/y] ⇒ y = x)) with a fresh variable y.
FormulaPtr ExistsUnique(const std::string& var, const FormulaPtr& body);

// "There are exactly n elements satisfying body" as a pure first-order
// sentence with equality (used by the lottery experiments, Section 5.5).
// n must be small; the formula grows quadratically in n.
FormulaPtr ExactlyN(int n, const std::string& var, const FormulaPtr& body);

}  // namespace rwl::logic

#endif  // RWL_LOGIC_BUILDER_H_
