// Hash-consing support for the L≈ AST.
//
// Every Term, Expr and Formula is interned: the factory functions consult a
// process-wide arena keyed by shallow structure (children are already
// canonical, so child comparison is pointer comparison) and return the
// canonical node when an identical one exists.  Consequences:
//
//   * structural equality IS pointer equality (Term::Equal,
//     Formula::StructuralEqual and Expr::Equal are O(1)),
//   * every node carries a cached structural hash and a dense unique id,
//     usable as a cache key by the engines (see core/query_context.h),
//   * repeated construction of the same subformula — by the parser, the
//     builder DSL, or transformations — costs one arena lookup and no
//     allocation.
//
// The arenas hold strong references: canonical nodes live for the lifetime
// of the process.  This is the standard trade-off for hash-consed logics;
// formula vocabularies are tiny compared to the engine work they drive.
// All arena operations are thread-safe (the limit-sweep worker pool builds
// formulas concurrently).
#ifndef RWL_LOGIC_INTERN_H_
#define RWL_LOGIC_INTERN_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <utility>

namespace rwl::logic {

// Arena counters, for tests and diagnostics.  A "hit" is a factory call
// that returned an existing canonical node instead of creating one.
struct InternStats {
  uint64_t term_nodes = 0;
  uint64_t term_hits = 0;
  uint64_t expr_nodes = 0;
  uint64_t expr_hits = 0;
  uint64_t formula_nodes = 0;
  uint64_t formula_hits = 0;

  uint64_t nodes() const { return term_nodes + expr_nodes + formula_nodes; }
  uint64_t hits() const { return term_hits + expr_hits + formula_hits; }
};

InternStats GetInternStats();

// Per-arena counters (implementation detail of GetInternStats).
void TermArenaStats(uint64_t* nodes, uint64_t* hits);
void ExprArenaStats(uint64_t* nodes, uint64_t* hits);
void FormulaArenaStats(uint64_t* nodes, uint64_t* hits);

// 64-bit mix (splitmix64 finalizer) used for all structural hashes.
inline size_t HashMix(size_t x) {
  uint64_t z = static_cast<uint64_t>(x) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return static_cast<size_t>(z ^ (z >> 31));
}

inline size_t HashCombine(size_t seed, size_t value) {
  return HashMix(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                         (seed >> 2)));
}

namespace internal {

// The one interning-arena mechanism behind the Term, Expr and Formula
// arenas: candidate nodes built by a factory are hashed shallowly
// (children are already canonical, so child comparison inside EqFn is
// pointer comparison) and either matched to the existing canonical node or
// adopted.  CRTP: `Derived` is the node type's friend and provides
// `SetIdentity(T*, hash, id)` to write the private cached-hash/id fields.
template <typename Derived, typename T, typename Ptr,
          size_t (*HashFn)(const T&), bool (*EqFn)(const T&, const T&)>
class NodeArena {
 public:
  Ptr Intern(T&& candidate) {
    size_t hash = HashFn(candidate);
    std::lock_guard<std::mutex> lock(mutex_);
    Probe probe{&candidate, hash};
    auto it = nodes_.find(probe);
    if (it != nodes_.end()) {
      ++hits_;
      return it->node;
    }
    Ptr node(new T(std::move(candidate)));
    Derived::SetIdentity(const_cast<T*>(node.get()), hash, next_id_++);
    nodes_.insert(Entry{node, hash});
    return node;
  }

  void Stats(uint64_t* nodes, uint64_t* hits) const {
    std::lock_guard<std::mutex> lock(mutex_);
    *nodes = nodes_.size();
    *hits = hits_;
  }

 private:
  struct Entry {
    Ptr node;
    size_t hash;
  };
  struct Probe {
    const T* node;
    size_t hash;
  };
  struct Hasher {
    using is_transparent = void;
    size_t operator()(const Entry& e) const { return e.hash; }
    size_t operator()(const Probe& p) const { return p.hash; }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(const Entry& a, const Entry& b) const {
      return a.node == b.node || EqFn(*a.node, *b.node);
    }
    bool operator()(const Probe& p, const Entry& e) const {
      return EqFn(*p.node, *e.node);
    }
    bool operator()(const Entry& e, const Probe& p) const {
      return EqFn(*p.node, *e.node);
    }
  };

  mutable std::mutex mutex_;
  std::unordered_set<Entry, Hasher, Eq> nodes_;
  uint64_t hits_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace internal

}  // namespace rwl::logic

#endif  // RWL_LOGIC_INTERN_H_
